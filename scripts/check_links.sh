#!/usr/bin/env bash
# Docs link gate: every intra-repo markdown link in README.md and docs/*.md
# must resolve to a real file. External (http/https/mailto) links are not
# checked — this is a structural gate, not a crawler.
#
# Usage: scripts/check_links.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [[ -f "$doc" ]] || continue
  dir="$(dirname "$doc")"
  # Inline markdown links: [text](target), excluding images' URLs handled the
  # same way. grep -o keeps one link per line even when several share a line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"           # strip any #anchor
    [[ -z "$path" ]] && continue   # pure-anchor link into the same file
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "check_links: $doc -> broken link '$target'" >&2
      fail=1
    fi
  done < <(grep -o '\[[^][]*\]([^()[:space:]]*)' "$doc" \
             | sed 's/.*(\(.*\))/\1/' || true)
done

if (( fail )); then
  echo "check_links: FAILED" >&2
  exit 1
fi
echo "check_links: all intra-repo markdown links resolve."
