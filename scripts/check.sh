#!/usr/bin/env bash
# Full check: regular build + tests, then the simrt runtime test binaries
# under ThreadSanitizer (the threads-as-ranks runtime is the one place real
# data races can hide).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

echo "== regular build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== ThreadSanitizer build (simrt runtime tests) =="
cmake -B build-tsan -S . -DVPAR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" \
  --target test_simrt test_simrt_stress test_simrt_nonblocking test_simrt_executor \
  test_simrt_faults test_simrt_hybrid test_trace

for t in test_simrt test_simrt_stress test_simrt_nonblocking test_simrt_executor \
         test_simrt_faults test_simrt_hybrid test_trace; do
  echo "-- TSan: $t"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done

echo "All checks passed."
