#!/usr/bin/env bash
# Full check: regular build + tests, then the simrt runtime test binaries
# under ThreadSanitizer (the threads-as-ranks runtime is the one place real
# data races can hide), then the SIMD suites under AddressSanitizer (the
# vector strip-mining tails are the one place out-of-bounds loads can hide).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

echo "== regular build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== ThreadSanitizer build (simrt runtime tests) =="
cmake -B build-tsan -S . -DVPAR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" \
  --target test_simrt test_simrt_stress test_simrt_nonblocking test_simrt_executor \
  test_simrt_faults test_simrt_hybrid test_locality test_trace test_service test_transport \
  test_simd test_simd_equivalence test_part test_qcd

for t in test_simrt test_simrt_stress test_simrt_nonblocking test_simrt_executor \
         test_simrt_faults test_simrt_hybrid test_locality test_trace test_service \
         test_transport test_simd test_simd_equivalence test_part test_qcd; do
  echo "-- TSan: $t"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done

echo "== AddressSanitizer build (SIMD suites: strip-mining tail bounds) =="
cmake -B build-asan -S . -DVPAR_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS" --target test_simd test_simd_equivalence

for t in test_simd test_simd_equivalence; do
  echo "-- ASan: $t"
  ASAN_OPTIONS="halt_on_error=1" "./build-asan/tests/$t"
done

echo "All checks passed."
