#!/usr/bin/env bash
# Wall-clock regression gate: build Release, run bench/wallclock, and compare
# against the committed baseline (BENCH_wallclock.json at the repo root).
#
# Per-bench numbers are informational — individual microbenches jitter well
# beyond any useful threshold on a shared host. The gate is the two
# aggregates (all benches, and the P=8 subset), each allowed +/-15%.
#
# Usage: scripts/bench.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"
BASELINE="BENCH_wallclock.json"
CURRENT="build-bench/wallclock_current.json"

if [[ ! -f "$BASELINE" ]]; then
  echo "bench.sh: no committed baseline ($BASELINE); run bench/wallclock and commit its output first" >&2
  exit 2
fi

# Wall-clock numbers from a loaded host are meaningless. Instead of warning
# and charging ahead, wait for the load to drop: bounded retries with a fixed
# pause, then give up with a distinct exit code so CI can tell "host busy"
# from "regression".
MAX_LOAD="${VPAR_BENCH_MAX_LOAD:-2.0}"
LOAD_RETRIES="${VPAR_BENCH_LOAD_RETRIES:-3}"
LOAD_WAIT="${VPAR_BENCH_LOAD_WAIT:-15}"
attempt=0
while :; do
  LOAD="$(cut -d' ' -f1 /proc/loadavg)"
  if python3 -c "import sys; sys.exit(0 if float('$LOAD') <= float('$MAX_LOAD') else 1)"; then
    break
  fi
  if (( attempt >= LOAD_RETRIES )); then
    echo "bench.sh: load average still $LOAD (> $MAX_LOAD) after $LOAD_RETRIES retries; refusing to bench a busy host" >&2
    exit 3
  fi
  attempt=$((attempt + 1))
  echo "load average is $LOAD (> $MAX_LOAD); waiting ${LOAD_WAIT}s (retry $attempt/$LOAD_RETRIES)" >&2
  sleep "$LOAD_WAIT"
done

echo "== Release build =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j"$JOBS" --target wallclock

echo "== wallclock run =="
./build-bench/bench/wallclock "$CURRENT"

echo "== comparison vs $BASELINE (tolerance +/-15% on aggregates) =="
python3 - "$BASELINE" "$CURRENT" <<'PY'
import json
import sys

TOLERANCE = 0.15

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

base_benches = {(b["name"], b["procs"]): b["seconds"] for b in base["benches"]}
print(f"{'bench':<22}{'baseline':>10}{'current':>10}{'ratio':>8}")
for b in cur["benches"]:
    key = (b["name"], b["procs"])
    label = f"{b['name']}/P{b['procs']}"
    if key not in base_benches:
        print(f"{label:<22}{'--':>10}{b['seconds']:>10.3f}    (new)")
        continue
    ratio = b["seconds"] / base_benches[key]
    print(f"{label:<22}{base_benches[key]:>10.3f}{b['seconds']:>10.3f}{ratio:>7.2f}x")

fail = False
for field in ("aggregate_seconds", "aggregate_seconds_p8"):
    ratio = cur[field] / base[field]
    ok = ratio <= 1.0 + TOLERANCE
    status = "ok" if ok else "REGRESSION"
    print(f"{field}: baseline {base[field]:.3f} s, current {cur[field]:.3f} s "
          f"({ratio:.2f}x) {status}")
    fail = fail or not ok

sys.exit(1 if fail else 0)
PY

echo "Benchmark gate passed."
