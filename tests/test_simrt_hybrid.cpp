#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <latch>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "blas/blas.hpp"
#include "cactus/evolve.hpp"
#include "fft/fft_multi.hpp"
#include "gtc/simulation.hpp"
#include "lbmhd/simulation.hpp"
#include "simrt/parallel.hpp"
#include "simrt/runtime.hpp"

namespace vpar::simrt {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Forces a hybrid mode for one test and restores the previous one on exit.
/// The host running the suite may have a single core, where Auto would never
/// engage — correctness of the concurrent path must not depend on that.
struct ModeGuard {
  HybridMode previous = hybrid_threading();
  explicit ModeGuard(HybridMode mode) { set_hybrid_threading(mode); }
  ~ModeGuard() { set_hybrid_threading(previous); }
};

/// Grow the shared pool so jobs smaller than 8 ranks have idle helpers.
void warm_pool() {
  run(8, [](Communicator&) {});
}

// --- serial semantics --------------------------------------------------------

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainLargerThanRangeIsOneChunk) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(2, 5, 100, [&](std::size_t lo, std::size_t hi) {
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2u);
  EXPECT_EQ(chunks[0].second, 5u);
}

TEST(ParallelFor, SerialChunksCoverEveryIterationOnce) {
  std::vector<int> counts(103, 0);
  parallel_for(0, counts.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++counts[i];
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], 1) << "iteration " << i;
  }
}

TEST(ParallelFor, WidthIsOneOutsideTheRuntime) {
  EXPECT_EQ(parallel_width(), 1);
}

// --- hybrid engagement -------------------------------------------------------

TEST(ParallelFor, WidthSeesIdleHelpersInsideARank) {
  ModeGuard guard(HybridMode::On);
  warm_pool();
  int width = 0;
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) width = parallel_width();
  });
  // Pool of 8, job of 2: the caller plus six idle helpers.
  EXPECT_GE(width, 2);

  set_hybrid_threading(HybridMode::Off);
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) width = parallel_width();
  });
  EXPECT_EQ(width, 1);
}

TEST(ParallelFor, HelpersServeChunksAndAttributeToOwningRank) {
  ModeGuard guard(HybridMode::On);
  warm_pool();
  std::array<std::thread::id, 2> served;
  // A latch the two chunks meet at: the test deadlocks (and the watchdog
  // below would catch it) unless two distinct threads are inside the body
  // simultaneously, so a pass proves a helper really participated.
  std::latch rendezvous(2);
  const RunResult result = run(1, [&](Communicator&) {
    parallel_for(0, 2, 1, [&](std::size_t lo, std::size_t) {
      served[lo] = std::this_thread::get_id();
      rendezvous.arrive_and_wait();
    });
  });
  EXPECT_NE(served[0], served[1]);
  // The helper's loop records are merged into the owning rank's recorder and
  // tagged as helper-served chunks (the perf attribution path).
  EXPECT_GE(result.merged.helper_chunks(), 1.0);
}

TEST(ParallelFor, NestedCallsDegradeToSerialInsideAChunk) {
  ModeGuard guard(HybridMode::On);
  warm_pool();
  std::vector<std::atomic<int>> counts(64);
  run(1, [&](Communicator&) {
    parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        parallel_for(0, 8, 1, [&](std::size_t jlo, std::size_t jhi) {
          for (std::size_t j = jlo; j < jhi; ++j) {
            counts[i * 8 + j].fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
    });
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

// --- errors and aborts -------------------------------------------------------

TEST(ParallelFor, ChunkExceptionPropagatesToTheOwningRank) {
  ModeGuard guard(HybridMode::On);
  warm_pool();
  try {
    run(2, [](Communicator& comm) {
      if (comm.rank() == 1) {
        parallel_for(0, 64, 4, [](std::size_t lo, std::size_t) {
          if (lo >= 32) throw std::runtime_error("chunk boom");
        });
      }
    });
    FAIL() << "chunk exception was swallowed";
  } catch (const RankError& e) {
    EXPECT_TRUE(contains(e.what(), "rank 1")) << e.what();
    EXPECT_TRUE(contains(e.what(), "chunk boom")) << e.what();
  }
  // The pool survives a failed loop: the next job runs normally.
  const RunResult after = run(4, [](Communicator&) {});
  EXPECT_EQ(after.size(), 4);
}

TEST(ParallelFor, SerialPathPropagatesExceptionsToo) {
  ModeGuard guard(HybridMode::Off);
  try {
    run(1, [](Communicator&) {
      parallel_for(0, 10, 3, [](std::size_t lo, std::size_t) {
        if (lo == 3) throw std::runtime_error("serial boom");
      });
    });
    FAIL() << "chunk exception was swallowed";
  } catch (const RankError& e) {
    EXPECT_TRUE(contains(e.what(), "serial boom")) << e.what();
  }
}

TEST(ParallelFor, WatchdogFiresWhileOwnerWaitsOnAStuckHelper) {
  ModeGuard guard(HybridMode::On);
  warm_pool();
  std::atomic<bool> release{false};
  std::latch rendezvous(2);
  // Un-stick the helper well after the watchdog deadline so the job can
  // drain and rethrow; the body itself must never hang the suite.
  std::thread unsticker([&] {
    std::this_thread::sleep_for(1200ms);
    release.store(true);
  });
  RunOptions options;
  options.size = 1;
  options.watchdog = 250ms;
  const auto start = std::chrono::steady_clock::now();
  try {
    run(options, [&](Communicator&) {
      const std::thread::id owner = std::this_thread::get_id();
      parallel_for(0, 2, 1, [&](std::size_t, std::size_t) {
        rendezvous.arrive_and_wait();
        // Whichever participant is not the owning rank stalls; the owner
        // returns and blocks in the completion latch, which the watchdog
        // must see as a registered blocking wait.
        if (std::this_thread::get_id() != owner) {
          while (!release.load()) std::this_thread::sleep_for(1ms);
        }
      });
    });
    FAIL() << "stuck loop returned";
  } catch (const WatchdogTimeout& e) {
    EXPECT_TRUE(contains(e.what(), "parallel_for")) << e.what();
  }
  unsticker.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 10s);
  const RunResult after = run(2, [](Communicator&) {});
  EXPECT_EQ(after.size(), 2);
}

// --- bitwise-identical application results ----------------------------------
//
// The chunk-boundary guarantee in action: every ported kernel must produce
// the same bits with helpers on and off, because only chunk *assignment*
// varies. Each case runs the same simulation twice and compares raw state.

std::vector<std::vector<double>> lbmhd_fields(HybridMode mode) {
  ModeGuard guard(mode);
  warm_pool();
  std::vector<std::vector<double>> fields(2);
  run(2, [&](Communicator& comm) {
    lbmhd::Options options;
    options.nx = 32;
    options.ny = 16;
    options.px = 2;
    options.py = 1;
    options.collision = lbmhd::Options::Collision::Flat;
    lbmhd::Simulation sim(comm, options);
    sim.initialize(lbmhd::orszag_tang_ic());
    sim.run(3);
    fields[comm.rank()] = sim.save_state().fields;
  });
  return fields;
}

TEST(HybridIdentical, LbmhdCollisionBitwise) {
  const auto serial = lbmhd_fields(HybridMode::Off);
  const auto hybrid = lbmhd_fields(HybridMode::On);
  ASSERT_EQ(serial.size(), hybrid.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r], hybrid[r]) << "rank " << r;
  }
}

std::vector<double> cactus_field(HybridMode mode, cactus::RhsVariant variant) {
  ModeGuard guard(mode);
  warm_pool();
  std::vector<double> gathered;
  run(2, [&](Communicator& comm) {
    cactus::Options options;
    options.nx = 16;
    options.ny = 8;
    options.nz = 8;
    options.px = 2;
    options.rhs_variant = variant;
    cactus::Evolution evolution(comm, options);
    evolution.initialize(cactus::plane_wave_id(0.01, 2.0 * M_PI / 8.0));
    evolution.run(2);
    auto g = evolution.gather(0);
    if (comm.rank() == 0) gathered = std::move(g);
  });
  return gathered;
}

TEST(HybridIdentical, CactusAdmSweepBitwise) {
  for (const auto variant :
       {cactus::RhsVariant::Vector, cactus::RhsVariant::Blocked}) {
    const auto serial = cactus_field(HybridMode::Off, variant);
    const auto hybrid = cactus_field(HybridMode::On, variant);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, hybrid);
  }
}

gtc::ParticleSet gtc_particles(HybridMode mode) {
  ModeGuard guard(mode);
  warm_pool();
  gtc::ParticleSet out;
  run(2, [&](Communicator& comm) {
    gtc::Options options;
    options.ngx = 16;
    options.ngy = 16;
    options.nplanes = 4;
    options.particles_per_cell = 4;
    options.deposit = gtc::DepositVariant::Hybrid;
    gtc::Simulation sim(comm, options);
    sim.load_particles();
    sim.run(3);
    if (comm.rank() == 0) out = sim.save_state().particles;
  });
  return out;
}

TEST(HybridIdentical, GtcPushAndDepositionBitwise) {
  const auto serial = gtc_particles(HybridMode::Off);
  const auto hybrid = gtc_particles(HybridMode::On);
  ASSERT_GT(serial.size(), 0u);
  // Deterministic per-chunk accumulators folded in fixed chunk order: the
  // deposition (and the fields pushed from it) must not depend on which
  // thread served which chunk.
  EXPECT_EQ(serial.x, hybrid.x);
  EXPECT_EQ(serial.y, hybrid.y);
  EXPECT_EQ(serial.zeta, hybrid.zeta);
  EXPECT_EQ(serial.vpar, hybrid.vpar);
  EXPECT_EQ(serial.rho, hybrid.rho);
  EXPECT_EQ(serial.q, hybrid.q);
}

std::vector<fft::Complex> fft_batch(HybridMode mode) {
  ModeGuard guard(mode);
  warm_pool();
  constexpr std::size_t n = 64;
  constexpr std::size_t count = 12;
  std::vector<fft::Complex> data(n * count);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.37 * static_cast<double>(i)),
               std::cos(0.11 * static_cast<double>(i))};
  }
  run(1, [&](Communicator&) {
    fft::MultiFft1d plan(n);
    plan.simultaneous(data, count);
    plan.simultaneous(data, count, /*invert=*/true);
  });
  return data;
}

TEST(HybridIdentical, MultiFftBatchBitwise) {
  const auto serial = fft_batch(HybridMode::Off);
  const auto hybrid = fft_batch(HybridMode::On);
  ASSERT_EQ(serial.size(), hybrid.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].real(), hybrid[i].real()) << i;
    EXPECT_EQ(serial[i].imag(), hybrid[i].imag()) << i;
  }
}

std::vector<double> gemm_result(HybridMode mode) {
  ModeGuard guard(mode);
  warm_pool();
  constexpr std::size_t m = 150, n = 33, k = 41;  // several 64-row blocks
  std::vector<double> a(m * k), b(k * n), c(m * n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::sin(0.13 * static_cast<double>(i));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::cos(0.29 * static_cast<double>(i));
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = 0.01 * static_cast<double>(i % 17);
  run(1, [&](Communicator&) {
    blas::gemm(blas::Trans::None, blas::Trans::None, m, n, k, 1.25, a.data(), k,
               b.data(), n, 0.5, c.data(), n);
  });
  return c;
}

TEST(HybridIdentical, GemmRowBlocksBitwise) {
  const auto serial = gemm_result(HybridMode::Off);
  const auto hybrid = gemm_result(HybridMode::On);
  EXPECT_EQ(serial, hybrid);
}

// --- stress (run under TSan by scripts/check.sh) -----------------------------

TEST(HybridStress, ManyLoopsAcrossActiveRanks) {
  ModeGuard guard(HybridMode::On);
  warm_pool();
  // Three active ranks all issuing loops while five helpers steal chunks:
  // the shape TSan needs to see to vet the chunk server, the completion
  // latch, and the recorder-partial merges.
  for (int round = 0; round < 4; ++round) {
    const RunResult result = run(3, [&](Communicator& comm) {
      std::vector<double> local(1024, 0.0);
      for (int iter = 0; iter < 8; ++iter) {
        parallel_for(0, local.size(), 64, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) local[i] += 1.0;
        });
      }
      double sum = 0.0;
      for (const double v : local) sum += v;
      if (sum != 8.0 * 1024.0) throw std::runtime_error("lost an iteration");
      comm.barrier();
    });
    EXPECT_EQ(result.size(), 3);
  }
}

}  // namespace
}  // namespace vpar::simrt
