// Edge-case sweep across the substrate libraries: degenerate shapes, zero
// scalars, and boundary parameters that production code paths must survive.

#include <gtest/gtest.h>

#include <random>

#include "blas/blas.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft3d_dist.hpp"
#include "lbmhd/exchange.hpp"
#include "paratec/basis.hpp"
#include "paratec/layout.hpp"
#include "simrt/runtime.hpp"

namespace vpar {
namespace {

TEST(BlasEdge, AlphaZeroScalesOnly) {
  std::vector<double> a(4, 5.0), b(4, 7.0), c = {1.0, 2.0, 3.0, 4.0};
  blas::gemm(blas::Trans::None, blas::Trans::None, 2, 2, 2, 0.0, a.data(), 2,
             b.data(), 2, 2.0, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[3], 8.0);
}

TEST(BlasEdge, BetaZeroOverwritesGarbage) {
  std::vector<blas::Complex> a(1, {1.0, 0.0}), b(1, {2.0, 0.0});
  std::vector<blas::Complex> c(1, {std::nan(""), std::nan("")});
  blas::gemm(blas::Trans::None, blas::Trans::None, 1, 1, 1, blas::Complex(1.0),
             a.data(), 1, b.data(), 1, blas::Complex(0.0), c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0].real(), 2.0);  // NaN in C must not leak through beta=0
  EXPECT_DOUBLE_EQ(c[0].imag(), 0.0);
}

TEST(BlasEdge, DegenerateShapes) {
  // k = 0: C = beta * C regardless of A/B contents.
  std::vector<double> c = {3.0};
  blas::gemm(blas::Trans::None, blas::Trans::None, 1, 1, 0, 1.0, nullptr, 1,
             nullptr, 1, 2.0, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 6.0);
}

TEST(FftEdge, LengthOneIsIdentity) {
  fft::Fft1d plan(1);
  std::vector<fft::Complex> x = {{3.0, -4.0}};
  plan.forward(x);
  EXPECT_DOUBLE_EQ(x[0].real(), 3.0);
  plan.inverse(x);
  EXPECT_DOUBLE_EQ(x[0].imag(), -4.0);
}

TEST(FftEdge, MultiFftZeroCount) {
  fft::MultiFft1d plan(8);
  std::vector<fft::Complex> empty;
  plan.simultaneous(empty, 0);  // must not crash
  plan.looped(empty, 0);
}

TEST(FftEdge, AnisotropicDistributedGrid) {
  // nx != ny != nz with nx, ny divisible by P.
  simrt::run(2, [](simrt::Communicator& comm) {
    fft::DistFft3d dist(comm, 4, 8, 2);
    fft::Grid3 slab(2, 8, 2);
    std::mt19937 rng(5 + static_cast<unsigned>(comm.rank()));
    std::uniform_real_distribution<double> d(-1, 1);
    for (auto& v : slab.data) v = fft::Complex(d(rng), d(rng));
    auto spec = dist.forward(slab);
    auto back = dist.inverse(spec);
    for (std::size_t i = 0; i < slab.data.size(); ++i) {
      EXPECT_LT(std::abs(back.data[i] - slab.data[i]), 1e-11);
    }
  });
}

TEST(DecompEdge, RejectsDegenerateBlocks) {
  // Local blocks smaller than the ghost width must be refused, not wrapped.
  EXPECT_THROW(lbmhd::Decomp2D(8, 8, 4, 1, 0), std::runtime_error);   // nxl=2 < 4
  EXPECT_THROW(lbmhd::Decomp2D(12, 8, 5, 1, 0), std::runtime_error);  // indivisible
  EXPECT_THROW(lbmhd::Decomp2D(8, 8, 0, 1, 0), std::runtime_error);
}

TEST(BasisEdge, TinyCutoffStillWellFormed) {
  const paratec::Basis basis(1.0);  // gmax = 1: 7 plane waves
  EXPECT_EQ(basis.size(), 7u);
  const paratec::Layout layout(basis, 3);
  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) total += layout.local_size(r);
  EXPECT_EQ(total, 7u);
  EXPECT_THROW(paratec::Basis(0.0), std::runtime_error);
}

TEST(LayoutEdge, MoreProcsThanColumnsLeavesSomeEmpty) {
  const paratec::Basis basis(1.0);  // 5 columns
  const paratec::Layout layout(basis, 8);
  std::size_t nonempty = 0, total = 0;
  for (int r = 0; r < 8; ++r) {
    total += layout.local_size(r);
    nonempty += layout.local_size(r) > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, basis.size());
  EXPECT_LE(nonempty, 5u);
}

}  // namespace
}  // namespace vpar
