// Nonblocking point-to-point: Request semantics (wait/test/waitall), posted
// receive handoff, out-of-order tag matching, wildcard interaction, and the
// safety of abandoning a request before it completes.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <thread>
#include <vector>

#include "perf/recorder.hpp"
#include "simrt/runtime.hpp"

namespace vpar::simrt {
namespace {

TEST(SimrtNonblocking, IsendIrecvRoundTrip) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{1, 2, 3, 4};
      comm.isend<int>(1, std::span<const int>(data), 7).wait();
    } else {
      std::array<int, 4> got{};
      Request r = comm.irecv<int>(0, std::span<int>(got), 7);
      r.wait();
      EXPECT_EQ(got[2], 3);
    }
  });
}

TEST(SimrtNonblocking, MoveHandoffIsendDeliversContents) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(1 << 16);
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
      comm.isend<double>(1, std::move(big), 3).wait();
      EXPECT_TRUE(big.empty());  // adopted, not copied
    } else {
      std::vector<double> got(1 << 16);
      comm.irecv<double>(0, std::span<double>(got), 3).wait();
      EXPECT_DOUBLE_EQ(got[12345], 12345.0);
    }
  });
}

TEST(SimrtNonblocking, OutOfOrderTagMatching) {
  // Sender posts tag 1 then tag 2; receiver waits on tag 2 first. Posted
  // receives must match on tag, not arrival order.
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int a = 111, b = 222;
      comm.send<int>(1, std::span<const int>(&a, 1), 1);
      comm.send<int>(1, std::span<const int>(&b, 1), 2);
    } else {
      int second = 0, first = 0;
      comm.recv<int>(0, std::span<int>(&second, 1), 2);
      comm.recv<int>(0, std::span<int>(&first, 1), 1);
      EXPECT_EQ(second, 222);
      EXPECT_EQ(first, 111);
    }
  });
}

TEST(SimrtNonblocking, PostedReceiveCompletesWithoutQueueing) {
  // The receive is posted before the message exists; the sender's deliver
  // call must complete it directly (handoff into the posted buffer).
  run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      int got = -1;
      Request r = comm.irecv<int>(0, std::span<int>(&got, 1), 9);
      comm.barrier();  // now rank 0 sends
      r.wait();
      EXPECT_EQ(got, 42);
    } else {
      comm.barrier();
      const int v = 42;
      comm.send<int>(1, std::span<const int>(&v, 1), 9);
    }
  });
}

TEST(SimrtNonblocking, TestPollsWithoutBlocking) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      int got = 0;
      Request r = comm.irecv<int>(0, std::span<int>(&got, 1), 4);
      EXPECT_FALSE(r.test());  // nothing sent yet
      EXPECT_TRUE(r.active());
      comm.barrier();
      while (!r.test()) std::this_thread::yield();
      EXPECT_EQ(got, 17);
      EXPECT_FALSE(r.active());  // test() released the handle on completion
    } else {
      comm.barrier();
      const int v = 17;
      comm.send<int>(1, std::span<const int>(&v, 1), 4);
    }
  });
}

TEST(SimrtNonblocking, WaitOnCompletedRequestIsIdempotent) {
  run(1, [](Communicator& comm) {
    Request done;  // default-constructed: complete
    EXPECT_FALSE(done.active());
    EXPECT_TRUE(done.test());
    done.wait();  // no-op
    done.wait();  // still a no-op

    const int v = 5;
    Request s = comm.isend<int>(0, std::span<const int>(&v, 1), 0);
    s.wait();
    s.wait();  // waiting twice is fine
    int got = 0;
    comm.recv<int>(0, std::span<int>(&got, 1), 0);
    EXPECT_EQ(got, 5);
  });
}

TEST(SimrtNonblocking, WaitallMixedSources) {
  // Rank 0 posts receives from every other rank with distinct tags, then
  // waits on all of them at once; senders go in reverse rank order.
  constexpr int P = 6;
  run(P, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::array<int, P> got{};
      std::vector<Request> reqs;
      for (int s = 1; s < P; ++s) {
        reqs.push_back(comm.irecv<int>(
            s, std::span<int>(&got[static_cast<std::size_t>(s)], 1), 50 + s));
      }
      waitall(reqs);
      for (int s = 1; s < P; ++s) EXPECT_EQ(got[static_cast<std::size_t>(s)], s * s);
    } else {
      const int v = comm.rank() * comm.rank();
      comm.send<int>(0, std::span<const int>(&v, 1), 50 + comm.rank());
    }
  });
}

TEST(SimrtNonblocking, SelfSendCompletes) {
  run(3, [](Communicator& comm) {
    int got = -1;
    Request r = comm.irecv<int>(comm.rank(), std::span<int>(&got, 1), 8);
    const int v = comm.rank() + 100;
    comm.isend<int>(comm.rank(), std::span<const int>(&v, 1), 8).wait();
    r.wait();
    EXPECT_EQ(got, comm.rank() + 100);
  });
}

TEST(SimrtNonblocking, ZeroLengthMessages) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.isend<double>(1, std::vector<double>{}, 2).wait();
      comm.send<double>(1, std::span<const double>{}, 3);
    } else {
      Request r = comm.irecv<double>(0, std::span<double>{}, 2);
      r.wait();
      comm.recv<double>(0, std::span<double>{}, 3);
    }
  });
}

TEST(SimrtNonblocking, SizeMismatchSurfacesThroughWait) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::array<int, 3> three{1, 2, 3};
      comm.send<int>(1, std::span<const int>(three), 0);
    } else {
      std::array<int, 2> two{};
      Request r = comm.irecv<int>(0, std::span<int>(two), 0);
      EXPECT_THROW(r.wait(), std::runtime_error);
    }
  });
}

TEST(SimrtNonblocking, AbandonedRequestIsCancelledNotMatched) {
  // Destroying an unwaited request must (a) not crash, (b) never write
  // through the dropped buffer, and (c) leave later messages matchable by a
  // fresh receive. The first message is sent only after the abandoned
  // request is gone, so it must stay queued rather than complete a
  // cancelled receive.
  run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      {
        auto doomed = std::make_unique<std::array<int, 1>>();
        Request r = comm.irecv<int>(0, std::span<int>(*doomed), 6);
        // r destroyed here, before any message exists; buffer freed next.
      }
      comm.barrier();  // sender posts both messages after this
      int got = 0;
      comm.recv<int>(0, std::span<int>(&got, 1), 6);
      EXPECT_EQ(got, 1000);  // the *first* message — nothing was consumed
      comm.recv<int>(0, std::span<int>(&got, 1), 6);
      EXPECT_EQ(got, 2000);
    } else {
      comm.barrier();
      const int a = 1000, b = 2000;
      comm.send<int>(1, std::span<const int>(&a, 1), 6);
      comm.send<int>(1, std::span<const int>(&b, 1), 6);
    }
  });
}

TEST(SimrtNonblocking, AbandonedPendingRequestSkippedAtDelivery) {
  // The cancelled receive is still parked in the mailbox's pending list when
  // the message arrives; delivery must skip (and prune) it and match the
  // live receive posted afterwards.
  run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      int dropped = -1, got = -1;
      { Request r = comm.irecv<int>(0, std::span<int>(&dropped, 1), 11); }
      Request live = comm.irecv<int>(0, std::span<int>(&got, 1), 11);
      comm.barrier();
      live.wait();
      EXPECT_EQ(got, 77);
      EXPECT_EQ(dropped, -1);  // cancelled buffer never written
    } else {
      comm.barrier();
      const int v = 77;
      comm.send<int>(1, std::span<const int>(&v, 1), 11);
    }
  });
}

TEST(SimrtNonblocking, WildcardRecvSeesUserTrafficOnly) {
  // A wildcard (any-source, any-tag) receive running concurrently with
  // other ranks' collectives must never swallow internal collective
  // fragments.
  constexpr int P = 4;
  run(P, [](Communicator& comm) {
    if (comm.rank() == 0) {
      // Ranks 1..P-1 are already deep in an allreduce whose tree traffic
      // passes through rank 0's mailbox region only via real matching; the
      // wildcard below must match the single user message.
      int got = 0;
      comm.recv<int>(kAnySource, std::span<int>(&got, 1), kAnyTag);
      EXPECT_EQ(got, 123);
      (void)comm.allreduce(0, ReduceOp::Sum);
    } else {
      if (comm.rank() == 1) {
        const int v = 123;
        comm.send<int>(0, std::span<const int>(&v, 1), 64);
      }
      (void)comm.allreduce(0, ReduceOp::Sum);
    }
  });
}

TEST(SimrtNonblocking, NegativeUserTagRejected) {
  run(1, [](Communicator& comm) {
    const int v = 1;
    EXPECT_THROW(comm.send<int>(0, std::span<const int>(&v, 1), -3),
                 std::runtime_error);
    int got = 0;
    EXPECT_THROW((void)comm.irecv<int>(0, std::span<int>(&got, 1), -3),
                 std::runtime_error);
  });
}

TEST(SimrtNonblocking, OverlapScopeRecordsOverlappedTraffic) {
  auto result = run(2, [](Communicator& comm) {
    std::array<double, 64> buf{};
    if (comm.rank() == 0) {
      {
        perf::OverlapScope window;
        comm.isend<double>(1, std::span<const double>(buf), 1).wait();
      }
      comm.send<double>(1, std::span<const double>(buf), 2);  // serialized
    } else {
      comm.recv<double>(0, std::span<double>(buf), 1);
      comm.recv<double>(0, std::span<double>(buf), 2);
    }
  });
  const auto& p0 = result.per_rank[0].comm();
  EXPECT_DOUBLE_EQ(p0.overlapped_bytes(perf::CommKind::PointToPoint), 64 * 8.0);
  EXPECT_DOUBLE_EQ(p0.serialized_bytes(perf::CommKind::PointToPoint), 64 * 8.0);
  EXPECT_DOUBLE_EQ(p0.bytes(perf::CommKind::PointToPoint), 2 * 64 * 8.0);
  EXPECT_DOUBLE_EQ(p0.overlap_windows(), 1.0);
}

}  // namespace
}  // namespace vpar::simrt
