// Quantitative physics validation of the LBMHD solver: transport
// coefficients and wave dynamics against analytic lattice-Boltzmann theory.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lbmhd/simulation.hpp"
#include "simrt/runtime.hpp"

namespace vpar::lbmhd {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Kinetic energy after evolving a pure shear wave u_y = eps sin(2 pi x / L).
double shear_wave_ke(double tau, int steps, std::size_t n) {
  double ke = 0.0;
  simrt::run(2, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = n;
    opt.px = 2;
    opt.py = 1;
    opt.tau_f = tau;
    auto sim = Simulation(comm, opt);
    sim.initialize([](double x, double) {
      MacroState m;
      m.rho = 1.0;
      m.uy = 1.0e-3 * std::sin(kTwoPi * x);
      return m;
    });
    sim.run(steps);
    ke = sim.diagnostics().kinetic_energy;
  });
  return ke;
}

TEST(LbmhdPhysics, ShearWaveDecaysAtAnalyticViscosity) {
  // LB theory: nu = cs^2 (tau - 1/2); KE of a shear wave of wavenumber
  // k = 2 pi / N decays as exp(-2 nu k^2 t).
  constexpr std::size_t n = 64;
  constexpr double tau = 0.8;
  constexpr int steps = 400;
  const double nu = Lattice::kCs2 * (tau - 0.5);
  const double k = kTwoPi / static_cast<double>(n);

  const double ke0 = shear_wave_ke(tau, 0, n);
  const double ke1 = shear_wave_ke(tau, steps, n);
  const double measured_rate = -std::log(ke1 / ke0) / (2.0 * steps);
  const double analytic_rate = nu * k * k;
  EXPECT_NEAR(measured_rate, analytic_rate, 0.05 * analytic_rate);
}

TEST(LbmhdPhysics, ViscosityScalesWithTau) {
  // Larger tau = more viscous = faster shear decay.
  constexpr std::size_t n = 32;
  constexpr int steps = 200;
  const double ke_low = shear_wave_ke(0.6, steps, n);
  const double ke_high = shear_wave_ke(1.2, steps, n);
  EXPECT_GT(ke_low, ke_high);
}

TEST(LbmhdPhysics, MagneticShearDecaysAtAnalyticResistivity) {
  // The induction equation gives eta = cs^2 (tau_g - 1/2); a magnetic shear
  // layer b_y = eps sin(k x) decays as exp(-eta k^2 t) in amplitude, so
  // magnetic energy decays at rate 2 eta k^2.
  constexpr std::size_t n = 64;
  constexpr double tau_g = 0.9;
  constexpr int steps = 400;

  auto me_at = [&](int s) {
    double me = 0.0;
    simrt::run(1, [&](simrt::Communicator& comm) {
      Options opt;
      opt.nx = opt.ny = n;
      opt.tau_g = tau_g;
      auto sim = Simulation(comm, opt);
      sim.initialize([](double x, double) {
        MacroState m;
        m.rho = 1.0;
        m.by = 1.0e-3 * std::sin(kTwoPi * x);
        return m;
      });
      sim.run(s);
      me = sim.diagnostics().magnetic_energy;
    });
    return me;
  };
  const double eta = Lattice::kCs2 * (tau_g - 0.5);
  const double k = kTwoPi / static_cast<double>(n);
  const double rate = -std::log(me_at(steps) / me_at(0)) / (2.0 * steps);
  EXPECT_NEAR(rate, eta * k * k, 0.05 * eta * k * k);
}

TEST(LbmhdPhysics, AlfvenWaveExchangesKineticAndMagneticEnergy) {
  // A transverse velocity perturbation on a uniform guide field B0 x-hat
  // launches Alfven waves: kinetic and magnetic perturbation energy slosh
  // back and forth at frequency omega = k vA with vA = B0 / sqrt(rho).
  constexpr std::size_t n = 64;
  constexpr double b0 = 0.1;
  const double va = b0;  // rho = 1
  const double k = kTwoPi / static_cast<double>(n);
  // Quarter period: kinetic energy should be mostly converted to magnetic
  // perturbation energy.
  const int quarter = static_cast<int>(std::lround(0.25 * kTwoPi / (k * va)));

  simrt::run(1, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = n;
    opt.tau_f = opt.tau_g = 0.52;  // low dissipation
    auto sim = Simulation(comm, opt);
    sim.initialize([b0](double x, double) {
      MacroState m;
      m.rho = 1.0;
      m.bx = b0;
      m.uy = 5.0e-4 * std::sin(kTwoPi * x);
      return m;
    });
    const double ke0 = sim.diagnostics().kinetic_energy;
    sim.run(quarter);
    const auto mid = sim.diagnostics();
    // Near the quarter period the kinetic energy has largely transferred.
    EXPECT_LT(mid.kinetic_energy, 0.25 * ke0);
    sim.run(quarter);
    const auto full = sim.diagnostics();
    // Near the half period it has largely returned.
    EXPECT_GT(full.kinetic_energy, 0.5 * ke0);
  });
}

TEST(LbmhdPhysics, UniformFlowIsGalileanSteady) {
  // A uniform flow with uniform field advects nothing: macroscopic state
  // stays constant (to round-off) on the periodic domain.
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = 16;
    auto sim = Simulation(comm, opt);
    sim.initialize([](double, double) {
      MacroState m;
      m.rho = 1.0;
      m.ux = 0.05;
      m.uy = -0.02;
      m.bx = 0.01;
      m.by = 0.03;
      return m;
    });
    const auto before = sim.diagnostics();
    sim.run(20);
    const auto after = sim.diagnostics();
    EXPECT_NEAR(after.kinetic_energy, before.kinetic_energy, 1e-10);
    EXPECT_NEAR(after.magnetic_energy, before.magnetic_energy, 1e-10);
  });
}

}  // namespace
}  // namespace vpar::lbmhd
