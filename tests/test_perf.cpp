#include <gtest/gtest.h>

#include "perf/comm_profile.hpp"
#include "perf/kernel_profile.hpp"
#include "perf/loop_record.hpp"
#include "perf/recorder.hpp"

namespace vpar::perf {
namespace {

LoopRecord make_record(double instances, double trips, double flops,
                       double bytes, bool vec = true) {
  LoopRecord r;
  r.vectorizable = vec;
  r.instances = instances;
  r.trips = trips;
  r.flops_per_trip = flops;
  r.bytes_per_trip = bytes;
  return r;
}

TEST(LoopRecord, Totals) {
  const auto r = make_record(10, 100, 5, 8);
  EXPECT_DOUBLE_EQ(r.total_flops(), 5000.0);
  EXPECT_DOUBLE_EQ(r.total_bytes(), 8000.0);
}

TEST(LoopRecord, VectorInstructionsStripMines) {
  auto r = make_record(1, 256, 1, 0);
  EXPECT_DOUBLE_EQ(r.vector_instructions(256), 1.0);
  EXPECT_DOUBLE_EQ(r.vector_instructions(64), 4.0);
  r.trips = 257;
  EXPECT_DOUBLE_EQ(r.vector_instructions(256), 2.0);
}

TEST(LoopRecord, VectorInstructionsDegenerate) {
  const auto r = make_record(1, 0, 1, 0);
  EXPECT_DOUBLE_EQ(r.vector_instructions(256), 0.0);
}

TEST(LoopRecord, ScaledInstances) {
  const auto r = make_record(10, 100, 5, 8).scaled_instances(3.0);
  EXPECT_DOUBLE_EQ(r.instances, 30.0);
  EXPECT_DOUBLE_EQ(r.trips, 100.0);  // trips unchanged
}

TEST(KernelProfile, CoalescesIdenticalShapes) {
  KernelProfile p;
  p.record("a", make_record(1, 100, 5, 8));
  p.record("a", make_record(2, 100, 5, 8));
  ASSERT_EQ(p.regions().at("a").size(), 1u);
  EXPECT_DOUBLE_EQ(p.regions().at("a")[0].instances, 3.0);
}

TEST(KernelProfile, KeepsDistinctShapesSeparate) {
  KernelProfile p;
  p.record("a", make_record(1, 100, 5, 8));
  p.record("a", make_record(1, 200, 5, 8));
  EXPECT_EQ(p.regions().at("a").size(), 2u);
}

TEST(KernelProfile, TotalsAcrossRegions) {
  KernelProfile p;
  p.record("a", make_record(1, 100, 5, 8));
  p.record("b", make_record(1, 50, 4, 2));
  EXPECT_DOUBLE_EQ(p.total_flops(), 500.0 + 200.0);
  EXPECT_DOUBLE_EQ(p.total_bytes(), 800.0 + 100.0);
  EXPECT_DOUBLE_EQ(p.region_flops("a"), 500.0);
  EXPECT_DOUBLE_EQ(p.region_flops("missing"), 0.0);
}

TEST(KernelProfile, MergeAndScale) {
  KernelProfile p, q;
  p.record("a", make_record(1, 100, 5, 8));
  q.record("a", make_record(1, 100, 5, 8));
  q.record("b", make_record(1, 10, 1, 1));
  p.merge(q);
  EXPECT_DOUBLE_EQ(p.total_flops(), 1010.0);
  const auto s = p.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.total_flops(), 2020.0);
}

TEST(VectorStats, FullyVectorizedLongLoops) {
  KernelProfile p;
  p.record("a", make_record(1, 256, 1, 0));
  const auto stats = compute_vector_stats(p, 256);
  EXPECT_DOUBLE_EQ(stats.vor, 1.0);
  EXPECT_DOUBLE_EQ(stats.avl, 256.0);
}

TEST(VectorStats, ShortLoopsLowerAvl) {
  KernelProfile p;
  p.record("a", make_record(1, 64, 1, 0));
  const auto stats = compute_vector_stats(p, 256);
  EXPECT_DOUBLE_EQ(stats.avl, 64.0);
}

TEST(VectorStats, ScalarWorkLowersVor) {
  KernelProfile p;
  p.record("vec", make_record(1, 100, 9, 0, true));
  p.record("scalar", make_record(1, 100, 1, 0, false));
  const auto stats = compute_vector_stats(p, 256);
  EXPECT_NEAR(stats.vor, 0.9, 1e-12);
}

TEST(VectorStats, MachineVectorLengthMatters) {
  KernelProfile p;
  p.record("a", make_record(1, 200, 1, 0));
  EXPECT_DOUBLE_EQ(compute_vector_stats(p, 256).avl, 200.0);
  // 200 trips on VL=64: 4 strips, average length 50.
  EXPECT_DOUBLE_EQ(compute_vector_stats(p, 64).avl, 50.0);
}

TEST(CommProfile, RecordsAndMerges) {
  CommProfile c;
  c.record(CommKind::PointToPoint, 2, 1000);
  c.record(CommKind::AllToAll, 3, 5000);
  EXPECT_DOUBLE_EQ(c.bytes(CommKind::PointToPoint), 1000.0);
  EXPECT_DOUBLE_EQ(c.total_bytes(), 6000.0);
  EXPECT_DOUBLE_EQ(c.total_messages(), 5.0);

  CommProfile d;
  d.record(CommKind::PointToPoint, 1, 10);
  c.merge(d);
  EXPECT_DOUBLE_EQ(c.messages(CommKind::PointToPoint), 3.0);

  const auto s = c.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.bytes(CommKind::AllToAll), 10000.0);
}

TEST(Recorder, FreeFunctionsNoOpWithoutInstall) {
  EXPECT_EQ(current_recorder(), nullptr);
  record_loop("x", make_record(1, 1, 1, 1));  // must not crash
  record_comm(CommKind::Barrier, 1, 0);
}

TEST(Recorder, ScopedInstallAndNesting) {
  Recorder outer, inner;
  {
    ScopedRecorder a(outer);
    record_loop("x", make_record(1, 10, 1, 0));
    {
      ScopedRecorder b(inner);
      record_loop("y", make_record(1, 20, 1, 0));
    }
    EXPECT_EQ(current_recorder(), &outer);
    record_comm(CommKind::Barrier, 1, 0);
  }
  EXPECT_EQ(current_recorder(), nullptr);
  EXPECT_DOUBLE_EQ(outer.kernels().total_flops(), 10.0);
  EXPECT_DOUBLE_EQ(inner.kernels().total_flops(), 20.0);
  EXPECT_DOUBLE_EQ(outer.comm().total_messages(), 1.0);
}

}  // namespace
}  // namespace vpar::perf
