#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "paratec/basis.hpp"
#include "paratec/hamiltonian.hpp"
#include "paratec/layout.hpp"
#include "paratec/linalg.hpp"
#include "paratec/solver.hpp"
#include "paratec/transform.hpp"
#include "paratec/workload.hpp"
#include "simrt/runtime.hpp"

namespace vpar::paratec {
namespace {

TEST(Basis, SphereMembershipAndOrdering) {
  const Basis basis(9.0);  // gmax = 3
  EXPECT_GT(basis.size(), 0u);
  // Every member inside the cutoff, kinetic = g2/2.
  std::size_t count = 0;
  for (const auto& col : basis.columns()) {
    EXPECT_FALSE(col.gz.empty());
    EXPECT_TRUE(std::is_sorted(col.gz.begin(), col.gz.end()));
    for (std::size_t m = 0; m < col.gz.size(); ++m) {
      const double g2 = static_cast<double>(col.gx * col.gx + col.gy * col.gy +
                                            col.gz[m] * col.gz[m]);
      EXPECT_LE(g2, 9.0);
      EXPECT_DOUBLE_EQ(basis.kinetic()[col.offset + m], 0.5 * g2);
      ++count;
    }
  }
  EXPECT_EQ(count, basis.size());
  // Grid must contain the doubled sphere and be a power of two.
  EXPECT_GE(basis.grid_n(), 14u);
  EXPECT_EQ(basis.grid_n() & (basis.grid_n() - 1), 0u);
}

TEST(Basis, CountApproximatesSphereVolume) {
  const Basis basis(36.0);  // gmax = 6
  const double expected = 4.0 / 3.0 * std::numbers::pi * 6.0 * 6.0 * 6.0;
  EXPECT_NEAR(static_cast<double>(basis.size()), expected, expected * 0.15);
}

TEST(Layout, PartitionsAllColumnsOnce) {
  const Basis basis(16.0);
  const Layout layout(basis, 5);
  std::vector<int> seen(basis.columns().size(), 0);
  std::size_t total = 0;
  for (int r = 0; r < 5; ++r) {
    for (std::size_t c : layout.columns_of(r)) {
      ++seen[c];
      EXPECT_EQ(layout.owner_of(c), r);
    }
    total += layout.local_size(r);
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_EQ(total, basis.size());
}

TEST(Layout, GreedyBalanceBound) {
  // The descending-length greedy guarantees max - min <= longest column.
  const Basis basis(25.0);
  std::size_t longest = 0;
  for (const auto& col : basis.columns()) longest = std::max(longest, col.gz.size());
  for (int procs : {2, 3, 7, 16}) {
    const Layout layout(basis, procs);
    EXPECT_LE(layout.max_local_size() - layout.min_local_size(), longest)
        << procs << " procs";
  }
}

TEST(Linalg, CholeskyFactorsHermitianPd) {
  // A = L0 L0^H for a random lower L0 with positive diagonal.
  constexpr std::size_t n = 6;
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> l0(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) l0[i * n + j] = Complex(dist(rng), dist(rng));
    l0[i * n + i] = 2.0 + std::abs(dist(rng));
  }
  std::vector<Complex> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex s{};
      for (std::size_t k = 0; k < n; ++k) s += l0[i * n + k] * std::conj(l0[j * n + k]);
      a[i * n + j] = s;
    }
  }
  auto l = a;
  cholesky(l, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_LT(std::abs(l[i * n + j] - l0[i * n + j]), 1e-10);
    }
  }
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  std::vector<Complex> a = {Complex(1.0), Complex(2.0), Complex(2.0), Complex(1.0)};
  EXPECT_THROW(cholesky(a, 2), std::runtime_error);
}

TEST(Linalg, HermitianEigenRecoversSpectrum) {
  // A = V diag(w) V^H for a known unitary-ish construction.
  constexpr std::size_t n = 5;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] = Complex(dist(rng) * 3.0, 0.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      a[i * n + j] = Complex(dist(rng), dist(rng));
      a[j * n + i] = std::conj(a[i * n + j]);
    }
  }
  const auto eig = hermitian_eigen(a, n);
  EXPECT_TRUE(std::is_sorted(eig.values.begin(), eig.values.end()));
  // Each returned pair satisfies A v = w v.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      Complex av{};
      for (std::size_t j = 0; j < n; ++j) {
        av += a[i * n + j] * eig.vectors[k * n + j];
      }
      EXPECT_LT(std::abs(av - eig.values[k] * eig.vectors[k * n + i]), 1e-9)
          << "pair " << k;
    }
    // Trace check via Rayleigh quotient.
    Complex q{};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        q += std::conj(eig.vectors[k * n + i]) * a[i * n + j] * eig.vectors[k * n + j];
      }
    }
    EXPECT_NEAR(q.real(), eig.values[k], 1e-9);
  }
}

class TransformProcs : public ::testing::TestWithParam<int> {};

TEST_P(TransformProcs, RoundTripIsIdentity) {
  const int P = GetParam();
  simrt::run(P, [](simrt::Communicator& comm) {
    const Basis basis(9.0);
    const Layout layout(basis, comm.size());
    WavefunctionTransform tf(comm, basis, layout);

    std::vector<Complex> coeffs(tf.local_coeffs());
    std::mt19937 rng(17 + static_cast<unsigned>(comm.rank()));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& c : coeffs) c = Complex(dist(rng), dist(rng));

    auto grid = tf.to_real(coeffs);
    auto back = tf.to_fourier(grid);
    ASSERT_EQ(back.size(), coeffs.size());
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      EXPECT_LT(std::abs(back[i] - coeffs[i]), 1e-11);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Concurrency, TransformProcs, ::testing::Values(1, 2, 4, 8));

TEST(Transform, ParallelMatchesSerialRealSpace) {
  // Single global plane wave: coefficients are decomposition-independent,
  // and so must the real-space field be.
  const Basis basis(9.0);
  const std::size_t n = basis.grid_n();

  auto run_with = [&](int P) {
    std::vector<Complex> global(n * n * n);
    simrt::run(P, [&](simrt::Communicator& comm) {
      const Layout layout(basis, comm.size());
      WavefunctionTransform tf(comm, basis, layout);
      std::vector<Complex> coeffs(tf.local_coeffs(), Complex{});
      // Put 1.0 on the global coefficient with (gx,gy,gz) = (1,-2,0).
      for (std::size_t c : layout.columns_of(comm.rank())) {
        const auto& col = basis.columns()[c];
        if (col.gx == 1 && col.gy == -2) {
          for (std::size_t m = 0; m < col.gz.size(); ++m) {
            if (col.gz[m] == 0) {
              coeffs[layout.local_offset(c) + m] = 1.0;
            }
          }
        }
      }
      auto slab = tf.to_real(coeffs);
      // Collect into the global array on rank 0.
      std::vector<Complex> all(comm.rank() == 0 ? n * n * n : 0);
      comm.gather<Complex>(slab, all, 0);
      if (comm.rank() == 0) global = std::move(all);
    });
    return global;
  };

  const auto serial = run_with(1);
  const auto par = run_with(4);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_LT(std::abs(par[i] - serial[i]), 1e-12);
  }
  // And it is the expected plane wave (up to the 1/n^3 inverse scaling).
  const double scale = std::abs(serial[0]);
  EXPECT_GT(scale, 0.0);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(std::abs(serial[i]), scale, 1e-10);  // |plane wave| constant
  }
}

TEST(Hamiltonian, KineticOnlyIsDiagonal) {
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(9.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, {}, /*v_depth=*/0.0);

    std::vector<Complex> psi(h.local_coeffs(), Complex{});
    std::vector<Complex> hpsi(psi.size());
    if (!psi.empty()) psi[0] = 1.0;
    h.apply(psi, hpsi);
    // With V = 0, H psi = (g^2/2) psi elementwise.
    const auto& cols = layout.columns_of(comm.rank());
    if (!cols.empty()) {
      const auto& col = basis.columns()[cols[0]];
      const double expect = basis.kinetic()[col.offset];
      EXPECT_NEAR(hpsi[0].real(), expect, 1e-10);
      EXPECT_NEAR(hpsi[0].imag(), 0.0, 1e-10);
    }
    for (std::size_t i = 1; i < hpsi.size(); ++i) {
      EXPECT_LT(std::abs(hpsi[i]), 1e-10);
    }
  });
}

TEST(Hamiltonian, IsHermitian) {
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 0.8, 0.2);
    Solver solver(h, 2, 7);
    solver.init_random();

    auto a = solver.band(0);
    auto b = solver.band(1);
    std::vector<Complex> ha(a.size()), hb(b.size());
    h.apply(a, ha);
    h.apply(b, hb);
    const Complex lhs = solver.inner(a, std::span<const Complex>(hb));
    const Complex rhs = solver.inner(std::span<const Complex>(ha), b);
    EXPECT_LT(std::abs(lhs - rhs), 1e-10);
  });
}

TEST(Solver, FreeElectronEigenvaluesAnalytic) {
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, {}, 0.0);  // V = 0
    constexpr int nb = 4;
    Solver solver(h, nb, 3);
    solver.init_random();
    for (int it = 0; it < 30; ++it) solver.iterate();

    // Analytic spectrum: lowest nb values of g^2/2 = {0, 0.5, 0.5, 0.5}.
    auto kin = basis.kinetic();
    std::sort(kin.begin(), kin.end());
    for (int b = 0; b < nb; ++b) {
      EXPECT_NEAR(solver.eigenvalues()[static_cast<std::size_t>(b)],
                  kin[static_cast<std::size_t>(b)], 1e-8)
          << "band " << b;
    }
  });
}

TEST(Solver, EnergyDecreasesMonotonically) {
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 1.0, 0.2);
    Solver solver(h, 4, 5);
    solver.init_random();
    double prev = solver.iterate();
    for (int it = 0; it < 8; ++it) {
      const double e = solver.iterate();
      EXPECT_LE(e, prev + 1e-9);
      prev = e;
    }
  });
}

TEST(Solver, ParallelMatchesSerialEigenvalues) {
  auto eigen_with = [](int P) {
    std::vector<double> vals;
    simrt::run(P, [&](simrt::Communicator& comm) {
      const Basis basis(4.0);
      const Layout layout(basis, comm.size());
      Hamiltonian h(comm, basis, layout, silicon_supercell(1), 0.7, 0.2);
      Solver solver(h, 3, 9);
      solver.init_random();
      for (int it = 0; it < 10; ++it) solver.iterate();
      if (comm.rank() == 0) vals = solver.eigenvalues();
    });
    return vals;
  };
  const auto serial = eigen_with(1);
  const auto par = eigen_with(4);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(par[i], serial[i], 1e-7) << "band " << i;
  }
}

TEST(Solver, PotentialLowersEnergyBelowFreeElectron) {
  simrt::run(1, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian free_h(comm, basis, layout, {}, 0.0);
    Hamiltonian attr_h(comm, basis, layout, silicon_supercell(1), 1.5, 0.25);
    Solver fs(free_h, 3, 2), as(attr_h, 3, 2);
    fs.init_random();
    as.init_random();
    double ef = 0.0, ea = 0.0;
    for (int it = 0; it < 15; ++it) {
      ef = fs.iterate();
      ea = as.iterate();
    }
    EXPECT_LT(ea, ef);  // attractive wells bind
  });
}

TEST(Workload, ProblemSizeScalesWithAtoms) {
  const auto s432 = problem_size(432);
  const auto s686 = problem_size(686);
  EXPECT_NEAR(s432.npw, 285.0 * 432, 1.0);
  EXPECT_NEAR(s432.nbands, 864.0, 1e-12);
  EXPECT_GT(s686.grid_n, s432.grid_n);
  EXPECT_GT(s686.ncols, s432.ncols);
}

TEST(Workload, ProfileHasPaperAnatomy) {
  Table4Config cfg;
  const auto app = make_profile(cfg);
  const double blas3 = app.kernels.region_flops("blas3");
  const double fft = app.kernels.region_flops("fft_multi");
  const double total = app.kernels.total_flops();
  // BLAS3 and FFT each a substantial share; together the majority.
  EXPECT_GT(blas3 / total, 0.15);
  EXPECT_GT(fft / total, 0.15);
  EXPECT_GT((blas3 + fft) / total, 0.5);
  EXPECT_GT(app.comm.bytes(perf::CommKind::AllToAll), 0.0);
}

TEST(Workload, MultipleFftsLengthenVectors) {
  Table4Config looped;
  looped.multiple_ffts = false;
  Table4Config multi;
  const auto a = make_profile(looped);
  const auto b = make_profile(multi);
  // Identical flops, different loop structure.
  EXPECT_NEAR(a.kernels.region_flops("fft_multi"),
              b.kernels.region_flops("fft_multi"), 1.0);
  const auto sa = perf::compute_vector_stats(a.kernels, 256);
  const auto sb = perf::compute_vector_stats(b.kernels, 256);
  EXPECT_GT(sb.avl, sa.avl);
}

}  // namespace
}  // namespace vpar::paratec
