#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "simrt/runtime.hpp"
#include "trace/chrome_export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace vpar::trace {
namespace {

using namespace std::chrono_literals;

/// Save/restore the global trace mode around each test (the registry and its
/// rings are process-lived, so tests clear them instead).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = mode();
    clear_all();
  }
  void TearDown() override {
    set_mode(saved_);
    clear_all();
  }

 private:
  Mode saved_ = Mode::Off;
};

std::vector<Event> all_events() {
  std::vector<Event> out;
  for (const auto& t : drain_all()) {
    out.insert(out.end(), t.events.begin(), t.events.end());
  }
  return out;
}

/// Post-mortem dumps in `dir` ending in `suffix`, sorted (filenames carry a
/// per-failure timestamp + sequence stamp, so tests glob instead of guessing).
std::vector<std::string> postmortem_files(const std::string& dir,
                                          const std::string& suffix) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("vpar_postmortem.", 0) == 0 && name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- minimal JSON parser (validation only) ----------------------------------
// Just enough of RFC 8259 to verify the exporter emits a well-formed document
// and to walk the traceEvents array. Throws std::runtime_error on malformed
// input.

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  char peek() {
    ws();
    if (i >= s.size()) throw std::runtime_error("json: unexpected end");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("json: expected '") + c + "' at " +
                               std::to_string(i));
    }
    ++i;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) throw std::runtime_error("json: bad escape");
        switch (s[i]) {
          case 'u':
            if (i + 4 >= s.size()) throw std::runtime_error("json: bad \\u");
            i += 4;
            out += '?';
            break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += s[i];
        }
      } else {
        out += s[i];
      }
      ++i;
    }
    expect('"');
    return out;
  }
  void number() {
    if (peek() == '-') ++i;
    bool digits = false;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '+' || s[i] == '-')) {
      ++i;
      digits = true;
    }
    if (!digits) throw std::runtime_error("json: bad number");
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i) {
      if (i >= s.size() || s[i] != *p) throw std::runtime_error("json: bad literal");
    }
  }

  /// Parse any value; calls `on_object_key(key)` for every key of every
  /// object so callers can inspect structure without building a DOM.
  void value(const std::function<void(const std::string&)>& on_object_key) {
    switch (peek()) {
      case '{': {
        expect('{');
        if (peek() == '}') { expect('}'); return; }
        for (;;) {
          const std::string key = string();
          if (on_object_key) on_object_key(key);
          expect(':');
          value(on_object_key);
          if (peek() == ',') { expect(','); continue; }
          expect('}');
          return;
        }
      }
      case '[': {
        expect('[');
        if (peek() == ']') { expect(']'); return; }
        for (;;) {
          value(on_object_key);
          if (peek() == ',') { expect(','); continue; }
          expect(']');
          return;
        }
      }
      case '"': string(); return;
      case 't': literal("true"); return;
      case 'f': literal("false"); return;
      case 'n': literal("null"); return;
      default: number(); return;
    }
  }
};

/// Validate `text` as JSON; returns the multiset of object keys seen.
std::map<std::string, int> parse_json_keys(const std::string& text) {
  std::map<std::string, int> keys;
  JsonParser p(text);
  p.value([&](const std::string& k) { ++keys[k]; });
  p.ws();
  if (p.i != text.size()) throw std::runtime_error("json: trailing garbage");
  return keys;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- ring behaviour ----------------------------------------------------------

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  set_mode(Mode::Off);
  const std::size_t before = all_events().size();
  emit_instant("should.not.appear");
  { TraceSpan span("also.not.appear"); }
  emit_counter("nor.this", 42);
  EXPECT_EQ(all_events().size(), before);
}

TEST_F(TraceTest, FlightRingWrapsOverwritingOldest) {
  set_mode(Mode::Flight);
  set_ring_capacity(16);
  // A fresh thread gets a fresh ring at the small capacity.
  std::thread t([] {
    set_thread_label("wrap-probe");
    for (int i = 0; i < 50; ++i) emit_instant("wrap", i);
  });
  t.join();
  set_ring_capacity(8192);  // restore for later tests' fresh threads

  bool found = false;
  for (const auto& tt : drain_all()) {
    if (tt.label != "wrap-probe") continue;
    found = true;
    EXPECT_EQ(tt.events.size(), 16u);
    EXPECT_EQ(tt.overwritten, 34u);
    // Flight keeps the *newest* events: 50 emitted, the last 16 survive.
    EXPECT_EQ(tt.events.front().arg0, 34);
    EXPECT_EQ(tt.events.back().arg0, 49);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, FullModeSpillsInsteadOfOverwriting) {
  set_mode(Mode::Full);
  set_ring_capacity(16);
  std::thread t([] {
    set_thread_label("spill-probe");
    for (int i = 0; i < 50; ++i) emit_instant("spill", i);
  });
  t.join();
  set_ring_capacity(8192);

  bool found = false;
  for (const auto& tt : drain_all()) {
    if (tt.label != "spill-probe") continue;
    found = true;
    EXPECT_EQ(tt.events.size(), 50u);  // lossless
    EXPECT_EQ(tt.overwritten, 0u);
    EXPECT_EQ(tt.events.front().arg0, 0);
    EXPECT_EQ(tt.events.back().arg0, 49);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, SpanRecordsDurationAndThreadRank) {
  set_mode(Mode::Flight);
  set_thread_rank(3);
  {
    TraceSpan span("timed.region", 7, 9);
    std::this_thread::sleep_for(2ms);
  }
  set_thread_rank(-1);
  bool found = false;
  for (const Event& e : all_events()) {
    if (e.name == nullptr || std::string(e.name) != "timed.region") continue;
    found = true;
    EXPECT_EQ(e.kind, EventKind::Span);
    EXPECT_GE(e.dur_ns, 1'000'000u);
    EXPECT_EQ(e.rank, 3);
    EXPECT_EQ(e.arg0, 7);
    EXPECT_EQ(e.arg1, 9);
  }
  EXPECT_TRUE(found);
}

// Many threads emitting concurrently into their own rings; the test exists
// mainly so TSan (scripts/check.sh runs this binary under -fsanitize=thread)
// proves the emit path free of data races. Drain happens strictly after the
// joins — the documented quiescence contract.
TEST_F(TraceTest, ConcurrentEmitIsCleanUnderTsan) {
  set_mode(Mode::Flight);
  constexpr int kThreads = 8;
  constexpr int kEvents = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_label("emitter", t);
      for (int i = 0; i < kEvents; ++i) {
        TraceSpan span("concurrent.work", t, i);
        if (i % 64 == 0) emit_counter("concurrent.progress", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::size_t emitters = 0;
  for (const auto& tt : drain_all()) {
    if (tt.label.rfind("emitter", 0) == 0 && !tt.events.empty()) ++emitters;
  }
  EXPECT_EQ(emitters, static_cast<std::size_t>(kThreads));
}

// --- exporter ----------------------------------------------------------------

TEST_F(TraceTest, ChromeExportIsValidJson) {
  set_mode(Mode::Flight);
  set_thread_rank(0);
  emit_instant("export.instant", 1, 2);
  { TraceSpan span("export.span", 3, 4); }
  emit_counter("export.counter", 11);
  const std::uint64_t flow = next_flow_id();
  emit_flow_begin("msg", flow);
  emit_flow_end("msg", flow);
  set_thread_rank(-1);

  const std::string path = ::testing::TempDir() + "vpar_trace_export.json";
  ASSERT_TRUE(export_chrome_trace(path, "unit test"));
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());

  std::map<std::string, int> keys;
  ASSERT_NO_THROW(keys = parse_json_keys(text)) << text.substr(0, 400);
  EXPECT_EQ(keys.count("traceEvents"), 1u);
  EXPECT_GE(keys["ph"], 5);  // metadata + our five events
  EXPECT_EQ(keys.count("otherData"), 1u);
  EXPECT_EQ(keys.count("reason"), 1u);
  // The document names our events.
  EXPECT_NE(text.find("\"export.span\""), std::string::npos);
  EXPECT_NE(text.find("\"export.instant\""), std::string::npos);
  EXPECT_NE(text.find("\"unit test\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ExporterEscapesReasonStrings) {
  set_mode(Mode::Flight);
  emit_instant("escape.probe");
  std::ostringstream out;
  write_chrome_trace(out, drain_all(), "line1\nline2 \"quoted\" \\slash");
  ASSERT_NO_THROW(parse_json_keys(out.str())) << out.str();
}

// --- runtime integration -----------------------------------------------------

TEST_F(TraceTest, SendRecvProducesPairedFlowEvents) {
  set_mode(Mode::Flight);
  simrt::run(2, [](simrt::Communicator& comm) {
    std::vector<double> buf(64, static_cast<double>(comm.rank()));
    if (comm.rank() == 0) {
      auto req = comm.isend(1, std::vector<double>(buf), 5);
      req.wait();
    } else {
      comm.recv<double>(0, std::span<double>(buf), 5);
    }
  });

  std::multiset<std::uint64_t> begins, ends;
  for (const Event& e : all_events()) {
    if (e.kind == EventKind::FlowBegin) begins.insert(e.id);
    if (e.kind == EventKind::FlowEnd) ends.insert(e.id);
  }
  ASSERT_FALSE(begins.empty());
  // Every send that was matched has exactly one receive-side flow end.
  for (std::uint64_t id : ends) EXPECT_EQ(begins.count(id), 1u) << id;
  EXPECT_EQ(begins.size(), ends.size());
}

TEST_F(TraceTest, JobSpansCarryRankAttribution) {
  set_mode(Mode::Flight);
  simrt::run(4, [](simrt::Communicator& comm) { comm.barrier(); });

  std::set<int> job_ranks;
  bool saw_barrier = false;
  for (const Event& e : all_events()) {
    if (e.name == nullptr) continue;
    const std::string name(e.name);
    if (name == "job") job_ranks.insert(static_cast<int>(e.arg0));
    if (name == "comm.barrier") saw_barrier = true;
  }
  EXPECT_EQ(job_ranks, (std::set<int>{0, 1, 2, 3}));
  EXPECT_TRUE(saw_barrier);
}

TEST_F(TraceTest, WatchdogTimeoutWritesPostmortem) {
  set_mode(Mode::Flight);
  const std::string dir = ::testing::TempDir() + "pm_watchdog";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("VPAR_TRACE_DIR", dir.c_str(), 1), 0);

  simrt::RunOptions options;
  options.size = 2;
  options.watchdog = 300ms;
  EXPECT_THROW(simrt::run(options,
                          [](simrt::Communicator& comm) {
                            comm.barrier();  // both ranks leave a span
                            if (comm.rank() == 1) {
                              int v = 0;
                              comm.recv<int>(0, std::span<int>(&v, 1), 7);
                            }
                          }),
               simrt::WatchdogTimeout);
  unsetenv("VPAR_TRACE_DIR");

  // Filenames are per-failure (timestamp + sequence): find the dump instead
  // of assuming a fixed name.
  const std::vector<std::string> traces =
      postmortem_files(dir, ".trace.json");
  ASSERT_EQ(traces.size(), 1u);
  const std::string text = slurp(traces[0]);
  ASSERT_FALSE(text.empty());
  ASSERT_NO_THROW(parse_json_keys(text)) << text.substr(0, 400);
  // The dump carries the abort reason and the last moments of both ranks.
  EXPECT_NE(text.find("deadlock watchdog"), std::string::npos);
  EXPECT_NE(text.find("\"comm.barrier\""), std::string::npos);
  EXPECT_NE(text.find("\"watchdog.timeout\""), std::string::npos);
  // Spans from at least two distinct ranks (args carry the rank field).
  EXPECT_NE(text.find("\"rank\":0"), std::string::npos);
  EXPECT_NE(text.find("\"rank\":1"), std::string::npos);

  const std::vector<std::string> metrics_files =
      postmortem_files(dir, ".metrics.json");
  ASSERT_EQ(metrics_files.size(), 1u);
  const std::string metrics = slurp(metrics_files[0]);
  ASSERT_FALSE(metrics.empty());
  ASSERT_NO_THROW(parse_json_keys(metrics)) << metrics.substr(0, 400);
  EXPECT_NE(metrics.find("simrt.aborts_observed"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(TraceTest, PostmortemSkippedWhenTracingOff) {
  set_mode(Mode::Off);
  EXPECT_EQ(write_postmortem("nothing to see"), "");
}

// Concurrent failing jobs used to overwrite one shared vpar_postmortem pair;
// filenames now carry a label, a timestamp and a sequence number, so every
// failure keeps its own dump.
TEST_F(TraceTest, PostmortemFilenamesAreUniqueAndLabelled) {
  set_mode(Mode::Flight);
  const std::string dir = ::testing::TempDir() + "pm_unique";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("VPAR_TRACE_DIR", dir.c_str(), 1), 0);
  emit_instant("pm.test");
  const std::string first = write_postmortem("first failure", "job-1");
  const std::string second = write_postmortem("second failure", "job-2");
  const std::string third = write_postmortem("unlabelled");
  unsetenv("VPAR_TRACE_DIR");

  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  ASSERT_FALSE(third.empty());
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(first.find("vpar_postmortem.job-1."), std::string::npos) << first;
  EXPECT_NE(second.find("vpar_postmortem.job-2."), std::string::npos) << second;
  // All three dumps (and their metrics snapshots) coexist on disk.
  EXPECT_EQ(postmortem_files(dir, ".trace.json").size(), 3u);
  EXPECT_EQ(postmortem_files(dir, ".metrics.json").size(), 3u);
  std::filesystem::remove_all(dir);
}

// --- fault-mode integration --------------------------------------------------

TEST_F(TraceTest, DroppedSendLeavesFaultInstantAndWatchdogFires) {
  set_mode(Mode::Flight);
  simrt::RunOptions options;
  options.size = 2;
  options.watchdog = 300ms;
  options.fault.seed = 11;
  options.fault.drop_prob = 1.0;  // every user send is lost
  EXPECT_THROW(simrt::run(options,
                          [](simrt::Communicator& comm) {
                            std::vector<double> buf(8, 1.0);
                            if (comm.rank() == 0) {
                              comm.send<double>(1, buf, 3);
                            } else {
                              comm.recv<double>(0, std::span<double>(buf), 3);
                            }
                          }),
               simrt::WatchdogTimeout);

  bool saw_drop = false;
  for (const Event& e : all_events()) {
    if (e.name != nullptr && std::string(e.name) == "fault.drop") saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
}

TEST_F(TraceTest, AllocFailureInjectionSurfacesAsRankError) {
  set_mode(Mode::Flight);
  simrt::RunOptions options;
  options.size = 2;
  options.fault.seed = 7;
  options.fault.alloc_fail_prob = 1.0;  // first arena acquire fails
  try {
    simrt::run(options, [](simrt::Communicator& comm) {
      // Payload above the 64-byte inline tier forces an arena acquire.
      std::vector<double> buf(4096, 2.0);
      const int peer = 1 - comm.rank();
      comm.sendrecv<double>(peer, buf, peer, std::span<double>(buf), 9);
    });
    FAIL() << "allocation-failure injection did not surface";
  } catch (const simrt::RankError& e) {
    EXPECT_NE(std::string(e.what()).find("injected arena allocation failure"),
              std::string::npos)
        << e.what();
  } catch (const simrt::JobAborted&) {
    // The non-failing rank may observe the cooperative abort first.
  }

  bool saw_alloc_fail = false;
  for (const Event& e : all_events()) {
    if (e.name != nullptr && std::string(e.name) == "fault.alloc_fail") {
      saw_alloc_fail = true;
    }
  }
  EXPECT_TRUE(saw_alloc_fail);
}

// --- metrics registry --------------------------------------------------------

TEST(Metrics, CountersAndHistogramsAccumulate) {
  auto& m = Metrics::instance();
  auto& c = m.counter("test.counter");
  const std::uint64_t before = c.value();
  c.add(3);
  EXPECT_EQ(c.value(), before + 3);
  EXPECT_EQ(&c, &m.counter("test.counter"));  // stable reference

  auto& h = m.histogram("test.histogram");
  const std::uint64_t count_before = h.count();
  h.record(0);
  h.record(1);
  h.record(1024);
  EXPECT_EQ(h.count(), count_before + 3);
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_limit(1), 1u);
  EXPECT_EQ(Histogram::bucket_limit(11), 2047u);
}

TEST(Metrics, SnapshotDiffIsolatesARegion) {
  auto& c = Metrics::instance().counter("test.diff");
  const MetricsSnapshot before = Metrics::instance().snapshot();
  c.add(5);
  const MetricsSnapshot after = Metrics::instance().snapshot();
  const MetricsSnapshot delta = after.diff(before);
  EXPECT_EQ(delta.counters.at("test.diff"), 5u);
}

TEST(Metrics, JsonAndCsvDumpsAreWellFormed) {
  Metrics::instance().counter("test.dump").add(1);
  Metrics::instance().histogram("test.dump_hist").record(7);
  const MetricsSnapshot snap = Metrics::instance().snapshot();

  std::ostringstream json;
  snap.write_json(json);
  EXPECT_NO_THROW(parse_json_keys(json.str())) << json.str();
  EXPECT_NE(json.str().find("test.dump"), std::string::npos);

  std::ostringstream csv;
  snap.write_csv(csv);
  EXPECT_NE(csv.str().find("metric,value"), std::string::npos);
  EXPECT_NE(csv.str().find("test.dump_hist.count,"), std::string::npos);
}

TEST(Metrics, RuntimeCountersRideTheRegistry) {
  const MetricsSnapshot before = Metrics::instance().snapshot();
  simrt::RunOptions options;
  options.size = 2;
  options.fault.seed = 3;
  options.fault.straggler_ranks = {0};
  options.fault.straggle_us = 50;
  simrt::run(options, [](simrt::Communicator& comm) {
    std::vector<double> buf(8, 1.0);
    const int peer = 1 - comm.rank();
    comm.sendrecv<double>(peer, buf, peer, std::span<double>(buf), 2);
  });
  const MetricsSnapshot delta = Metrics::instance().snapshot().diff(before);
  EXPECT_GT(delta.counters.at("simrt.faults_injected"), 0u);
  EXPECT_GT(delta.counters.at("comm.messages"), 0u);
  EXPECT_GT(delta.counters.at("comm.bytes"), 0u);
}

}  // namespace
}  // namespace vpar::trace
