#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <algorithm>

#include "gtc/simulation.hpp"
#include "lbmhd/simulation.hpp"
#include "simrt/runtime.hpp"
#include "trace/metrics.hpp"

namespace vpar::simrt {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- deadlock watchdog -------------------------------------------------------

// The acceptance scenario from the issue: rank 0 returns without ever sending
// to rank 1, which blocks forever in recv. The watchdog must abort the job
// within its timeout and name the blocked call, source and tag.
TEST(Watchdog, AbortsDeadlockedRecvAndNamesTheWait) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 300ms;
  const auto start = std::chrono::steady_clock::now();
  try {
    run(options, [](Communicator& comm) {
      if (comm.rank() == 1) {
        int v = 0;
        comm.recv<int>(0, std::span<int>(&v, 1), 7);  // never sent
      }
    });
    FAIL() << "deadlocked job returned";
  } catch (const WatchdogTimeout& e) {
    const std::string report = e.what();
    EXPECT_TRUE(contains(report, "deadlock watchdog")) << report;
    EXPECT_TRUE(contains(report, "rank 0: finished")) << report;
    EXPECT_TRUE(contains(report, "rank 1: blocked in wait(irecv)")) << report;
    EXPECT_TRUE(contains(report, "source 0, tag 7")) << report;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 5s);  // fired by the watchdog, not a test timeout
}

// The report must expose the queue state a deadlock post-mortem needs:
// messages nobody received and receives nobody matched.
TEST(Watchdog, ReportListsQueuedMessagesAndPendingReceives) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 300ms;
  try {
    run(options, [](Communicator& comm) {
      if (comm.rank() == 0) {
        const int v = 9;
        comm.send<int>(1, std::span<const int>(&v, 1), 4);  // never received
      } else {
        int a = 0;
        Request pending = comm.irecv<int>(0, std::span<int>(&a, 1), 3);
        int b = 0;
        comm.recv<int>(0, std::span<int>(&b, 1), 5);  // never sent: deadlock
        pending.wait();
      }
    });
    FAIL() << "deadlocked job returned";
  } catch (const WatchdogTimeout& e) {
    const std::string report = e.what();
    EXPECT_TRUE(contains(report, "1 queued")) << report;
    // Two posted receives park unmatched: the explicit irecv and the one
    // the blocking recv posts internally.
    EXPECT_TRUE(contains(report, "2 pending recv")) << report;
  }
}

// A slow-but-alive job must not trip the watchdog: as long as one rank is
// running (not blocked), the deadlock scan declares the job alive.
TEST(Watchdog, DoesNotFireOnSlowComputation) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 100ms;
  const RunResult result = run(options, [](Communicator& comm) {
    if (comm.rank() == 0) std::this_thread::sleep_for(450ms);
    comm.barrier();
  });
  EXPECT_EQ(result.size(), 2);
}

// --- cooperative abort -------------------------------------------------------

// When one rank dies, peers blocked in receives must be woken with JobAborted
// instead of deadlocking, and the caller must see the original failure.
TEST(CooperativeAbort, WakesPeersBlockedInRecv) {
  RunOptions options;
  options.size = 3;
  options.watchdog = 5s;  // backstop only; the abort must wake peers itself
  const auto start = std::chrono::steady_clock::now();
  try {
    run(options, [](Communicator& comm) {
      if (comm.rank() == 2) {
        std::this_thread::sleep_for(50ms);  // let peers block first
        throw std::runtime_error("rank 2 exploded");
      }
      int v = 0;
      comm.recv<int>(2, std::span<int>(&v, 1), 1);  // never arrives
    });
    FAIL() << "job with a dead rank returned";
  } catch (const RankError& e) {
    EXPECT_EQ(e.failed_rank(), 2);
    EXPECT_TRUE(contains(e.what(), "rank 2 exploded")) << e.what();
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start, 3s);
}

// Same for peers parked in the rendezvous barrier (the P<=8 barrier path and
// the CoArray sync fence).
TEST(CooperativeAbort, WakesPeersBlockedInRendezvousBarrier) {
  RunOptions options;
  options.size = 4;
  options.watchdog = 5s;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(run(options,
                   [](Communicator& comm) {
                     if (comm.rank() == 3) {
                       std::this_thread::sleep_for(50ms);
                       throw std::runtime_error("boom");
                     }
                     comm.barrier();  // rendezvous path for P=4
                   }),
               RankError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 3s);
}

// The pool must survive an aborted job: the very next run on the same
// executor must work and report clean instrumentation.
TEST(CooperativeAbort, PoolStaysHealthyAfterAbortedJob) {
  RunOptions options;
  options.size = 4;
  options.watchdog = 2s;
  EXPECT_THROW(run(options,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) throw std::runtime_error("die");
                     comm.barrier();
                   }),
               RankError);
  const RunResult result = run(4, [](Communicator& comm) {
    const double sum = comm.allreduce(1.0, ReduceOp::Sum);
    if (sum != 4.0) throw std::runtime_error("bad allreduce after abort");
  });
  EXPECT_DOUBLE_EQ(result.merged.comm().aborts_observed(), 0.0);
}

// --- rank failure annotation -------------------------------------------------

// The exception rethrown by run() must name the failing rank and its last
// communication call site (issue satellite: debuggable failures).
TEST(RankFailure, ErrorNamesRankAndCommCallSite) {
  RunOptions options;
  options.size = 4;
  options.watchdog = 5s;
  options.fault.fail_rank = 2;
  options.fault.fail_at_call = 3;
  try {
    run(options, [](Communicator& comm) {
      for (int i = 0; i < 5; ++i) comm.barrier();
    });
    FAIL() << "fault-injected job returned";
  } catch (const RankError& e) {
    EXPECT_EQ(e.failed_rank(), 2);
    EXPECT_TRUE(contains(e.what(), "rank 2 failed")) << e.what();
    EXPECT_TRUE(contains(e.what(), "comm call #3")) << e.what();
    EXPECT_TRUE(contains(e.what(), "(barrier)")) << e.what();
    EXPECT_TRUE(contains(e.what(), "injected rank failure")) << e.what();
  }
}

// Replaying the same seed and plan must produce the identical failure.
TEST(RankFailure, InjectedFailureIsDeterministic) {
  RunOptions options;
  options.size = 3;
  options.watchdog = 5s;
  options.fault.seed = 1234;
  options.fault.fail_rank = 1;
  options.fault.fail_at_call = 2;
  auto what_of = [&] {
    try {
      run(options, [](Communicator& comm) {
        for (int i = 0; i < 4; ++i) (void)comm.allreduce(1, ReduceOp::Sum);
      });
      return std::string("(no error)");
    } catch (const RankError& e) {
      return std::string(e.what());
    }
  };
  const std::string first = what_of();
  const std::string second = what_of();
  EXPECT_TRUE(contains(first, "comm call #2")) << first;
  EXPECT_EQ(first, second);
}

// --- benign fault modes ------------------------------------------------------

// Delays and stragglers perturb timing only: results must be identical to a
// clean run, and the injected faults must be visible in the profile.
TEST(FaultInjection, DelaysAndStragglersPreserveResults) {
  RunOptions options;
  options.size = 4;
  options.watchdog = 10s;
  options.fault.seed = 7;
  options.fault.delay_prob = 0.5;
  options.fault.delay_max_us = 200;
  options.fault.straggler_ranks = {2};
  options.fault.straggle_us = 100;
  std::array<double, 4> chaotic{};
  const RunResult result = run(options, [&](Communicator& comm) {
    double value = static_cast<double>(comm.rank() + 1);
    for (int i = 0; i < 8; ++i) value = comm.allreduce(value, ReduceOp::Sum);
    chaotic[static_cast<std::size_t>(comm.rank())] = value;
  });
  std::array<double, 4> clean{};
  run(4, [&](Communicator& comm) {
    double value = static_cast<double>(comm.rank() + 1);
    for (int i = 0; i < 8; ++i) value = comm.allreduce(value, ReduceOp::Sum);
    clean[static_cast<std::size_t>(comm.rank())] = value;
  });
  EXPECT_EQ(chaotic, clean);
  EXPECT_GT(result.merged.comm().faults_injected(), 0.0);
}

// An injected bit-flip must surface as a checksum failure when checksums are
// on. (The ChecksumError is annotated as a RankError at the run() boundary.)
TEST(FaultInjection, BitflipDetectedByChecksum) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  options.checksums = true;
  options.fault.seed = 99;
  options.fault.bitflip_prob = 1.0;
  try {
    run(options, [](Communicator& comm) {
      std::vector<double> buf(32, 1.5);
      if (comm.rank() == 0) {
        comm.send<double>(1, std::span<const double>(buf), 2);
      } else {
        comm.recv<double>(0, std::span<double>(buf), 2);
      }
    });
    FAIL() << "corrupted payload went undetected";
  } catch (const RankError& e) {
    EXPECT_EQ(e.failed_rank(), 1);
    EXPECT_TRUE(contains(e.what(), "checksum mismatch")) << e.what();
  }
}

// Without checksums the same flip is silent corruption — the run succeeds
// and the receiver observes altered bytes. This is the contract the
// checksums option exists to close.
TEST(FaultInjection, BitflipIsSilentWithoutChecksums) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  options.checksums = false;
  options.fault.seed = 99;
  options.fault.bitflip_prob = 1.0;
  std::vector<double> sent(32, 1.5);
  std::vector<double> received(32, 0.0);
  const RunResult result = run(options, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, std::span<const double>(sent), 2);
    } else {
      comm.recv<double>(0, std::span<double>(received), 2);
    }
  });
  EXPECT_NE(0, std::memcmp(sent.data(), received.data(),
                           sent.size() * sizeof(double)));
  EXPECT_GT(result.merged.comm().faults_injected(), 0.0);
}

// Injected reordering may only jump messages across (source, tag) streams:
// the per-(sender, tag) FIFO guarantee holds under maximum reorder pressure.
TEST(FaultInjection, ReorderPreservesPerStreamFifo) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 10s;
  options.fault.seed = 5;
  options.fault.reorder_prob = 1.0;
  constexpr int kN = 40;
  run(options, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        comm.send<int>(1, std::span<const int>(&i, 1), 7);
        const int noise = -i;
        comm.send<int>(1, std::span<const int>(&noise, 1), 8);
      }
    } else {
      int previous = -1;
      for (int i = 0; i < kN; ++i) {
        int v = 0;
        comm.recv<int>(0, std::span<int>(&v, 1), 7);
        EXPECT_GT(v, previous);  // stream order intact
        previous = v;
      }
      for (int i = 0; i < kN; ++i) {
        int v = 0;
        comm.recv<int>(0, std::span<int>(&v, 1), 8);
      }
    }
  });
}

// --- request cancellation (issue satellite) ---------------------------------

// An irecv destroyed before its match must neither dangle (the message may
// not be written through the dead buffer) nor leak its arena buffer: on a
// warmed-up second run the payload traffic must be fully recycled.
TEST(RequestCancellation, CancelledIrecvNeitherDanglesNorLeaks) {
  // Which thread frees a payload depends on the send/recv race: direct
  // handoff into a posted buffer frees on the sender, queued-then-matched
  // frees on the receiver — and a receiver-side free parks the block in the
  // receiver's thread cache, where the sender's next acquire cannot see it.
  // To make the measured run's recycling independent of how each race goes,
  // the warm job deterministically overflows the receiver's per-thread cache
  // (256 KiB / 8 KiB payloads = 32 blocks): every send is queued before any
  // receive posts, so all frees land on the receiver and the overflow spills
  // to the shared free lists the sender *can* reach.
  constexpr std::size_t kElems = 1024;  // well past inline capacity: arena
  auto warm = [](Communicator& comm) {
    constexpr int kWarm = 40;  // > per-thread cache cap of 32 blocks
    if (comm.rank() == 0) {
      std::vector<double> data(kElems, 1.0);
      for (int i = 0; i < kWarm; ++i) {
        comm.send<double>(1, std::span<const double>(data), 9);
      }
    }
    comm.barrier();
    if (comm.rank() == 1) {
      std::vector<double> got(kElems, 0.0);
      for (int i = 0; i < kWarm; ++i) {
        comm.recv<double>(0, std::span<double>(got), 9);
      }
    }
  };
  constexpr int kIters = 16;
  auto job = [](Communicator& comm) {
    if (comm.rank() == 1) {
      std::vector<double> doomed(kElems);
      Request r = comm.irecv<double>(0, std::span<double>(doomed), 9);
      // Destroyed before any match: the runtime must stop matching it.
    }
    comm.barrier();
    // Lockstep round trips (the ack is inline-sized, no arena traffic):
    // buffered sends would otherwise run ahead of the receiver's frees.
    for (int i = 0; i < kIters; ++i) {
      if (comm.rank() == 0) {
        std::vector<double> data(kElems, 3.25);
        comm.send<double>(1, std::span<const double>(data), 9);
        int ack = 0;
        comm.recv<int>(1, std::span<int>(&ack, 1), 10);
      } else {
        std::vector<double> got(kElems, 0.0);
        comm.recv<double>(0, std::span<double>(got), 9);
        EXPECT_DOUBLE_EQ(got.front(), 3.25);
        EXPECT_DOUBLE_EQ(got.back(), 3.25);
        const int ack = i;
        comm.send<int>(0, std::span<const int>(&ack, 1), 10);
      }
    }
  };
  (void)run(2, warm);  // fill the shared free lists
  const RunResult warmed = run(2, job);
  EXPECT_DOUBLE_EQ(warmed.merged.comm().payload_allocs(), 0.0);
  EXPECT_GE(warmed.merged.comm().payload_recycles(), 1.0);
}

// --- retry policy ------------------------------------------------------------

TEST(RetryPolicy, RetriesTransientFailureThenSucceeds) {
  std::atomic<int> attempts{0};
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff = 1ms;
  const RetryResult r = run_with_retry(
      options,
      [&](Communicator& comm) {
        if (comm.rank() == 0) {
          const int attempt = attempts.fetch_add(1) + 1;
          if (attempt < 3) throw std::runtime_error("transient");
        }
        comm.barrier();
      },
      policy);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(attempts.load(), 3);
}

TEST(RetryPolicy, GivesUpAfterBoundedRetriesAndRethrows) {
  std::atomic<int> attempts{0};
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.backoff = 1ms;
  EXPECT_THROW(run_with_retry(
                   options,
                   [&](Communicator& comm) {
                     if (comm.rank() == 0) {
                       attempts.fetch_add(1);
                       throw std::runtime_error("permanent");
                     }
                     comm.barrier();
                   },
                   policy),
               RankError);
  EXPECT_EQ(attempts.load(), 2);  // first try + one retry
}

// Injected faults are disarmed on retry by default: a plan that always kills
// rank 0 still converges on the second attempt.
TEST(RetryPolicy, DisarmsFaultPlanOnRetry) {
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  options.fault.fail_rank = 0;
  options.fault.fail_at_call = 1;
  const RetryResult r = run_with_retry(
      options, [](Communicator& comm) { comm.barrier(); });
  EXPECT_EQ(r.attempts, 2);
}

// --- per-job deadlines -------------------------------------------------------

TEST(Deadline, AbortsRunningJobAndNamesTheOverrun) {
  RunOptions options;
  options.size = 2;
  options.deadline = std::chrono::steady_clock::now() + 100ms;
  const auto start = std::chrono::steady_clock::now();
  try {
    run(options, [](Communicator& comm) {
      int v = 0;
      const int peer = comm.rank() == 0 ? 1 : 0;
      comm.recv<int>(peer, std::span<int>(&v, 1), 9);  // never sent
    });
    FAIL() << "job survived its deadline";
  } catch (const DeadlineExceeded& e) {
    EXPECT_TRUE(contains(e.what(), "deadline")) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 5s);  // killed by the deadline, not a test timeout
}

TEST(Deadline, GenerousDeadlineDoesNotPerturbTheJob) {
  RunOptions options;
  options.size = 2;
  options.deadline = std::chrono::steady_clock::now() + 30s;
  const RunResult r = run(options, [](Communicator& comm) { comm.barrier(); });
  EXPECT_EQ(r.size(), 2);
}

// The deadline is an absolute budget: once it fires, rerunning cannot buy it
// back, so the retry loop must rethrow instead of retrying.
TEST(Deadline, ExpiredBudgetIsNeverRetried) {
  std::atomic<int> attempts{0};
  RunOptions options;
  options.size = 2;
  options.deadline = std::chrono::steady_clock::now() + 80ms;
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff = 1ms;
  EXPECT_THROW(run_with_retry(
                   options,
                   [&](Communicator& comm) {
                     if (comm.rank() == 0) attempts.fetch_add(1);
                     int v = 0;
                     const int peer = comm.rank() == 0 ? 1 : 0;
                     comm.recv<int>(peer, std::span<int>(&v, 1), 9);
                   },
                   policy),
               DeadlineExceeded);
  EXPECT_EQ(attempts.load(), 1);
}

// A retry whose backoff pause alone would sleep past the deadline is not
// attempted: the failure is rethrown immediately with the budget intact.
TEST(RetryPolicy, NoRetryWhosePauseWouldSleepPastTheDeadline) {
  std::atomic<int> attempts{0};
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  options.deadline = std::chrono::steady_clock::now() + 200ms;
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff = std::chrono::milliseconds{10'000};
  EXPECT_THROW(run_with_retry(
                   options,
                   [&](Communicator& comm) {
                     if (comm.rank() == 0) {
                       attempts.fetch_add(1);
                       throw std::runtime_error("permanent");
                     }
                     comm.barrier();
                   },
                   policy),
               RankError);
  EXPECT_EQ(attempts.load(), 1);
}

// --- backoff shape -----------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyToTheCap) {
  RetryPolicy policy;
  policy.backoff = 10ms;
  policy.backoff_factor = 2.0;
  policy.max_backoff = 80ms;
  policy.jitter = 0.0;
  EXPECT_EQ(retry_backoff(policy, 0), 10ms);
  EXPECT_EQ(retry_backoff(policy, 1), 20ms);
  EXPECT_EQ(retry_backoff(policy, 2), 40ms);
  EXPECT_EQ(retry_backoff(policy, 3), 80ms);
  EXPECT_EQ(retry_backoff(policy, 9), 80ms);  // capped, no overflow
}

TEST(RetryPolicy, JitterIsBoundedDeterministicAndSeedDependent) {
  RetryPolicy policy;
  policy.backoff = 1000ms;
  policy.backoff_factor = 2.0;
  policy.max_backoff = std::chrono::milliseconds{0};  // uncapped
  policy.jitter = 0.5;
  std::vector<std::chrono::milliseconds> pauses;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    policy.jitter_seed = seed;
    const auto pause = retry_backoff(policy, 2);  // base 4000ms
    EXPECT_GE(pause, 2000ms) << "seed " << seed;
    EXPECT_LE(pause, 4000ms) << "seed " << seed;
    EXPECT_EQ(pause, retry_backoff(policy, 2)) << "seed " << seed;
    pauses.push_back(pause);
  }
  std::sort(pauses.begin(), pauses.end());
  pauses.erase(std::unique(pauses.begin(), pauses.end()), pauses.end());
  EXPECT_GT(pauses.size(), 1u);  // seeds actually de-synchronize the herd
}

// Every attempt bumps retry.attempts on the process-wide registry; an
// exhausted chain bumps retry.giveups as the failure is rethrown.
TEST(RetryPolicy, MetersAttemptsAndGiveups) {
  const auto before = trace::Metrics::instance().snapshot();
  RunOptions options;
  options.size = 2;
  options.watchdog = 5s;
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.backoff = 1ms;
  const RetryResult ok = run_with_retry(
      options, [](Communicator& comm) { comm.barrier(); }, policy);
  EXPECT_EQ(ok.attempts, 1);
  EXPECT_THROW(run_with_retry(
                   options,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) throw std::runtime_error("permanent");
                     comm.barrier();
                   },
                   policy),
               RankError);
  const auto diff = trace::Metrics::instance().snapshot().diff(before);
  const auto counter = [&](const char* name) {
    const auto it = diff.counters.find(name);
    return it == diff.counters.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(counter("retry.attempts"), 3u);  // 1 success + 2 failed attempts
  EXPECT_EQ(counter("retry.giveups"), 1u);
}

// --- chaos vs clean application runs ----------------------------------------

lbmhd::Options lbmhd_test_options() {
  lbmhd::Options o;
  o.nx = 32;
  o.ny = 32;
  o.px = 2;
  o.py = 2;
  return o;
}

bool diagnostics_equal(const lbmhd::Diagnostics& a, const lbmhd::Diagnostics& b) {
  return a.mass == b.mass && a.momentum_x == b.momentum_x &&
         a.momentum_y == b.momentum_y && a.bx_total == b.bx_total &&
         a.by_total == b.by_total && a.kinetic_energy == b.kinetic_energy &&
         a.magnetic_energy == b.magnetic_energy;
}

// Benign chaos (delays + a straggler) must not change LBMHD physics at all:
// the diagnostics of a chaotic run are bitwise-identical to a clean run.
TEST(ChaosRun, LbmhdDiagnosticsBitwiseIdenticalUnderBenignChaos) {
  const auto opts = lbmhd_test_options();
  auto body = [&](Communicator& comm, lbmhd::Diagnostics& out) {
    lbmhd::Simulation sim(comm, opts);
    sim.initialize(lbmhd::orszag_tang_ic());
    sim.run(4);
    const auto d = sim.diagnostics();
    if (comm.rank() == 0) out = d;
  };
  lbmhd::Diagnostics clean;
  run(4, [&](Communicator& comm) { body(comm, clean); });

  RunOptions options;
  options.size = 4;
  options.watchdog = 30s;
  options.fault.seed = 21;
  options.fault.delay_prob = 0.2;
  options.fault.delay_max_us = 100;
  options.fault.straggler_ranks = {1};
  options.fault.straggle_us = 50;
  lbmhd::Diagnostics chaotic;
  const RunResult result =
      run(options, [&](Communicator& comm) { body(comm, chaotic); });
  EXPECT_TRUE(diagnostics_equal(clean, chaotic));
  EXPECT_GT(result.merged.comm().faults_injected(), 0.0);
}

// The issue's checkpoint/restart acceptance test, LBMHD edition: a run that
// is killed mid-flight by an injected rank failure, restored from its last
// checkpoint and retried must produce bitwise-identical diagnostics to a
// fault-free run of the same length.
TEST(CheckpointRestart, LbmhdFaultRestoreRerunBitwiseIdentical) {
  const auto opts = lbmhd_test_options();
  constexpr int kStepsBefore = 3;
  constexpr int kStepsAfter = 3;

  // Reference: clean, uninterrupted run.
  lbmhd::Diagnostics reference;
  run(4, [&](Communicator& comm) {
    lbmhd::Simulation sim(comm, opts);
    sim.initialize(lbmhd::orszag_tang_ic());
    sim.run(kStepsBefore + kStepsAfter);
    const auto d = sim.diagnostics();
    if (comm.rank() == 0) reference = d;
  });

  // Probe: comm calls consumed by the pre-checkpoint phase, so the injected
  // failure can be aimed squarely at the post-checkpoint phase.
  std::uint64_t calls_before = 0;
  run(4, [&](Communicator& comm) {
    lbmhd::Simulation sim(comm, opts);
    sim.initialize(lbmhd::orszag_tang_ic());
    sim.run(kStepsBefore);
    if (comm.rank() == 1) calls_before = comm.comm_calls();
  });
  ASSERT_GT(calls_before, 0u);

  // Chaos: rank 1 is killed two calls into the post-checkpoint phase (the
  // +1 skips the checkpoint barrier). The retry restores and reruns.
  std::vector<lbmhd::Simulation::Checkpoint> checkpoints(4);
  std::atomic<bool> have_checkpoint{false};
  RunOptions options;
  options.size = 4;
  options.watchdog = 30s;
  options.fault.fail_rank = 1;
  options.fault.fail_at_call = calls_before + 2;
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff = 1ms;
  lbmhd::Diagnostics recovered;
  const RetryResult r = run_with_retry(
      options,
      [&](Communicator& comm) {
        lbmhd::Simulation sim(comm, opts);
        sim.initialize(lbmhd::orszag_tang_ic());
        if (have_checkpoint.load()) {
          sim.restore_state(checkpoints[static_cast<std::size_t>(comm.rank())]);
        } else {
          sim.run(kStepsBefore);
          checkpoints[static_cast<std::size_t>(comm.rank())] = sim.save_state();
          comm.barrier();  // every rank checkpointed before anyone may die
          if (comm.rank() == 0) have_checkpoint.store(true);
        }
        sim.run(kStepsAfter);
        const auto d = sim.diagnostics();
        if (comm.rank() == 0) recovered = d;
      },
      policy);
  EXPECT_EQ(r.attempts, 2);  // the injected kill really happened
  EXPECT_TRUE(have_checkpoint.load());
  EXPECT_TRUE(diagnostics_equal(reference, recovered));
}

// Same acceptance test, GTC edition: the particle population is the full
// evolving state, so restore + rerun must reproduce the clean run exactly.
TEST(CheckpointRestart, GtcFaultRestoreRerunBitwiseIdentical) {
  gtc::Options opts;
  opts.ngx = 16;
  opts.ngy = 16;
  opts.nplanes = 4;
  opts.particles_per_cell = 4;
  constexpr int kStepsBefore = 2;
  constexpr int kStepsAfter = 2;

  double ref_energy = 0.0, ref_charge = 0.0;
  run(4, [&](Communicator& comm) {
    gtc::Simulation sim(comm, opts);
    sim.load_particles();
    sim.run(kStepsBefore + kStepsAfter);
    const double e = sim.field_energy();
    const double q = sim.global_particle_charge();
    if (comm.rank() == 0) {
      ref_energy = e;
      ref_charge = q;
    }
  });

  std::uint64_t calls_before = 0;
  run(4, [&](Communicator& comm) {
    gtc::Simulation sim(comm, opts);
    sim.load_particles();
    sim.run(kStepsBefore);
    if (comm.rank() == 1) calls_before = comm.comm_calls();
  });
  ASSERT_GT(calls_before, 0u);

  std::vector<gtc::Simulation::Checkpoint> checkpoints(4);
  std::atomic<bool> have_checkpoint{false};
  RunOptions options;
  options.size = 4;
  options.watchdog = 30s;
  options.fault.fail_rank = 1;
  options.fault.fail_at_call = calls_before + 2;
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff = 1ms;
  double got_energy = 0.0, got_charge = 0.0;
  const RetryResult r = run_with_retry(
      options,
      [&](Communicator& comm) {
        gtc::Simulation sim(comm, opts);
        sim.load_particles();
        if (have_checkpoint.load()) {
          sim.restore_state(checkpoints[static_cast<std::size_t>(comm.rank())]);
        } else {
          sim.run(kStepsBefore);
          checkpoints[static_cast<std::size_t>(comm.rank())] = sim.save_state();
          comm.barrier();
          if (comm.rank() == 0) have_checkpoint.store(true);
        }
        sim.run(kStepsAfter);
        const double e = sim.field_energy();
        const double q = sim.global_particle_charge();
        if (comm.rank() == 0) {
          got_energy = e;
          got_charge = q;
        }
      },
      policy);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(have_checkpoint.load());
  EXPECT_EQ(ref_energy, got_energy);  // bitwise
  EXPECT_EQ(ref_charge, got_charge);
}

}  // namespace
}  // namespace vpar::simrt
