#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "blas/blas.hpp"

namespace vpar::blas {
namespace {

std::vector<double> random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> m(rows * cols);
  for (auto& v : m) v = dist(rng);
  return m;
}

std::vector<Complex> random_cmatrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> m(rows * cols);
  for (auto& v : m) v = Complex(dist(rng), dist(rng));
  return m;
}

template <typename T>
T ref_fetch(Trans t, const std::vector<T>& a, std::size_t ld, std::size_t i,
            std::size_t j) {
  if (t == Trans::None) return a[i * ld + j];
  const T v = a[j * ld + i];
  if constexpr (std::is_same_v<T, Complex>) {
    if (t == Trans::ConjTranspose) return std::conj(v);
  }
  return v;
}

template <typename T>
std::vector<T> naive_gemm(Trans ta, Trans tb, std::size_t m, std::size_t n,
                          std::size_t k, T alpha, const std::vector<T>& a,
                          std::size_t lda, const std::vector<T>& b, std::size_t ldb,
                          T beta, const std::vector<T>& c0, std::size_t ldc) {
  std::vector<T> c = c0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T s{};
      for (std::size_t p = 0; p < k; ++p) {
        s += ref_fetch(ta, a, lda, i, p) * ref_fetch(tb, b, ldb, p, j);
      }
      c[i * ldc + j] = alpha * s + beta * c0[i * ldc + j];
    }
  }
  return c;
}

struct GemmShape {
  std::size_t m, n, k;
};

class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, RealMatchesNaive) {
  const auto [m, n, k] = GetParam();
  auto a = random_matrix(m, k, 1);
  auto b = random_matrix(k, n, 2);
  auto c = random_matrix(m, n, 3);
  auto expect = naive_gemm(Trans::None, Trans::None, m, n, k, 1.5, a, k, b, n, 0.5, c, n);
  gemm(Trans::None, Trans::None, m, n, k, 1.5, a.data(), k, b.data(), n, 0.5,
       c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-10);
}

TEST_P(GemmSweep, ComplexMatchesNaive) {
  const auto [m, n, k] = GetParam();
  auto a = random_cmatrix(m, k, 4);
  auto b = random_cmatrix(k, n, 5);
  auto c = random_cmatrix(m, n, 6);
  const Complex alpha(0.7, -0.3), beta(0.2, 0.1);
  auto expect = naive_gemm(Trans::None, Trans::None, m, n, k, alpha, a, k, b, n, beta,
                           c, n);
  gemm(Trans::None, Trans::None, m, n, k, alpha, a.data(), k, b.data(), n, beta,
       c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_LT(std::abs(c[i] - expect[i]), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep,
                         ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                                           GemmShape{16, 16, 16},
                                           GemmShape{65, 64, 63},
                                           GemmShape{128, 20, 70},
                                           GemmShape{7, 130, 65}));

TEST(Gemm, TransposedOperands) {
  constexpr std::size_t m = 17, n = 13, k = 9;
  auto at = random_matrix(k, m, 7);  // stored k x m, used as A^T
  auto b = random_matrix(k, n, 8);
  std::vector<double> c(m * n, 0.0);
  auto expect =
      naive_gemm(Trans::Transpose, Trans::None, m, n, k, 1.0, at, m, b, n, 0.0, c, n);
  gemm(Trans::Transpose, Trans::None, m, n, k, 1.0, at.data(), m, b.data(), n, 0.0,
       c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-10);
}

TEST(Gemm, ConjTransposeComplex) {
  constexpr std::size_t m = 8, n = 6, k = 10;
  auto ah = random_cmatrix(k, m, 9);
  auto b = random_cmatrix(k, n, 10);
  std::vector<Complex> c(m * n);
  auto expect = naive_gemm(Trans::ConjTranspose, Trans::None, m, n, k, Complex(1.0),
                           ah, m, b, n, Complex(0.0), c, n);
  gemm(Trans::ConjTranspose, Trans::None, m, n, k, Complex(1.0), ah.data(), m,
       b.data(), n, Complex(0.0), c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_LT(std::abs(c[i] - expect[i]), 1e-10);
}

TEST(Gemm, IdentityLeavesMatrixUnchanged) {
  constexpr std::size_t n = 33;
  std::vector<double> eye(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eye[i * n + i] = 1.0;
  auto b = random_matrix(n, n, 11);
  std::vector<double> c(n * n, 0.0);
  gemm(Trans::None, Trans::None, n, n, n, 1.0, eye.data(), n, b.data(), n, 0.0,
       c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], b[i], 1e-12);
}

TEST(Level1, AxpyDotNrm2Scal) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {4.0, 5.0, 6.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(x)), std::sqrt(14.0));
  scal(0.5, std::span<double>(x));
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(Level1, ComplexDotcConjugatesFirstArgument) {
  std::vector<Complex> x = {Complex(0.0, 1.0)};
  std::vector<Complex> y = {Complex(0.0, 1.0)};
  const Complex d = dotc(x, y);
  EXPECT_DOUBLE_EQ(d.real(), 1.0);
  EXPECT_DOUBLE_EQ(d.imag(), 0.0);
  EXPECT_DOUBLE_EQ(nrm2(std::span<const Complex>(x)), 1.0);
}

TEST(Level1, SizeMismatchThrows) {
  std::vector<double> x(3), y(4);
  EXPECT_THROW(axpy(1.0, x, y), std::runtime_error);
  EXPECT_THROW(dot(x, y), std::runtime_error);
}

TEST(Gemm, FlopCounters) {
  EXPECT_DOUBLE_EQ(gemm_flops_real(10, 10, 10), 2000.0);
  EXPECT_DOUBLE_EQ(gemm_flops_complex(10, 10, 10), 8000.0);
}

}  // namespace
}  // namespace vpar::blas
