// The paper's qualitative conclusions, encoded as regression tests against
// the workload generators + machine models. If a calibration change breaks
// the study's shape — who wins, by roughly what factor, where the penalties
// land — these tests fail.

#include <gtest/gtest.h>

#include "arch/machine_model.hpp"
#include "cactus/workload.hpp"
#include "gtc/workload.hpp"
#include "lbmhd/workload.hpp"
#include "paratec/workload.hpp"

namespace vpar {
namespace {

using arch::MachineModel;
using arch::Prediction;

Prediction lbmhd_pred(const arch::PlatformSpec& p, std::size_t grid, int procs,
                      bool caf = false) {
  lbmhd::Table3Config cfg;
  cfg.nx = cfg.ny = grid;
  cfg.procs = procs;
  cfg.caf = caf;
  cfg.blocked_collision = !p.is_vector;
  return MachineModel(p).predict(lbmhd::make_profile(cfg));
}

Prediction paratec_pred(const arch::PlatformSpec& p, int atoms, int procs) {
  paratec::Table4Config cfg;
  cfg.atoms = atoms;
  cfg.procs = procs;
  cfg.multiple_ffts = p.is_vector;
  return MachineModel(p).predict(paratec::make_profile(cfg));
}

Prediction cactus_pred(const arch::PlatformSpec& p, bool large, int procs) {
  cactus::Table5Config cfg;
  if (large) {
    cfg.nxl = 250;
    cfg.nyl = cfg.nzl = 64;
  }
  cfg.procs = procs;
  cfg.rhs_variant =
      p.is_vector ? cactus::RhsVariant::Vector : cactus::RhsVariant::Blocked;
  cfg.bc_variant = p.name == "X1" ? cactus::BoundaryVariant::Vectorized
                                  : cactus::BoundaryVariant::Scalar;
  if (p.name == "X1") cfg.production_derate = 0.30;
  return MachineModel(p).predict(cactus::make_profile(cfg));
}

Prediction gtc_pred(const arch::PlatformSpec& p, int ppc, int procs) {
  gtc::Table6Config cfg;
  cfg.particles_per_cell = ppc;
  cfg.procs = procs;
  if (p.is_vector) {
    cfg.deposit = gtc::DepositVariant::WorkVector;
    cfg.vlen = p.vector_length;
    cfg.shift_variant = p.name == "X1" ? gtc::ShiftVariant::TwoPass
                                       : gtc::ShiftVariant::NestedIf;
  }
  return MachineModel(p).predict(gtc::make_profile(cfg));
}

TEST(PaperShapes, EsSustainsHighestFractionOfPeakEverywhere) {
  // "the ES consistently sustained a significantly higher fraction of peak
  // than the X1" — and than every superscalar on every application.
  for (const auto& other : arch::all_platforms()) {
    if (other.name == "ES") continue;
    EXPECT_GT(lbmhd_pred(arch::earth_simulator(), 8192, 64).pct_peak,
              lbmhd_pred(other, 8192, 64).pct_peak)
        << "LBMHD vs " << other.name;
    EXPECT_GT(paratec_pred(arch::earth_simulator(), 686, 64).pct_peak,
              paratec_pred(other, 686, 64).pct_peak * 0.8)
        << "PARATEC vs " << other.name;
    EXPECT_GT(gtc_pred(arch::earth_simulator(), 100, 64).pct_peak,
              gtc_pred(other, 100, 64).pct_peak)
        << "GTC vs " << other.name;
  }
}

TEST(PaperShapes, LbmhdVectorSpeedupInPaperRange) {
  // ~44x vs Power3 at P=64 (paper), 30x at high concurrency; require 20-60x.
  const double es = lbmhd_pred(arch::earth_simulator(), 4096, 64).gflops_per_proc;
  const double p3 = lbmhd_pred(arch::power3(), 4096, 64).gflops_per_proc;
  EXPECT_GT(es / p3, 20.0);
  EXPECT_LT(es / p3, 60.0);
}

TEST(PaperShapes, LbmhdVectorStatsNearMaximum) {
  const auto es = lbmhd_pred(arch::earth_simulator(), 8192, 64);
  const auto x1 = lbmhd_pred(arch::x1(), 8192, 64);
  EXPECT_GT(es.vor, 0.99);
  EXPECT_GT(es.avl, 250.0);
  EXPECT_GT(x1.vor, 0.99);
  EXPECT_GT(x1.avl, 62.0);
}

TEST(PaperShapes, CafComparableToMpi) {
  // Table 3: CAF within ~10% of MPI either way.
  for (int procs : {16, 64, 256}) {
    const double mpi = lbmhd_pred(arch::x1(), 8192, procs, false).gflops_per_proc;
    const double caf = lbmhd_pred(arch::x1(), 8192, procs, true).gflops_per_proc;
    EXPECT_NEAR(caf / mpi, 1.0, 0.1) << procs << " procs";
  }
}

TEST(PaperShapes, ParatecIsEveryonesBestCode) {
  // "PARATEC runs at a high percentage of peak on both superscalar and
  // vector architectures": far above LBMHD on the bandwidth-starved
  // superscalars (where LBMHD crawls), comparable on the vector machines
  // (paper: ES 58% LBMHD vs 60% PARATEC), and above GTC everywhere.
  for (const auto& p : arch::all_platforms()) {
    const double paratec = paratec_pred(p, 432, 64).pct_peak;
    const double lbm = lbmhd_pred(p, 4096, 64).pct_peak;
    if (p.is_vector) {
      EXPECT_GT(paratec, 0.5 * lbm) << p.name;
    } else {
      EXPECT_GT(paratec, 2.0 * lbm) << p.name;
    }
    EXPECT_GT(paratec, gtc_pred(p, 100, 64).pct_peak) << p.name;
  }
}

TEST(PaperShapes, ParatecScalingDeclinesWithConcurrency) {
  // The 3D-FFT global transpose erodes per-processor performance at scale.
  for (const auto* name : {"ES", "X1", "Power3"}) {
    const auto& p = arch::platform_by_name(name);
    const double small = paratec_pred(p, 432, 32).gflops_per_proc;
    const double large = paratec_pred(p, 432, 1024).gflops_per_proc;
    EXPECT_LT(large, small) << name;
  }
}

TEST(PaperShapes, ParatecEsBeatsX1DespiteLowerPeak) {
  for (int procs : {64, 256}) {
    EXPECT_GT(paratec_pred(arch::earth_simulator(), 686, procs).gflops_per_proc,
              paratec_pred(arch::x1(), 686, procs).gflops_per_proc)
        << procs;
  }
}

TEST(PaperShapes, CactusBoundaryConditionDominatesOnEs) {
  // "they unexpectedly accounted for up to 20% of the ES runtime".
  const auto es = cactus_pred(arch::earth_simulator(), false, 64);
  double total = 0.0;
  for (const auto& [region, t] : es.region_seconds) total += t;
  const double share = es.region_seconds.at("boundary") / total;
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.30);

  // On the Power3 the same routine is insignificant (<5%).
  const auto p3 = cactus_pred(arch::power3(), false, 64);
  total = 0.0;
  for (const auto& [region, t] : p3.region_seconds) total += t;
  EXPECT_LT(p3.region_seconds.at("boundary") / total, 0.05);
}

TEST(PaperShapes, CactusWeakScalingIsFlatOnEs) {
  const double p16 = cactus_pred(arch::earth_simulator(), true, 16).gflops_per_proc;
  const double p1024 =
      cactus_pred(arch::earth_simulator(), true, 1024).gflops_per_proc;
  EXPECT_NEAR(p1024 / p16, 1.0, 0.05);
}

TEST(PaperShapes, CactusLargerXDimensionRaisesEsEfficiency) {
  // AVL follows the local x extent: 250x64x64 beats 80^3 on the ES.
  EXPECT_GT(cactus_pred(arch::earth_simulator(), true, 64).pct_peak,
            cactus_pred(arch::earth_simulator(), false, 64).pct_peak);
}

TEST(PaperShapes, GtcX1WinsRawButEsWinsEfficiency) {
  // Table 6: X1 highest absolute Gflops/P (vectorized shift), ES highest
  // fraction of peak among the vector systems.
  const auto es = gtc_pred(arch::earth_simulator(), 100, 32);
  const auto x1 = gtc_pred(arch::x1(), 100, 32);
  EXPECT_GT(x1.gflops_per_proc, es.gflops_per_proc * 0.95);
  EXPECT_GT(es.pct_peak, x1.pct_peak);
}

TEST(PaperShapes, GtcShiftPenaltyMatchesPaperStructure) {
  // Unvectorized nested-if shift on the ES: ~11% of runtime; the two-pass
  // rewrite on the X1: a few percent.
  const auto es = gtc_pred(arch::earth_simulator(), 100, 64);
  double total = 0.0;
  for (const auto& [region, t] : es.region_seconds) total += t;
  const double es_share = es.region_seconds.at("shift") / total;
  EXPECT_GT(es_share, 0.05);
  EXPECT_LT(es_share, 0.25);

  const auto x1 = gtc_pred(arch::x1(), 100, 64);
  total = 0.0;
  for (const auto& [region, t] : x1.region_seconds) total += t;
  EXPECT_LT(x1.region_seconds.at("shift") / total, 0.05);
}

TEST(PaperShapes, GtcHigherResolutionImprovesVectorEfficiency) {
  // 100 particles/cell beats 10 on the vector systems (longer loops).
  for (const auto* name : {"ES", "X1"}) {
    const auto& p = arch::platform_by_name(name);
    EXPECT_GE(gtc_pred(p, 100, 32).gflops_per_proc,
              gtc_pred(p, 10, 32).gflops_per_proc)
        << name;
  }
}

TEST(PaperShapes, Gtc64WayVectorBeats1024WayPower3Hybrid) {
  // "the 64-way vector systems still performed up to 20% faster than 1024
  // Power3 processors" — aggregate, not per-processor.
  gtc::Table6Config hybrid;
  hybrid.particles_per_cell = 100;
  hybrid.procs = 1024;
  hybrid.openmp_threads = 16;
  const auto p3 = MachineModel(arch::power3()).predict(gtc::make_profile(hybrid));
  const auto es = gtc_pred(arch::earth_simulator(), 100, 64);
  const double agg_p3 = p3.gflops_per_proc * 1024.0;
  const double agg_es = es.gflops_per_proc * 64.0;
  EXPECT_GT(agg_es, agg_p3 * 0.9);
}

TEST(PaperShapes, AltixLeadsTheSuperscalars) {
  for (auto pred : {&lbmhd_pred}) {
    EXPECT_GT((*pred)(arch::altix(), 4096, 64, false).gflops_per_proc,
              (*pred)(arch::power4(), 4096, 64, false).gflops_per_proc);
    EXPECT_GT((*pred)(arch::power4(), 4096, 64, false).gflops_per_proc,
              (*pred)(arch::power3(), 4096, 64, false).gflops_per_proc);
  }
  EXPECT_GT(paratec_pred(arch::altix(), 432, 64).gflops_per_proc,
            paratec_pred(arch::power4(), 432, 64).gflops_per_proc);
}

}  // namespace
}  // namespace vpar
