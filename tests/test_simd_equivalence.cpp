#include <gtest/gtest.h>

#include <complex>
#include <cstddef>
#include <random>
#include <vector>

#include "blas/blas.hpp"
#include "cactus/adm.hpp"
#include "cactus/grid.hpp"
#include "fft/fft1d.hpp"
#include "fft/fft_multi.hpp"
#include "gtc/deposition.hpp"
#include "gtc/push.hpp"
#include "lbmhd/collision.hpp"
#include "lbmhd/field_set.hpp"
#include "simd/dispatch.hpp"
#include "simrt/runtime.hpp"
#include "trace/metrics.hpp"

// Scalar-vs-SIMD equivalence for the five ported kernels. Every SIMD path
// mirrors its scalar reference's operation order exactly (constants
// broadcast, per-element expressions unreassociated, scalar-order per-lane
// accumulations, -ffp-contract=off on the SIMD translation units), so the
// comparisons below are *bitwise* — EXPECT_EQ on doubles — not tolerance
// based. Sizes cover the paper-shaped cases plus adversarial lengths around
// the widest vector (below width, exact width, width*k+1, primes), which
// drive the remainder loops through every kernel. On scalar-only builds
// ForceSimd degenerates to the scalar path and the tests pass trivially.

namespace vpar {
namespace {

using simd::DispatchMode;

class DispatchGuard {
 public:
  explicit DispatchGuard(DispatchMode m) : prev_(simd::dispatch_mode()) {
    simd::set_dispatch_mode(m);
  }
  ~DispatchGuard() { simd::set_dispatch_mode(prev_); }

 private:
  DispatchMode prev_;
};

TEST(SimdEquivalence, LbmhdCollision) {
  for (auto [nx, ny] : {std::pair<std::size_t, std::size_t>{7, 3},
                        {8, 4},
                        {9, 5},
                        {17, 3},
                        {64, 8},
                        {127, 2}}) {
    lbmhd::FieldSet ref(nx, ny), vec(nx, ny);
    std::mt19937_64 rng(nx * 100 + ny);
    std::uniform_real_distribution<double> df(0.05, 0.15);
    std::uniform_real_distribution<double> dg(-0.01, 0.01);
    const std::size_t fsize = 9 * ref.plane_size();
    for (std::size_t i = 0; i < ref.raw().size(); ++i) {
      const double v = i < fsize ? df(rng) : dg(rng);
      ref.raw()[i] = v;
      vec.raw()[i] = v;
    }
    const lbmhd::CollisionParams params{1.1, 0.9};
    {
      DispatchGuard g(DispatchMode::ForceScalar);
      lbmhd::collide_flat(ref, params);
    }
    {
      DispatchGuard g(DispatchMode::ForceSimd);
      lbmhd::collide_flat(vec, params);
    }
    for (std::size_t i = 0; i < ref.raw().size(); ++i) {
      ASSERT_EQ(vec.raw()[i], ref.raw()[i]) << "nx=" << nx << " i=" << i;
    }
  }
}

TEST(SimdEquivalence, CactusAdmRhs) {
  // 130 interior points crosses the kernel's 128-point row chunk, so the
  // chunk seam and its vector/tail split are both exercised.
  for (auto [nx, ny, nz] : {std::array<std::size_t, 3>{7, 4, 4},
                            {8, 4, 4},
                            {9, 4, 4},
                            {17, 6, 6},
                            {130, 4, 4}}) {
    cactus::GridFunctions state(cactus::kNumFields, nx, ny, nz);
    std::mt19937_64 rng(nx);
    std::uniform_real_distribution<double> dist(-0.01, 0.01);
    for (auto& v : state.raw()) v = dist(rng);
    cactus::GridFunctions ref(cactus::kNumFields, nx, ny, nz);
    cactus::GridFunctions vec(cactus::kNumFields, nx, ny, nz);
    {
      DispatchGuard g(DispatchMode::ForceScalar);
      cactus::compute_rhs(state, ref, 0.25, 0, static_cast<std::ptrdiff_t>(nx),
                          0, static_cast<std::ptrdiff_t>(ny), 0,
                          static_cast<std::ptrdiff_t>(nz),
                          cactus::RhsVariant::Vector);
    }
    {
      DispatchGuard g(DispatchMode::ForceSimd);
      cactus::compute_rhs(state, vec, 0.25, 0, static_cast<std::ptrdiff_t>(nx),
                          0, static_cast<std::ptrdiff_t>(ny), 0,
                          static_cast<std::ptrdiff_t>(nz),
                          cactus::RhsVariant::Vector);
    }
    for (std::size_t i = 0; i < ref.raw().size(); ++i) {
      ASSERT_EQ(vec.raw()[i], ref.raw()[i]) << "nx=" << nx << " i=" << i;
    }
  }
}

gtc::ParticleSet random_particles(const gtc::TorusGrid& grid, std::size_t n,
                                  unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(0.0, static_cast<double>(grid.ngx()));
  std::uniform_real_distribution<double> uy(0.0, static_cast<double>(grid.ngy()));
  std::uniform_real_distribution<double> uz(grid.zeta_min(), grid.zeta_max());
  std::uniform_real_distribution<double> ur(0.0, 2.0);
  std::uniform_real_distribution<double> uq(-1.0, 1.0);
  gtc::ParticleSet p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(ux(rng), uy(rng), uz(rng), 0.1, ur(rng), uq(rng));
  }
  return p;
}

void fill_grid_fields(gtc::TorusGrid& grid, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  for (int p = 0; p < grid.planes_local(); ++p) {
    for (std::size_t i = 0; i < grid.plane_size(); ++i) {
      grid.ex_plane(p)[i] = dist(rng);
      grid.ey_plane(p)[i] = dist(rng);
    }
  }
}

TEST(SimdEquivalence, GtcGatherPush) {
  simrt::run(1, [](simrt::Communicator& comm) {
    gtc::TorusGrid grid(16, 12, 4, comm.size(), comm.rank());
    fill_grid_fields(grid, 42);
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    std::vector<double> ex_ghost(grid.plane_size()), ey_ghost(grid.plane_size());
    for (auto& v : ex_ghost) v = dist(rng);
    for (auto& v : ey_ghost) v = dist(rng);
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                          std::size_t{9}, std::size_t{257}}) {
      gtc::ParticleSet ref = random_particles(grid, n, 1000 + n);
      gtc::ParticleSet vec = ref;
      {
        DispatchGuard g(DispatchMode::ForceScalar);
        gtc::gather_push(ref, grid, ex_ghost, ey_ghost, 0.01, 1.0);
      }
      {
        DispatchGuard g(DispatchMode::ForceSimd);
        gtc::gather_push(vec, grid, ex_ghost, ey_ghost, 0.01, 1.0);
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(vec.x[i], ref.x[i]) << "n=" << n << " i=" << i;
        ASSERT_EQ(vec.y[i], ref.y[i]) << "n=" << n << " i=" << i;
        ASSERT_EQ(vec.zeta[i], ref.zeta[i]) << "n=" << n << " i=" << i;
      }
    }
  });
}

TEST(SimdEquivalence, GtcDepositFolds) {
  simrt::run(1, [](simrt::Communicator& comm) {
    for (auto variant :
         {gtc::DepositVariant::WorkVector, gtc::DepositVariant::Hybrid}) {
      for (std::size_t n : {std::size_t{9}, std::size_t{257}}) {
        gtc::TorusGrid ref(17, 7, 4, comm.size(), comm.rank());
        gtc::TorusGrid vec(17, 7, 4, comm.size(), comm.rank());
        const gtc::ParticleSet p = random_particles(ref, n, 2000 + n);
        {
          DispatchGuard g(DispatchMode::ForceScalar);
          gtc::deposit(p, ref, variant, 32);
        }
        {
          DispatchGuard g(DispatchMode::ForceSimd);
          gtc::deposit(p, vec, variant, 32);
        }
        for (std::size_t i = 0; i < ref.charge().size(); ++i) {
          ASSERT_EQ(vec.charge()[i], ref.charge()[i]) << "n=" << n << " i=" << i;
        }
      }
    }
  });
}

TEST(SimdEquivalence, Fft1dRoundTrips) {
  using Complex = std::complex<double>;
  // Powers of two hit radix-2 directly (including half < vector stages);
  // 7 and 17 route through Bluestein, whose inner power-of-two transforms
  // are the SIMD path while the chirp algebra stays scalar — still bitwise.
  for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                        std::size_t{64}, std::size_t{1024}, std::size_t{7},
                        std::size_t{17}}) {
    std::mt19937_64 rng(n);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<Complex> ref(n), vec(n);
    for (std::size_t i = 0; i < n; ++i) {
      ref[i] = vec[i] = Complex(dist(rng), dist(rng));
    }
    const fft::Fft1d plan(n);
    {
      DispatchGuard g(DispatchMode::ForceScalar);
      plan.forward(ref);
      plan.inverse(ref);
    }
    {
      DispatchGuard g(DispatchMode::ForceSimd);
      plan.forward(vec);
      plan.inverse(vec);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(vec[i].real(), ref[i].real()) << "n=" << n << " i=" << i;
      ASSERT_EQ(vec[i].imag(), ref[i].imag()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdEquivalence, FftMultiSimultaneous) {
  using Complex = std::complex<double>;
  const std::size_t n = 64, count = 5;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> ref(n * count), vec(n * count);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = vec[i] = Complex(dist(rng), dist(rng));
  }
  const fft::MultiFft1d plan(n);
  {
    DispatchGuard g(DispatchMode::ForceScalar);
    plan.simultaneous(ref, count, false);
    plan.simultaneous(ref, count, true);
  }
  {
    DispatchGuard g(DispatchMode::ForceSimd);
    plan.simultaneous(vec, count, false);
    plan.simultaneous(vec, count, true);
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(vec[i].real(), ref[i].real()) << "i=" << i;
    ASSERT_EQ(vec[i].imag(), ref[i].imag()) << "i=" << i;
  }
}

template <typename T>
void CheckGemmEquivalence(blas::Trans ta, blas::Trans tb, std::size_t m,
                          std::size_t n, std::size_t k, T alpha, T beta) {
  std::mt19937_64 rng(m * 31 + n * 7 + k);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  auto rand_elem = [&]() -> T {
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      return T(dist(rng), dist(rng));
    } else {
      return dist(rng);
    }
  };
  const std::size_t lda = ta == blas::Trans::None ? k : m;
  const std::size_t ldb = tb == blas::Trans::None ? n : k;
  std::vector<T> a(m * k), b(k * n), c_ref(m * n), c_vec(m * n);
  for (auto& v : a) v = rand_elem();
  for (auto& v : b) v = rand_elem();
  for (std::size_t i = 0; i < c_ref.size(); ++i) c_ref[i] = c_vec[i] = rand_elem();
  {
    DispatchGuard g(DispatchMode::ForceScalar);
    blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
               c_ref.data(), n);
  }
  {
    DispatchGuard g(DispatchMode::ForceSimd);
    blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
               c_vec.data(), n);
  }
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      ASSERT_EQ(c_vec[i].real(), c_ref[i].real()) << "i=" << i;
      ASSERT_EQ(c_vec[i].imag(), c_ref[i].imag()) << "i=" << i;
    } else {
      ASSERT_EQ(c_vec[i], c_ref[i]) << "i=" << i;
    }
  }
}

TEST(SimdEquivalence, GemmReal) {
  for (auto [m, n, k] : {std::array<std::size_t, 3>{1, 1, 1},
                         {3, 5, 7},
                         {8, 8, 8},
                         {17, 9, 5},
                         {65, 66, 67}}) {
    for (auto ta : {blas::Trans::None, blas::Trans::Transpose}) {
      for (auto tb : {blas::Trans::None, blas::Trans::Transpose}) {
        CheckGemmEquivalence<double>(ta, tb, m, n, k, 1.3, 0.7);
      }
    }
    CheckGemmEquivalence<double>(blas::Trans::None, blas::Trans::None, m, n, k,
                                 1.0, 0.0);
  }
}

TEST(SimdEquivalence, GemmComplex) {
  using Complex = std::complex<double>;
  for (auto [m, n, k] : {std::array<std::size_t, 3>{3, 5, 7},
                         {8, 8, 8},
                         {17, 9, 5},
                         {33, 34, 35}}) {
    for (auto tb : {blas::Trans::None, blas::Trans::Transpose,
                    blas::Trans::ConjTranspose}) {
      CheckGemmEquivalence<Complex>(blas::Trans::None, tb, m, n, k,
                                    Complex(1.3, -0.2), Complex(0.7, 0.1));
    }
  }
}

TEST(SimdEquivalence, MetricsRecordVectorSpans) {
  // Only meaningful when the host actually runs a vector path.
  if (simd::preferred_width() < 2) GTEST_SKIP() << "scalar-only host/build";
  auto& metrics = trace::Metrics::instance();
  const std::uint64_t before_vec = metrics.counter("simd.vector_iters").value();
  const std::uint64_t before_hist = metrics.histogram("simd.lanes_active").count();
  {
    DispatchGuard g(DispatchMode::ForceSimd);
    lbmhd::FieldSet fs(33, 3);
    for (std::size_t i = 0; i < fs.raw().size(); ++i) {
      fs.raw()[i] = i < 9 * fs.plane_size() ? 0.1 : 0.001;
    }
    lbmhd::collide_flat(fs, lbmhd::CollisionParams{});
  }
  EXPECT_GT(metrics.counter("simd.vector_iters").value(), before_vec);
  EXPECT_GT(metrics.histogram("simd.lanes_active").count(), before_hist);
}

}  // namespace
}  // namespace vpar
