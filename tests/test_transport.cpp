// Transport layer tests: wire-frame codec units, distributed-environment
// parsing, and true multi-process suites. The multi-process tests fork rank
// processes that re-exec this binary with `--vpar-child <mode>` and the
// distributed environment set (VPAR_TRANSPORT/VPAR_RANK/VPAR_WORLD/...), so
// every child is a real separate process exactly like a vpar_launch rank:
//
//  - equivalence: ring exchange, collectives and a small LBMHD run must be
//    bitwise-identical between the in-process executor and the socket/shm
//    backends (the determinism claim of docs/transport.md);
//  - failure: killing one rank process mid-run surfaces as PeerLost at the
//    survivors, and relaunching recovers from the last complete checkpoint
//    to a final state bitwise-identical to the never-killed run;
//  - chaos: a seeded benign fault plan (delays, reorder, stragglers) with
//    checksums on behaves identically over the socket transport.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lbmhd/simulation.hpp"
#include "qcd/simulation.hpp"
#include "simrt/distributed.hpp"
#include "simrt/fault.hpp"
#include "simrt/runtime.hpp"
#include "simrt/transport.hpp"

extern char** environ;

namespace {

using vpar::simrt::Communicator;
using vpar::simrt::FrameHeader;
using vpar::simrt::FrameType;
using vpar::simrt::Message;
using vpar::simrt::Payload;
using vpar::simrt::TransportError;
using vpar::simrt::TransportKind;

// --- process plumbing -------------------------------------------------------

struct EnvVar {
  std::string key, value;
};

/// Fork + exec this binary as `--vpar-child <mode>`. The child environment
/// is the parent's minus every VPAR_* variable, plus `extra` — children must
/// see exactly the distributed environment the test composes. Arrays are
/// prebuilt so the post-fork child only calls execve/_exit.
pid_t spawn_child(const std::string& mode, const std::vector<EnvVar>& extra) {
  auto envs = std::make_unique<std::vector<std::string>>();
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "VPAR_", 5) != 0) envs->emplace_back(*e);
  }
  for (const auto& v : extra) envs->push_back(v.key + "=" + v.value);
  auto args = std::make_unique<std::vector<std::string>>(
      std::vector<std::string>{"/proc/self/exe", "--vpar-child", mode});
  std::vector<char*> argv, envp;
  for (auto& a : *args) argv.push_back(a.data());
  argv.push_back(nullptr);
  for (auto& e : *envs) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve("/proc/self/exe", argv.data(), envp.data());
    _exit(127);
  }
  return pid;
}

int wait_status(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// RAII per-test session directory (socket endpoints, shm name, artifacts).
struct Session {
  std::string dir;
  Session() {
    char tmpl[] = "/tmp/vpar-test-XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) throw std::runtime_error("mkdtemp failed");
    dir = made;
  }
  ~Session() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

std::vector<EnvVar> dist_env(const char* transport, int rank, int world,
                             const std::string& session) {
  return {{"VPAR_TRANSPORT", transport},
          {"VPAR_RANK", std::to_string(rank)},
          {"VPAR_WORLD", std::to_string(world)},
          {"VPAR_SESSION_DIR", session},
          {"VPAR_HEARTBEAT_MS", "100"},
          {"VPAR_PEER_TIMEOUT_MS", "3000"}};
}

/// Launch one rank process per rank, wait for all, return the exit codes.
std::vector<int> launch_world(const char* transport, int world,
                              const std::string& mode,
                              const std::string& session,
                              const std::vector<EnvVar>& extra = {}) {
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    auto env = dist_env(transport, r, world, session);
    env.insert(env.end(), extra.begin(), extra.end());
    pids.push_back(spawn_child(mode, env));
  }
  std::vector<int> codes;
  codes.reserve(pids.size());
  for (const pid_t pid : pids) codes.push_back(wait_status(pid));
  return codes;
}

std::vector<double> read_doubles(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  const auto bytes = static_cast<std::size_t>(in.tellg());
  std::vector<double> out(bytes / sizeof(double));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size() * sizeof(double)));
  return out;
}

void write_doubles(const std::string& path, const std::vector<double>& data) {
  // tmp + rename: a file that exists is complete (the checkpoint-set scan
  // and the parent's artifact reads rely on this).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
  }
  std::filesystem::rename(tmp, path);
}

// --- shared rank bodies (parent reference and children run the same code) ---

long env_long_or(const char* name, long fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::strtol(s, nullptr, 10) : fallback;
}

constexpr int kLbmhdSteps = 12;

vpar::lbmhd::Options lbmhd_options() {
  vpar::lbmhd::Options opt;
  opt.nx = 32;
  opt.ny = 32;
  opt.px = 2;
  opt.py = 2;
  return opt;
}

/// Run the small LBMHD problem and return Density+Bx+By gathered on rank 0
/// (empty elsewhere). Identical code runs in-process and distributed — any
/// byte of difference is the transport's fault.
std::vector<double> lbmhd_final_fields(Communicator& comm, int steps) {
  using vpar::lbmhd::Simulation;
  Simulation sim(comm, lbmhd_options());
  sim.initialize(vpar::lbmhd::orszag_tang_ic());
  sim.run(steps);
  std::vector<double> out;
  for (const auto field : {Simulation::Field::Density, Simulation::Field::Bx,
                           Simulation::Field::By}) {
    const auto g = sim.gather(field);
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

constexpr int kQcdSteps = 4;

vpar::qcd::Options qcd_options() {
  vpar::qcd::Options opt;
  opt.nx = 8;
  opt.ny = 4;
  opt.nz = 4;
  opt.nt = 6;
  return opt;
}

/// Run the small QCD problem (4D halo exchange through vpar_part plus the
/// per-step norm allreduce) and return the gathered field on rank 0.
std::vector<double> qcd_final_psi(Communicator& comm, int steps) {
  vpar::qcd::Simulation sim(comm, qcd_options());
  sim.initialize();
  sim.run(steps);
  return sim.gather_psi();
}

void ring_and_collectives_body(Communicator& comm) {
  const int rank = comm.rank();
  const int P = comm.size();
  // Ring exchange with a rank-keyed pattern (messages large enough to leave
  // the inline payload tier).
  std::vector<std::uint64_t> out(512);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (static_cast<std::uint64_t>(rank) << 32) ^ (i * 2654435761u);
  }
  comm.send(( rank + 1) % P, std::span<const std::uint64_t>(out), 7);
  std::vector<std::uint64_t> in(out.size());
  comm.recv((rank - 1 + P) % P, std::span<std::uint64_t>(in), 7);
  const int prev = (rank - 1 + P) % P;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::uint64_t want =
        (static_cast<std::uint64_t>(prev) << 32) ^ (i * 2654435761u);
    if (in[i] != want) throw std::runtime_error("ring payload mismatch");
  }
  // Collectives over the same transport.
  const double sum = comm.allreduce(static_cast<double>(rank),
                                    vpar::simrt::ReduceOp::Sum);
  if (sum != static_cast<double>(P * (P - 1) / 2)) {
    throw std::runtime_error("allreduce sum mismatch");
  }
  std::vector<int> bcast(16, rank == 0 ? 41 : 0);
  comm.broadcast(std::span<int>(bcast), 0);
  for (const int v : bcast) {
    if (v != 41) throw std::runtime_error("broadcast mismatch");
  }
  comm.barrier();
}

// --- child mains ------------------------------------------------------------

int child_ring() {
  const int world = vpar::simrt::distributed_world();
  vpar::simrt::run(world, ring_and_collectives_body);
  // Second run on the same session: bring-up happens once, mailboxes carry
  // over, and a peer racing into this run early must not confuse anyone.
  vpar::simrt::run(world, [](Communicator& comm) {
    const double top = comm.allreduce(static_cast<double>(comm.rank()),
                                      vpar::simrt::ReduceOp::Max);
    if (top != static_cast<double>(comm.size() - 1)) {
      throw std::runtime_error("second-run allreduce mismatch");
    }
  });
  return 0;
}

int child_lbmhd() {
  const int world = vpar::simrt::distributed_world();
  const char* out_path = std::getenv("VPAR_TEST_OUT");
  if (world != 4 || out_path == nullptr) return 3;
  const std::string path = out_path;
  vpar::simrt::run(world, [&](Communicator& comm) {
    const auto fields = lbmhd_final_fields(comm, kLbmhdSteps);
    if (comm.rank() == 0) write_doubles(path, fields);
  });
  return 0;
}

int child_qcd() {
  const int world = vpar::simrt::distributed_world();
  const char* out_path = std::getenv("VPAR_TEST_OUT");
  if (world != 4 || out_path == nullptr) return 3;
  const std::string path = out_path;
  vpar::simrt::run(world, [&](Communicator& comm) {
    const auto psi = qcd_final_psi(comm, kQcdSteps);
    if (comm.rank() == 0) write_doubles(path, psi);
  });
  return 0;
}

int child_lbmhd_kill() {
  const int world = vpar::simrt::distributed_world();
  const int kill_rank = static_cast<int>(env_long_or("VPAR_KILL_RANK", -1));
  const int kill_step = static_cast<int>(env_long_or("VPAR_KILL_STEP", -1));
  const int restart = static_cast<int>(env_long_or("VPAR_RESTART", 0));
  const std::string dir = std::getenv("VPAR_SESSION_DIR");
  constexpr int kTotalSteps = 10;
  constexpr int kCheckpointEvery = 4;

  const auto ckpt_path = [&](int step, int rank) {
    return dir + "/ckpt-" + std::to_string(step) + "-rank" +
           std::to_string(rank) + ".bin";
  };
  const auto complete_checkpoint = [&] {
    // Latest step for which EVERY rank's file exists; files are written
    // tmp+rename, so existence means complete.
    for (int step = kTotalSteps - 1; step > 0; --step) {
      if (step % kCheckpointEvery != 0) continue;
      bool all = true;
      for (int r = 0; r < world && all; ++r) {
        all = std::filesystem::exists(ckpt_path(step, r));
      }
      if (all) return step;
    }
    return 0;
  };

  try {
    vpar::simrt::run(world, [&](Communicator& comm) {
      using vpar::lbmhd::Simulation;
      Simulation sim(comm, lbmhd_options());
      sim.initialize(vpar::lbmhd::orszag_tang_ic());
      int start = 0;
      if (restart > 0) {
        const int step = complete_checkpoint();
        if (step > 0) {
          Simulation::Checkpoint ckpt;
          ckpt.fields = read_doubles(ckpt_path(step, comm.rank()));
          sim.restore_state(ckpt);
          start = step;
          write_doubles(dir + "/resumed-from-" + std::to_string(step) +
                            "-rank" + std::to_string(comm.rank()),
                        {static_cast<double>(step)});
        }
      }
      for (int s = start; s < kTotalSteps; ++s) {
        if (restart == 0 && comm.rank() == kill_rank && s == kill_step) {
          _exit(137);  // simulated hard death: no Goodbye, no destructors
        }
        sim.step();
        const int done = s + 1;
        if (done % kCheckpointEvery == 0 && done < kTotalSteps) {
          write_doubles(ckpt_path(done, comm.rank()), sim.save_state().fields);
        }
      }
      std::vector<double> out;
      for (const auto field :
           {Simulation::Field::Density, Simulation::Field::Bx,
            Simulation::Field::By}) {
        const auto g = sim.gather(field);
        out.insert(out.end(), g.begin(), g.end());
      }
      if (comm.rank() == 0) write_doubles(dir + "/final.bin", out);
    });
  } catch (const vpar::simrt::PeerLost&) {
    return 42;
  } catch (const vpar::simrt::JobAborted&) {
    return 42;
  } catch (const TransportError&) {
    return 42;  // send into a lost peer races the cooperative abort
  }
  return 0;
}

int child_chaos() {
  const int world = vpar::simrt::distributed_world();
  vpar::simrt::RunOptions options;
  options.size = world;
  options.checksums = true;
  options.fault.seed = static_cast<std::uint64_t>(env_long_or("VPAR_TEST_SEED", 7));
  options.fault.delay_prob = 0.05;
  options.fault.delay_max_us = 200;
  options.fault.reorder_prob = 0.10;
  options.fault.straggler_ranks = {1};
  options.fault.straggle_us = 100;
  vpar::simrt::run(options, ring_and_collectives_body);
  return 0;
}

int vpar_child_main(const std::string& mode) {
  try {
    if (mode == "ring") return child_ring();
    if (mode == "lbmhd") return child_lbmhd();
    if (mode == "qcd") return child_qcd();
    if (mode == "lbmhd_kill") return child_lbmhd_kill();
    if (mode == "chaos") return child_chaos();
    std::fprintf(stderr, "unknown --vpar-child mode '%s'\n", mode.c_str());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %d: %s\n", vpar::simrt::distributed_rank(),
                 e.what());
    return 1;
  }
}

// --- frame codec units ------------------------------------------------------

std::vector<std::byte> some_payload(std::size_t n) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 37 + 11) & 0xFF);
  }
  return data;
}

TEST(TransportFrame, DataRoundTrip) {
  const auto payload = some_payload(300);
  Message msg;
  msg.source = 3;
  msg.tag = 17;
  msg.trace_id = 0x123456789ULL;
  msg.checksummed = true;
  msg.checksum = vpar::simrt::fnv1a64(payload);
  msg.reorder = 2;
  msg.payload = Payload::copy_of(payload);

  const FrameHeader header = vpar::simrt::encode_frame(msg);
  EXPECT_EQ(header.payload_bytes, payload.size());
  ASSERT_NO_THROW(vpar::simrt::verify_frame(header, payload));

  const Message back = vpar::simrt::decode_message(header, payload);
  EXPECT_EQ(back.source, 3);
  EXPECT_EQ(back.tag, 17);
  EXPECT_EQ(back.trace_id, 0x123456789ULL);
  EXPECT_TRUE(back.checksummed);
  EXPECT_EQ(back.checksum, msg.checksum);
  EXPECT_EQ(back.reorder, 2);
  ASSERT_EQ(back.payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(back.payload.data(), payload.data(), payload.size()), 0);
}

TEST(TransportFrame, ControlFramesCarryWorldInTag) {
  const FrameHeader hello =
      vpar::simrt::encode_control(FrameType::Hello, 2, 8);
  EXPECT_EQ(hello.type, static_cast<std::uint8_t>(FrameType::Hello));
  EXPECT_EQ(hello.source, 2);
  EXPECT_EQ(hello.tag, 8);
  EXPECT_EQ(hello.payload_bytes, 0u);
  ASSERT_NO_THROW(vpar::simrt::verify_frame(hello, {}));
}

TEST(TransportFrame, DetectsPayloadCorruption) {
  auto payload = some_payload(64);
  Message msg;
  msg.source = 1;
  msg.tag = 5;
  msg.payload = Payload::copy_of(payload);
  const FrameHeader header = vpar::simrt::encode_frame(msg);
  payload[40] ^= std::byte{0x10};
  EXPECT_THROW(vpar::simrt::verify_frame(header, payload), TransportError);
}

TEST(TransportFrame, DetectsHeaderCorruption) {
  const auto payload = some_payload(64);
  Message msg;
  msg.source = 1;
  msg.tag = 5;
  msg.payload = Payload::copy_of(payload);
  FrameHeader header = vpar::simrt::encode_frame(msg);
  header.tag = 6;  // metadata corruption must fail the frame checksum
  EXPECT_THROW(vpar::simrt::verify_frame(header, payload), TransportError);

  FrameHeader bad_magic = vpar::simrt::encode_frame(msg);
  bad_magic.magic = 0xDEADBEEF;
  EXPECT_THROW(vpar::simrt::verify_frame(bad_magic, payload), TransportError);
}

TEST(TransportFrame, DetectsLengthMismatch) {
  const auto payload = some_payload(64);
  Message msg;
  msg.source = 0;
  msg.tag = 1;
  msg.payload = Payload::copy_of(payload);
  const FrameHeader header = vpar::simrt::encode_frame(msg);
  const std::span<const std::byte> truncated(payload.data(), 32);
  EXPECT_THROW(vpar::simrt::verify_frame(header, truncated), TransportError);
}

// --- environment parsing ----------------------------------------------------

/// setenv/unsetenv guard: these tests run before any child spawn and restore
/// the variable, so the cached distributed_env_active() decision (false in
/// the parent) and later child environments are unaffected.
struct ScopedEnv {
  std::string key;
  ScopedEnv(const std::string& k, const std::string& v) : key(k) {
    ::setenv(key.c_str(), v.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(key.c_str()); }
};

TEST(TransportEnv, KindParsing) {
  EXPECT_EQ(vpar::simrt::transport_kind_from_env(), TransportKind::Inproc);
  {
    ScopedEnv t("VPAR_TRANSPORT", "socket");
    EXPECT_EQ(vpar::simrt::transport_kind_from_env(), TransportKind::Socket);
  }
  {
    ScopedEnv t("VPAR_TRANSPORT", "shm");
    EXPECT_EQ(vpar::simrt::transport_kind_from_env(), TransportKind::Shm);
  }
  {
    ScopedEnv t("VPAR_TRANSPORT", "carrier-pigeon");
    EXPECT_THROW((void)vpar::simrt::transport_kind_from_env(), TransportError);
  }
}

TEST(TransportEnv, DistConfigValidation) {
  {
    // Inproc: no distributed requirements at all.
    const auto config = vpar::simrt::dist_config_from_env();
    EXPECT_EQ(config.kind, TransportKind::Inproc);
  }
  {
    ScopedEnv t("VPAR_TRANSPORT", "socket");
    // Missing rank/world must fail loudly, not fall back to inproc.
    EXPECT_THROW(vpar::simrt::dist_config_from_env(), TransportError);
  }
  {
    ScopedEnv t("VPAR_TRANSPORT", "socket");
    ScopedEnv r("VPAR_RANK", "5");
    ScopedEnv w("VPAR_WORLD", "4");
    ScopedEnv d("VPAR_SESSION_DIR", "/tmp");
    EXPECT_THROW(vpar::simrt::dist_config_from_env(), TransportError);  // rank >= world
  }
  {
    ScopedEnv t("VPAR_TRANSPORT", "socket");
    ScopedEnv r("VPAR_RANK", "1");
    ScopedEnv w("VPAR_WORLD", "4");
    // Socket without endpoints (no session dir, no TCP base) is an error.
    EXPECT_THROW(vpar::simrt::dist_config_from_env(), TransportError);
  }
  {
    ScopedEnv t("VPAR_TRANSPORT", "shm");
    ScopedEnv r("VPAR_RANK", "1");
    ScopedEnv w("VPAR_WORLD", "4");
    ScopedEnv d("VPAR_SESSION_DIR", "/tmp/somewhere");
    ScopedEnv ring("VPAR_SHM_RING", "65536");
    ScopedEnv hb("VPAR_HEARTBEAT_MS", "50");
    const auto config = vpar::simrt::dist_config_from_env();
    EXPECT_EQ(config.kind, TransportKind::Shm);
    EXPECT_EQ(config.rank, 1);
    EXPECT_EQ(config.world, 4);
    EXPECT_EQ(config.shm_ring_bytes, 65536u);
    EXPECT_EQ(config.heartbeat.count(), 50);
  }
}

// --- multi-process equivalence ----------------------------------------------

TEST(SocketTransport, TwoRankRingAndCollectives) {
  Session session;
  const auto codes = launch_world("socket", 2, "ring", session.dir);
  EXPECT_EQ(codes, (std::vector<int>{0, 0}));
}

TEST(SocketTransport, FourRankRingAndCollectives) {
  Session session;
  const auto codes = launch_world("socket", 4, "ring", session.dir);
  EXPECT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
}

TEST(SocketTransport, TcpLoopbackRing) {
  Session session;
  const auto codes = launch_world("socket", 2, "ring", session.dir,
                                  {{"VPAR_TCP_BASE", "47310"}});
  EXPECT_EQ(codes, (std::vector<int>{0, 0}));
}

TEST(ShmTransport, FourRankRingAndCollectives) {
  Session session;
  const auto codes = launch_world("shm", 4, "ring", session.dir);
  EXPECT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
}

/// In-process reference for the LBMHD equivalence runs.
std::vector<double> lbmhd_inproc_reference() {
  std::vector<double> reference;
  vpar::simrt::run(4, [&](Communicator& comm) {
    const auto fields = lbmhd_final_fields(comm, kLbmhdSteps);
    if (comm.rank() == 0) reference = fields;
  });
  return reference;
}

void expect_lbmhd_equivalence(const char* transport) {
  Session session;
  const std::string out = session.dir + "/fields.bin";
  const auto codes = launch_world(transport, 4, "lbmhd", session.dir,
                                  {{"VPAR_TEST_OUT", out}});
  ASSERT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
  const auto distributed = read_doubles(out);
  const auto reference = lbmhd_inproc_reference();
  ASSERT_FALSE(reference.empty());
  ASSERT_EQ(distributed.size(), reference.size());
  // Bitwise, not approximately: the transport must not change one bit of
  // the physics.
  EXPECT_EQ(std::memcmp(distributed.data(), reference.data(),
                        reference.size() * sizeof(double)),
            0);
}

TEST(SocketTransport, LbmhdBitwiseMatchesInproc) {
  expect_lbmhd_equivalence("socket");
}

TEST(ShmTransport, LbmhdBitwiseMatchesInproc) {
  expect_lbmhd_equivalence("shm");
}

/// In-process reference for the QCD equivalence runs.
std::vector<double> qcd_inproc_reference() {
  std::vector<double> reference;
  vpar::simrt::run(4, [&](Communicator& comm) {
    const auto psi = qcd_final_psi(comm, kQcdSteps);
    if (comm.rank() == 0) reference = psi;
  });
  return reference;
}

void expect_qcd_equivalence(const char* transport) {
  Session session;
  const std::string out = session.dir + "/psi.bin";
  const auto codes = launch_world(transport, 4, "qcd", session.dir,
                                  {{"VPAR_TEST_OUT", out}});
  ASSERT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
  const auto distributed = read_doubles(out);
  const auto reference = qcd_inproc_reference();
  ASSERT_FALSE(reference.empty());
  ASSERT_EQ(distributed.size(), reference.size());
  EXPECT_EQ(std::memcmp(distributed.data(), reference.data(),
                        reference.size() * sizeof(double)),
            0);
}

TEST(SocketTransport, QcdBitwiseMatchesInproc) {
  expect_qcd_equivalence("socket");
}

TEST(ShmTransport, QcdBitwiseMatchesInproc) {
  expect_qcd_equivalence("shm");
}

TEST(SocketTransport, SeededChaosSmoke) {
  Session session;
  const auto codes = launch_world("socket", 4, "chaos", session.dir,
                                  {{"VPAR_TEST_SEED", "20260808"}});
  EXPECT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
}

// --- failure detection and elastic restart ----------------------------------

void expect_kill_recovery(const char* transport) {
  // Reference: the same checkpointing program, never killed.
  Session clean;
  {
    const auto codes = launch_world(transport, 4, "lbmhd_kill", clean.dir);
    ASSERT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
  }
  const auto reference = read_doubles(clean.dir + "/final.bin");
  ASSERT_FALSE(reference.empty());

  // Attempt 0: rank 2 dies hard (_exit, no Goodbye) at step 6. Survivors
  // must observe PeerLost (exit 42), not hang and not finish.
  Session session;
  const std::vector<EnvVar> kill = {{"VPAR_KILL_RANK", "2"},
                                    {"VPAR_KILL_STEP", "6"}};
  const auto first = launch_world(transport, 4, "lbmhd_kill", session.dir, kill);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[2], 137);
  for (const int r : {0, 1, 3}) {
    EXPECT_EQ(first[static_cast<std::size_t>(r)], 42)
        << "rank " << r << " did not observe PeerLost";
  }

  // Attempt 1 (the launcher's restart): every rank restores the latest
  // complete checkpoint and reruns to completion.
  const auto second = launch_world(transport, 4, "lbmhd_kill", session.dir,
                                   {{"VPAR_RESTART", "1"}});
  ASSERT_EQ(second, (std::vector<int>{0, 0, 0, 0}));
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(std::filesystem::exists(session.dir + "/resumed-from-4-rank" +
                                        std::to_string(r)))
        << "rank " << r << " did not resume from the step-4 checkpoint";
  }
  const auto recovered = read_doubles(session.dir + "/final.bin");
  ASSERT_EQ(recovered.size(), reference.size());
  EXPECT_EQ(std::memcmp(recovered.data(), reference.data(),
                        reference.size() * sizeof(double)),
            0)
      << "checkpoint-restart final state differs from the clean run";
}

TEST(SocketTransport, KilledRankRecoversViaCheckpointRestart) {
  expect_kill_recovery("socket");
}

TEST(ShmTransport, KilledRankIsDetectedByHeartbeatStall) {
  // Shm has no connection to break: a killed rank is detected by its
  // heartbeat counter stalling past the peer timeout (shortened here).
  Session session;
  const std::vector<EnvVar> kill = {{"VPAR_KILL_RANK", "1"},
                                    {"VPAR_KILL_STEP", "6"},
                                    {"VPAR_PEER_TIMEOUT_MS", "800"}};
  const auto codes = launch_world("shm", 4, "lbmhd_kill", session.dir, kill);
  ASSERT_EQ(codes.size(), 4u);
  EXPECT_EQ(codes[1], 137);
  for (const int r : {0, 2, 3}) {
    EXPECT_EQ(codes[static_cast<std::size_t>(r)], 42)
        << "rank " << r << " did not observe the stalled heartbeat";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--vpar-child") {
    return vpar_child_main(argc >= 3 ? argv[2] : "");
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
