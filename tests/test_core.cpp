#include <gtest/gtest.h>

#include <sstream>

#include "core/app_registry.hpp"
#include "core/profile_builder.hpp"
#include "core/report.hpp"
#include "core/table.hpp"
#include "simrt/runtime.hpp"

namespace vpar::core {
namespace {

TEST(Table, FormatsAndAligns) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"much-longer-name", "10"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Formatting, NumbersAndPercent) {
  EXPECT_EQ(fmt_gflops(4.318), "4.32");
  EXPECT_EQ(fmt_gflops(0.1234), "0.123");
  EXPECT_EQ(fmt_gflops(0.0), "--");
  EXPECT_EQ(fmt_pct(0.544), "54%");
  EXPECT_EQ(fmt_pct(0.0), "--");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
}

TEST(AppRegistry, MatchesPaperTableTwo) {
  const auto& apps = application_registry();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "LBMHD");
  EXPECT_EQ(apps[0].lines, 1500);
  EXPECT_EQ(apps[1].name, "PARATEC");
  EXPECT_EQ(apps[2].structure, "Grid");
  EXPECT_EQ(apps[3].structure, "Particle");
}

TEST(AppRegistry, ExtendedRegistryAppendsQcdWithoutTouchingTableTwo) {
  const auto& extended = extended_application_registry();
  ASSERT_EQ(extended.size(), 5u);
  // Prefix is Table 2 verbatim...
  const auto& apps = application_registry();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(extended[i].name, apps[i].name);
  }
  // ...and the fifth application rides behind it.
  EXPECT_EQ(extended[4].name, "QCD");
  EXPECT_EQ(extended[4].structure, "Grid/4D");
}

TEST(ProfileBuilder, PicksCriticalPathRank) {
  auto result = simrt::run(3, [](simrt::Communicator& comm) {
    // Rank 1 does the most work.
    perf::LoopRecord rec;
    rec.instances = comm.rank() == 1 ? 100.0 : 10.0;
    rec.trips = 50.0;
    rec.flops_per_trip = 2.0;
    rec.bytes_per_trip = 8.0;
    perf::record_loop("work", rec);
    comm.barrier();
  });
  const auto app = from_run(result, 12345.0);
  EXPECT_EQ(app.procs, 3);
  EXPECT_DOUBLE_EQ(app.baseline_flops, 12345.0);
  EXPECT_DOUBLE_EQ(app.kernels.region_flops("work"), 100.0 * 50.0 * 2.0);
}

TEST(ProfileBuilder, ScaleProfileMultipliesExtensiveQuantities) {
  arch::AppProfile base;
  perf::LoopRecord rec;
  rec.instances = 10.0;
  rec.trips = 100.0;
  rec.flops_per_trip = 1.0;
  base.kernels.record("k", rec);
  base.comm.record(perf::CommKind::PointToPoint, 4.0, 1000.0);
  base.procs = 4;
  base.baseline_flops = 4000.0;

  const auto scaled = scale_profile(base, 3.0, 2.0, 16, 9000.0);
  EXPECT_DOUBLE_EQ(scaled.kernels.total_flops(), 3000.0);
  EXPECT_DOUBLE_EQ(scaled.comm.bytes(perf::CommKind::PointToPoint), 2000.0);
  EXPECT_EQ(scaled.procs, 16);
  EXPECT_DOUBLE_EQ(scaled.baseline_flops, 9000.0);
  // Trip counts (intensive) must not scale.
  EXPECT_DOUBLE_EQ(scaled.kernels.all_records()[0].trips, 100.0);
}

TEST(Report, ProfilePrintsEveryRegion) {
  perf::KernelProfile prof;
  perf::LoopRecord rec;
  rec.instances = 1.0;
  rec.trips = 256.0;
  rec.flops_per_trip = 10.0;
  rec.bytes_per_trip = 8.0;
  prof.record("alpha", rec);
  rec.vectorizable = false;
  prof.record("beta", rec);

  std::ostringstream os;
  print_profile(os, prof, 256);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
}

TEST(Report, PredictionPrintsBreakdown) {
  arch::AppProfile app;
  perf::LoopRecord rec;
  rec.instances = 1000.0;
  rec.trips = 256.0;
  rec.flops_per_trip = 10.0;
  rec.bytes_per_trip = 8.0;
  app.kernels.record("main_loop", rec);
  app.procs = 8;
  app.baseline_flops = app.kernels.total_flops() * 8;

  const auto pred = arch::MachineModel(arch::earth_simulator()).predict(app);
  std::ostringstream os;
  print_prediction(os, pred);
  const std::string s = os.str();
  EXPECT_NE(s.find("ES"), std::string::npos);
  EXPECT_NE(s.find("main_loop"), std::string::npos);
  EXPECT_NE(s.find("VOR"), std::string::npos);
}

}  // namespace
}  // namespace vpar::core
