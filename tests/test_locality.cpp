#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "lbmhd/simulation.hpp"
#include "simrt/arena.hpp"
#include "simrt/arena_policy.hpp"
#include "simrt/locality.hpp"
#include "simrt/mailbox.hpp"
#include "simrt/runtime.hpp"
#include "trace/metrics.hpp"

namespace vpar::simrt {
namespace {

namespace fs = std::filesystem;

std::uint64_t counter_value(const char* name) {
  return trace::Metrics::instance().counter(name).value();
}

/// Forces an affinity mode for one test and restores the previous one (and
/// the calling thread's full cpu mask) on exit — the suite's other tests
/// must not inherit a narrowed mask.
struct AffinityGuard {
  AffinityMode previous = affinity_mode();
  explicit AffinityGuard(AffinityMode mode) { set_affinity_mode(mode); }
  ~AffinityGuard() {
    set_affinity_mode(AffinityMode::Off);
    apply_affinity(0);  // widens the mask back out
    set_affinity_mode(previous);
  }
};

/// Grow the shared pool so smaller jobs recycle long-lived workers.
void warm_pool() {
  run(8, [](Communicator&) {});
}

// --- topology probe ----------------------------------------------------------

/// Builds a synthetic sysfs tree under a temp dir; probe_topology takes the
/// root so tests never depend on the host's real /sys.
class SysfsTree {
 public:
  SysfsTree() {
    root_ = fs::temp_directory_path() /
            ("vpar_locality_sysfs_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~SysfsTree() { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << content << "\n";
  }

  void add_cpu(int cpu, int package, int core, const std::string& siblings) {
    const std::string base = "devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    write(base + "physical_package_id", std::to_string(package));
    write(base + "core_id", std::to_string(core));
    write(base + "thread_siblings_list", siblings);
  }

  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(TopologyProbe, FallbackWhenSysfsMissing) {
  const arch::Topology t = arch::probe_topology("/nonexistent/sysfs/root");
  EXPECT_FALSE(t.probed);
  EXPECT_GE(t.num_cpus(), 1);
  EXPECT_EQ(t.num_nodes, 1);
  // Both pin orders still cover every cpu exactly once.
  const auto compact = t.pin_order_compact();
  const auto scatter = t.pin_order_scatter();
  EXPECT_EQ(static_cast<int>(compact.size()), t.num_cpus());
  EXPECT_EQ(static_cast<int>(scatter.size()), t.num_cpus());
}

TEST(TopologyProbe, MalformedOnlineListFallsBack) {
  SysfsTree tree;
  tree.write("devices/system/cpu/online", "zero-to-three");
  const arch::Topology t = arch::probe_topology(tree.path());
  EXPECT_FALSE(t.probed);
  EXPECT_GE(t.num_cpus(), 1);
}

TEST(TopologyProbe, TwoNodeBoxOrders) {
  SysfsTree tree;
  tree.write("devices/system/cpu/online", "0-3");
  for (int c = 0; c < 4; ++c) tree.add_cpu(c, 0, c, std::to_string(c));
  tree.write("devices/system/node/node0/cpulist", "0-1");
  tree.write("devices/system/node/node1/cpulist", "2-3");

  const arch::Topology t = arch::probe_topology(tree.path());
  ASSERT_TRUE(t.probed);
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.num_cores(), 4);
  EXPECT_EQ(t.num_nodes, 2);
  EXPECT_EQ(t.node_of(1), 0);
  EXPECT_EQ(t.node_of(2), 1);
  // Compact fills node 0 before node 1; scatter alternates nodes.
  EXPECT_EQ(t.pin_order_compact(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.pin_order_scatter(), (std::vector<int>{0, 2, 1, 3}));
}

TEST(TopologyProbe, SmtSiblingsOrderedLast) {
  SysfsTree tree;
  tree.write("devices/system/cpu/online", "0-3");
  // Two physical cores, hyperthreaded: cpu0/cpu2 share core 0, cpu1/cpu3
  // share core 1 (the interleaved numbering real kernels use).
  tree.add_cpu(0, 0, 0, "0,2");
  tree.add_cpu(2, 0, 0, "0,2");
  tree.add_cpu(1, 0, 1, "1,3");
  tree.add_cpu(3, 0, 1, "1,3");

  const arch::Topology t = arch::probe_topology(tree.path());
  ASSERT_TRUE(t.probed);
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.num_cores(), 2);
  // Both orders place the physical-core primaries (0, 1) before the SMT
  // secondaries (2, 3): a pool of two workers gets two real cores.
  EXPECT_EQ(t.pin_order_compact(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.pin_order_scatter(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(TopologyProbe, HostProbeIsSane) {
  const arch::Topology& t = arch::host_topology();
  EXPECT_GE(t.num_cpus(), 1);
  EXPECT_GE(t.num_nodes, 1);
  EXPECT_EQ(pinnable_slots(), t.num_cpus());
}

// --- pinning -----------------------------------------------------------------

TEST(Affinity, OffModeLeavesThreadUnpinned) {
  AffinityGuard guard(AffinityMode::Off);
  const PinResult r = apply_affinity(0);
  EXPECT_FALSE(r.pinned);
  EXPECT_EQ(current_node(), -1);
}

TEST(Affinity, CompactPinsThenOffUnpins) {
  if (!pinning_supported()) GTEST_SKIP() << "no pinning on this platform";
  AffinityGuard guard(AffinityMode::Compact);
  const std::uint64_t pins_before = counter_value("locality.pins");
  const PinResult r = apply_affinity(0);
  EXPECT_TRUE(r.pinned);
  EXPECT_GE(r.cpu, 0);
  EXPECT_GE(r.node, 0);
  EXPECT_EQ(current_node(), r.node);
  EXPECT_EQ(counter_value("locality.pins"), pins_before + 1);

  set_affinity_mode(AffinityMode::Off);
  const PinResult off = apply_affinity(0);
  EXPECT_FALSE(off.pinned);
  EXPECT_EQ(current_node(), -1);
}

TEST(Affinity, OversubscribedSlotSkipsAndFloats) {
  AffinityGuard guard(AffinityMode::Compact);
  const std::uint64_t skipped_before = counter_value("locality.pin_skipped");
  const PinResult r = apply_affinity(1 << 20);
  EXPECT_FALSE(r.pinned);
  EXPECT_EQ(current_node(), -1);
  EXPECT_EQ(counter_value("locality.pin_skipped"), skipped_before + 1);
}

TEST(Affinity, ExecutorPinsPoolWorkersAtJobPickup) {
  if (!pinning_supported()) GTEST_SKIP() << "no pinning on this platform";
  warm_pool();
  const std::uint64_t pins_before = counter_value("locality.pins");
  AffinityGuard guard(AffinityMode::Compact);  // bumps the affinity epoch
  run(2, [](Communicator& comm) { comm.barrier(); });
  // At least worker slot 0 maps to a real cpu on any host; slots beyond the
  // cpu count degrade to floating workers (counted separately).
  EXPECT_GE(counter_value("locality.pins"), pins_before + 1);
}

TEST(Affinity, ModeChangesBumpTheEpoch) {
  const std::uint64_t before = affinity_epoch();
  AffinityGuard guard(AffinityMode::Off);
  EXPECT_GT(affinity_epoch(), before);
}

// --- first touch -------------------------------------------------------------

TEST(FirstTouch, PreservesValuesAndCountsBytes) {
  std::vector<std::byte> buffer(3 * 4096 + 17);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::byte>(i % 251);
  }
  const std::uint64_t before = counter_value("locality.first_touch_bytes");
  first_touch(buffer);
  EXPECT_EQ(counter_value("locality.first_touch_bytes"),
            before + buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], static_cast<std::byte>(i % 251)) << "byte " << i;
  }
}

TEST(FirstTouch, MailboxPlacementRunsOnFirstJobOfASize) {
  warm_pool();
  const std::uint64_t before = counter_value("locality.first_touch_bytes");
  // First job at P=5 in this process: each rank's worker reserves its own
  // mailbox ring at pickup, so placement bytes must be counted.
  run(5, [](Communicator& comm) { comm.barrier(); });
  EXPECT_GT(counter_value("locality.first_touch_bytes"), before);
}

// --- message ring ------------------------------------------------------------

Message tagged(int tag) {
  Message m;
  m.tag = tag;
  return m;
}

std::vector<int> tags_of(MessageRing& ring) {
  std::vector<int> tags;
  for (std::size_t i = 0; i < ring.size(); ++i) tags.push_back(ring[i].tag);
  return tags;
}

TEST(MessageRing, PushAndTakeAreFifo) {
  MessageRing ring;
  for (int t = 0; t < 6; ++t) ring.push_back(tagged(t));
  EXPECT_EQ(ring.size(), 6u);
  for (int t = 0; t < 6; ++t) EXPECT_EQ(ring.take(0).tag, t);
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, GrowthPreservesOrder) {
  MessageRing ring;
  for (int t = 0; t < 100; ++t) ring.push_back(tagged(t));
  EXPECT_GE(ring.capacity(), 100u);
  for (int t = 0; t < 100; ++t) EXPECT_EQ(ring.take(0).tag, t);
}

TEST(MessageRing, WrapAroundKeepsFifoOrder) {
  MessageRing ring;
  ring.reserve(16);
  const std::size_t cap = ring.capacity();
  // March the head around the ring several times with a steady queue depth,
  // so logical indices wrap the physical slots.
  int next = 0, expect = 0;
  for (int i = 0; i < 8; ++i) ring.push_back(tagged(next++));
  for (std::size_t step = 0; step < 5 * cap; ++step) {
    EXPECT_EQ(ring.take(0).tag, expect++);
    ring.push_back(tagged(next++));
    EXPECT_EQ(ring.capacity(), cap);  // depth 8 never grows a 16-slot ring
  }
  while (!ring.empty()) EXPECT_EQ(ring.take(0).tag, expect++);
}

TEST(MessageRing, InsertAtEitherEndAndMiddle) {
  MessageRing ring;
  for (int t : {0, 1, 2, 3}) ring.push_back(tagged(t));
  ring.insert(0, tagged(90));           // front (short-front path)
  ring.insert(3, tagged(91));           // middle
  ring.insert(ring.size(), tagged(92)); // back
  EXPECT_EQ(tags_of(ring), (std::vector<int>{90, 0, 1, 91, 2, 3, 92}));
}

TEST(MessageRing, TakeFromMiddleShiftsTheShorterSide) {
  MessageRing ring;
  for (int t = 0; t < 7; ++t) ring.push_back(tagged(t));
  EXPECT_EQ(ring.take(1).tag, 1);  // front half
  EXPECT_EQ(ring.take(4).tag, 5);  // back half
  EXPECT_EQ(tags_of(ring), (std::vector<int>{0, 2, 3, 4, 6}));
}

TEST(MessageRing, ClearRetainsCapacity) {
  MessageRing ring;
  for (int t = 0; t < 20; ++t) ring.push_back(tagged(t));
  const std::size_t cap = ring.capacity();
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), cap);
  ring.push_back(tagged(7));
  EXPECT_EQ(ring[0].tag, 7);
}

// --- arena policy derivation -------------------------------------------------

TEST(ArenaPolicyDerivation, ColdClassesShrinkHotClassesGrow) {
  ArenaClassOps ops{};
  ops[3] = 10000;  // 512 B class, sqrt -> 100 -> 128 blocks
  const ArenaLimits limits;
  const ArenaPolicy p = arena_policy_from_traffic(ops, limits);
  EXPECT_EQ(p.provenance, "adaptive");
  for (std::size_t c = 0; c < kArenaNumClasses; ++c) {
    const std::size_t capacity = kArenaMinClassBytes << c;
    if (c == 3) continue;
    EXPECT_EQ(p.shared_cap_bytes[c], limits.min_blocks * capacity) << "class " << c;
    EXPECT_EQ(p.warm_bytes[c], 0u) << "class " << c;
  }
  EXPECT_EQ(p.shared_cap_bytes[3], std::size_t{128} * 512);
  EXPECT_GT(p.warm_bytes[3], 0u);
  EXPECT_LE(p.warm_bytes[3], limits.max_warm_bytes_per_class);
}

TEST(ArenaPolicyDerivation, PerClassAndTotalBudgetsClamp) {
  ArenaClassOps ops{};
  for (std::size_t c = 0; c < kArenaNumClasses; ++c) {
    ops[c] = std::uint64_t{1} << 40;  // absurdly hot everywhere
  }
  const ArenaLimits limits;
  const ArenaPolicy p = arena_policy_from_traffic(ops, limits);
  std::size_t total = 0;
  for (std::size_t c = 0; c < kArenaNumClasses; ++c) {
    EXPECT_LE(p.shared_cap_bytes[c], limits.max_shared_per_class) << "class " << c;
    total += p.shared_cap_bytes[c];
  }
  EXPECT_LE(total, limits.total_shared_budget);
}

TEST(ArenaPolicyDerivation, HistogramBucketsMapToClasses) {
  trace::Histogram h;
  h.record(0);     // bucket 0: never touches the arena
  h.record(33);    // <= 64 B: inline payload, skipped
  h.record(100);   // needs a 128 B block -> class 1
  h.record(100);
  h.record(4000);  // needs a 4 KiB block -> class 6
  const ArenaClassOps ops = class_ops_from_histogram(h);
  EXPECT_EQ(ops[0], 0u);
  EXPECT_EQ(ops[1], 2u);
  EXPECT_EQ(ops[6], 1u);
  std::uint64_t total = 0;
  for (const auto n : ops) total += n;
  EXPECT_EQ(total, 3u);
}

TEST(ArenaPolicyDerivation, SameLimitsIgnoresProvenance) {
  const ArenaPolicy a = ArenaPolicy::fixed_default();
  ArenaPolicy b = a;
  b.provenance = "adaptive";
  EXPECT_TRUE(a.same_limits(b));
  b.shared_cap_bytes[0] += kArenaMinClassBytes;
  EXPECT_FALSE(a.same_limits(b));
}

// --- adaptive controller + arena integration ---------------------------------

TEST(AdaptiveArena, SetPolicyBumpsEpochOnlyOnRealChange) {
  BufferArena& arena = BufferArena::instance();
  const ArenaPolicy saved = arena.policy();
  const std::uint64_t epoch0 = arena.policy_epoch();
  EXPECT_FALSE(arena.set_policy(saved));  // identical limits: no-op
  EXPECT_EQ(arena.policy_epoch(), epoch0);

  ArenaPolicy changed = saved;
  changed.shared_cap_bytes[2] += 4 * (kArenaMinClassBytes << 2);
  const std::uint64_t resizes_before = counter_value("arena.resize");
  EXPECT_TRUE(arena.set_policy(changed));
  EXPECT_EQ(arena.policy_epoch(), epoch0 + 1);
  EXPECT_EQ(counter_value("arena.resize"), resizes_before + 1);

  arena.set_policy(saved);
}

TEST(AdaptiveArena, RefreshDerivesPolicyFromTraffic) {
  const ArenaPolicy saved = BufferArena::instance().policy();
  // A traffic spike in the largest class that no other test produces: the
  // derived cap must differ from whatever policy is currently installed.
  trace::Metrics::instance()
      .histogram("comm.bytes_per_op")
      .record_many(std::uint64_t{3} << 20, 1u << 20);
  const std::uint64_t resizes_before = counter_value("arena.resize");
  EXPECT_TRUE(refresh_arena_policy());
  EXPECT_EQ(counter_value("arena.resize"), resizes_before + 1);
  EXPECT_EQ(BufferArena::instance().policy().provenance, "adaptive");
  EXPECT_GT(BufferArena::instance().policy().shared_cap_bytes[16],
            ArenaLimits{}.min_blocks * kArenaMaxClassBytes);
  BufferArena::instance().set_policy(saved);
}

TEST(AdaptiveArena, WarmThreadCacheCountsFirstTouch) {
  BufferArena& arena = BufferArena::instance();
  const ArenaPolicy saved = arena.policy();
  ArenaPolicy warm = saved;
  warm.warm_bytes[2] = 8 * (kArenaMinClassBytes << 2);  // eight 256 B blocks
  arena.set_policy(warm);
  EXPECT_GE(arena.warm_thread_cache(), 0u);  // idempotent on a warm cache
  arena.set_policy(saved);
}

TEST(AdaptiveArena, ProfileSidecarRoundTrip) {
  const fs::path dir =
      fs::temp_directory_path() / ("vpar_arena_profile_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "profile.json").string();

  const ArenaPolicy saved = BufferArena::instance().policy();
  ASSERT_TRUE(save_arena_profile(path));
  EXPECT_TRUE(load_arena_profile(path));
  // Loading installs the persisted limits — which match what was saved.
  EXPECT_TRUE(BufferArena::instance().policy().same_limits(saved));

  EXPECT_FALSE(load_arena_profile((dir / "missing.json").string()));
  {
    std::ofstream corrupt(dir / "corrupt.json");
    corrupt << "{\"schema\": \"wrong\"}\n";
  }
  const ArenaPolicy before = BufferArena::instance().policy();
  EXPECT_FALSE(load_arena_profile((dir / "corrupt.json").string()));
  EXPECT_TRUE(BufferArena::instance().policy().same_limits(before));

  BufferArena::instance().set_policy(saved);
  fs::remove_all(dir);
}

// --- bitwise-identical application results ----------------------------------
//
// Pinning moves threads, never work: every kernel must produce the same bits
// under any affinity mode. Same guarantee (and test shape) as the hybrid
// threading layer's bitwise suite.

std::vector<std::vector<double>> lbmhd_fields(AffinityMode mode) {
  AffinityGuard guard(mode);
  warm_pool();
  std::vector<std::vector<double>> fields(2);
  run(2, [&](Communicator& comm) {
    lbmhd::Options options;
    options.nx = 32;
    options.ny = 16;
    options.px = 2;
    options.py = 1;
    options.collision = lbmhd::Options::Collision::Flat;
    lbmhd::Simulation sim(comm, options);
    sim.initialize(lbmhd::orszag_tang_ic());
    sim.run(3);
    fields[comm.rank()] = sim.save_state().fields;
  });
  return fields;
}

TEST(AffinityIdentical, LbmhdBitwiseAcrossModes) {
  const auto off = lbmhd_fields(AffinityMode::Off);
  const auto compact = lbmhd_fields(AffinityMode::Compact);
  const auto scatter = lbmhd_fields(AffinityMode::Scatter);
  ASSERT_EQ(off.size(), compact.size());
  for (std::size_t r = 0; r < off.size(); ++r) {
    EXPECT_EQ(off[r], compact[r]) << "rank " << r;
    EXPECT_EQ(off[r], scatter[r]) << "rank " << r;
  }
}

}  // namespace
}  // namespace vpar::simrt
