#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/breaker.hpp"
#include "service/job_server.hpp"
#include "simrt/communicator.hpp"

namespace vpar::service {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::uint64_t counter_of(const trace::MetricsSnapshot& snapshot,
                         const char* name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? std::uint64_t{0} : it->second;
}

/// Small well-behaved SPMD body: a ring exchange plus an allreduce whose
/// result every rank can verify — a corrupted or aborted run cannot pass.
void clean_body(simrt::Communicator& comm) {
  const int P = comm.size();
  const int next = (comm.rank() + 1) % P;
  const int prev = (comm.rank() + P - 1) % P;
  const int sent = comm.rank() * 10;
  int got = -1;
  comm.send<int>(next, std::span<const int>(&sent, 1), 1);
  comm.recv<int>(prev, std::span<int>(&got, 1), 1);
  if (got != prev * 10) throw std::runtime_error("ring value corrupted");
  const int sum = comm.allreduce<int>(1, simrt::ReduceOp::Sum);
  if (sum != P) throw std::runtime_error("allreduce corrupted");
  comm.barrier();
}

JobSpec clean_spec(const std::string& tenant = "default") {
  JobSpec spec;
  spec.app = "ring";
  spec.tenant = tenant;
  spec.size = 2;
  spec.watchdog = 5s;
  spec.retry.max_retries = 0;
  spec.body = clean_body;
  return spec;
}

/// Chaos spec: the plan kills `victim` at its second communication call.
JobSpec killed_spec(const std::string& tenant, int victim,
                    std::uint64_t seed = 1) {
  JobSpec spec = clean_spec(tenant);
  spec.app = "killed";
  spec.seed = seed;
  spec.fault.seed = seed;
  spec.fault.fail_rank = victim;
  spec.fault.fail_at_call = 2;
  spec.retry.max_retries = 0;
  spec.retry.disarm_faults_on_retry = false;
  return spec;
}

// --- admission ---------------------------------------------------------------

TEST(Admission, SingleJobCompletesWithItsOwnAccounting) {
  JobServer server;
  const Admission admission = server.submit(clean_spec());
  ASSERT_TRUE(admission.accepted);
  const JobResult result = admission.ticket.wait();
  EXPECT_EQ(result.outcome, Outcome::Completed);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_GT(result.id, 0u);
  EXPECT_GT(result.total_messages, 0.0);
  EXPECT_GT(result.total_bytes, 0.0);
  EXPECT_EQ(result.faults_injected, 0.0);
  EXPECT_GE(result.latency_ms, result.run_ms);
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(Admission, RejectsBadRequestsWithPreCompletedTickets) {
  JobServer server;
  JobSpec no_body = clean_spec();
  no_body.body = nullptr;
  const Admission a1 = server.submit(std::move(no_body));
  EXPECT_FALSE(a1.accepted);
  EXPECT_EQ(a1.reject, RejectReason::BadRequest);
  EXPECT_TRUE(a1.ticket.done());  // no waiting needed
  EXPECT_EQ(a1.ticket.wait().outcome, Outcome::Rejected);
  EXPECT_TRUE(contains(a1.reason, "no body")) << a1.reason;

  JobSpec huge = clean_spec();
  huge.size = 10'000;
  const Admission a2 = server.submit(std::move(huge));
  EXPECT_FALSE(a2.accepted);
  EXPECT_EQ(a2.reject, RejectReason::BadRequest);
  EXPECT_TRUE(contains(a2.reason, "outside")) << a2.reason;

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.rejected_bad_request, 2u);
  EXPECT_EQ(stats.submitted, 0u);
}

TEST(Admission, QueueFullRejectsWithReasonInsteadOfBuffering) {
  ServerConfig config;
  config.lanes = 1;
  config.queue_capacity = 1;
  JobServer server(config);

  std::atomic<bool> release{false};
  JobSpec blocker = clean_spec();
  blocker.app = "blocker";
  blocker.body = [&release](simrt::Communicator& comm) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    comm.barrier();
  };
  const Admission running = server.submit(std::move(blocker));
  ASSERT_TRUE(running.accepted);
  // Wait until the lane has actually picked the blocker up, so the queue
  // slot below is deterministically free.
  while (server.stats().busy_lanes == 0) std::this_thread::sleep_for(1ms);

  const Admission queued = server.submit(clean_spec());
  ASSERT_TRUE(queued.accepted);
  const Admission overflow = server.submit(clean_spec());
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.reject, RejectReason::QueueFull);
  EXPECT_TRUE(contains(overflow.reason, "queue full (1/1)")) << overflow.reason;
  EXPECT_EQ(overflow.ticket.wait().outcome, Outcome::Rejected);

  release.store(true);
  server.drain();
  EXPECT_EQ(running.ticket.wait().outcome, Outcome::Completed);
  EXPECT_EQ(queued.ticket.wait().outcome, Outcome::Completed);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Admission, RejectsAfterStop) {
  JobServer server;
  server.stop();
  const Admission admission = server.submit(clean_spec());
  EXPECT_FALSE(admission.accepted);
  EXPECT_EQ(admission.reject, RejectReason::ShuttingDown);
  EXPECT_EQ(server.stats().rejected_shutdown, 1u);
}

TEST(Lifecycle, StopFailsQueuedJobsInsteadOfRunningThem) {
  ServerConfig config;
  config.lanes = 1;
  JobServer server(config);

  std::atomic<bool> release{false};
  JobSpec blocker = clean_spec();
  blocker.body = [&release](simrt::Communicator& comm) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    comm.barrier();
  };
  const Admission running = server.submit(std::move(blocker));
  ASSERT_TRUE(running.accepted);
  while (server.stats().busy_lanes == 0) std::this_thread::sleep_for(1ms);
  const Admission queued = server.submit(clean_spec());
  ASSERT_TRUE(queued.accepted);

  std::thread stopper([&] { server.stop(); });
  std::this_thread::sleep_for(50ms);  // let stop() raise the stopping flag
  release.store(true);
  stopper.join();

  EXPECT_EQ(running.ticket.wait().outcome, Outcome::Completed);
  const JobResult result = queued.ticket.wait();
  EXPECT_EQ(result.outcome, Outcome::Failed);
  EXPECT_EQ(result.error_type, "ServerStopped");
  EXPECT_TRUE(contains(result.error, "before the job ran")) << result.error;
}

TEST(Lifecycle, DrainWaitsForEveryTicket) {
  ServerConfig config;
  config.lanes = 2;
  JobServer server(config);
  std::vector<Admission> admissions;
  for (int i = 0; i < 12; ++i) admissions.push_back(server.submit(clean_spec()));
  server.drain();
  for (const auto& a : admissions) {
    ASSERT_TRUE(a.accepted);
    EXPECT_TRUE(a.ticket.done());
    EXPECT_EQ(a.ticket.wait().outcome, Outcome::Completed);
  }
}

// --- retry and deadline ------------------------------------------------------

TEST(Retry, TransientFailureIsRetriedThenCompleted) {
  JobServer server;
  std::atomic<int> body_runs{0};
  JobSpec spec = clean_spec();
  spec.retry.max_retries = 2;
  spec.retry.backoff = 1ms;
  spec.body = [&body_runs](simrt::Communicator& comm) {
    if (comm.rank() == 0 && body_runs.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    comm.barrier();
  };
  const JobResult result = server.submit(std::move(spec)).ticket.wait();
  EXPECT_EQ(result.outcome, Outcome::RetriedThenCompleted);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(server.stats().retried_then_completed, 1u);
}

TEST(Retry, ExhaustedRetriesFailCleanlyWithTheRankError) {
  JobServer server;
  JobSpec spec = clean_spec();
  spec.retry.max_retries = 1;
  spec.retry.backoff = 1ms;
  spec.body = [](simrt::Communicator& comm) {
    if (comm.rank() == 0) throw std::runtime_error("permanent defect");
    comm.barrier();
  };
  const JobResult result = server.submit(std::move(spec)).ticket.wait();
  EXPECT_EQ(result.outcome, Outcome::Failed);
  EXPECT_EQ(result.error_type, "RankError");
  EXPECT_EQ(result.failed_rank, 0);
  EXPECT_EQ(result.attempts, 2);  // first try + one retry
  EXPECT_TRUE(contains(result.error, "permanent defect")) << result.error;
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(Deadline, ExpiresInQueueWithoutEverRunning) {
  ServerConfig config;
  config.lanes = 1;
  JobServer server(config);
  JobSpec slow = clean_spec();
  slow.app = "slow";
  slow.body = [](simrt::Communicator& comm) {
    std::this_thread::sleep_for(150ms);
    comm.barrier();
  };
  const Admission first = server.submit(std::move(slow));
  ASSERT_TRUE(first.accepted);
  JobSpec hurried = clean_spec();
  hurried.deadline = 30ms;  // expires while the slow job holds the lane
  std::atomic<bool> ran{false};
  hurried.body = [&ran](simrt::Communicator& comm) {
    ran.store(true);
    comm.barrier();
  };
  const JobResult result = server.submit(std::move(hurried)).ticket.wait();
  EXPECT_EQ(result.outcome, Outcome::Failed);
  EXPECT_EQ(result.error_type, "DeadlineExceeded");
  EXPECT_TRUE(contains(result.error, "queued")) << result.error;
  EXPECT_FALSE(ran.load());
  server.drain();
  EXPECT_EQ(server.stats().queue_expired, 1u);
  EXPECT_EQ(first.ticket.wait().outcome, Outcome::Completed);
}

TEST(Deadline, AbortsARunningJobCooperatively) {
  JobServer server;
  JobSpec spec = clean_spec();
  spec.deadline = 80ms;
  spec.retry.max_retries = 3;  // must not be spent: deadline is final
  spec.body = [](simrt::Communicator& comm) {
    int v = 0;
    const int peer = comm.rank() == 0 ? 1 : 0;
    comm.recv<int>(peer, std::span<int>(&v, 1), 9);  // never sent
  };
  const auto start = std::chrono::steady_clock::now();
  const JobResult result = server.submit(std::move(spec)).ticket.wait();
  EXPECT_EQ(result.outcome, Outcome::Failed);
  EXPECT_EQ(result.error_type, "DeadlineExceeded");
  EXPECT_EQ(result.attempts, 1);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

// --- circuit breaker ---------------------------------------------------------

ServerConfig breaker_config(std::chrono::milliseconds cooldown) {
  ServerConfig config;
  config.lanes = 1;
  config.breaker.window = 8;
  config.breaker.min_samples = 4;
  config.breaker.threshold = 0.5;
  config.breaker.cooldown = cooldown;
  config.breaker.probes = 1;
  return config;
}

void fail_enough_to_trip(JobServer& server, const std::string& tenant) {
  for (int i = 0; i < 4; ++i) {
    const Admission a = server.submit(killed_spec(tenant, 0));
    ASSERT_TRUE(a.accepted) << "job " << i << ": " << a.reason;
    EXPECT_EQ(a.ticket.wait().outcome, Outcome::Failed);
  }
}

TEST(Breaker, OpensOnFailureRateAndShedsLoad) {
  JobServer server(breaker_config(10s));
  fail_enough_to_trip(server, "storm");
  EXPECT_EQ(server.breaker_state(), CircuitBreaker::State::Open);
  const Admission shed = server.submit(clean_spec());
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reject, RejectReason::BreakerOpen);
  EXPECT_TRUE(contains(shed.reason, "breaker open")) << shed.reason;
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_breaker, 1u);
  EXPECT_EQ(stats.breaker_opens, 1u);
}

TEST(Breaker, HalfOpenProbeReclosesAfterRecovery) {
  JobServer server(breaker_config(50ms));
  fail_enough_to_trip(server, "storm");
  EXPECT_EQ(server.breaker_state(), CircuitBreaker::State::Open);
  std::this_thread::sleep_for(100ms);  // past the cooldown
  const Admission probe = server.submit(clean_spec());
  ASSERT_TRUE(probe.accepted);  // half-open: one probe admitted
  EXPECT_EQ(probe.ticket.wait().outcome, Outcome::Completed);
  EXPECT_EQ(server.breaker_state(), CircuitBreaker::State::Closed);
  const Admission after = server.submit(clean_spec());
  ASSERT_TRUE(after.accepted);
  EXPECT_EQ(after.ticket.wait().outcome, Outcome::Completed);
}

TEST(Breaker, FailedProbeReopens) {
  JobServer server(breaker_config(50ms));
  fail_enough_to_trip(server, "storm");
  std::this_thread::sleep_for(100ms);
  const Admission probe = server.submit(killed_spec("storm", 0));
  ASSERT_TRUE(probe.accepted);
  EXPECT_EQ(probe.ticket.wait().outcome, Outcome::Failed);
  EXPECT_EQ(server.breaker_state(), CircuitBreaker::State::Open);
  EXPECT_EQ(server.stats().breaker_opens, 2u);
}

// --- tenant isolation under chaos -------------------------------------------

// The headline robustness property: tenant "chaos" runs jobs whose fault
// plans kill ranks and corrupt payloads while tenant "clean" runs verified
// ring/allreduce jobs on the same server. Every clean job must complete on
// its first attempt with pristine per-job accounting; every chaos job must
// fail with *its own* error. Nothing leaks across.
TEST(TenantIsolation, ChaosTenantCannotTouchACleanNeighbor) {
  ServerConfig config;
  config.lanes = 2;
  JobServer server(config);
  constexpr int kJobsPerTenant = 12;

  std::vector<Admission> chaos;
  std::vector<Admission> clean;
  for (int i = 0; i < kJobsPerTenant; ++i) {
    if (i % 2 == 0) {
      chaos.push_back(
          server.submit(killed_spec("chaos", i % 2, 100 + static_cast<std::uint64_t>(i))));
      clean.push_back(server.submit(clean_spec("clean")));
    } else {
      JobSpec corrupt = clean_spec("chaos");
      corrupt.app = "bitflip";
      corrupt.checksums = true;
      corrupt.seed = static_cast<std::uint64_t>(i);
      corrupt.fault.seed = static_cast<std::uint64_t>(i);
      corrupt.fault.bitflip_prob = 1.0;
      corrupt.retry.max_retries = 0;
      corrupt.retry.disarm_faults_on_retry = false;
      clean.push_back(server.submit(clean_spec("clean")));
      chaos.push_back(server.submit(std::move(corrupt)));
    }
  }
  server.drain();

  for (const auto& a : clean) {
    ASSERT_TRUE(a.accepted);
    const JobResult r = a.ticket.wait();
    EXPECT_EQ(r.outcome, Outcome::Completed) << r.error;
    EXPECT_EQ(r.attempts, 1);  // never delayed into a retry by a neighbor
    EXPECT_EQ(r.faults_injected, 0.0);
    EXPECT_EQ(r.checksum_failures, 0.0);
    EXPECT_TRUE(r.error.empty()) << r.error;
  }
  for (const auto& a : chaos) {
    ASSERT_TRUE(a.accepted);
    const JobResult r = a.ticket.wait();
    EXPECT_EQ(r.outcome, Outcome::Failed);
    EXPECT_EQ(r.error_type, "RankError") << r.error;
    // The job's own injected failure, never a neighbor's abort echo.
    EXPECT_TRUE(contains(r.error, "injected") || contains(r.error, "checksum"))
        << r.error;
  }

  const auto clean_scope = server.tenant_snapshot("clean");
  EXPECT_EQ(counter_of(clean_scope, "jobs.completed"),
            static_cast<std::uint64_t>(kJobsPerTenant));
  EXPECT_EQ(counter_of(clean_scope, "jobs.failed"), 0u);
  EXPECT_EQ(counter_of(clean_scope, "faults.injected"), 0u);
  EXPECT_EQ(counter_of(clean_scope, "checksum.failures"), 0u);
  const auto chaos_scope = server.tenant_snapshot("chaos");
  EXPECT_EQ(counter_of(chaos_scope, "jobs.failed"),
            static_cast<std::uint64_t>(kJobsPerTenant));
  EXPECT_EQ(counter_of(chaos_scope, "jobs.completed"), 0u);
}

// Satellite regression: one lane (one pooled Executor) alternating failing
// and clean jobs from different tenants. The executor must stay healthy
// across the failures, and each failing job must report its *own* first
// failing rank — not a peer's JobAborted echo.
TEST(TenantIsolation, ExecutorReusedAcrossFailingTenantsStaysHealthy) {
  ServerConfig config;
  config.lanes = 1;
  JobServer server(config);
  for (int round = 0; round < 4; ++round) {
    const int victim = round % 2;
    const JobResult failed =
        server.submit(killed_spec("tenant-a", victim,
                                  static_cast<std::uint64_t>(round) + 1))
            .ticket.wait();
    EXPECT_EQ(failed.outcome, Outcome::Failed);
    EXPECT_EQ(failed.error_type, "RankError") << failed.error;
    EXPECT_EQ(failed.failed_rank, victim) << failed.error;
    EXPECT_TRUE(contains(failed.error, "injected rank failure")) << failed.error;

    const JobResult ok = server.submit(clean_spec("tenant-b")).ticket.wait();
    EXPECT_EQ(ok.outcome, Outcome::Completed) << ok.error;
    EXPECT_EQ(ok.attempts, 1);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 4u);
  EXPECT_EQ(stats.completed, 4u);
}

// Per-job metrics scopes are populated from the job's own RunResult only:
// even with jobs of very different traffic running concurrently, each
// snapshot reflects exactly its own job.
TEST(TenantIsolation, PerJobMetricScopesDoNotBleed) {
  ServerConfig config;
  config.lanes = 2;
  JobServer server(config);

  JobSpec chatty = clean_spec("loud");
  chatty.size = 4;
  chatty.body = [](simrt::Communicator& comm) {
    for (int i = 0; i < 50; ++i) clean_body(comm);
  };
  JobSpec quiet = clean_spec("quiet");
  quiet.size = 2;
  quiet.body = [](simrt::Communicator& comm) { comm.barrier(); };

  const Admission loud = server.submit(std::move(chatty));
  const Admission small = server.submit(std::move(quiet));
  const JobResult loud_result = loud.ticket.wait();
  const JobResult quiet_result = small.ticket.wait();

  // One histogram sample per rank of the owning job, no neighbor samples.
  const auto& loud_hist = loud_result.metrics.histograms.at("rank.messages");
  const auto& quiet_hist = quiet_result.metrics.histograms.at("rank.messages");
  EXPECT_EQ(loud_hist.count(), 4u);
  EXPECT_EQ(quiet_hist.count(), 2u);
  EXPECT_EQ(counter_of(loud_result.metrics, "comm.messages"),
            static_cast<std::uint64_t>(loud_result.total_messages));
  EXPECT_EQ(counter_of(quiet_result.metrics, "comm.messages"),
            static_cast<std::uint64_t>(quiet_result.total_messages));
  EXPECT_GT(loud_result.total_messages, 10.0 * quiet_result.total_messages);
}

// --- breaker unit behaviour --------------------------------------------------

TEST(BreakerUnit, ThresholdNeedsMinSamples) {
  BreakerConfig config;
  config.window = 8;
  config.min_samples = 4;
  config.threshold = 0.5;
  CircuitBreaker breaker(config);
  breaker.record(false);
  breaker.record(false);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);  // too few samples
  breaker.record(false);
  breaker.record(false);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.allow());
}

TEST(BreakerUnit, ForgottenProbeFreesTheSlot) {
  BreakerConfig config;
  config.window = 4;
  config.min_samples = 2;
  config.threshold = 0.5;
  config.cooldown = std::chrono::milliseconds{1};
  config.probes = 1;
  CircuitBreaker breaker(config);
  breaker.record(false);
  breaker.record(false);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);
  std::this_thread::sleep_for(10ms);
  bool probe = false;
  ASSERT_TRUE(breaker.allow(probe));
  ASSERT_TRUE(probe);
  EXPECT_FALSE(breaker.allow());  // slot taken
  breaker.forget(true);           // probe never ran (queue expiry)
  bool probe2 = false;
  EXPECT_TRUE(breaker.allow(probe2));  // slot free again, no wedge
  EXPECT_TRUE(probe2);
  breaker.record(true, true);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

}  // namespace
}  // namespace vpar::service
