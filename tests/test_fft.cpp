#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft3d_dist.hpp"
#include "fft/fft_multi.hpp"
#include "simrt/runtime.hpp"

namespace vpar::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(dist(rng), dist(rng));
  return v;
}

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s{};
    for (std::size_t j = 0; j < n; ++j) {
      const double a = -2.0 * std::numbers::pi * static_cast<double>(j * k % n) /
                       static_cast<double>(n);
      s += x[j] * Complex(std::cos(a), std::sin(a));
    }
    out[k] = s;
  }
  return out;
}

double max_diff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class Fft1dRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1dRoundTrip, InverseOfForwardIsIdentity) {
  const std::size_t n = GetParam();
  Fft1d plan(n);
  auto x = random_signal(n, static_cast<unsigned>(n));
  auto y = x;
  plan.forward(y);
  plan.inverse(y);
  EXPECT_LT(max_diff(x, y), 1e-10) << "n=" << n;
}

TEST_P(Fft1dRoundTrip, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  if (n > 512) GTEST_SKIP() << "naive DFT too slow";
  Fft1d plan(n);
  auto x = random_signal(n, static_cast<unsigned>(n) + 1);
  auto ref = naive_dft(x);
  plan.forward(x);
  EXPECT_LT(max_diff(x, ref), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowersAndOthers, Fft1dRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024,
                                           3, 5, 6, 7, 12, 15, 100, 243));

TEST(Fft1d, DeltaTransformsToConstant) {
  Fft1d plan(64);
  std::vector<Complex> x(64);
  x[0] = 1.0;
  plan.forward(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft1d, SinusoidConcentratesInOneBin) {
  constexpr std::size_t n = 128;
  Fft1d plan(n);
  std::vector<Complex> x(n);
  constexpr std::size_t k0 = 5;
  for (std::size_t j = 0; j < n; ++j) {
    const double a = 2.0 * std::numbers::pi * static_cast<double>(k0 * j) / n;
    x[j] = Complex(std::cos(a), std::sin(a));
  }
  plan.forward(x);
  EXPECT_NEAR(std::abs(x[k0]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != k0) EXPECT_LT(std::abs(x[k]), 1e-9);
  }
}

TEST(Fft1d, ParsevalHolds) {
  constexpr std::size_t n = 256;
  Fft1d plan(n);
  auto x = random_signal(n, 7);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  plan.forward(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9);
}

TEST(Fft1d, Linearity) {
  constexpr std::size_t n = 128;
  Fft1d plan(n);
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  const Complex alpha(2.0, -1.0);
  for (std::size_t i = 0; i < n; ++i) sum[i] = alpha * a[i] + b[i];
  plan.forward(a);
  plan.forward(b);
  plan.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (alpha * a[i] + b[i])), 0.0, 1e-9);
  }
}

TEST(Fft1d, SizeMismatchThrows) {
  Fft1d plan(8);
  std::vector<Complex> wrong(7);
  EXPECT_THROW(plan.forward(wrong), std::runtime_error);
  EXPECT_THROW(Fft1d(0), std::runtime_error);
}

TEST(Fft1d, FlopCountPositiveAndGrowing) {
  EXPECT_GT(Fft1d(64).flop_count(), 0.0);
  EXPECT_GT(Fft1d(128).flop_count(), Fft1d(64).flop_count());
  EXPECT_GT(Fft1d(100).flop_count(), Fft1d(64).flop_count());  // Bluestein costs more
}

class MultiFftEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MultiFftEquivalence, SimultaneousEqualsLooped) {
  const auto [n, count] = GetParam();
  MultiFft1d plan(n);
  auto a = random_signal(n * count, static_cast<unsigned>(n * count));
  auto b = a;
  plan.looped(a, count);
  plan.simultaneous(b, count);
  EXPECT_LT(max_diff(a, b), 1e-12);

  plan.looped(a, count, /*invert=*/true);
  plan.simultaneous(b, count, /*invert=*/true);
  EXPECT_LT(max_diff(a, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiFftEquivalence,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 1},
                      std::pair<std::size_t, std::size_t>{8, 17},
                      std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{128, 3},
                      std::pair<std::size_t, std::size_t>{16, 256}));

TEST(MultiFft, VectorizationShowsInInstrumentation) {
  // The simultaneous variant's vector length is the batch size; the looped
  // variant's is the (short) transform length — the paper's PARATEC story.
  constexpr std::size_t n = 16, count = 512;
  MultiFft1d plan(n);
  auto data = random_signal(n * count, 3);

  perf::Recorder rec_loop, rec_simd;
  {
    perf::ScopedRecorder s(rec_loop);
    auto d = data;
    plan.looped(d, count);
  }
  {
    perf::ScopedRecorder s(rec_simd);
    auto d = data;
    plan.simultaneous(d, count);
  }
  const auto loop_stats = perf::compute_vector_stats(rec_loop.kernels(), 256);
  const auto simd_stats = perf::compute_vector_stats(rec_simd.kernels(), 256);
  EXPECT_LE(loop_stats.avl, n / 2);
  EXPECT_GE(simd_stats.avl, 256.0 - 1e-9);
}

TEST(Fft3d, RoundTrip) {
  Fft3d plan(8, 4, 16);
  Grid3 g(8, 4, 16);
  auto x = random_signal(g.size(), 11);
  g.data = x;
  plan.forward(g);
  plan.inverse(g);
  EXPECT_LT(max_diff(g.data, x), 1e-10);
}

TEST(Fft3d, MatchesNaiveOnPlaneWave) {
  // A single plane wave exp(2 pi i (k.x)/N) must transform to one spike.
  constexpr std::size_t n = 8;
  Fft3d plan(n, n, n);
  Grid3 g(n, n, n);
  const std::size_t kx = 2, ky = 3, kz = 1;
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        const double a = 2.0 * std::numbers::pi *
                         static_cast<double>(kx * x + ky * y + kz * z) / n;
        g.at(x, y, z) = Complex(std::cos(a), std::sin(a));
      }
    }
  }
  plan.forward(g);
  const double volume = static_cast<double>(n * n * n);
  EXPECT_NEAR(std::abs(g.at(kx, ky, kz)), volume, 1e-8);
  g.at(kx, ky, kz) = 0.0;
  for (const auto& v : g.data) EXPECT_LT(std::abs(v), 1e-8);
}

class DistFftProcs : public ::testing::TestWithParam<int> {};

TEST_P(DistFftProcs, MatchesSerial3dFft) {
  const int P = GetParam();
  constexpr std::size_t nx = 16, ny = 8, nz = 4;

  Grid3 global(nx, ny, nz);
  global.data = random_signal(global.size(), 21);
  Grid3 reference = global;
  Fft3d(nx, ny, nz).forward(reference);

  simrt::run(P, [&](simrt::Communicator& comm) {
    DistFft3d dist(comm, nx, ny, nz);
    const std::size_t lnx = dist.local_nx();
    Grid3 slab(lnx, ny, nz);
    const std::size_t x0 = static_cast<std::size_t>(comm.rank()) * lnx;
    for (std::size_t x = 0; x < lnx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t z = 0; z < nz; ++z) slab.at(x, y, z) = global.at(x0 + x, y, z);
      }
    }
    auto spectrum = dist.forward(slab);

    // Check this rank's share of the transposed spectrum.
    const std::size_t lny = dist.local_ny();
    const std::size_t y0 = static_cast<std::size_t>(comm.rank()) * lny;
    for (std::size_t yl = 0; yl < lny; ++yl) {
      for (std::size_t z = 0; z < nz; ++z) {
        for (std::size_t x = 0; x < nx; ++x) {
          const auto got = spectrum[(yl * nz + z) * nx + x];
          const auto want = reference.at(x, y0 + yl, z);
          EXPECT_LT(std::abs(got - want), 1e-9);
        }
      }
    }

    // Round trip back to the original slab.
    Grid3 back = dist.inverse(spectrum);
    for (std::size_t x = 0; x < lnx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t z = 0; z < nz; ++z) {
          EXPECT_LT(std::abs(back.at(x, y, z) - global.at(x0 + x, y, z)), 1e-10);
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Concurrency, DistFftProcs, ::testing::Values(1, 2, 4, 8));

TEST(DistFft, RecordsAllToAllTraffic) {
  auto result = simrt::run(4, [](simrt::Communicator& comm) {
    DistFft3d dist(comm, 8, 8, 8);
    Grid3 slab(2, 8, 8);
    auto spec = dist.forward(slab);
    (void)spec;
  });
  EXPECT_GT(result.merged.comm().bytes(perf::CommKind::AllToAll), 0.0);
}

TEST(DistFft, RejectsIndivisibleGrids) {
  EXPECT_THROW(simrt::run(3,
                          [](simrt::Communicator& comm) {
                            DistFft3d dist(comm, 8, 8, 8);
                          }),
               std::runtime_error);
}

}  // namespace
}  // namespace vpar::fft
