#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "cactus/adm.hpp"
#include "cactus/boundary.hpp"
#include "cactus/deriv.hpp"
#include "cactus/evolve.hpp"
#include "cactus/workload.hpp"
#include "simrt/runtime.hpp"

namespace vpar::cactus {
namespace {

TEST(Deriv, FourthOrderStencilsExactOnPolynomials) {
  // On a uniform grid the 4th-order stencils must differentiate quartics
  // exactly (d1 up to x^4, d2 up to x^5 by symmetry).
  constexpr double h = 0.1;
  auto f = [](double x) { return 3.0 + x - 2.0 * x * x + 0.5 * x * x * x + 0.25 * x * x * x * x; };
  auto fp = [](double x) { return 1.0 - 4.0 * x + 1.5 * x * x + x * x * x; };
  auto fpp = [](double x) { return -4.0 + 3.0 * x + 3.0 * x * x; };
  double vals[5];
  for (int i = -2; i <= 2; ++i) vals[i + 2] = f(static_cast<double>(i) * h);
  EXPECT_NEAR(d1(&vals[2], 1, 1.0 / (12.0 * h)), fp(0.0), 1e-12);
  EXPECT_NEAR(d2(&vals[2], 1, 1.0 / (12.0 * h * h)), fpp(0.0), 1e-10);
}

TEST(Deriv, MixedDerivativeExactOnProducts) {
  constexpr double h = 0.2;
  // u(x,y) = (1 + 2x + x^2)(3 - y + y^2): d2u/dxdy = (2 + 2x)(-1 + 2y).
  auto u = [](double x, double y) {
    return (1.0 + 2.0 * x + x * x) * (3.0 - y + y * y);
  };
  double grid[5][5];
  for (int a = -2; a <= 2; ++a) {
    for (int b = -2; b <= 2; ++b) {
      grid[a + 2][b + 2] = u(a * h, b * h);
    }
  }
  const double got = d11(&grid[2][2], 5, 1, 1.0 / (144.0 * h * h));
  EXPECT_NEAR(got, (2.0) * (-1.0), 1e-10);
}

TEST(Deriv, OneSidedSecondOrder) {
  constexpr double h = 0.05;
  auto f = [](double x) { return 1.0 + 2.0 * x + 3.0 * x * x; };
  double vals[3] = {f(0.0), f(h), f(2.0 * h)};
  EXPECT_NEAR(d1_onesided(&vals[0], 1, 1.0 / (2.0 * h)), 2.0, 1e-10);
}

TEST(Adm, SymIndexTable) {
  EXPECT_EQ(sym(0, 0), 0);
  EXPECT_EQ(sym(0, 1), sym(1, 0));
  EXPECT_EQ(sym(2, 2), 5);
  EXPECT_EQ(kNumFields, 13);
}

TEST(Adm, FlatSpaceHasZeroRhs) {
  GridFunctions state(kNumFields, 8, 8, 8), rhs(kNumFields, 8, 8, 8);
  state.fill(0.0);
  compute_rhs(state, rhs, 0.5, 0, 8, 0, 8, 0, 8, RhsVariant::Vector);
  for (int f = 0; f < kNumFields; ++f) {
    for (double v : std::vector<double>(rhs.field(f), rhs.field(f) + rhs.field_size())) {
      // Only interior cells are written; ghosts stay zero too.
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
}

TEST(Adm, BlockedVariantMatchesVector) {
  GridFunctions state(kNumFields, 12, 6, 6);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-0.01, 0.01);
  for (auto& v : state.raw()) v = dist(rng);
  GridFunctions r1(kNumFields, 12, 6, 6), r2(kNumFields, 12, 6, 6);
  compute_rhs(state, r1, 0.25, 0, 12, 0, 6, 0, 6, RhsVariant::Vector);
  compute_rhs(state, r2, 0.25, 0, 12, 0, 6, 0, 6, RhsVariant::Blocked, 5);
  for (std::size_t i = 0; i < r1.raw().size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.raw()[i], r2.raw()[i]);
  }
}

TEST(Adm, RhsMatchesAnalyticRicciForPlaneWave) {
  // For h_xx = -h_yy = A cos(k z): dt K_xx = R_xx = (k^2 / 2) h_xx.
  constexpr std::size_t n = 16;
  constexpr double h = 0.5;
  const double k = 2.0 * std::numbers::pi / (static_cast<double>(n) * h);
  GridFunctions state(kNumFields, n, n, n), rhs(kNumFields, n, n, n);
  for (std::ptrdiff_t kk = -2; kk < static_cast<std::ptrdiff_t>(n) + 2; ++kk) {
    for (std::ptrdiff_t j = -2; j < static_cast<std::ptrdiff_t>(n) + 2; ++j) {
      for (std::ptrdiff_t i = -2; i < static_cast<std::ptrdiff_t>(n) + 2; ++i) {
        const double z = static_cast<double>(kk) * h;
        const std::size_t o = state.at(kk, j, i);
        state.field(HXX)[o] = 0.01 * std::cos(k * z);
        state.field(HYY)[o] = -state.field(HXX)[o];
      }
    }
  }
  compute_rhs(state, rhs, h, 0, n, 0, n, 0, n, RhsVariant::Vector);
  double max_err = 0.0;
  for (std::size_t kk = 0; kk < n; ++kk) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t o = state.at(static_cast<std::ptrdiff_t>(kk),
                                       static_cast<std::ptrdiff_t>(j),
                                       static_cast<std::ptrdiff_t>(i));
        const double expect = 0.5 * k * k * state.field(HXX)[o];
        max_err = std::max(max_err, std::abs(rhs.field(KXX)[o] - expect));
        // Trace-free wave: lapse RHS must vanish.
        EXPECT_NEAR(rhs.field(LAPSE)[o], 0.0, 1e-14);
      }
    }
  }
  // 4th-order stencil on 16 points/wavelength: error ~ (kh)^4 / 30.
  EXPECT_LT(max_err, 1e-5);
}

TEST(Evolution, FlatSpaceStaysFlat) {
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = opt.nz = 12;
    Evolution evo(comm, opt);
    evo.initialize([](double, double, double) {
      return std::array<double, kNumFields>{};
    });
    evo.run(10);
    for (int f = 0; f < kNumFields; ++f) EXPECT_DOUBLE_EQ(evo.field_l2(f), 0.0);
  });
}

TEST(Evolution, PlaneWavePropagatesAgainstAnalytic) {
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = 8;
    opt.nz = 32;
    opt.h = 1.0;
    opt.cfl = 0.25;
    Evolution evo(comm, opt);
    const double k = 2.0 * std::numbers::pi / (static_cast<double>(opt.nz) * opt.h);
    const double amp = 1.0e-3;
    // z0 = -half: the coordinate origin is the domain centre.
    evo.initialize(plane_wave_id(amp, k));
    const int steps = 32;
    evo.run(steps);
    const double err = evo.error_l2(HXX, plane_wave_exact_hxx(amp, k));
    // Relative error well under 1% of the wave amplitude after 8 crossings
    // of a coarse grid.
    EXPECT_LT(err, 0.02 * amp);
    // And the constraints stay at discretization level.
    EXPECT_LT(evo.constraint_l2(), 1e-6);
  });
}

TEST(Evolution, ConvergenceIsHighOrder) {
  // Doubling resolution must reduce the plane-wave error by at least ~8x
  // (the ICN integrator is 2nd order in dt, stencils 4th order in h; with
  // dt ~ h the combination is ~O(h^2) in time but errors are dominated by
  // spatial terms at these resolutions — demand a conservative factor 4).
  auto error_at = [](std::size_t nz, double cfl) {
    double err = 0.0;
    simrt::run(1, [&](simrt::Communicator& comm) {
      Options opt;
      opt.nx = opt.ny = 8;
      opt.nz = nz;
      opt.h = 32.0 / static_cast<double>(nz);
      opt.cfl = cfl;
      Evolution evo(comm, opt);
      const double k = 2.0 * std::numbers::pi / 32.0;
      evo.initialize(plane_wave_id(1.0e-3, k));
      const int steps = static_cast<int>(std::lround(8.0 / (opt.cfl * opt.h)));
      evo.run(steps);
      err = evo.error_l2(HXX, plane_wave_exact_hxx(1.0e-3, k));
    });
    return err;
  };
  const double coarse = error_at(16, 0.125);
  const double fine = error_at(32, 0.125);
  EXPECT_LT(fine, coarse / 4.0);
}

std::vector<double> evolve_and_gather(int procs, int px, int py, int pz,
                                      bool periodic, BoundaryVariant bc,
                                      RhsVariant rhs_variant, int steps) {
  std::vector<double> out;
  simrt::run(procs, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = 16;
    opt.ny = 8;
    opt.nz = 8;
    opt.px = px;
    opt.py = py;
    opt.pz = pz;
    opt.periodic = periodic;
    opt.bc_variant = bc;
    opt.rhs_variant = rhs_variant;
    opt.block = 5;
    opt.h = 0.5;
    Evolution evo(comm, opt);
    evo.initialize(gaussian_pulse_id(0.01, 2.0));
    evo.run(steps);
    auto g = evo.gather(HXX);
    if (comm.rank() == 0) out = std::move(g);
  });
  return out;
}

TEST(Evolution, ParallelMatchesSerialPeriodic) {
  const auto serial = evolve_and_gather(1, 1, 1, 1, true,
                                        BoundaryVariant::Vectorized,
                                        RhsVariant::Vector, 6);
  for (auto [procs, px, py, pz] :
       {std::tuple{2, 2, 1, 1}, {4, 2, 2, 1}, {8, 2, 2, 2}}) {
    const auto par = evolve_and_gather(procs, px, py, pz, true,
                                       BoundaryVariant::Vectorized,
                                       RhsVariant::Vector, 6);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(par[i], serial[i], 1e-13) << "P=" << procs;
    }
  }
}

TEST(Evolution, ParallelMatchesSerialRadiation) {
  const auto serial = evolve_and_gather(1, 1, 1, 1, false,
                                        BoundaryVariant::Vectorized,
                                        RhsVariant::Vector, 6);
  const auto par = evolve_and_gather(4, 2, 1, 2, false,
                                     BoundaryVariant::Vectorized,
                                     RhsVariant::Vector, 6);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(par[i], serial[i], 1e-13);
  }
}

TEST(Evolution, ScalarBoundaryMatchesVectorized) {
  const auto scalar = evolve_and_gather(2, 2, 1, 1, false, BoundaryVariant::Scalar,
                                        RhsVariant::Vector, 6);
  const auto vec = evolve_and_gather(2, 2, 1, 1, false, BoundaryVariant::Vectorized,
                                     RhsVariant::Vector, 6);
  ASSERT_EQ(scalar.size(), vec.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_DOUBLE_EQ(scalar[i], vec[i]);
  }
}

TEST(Evolution, BlockedRhsMatchesVector) {
  const auto a = evolve_and_gather(2, 2, 1, 1, true, BoundaryVariant::Vectorized,
                                   RhsVariant::Vector, 5);
  const auto b = evolve_and_gather(2, 2, 1, 1, true, BoundaryVariant::Vectorized,
                                   RhsVariant::Blocked, 5);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Evolution, RadiationBoundaryLetsPulseLeave) {
  // Only the radiative content leaves; h_xx retains a static longitudinal
  // part, so measure the dynamic field K. Its norm peaks early, then the
  // outgoing pulse crosses the boundary and the norm must collapse.
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = opt.nz = 20;
    opt.h = 0.5;
    opt.periodic = false;
    Evolution evo(comm, opt);
    evo.initialize(gaussian_pulse_id(0.01, 1.5));
    double peak = 0.0;
    for (int burst = 0; burst < 6; ++burst) {
      evo.run(5);
      peak = std::max(peak, evo.field_l2(KXX));
    }
    evo.run(90);  // many crossing times
    EXPECT_LT(evo.field_l2(KXX), 0.3 * peak);
  });
}

TEST(Evolution, VorAvlReflectXDimension) {
  // The paper: Cactus AVL follows the local x extent; VOR is ~99% once the
  // boundary is small relative to the interior.
  Table5Config small;
  small.nxl = 80;
  small.nyl = small.nzl = 80;
  Table5Config large;
  large.nxl = 250;
  large.nyl = large.nzl = 64;
  const auto ps = make_profile(small);
  const auto pl = make_profile(large);
  const auto stats_small = perf::compute_vector_stats(ps.kernels, 256);
  const auto stats_large = perf::compute_vector_stats(pl.kernels, 256);
  EXPECT_NEAR(stats_small.avl, 80.0, 2.0);
  EXPECT_GT(stats_large.avl, 240.0);
  EXPECT_GT(stats_small.vor, 0.95);
}

TEST(Workload, SynthesizedProfileMatchesInstrumentedRun) {
  constexpr int steps = 2;
  auto result = simrt::run(4, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = 16;
    opt.ny = 16;
    opt.nz = 16;
    opt.px = 4;
    opt.py = 1;
    opt.pz = 1;
    opt.periodic = false;
    opt.bc_variant = BoundaryVariant::Scalar;
    Evolution evo(comm, opt);
    evo.initialize(gaussian_pulse_id(0.01, 2.0));
    evo.run(steps);
  });

  // Rank 0 is a corner rank: its local block is 4x16x16 which is thinner
  // than the synthesized square block, so compare only the region flop
  // *rates* per point, which must agree exactly.
  const double measured_rhs = result.per_rank[1].kernels().region_flops("ADM_BSSN_Sources");
  // Rank 1 (interior in x, boundary in y/z): RHS region is full 4x12x12.
  const double points = 4.0 * 12.0 * 12.0 * 3.0 * steps;
  EXPECT_NEAR(measured_rhs, points * rhs_flops_per_point(), 1.0);
}

TEST(Workload, CornerRankCarriesBoundaryWork) {
  Table5Config cfg;
  cfg.bc_variant = BoundaryVariant::Scalar;
  const auto prof = make_profile(cfg);
  EXPECT_GT(prof.kernels.region_flops("boundary"), 0.0);
  // The scalar boundary record must be non-vectorizable.
  bool found_scalar = false;
  for (const auto& rec : prof.kernels.regions().at("boundary")) {
    if (!rec.vectorizable) found_scalar = true;
  }
  EXPECT_TRUE(found_scalar);
}

TEST(Workload, BaselineWeakScales) {
  Table5Config a, b;
  a.procs = 16;
  b.procs = 64;
  EXPECT_NEAR(baseline_flops(b) / baseline_flops(a), 4.0, 1e-12);
}

}  // namespace
}  // namespace vpar::cactus
