#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simrt/coarray.hpp"
#include "simrt/runtime.hpp"

namespace vpar::simrt {
namespace {

TEST(Simrt, SendRecvRoundTrip) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data = {1, 2, 3};
      comm.send<int>(1, data, 7);
    } else {
      std::vector<int> got(3);
      comm.recv<int>(0, std::span<int>(got), 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Simrt, MessagesDoNotOvertakePerTag) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        comm.send<int>(1, std::span<const int>(&i, 1), 3);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        int v = -1;
        comm.recv<int>(0, std::span<int>(&v, 1), 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Simrt, TagMatchingSkipsOtherTags) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      int a = 10, b = 20;
      comm.send<int>(1, std::span<const int>(&a, 1), 1);
      comm.send<int>(1, std::span<const int>(&b, 1), 2);
    } else {
      int v = 0;
      comm.recv<int>(0, std::span<int>(&v, 1), 2);
      EXPECT_EQ(v, 20);
      comm.recv<int>(0, std::span<int>(&v, 1), 1);
      EXPECT_EQ(v, 10);
    }
  });
}

TEST(Simrt, SendRecvRingNeverDeadlocks) {
  constexpr int P = 8;
  run(P, [](Communicator& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    int out = comm.rank(), in = -1;
    comm.sendrecv<int>(right, std::span<const int>(&out, 1), left,
                       std::span<int>(&in, 1), 0);
    EXPECT_EQ(in, left);
  });
}

TEST(Simrt, SelfSendRecv) {
  run(1, [](Communicator& comm) {
    int out = 42, in = 0;
    comm.sendrecv<int>(0, std::span<const int>(&out, 1), 0, std::span<int>(&in, 1), 5);
    EXPECT_EQ(in, 42);
  });
}

TEST(Simrt, RecvSizeMismatchThrows) {
  EXPECT_THROW(run(2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       int v = 1;
                       comm.send<int>(1, std::span<const int>(&v, 1), 0);
                     } else {
                       std::vector<int> too_big(2);
                       comm.recv<int>(0, std::span<int>(too_big), 0);
                     }
                   }),
               std::runtime_error);
}

TEST(Simrt, AllreduceSumMaxMin) {
  run(5, [](Communicator& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce(r, ReduceOp::Sum), 0 + 1 + 2 + 3 + 4);
    EXPECT_EQ(comm.allreduce(r, ReduceOp::Max), 4);
    EXPECT_EQ(comm.allreduce(r + 10, ReduceOp::Min), 10);
  });
}

TEST(Simrt, AllreduceVectorsElementwise) {
  run(4, [](Communicator& comm) {
    std::vector<double> v = {1.0, static_cast<double>(comm.rank())};
    comm.allreduce_inplace(std::span<double>(v), ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(v[0], 4.0);
    EXPECT_DOUBLE_EQ(v[1], 6.0);
  });
}

TEST(Simrt, ConsecutiveCollectivesDoNotInterfere) {
  run(6, [](Communicator& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const int s = comm.allreduce(1, ReduceOp::Sum);
      EXPECT_EQ(s, 6);
      comm.barrier();
      const int m = comm.allreduce(comm.rank() * iter, ReduceOp::Max);
      EXPECT_EQ(m, 5 * iter);
    }
  });
}

TEST(Simrt, Broadcast) {
  run(4, [](Communicator& comm) {
    std::vector<int> v(3, comm.rank() == 2 ? 99 : 0);
    comm.broadcast<int>(std::span<int>(v), 2);
    EXPECT_EQ(v, (std::vector<int>{99, 99, 99}));
  });
}

TEST(Simrt, GatherIsRankOrdered) {
  run(4, [](Communicator& comm) {
    std::vector<int> mine = {comm.rank() * 2, comm.rank() * 2 + 1};
    std::vector<int> all(comm.rank() == 0 ? 8 : 0);
    comm.gather<int>(mine, std::span<int>(all), 0);
    if (comm.rank() == 0) {
      std::vector<int> expect(8);
      std::iota(expect.begin(), expect.end(), 0);
      EXPECT_EQ(all, expect);
    }
  });
}

TEST(Simrt, AlltoallvTransposes) {
  constexpr int P = 5;
  run(P, [](Communicator& comm) {
    std::vector<std::vector<int>> out(P);
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = {comm.rank() * 100 + d};
    auto in = comm.alltoallv(out);
    for (int s = 0; s < P; ++s) {
      ASSERT_EQ(in[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(in[static_cast<std::size_t>(s)][0], s * 100 + comm.rank());
    }
  });
}

TEST(Simrt, AlltoallvVariableSizes) {
  constexpr int P = 4;
  run(P, [](Communicator& comm) {
    std::vector<std::vector<int>> out(P);
    for (int d = 0; d < P; ++d) {
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(comm.rank()), d);
    }
    auto in = comm.alltoallv(out);
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(in[static_cast<std::size_t>(s)].size(), static_cast<std::size_t>(s));
    }
  });
}

TEST(Simrt, BarrierSeparatesPhases) {
  constexpr int P = 8;
  static std::atomic<int> phase_count{0};
  phase_count = 0;
  run(P, [](Communicator& comm) {
    phase_count.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase_count.load(), comm.size());
  });
}

TEST(Simrt, ExceptionPropagatesToCaller) {
  EXPECT_THROW(run(3,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
                   }),
               std::runtime_error);
}

TEST(Simrt, RunRejectsNonPositiveSize) {
  EXPECT_THROW(run(0, [](Communicator&) {}), std::runtime_error);
}

TEST(Simrt, CommStatsRecorded) {
  auto result = run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(100);
      comm.send<double>(1, payload, 0);
    } else {
      std::vector<double> payload(100);
      comm.recv<double>(0, std::span<double>(payload), 0);
    }
    comm.barrier();
  });
  EXPECT_DOUBLE_EQ(result.per_rank[0].comm().bytes(perf::CommKind::PointToPoint), 800.0);
  EXPECT_DOUBLE_EQ(result.per_rank[1].comm().bytes(perf::CommKind::PointToPoint), 0.0);
  EXPECT_DOUBLE_EQ(result.merged.comm().messages(perf::CommKind::Barrier), 2.0);
}

TEST(Simrt, CoArrayPutGet) {
  run(4, [](Communicator& comm) {
    CoArray<int> ca(comm, "t1", 4);
    auto local = ca.local();
    for (std::size_t i = 0; i < 4; ++i) local[i] = comm.rank() * 10 + static_cast<int>(i);
    ca.sync_all();

    // Everyone reads the next image's block one-sidedly.
    const int next = (comm.rank() + 1) % comm.size();
    std::array<int, 4> got{};
    ca.get(next, 0, std::span<int>(got));
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i], next * 10 + static_cast<int>(i));
    ca.sync_all();

    // Everyone puts one value into the previous image.
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    const int v = comm.rank() + 1000;
    ca.put(prev, 0, std::span<const int>(&v, 1));
    ca.sync_all();
    EXPECT_EQ(ca.local()[0], (comm.rank() + 1) % comm.size() + 1000);
  });
}

TEST(Simrt, CoArrayOutOfRangeThrows) {
  EXPECT_THROW(run(2,
                   [](Communicator& comm) {
                     CoArray<int> ca(comm, "t2", 2);
                     int v = 0;
                     ca.put((comm.rank() + 1) % 2, 2, std::span<const int>(&v, 1));
                   }),
               std::runtime_error);
}

TEST(Simrt, CoArrayRecordsOneSidedTraffic) {
  auto result = run(2, [](Communicator& comm) {
    CoArray<double> ca(comm, "t3", 8);
    std::array<double, 8> v{};
    ca.put(1 - comm.rank(), 0, std::span<const double>(v));  // remote: counted
    ca.put(comm.rank(), 0, std::span<const double>(v));      // local: free
    ca.sync_all();
  });
  EXPECT_DOUBLE_EQ(result.per_rank[0].comm().bytes(perf::CommKind::OneSided), 64.0);
  EXPECT_DOUBLE_EQ(result.per_rank[0].comm().messages(perf::CommKind::OneSided), 1.0);
}

}  // namespace
}  // namespace vpar::simrt
