#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>

#include "lbmhd/collision.hpp"
#include "lbmhd/lattice.hpp"
#include "lbmhd/simulation.hpp"
#include "lbmhd/stream.hpp"
#include "lbmhd/workload.hpp"
#include "simrt/runtime.hpp"

namespace vpar::lbmhd {
namespace {

TEST(Lattice, WeightsNormalized) {
  double sum = 0.0;
  for (double w : Lattice::w) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-15);
}

TEST(Lattice, DirectionsAreUnitOrRest) {
  for (int i = 1; i < Lattice::kDirs; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    EXPECT_NEAR(Lattice::cx[iu] * Lattice::cx[iu] + Lattice::cy[iu] * Lattice::cy[iu],
                1.0, 1e-15);
  }
  EXPECT_DOUBLE_EQ(Lattice::cx[0], 0.0);
  EXPECT_DOUBLE_EQ(Lattice::cy[0], 0.0);
}

TEST(Lattice, SecondMomentIsotropy) {
  // Sum w_i e_ia e_ib = cs^2 delta_ab with cs^2 = 1/4.
  double xx = 0.0, xy = 0.0, yy = 0.0;
  for (std::size_t i = 0; i < Lattice::kDirs; ++i) {
    xx += Lattice::w[i] * Lattice::cx[i] * Lattice::cx[i];
    xy += Lattice::w[i] * Lattice::cx[i] * Lattice::cy[i];
    yy += Lattice::w[i] * Lattice::cy[i] * Lattice::cy[i];
  }
  EXPECT_NEAR(xx, Lattice::kCs2, 1e-15);
  EXPECT_NEAR(yy, Lattice::kCs2, 1e-15);
  EXPECT_NEAR(xy, 0.0, 1e-15);
}

TEST(Lattice, EquilibriumMomentsReproduceInputs) {
  // Arbitrary macroscopic state: the equilibria must carry exactly rho, m, B
  // and the full stress/induction fluxes.
  const double rho = 1.3, ux = 0.04, uy = -0.03, bx = 0.05, by = 0.02;
  const double mx = rho * ux, my = rho * uy;
  const double b2h = 0.5 * (bx * bx + by * by);
  const double txx = rho * ux * ux + b2h - bx * bx;
  const double tyy = rho * uy * uy + b2h - by * by;
  const double txy = rho * ux * uy - bx * by;
  const double lam = ux * by - bx * uy;

  double r = 0, sx = 0, sy = 0, pxx = 0, pxy = 0, pyy = 0;
  double bxs = 0, bys = 0, fxy = 0, fyx = 0;
  for (int i = 0; i < Lattice::kDirs; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const double fi = Lattice::f_eq(i, rho, mx, my, txx, txy, tyy);
    r += fi;
    sx += fi * Lattice::cx[iu];
    sy += fi * Lattice::cy[iu];
    pxx += fi * Lattice::cx[iu] * Lattice::cx[iu];
    pxy += fi * Lattice::cx[iu] * Lattice::cy[iu];
    pyy += fi * Lattice::cy[iu] * Lattice::cy[iu];
    double gx = 0, gy = 0;
    Lattice::g_eq(i, bx, by, lam, gx, gy);
    bxs += gx;
    bys += gy;
    fxy += gx * Lattice::cy[iu];  // first moment of g_x along y -> Lambda_yx
    fyx += gy * Lattice::cx[iu];  // first moment of g_y along x -> Lambda_xy
  }
  EXPECT_NEAR(r, rho, 1e-14);
  EXPECT_NEAR(sx, mx, 1e-14);
  EXPECT_NEAR(sy, my, 1e-14);
  // Second moment must equal T + cs^2 rho I.
  EXPECT_NEAR(pxx, txx + Lattice::kCs2 * rho, 1e-14);
  EXPECT_NEAR(pyy, tyy + Lattice::kCs2 * rho, 1e-14);
  EXPECT_NEAR(pxy, txy, 1e-14);
  EXPECT_NEAR(bxs, bx, 1e-14);
  EXPECT_NEAR(bys, by, 1e-14);
  EXPECT_NEAR(fyx, lam, 1e-14);   // Lambda_xy
  EXPECT_NEAR(fxy, -lam, 1e-14);  // Lambda_yx
}

TEST(Lattice, CubicCoefficientsSumToOne) {
  for (double t : {0.0, 0.25, Lattice::kS, 1.0 - Lattice::kS, 0.9}) {
    const auto c = Lattice::cubic_coeffs(t);
    EXPECT_NEAR(c[0] + c[1] + c[2] + c[3], 1.0, 1e-14) << "t=" << t;
  }
}

TEST(Lattice, CubicInterpolatesCubicsExactly) {
  // Degree-3 Lagrange interpolation must reproduce cubic polynomials.
  auto poly = [](double x) { return 1.0 + 2.0 * x - 0.5 * x * x + 0.25 * x * x * x; };
  const double t = 0.3;
  const auto c = Lattice::cubic_coeffs(t);
  const double interp =
      c[0] * poly(-1.0) + c[1] * poly(0.0) + c[2] * poly(1.0) + c[3] * poly(2.0);
  EXPECT_NEAR(interp, poly(t), 1e-13);
}

void fill_random(FieldSet& fs, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.01, 0.1);
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    double* plane = fs.plane(p);
    for (std::size_t j = 0; j < fs.nyl(); ++j) {
      for (std::size_t i = 0; i < fs.nxl(); ++i) {
        plane[fs.at(static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(i))] =
            (p == 0 ? 0.5 : 0.0) + dist(rng);
      }
    }
  }
}

struct Invariants {
  double mass = 0, mx = 0, my = 0, bx = 0, by = 0;
};

Invariants invariants_of(const FieldSet& fs) {
  Invariants inv;
  for (std::size_t j = 0; j < fs.nyl(); ++j) {
    for (std::size_t i = 0; i < fs.nxl(); ++i) {
      const std::size_t o =
          fs.at(static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(i));
      for (int d = 0; d < Lattice::kDirs; ++d) {
        const auto du = static_cast<std::size_t>(d);
        inv.mass += fs.f(d)[o];
        inv.mx += fs.f(d)[o] * Lattice::cx[du];
        inv.my += fs.f(d)[o] * Lattice::cy[du];
        inv.bx += fs.gx(d)[o];
        inv.by += fs.gy(d)[o];
      }
    }
  }
  return inv;
}

TEST(Collision, ConservesMassMomentumAndField) {
  FieldSet fs(12, 10);
  fill_random(fs, 1);
  const auto before = invariants_of(fs);
  collide_flat(fs, CollisionParams{0.8, 0.9});
  const auto after = invariants_of(fs);
  EXPECT_NEAR(after.mass, before.mass, 1e-11);
  EXPECT_NEAR(after.mx, before.mx, 1e-11);
  EXPECT_NEAR(after.my, before.my, 1e-11);
  EXPECT_NEAR(after.bx, before.bx, 1e-11);
  EXPECT_NEAR(after.by, before.by, 1e-11);
}

TEST(Collision, BlockedMatchesFlatExactly) {
  FieldSet a(20, 8), b(20, 8);
  fill_random(a, 2);
  fill_random(b, 2);
  collide_flat(a, CollisionParams{1.0, 1.0});
  collide_blocked(b, CollisionParams{1.0, 1.0}, 7);
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    for (std::size_t j = 0; j < a.nyl(); ++j) {
      for (std::size_t i = 0; i < a.nxl(); ++i) {
        const std::size_t o =
            a.at(static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(i));
        EXPECT_DOUBLE_EQ(a.plane(p)[o], b.plane(p)[o]);
      }
    }
  }
}

TEST(Collision, EquilibriumIsFixedPoint) {
  // Populations already at equilibrium must be unchanged by collision.
  FieldSet fs(6, 6);
  const double rho = 1.1, ux = 0.02, uy = -0.01, bx = 0.03, by = 0.04;
  const double mx = rho * ux, my = rho * uy;
  const double b2h = 0.5 * (bx * bx + by * by);
  const double txx = rho * ux * ux + b2h - bx * bx;
  const double tyy = rho * uy * uy + b2h - by * by;
  const double txy = rho * ux * uy - bx * by;
  const double lam = ux * by - bx * uy;
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 0; i < 6; ++i) {
      const std::size_t o =
          fs.at(static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(i));
      for (int d = 0; d < Lattice::kDirs; ++d) {
        fs.f(d)[o] = Lattice::f_eq(d, rho, mx, my, txx, txy, tyy);
        double gx, gy;
        Lattice::g_eq(d, bx, by, lam, gx, gy);
        fs.gx(d)[o] = gx;
        fs.gy(d)[o] = gy;
      }
    }
  }
  FieldSet ref(6, 6);
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    std::copy_n(fs.plane(p), fs.plane_size(), ref.plane(p));
  }
  collide_flat(fs, CollisionParams{1.0, 1.0});
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    for (std::size_t k = 0; k < fs.plane_size(); ++k) {
      EXPECT_NEAR(fs.plane(p)[k], ref.plane(p)[k], 1e-13);
    }
  }
}

TEST(Simulation, SerialConservationOverManySteps) {
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = 32;
    opt.ny = 32;
    auto sim = Simulation(comm, opt);
    sim.initialize(orszag_tang_ic(0.05));
    const auto before = sim.diagnostics();
    sim.run(20);
    const auto after = sim.diagnostics();
    EXPECT_NEAR(after.mass, before.mass, 1e-8 * before.mass);
    EXPECT_NEAR(after.momentum_x, before.momentum_x, 1e-9);
    EXPECT_NEAR(after.momentum_y, before.momentum_y, 1e-9);
    EXPECT_NEAR(after.bx_total, before.bx_total, 1e-9);
    EXPECT_NEAR(after.by_total, before.by_total, 1e-9);
  });
}

TEST(Simulation, EnergyDecays) {
  // Decaying MHD: total (kinetic + magnetic) energy must not grow.
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = 32;
    opt.ny = 32;
    opt.tau_f = 0.8;
    opt.tau_g = 0.8;
    auto sim = Simulation(comm, opt);
    sim.initialize(orszag_tang_ic(0.05));
    const auto before = sim.diagnostics();
    sim.run(50);
    const auto after = sim.diagnostics();
    EXPECT_LT(after.kinetic_energy + after.magnetic_energy,
              (before.kinetic_energy + before.magnetic_energy) * 1.0001);
    EXPECT_GT(after.kinetic_energy + after.magnetic_energy, 0.0);
  });
}

std::vector<double> run_and_gather(int procs, int px, int py,
                                   Options::Exchange ex, Options::Collision coll,
                                   int steps) {
  std::vector<double> result;
  simrt::run(procs, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = 32;
    opt.ny = 16;
    opt.px = px;
    opt.py = py;
    opt.exchange = ex;
    opt.collision = coll;
    opt.block = 5;
    auto sim = Simulation(comm, opt);
    sim.initialize(orszag_tang_ic(0.05));
    sim.run(steps);
    auto d = sim.gather(Simulation::Field::Density);
    if (comm.rank() == 0) result = std::move(d);
  });
  return result;
}

TEST(Simulation, ParallelMatchesSerial) {
  const auto serial = run_and_gather(1, 1, 1, Options::Exchange::Mpi,
                                     Options::Collision::Flat, 8);
  for (auto [procs, px, py] : {std::tuple{2, 2, 1}, {4, 2, 2}, {8, 4, 2}}) {
    const auto par = run_and_gather(procs, px, py, Options::Exchange::Mpi,
                                    Options::Collision::Flat, 8);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(par[i], serial[i], 1e-12) << "P=" << procs << " cell " << i;
    }
  }
}

TEST(Simulation, CafMatchesMpi) {
  const auto mpi = run_and_gather(4, 2, 2, Options::Exchange::Mpi,
                                  Options::Collision::Flat, 8);
  const auto caf = run_and_gather(4, 2, 2, Options::Exchange::Caf,
                                  Options::Collision::Flat, 8);
  ASSERT_EQ(mpi.size(), caf.size());
  for (std::size_t i = 0; i < mpi.size(); ++i) EXPECT_NEAR(caf[i], mpi[i], 1e-13);
}

TEST(Simulation, BlockedCollisionMatchesFlat) {
  const auto flat = run_and_gather(4, 2, 2, Options::Exchange::Mpi,
                                   Options::Collision::Flat, 8);
  const auto blocked = run_and_gather(4, 2, 2, Options::Exchange::Mpi,
                                      Options::Collision::Blocked, 8);
  for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_NEAR(blocked[i], flat[i], 1e-13);
}

TEST(Simulation, CurrentDensityIntegratesToZero) {
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = 64;
    opt.ny = 64;
    auto sim = Simulation(comm, opt);
    sim.initialize(crossed_structures_ic(0.1));
    sim.run(5);
    const auto jz = sim.gather(Simulation::Field::CurrentZ);
    double total = 0.0, maxabs = 0.0;
    for (double v : jz) {
      total += v;
      maxabs = std::max(maxabs, std::abs(v));
    }
    // Periodic curl integrates to zero; crossed structures carry real current.
    EXPECT_NEAR(total, 0.0, 1e-9);
    EXPECT_GT(maxabs, 1e-4);
  });
}

TEST(Simulation, RejectsBadProcessorGrid) {
  EXPECT_THROW(simrt::run(3,
                          [](simrt::Communicator& comm) {
                            Options opt;
                            opt.px = 2;
                            opt.py = 2;
                            Simulation sim(comm, opt);
                          }),
               std::runtime_error);
}

TEST(Workload, SynthesizedProfileMatchesInstrumentedRun) {
  // The Table 3 generator must agree with the counts an instrumented small
  // run records: same flops, same bytes, same communication volume per rank.
  constexpr std::size_t nx = 32, ny = 32;
  constexpr int steps = 3;
  auto result = simrt::run(4, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = nx;
    opt.ny = ny;
    opt.px = 2;
    opt.py = 2;
    auto sim = Simulation(comm, opt);
    sim.initialize(orszag_tang_ic(0.05));
    sim.run(steps);
  });

  Table3Config cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.procs = 4;
  cfg.steps = steps;
  const auto synth = make_profile(cfg);

  const auto& measured = result.per_rank[0];
  EXPECT_NEAR(synth.kernels.region_flops("collision"),
              measured.kernels().region_flops("collision"), 1.0);
  EXPECT_NEAR(synth.kernels.region_flops("stream"),
              measured.kernels().region_flops("stream"), 1.0);
  EXPECT_NEAR(synth.comm.bytes(perf::CommKind::PointToPoint),
              measured.comm().bytes(perf::CommKind::PointToPoint), 1.0);
  EXPECT_NEAR(synth.kernels.total_bytes(), measured.kernels().total_bytes(),
              measured.kernels().total_bytes() * 0.01);
}

TEST(Workload, CafVariantSwapsTrafficClass) {
  Table3Config cfg;
  cfg.nx = 64;
  cfg.ny = 64;
  cfg.procs = 4;
  cfg.steps = 2;
  cfg.caf = true;
  const auto caf = make_profile(cfg);
  EXPECT_DOUBLE_EQ(caf.comm.bytes(perf::CommKind::PointToPoint), 0.0);
  EXPECT_GT(caf.comm.bytes(perf::CommKind::OneSided), 0.0);
  // CAF sends many more, smaller messages.
  cfg.caf = false;
  const auto mpi = make_profile(cfg);
  EXPECT_GT(caf.comm.total_messages(), 10.0 * mpi.comm.messages(perf::CommKind::PointToPoint));
  // And avoids the pack traffic entirely.
  EXPECT_DOUBLE_EQ(caf.kernels.region_flops("comm_pack"), 0.0);
  EXPECT_GT(mpi.kernels.total_bytes(), caf.kernels.total_bytes());
}

TEST(Workload, RejectsNonSquareProcs) {
  Table3Config cfg;
  cfg.procs = 48;
  EXPECT_THROW(make_profile(cfg), std::runtime_error);
}

TEST(Workload, BaselineScalesLinearly) {
  EXPECT_NEAR(baseline_flops(64, 64, 10) * 4.0, baseline_flops(128, 64, 20), 1.0);
}

}  // namespace
}  // namespace vpar::lbmhd
