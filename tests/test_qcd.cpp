#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qcd/lattice.hpp"
#include "qcd/simulation.hpp"
#include "qcd/workload.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"
#include "simrt/runtime.hpp"

namespace vpar::qcd {
namespace {

class DispatchGuard {
 public:
  explicit DispatchGuard(simd::DispatchMode m) : prev_(simd::dispatch_mode()) {
    simd::set_dispatch_mode(m);
  }
  ~DispatchGuard() { simd::set_dispatch_mode(prev_); }

 private:
  simd::DispatchMode prev_;
};

struct HybridGuard {
  simrt::HybridMode previous = simrt::hybrid_threading();
  explicit HybridGuard(simrt::HybridMode mode) {
    simrt::set_hybrid_threading(mode);
  }
  ~HybridGuard() { simrt::set_hybrid_threading(previous); }
};

Options small_options(bool normalize = true) {
  Options opt;
  opt.nx = 8;
  opt.ny = 4;
  opt.nz = 4;
  opt.nt = 6;
  opt.normalize = normalize;
  return opt;
}

/// Run `steps` on `ranks` ranks and return the rank-0 gathered field.
std::vector<double> run_psi(int ranks, const Options& opt, int steps) {
  std::vector<double> psi;
  simrt::run(ranks, [&](simrt::Communicator& comm) {
    Simulation sim(comm, opt);
    sim.initialize();
    sim.run(steps);
    auto g = sim.gather_psi();
    if (comm.rank() == 0) psi = std::move(g);
  });
  return psi;
}

TEST(Lattice, LinkMatricesAreUnitary) {
  const LinkMatrices& u = links();
  for (std::size_t mu = 0; mu < 4; ++mu) {
    for (std::size_t r = 0; r < kColors; ++r) {
      for (std::size_t c = 0; c < kColors; ++c) {
        // (U U^dagger)[r][c] = sum_d U[r][d] * conj(U[c][d])
        double re = 0.0, im = 0.0;
        for (std::size_t d = 0; d < kColors; ++d) {
          re += u.re[mu][r][d] * u.re[mu][c][d] +
                u.im[mu][r][d] * u.im[mu][c][d];
          im += u.im[mu][r][d] * u.re[mu][c][d] -
                u.re[mu][r][d] * u.im[mu][c][d];
        }
        EXPECT_NEAR(re, r == c ? 1.0 : 0.0, 1e-12) << "mu=" << mu;
        EXPECT_NEAR(im, 0.0, 1e-12) << "mu=" << mu;
      }
    }
  }
}

TEST(Lattice, StaggeredPhasesFollowKogutSusskind) {
  EXPECT_EQ(staggered_eta(0, 5, 3, 2), 1.0);   // eta_x is always +1
  EXPECT_EQ(staggered_eta(1, 5, 3, 2), -1.0);  // (-1)^x
  EXPECT_EQ(staggered_eta(2, 5, 3, 2), 1.0);   // (-1)^(x+y)
  EXPECT_EQ(staggered_eta(3, 5, 3, 2), 1.0);   // (-1)^(x+y+z)
}

TEST(ResolveDims, KeepsPerRankXBlocksEven) {
  for (int ranks = 1; ranks <= 16; ++ranks) {
    const auto dims = Simulation::resolve_dims(small_options(), ranks);
    int prod = 1;
    for (int d : dims) prod *= d;
    EXPECT_EQ(prod, ranks);
    EXPECT_EQ(small_options().nx % (2 * static_cast<std::size_t>(dims[0])), 0u)
        << "ranks=" << ranks;
  }
}

TEST(ResolveDims, HonoursFixedEntries) {
  Options opt = small_options();
  opt.dims = {1, 1, 1, 0};
  const auto dims = Simulation::resolve_dims(opt, 3);
  EXPECT_EQ(dims, (std::array<int, 4>{1, 1, 1, 3}));
}

TEST(ResolveDims, RejectsOddX) {
  Options opt = small_options();
  opt.nx = 7;
  EXPECT_THROW(static_cast<void>(Simulation::resolve_dims(opt, 2)),
               std::runtime_error);
}

TEST(Simulation, NormalizeDrivesNormToOne) {
  simrt::run(2, [&](simrt::Communicator& comm) {
    Simulation sim(comm, small_options());
    sim.initialize();
    sim.run(3);
    const Diagnostics d = sim.diagnostics();
    EXPECT_NEAR(d.norm2, 1.0, 1e-12);
    EXPECT_TRUE(std::isfinite(d.link_energy));
    EXPECT_NE(d.link_energy, 0.0);
  });
}

TEST(Simulation, RunsAreDeterministic) {
  const auto a = run_psi(2, small_options(), 3);
  const auto b = run_psi(2, small_options(), 3);
  EXPECT_EQ(a, b);
}

TEST(Simulation, InitialFieldIsDecompositionIndependent) {
  const auto p1 = run_psi(1, small_options(false), 0);
  const auto p4 = run_psi(4, small_options(false), 0);
  ASSERT_EQ(p1.size(), p4.size());
  EXPECT_EQ(p1, p4);
}

// The raw (un-normalized) Dslash iteration touches ghosts only through
// bitwise copies and updates every site with the same fixed-order expression
// regardless of which rank owns it, so the gathered field must be bitwise
// identical at every concurrency. (normalize=true would break this: the
// global-norm allreduce associates per-rank partials differently per P.)
TEST(Equivalence, CrossConcurrencyBitwise) {
  const auto p1 = run_psi(1, small_options(false), 3);
  for (int ranks : {2, 3, 4, 6, 8}) {
    const auto pn = run_psi(ranks, small_options(false), 3);
    ASSERT_EQ(p1.size(), pn.size()) << "ranks=" << ranks;
    EXPECT_EQ(p1, pn) << "ranks=" << ranks;
  }
}

TEST(Equivalence, SimdMatchesScalarBitwise) {
  std::vector<double> scalar, simd_psi;
  {
    DispatchGuard g(simd::DispatchMode::ForceScalar);
    scalar = run_psi(4, small_options(), 3);
  }
  {
    DispatchGuard g(simd::DispatchMode::ForceSimd);
    simd_psi = run_psi(4, small_options(), 3);
  }
  EXPECT_EQ(scalar, simd_psi);
}

TEST(Equivalence, HybridMatchesSerialBitwise) {
  std::vector<double> serial, hybrid;
  {
    HybridGuard g(simrt::HybridMode::Off);
    serial = run_psi(2, small_options(), 3);
  }
  {
    HybridGuard g(simrt::HybridMode::On);
    hybrid = run_psi(2, small_options(), 3);
  }
  EXPECT_EQ(serial, hybrid);
}

TEST(Checkpoint, RestoreReplaysBitwise) {
  std::vector<double> straight, replayed;
  simrt::run(2, [&](simrt::Communicator& comm) {
    Simulation sim(comm, small_options());
    sim.initialize();
    sim.run(2);
    const auto ckpt = sim.save_state();
    sim.run(2);
    auto a = sim.gather_psi();
    sim.restore_state(ckpt);
    sim.run(2);
    auto b = sim.gather_psi();
    if (comm.rank() == 0) {
      straight = std::move(a);
      replayed = std::move(b);
    }
  });
  ASSERT_FALSE(straight.empty());
  EXPECT_EQ(straight, replayed);
}

TEST(Checkpoint, RestoreRejectsShapeMismatch) {
  simrt::run(1, [&](simrt::Communicator& comm) {
    Simulation sim(comm, small_options());
    sim.initialize();
    Simulation::Checkpoint bad;
    bad.even.resize(1);
    EXPECT_THROW(sim.restore_state(bad), std::runtime_error);
  });
}

TEST(Workload, SynthesizedProfileMatchesInstrumentedRun) {
  constexpr int steps = 3;
  const Options opt = small_options();
  auto result = simrt::run(4, [&](simrt::Communicator& comm) {
    Simulation sim(comm, opt);
    sim.initialize();
    sim.run(steps);
  });

  ScalingConfig cfg;
  cfg.nx = opt.nx;
  cfg.ny = opt.ny;
  cfg.nz = opt.nz;
  cfg.nt = opt.nt;
  cfg.procs = 4;
  cfg.steps = steps;
  const auto synth = make_profile(cfg);

  const auto& measured = result.per_rank[0];
  EXPECT_NEAR(synth.kernels.region_flops("dslash"),
              measured.kernels().region_flops("dslash"), 1.0);
  EXPECT_NEAR(synth.comm.bytes(perf::CommKind::PointToPoint),
              measured.comm().bytes(perf::CommKind::PointToPoint), 1.0);
  EXPECT_NEAR(synth.comm.overlap_windows(),
              measured.comm().overlap_windows(), 0.5);
  EXPECT_NEAR(synth.kernels.total_bytes(), measured.kernels().total_bytes(),
              measured.kernels().total_bytes() * 0.01);
}

TEST(Workload, BaselineCountsEverySiteTwicePerTwoSteps) {
  ScalingConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.nt = 8;
  cfg.steps = 2;
  EXPECT_DOUBLE_EQ(baseline_flops(cfg), 8.0 * 8.0 * 8.0 * 8.0 * 2.0 * 648.0);
}

TEST(Workload, HaloBytesShrinkPerRankAsConcurrencyGrows) {
  ScalingConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.nz = 32;
  cfg.nt = 32;
  cfg.procs = 1;
  const auto one = halo_bytes_per_exchange(cfg);
  cfg.procs = 16;
  const auto sixteen = halo_bytes_per_exchange(cfg);
  double t1 = 0.0, t16 = 0.0;
  for (std::size_t a = 0; a < 4; ++a) {
    t1 += one[a];
    t16 += sixteen[a];
  }
  EXPECT_LT(t16, t1);
}

}  // namespace
}  // namespace vpar::qcd
