#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <stdexcept>
#include <vector>

#include "simrt/runtime.hpp"

namespace vpar::simrt {
namespace {

// The pool must hand every run() a clean set of recorders: counts from one
// job leaking into the next would corrupt every paper table built on top.
TEST(Executor, RecordersResetBetweenRuns) {
  auto job = [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int v = 1;
      comm.send<int>(1, std::span<const int>(&v, 1), 0);
    } else {
      int v = 0;
      comm.recv<int>(0, std::span<int>(&v, 1), 0);
    }
  };
  const RunResult r1 = run(2, job);
  const RunResult r2 = run(2, job);
  EXPECT_DOUBLE_EQ(r1.merged.comm().messages(perf::CommKind::PointToPoint), 1.0);
  EXPECT_DOUBLE_EQ(r2.merged.comm().messages(perf::CommKind::PointToPoint), 1.0);
  ASSERT_EQ(r2.size(), 2);
  EXPECT_DOUBLE_EQ(
      r2.per_rank[0].comm().messages(perf::CommKind::PointToPoint) +
          r2.per_rank[1].comm().messages(perf::CommKind::PointToPoint),
      1.0);
}

TEST(Executor, WorkersGrowToLargestJobAndStay) {
  Executor ex;
  ex.run(2, [](Communicator&) {});
  EXPECT_EQ(ex.workers(), 2);
  ex.run(5, [](Communicator&) {});
  EXPECT_EQ(ex.workers(), 5);
  // Smaller jobs reuse the pool; idle ranks sleep through them.
  std::atomic<int> visits{0};
  ex.run(3, [&](Communicator&) { visits.fetch_add(1); });
  EXPECT_EQ(ex.workers(), 5);
  EXPECT_EQ(visits.load(), 3);
}

TEST(Executor, ExceptionDoesNotPoisonPool) {
  EXPECT_THROW(run(4,
                   [](Communicator& comm) {
                     if (comm.rank() == 2) throw std::runtime_error("rank failure");
                   }),
               std::runtime_error);
  // The pool survives and the next job runs with fresh state.
  const RunResult r = run(4, [](Communicator& comm) { comm.barrier(); });
  EXPECT_EQ(r.size(), 4);
  EXPECT_DOUBLE_EQ(r.merged.comm().messages(perf::CommKind::Barrier), 4.0);
}

TEST(Executor, FailedJobMessagesDoNotLeakIntoNextRun) {
  EXPECT_THROW(run(2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       const int stale = 9;
                       comm.send<int>(1, std::span<const int>(&stale, 1), 0);
                     } else {
                       throw std::runtime_error("receiver died");
                     }
                   }),
               std::runtime_error);
  // Same size, same tag: a leaked mailbox entry would be received first
  // (FIFO per source and tag) instead of the fresh value.
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int fresh = 42;
      comm.send<int>(1, std::span<const int>(&fresh, 1), 0);
    } else {
      int v = 0;
      comm.recv<int>(0, std::span<int>(&v, 1), 0);
      EXPECT_EQ(v, 42);
    }
  });
}

TEST(Executor, PayloadCountersObservable) {
  // Bidirectional rounds so the recycle assertion is independent of which
  // thread happens to free a buffer (queued delivery frees on the receiver,
  // posted-receive handoff on the sender): whoever got round k's block back
  // recycles it when sending in round k+1.
  auto job = [](Communicator& comm) {
    const int peer = 1 - comm.rank();
    std::vector<double> big(4096, 1.0 + comm.rank());
    std::vector<double> small(4, 2.0);  // 32 bytes: inline storage
    for (int round = 0; round < 3; ++round) {
      comm.send<double>(peer, big, round);
      comm.send<double>(peer, small, 100 + round);
      std::vector<double> rbig(big.size());
      comm.recv<double>(peer, std::span<double>(rbig), round);
      std::vector<double> rsmall(small.size());
      comm.recv<double>(peer, std::span<double>(rsmall), 100 + round);
      EXPECT_DOUBLE_EQ(rbig[0], 1.0 + peer);
      EXPECT_EQ(rsmall, small);
      comm.barrier();
    }
  };
  const RunResult r = run(2, job);
  EXPECT_GE(r.merged.comm().payload_inlines(), 6.0);
  EXPECT_GE(r.merged.comm().payload_allocs(), 1.0);
  EXPECT_GE(r.merged.comm().payload_recycles(), 1.0);
}

// Teams larger than the rendezvous cutoff take the dissemination path; the
// two-barrier pattern makes any missed synchronization visible as a torn
// counter read. P = 16 exercises exact power-of-two rounds, P = 12 the
// mod-P wraparound.
void barrier_phase_test(int P) {
  std::atomic<int> counter{0};
  const RunResult r = run(P, [&](Communicator& comm) {
    for (int it = 0; it < 50; ++it) {
      counter.fetch_add(1);
      comm.barrier();  // all increments for this phase are done...
      EXPECT_EQ(counter.load(), P * (it + 1));
      comm.barrier();  // ...and nobody advances until all have read
    }
  });
  EXPECT_DOUBLE_EQ(r.merged.comm().messages(perf::CommKind::Barrier),
                   static_cast<double>(100 * P));
}

TEST(Executor, DisseminationBarrierPowerOfTwoTeam) { barrier_phase_test(16); }

TEST(Executor, DisseminationBarrierNonPowerOfTwoTeam) { barrier_phase_test(12); }

TEST(Executor, NestedRunFallsBackToSpawnedThreads) {
  std::atomic<int> inner_total{0};
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      run(3, [&](Communicator& inner) { inner_total.fetch_add(inner.rank() + 1); });
    }
  });
  EXPECT_EQ(inner_total.load(), 1 + 2 + 3);
}

TEST(Executor, AlternatingSizesKeepStateConsistent) {
  for (int rep = 0; rep < 3; ++rep) {
    for (int P : {4, 2, 6}) {
      std::atomic<int> sum{0};
      run(P, [&](Communicator& comm) {
        sum.fetch_add(comm.rank());
        comm.barrier();
      });
      EXPECT_EQ(sum.load(), P * (P - 1) / 2);
    }
  }
}

}  // namespace
}  // namespace vpar::simrt
