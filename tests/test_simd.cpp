#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstring>
#include <random>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/simd.hpp"

namespace vpar::simd {
namespace {

// Every width is exercised regardless of what the CPU executes: code compiled
// at the baseline ISA still evaluates wide vector-extension types (GCC
// emulates them with narrower registers), so these property checks need no
// cpuid guards — only the build-level VPAR_SIMD_HAVE_VEC gate.

template <std::size_t W>
std::vector<double> lanes_of(vec<W> v) {
  std::vector<double> out(W);
  store<W>(out.data(), v);
  return out;
}

template <std::size_t W>
void CheckLoadStoreRoundTrip() {
  // Unaligned offsets 0..W against a guarded buffer: the load must read
  // exactly W doubles and the store must write exactly W (guards intact).
  for (std::size_t off = 0; off <= W; ++off) {
    std::vector<double> src(off + W + 2, -99.0);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = 0.25 + 0.5 * static_cast<double>(i);
    }
    const vec<W> v = load<W>(src.data() + off);
    std::vector<double> dst(off + W + 2, 7.5);
    store<W>(dst.data() + off, v);
    for (std::size_t l = 0; l < W; ++l) {
      EXPECT_EQ(dst[off + l], src[off + l]) << "off=" << off << " lane=" << l;
    }
    for (std::size_t i = 0; i < dst.size(); ++i) {
      if (i < off || i >= off + W) {
        EXPECT_EQ(dst[i], 7.5) << "guard clobbered at " << i;
      }
    }
  }
}

template <std::size_t W>
void CheckSplat() {
  for (double x : {3.5, -0.0, 1e-308}) {
    const auto lanes = lanes_of<W>(splat<W>(x));
    for (std::size_t l = 0; l < W; ++l) {
      EXPECT_EQ(lanes[l], x);
      EXPECT_EQ(std::signbit(lanes[l]), std::signbit(x)) << "lane " << l;
    }
  }
}

template <std::size_t W>
void CheckMulAdd() {
  double a[W], b[W], c[W];
  std::mt19937_64 rng(11 + W);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (std::size_t l = 0; l < W; ++l) {
    a[l] = dist(rng);
    b[l] = dist(rng);
    c[l] = dist(rng);
  }
  const auto lanes =
      lanes_of<W>(mul_add<W>(load<W>(a), load<W>(b), load<W>(c)));
  for (std::size_t l = 0; l < W; ++l) {
    // The SIMD TUs disable FMA contraction, so each lane is the two-rounding
    // a*b + c — which is also what this (default-flags) TU computes on the
    // baseline ISA.
    EXPECT_EQ(lanes[l], a[l] * b[l] + c[l]);
  }
}

template <std::size_t W>
void CheckReduceAdd() {
  double a[W];
  std::mt19937_64 rng(23 + W);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t l = 0; l < W; ++l) a[l] = dist(rng);
  double expect = a[0];
  for (std::size_t l = 1; l < W; ++l) expect += a[l];
  EXPECT_EQ(reduce_add<W>(load<W>(a)), expect);
}

template <std::size_t W>
void CheckGather() {
  std::vector<double> base(40);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<double>(i) * 1.5;
  }
  std::size_t idx[W];
  for (std::size_t l = 0; l < W; ++l) idx[l] = (l * 7 + 3) % base.size();
  const auto lanes = lanes_of<W>(gather<W>(base.data(), idx));
  for (std::size_t l = 0; l < W; ++l) EXPECT_EQ(lanes[l], base[idx[l]]);
}

/// Strip-mined y[i] += alpha * x[i]: full-width strips plus the W=1 tail of
/// the same template must match the scalar loop bitwise for every length —
/// below-width, exact-width, width*k+1 and prime lengths.
template <std::size_t W>
void CheckStripMinedTail() {
  const double alpha = 1.37;
  for (std::size_t n : {std::size_t{0}, W - 1, W, W + 1, 2 * W + 1,
                        std::size_t{13}, std::size_t{97}}) {
    std::mt19937_64 rng(100 + n);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> x(n), y_ref(n), y_simd(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = dist(rng);
      y_ref[i] = y_simd[i] = dist(rng);
    }
    for (std::size_t i = 0; i < n; ++i) y_ref[i] += alpha * x[i];
    const std::size_t nv = n / W * W;
    const vec<W> va = splat<W>(alpha);
    for (std::size_t i = 0; i < nv; i += W) {
      store<W>(y_simd.data() + i,
               load<W>(y_simd.data() + i) + va * load<W>(x.data() + i));
    }
    for (std::size_t i = nv; i < n; ++i) {
      y_simd[i] = y_simd[i] + alpha * x[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y_simd[i], y_ref[i]) << "n=" << n << " i=" << i;
    }
  }
}

template <std::size_t W>
void CheckPairShuffles() {
  static_assert(W >= 2);
  double a[W];
  for (std::size_t l = 0; l < W; ++l) a[l] = static_cast<double>(l) + 0.5;
  const vec<W> v = load<W>(a);
  const auto sw = lanes_of<W>(swap_pairs<W>(v));
  const auto de = lanes_of<W>(dup_even<W>(v));
  const auto dod = lanes_of<W>(dup_odd<W>(v));
  for (std::size_t p = 0; p < W / 2; ++p) {
    EXPECT_EQ(sw[2 * p], a[2 * p + 1]);
    EXPECT_EQ(sw[2 * p + 1], a[2 * p]);
    EXPECT_EQ(de[2 * p], a[2 * p]);
    EXPECT_EQ(de[2 * p + 1], a[2 * p]);
    EXPECT_EQ(dod[2 * p], a[2 * p + 1]);
    EXPECT_EQ(dod[2 * p + 1], a[2 * p + 1]);
  }
  const auto alt = lanes_of<W>(alt_sign<W>());
  const auto cm = lanes_of<W>(conj_mask<W>());
  const auto sp = lanes_of<W>(splat_pair<W>(2.25, -3.5));
  for (std::size_t p = 0; p < W / 2; ++p) {
    EXPECT_EQ(alt[2 * p], -1.0);
    EXPECT_EQ(alt[2 * p + 1], 1.0);
    EXPECT_EQ(cm[2 * p], 1.0);
    EXPECT_EQ(cm[2 * p + 1], -1.0);
    EXPECT_EQ(sp[2 * p], 2.25);
    EXPECT_EQ(sp[2 * p + 1], -3.5);
  }
}

template <std::size_t W>
void CheckComplexMul() {
  static_assert(W >= 2);
  double a[W], b[W];
  std::mt19937_64 rng(31 + W);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (std::size_t l = 0; l < W; ++l) {
    a[l] = dist(rng);
    b[l] = dist(rng);
  }
  const auto r = lanes_of<W>(complex_mul<W>(load<W>(a), load<W>(b)));
  for (std::size_t p = 0; p < W / 2; ++p) {
    const double ar = a[2 * p], ai = a[2 * p + 1];
    const double br = b[2 * p], bi = b[2 * p + 1];
    // The documented rounding order: products first, x + (-1)*y == x - y.
    EXPECT_EQ(r[2 * p], br * ar - bi * ai) << "pair " << p;
    EXPECT_EQ(r[2 * p + 1], br * ai + bi * ar) << "pair " << p;
    // ... which is bitwise the naive std::complex product (finite values).
    const std::complex<double> expect =
        std::complex<double>(ar, ai) * std::complex<double>(br, bi);
    EXPECT_EQ(r[2 * p], expect.real());
    EXPECT_EQ(r[2 * p + 1], expect.imag());
  }
}

template <std::size_t W>
void RunPrimitiveChecks() {
  CheckLoadStoreRoundTrip<W>();
  CheckSplat<W>();
  CheckMulAdd<W>();
  CheckReduceAdd<W>();
  CheckGather<W>();
  CheckStripMinedTail<W>();
  if constexpr (W >= 2) {
    CheckPairShuffles<W>();
    CheckComplexMul<W>();
  }
}

TEST(SimdPrimitives, Width1ScalarFallback) { RunPrimitiveChecks<1>(); }

#if VPAR_SIMD_HAVE_VEC
TEST(SimdPrimitives, Width2) { RunPrimitiveChecks<2>(); }
TEST(SimdPrimitives, Width4) { RunPrimitiveChecks<4>(); }
TEST(SimdPrimitives, Width8) { RunPrimitiveChecks<8>(); }
#endif

TEST(SimdDispatch, WidthCapMatchesBuild) {
  EXPECT_EQ(compiled_width_cap(), std::size_t{VPAR_SIMD_WIDTH_MAX});
  EXPECT_GE(preferred_width(), std::size_t{1});
  EXPECT_LE(preferred_width(), compiled_width_cap());
}

TEST(SimdDispatch, ForceModesOverrideWidth) {
  const DispatchMode prev = dispatch_mode();
  set_dispatch_mode(DispatchMode::ForceScalar);
  EXPECT_EQ(active_width(), std::size_t{1});
  EXPECT_FALSE(use_simd());
  set_dispatch_mode(DispatchMode::ForceSimd);
  EXPECT_EQ(active_width(), preferred_width());
  set_dispatch_mode(DispatchMode::Auto);
  EXPECT_EQ(active_width(), preferred_width());
  set_dispatch_mode(prev);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(width_isa_name(1), "scalar");
  EXPECT_STREQ(width_isa_name(8), "avx512f");
  EXPECT_STREQ(width_isa_name(4), "avx");
}

}  // namespace
}  // namespace vpar::simd
