#include <gtest/gtest.h>

#include "arch/cpu_model.hpp"
#include "arch/machine_model.hpp"
#include "arch/network_model.hpp"
#include "arch/platform.hpp"

namespace vpar::arch {
namespace {

perf::LoopRecord vec_loop(double instances, double trips, double flops,
                          double bytes,
                          perf::AccessPattern acc = perf::AccessPattern::Stream) {
  perf::LoopRecord r;
  r.vectorizable = true;
  r.instances = instances;
  r.trips = trips;
  r.flops_per_trip = flops;
  r.bytes_per_trip = bytes;
  r.access = acc;
  return r;
}

perf::LoopRecord scalar_loop(double instances, double trips, double flops) {
  auto r = vec_loop(instances, trips, flops, 8.0);
  r.vectorizable = false;
  return r;
}

TEST(Platform, TableOneValues) {
  EXPECT_EQ(all_platforms().size(), 5u);
  EXPECT_DOUBLE_EQ(earth_simulator().peak_gflops, 8.0);
  EXPECT_DOUBLE_EQ(earth_simulator().mem_bw_gbs, 32.0);
  EXPECT_EQ(earth_simulator().vector_length, 256u);
  EXPECT_DOUBLE_EQ(x1().peak_gflops, 12.8);
  EXPECT_EQ(x1().vector_length, 64u);
  EXPECT_DOUBLE_EQ(power3().peak_gflops, 1.5);
  EXPECT_DOUBLE_EQ(power4().peak_gflops, 5.2);
  EXPECT_DOUBLE_EQ(altix().peak_gflops, 6.0);
  EXPECT_EQ(platform_by_name("ES").name, "ES");
  EXPECT_THROW(platform_by_name("Cray-2"), std::runtime_error);
}

TEST(Platform, Host2026IsCalibratedButOffTable) {
  // The calibrated host platform must stay out of the Table 1 set (the
  // paper-table benches iterate exactly five systems) yet resolve by name.
  EXPECT_EQ(all_platforms().size(), 5u);
  const auto& h = platform_by_name("Host2026");
  EXPECT_TRUE(h.is_vector);
  EXPECT_EQ(h.vector_length, 8u);  // AVX-512 doubles vs 256 (ES) / 64 (X1)
  EXPECT_DOUBLE_EQ(h.peak_gflops, 33.6);
  EXPECT_GT(h.scalar_gflops, 0.0);
  // Short pipelines: half performance within a couple of hardware vectors,
  // far below the deep-pipe ES/X1 n_1/2 values.
  EXPECT_LT(h.vector_n_half, earth_simulator().vector_n_half);
  EXPECT_GT(h.vector_compute_eff, 0.0);
  EXPECT_LE(h.vector_compute_eff, 1.0);
}

TEST(Platform, VectorScalarRatios) {
  // Both machines have an 8:1 vector:scalar ratio; the X1's serialized rate
  // is 1/32 of MSP peak (one SSP scalar unit of four).
  EXPECT_DOUBLE_EQ(earth_simulator().peak_gflops / earth_simulator().scalar_gflops, 8.0);
  EXPECT_DOUBLE_EQ(x1().peak_gflops / x1().serialized_gflops, 32.0);
}

TEST(CpuModel, LongVectorsBeatShortVectors) {
  const CpuModel es(earth_simulator());
  // Same work, different trip structure.
  const auto long_loops = vec_loop(1, 65536, 10, 8);
  const auto short_loops = vec_loop(1024, 64, 10, 8);
  EXPECT_LT(es.loop_seconds(long_loops), es.loop_seconds(short_loops));
}

TEST(CpuModel, UnvectorizedPenaltyWorseOnX1) {
  const CpuModel es(earth_simulator());
  const CpuModel cray(x1());
  const auto serial = scalar_loop(1, 1000, 100);
  // Relative to peak, a serialized loop costs the X1 4x more than the ES:
  // seconds * peak is 32 vs 8 in units of "peak-flop-times".
  const double es_cost = es.loop_seconds(serial) * es.spec().peak_gflops;
  const double x1_cost = cray.loop_seconds(serial) * cray.spec().peak_gflops;
  EXPECT_NEAR(x1_cost / es_cost, 4.0, 1e-9);
}

TEST(CpuModel, MemoryBoundLoopLimitedByBandwidth) {
  const CpuModel es(earth_simulator());
  // 1 flop per 64 bytes: hopelessly memory bound.
  const auto loop = vec_loop(1, 1 << 20, 1, 64);
  const double t = es.loop_seconds(loop);
  const double bw_floor = loop.total_bytes() /
                          (earth_simulator().mem_bw_gbs * 1e9);
  EXPECT_GE(t, bw_floor * 0.99);
}

TEST(CpuModel, GatherSlowerThanStream) {
  for (const auto& p : all_platforms()) {
    const CpuModel m(p);
    const auto stream = vec_loop(1, 1 << 16, 2, 16, perf::AccessPattern::Stream);
    const auto gather = vec_loop(1, 1 << 16, 2, 16, perf::AccessPattern::Gather);
    EXPECT_LE(m.loop_seconds(stream), m.loop_seconds(gather)) << p.name;
  }
}

TEST(CpuModel, CacheResidentLoopBeatsStreaming) {
  const CpuModel p3(power3());
  auto streaming = vec_loop(1024, 4096, 2, 32);
  auto cached = streaming;
  cached.working_set_bytes = 1 << 20;  // 1 MB fits the 8 MB L2
  EXPECT_LT(p3.loop_seconds(cached), p3.loop_seconds(streaming));
}

TEST(CpuModel, RegionBreakdownSumsToTotal) {
  const CpuModel es(earth_simulator());
  perf::KernelProfile prof;
  prof.record("a", vec_loop(10, 1000, 5, 8));
  prof.record("b", scalar_loop(10, 10, 3));
  const auto regions = es.region_seconds(prof);
  double sum = 0.0;
  for (const auto& [name, t] : regions) sum += t;
  EXPECT_NEAR(sum, es.profile_seconds(prof), 1e-15);
  EXPECT_EQ(regions.size(), 2u);
}

TEST(NetworkModel, CrossbarBisectionScalesLinearly) {
  const NetworkModel es(earth_simulator());
  EXPECT_NEAR(es.bisection_gbs_total(128) / es.bisection_gbs_total(64), 2.0, 1e-12);
}

TEST(NetworkModel, TorusBisectionScalesAsSqrt) {
  // Per-flop torus bisection shrinks as 1/sqrt(P) (total grows as sqrt(P)
  // times the linear term), but small sub-mesh jobs cannot exceed twice the
  // quoted per-flop ratio.
  const NetworkModel cray(x1());
  EXPECT_NEAR(cray.bisection_gbs_total(2048) / cray.bisection_gbs_total(512), 2.0,
              1e-9);
  const double ratio64 = cray.bisection_gbs_total(64) / (64.0 * x1().peak_gflops);
  EXPECT_NEAR(ratio64, 2.0 * x1().bisection_bytes_per_flop, 1e-12);
}

TEST(NetworkModel, AllToAllHurtsTorusMoreAtScale) {
  const NetworkModel es(earth_simulator());
  const NetworkModel cray(x1());
  perf::CommProfile prof;
  prof.record(perf::CommKind::AllToAll, 255, 64.0 * (1 << 20));

  const double es_ratio = es.seconds(prof, 1024) / es.seconds(prof, 64);
  const double x1_ratio = cray.seconds(prof, 1024) / cray.seconds(prof, 64);
  EXPECT_GT(x1_ratio, es_ratio);
}

TEST(NetworkModel, LatencyDominatesSmallMessages) {
  const NetworkModel p3(power3());
  perf::CommProfile many_small, one_big;
  many_small.record(perf::CommKind::PointToPoint, 1000, 8000);
  one_big.record(perf::CommKind::PointToPoint, 1, 8000);
  EXPECT_GT(p3.seconds(many_small, 16), 100.0 * p3.seconds(one_big, 16));
}

TEST(NetworkModel, CafLatencyCheaperOnX1) {
  const NetworkModel cray(x1());
  perf::CommProfile mpi_prof, caf_prof;
  mpi_prof.record(perf::CommKind::PointToPoint, 100, 0);
  caf_prof.record(perf::CommKind::OneSided, 100, 0);
  EXPECT_LT(cray.seconds(caf_prof, 16), cray.seconds(mpi_prof, 16));
}

TEST(MachineModel, PredictionBasics) {
  const MachineModel es(earth_simulator());
  AppProfile app;
  app.procs = 16;
  app.kernels.record("k", vec_loop(1000, 4096, 100, 50));
  app.comm.record(perf::CommKind::PointToPoint, 100, 1e6);
  app.baseline_flops = app.kernels.total_flops() * 16;

  const auto pred = es.predict(app);
  EXPECT_GT(pred.seconds, 0.0);
  EXPECT_NEAR(pred.seconds, pred.compute_seconds + pred.comm_seconds, 1e-12);
  EXPECT_GT(pred.gflops_per_proc, 0.0);
  EXPECT_LE(pred.pct_peak, 1.0);
  EXPECT_GT(pred.vor, 0.99);
  EXPECT_GT(pred.avl, 200.0);
  EXPECT_EQ(pred.region_seconds.size(), 1u);
}

TEST(MachineModel, MoreBandwidthNeverSlower) {
  // Monotonicity: scaling memory bandwidth up cannot increase predicted time.
  PlatformSpec fast = earth_simulator();
  fast.mem_bw_gbs *= 2.0;
  AppProfile app;
  app.procs = 4;
  app.kernels.record("k", vec_loop(100, 1 << 16, 1, 64));
  app.baseline_flops = app.kernels.total_flops() * 4;
  const auto base = MachineModel(earth_simulator()).predict(app);
  const auto boosted = MachineModel(fast).predict(app);
  EXPECT_LE(boosted.seconds, base.seconds);
}

TEST(MachineModel, SuperscalarReportsNoVectorStats) {
  const MachineModel p3(power3());
  AppProfile app;
  app.procs = 1;
  app.kernels.record("k", vec_loop(10, 100, 10, 8));
  app.baseline_flops = app.kernels.total_flops();
  const auto pred = p3.predict(app);
  EXPECT_DOUBLE_EQ(pred.vor, 0.0);
  EXPECT_DOUBLE_EQ(pred.avl, 0.0);
}

TEST(MachineModel, AmdahlScalarFractionDominates) {
  // 10% scalar work at 1/32 of peak should destroy X1 efficiency far more
  // than ES efficiency — the paper's central balance observation.
  AppProfile app;
  app.procs = 1;
  app.kernels.record("vec", vec_loop(1000, 4096, 90, 8));
  app.kernels.record("ser", scalar_loop(1000, 4096, 10));
  app.baseline_flops = app.kernels.total_flops();

  const auto es = MachineModel(earth_simulator()).predict(app);
  const auto cray = MachineModel(x1()).predict(app);
  EXPECT_GT(es.pct_peak, cray.pct_peak * 1.5);
}

TEST(NetworkModel, OverlappedBytesSplitOutButTotalPreserved) {
  const NetworkModel es(earth_simulator());
  perf::CommProfile serialized, half_overlapped;
  serialized.record(perf::CommKind::PointToPoint, 10, 2e6);
  half_overlapped.record(perf::CommKind::PointToPoint, 10, 1e6);
  half_overlapped.record_overlapped(perf::CommKind::PointToPoint, 0, 1e6);

  // Total charged time is identical; overlap only reclassifies transfer time
  // as hideable.
  EXPECT_NEAR(es.seconds(serialized, 16), es.seconds(half_overlapped, 16), 1e-15);
  const CommTime t = es.time(half_overlapped, 16);
  EXPECT_GT(t.overlapped, 0.0);
  EXPECT_NEAR(t.overlapped, 1e6 / (earth_simulator().net_bw_gbs * 1e9), 1e-15);
  // Latency is never hideable.
  EXPECT_GT(t.serialized, 10 * earth_simulator().mpi_latency_us * 1e-6 * 0.99);
}

TEST(NetworkModel, GatherCostedAsLogDepthCollective) {
  const NetworkModel p3(power3());
  perf::CommProfile prof;
  // The communicator records log2ceil(P) in messages and bytes*log2ceil(P).
  prof.record(perf::CommKind::Gather, 4.0, 4.0 * 8192.0);
  const double t = p3.seconds(prof, 16);
  const double expect = 4.0 * power3().mpi_latency_us * 1e-6 +
                        4.0 * 8192.0 / (power3().net_bw_gbs * 1e9);
  EXPECT_NEAR(t, expect, 1e-15);
  // Synchronizing collective: none of it is hideable.
  EXPECT_DOUBLE_EQ(p3.time(prof, 16).overlapped, 0.0);
}

TEST(MachineModel, OverlapCreditHidesCommBehindCompute) {
  AppProfile app;
  app.procs = 16;
  app.kernels.record("k", vec_loop(1000, 4096, 100, 50));
  app.comm.record_overlapped(perf::CommKind::PointToPoint, 100, 1e8);
  app.comm.record_overlap_window(1.0);
  app.baseline_flops = app.kernels.total_flops() * 16;

  PlatformSpec no_overlap = earth_simulator();
  no_overlap.overlap_eff = 0.0;
  const auto blocking = MachineModel(no_overlap).predict(app);
  const auto overlapping = MachineModel(earth_simulator()).predict(app);

  // Same traffic, same compute: the overlap-capable platform is faster.
  EXPECT_LT(overlapping.seconds, blocking.seconds);
  EXPECT_GT(overlapping.comm_hidden_seconds, 0.0);
  EXPECT_NEAR(overlapping.comm_hidden_seconds,
              overlapping.comm_overlapped_seconds * earth_simulator().overlap_eff,
              1e-12);
  EXPECT_NEAR(overlapping.seconds,
              overlapping.compute_seconds + overlapping.comm_seconds, 1e-15);
  EXPECT_NEAR(blocking.seconds - overlapping.seconds,
              overlapping.comm_hidden_seconds, 1e-12);
}

TEST(MachineModel, HiddenTimeNeverExceedsCompute) {
  // A communication-dominated profile: the credit is capped by the compute
  // time available to hide behind.
  AppProfile app;
  app.procs = 4;
  app.kernels.record("k", vec_loop(1, 256, 1, 1));  // almost no compute
  app.comm.record_overlapped(perf::CommKind::PointToPoint, 10, 1e9);
  app.baseline_flops = app.kernels.total_flops() * 4;

  const auto pred = MachineModel(earth_simulator()).predict(app);
  EXPECT_LE(pred.comm_hidden_seconds, pred.compute_seconds + 1e-18);
  EXPECT_GE(pred.comm_seconds, pred.comm_serialized_seconds);
}

}  // namespace
}  // namespace vpar::arch
