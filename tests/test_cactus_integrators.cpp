#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "cactus/evolve.hpp"
#include "simrt/runtime.hpp"

namespace vpar::cactus {
namespace {

double plane_wave_error(Integrator integrator, std::size_t nz, double cfl,
                        int crossings = 1, int procs = 1) {
  double err = 0.0;
  simrt::run(procs, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = 8;
    opt.nz = nz;
    opt.pz = procs;
    opt.h = 32.0 / static_cast<double>(nz);
    opt.cfl = cfl;
    opt.integrator = integrator;
    Evolution evo(comm, opt);
    const double k = 2.0 * std::numbers::pi / 32.0;
    evo.initialize(plane_wave_id(1.0e-3, k));
    const int steps = static_cast<int>(
        std::lround(32.0 * crossings / (opt.cfl * opt.h)));
    evo.run(steps);
    err = evo.error_l2(HXX, plane_wave_exact_hxx(1.0e-3, k));
  });
  return err;
}

class Integrators : public ::testing::TestWithParam<Integrator> {};

TEST_P(Integrators, PropagatesPlaneWaveAccurately) {
  const double err = plane_wave_error(GetParam(), 32, 0.25);
  EXPECT_LT(err, 0.05 * 1.0e-3) << "relative error above 5%";
}

TEST_P(Integrators, ConvergesUnderRefinement) {
  // All three integrators are (at least) 2nd order in dt with 4th-order
  // stencils; with dt tied to h through the CFL number the observed rate is
  // ~2.5-4x per refinement depending on phase-error cancellation at the
  // coarse resolution — require a conservative 2.5x.
  const double coarse = plane_wave_error(GetParam(), 16, 0.125);
  const double fine = plane_wave_error(GetParam(), 32, 0.125);
  EXPECT_LT(fine, coarse / 2.5);
}

TEST_P(Integrators, FlatSpaceStaysFlat) {
  simrt::run(1, [&](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = opt.nz = 12;
    opt.integrator = GetParam();
    Evolution evo(comm, opt);
    evo.initialize([](double, double, double) {
      return std::array<double, kNumFields>{};
    });
    evo.run(8);
    EXPECT_DOUBLE_EQ(evo.field_l2(HXX), 0.0);
    EXPECT_DOUBLE_EQ(evo.field_l2(KZZ), 0.0);
  });
}

TEST_P(Integrators, ParallelMatchesSerial) {
  auto gathered = [&](int procs) {
    std::vector<double> out;
    simrt::run(procs, [&](simrt::Communicator& comm) {
      Options opt;
      opt.nx = opt.ny = 8;
      opt.nz = 16;
      opt.pz = procs;
      opt.integrator = GetParam();
      Evolution evo(comm, opt);
      evo.initialize(gaussian_pulse_id(0.01, 2.0));
      evo.run(6);
      auto g = evo.gather(KXX);
      if (comm.rank() == 0) out = std::move(g);
    });
    return out;
  };
  const auto serial = gathered(1);
  const auto par = gathered(4);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(par[i], serial[i], 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIntegrators, Integrators,
                         ::testing::Values(Integrator::IterativeCN,
                                           Integrator::Rk2,
                                           Integrator::StaggeredLeapfrog));

TEST(Integrators, LeapfrogMatchesRk2OnFirstStepOnly) {
  // The leapfrog bootstrap IS an RK2 step; afterwards they diverge (they are
  // different discretizations).
  auto one = [](Integrator integ, int steps) {
    double val = 0.0;
    simrt::run(1, [&](simrt::Communicator& comm) {
      Options opt;
      opt.nx = opt.ny = 8;
      opt.nz = 16;
      opt.integrator = integ;
      Evolution evo(comm, opt);
      const double k = 2.0 * std::numbers::pi / 16.0;
      evo.initialize(plane_wave_id(1e-3, k));
      evo.run(steps);
      val = evo.field_l2(HXX);
    });
    return val;
  };
  EXPECT_DOUBLE_EQ(one(Integrator::StaggeredLeapfrog, 1), one(Integrator::Rk2, 1));
  EXPECT_NE(one(Integrator::StaggeredLeapfrog, 5), one(Integrator::Rk2, 5));
}

TEST(Integrators, InitializeResetsLeapfrogHistory) {
  simrt::run(1, [](simrt::Communicator& comm) {
    Options opt;
    opt.nx = opt.ny = 8;
    opt.nz = 16;
    opt.integrator = Integrator::StaggeredLeapfrog;
    Evolution evo(comm, opt);
    const double k = 2.0 * std::numbers::pi / 16.0;
    evo.initialize(plane_wave_id(1e-3, k));
    evo.run(3);
    const double after_first = evo.field_l2(HXX);
    // Re-initialize: the same trajectory must repeat exactly.
    evo.initialize(plane_wave_id(1e-3, k));
    evo.run(3);
    EXPECT_DOUBLE_EQ(evo.field_l2(HXX), after_first);
    EXPECT_DOUBLE_EQ(evo.time(), 3.0 * evo.dt());
  });
}

}  // namespace
}  // namespace vpar::cactus
