// Tests of the self-consistent-field layer: density construction, the
// distributed Hartree solver, LDA exchange, and SCF convergence.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "paratec/scf.hpp"
#include "simrt/runtime.hpp"

namespace vpar::paratec {
namespace {

TEST(Density, IntegratesToElectronCount) {
  for (int procs : {1, 2}) {
    simrt::run(procs, [](simrt::Communicator& comm) {
      const Basis basis(4.0);
      const Layout layout(basis, comm.size());
      Hamiltonian h(comm, basis, layout, silicon_supercell(1), 0.5, 0.2);
      Solver solver(h, 3, 7);
      solver.init_random();
      solver.iterate();  // orthonormal bands

      const std::vector<double> occ = {2.0, 2.0, 1.0};
      const auto density = compute_density(solver, occ);
      double local = 0.0;
      for (double v : density) local += v;
      const double n3 = std::pow(static_cast<double>(basis.grid_n()), 3.0);
      const double total = comm.allreduce(local, simrt::ReduceOp::Sum) / n3;
      EXPECT_NEAR(total, 5.0, 1e-9);
      for (double v : density) EXPECT_GE(v, 0.0);
    });
  }
}

TEST(Density, ParallelMatchesSerial) {
  auto density_with = [](int procs) {
    std::vector<double> full;
    simrt::run(procs, [&](simrt::Communicator& comm) {
      const Basis basis(4.0);
      const Layout layout(basis, comm.size());
      Hamiltonian h(comm, basis, layout, silicon_supercell(1), 0.5, 0.2);
      Solver solver(h, 2, 3);
      solver.init_random();
      const auto density =
          compute_density(solver, std::vector<double>{2.0, 2.0});
      const std::size_t n = basis.grid_n();
      std::vector<double> all(comm.rank() == 0 ? n * n * n : 0);
      comm.gather<double>(density, all, 0);
      if (comm.rank() == 0) full = std::move(all);
    });
    return full;
  };
  const auto serial = density_with(1);
  const auto par = density_with(2);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(par[i], serial[i], 1e-10);
  }
}

TEST(Hartree, RecoversAnalyticEigenmode) {
  // n(r) = cos(2 pi m x / N): V_H = 4 pi n / k^2 with k = 2 pi m / N... in
  // the code's units k = 2 pi m (unit cell length 1, N grid cells).
  for (int procs : {1, 2, 4}) {
    simrt::run(procs, [procs](simrt::Communicator& comm) {
      constexpr std::size_t n = 16;
      const std::size_t zl = n / static_cast<std::size_t>(comm.size());
      const std::size_t z0 = zl * static_cast<std::size_t>(comm.rank());
      std::vector<double> density(zl * n * n);
      constexpr int m = 3;
      const double k = 2.0 * std::numbers::pi * m;
      for (std::size_t z = 0; z < zl; ++z) {
        for (std::size_t y = 0; y < n; ++y) {
          for (std::size_t x = 0; x < n; ++x) {
            const double fx = static_cast<double>(x) / n;
            density[(z * n + y) * n + x] = std::cos(2.0 * std::numbers::pi * m * fx);
          }
        }
      }
      (void)z0;
      const auto vh = solve_hartree(comm, density, n);
      const double expect_amp = 4.0 * std::numbers::pi / (k * k);
      for (std::size_t i = 0; i < vh.size(); ++i) {
        const std::size_t x = i % n;
        const double fx = static_cast<double>(x) / n;
        EXPECT_NEAR(vh[i],
                    expect_amp * std::cos(2.0 * std::numbers::pi * m * fx), 1e-10)
            << "procs=" << procs;
      }
    });
  }
}

TEST(Hartree, UniformDensityGivesZeroPotential) {
  simrt::run(2, [](simrt::Communicator& comm) {
    constexpr std::size_t n = 8;
    std::vector<double> density(n / 2 * n * n, 3.7);
    const auto vh = solve_hartree(comm, density, n);
    for (double v : vh) EXPECT_NEAR(v, 0.0, 1e-12);
  });
}

TEST(Lda, ExchangeIsNegativeAndMonotonic) {
  const auto vx = lda_exchange_potential({0.0, 0.5, 1.0, 2.0, -0.3});
  EXPECT_DOUBLE_EQ(vx[0], 0.0);
  EXPECT_LT(vx[1], 0.0);
  EXPECT_LT(vx[2], vx[1]);  // denser = more negative
  EXPECT_LT(vx[3], vx[2]);
  EXPECT_DOUBLE_EQ(vx[4], 0.0);  // clamped
  EXPECT_NEAR(vx[2], -std::cbrt(3.0 / std::numbers::pi), 1e-12);
}

TEST(Scf, ResidualDecreasesAndElectronsConserved) {
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 1.0, 0.22);
    Scf::Options opt;
    opt.nbands = 4;
    opt.occupation = 2.0;
    opt.mixing = 0.1;
    opt.cg_sweeps_per_scf = 3;
    Scf scf(h, opt);

    scf.iterate();  // seeds the density
    EXPECT_NEAR(scf.electron_count(), 8.0, 1e-9);
    const double first = scf.iterate();
    double last = first;
    for (int cycle = 0; cycle < 30; ++cycle) last = scf.iterate();
    // Linear mixing converges steadily at this size: an order of magnitude
    // in 30 cycles (density max-norm is O(40), so this is ~1% relative).
    EXPECT_LT(last, 0.1 * first);
    EXPECT_NEAR(scf.electron_count(), 8.0, 1e-9);
  });
}

TEST(Scf, SelfConsistentEigenvaluesAreStable) {
  simrt::run(1, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 1.0, 0.22);
    Scf::Options opt;
    opt.nbands = 3;
    opt.mixing = 0.1;
    opt.cg_sweeps_per_scf = 3;
    Scf scf(h, opt);
    for (int cycle = 0; cycle < 20; ++cycle) scf.iterate();
    const auto e1 = scf.eigenvalues();
    scf.iterate();
    const auto e2 = scf.eigenvalues();
    for (std::size_t b = 0; b < e1.size(); ++b) {
      EXPECT_NEAR(e2[b], e1[b], 5e-3) << "band " << b;
    }
  });
}

TEST(Scf, HartreeRepulsionRaisesLevelsAboveBareIonic) {
  // With exchange disabled, adding pure electron-electron repulsion must
  // push the occupied levels up relative to the bare-ion problem. (Exchange
  // contributes a near-uniform negative shift at these toy densities, so it
  // is turned off for a clean sign test.)
  simrt::run(1, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());

    Hamiltonian bare(comm, basis, layout, silicon_supercell(1), 1.2, 0.22);
    Solver bare_solver(bare, 2, 5);
    bare_solver.init_random();
    for (int i = 0; i < 10; ++i) bare_solver.iterate();

    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 1.2, 0.22);
    Scf::Options opt;
    opt.nbands = 2;
    opt.seed = 5;
    opt.mixing = 0.1;
    opt.exchange_scale = 0.0;
    opt.cg_sweeps_per_scf = 2;
    Scf scf(h, opt);
    for (int cycle = 0; cycle < 20; ++cycle) scf.iterate();

    EXPECT_GT(scf.eigenvalues()[0], bare_solver.eigenvalues()[0]);
  });
}

}  // namespace
}  // namespace vpar::paratec
