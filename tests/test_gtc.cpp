#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "gtc/deposition.hpp"
#include "gtc/poisson.hpp"
#include "gtc/push.hpp"
#include "gtc/shift.hpp"
#include "gtc/simulation.hpp"
#include "gtc/workload.hpp"
#include "simrt/runtime.hpp"

namespace vpar::gtc {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(Stencil, WeightsSumToOne) {
  simrt::run(1, [](simrt::Communicator& comm) {
    TorusGrid grid(16, 16, 4, comm.size(), comm.rank());
    DepositStencil st;
    for (double rho : {0.0, 0.7, 2.3}) {
      compute_stencil(grid, 3.4, 7.9, 1.1, rho, st);
      double wsum = 0.0;
      for (double w : st.wcell) wsum += w;
      EXPECT_NEAR(wsum, 1.0, 1e-14) << "rho=" << rho;
      EXPECT_NEAR(st.wplane[0] + st.wplane[1], 1.0, 1e-14);
    }
  });
}

TEST(Stencil, ZeroGyroradiusIsClassicPic) {
  // With rho = 0 all four ring points coincide: the stencil reduces to the
  // classic 4-point bilinear deposition (Figure 8a vs 8b).
  simrt::run(1, [](simrt::Communicator& comm) {
    TorusGrid grid(16, 16, 4, comm.size(), comm.rank());
    DepositStencil st;
    compute_stencil(grid, 5.25, 8.5, 0.3, 0.0, st);
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(st.cell[4 * r + c], st.cell[c]);
        EXPECT_DOUBLE_EQ(st.wcell[4 * r + c], st.wcell[c]);
      }
    }
  });
}

ParticleSet random_particles(const TorusGrid& grid, std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(0.0, static_cast<double>(grid.ngx()));
  std::uniform_real_distribution<double> uy(0.0, static_cast<double>(grid.ngy()));
  std::uniform_real_distribution<double> uz(grid.zeta_min(), grid.zeta_max());
  std::uniform_real_distribution<double> uq(-1.0, 1.0);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(ux(rng), uy(rng), uz(rng), 0.0, 1.3, uq(rng));
  }
  return p;
}

class DepositVariants : public ::testing::TestWithParam<DepositVariant> {};

TEST_P(DepositVariants, ConservesTotalCharge) {
  simrt::run(1, [&](simrt::Communicator& comm) {
    TorusGrid grid(16, 12, 4, comm.size(), comm.rank());
    auto p = random_particles(grid, 500, 7);
    deposit(p, grid, GetParam(), 32);
    // Fold the ghost plane back (single rank: periodic wrap onto plane 0).
    double total = 0.0;
    for (double v : grid.charge()) total += v;
    EXPECT_NEAR(total, p.total_charge(), 1e-10);
  });
}

TEST_P(DepositVariants, MatchesScatterReference) {
  simrt::run(1, [&](simrt::Communicator& comm) {
    TorusGrid ref(16, 12, 4, comm.size(), comm.rank());
    TorusGrid got(16, 12, 4, comm.size(), comm.rank());
    auto p = random_particles(ref, 400, 9);
    deposit(p, ref, DepositVariant::Scatter);
    deposit(p, got, GetParam(), 16);
    for (std::size_t i = 0; i < ref.charge().size(); ++i) {
      EXPECT_NEAR(got.charge()[i], ref.charge()[i], 1e-11) << "cell " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllVariants, DepositVariants,
                         ::testing::Values(DepositVariant::Scatter,
                                           DepositVariant::WorkVector,
                                           DepositVariant::Sorted,
                                           DepositVariant::Hybrid));

TEST(Deposit, WorkVectorIsVectorizableScatterIsNot) {
  simrt::run(1, [](simrt::Communicator& comm) {
    TorusGrid grid(16, 12, 4, comm.size(), comm.rank());
    auto p = random_particles(grid, 300, 5);

    perf::Recorder scatter_rec, wv_rec;
    {
      perf::ScopedRecorder s(scatter_rec);
      TorusGrid g(16, 12, 4, comm.size(), comm.rank());
      deposit(p, g, DepositVariant::Scatter);
    }
    {
      perf::ScopedRecorder s(wv_rec);
      TorusGrid g(16, 12, 4, comm.size(), comm.rank());
      deposit(p, g, DepositVariant::WorkVector, 64);
    }
    const auto sstats = perf::compute_vector_stats(scatter_rec.kernels(), 64);
    const auto wstats = perf::compute_vector_stats(wv_rec.kernels(), 64);
    EXPECT_LT(sstats.vor, 0.01);
    EXPECT_GT(wstats.vor, 0.99);
    EXPECT_NEAR(wstats.avl, 64.0, 10.0);
  });
}

TEST(Poisson, RecoversAnalyticEigenmode) {
  simrt::run(1, [](simrt::Communicator& comm) {
    constexpr std::size_t n = 32;
    TorusGrid grid(n, n, 2, comm.size(), comm.rank());
    const double kx = kTwoPi * 3.0 / n, ky = kTwoPi * 2.0 / n;
    const double k2 = kx * kx + ky * ky;
    for (int p = 0; p < grid.planes_local(); ++p) {
      double* rho = grid.charge_plane(p);
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          rho[y * n + x] = k2 * std::sin(kx * x) * std::sin(ky * y);
        }
      }
    }
    solve_poisson(grid);
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t x = 0; x < n; ++x) {
        const double expect = std::sin(kx * x) * std::sin(ky * y);
        EXPECT_NEAR(grid.phi_plane(0)[y * n + x], expect, 1e-10);
      }
    }
  });
}

TEST(Poisson, ZeroModeGauge) {
  simrt::run(1, [](simrt::Communicator& comm) {
    TorusGrid grid(16, 16, 1, comm.size(), comm.rank());
    for (std::size_t i = 0; i < grid.plane_size(); ++i) {
      grid.charge_plane(0)[i] = 1.0;  // pure k=0 charge
    }
    solve_poisson(grid);
    for (std::size_t i = 0; i < grid.plane_size(); ++i) {
      EXPECT_NEAR(grid.phi_plane(0)[i], 0.0, 1e-12);
    }
  });
}

TEST(Push, ExBDriftMatchesAnalytic) {
  // phi = A sin(kx x): E = (-A kx cos(kx x), 0); a zero-gyroradius marker
  // drifts in y at vy = -Ex/b0 = A kx cos(kx x0) while x stays fixed.
  simrt::run(1, [](simrt::Communicator& comm) {
    constexpr std::size_t n = 64;
    TorusGrid grid(n, n, 2, comm.size(), comm.rank());
    const double kx = kTwoPi * 2.0 / n;
    const double amp = 0.5;
    for (int p = 0; p < grid.planes_local(); ++p) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          grid.phi_plane(p)[y * n + x] = amp * std::sin(kx * x);
        }
      }
    }
    compute_efield(grid);
    std::vector<double> exg(grid.plane_size()), eyg(grid.plane_size());
    std::copy_n(grid.ex_plane(0), grid.plane_size(), exg.begin());
    std::copy_n(grid.ey_plane(0), grid.plane_size(), eyg.begin());

    ParticleSet p;
    const double x0 = 16.0, y0 = 20.0;  // on a grid point for exact gather
    p.push_back(x0, y0, 0.5, 0.0, 0.0, 1.0);
    const double dt = 0.01, b0 = 2.0;
    const int steps = 50;
    for (int s = 0; s < steps; ++s) gather_push(p, grid, exg, eyg, dt, b0);

    // Central-difference E at x0 (grid-point sample, kh discretization):
    const double ex_grid = -amp * std::sin(kx) / 1.0 *
                           (std::cos(kx * x0));  // -(phi(x+1)-phi(x-1))/2
    const double vy = -ex_grid / b0;
    EXPECT_NEAR(p.x[0], x0, 1e-9);  // x unchanged: E has no y component
    EXPECT_NEAR(p.y[0], y0 + vy * dt * steps, 1e-6);
    EXPECT_DOUBLE_EQ(p.zeta[0], 0.5);  // vpar = 0
  });
}

class ShiftVariants : public ::testing::TestWithParam<ShiftVariant> {};

TEST_P(ShiftVariants, EveryParticleArrivesHome) {
  constexpr int P = 4;
  simrt::run(P, [&](simrt::Communicator& comm) {
    TorusGrid grid(8, 8, 8, comm.size(), comm.rank());
    // Scatter particles' zeta over the WHOLE torus so most must migrate,
    // some several hops.
    ParticleSet p;
    std::mt19937_64 rng(100 + static_cast<unsigned>(comm.rank()));
    std::uniform_real_distribution<double> uz(0.0, kTwoPi);
    for (int i = 0; i < 200; ++i) {
      p.push_back(1.0, 1.0, uz(rng), 0.0, 0.5, 1.0);
    }
    shift(comm, grid, p, GetParam());

    for (double z : p.zeta) {
      EXPECT_GE(z, grid.zeta_min());
      EXPECT_LT(z, grid.zeta_max());
    }
    const auto total = comm.allreduce(static_cast<long>(p.size()),
                                      simrt::ReduceOp::Sum);
    EXPECT_EQ(total, 4 * 200);
  });
}

INSTANTIATE_TEST_SUITE_P(BothVariants, ShiftVariants,
                         ::testing::Values(ShiftVariant::NestedIf,
                                           ShiftVariant::TwoPass));

TEST(Shift, VariantsMoveIdenticalParticleSets) {
  constexpr int P = 4;
  for (auto variant : {ShiftVariant::NestedIf, ShiftVariant::TwoPass}) {
    std::vector<std::vector<double>> per_rank_zetas(P);
    simrt::run(P, [&](simrt::Communicator& comm) {
      TorusGrid grid(8, 8, 8, comm.size(), comm.rank());
      ParticleSet p;
      std::mt19937_64 rng(55 + static_cast<unsigned>(comm.rank()));
      std::uniform_real_distribution<double> uz(0.0, kTwoPi);
      for (int i = 0; i < 100; ++i) p.push_back(0, 0, uz(rng), 0, 0, 1.0);
      shift(comm, grid, p, variant);
      auto z = p.zeta;
      std::sort(z.begin(), z.end());
      per_rank_zetas[static_cast<std::size_t>(comm.rank())] = z;
    });
    static std::vector<std::vector<double>> reference;
    if (variant == ShiftVariant::NestedIf) {
      reference = per_rank_zetas;
    } else {
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(per_rank_zetas[static_cast<std::size_t>(r)],
                  reference[static_cast<std::size_t>(r)])
            << "rank " << r;
      }
    }
  }
}

TEST(Simulation, ChargeConservedOnGrid) {
  for (int procs : {1, 2, 4}) {
    simrt::run(procs, [&](simrt::Communicator& comm) {
      Options opt;
      opt.ngx = opt.ngy = 12;
      opt.nplanes = 4;
      opt.particles_per_cell = 4;
      Simulation sim(comm, opt);
      sim.load_particles();
      const double particle_charge = sim.global_particle_charge();
      sim.deposit_phase();
      EXPECT_NEAR(sim.global_grid_charge(), particle_charge, 1e-9) << procs;
    });
  }
}

TEST(Simulation, ParticleCountStableAcrossSteps) {
  simrt::run(4, [](simrt::Communicator& comm) {
    Options opt;
    opt.ngx = opt.ngy = 12;
    opt.nplanes = 8;
    opt.particles_per_cell = 3;
    opt.dt = 0.1;
    Simulation sim(comm, opt);
    sim.load_particles();
    const auto n0 = sim.global_particle_count();
    sim.run(5);
    EXPECT_EQ(sim.global_particle_count(), n0);
    EXPECT_TRUE(sim.particles_home());
  });
}

TEST(Simulation, AllDepositVariantsGiveSamePhysics) {
  auto energy_with = [](DepositVariant v) {
    double e = 0.0;
    simrt::run(2, [&](simrt::Communicator& comm) {
      Options opt;
      opt.ngx = opt.ngy = 12;
      opt.nplanes = 4;
      opt.particles_per_cell = 4;
      opt.deposit = v;
      opt.vlen = 16;
      Simulation sim(comm, opt);
      sim.load_particles();
      sim.run(3);
      const double fe = sim.field_energy();
      if (comm.rank() == 0) e = fe;
    });
    return e;
  };
  const double scatter = energy_with(DepositVariant::Scatter);
  const double wv = energy_with(DepositVariant::WorkVector);
  const double sorted = energy_with(DepositVariant::Sorted);
  EXPECT_NEAR(wv, scatter, std::abs(scatter) * 1e-8 + 1e-12);
  EXPECT_NEAR(sorted, scatter, std::abs(scatter) * 1e-8 + 1e-12);
}

TEST(Workload, SynthesizedMatchesInstrumentedRun) {
  constexpr int steps = 2;
  Options opt;
  opt.ngx = opt.ngy = 12;
  opt.nplanes = 4;
  opt.particles_per_cell = 4;
  opt.deposit = DepositVariant::Scatter;
  opt.shift = ShiftVariant::NestedIf;
  opt.dt = 0.0;  // no motion: exactly one shift classification round
  auto result = simrt::run(2, [&](simrt::Communicator& comm) {
    Simulation sim(comm, opt);
    sim.load_particles();
    sim.run(steps);
  });

  Table6Config cfg;
  cfg.ngx = cfg.ngy = 12;
  cfg.nplanes = 4;
  cfg.particles_per_cell = 4;
  cfg.procs = 2;
  cfg.steps = steps;
  cfg.deposit = DepositVariant::Scatter;
  cfg.shift_variant = ShiftVariant::NestedIf;
  const auto synth = make_profile(cfg);

  const auto& measured = result.per_rank[0].kernels();
  EXPECT_NEAR(synth.kernels.region_flops("charge_deposition"),
              measured.region_flops("charge_deposition"), 1.0);
  EXPECT_NEAR(synth.kernels.region_flops("gather_push"),
              measured.region_flops("gather_push"), 1.0);
  EXPECT_NEAR(synth.kernels.region_flops("shift"),
              measured.region_flops("shift"), 1.0);
}

TEST(Workload, HybridSharesWorkAcrossThreads) {
  Table6Config mpi;
  mpi.procs = 64;
  Table6Config hybrid = mpi;
  hybrid.procs = 1024;
  hybrid.openmp_threads = 16;
  const auto a = make_profile(mpi);
  const auto b = make_profile(hybrid);
  // Same baseline, same per-rank loop work in the profile; the hybrid split
  // is carried as the threads-per-rank dimension the machine model divides
  // compute by (threads * efficiency), not baked into the records.
  EXPECT_DOUBLE_EQ(a.baseline_flops, b.baseline_flops);
  EXPECT_NEAR(b.kernels.total_flops() / a.kernels.total_flops(), 1.0, 1e-9);
  EXPECT_EQ(b.procs, 1024);
  EXPECT_EQ(a.threads_per_rank, 1);
  EXPECT_EQ(b.threads_per_rank, 16);
  EXPECT_DOUBLE_EQ(b.thread_efficiency, 0.5);
}

TEST(Workload, MpiConcurrencyCappedAtPlaneCount) {
  Table6Config cfg;
  cfg.procs = 128;  // > 64 planes without threads
  EXPECT_THROW(make_profile(cfg), std::runtime_error);
}

}  // namespace
}  // namespace vpar::gtc
