// Focused tests of the 3D ghost exchange and the radiation-boundary point
// coverage (paper Figure 6: ghost zones on the faces of topological
// neighbours).

#include <gtest/gtest.h>

#include <tuple>

#include "cactus/boundary.hpp"
#include "cactus/exchange3d.hpp"
#include "cactus/adm.hpp"
#include "cactus/grid.hpp"
#include "simrt/runtime.hpp"

namespace vpar::cactus {
namespace {

constexpr int G = GridFunctions::kGhost;

/// Unique fingerprint of global cell (gx, gy, gz) for field f.
double fingerprint(int f, std::size_t gx, std::size_t gy, std::size_t gz) {
  return static_cast<double>(f) * 1.0e9 + static_cast<double>(gx) * 1.0e6 +
         static_cast<double>(gy) * 1.0e3 + static_cast<double>(gz);
}

class ExchangeGrids
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(ExchangeGrids, GhostsCarryNeighbourData) {
  const auto [px, py, pz, periodic] = GetParam();
  const int procs = px * py * pz;
  constexpr std::size_t nx = 8, ny = 8, nz = 8;

  simrt::run(procs, [&, px = px, py = py, pz = pz, periodic = periodic](
                        simrt::Communicator& comm) {
    const Decomp3D d(nx, ny, nz, px, py, pz, comm.rank(), periodic);
    GridFunctions gf(3, d.nl[0], d.nl[1], d.nl[2]);

    // Fill the interior with global fingerprints.
    for (int f = 0; f < 3; ++f) {
      for (std::size_t k = 0; k < d.nl[2]; ++k) {
        for (std::size_t j = 0; j < d.nl[1]; ++j) {
          for (std::size_t i = 0; i < d.nl[0]; ++i) {
            gf.field(f)[gf.at(static_cast<std::ptrdiff_t>(k),
                              static_cast<std::ptrdiff_t>(j),
                              static_cast<std::ptrdiff_t>(i))] =
                fingerprint(f, d.origin(0) + i, d.origin(1) + j, d.origin(2) + k);
          }
        }
      }
    }
    exchange_ghosts(comm, d, gf);

    // Every ghost cell whose global position exists (or wraps) must hold the
    // fingerprint of the mapped global cell — including edge and corner
    // ghosts, which the three-sweep scheme must carry.
    auto wrap = [&](std::ptrdiff_t g, int axis) -> std::ptrdiff_t {
      const auto n = static_cast<std::ptrdiff_t>(d.n[axis]);
      if (periodic) return ((g % n) + n) % n;
      return g;  // non-periodic: caller checks bounds
    };
    for (int f = 0; f < 3; ++f) {
      for (std::ptrdiff_t k = -G; k < static_cast<std::ptrdiff_t>(d.nl[2]) + G; ++k) {
        for (std::ptrdiff_t j = -G; j < static_cast<std::ptrdiff_t>(d.nl[1]) + G;
             ++j) {
          for (std::ptrdiff_t i = -G;
               i < static_cast<std::ptrdiff_t>(d.nl[0]) + G; ++i) {
            const bool interior =
                i >= 0 && i < static_cast<std::ptrdiff_t>(d.nl[0]) && j >= 0 &&
                j < static_cast<std::ptrdiff_t>(d.nl[1]) && k >= 0 &&
                k < static_cast<std::ptrdiff_t>(d.nl[2]);
            if (interior) continue;
            std::ptrdiff_t gx = static_cast<std::ptrdiff_t>(d.origin(0)) + i;
            std::ptrdiff_t gy = static_cast<std::ptrdiff_t>(d.origin(1)) + j;
            std::ptrdiff_t gz = static_cast<std::ptrdiff_t>(d.origin(2)) + k;
            if (!periodic) {
              // Outside the global domain: untouched, skip.
              if (gx < 0 || gx >= static_cast<std::ptrdiff_t>(d.n[0]) || gy < 0 ||
                  gy >= static_cast<std::ptrdiff_t>(d.n[1]) || gz < 0 ||
                  gz >= static_cast<std::ptrdiff_t>(d.n[2])) {
                continue;
              }
            } else {
              gx = wrap(gx, 0);
              gy = wrap(gy, 1);
              gz = wrap(gz, 2);
            }
            EXPECT_DOUBLE_EQ(
                gf.field(f)[gf.at(k, j, i)],
                fingerprint(f, static_cast<std::size_t>(gx),
                            static_cast<std::size_t>(gy),
                            static_cast<std::size_t>(gz)))
                << "f=" << f << " ghost (" << i << "," << j << "," << k
                << ") rank " << comm.rank();
          }
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, ExchangeGrids,
    ::testing::Values(std::tuple{1, 1, 1, true}, std::tuple{2, 1, 1, true},
                      std::tuple{2, 2, 1, true}, std::tuple{2, 2, 2, true},
                      std::tuple{1, 2, 2, false}, std::tuple{2, 2, 2, false}));

TEST(Boundary, ScalarAndVectorizedCoverIdenticalPointSets) {
  // Counting variant: set dst = src + dt*rhs with dt = 0 makes the update a
  // copy; instead mark coverage by initializing dst to a sentinel and
  // checking which cells each variant writes.
  simrt::run(2, [](simrt::Communicator& comm) {
    const Decomp3D d(8, 8, 8, 2, 1, 1, comm.rank(), /*periodic=*/false);
    GridFunctions src(kNumFields, d.nl[0], d.nl[1], d.nl[2]);
    src.fill(1.0);

    auto coverage = [&](BoundaryVariant variant) {
      GridFunctions dst(kNumFields, d.nl[0], d.nl[1], d.nl[2]);
      dst.fill(-777.0);
      apply_radiation_boundary(d, src, dst, 0.5, 0.1, variant);
      std::vector<bool> written;
      for (std::size_t k = 0; k < d.nl[2]; ++k) {
        for (std::size_t j = 0; j < d.nl[1]; ++j) {
          for (std::size_t i = 0; i < d.nl[0]; ++i) {
            written.push_back(dst.field(0)[dst.at(
                                  static_cast<std::ptrdiff_t>(k),
                                  static_cast<std::ptrdiff_t>(j),
                                  static_cast<std::ptrdiff_t>(i))] != -777.0);
          }
        }
      }
      return written;
    };

    const auto scalar = coverage(BoundaryVariant::Scalar);
    const auto vectorized = coverage(BoundaryVariant::Vectorized);
    ASSERT_EQ(scalar.size(), vectorized.size());
    std::size_t boundary_points = 0;
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(scalar[i], vectorized[i]) << "cell " << i;
      boundary_points += scalar[i] ? 1 : 0;
    }
    EXPECT_GT(boundary_points, 0u);
    EXPECT_LT(boundary_points, scalar.size());  // interior untouched
  });
}

TEST(Boundary, PeriodicDomainsHaveNoBoundary) {
  simrt::run(1, [](simrt::Communicator& comm) {
    const Decomp3D d(8, 8, 8, 1, 1, 1, comm.rank(), /*periodic=*/true);
    GridFunctions src(kNumFields, 8, 8, 8), dst(kNumFields, 8, 8, 8);
    src.fill(1.0);
    dst.fill(-1.0);
    apply_radiation_boundary(d, src, dst, 0.5, 0.1, BoundaryVariant::Scalar);
    for (double v : dst.raw()) EXPECT_DOUBLE_EQ(v, -1.0);  // untouched
  });
}

}  // namespace
}  // namespace vpar::cactus
