// Stress and corner-case tests of the simulated parallel runtime: high rank
// counts, interleaved traffic patterns, multiple co-arrays, and message
// matching under contention.

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "simrt/coarray.hpp"
#include "simrt/runtime.hpp"

namespace vpar::simrt {
namespace {

TEST(SimrtStress, SixtyFourRankAllreduceStorm) {
  run(64, [](Communicator& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      const long sum = comm.allreduce(static_cast<long>(comm.rank()), ReduceOp::Sum);
      EXPECT_EQ(sum, 64L * 63L / 2L);
    }
  });
}

TEST(SimrtStress, RandomizedPointToPointSoak) {
  // Every rank sends a tagged message to every other rank in random order;
  // every message must arrive with the right contents regardless of
  // interleaving.
  constexpr int P = 12;
  run(P, [](Communicator& comm) {
    std::vector<int> order(static_cast<std::size_t>(comm.size()));
    std::iota(order.begin(), order.end(), 0);
    std::mt19937 rng(1000u + static_cast<unsigned>(comm.rank()));
    std::shuffle(order.begin(), order.end(), rng);

    for (int dest : order) {
      const int payload = comm.rank() * 1000 + dest;
      comm.send<int>(dest, std::span<const int>(&payload, 1), 99);
    }
    for (int src = 0; src < comm.size(); ++src) {
      int got = -1;
      comm.recv<int>(src, std::span<int>(&got, 1), 99);
      EXPECT_EQ(got, src * 1000 + comm.rank());
    }
  });
}

TEST(SimrtStress, WildcardReceiveDrainsEverything) {
  constexpr int P = 8;
  run(P, [](Communicator& comm) {
    if (comm.rank() == 0) {
      long total = 0;
      for (int i = 0; i < P - 1; ++i) {
        long v = 0;
        comm.recv<long>(kAnySource, std::span<long>(&v, 1), 5);
        total += v;
      }
      // Ranks 1..P-1 each send rank+1: sum = (P-1)(P+2)/2.
      EXPECT_EQ(total, (P - 1L) * (P + 2L) / 2L);
    } else {
      const long v = comm.rank() + 1;
      comm.send<long>(0, std::span<const long>(&v, 1), 5);
    }
  });
}

TEST(SimrtStress, InterleavedCollectivesAndPointToPoint) {
  constexpr int P = 6;
  run(P, [](Communicator& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    for (int iter = 0; iter < 25; ++iter) {
      int token = comm.rank() * 100 + iter, got = -1;
      comm.sendrecv<int>(right, std::span<const int>(&token, 1), left,
                         std::span<int>(&got, 1), iter);
      EXPECT_EQ(got, left * 100 + iter);
      EXPECT_EQ(comm.allreduce(1, ReduceOp::Sum), comm.size());
      comm.barrier();
    }
  });
}

TEST(SimrtStress, MultipleCoArraysAreIndependent) {
  run(4, [](Communicator& comm) {
    CoArray<double> a(comm, "stress_a", 8);
    CoArray<int> b(comm, "stress_b", 3);
    for (std::size_t i = 0; i < 8; ++i) a.local()[i] = comm.rank() + 0.5;
    for (std::size_t i = 0; i < 3; ++i) b.local()[i] = -comm.rank();
    a.sync_all();

    const int peer = (comm.rank() + 2) % 4;
    std::array<double, 8> da{};
    std::array<int, 3> db{};
    a.get(peer, 0, std::span<double>(da));
    b.get(peer, 0, std::span<int>(db));
    for (double v : da) EXPECT_DOUBLE_EQ(v, peer + 0.5);
    for (int v : db) EXPECT_EQ(v, -peer);
    a.sync_all();
  });
}

TEST(SimrtStress, LargePayloadRoundTrip) {
  run(2, [](Communicator& comm) {
    constexpr std::size_t n = 1 << 20;  // 8 MB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i % 1013);
      comm.send<double>(1, big, 0);
    } else {
      std::vector<double> big(n);
      comm.recv<double>(0, std::span<double>(big), 0);
      for (std::size_t i = 0; i < n; i += 4096) {
        ASSERT_DOUBLE_EQ(big[i], static_cast<double>(i % 1013));
      }
    }
  });
}

TEST(SimrtStress, BroadcastFromEveryRoot) {
  constexpr int P = 5;
  run(P, [](Communicator& comm) {
    for (int root = 0; root < P; ++root) {
      std::array<int, 2> v{};
      if (comm.rank() == root) v = {root * 7, root * 11};
      comm.broadcast<int>(std::span<int>(v), root);
      EXPECT_EQ(v[0], root * 7);
      EXPECT_EQ(v[1], root * 11);
    }
  });
}

TEST(SimrtStress, ReduceMinMaxOnDoubles) {
  run(7, [](Communicator& comm) {
    const double mine = 1.0 / (1.0 + comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Max), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Min), 1.0 / 7.0);
  });
}

TEST(SimrtStress, AlltoallvStorm) {
  constexpr int P = 8;
  run(P, [](Communicator& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      std::vector<std::vector<double>> out(P);
      for (int d = 0; d < P; ++d) {
        out[static_cast<std::size_t>(d)].assign(
            static_cast<std::size_t>((comm.rank() + d + iter) % 3 + 1),
            comm.rank() * 1.0 + d * 0.01);
      }
      auto in = comm.alltoallv(out);
      for (int s = 0; s < P; ++s) {
        const auto& box = in[static_cast<std::size_t>(s)];
        ASSERT_EQ(box.size(),
                  static_cast<std::size_t>((s + comm.rank() + iter) % 3 + 1));
        for (double v : box) EXPECT_DOUBLE_EQ(v, s * 1.0 + comm.rank() * 0.01);
      }
    }
  });
}

// --- collective equivalence property tests ---------------------------------
// Each collective is checked against a sequential reference over seeded
// randomized sizes and rank counts 1..16 (including non-powers-of-two, where
// the binomial trees are ragged), plus empty buffers.

class CollectiveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveEquivalence, AllreduceMatchesSequentialFold) {
  const int P = GetParam();
  std::mt19937 rng(4242u + static_cast<unsigned>(P));
  std::uniform_int_distribution<std::size_t> len(0, 9);
  std::uniform_real_distribution<double> val(-1.0, 1.0);

  for (int round = 0; round < 5; ++round) {
    const std::size_t n = len(rng);
    // contributions[r][i]: fixed up front so a reference answer exists.
    std::vector<std::vector<double>> contrib(static_cast<std::size_t>(P),
                                             std::vector<double>(n));
    for (auto& c : contrib)
      for (auto& v : c) v = val(rng);

    // Reference: the seed's association order — fold rank 0..P-1 in order.
    std::vector<double> expect_sum(n, 0.0), expect_max(n), expect_min(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = contrib[0][i], mx = contrib[0][i], mn = contrib[0][i];
      for (int r = 1; r < P; ++r) {
        s += contrib[static_cast<std::size_t>(r)][i];
        mx = std::max(mx, contrib[static_cast<std::size_t>(r)][i]);
        mn = std::min(mn, contrib[static_cast<std::size_t>(r)][i]);
      }
      expect_sum[i] = s;
      expect_max[i] = mx;
      expect_min[i] = mn;
    }

    run(P, [&](Communicator& comm) {
      auto mine = contrib[static_cast<std::size_t>(comm.rank())];
      comm.allreduce_inplace(std::span<double>(mine), ReduceOp::Sum);
      for (std::size_t i = 0; i < n; ++i) {
        // Bitwise equality: the tree gather must preserve the sequential
        // rank-order fold exactly, on every rank.
        ASSERT_EQ(mine[i], expect_sum[i]);
      }
      auto mx = contrib[static_cast<std::size_t>(comm.rank())];
      comm.allreduce_inplace(std::span<double>(mx), ReduceOp::Max);
      auto mn = contrib[static_cast<std::size_t>(comm.rank())];
      comm.allreduce_inplace(std::span<double>(mn), ReduceOp::Min);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(mx[i], expect_max[i]);
        ASSERT_EQ(mn[i], expect_min[i]);
      }
    });
  }
}

TEST_P(CollectiveEquivalence, BroadcastFromRandomRoots) {
  const int P = GetParam();
  std::mt19937 rng(777u + static_cast<unsigned>(P));
  std::uniform_int_distribution<int> pick_root(0, P - 1);
  std::uniform_int_distribution<std::size_t> len(0, 12);

  for (int round = 0; round < 5; ++round) {
    const int root = pick_root(rng);
    const std::size_t n = len(rng);
    std::vector<long> payload(n);
    for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<long>(i * 31 + round);

    run(P, [&](Communicator& comm) {
      std::vector<long> v(n, -1);
      if (comm.rank() == root) v = payload;
      comm.broadcast<long>(std::span<long>(v), root);
      ASSERT_EQ(v, payload);
    });
  }
}

TEST_P(CollectiveEquivalence, GatherVariableSizesToRandomRoots) {
  const int P = GetParam();
  std::mt19937 rng(31337u + static_cast<unsigned>(P));
  std::uniform_int_distribution<int> pick_root(0, P - 1);
  std::uniform_int_distribution<std::size_t> len(0, 7);

  for (int round = 0; round < 5; ++round) {
    const int root = pick_root(rng);
    // Variable (possibly zero) contribution sizes per rank.
    std::vector<std::size_t> counts(static_cast<std::size_t>(P));
    for (auto& c : counts) c = len(rng);

    // Reference: rank-ordered concatenation of rank*1000 + index.
    std::vector<int> expected;
    for (int r = 0; r < P; ++r)
      for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i)
        expected.push_back(r * 1000 + static_cast<int>(i));

    run(P, [&](Communicator& comm) {
      const std::size_t mine = counts[static_cast<std::size_t>(comm.rank())];
      std::vector<int> contribution(mine);
      for (std::size_t i = 0; i < mine; ++i)
        contribution[i] = comm.rank() * 1000 + static_cast<int>(i);

      std::vector<int> out(expected.size(), -1);
      comm.gather<int>(contribution, std::span<int>(out), root);
      if (comm.rank() == root) ASSERT_EQ(out, expected);
    });
  }
}

TEST_P(CollectiveEquivalence, AlltoallvMatchesReferencePermutation) {
  const int P = GetParam();
  std::mt19937 rng(90210u + static_cast<unsigned>(P));
  std::uniform_int_distribution<std::size_t> len(0, 5);

  for (int round = 0; round < 4; ++round) {
    // sizes[s][d]: elements rank s sends to rank d (zeros included).
    std::vector<std::vector<std::size_t>> sizes(
        static_cast<std::size_t>(P), std::vector<std::size_t>(static_cast<std::size_t>(P)));
    for (auto& row : sizes)
      for (auto& c : row) c = len(rng);

    run(P, [&](Communicator& comm) {
      const auto me = static_cast<std::size_t>(comm.rank());
      std::vector<std::vector<double>> out(static_cast<std::size_t>(P));
      for (std::size_t d = 0; d < static_cast<std::size_t>(P); ++d) {
        out[d].resize(sizes[me][d]);
        for (std::size_t i = 0; i < out[d].size(); ++i)
          out[d][i] = comm.rank() * 100.0 + static_cast<double>(d) + i * 0.001;
      }
      auto in = comm.alltoallv(out);
      ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
      for (std::size_t s = 0; s < static_cast<std::size_t>(P); ++s) {
        ASSERT_EQ(in[s].size(), sizes[s][me]);
        for (std::size_t i = 0; i < in[s].size(); ++i) {
          ASSERT_DOUBLE_EQ(in[s][i],
                           s * 100.0 + static_cast<double>(me) + i * 0.001);
        }
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveEquivalence,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 11, 13, 16));

}  // namespace
}  // namespace vpar::simrt
