// Stress and corner-case tests of the simulated parallel runtime: high rank
// counts, interleaved traffic patterns, multiple co-arrays, and message
// matching under contention.

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "simrt/coarray.hpp"
#include "simrt/runtime.hpp"

namespace vpar::simrt {
namespace {

TEST(SimrtStress, SixtyFourRankAllreduceStorm) {
  run(64, [](Communicator& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      const long sum = comm.allreduce(static_cast<long>(comm.rank()), ReduceOp::Sum);
      EXPECT_EQ(sum, 64L * 63L / 2L);
    }
  });
}

TEST(SimrtStress, RandomizedPointToPointSoak) {
  // Every rank sends a tagged message to every other rank in random order;
  // every message must arrive with the right contents regardless of
  // interleaving.
  constexpr int P = 12;
  run(P, [](Communicator& comm) {
    std::vector<int> order(static_cast<std::size_t>(comm.size()));
    std::iota(order.begin(), order.end(), 0);
    std::mt19937 rng(1000u + static_cast<unsigned>(comm.rank()));
    std::shuffle(order.begin(), order.end(), rng);

    for (int dest : order) {
      const int payload = comm.rank() * 1000 + dest;
      comm.send<int>(dest, std::span<const int>(&payload, 1), 99);
    }
    for (int src = 0; src < comm.size(); ++src) {
      int got = -1;
      comm.recv<int>(src, std::span<int>(&got, 1), 99);
      EXPECT_EQ(got, src * 1000 + comm.rank());
    }
  });
}

TEST(SimrtStress, WildcardReceiveDrainsEverything) {
  constexpr int P = 8;
  run(P, [](Communicator& comm) {
    if (comm.rank() == 0) {
      long total = 0;
      for (int i = 0; i < P - 1; ++i) {
        long v = 0;
        comm.recv<long>(kAnySource, std::span<long>(&v, 1), 5);
        total += v;
      }
      // Ranks 1..P-1 each send rank+1: sum = (P-1)(P+2)/2.
      EXPECT_EQ(total, (P - 1L) * (P + 2L) / 2L);
    } else {
      const long v = comm.rank() + 1;
      comm.send<long>(0, std::span<const long>(&v, 1), 5);
    }
  });
}

TEST(SimrtStress, InterleavedCollectivesAndPointToPoint) {
  constexpr int P = 6;
  run(P, [](Communicator& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    for (int iter = 0; iter < 25; ++iter) {
      int token = comm.rank() * 100 + iter, got = -1;
      comm.sendrecv<int>(right, std::span<const int>(&token, 1), left,
                         std::span<int>(&got, 1), iter);
      EXPECT_EQ(got, left * 100 + iter);
      EXPECT_EQ(comm.allreduce(1, ReduceOp::Sum), comm.size());
      comm.barrier();
    }
  });
}

TEST(SimrtStress, MultipleCoArraysAreIndependent) {
  run(4, [](Communicator& comm) {
    CoArray<double> a(comm, "stress_a", 8);
    CoArray<int> b(comm, "stress_b", 3);
    for (std::size_t i = 0; i < 8; ++i) a.local()[i] = comm.rank() + 0.5;
    for (std::size_t i = 0; i < 3; ++i) b.local()[i] = -comm.rank();
    a.sync_all();

    const int peer = (comm.rank() + 2) % 4;
    std::array<double, 8> da{};
    std::array<int, 3> db{};
    a.get(peer, 0, std::span<double>(da));
    b.get(peer, 0, std::span<int>(db));
    for (double v : da) EXPECT_DOUBLE_EQ(v, peer + 0.5);
    for (int v : db) EXPECT_EQ(v, -peer);
    a.sync_all();
  });
}

TEST(SimrtStress, LargePayloadRoundTrip) {
  run(2, [](Communicator& comm) {
    constexpr std::size_t n = 1 << 20;  // 8 MB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i % 1013);
      comm.send<double>(1, big, 0);
    } else {
      std::vector<double> big(n);
      comm.recv<double>(0, std::span<double>(big), 0);
      for (std::size_t i = 0; i < n; i += 4096) {
        ASSERT_DOUBLE_EQ(big[i], static_cast<double>(i % 1013));
      }
    }
  });
}

TEST(SimrtStress, BroadcastFromEveryRoot) {
  constexpr int P = 5;
  run(P, [](Communicator& comm) {
    for (int root = 0; root < P; ++root) {
      std::array<int, 2> v{};
      if (comm.rank() == root) v = {root * 7, root * 11};
      comm.broadcast<int>(std::span<int>(v), root);
      EXPECT_EQ(v[0], root * 7);
      EXPECT_EQ(v[1], root * 11);
    }
  });
}

TEST(SimrtStress, ReduceMinMaxOnDoubles) {
  run(7, [](Communicator& comm) {
    const double mine = 1.0 / (1.0 + comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Max), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Min), 1.0 / 7.0);
  });
}

TEST(SimrtStress, AlltoallvStorm) {
  constexpr int P = 8;
  run(P, [](Communicator& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      std::vector<std::vector<double>> out(P);
      for (int d = 0; d < P; ++d) {
        out[static_cast<std::size_t>(d)].assign(
            static_cast<std::size_t>((comm.rank() + d + iter) % 3 + 1),
            comm.rank() * 1.0 + d * 0.01);
      }
      auto in = comm.alltoallv(out);
      for (int s = 0; s < P; ++s) {
        const auto& box = in[static_cast<std::size_t>(s)];
        ASSERT_EQ(box.size(),
                  static_cast<std::size_t>((s + comm.rank() + iter) % 3 + 1));
        for (double v : box) EXPECT_DOUBLE_EQ(v, s * 1.0 + comm.rank() * 0.01);
      }
    }
  });
}

}  // namespace
}  // namespace vpar::simrt
