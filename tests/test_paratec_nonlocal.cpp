// Tests of the Kleinman-Bylander nonlocal pseudopotential channel.

#include <gtest/gtest.h>

#include <cmath>

#include "paratec/scf.hpp"
#include "paratec/solver.hpp"
#include "simrt/runtime.hpp"

namespace vpar::paratec {
namespace {

NonlocalOptions attractive() {
  NonlocalOptions nl;
  nl.enabled = true;
  nl.strength = -0.8;
  nl.sigma = 0.2;
  return nl;
}

TEST(Nonlocal, HamiltonianStaysHermitian) {
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 0.7, 0.2, attractive());
    Solver solver(h, 2, 7);
    solver.init_random();
    auto a = solver.band(0);
    auto b = solver.band(1);
    std::vector<Complex> ha(a.size()), hb(b.size());
    h.apply(a, ha);
    h.apply(b, hb);
    const Complex lhs = solver.inner(a, std::span<const Complex>(hb));
    const Complex rhs = solver.inner(std::span<const Complex>(ha), b);
    EXPECT_LT(std::abs(lhs - rhs), 1e-10);
  });
}

TEST(Nonlocal, AttractiveChannelLowersGroundState) {
  simrt::run(1, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    const auto atoms = silicon_supercell(1);

    Hamiltonian local_only(comm, basis, layout, atoms, 0.7, 0.2);
    Hamiltonian with_nl(comm, basis, layout, atoms, 0.7, 0.2, attractive());
    Solver s1(local_only, 2, 9), s2(with_nl, 2, 9);
    s1.init_random();
    s2.init_random();
    for (int i = 0; i < 12; ++i) {
      s1.iterate();
      s2.iterate();
    }
    EXPECT_LT(s2.eigenvalues()[0], s1.eigenvalues()[0]);
  });
}

TEST(Nonlocal, RepulsiveChannelRaisesGroundState) {
  simrt::run(1, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    const auto atoms = silicon_supercell(1);
    NonlocalOptions rep = attractive();
    rep.strength = +0.8;

    Hamiltonian local_only(comm, basis, layout, atoms, 0.7, 0.2);
    Hamiltonian with_nl(comm, basis, layout, atoms, 0.7, 0.2, rep);
    Solver s1(local_only, 2, 9), s2(with_nl, 2, 9);
    s1.init_random();
    s2.init_random();
    for (int i = 0; i < 12; ++i) {
      s1.iterate();
      s2.iterate();
    }
    EXPECT_GT(s2.eigenvalues()[0], s1.eigenvalues()[0]);
  });
}

TEST(Nonlocal, ParallelMatchesSerialEigenvalues) {
  auto eigen_with = [](int procs) {
    std::vector<double> vals;
    simrt::run(procs, [&](simrt::Communicator& comm) {
      const Basis basis(4.0);
      const Layout layout(basis, comm.size());
      Hamiltonian h(comm, basis, layout, silicon_supercell(1), 0.7, 0.2,
                    attractive());
      Solver solver(h, 3, 9);
      solver.init_random();
      for (int it = 0; it < 10; ++it) solver.iterate();
      if (comm.rank() == 0) vals = solver.eigenvalues();
    });
    return vals;
  };
  const auto serial = eigen_with(1);
  const auto par = eigen_with(4);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(par[i], serial[i], 1e-7) << "band " << i;
  }
}

TEST(Nonlocal, ScfRunsWithFullPseudopotential) {
  // The complete pipeline: local + nonlocal ionic potential, Hartree,
  // exchange — a miniature "standard LDA run".
  simrt::run(2, [](simrt::Communicator& comm) {
    const Basis basis(4.0);
    const Layout layout(basis, comm.size());
    Hamiltonian h(comm, basis, layout, silicon_supercell(1), 1.0, 0.22,
                  attractive());
    Scf::Options opt;
    opt.nbands = 4;
    opt.mixing = 0.1;
    opt.cg_sweeps_per_scf = 2;
    Scf scf(h, opt);
    scf.iterate();
    const double first = scf.iterate();
    double last = first;
    for (int cycle = 0; cycle < 20; ++cycle) last = scf.iterate();
    EXPECT_LT(last, first);
    EXPECT_NEAR(scf.electron_count(), 8.0, 1e-9);
  });
}

}  // namespace
}  // namespace vpar::paratec
