// Partitioner invariants: rank-grid factorization, cover-exactly-once and
// disjointness of block and block-cyclic decompositions, neighbor symmetry,
// halo schedule send/recv pairing — property-tested across world sizes 1–16
// including non-power-of-two worlds and degenerate 1-wide axes — plus an
// end-to-end ghost-fill check of exchange_halo over the simrt runtime.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "part/halo.hpp"
#include "part/part.hpp"
#include "part/partition.hpp"
#include "simrt/runtime.hpp"

namespace vpar::part {
namespace {

// --- rank-grid factorization -----------------------------------------------

TEST(Factorize, ProductAlwaysMatchesRanks) {
  for (int ranks = 1; ranks <= 16; ++ranks) {
    const auto d2 = near_cubic_grid<2>(ranks, Extent<2>{{64, 64}});
    EXPECT_EQ(d2[0] * d2[1], ranks) << "ranks=" << ranks;
    const auto d3 = near_cubic_grid<3>(ranks, Extent<3>{{48, 48, 48}});
    EXPECT_EQ(d3[0] * d3[1] * d3[2], ranks) << "ranks=" << ranks;
    const auto d4 = near_cubic_grid<4>(ranks, Extent<4>{{16, 16, 16, 32}});
    EXPECT_EQ(d4[0] * d4[1] * d4[2] * d4[3], ranks) << "ranks=" << ranks;
  }
}

TEST(Factorize, NearCubicOnCubicDomain) {
  const auto d = near_cubic_grid<3>(16, Extent<3>{{64, 64, 64}});
  // 16 = 2^4 over three equal axes: best split is {4, 2, 2} in some order.
  std::array<int, 3> sorted = d;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::array<int, 3>{2, 2, 4}));
}

TEST(Factorize, PrefersAxisThatDividesEvenly) {
  // 3 ranks, one axis divisible by 3, the other longer but not divisible.
  const auto d = near_cubic_grid<2>(3, Extent<2>{{100, 99}});
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 3);
}

TEST(Factorize, SkewedDomainGetsSkewedGrid) {
  // All 8 ranks should land on the long axis of a 512x4 domain.
  const auto d = near_cubic_grid<2>(8, Extent<2>{{512, 4}});
  EXPECT_EQ(d[0], 8);
  EXPECT_EQ(d[1], 1);
}

TEST(Factorize, HonoursFixedDims) {
  std::array<int, 3> dims{0, 4, 0};
  std::array<std::size_t, 3> ext{32, 32, 32};
  factor_rank_grid(8, ext, dims);
  EXPECT_EQ(dims[1], 4);
  EXPECT_EQ(dims[0] * dims[1] * dims[2], 8);
}

TEST(Factorize, RejectsImpossibleFixedDims) {
  std::array<int, 2> dims{3, 0};
  EXPECT_THROW(factor_rank_grid(8, {}, dims), std::invalid_argument);
  std::array<int, 2> all_fixed{2, 2};
  EXPECT_THROW(factor_rank_grid(8, {}, all_fixed), std::invalid_argument);
}

// --- block partition properties --------------------------------------------

template <std::size_t N>
void expect_covers_exactly_once(const BlockPartition<N>& p) {
  const Extent<N> n = p.global();
  // Every global cell: owner_of names a rank, that rank owns it, and the
  // local->global round trip returns the cell. Disjointness: no other rank
  // owns it.
  std::vector<std::size_t> owned_cells(static_cast<std::size_t>(p.size()), 0);
  Index<N> g{};
  for (std::size_t flat = 0; flat < n.volume(); ++flat) {
    std::size_t rest = flat;
    for (std::size_t a = 0; a < N; ++a) {
      g[a] = static_cast<std::ptrdiff_t>(rest % n[a]);
      rest /= n[a];
    }
    const int owner = p.owner_of(g);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, p.size());
    EXPECT_TRUE(p.owns(owner, g));
    owned_cells[static_cast<std::size_t>(owner)]++;
    const Index<N> l = p.to_local(owner, g);
    EXPECT_EQ(p.to_global(owner, l), g);
    for (int r = 0; r < p.size(); ++r) {
      if (r != owner) {
        EXPECT_FALSE(p.owns(r, g));
      }
    }
  }
  // Each rank's rectangular extent accounts for exactly its owned cells, and
  // the extents tile the whole domain.
  std::size_t total = 0;
  for (int r = 0; r < p.size(); ++r) {
    const std::size_t vol = p.local_extent(r).volume();
    EXPECT_EQ(vol, owned_cells[static_cast<std::size_t>(r)]) << "rank " << r;
    total += vol;
  }
  EXPECT_EQ(total, n.volume());
}

TEST(BlockPartition, CoversExactlyOnce2D) {
  for (int ranks = 1; ranks <= 16; ++ranks) {
    // 7 and 5 are coprime to most worlds: plenty of uneven blocks.
    expect_covers_exactly_once(
        BlockPartition<2>::make(Extent<2>{{7, 5}}, ranks));
  }
}

TEST(BlockPartition, CoversExactlyOnce3D) {
  for (int ranks = 1; ranks <= 16; ++ranks) {
    expect_covers_exactly_once(
        BlockPartition<3>::make(Extent<3>{{9, 4, 3}}, ranks));
  }
}

TEST(BlockPartition, CoversExactlyOnceDegenerateAxis) {
  // All ranks forced onto one axis; the other axis is 1 cell wide.
  for (int ranks : {3, 7, 12, 16}) {
    expect_covers_exactly_once(BlockPartition<2>(
        Extent<2>{{37, 1}}, std::array<int, 2>{ranks, 1}));
  }
}

TEST(BlockPartition, UnevenBlocksFrontLoaded) {
  // 10 cells over 4 ranks: 3,3,2,2 with contiguous origins.
  const BlockPartition<1> p(Extent<1>{{10}}, {4});
  EXPECT_EQ(p.local_extent(0)[0], 3u);
  EXPECT_EQ(p.local_extent(1)[0], 3u);
  EXPECT_EQ(p.local_extent(2)[0], 2u);
  EXPECT_EQ(p.local_extent(3)[0], 2u);
  EXPECT_EQ(p.origin(0)[0], 0);
  EXPECT_EQ(p.origin(1)[0], 3);
  EXPECT_EQ(p.origin(2)[0], 6);
  EXPECT_EQ(p.origin(3)[0], 8);
}

template <std::size_t N>
void expect_neighbor_symmetry(const BlockPartition<N>& p) {
  for (int r = 0; r < p.size(); ++r) {
    for (std::size_t a = 0; a < N; ++a) {
      for (int dir : {-1, 1}) {
        const int n = p.neighbor(r, a, dir);
        if (n >= 0) {
          EXPECT_EQ(p.neighbor(n, a, -dir), r)
              << "rank " << r << " axis " << a << " dir " << dir;
        }
      }
    }
  }
}

TEST(BlockPartition, NeighborSymmetry) {
  for (int ranks = 1; ranks <= 16; ++ranks) {
    for (bool periodic : {false, true}) {
      expect_neighbor_symmetry(BlockPartition<3>::make(
          Extent<3>{{12, 12, 12}}, ranks, {periodic, periodic, periodic}));
    }
  }
}

TEST(BlockPartition, NonPeriodicBoundaryHasNoNeighbor) {
  const BlockPartition<2> p(Extent<2>{{8, 8}}, {2, 2}, {false, false});
  EXPECT_EQ(p.neighbor(0, 0, -1), -1);
  EXPECT_EQ(p.neighbor(0, 0, +1), 1);
  EXPECT_EQ(p.neighbor(3, 1, +1), -1);
}

TEST(BlockPartition, PeriodicOneWideAxisIsOwnNeighbor) {
  const BlockPartition<2> p(Extent<2>{{8, 8}}, {1, 1}, {true, true});
  EXPECT_EQ(p.neighbor(0, 0, +1), 0);
  EXPECT_EQ(p.neighbor(0, 1, -1), 0);
}

TEST(BlockPartition, MatchesHandRolledLinearization) {
  // rank = (ck*py + cj)*px + ci — the Decomp2D/Decomp3D convention.
  const BlockPartition<3> p(Extent<3>{{12, 12, 12}}, {3, 2, 2});
  for (int ck = 0; ck < 2; ++ck) {
    for (int cj = 0; cj < 2; ++cj) {
      for (int ci = 0; ci < 3; ++ci) {
        EXPECT_EQ(p.rank_of({ci, cj, ck}), (ck * 2 + cj) * 3 + ci);
      }
    }
  }
}

// --- block-cyclic properties -----------------------------------------------

TEST(BlockCyclic, CoversExactlyOnceAndRoundTrips) {
  for (int ranks : {1, 2, 3, 5, 8, 13, 16}) {
    std::array<int, 2> dims{};
    factor_rank_grid(ranks, {}, dims);
    const BlockCyclicPartition<2> p(Extent<2>{{19, 11}}, dims,
                                    Extent<2>{{3, 2}});
    std::vector<std::size_t> counted(static_cast<std::size_t>(p.size()), 0);
    for (std::size_t gy = 0; gy < 11; ++gy) {
      for (std::size_t gx = 0; gx < 19; ++gx) {
        const Index<2> g{{static_cast<std::ptrdiff_t>(gx),
                          static_cast<std::ptrdiff_t>(gy)}};
        const int owner = p.owner_of(g);
        counted[static_cast<std::size_t>(owner)]++;
        EXPECT_EQ(p.to_global(owner, p.to_local(g)), g);
      }
    }
    std::size_t total = 0;
    for (int r = 0; r < p.size(); ++r) {
      EXPECT_EQ(p.local_extent(r).volume(),
                counted[static_cast<std::size_t>(r)])
          << "ranks=" << ranks << " r=" << r;
      total += p.local_extent(r).volume();
    }
    EXPECT_EQ(total, 19u * 11u);
  }
}

TEST(BlockCyclic, BalancesBetterThanBlockOnSkewedWork) {
  // 16 cells, 4 ranks, blocks of 1: each rank owns every 4th cell.
  const BlockCyclicPartition<1> p(Extent<1>{{16}}, {4}, Extent<1>{{1}});
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.local_extent(r)[0], 4u);
  EXPECT_EQ(p.axis_owner(0, 0), 0);
  EXPECT_EQ(p.axis_owner(0, 5), 1);
  EXPECT_EQ(p.axis_owner(0, 15), 3);
}

// --- halo schedules ---------------------------------------------------------

template <std::size_t N>
void expect_send_recv_pairing(const BlockPartition<N>& p,
                              const HaloSpec<N>& spec) {
  // Key: (sender, receiver, tag) -> element volume. Every send posted by any
  // rank must be met by exactly one receive of the same volume, and vice
  // versa — otherwise some exchange_halo call would deadlock or mismatch.
  std::map<std::tuple<int, int, int>, std::size_t> sends, recvs;
  for (int r = 0; r < p.size(); ++r) {
    const auto sched = plan_halo(p, r, spec);
    for (const auto& phase : sched.phases) {
      for (const auto& s : phase.sends) {
        auto [it, inserted] =
            sends.emplace(std::make_tuple(r, s.peer, s.tag), s.box.volume());
        EXPECT_TRUE(inserted) << "duplicate send key";
        EXPECT_GE(s.tag, spec.base_tag);
        EXPECT_LT(s.tag, spec.base_tag + 2 * static_cast<int>(N));
      }
      for (const auto& rc : phase.recvs) {
        auto [it, inserted] =
            recvs.emplace(std::make_tuple(rc.peer, r, rc.tag), rc.box.volume());
        EXPECT_TRUE(inserted) << "duplicate recv key";
      }
    }
  }
  EXPECT_EQ(sends.size(), recvs.size());
  for (const auto& [key, vol] : sends) {
    auto it = recvs.find(key);
    ASSERT_NE(it, recvs.end())
        << "unmatched send " << std::get<0>(key) << "->" << std::get<1>(key)
        << " tag " << std::get<2>(key);
    EXPECT_EQ(it->second, vol);
  }
}

TEST(HaloSchedule, SendRecvPairingAcrossWorlds) {
  for (int ranks = 1; ranks <= 16; ++ranks) {
    for (bool periodic : {false, true}) {
      const auto p = BlockPartition<2>::make(Extent<2>{{24, 18}}, ranks,
                                             {periodic, periodic});
      expect_send_recv_pairing(p, HaloSpec<2>{Extent<2>{{2, 2}}, 100});
    }
  }
}

TEST(HaloSchedule, SendRecvPairing4D) {
  for (int ranks : {1, 2, 3, 4, 6, 8, 12, 16}) {
    const auto p = BlockPartition<4>::make(Extent<4>{{8, 8, 8, 16}}, ranks,
                                           {true, true, true, true});
    expect_send_recv_pairing(p, HaloSpec<4>{Extent<4>{{1, 1, 1, 1}}, 0});
  }
}

TEST(HaloSchedule, ZeroWidthAxisHasNoPhase) {
  const BlockPartition<2> p(Extent<2>{{8, 8}}, {2, 2}, {true, true});
  const auto sched = plan_halo(p, 0, HaloSpec<2>{Extent<2>{{2, 0}}, 0});
  ASSERT_EQ(sched.phases.size(), 1u);
  EXPECT_EQ(sched.phases[0].axis, 0u);
}

TEST(HaloSchedule, NonPeriodicEdgeRankSkipsBoundaryFaces) {
  const BlockPartition<1> p(Extent<1>{{8}}, {2}, {false});
  const auto sched = plan_halo(p, 0, HaloSpec<1>{Extent<1>{{1}}, 0});
  ASSERT_EQ(sched.phases.size(), 1u);
  EXPECT_EQ(sched.phases[0].sends.size(), 1u);  // only the + face exists
  EXPECT_EQ(sched.phases[0].recvs.size(), 1u);
  EXPECT_EQ(sched.phases[0].sends[0].peer, 1);
}

// --- layout -----------------------------------------------------------------

TEST(TileLayout, MatchesGridFunctionsAddressing) {
  // 3D, ghost 2: offset(k,j,i) = (k+2)*sz + (j+2)*sy + (i+2), sy = nx+4.
  const auto l = TileLayout<3>::make(Extent<3>{{6, 5, 4}}, Extent<3>{{2, 2, 2}});
  const std::size_t sy = 6 + 4, sz = sy * (5 + 4);
  EXPECT_EQ(l.offset(Index<3>{{0, 0, 0}}), 2 * sz + 2 * sy + 2);
  EXPECT_EQ(l.offset(Index<3>{{-2, -2, -2}}), 0u);
  EXPECT_EQ(l.offset(Index<3>{{3, 1, 2}}), 4 * sz + 3 * sy + 5);
  EXPECT_EQ(l.total(), (6 + 4) * (5 + 4) * (4 + 4));
}

// --- end-to-end exchange over simrt ----------------------------------------

// Value encoding a global cell so any rank can predict any other rank's data.
double cell_value(std::ptrdiff_t gx, std::ptrdiff_t gy, std::size_t plane) {
  return static_cast<double>(plane) * 1.0e6 + static_cast<double>(gy) * 1.0e3 +
         static_cast<double>(gx);
}

TEST(ExchangeHalo, PeriodicGhostsCarryWrappedGlobalValues) {
  constexpr std::size_t kNx = 12, kNy = 10, kPlanes = 3;
  for (int ranks : {1, 2, 3, 4, 6, 8, 12}) {
    const auto p = BlockPartition<2>::make(Extent<2>{{kNx, kNy}}, ranks,
                                           {true, true});
    simrt::run(ranks, [&](simrt::Communicator& comm) {
      const int rank = comm.rank();
      const Extent<2> n = p.local_extent(rank);
      const Index<2> o = p.origin(rank);
      const HaloSpec<2> spec{Extent<2>{{2, 2}}, 500};
      const auto layout = TileLayout<2>::make(n, spec.width);
      std::vector<std::vector<double>> storage(
          kPlanes, std::vector<double>(layout.total(), -1.0));
      std::vector<double*> planes;
      for (auto& s : storage) planes.push_back(s.data());
      for (std::size_t pl = 0; pl < kPlanes; ++pl) {
        for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(n[1]); ++j) {
          for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n[0]); ++i) {
            storage[pl][layout.offset(Index<2>{{i, j}})] =
                cell_value(o[0] + i, o[1] + j, pl);
          }
        }
      }

      const auto sched = plan_halo(p, rank, spec);
      exchange_halo(comm, sched, layout, planes);

      // Every cell of the ghost-extended tile must now hold the value of its
      // periodically wrapped global cell.
      for (std::size_t pl = 0; pl < kPlanes; ++pl) {
        for (std::ptrdiff_t j = -2; j < static_cast<std::ptrdiff_t>(n[1]) + 2; ++j) {
          for (std::ptrdiff_t i = -2; i < static_cast<std::ptrdiff_t>(n[0]) + 2; ++i) {
            const auto wrap = [](std::ptrdiff_t v, std::size_t m) {
              const auto sm = static_cast<std::ptrdiff_t>(m);
              return ((v % sm) + sm) % sm;
            };
            const double want =
                cell_value(wrap(o[0] + i, kNx), wrap(o[1] + j, kNy), pl);
            const double got = storage[pl][layout.offset(Index<2>{{i, j}})];
            ASSERT_EQ(got, want) << "ranks=" << ranks << " rank=" << rank
                                 << " plane=" << pl << " (" << i << "," << j
                                 << ")";
          }
        }
      }
    });
  }
}

TEST(ExchangeHalo, NonPeriodicBoundaryGhostsUntouched) {
  constexpr std::size_t kN = 9;
  const int ranks = 4;
  const auto p =
      BlockPartition<2>::make(Extent<2>{{kN, kN}}, ranks, {false, false});
  simrt::run(ranks, [&](simrt::Communicator& comm) {
    const int rank = comm.rank();
    const Extent<2> n = p.local_extent(rank);
    const Index<2> o = p.origin(rank);
    const HaloSpec<2> spec{Extent<2>{{1, 1}}, 0};
    const auto layout = TileLayout<2>::make(n, spec.width);
    std::vector<double> data(layout.total(), -7.0);
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(n[1]); ++j) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n[0]); ++i) {
        data[layout.offset(Index<2>{{i, j}})] = cell_value(o[0] + i, o[1] + j, 0);
      }
    }
    double* plane = data.data();
    exchange_halo(comm, plan_halo(p, rank, spec), layout,
                  std::span<double* const>(&plane, 1));

    for (std::ptrdiff_t j = -1; j < static_cast<std::ptrdiff_t>(n[1]) + 1; ++j) {
      for (std::ptrdiff_t i = -1; i < static_cast<std::ptrdiff_t>(n[0]) + 1; ++i) {
        const std::ptrdiff_t gx = o[0] + i, gy = o[1] + j;
        const bool outside = gx < 0 || gy < 0 ||
                             gx >= static_cast<std::ptrdiff_t>(kN) ||
                             gy >= static_cast<std::ptrdiff_t>(kN);
        const double got = data[layout.offset(Index<2>{{i, j}})];
        if (outside) {
          EXPECT_EQ(got, -7.0) << "domain-boundary ghost was written";
        } else {
          EXPECT_EQ(got, cell_value(gx, gy, 0));
        }
      }
    }
  });
}

TEST(ExchangeHalo, SelfExchangeOnSingleRankPeriodicWorld) {
  // P=1 with periodic axes: the rank is its own neighbor in every direction
  // and the exchange must wrap its own data into its ghosts.
  const BlockPartition<2> p(Extent<2>{{6, 4}}, {1, 1}, {true, true});
  simrt::run(1, [&](simrt::Communicator& comm) {
    const HaloSpec<2> spec{Extent<2>{{1, 1}}, 42};
    const auto layout = TileLayout<2>::make(Extent<2>{{6, 4}}, spec.width);
    std::vector<double> data(layout.total(), -1.0);
    for (std::ptrdiff_t j = 0; j < 4; ++j) {
      for (std::ptrdiff_t i = 0; i < 6; ++i) {
        data[layout.offset(Index<2>{{i, j}})] = cell_value(i, j, 0);
      }
    }
    double* plane = data.data();
    exchange_halo(comm, plan_halo(p, 0, spec), layout,
                  std::span<double* const>(&plane, 1));
    EXPECT_EQ(data[layout.offset(Index<2>{{-1, 0}})], cell_value(5, 0, 0));
    EXPECT_EQ(data[layout.offset(Index<2>{{6, 0}})], cell_value(0, 0, 0));
    EXPECT_EQ(data[layout.offset(Index<2>{{0, -1}})], cell_value(0, 3, 0));
    EXPECT_EQ(data[layout.offset(Index<2>{{-1, -1}})], cell_value(5, 3, 0));
  });
}

}  // namespace
}  // namespace vpar::part
