#include <gtest/gtest.h>

#include <random>

#include "gtc/deposition.hpp"
#include "gtc/simulation.hpp"
#include "simrt/runtime.hpp"

namespace vpar::gtc {
namespace {

ParticleSet random_particles(const TorusGrid& grid, std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(0.0, static_cast<double>(grid.ngx()));
  std::uniform_real_distribution<double> uy(0.0, static_cast<double>(grid.ngy()));
  std::uniform_real_distribution<double> uz(grid.zeta_min(), grid.zeta_max());
  std::uniform_real_distribution<double> uq(-1.0, 1.0);
  ParticleSet p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(ux(rng), uy(rng), uz(rng), 0.0, 1.1, uq(rng));
  }
  return p;
}

class ThreadCounts : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCounts, ThreadedDepositionMatchesScatter) {
  const int threads = GetParam();
  simrt::run(1, [&](simrt::Communicator& comm) {
    TorusGrid ref(20, 16, 4, comm.size(), comm.rank());
    TorusGrid got(20, 16, 4, comm.size(), comm.rank());
    const auto p = random_particles(ref, 1000, 13);
    deposit(p, ref, DepositVariant::Scatter);
    deposit_threaded(p, got, threads);
    for (std::size_t i = 0; i < ref.charge().size(); ++i) {
      EXPECT_NEAR(got.charge()[i], ref.charge()[i], 1e-11);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadCounts, ::testing::Values(1, 2, 3, 8));

TEST(Hybrid, SimulationWithThreadsConservesEverything) {
  simrt::run(2, [](simrt::Communicator& comm) {
    Options opt;
    opt.ngx = opt.ngy = 12;
    opt.nplanes = 4;
    opt.particles_per_cell = 4;
    opt.threads = 4;  // hybrid: 2 ranks x 4 loop-level threads
    Simulation sim(comm, opt);
    sim.load_particles();
    const double q = sim.global_particle_charge();
    const auto n = sim.global_particle_count();
    sim.run(4);
    EXPECT_EQ(sim.global_particle_count(), n);
    sim.deposit_phase();
    EXPECT_NEAR(sim.global_grid_charge(), q, 1e-9);
  });
}

TEST(Hybrid, ThreadedRunMatchesSerialRunPhysics) {
  auto energy = [](int threads) {
    double e = 0.0;
    simrt::run(2, [&](simrt::Communicator& comm) {
      Options opt;
      opt.ngx = opt.ngy = 12;
      opt.nplanes = 4;
      opt.particles_per_cell = 4;
      opt.threads = threads;
      Simulation sim(comm, opt);
      sim.load_particles();
      sim.run(3);
      const double fe = sim.field_energy();
      if (comm.rank() == 0) e = fe;
    });
    return e;
  };
  const double serial = energy(1);
  const double hybrid = energy(4);
  EXPECT_NEAR(hybrid, serial, std::abs(serial) * 1e-8 + 1e-12);
}

}  // namespace
}  // namespace vpar::gtc
