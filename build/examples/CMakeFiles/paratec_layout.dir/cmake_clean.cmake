file(REMOVE_RECURSE
  "CMakeFiles/paratec_layout.dir/paratec_layout.cpp.o"
  "CMakeFiles/paratec_layout.dir/paratec_layout.cpp.o.d"
  "paratec_layout"
  "paratec_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paratec_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
