# Empty compiler generated dependencies file for paratec_layout.
# This may be replaced when dependencies are built.
