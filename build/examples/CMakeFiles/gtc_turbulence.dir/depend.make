# Empty dependencies file for gtc_turbulence.
# This may be replaced when dependencies are built.
