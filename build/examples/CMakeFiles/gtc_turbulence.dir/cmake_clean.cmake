file(REMOVE_RECURSE
  "CMakeFiles/gtc_turbulence.dir/gtc_turbulence.cpp.o"
  "CMakeFiles/gtc_turbulence.dir/gtc_turbulence.cpp.o.d"
  "gtc_turbulence"
  "gtc_turbulence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtc_turbulence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
