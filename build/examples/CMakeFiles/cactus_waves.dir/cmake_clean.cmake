file(REMOVE_RECURSE
  "CMakeFiles/cactus_waves.dir/cactus_waves.cpp.o"
  "CMakeFiles/cactus_waves.dir/cactus_waves.cpp.o.d"
  "cactus_waves"
  "cactus_waves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
