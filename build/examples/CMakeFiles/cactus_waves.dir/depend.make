# Empty dependencies file for cactus_waves.
# This may be replaced when dependencies are built.
