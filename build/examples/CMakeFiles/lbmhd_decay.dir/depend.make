# Empty dependencies file for lbmhd_decay.
# This may be replaced when dependencies are built.
