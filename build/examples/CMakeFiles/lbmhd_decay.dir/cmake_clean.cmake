file(REMOVE_RECURSE
  "CMakeFiles/lbmhd_decay.dir/lbmhd_decay.cpp.o"
  "CMakeFiles/lbmhd_decay.dir/lbmhd_decay.cpp.o.d"
  "lbmhd_decay"
  "lbmhd_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbmhd_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
