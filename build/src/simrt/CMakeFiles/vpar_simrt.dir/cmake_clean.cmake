file(REMOVE_RECURSE
  "CMakeFiles/vpar_simrt.dir/communicator.cpp.o"
  "CMakeFiles/vpar_simrt.dir/communicator.cpp.o.d"
  "CMakeFiles/vpar_simrt.dir/mailbox.cpp.o"
  "CMakeFiles/vpar_simrt.dir/mailbox.cpp.o.d"
  "CMakeFiles/vpar_simrt.dir/runtime.cpp.o"
  "CMakeFiles/vpar_simrt.dir/runtime.cpp.o.d"
  "libvpar_simrt.a"
  "libvpar_simrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_simrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
