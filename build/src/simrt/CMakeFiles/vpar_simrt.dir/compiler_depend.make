# Empty compiler generated dependencies file for vpar_simrt.
# This may be replaced when dependencies are built.
