file(REMOVE_RECURSE
  "libvpar_simrt.a"
)
