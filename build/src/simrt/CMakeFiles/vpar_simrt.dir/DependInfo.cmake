
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simrt/communicator.cpp" "src/simrt/CMakeFiles/vpar_simrt.dir/communicator.cpp.o" "gcc" "src/simrt/CMakeFiles/vpar_simrt.dir/communicator.cpp.o.d"
  "/root/repo/src/simrt/mailbox.cpp" "src/simrt/CMakeFiles/vpar_simrt.dir/mailbox.cpp.o" "gcc" "src/simrt/CMakeFiles/vpar_simrt.dir/mailbox.cpp.o.d"
  "/root/repo/src/simrt/runtime.cpp" "src/simrt/CMakeFiles/vpar_simrt.dir/runtime.cpp.o" "gcc" "src/simrt/CMakeFiles/vpar_simrt.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
