# Empty dependencies file for vpar_arch.
# This may be replaced when dependencies are built.
