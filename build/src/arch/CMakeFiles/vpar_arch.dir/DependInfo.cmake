
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cpu_model.cpp" "src/arch/CMakeFiles/vpar_arch.dir/cpu_model.cpp.o" "gcc" "src/arch/CMakeFiles/vpar_arch.dir/cpu_model.cpp.o.d"
  "/root/repo/src/arch/machine_model.cpp" "src/arch/CMakeFiles/vpar_arch.dir/machine_model.cpp.o" "gcc" "src/arch/CMakeFiles/vpar_arch.dir/machine_model.cpp.o.d"
  "/root/repo/src/arch/network_model.cpp" "src/arch/CMakeFiles/vpar_arch.dir/network_model.cpp.o" "gcc" "src/arch/CMakeFiles/vpar_arch.dir/network_model.cpp.o.d"
  "/root/repo/src/arch/platform.cpp" "src/arch/CMakeFiles/vpar_arch.dir/platform.cpp.o" "gcc" "src/arch/CMakeFiles/vpar_arch.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
