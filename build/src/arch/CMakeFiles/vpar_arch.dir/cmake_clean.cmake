file(REMOVE_RECURSE
  "CMakeFiles/vpar_arch.dir/cpu_model.cpp.o"
  "CMakeFiles/vpar_arch.dir/cpu_model.cpp.o.d"
  "CMakeFiles/vpar_arch.dir/machine_model.cpp.o"
  "CMakeFiles/vpar_arch.dir/machine_model.cpp.o.d"
  "CMakeFiles/vpar_arch.dir/network_model.cpp.o"
  "CMakeFiles/vpar_arch.dir/network_model.cpp.o.d"
  "CMakeFiles/vpar_arch.dir/platform.cpp.o"
  "CMakeFiles/vpar_arch.dir/platform.cpp.o.d"
  "libvpar_arch.a"
  "libvpar_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
