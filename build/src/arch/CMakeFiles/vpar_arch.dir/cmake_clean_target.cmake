file(REMOVE_RECURSE
  "libvpar_arch.a"
)
