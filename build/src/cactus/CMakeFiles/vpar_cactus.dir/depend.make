# Empty dependencies file for vpar_cactus.
# This may be replaced when dependencies are built.
