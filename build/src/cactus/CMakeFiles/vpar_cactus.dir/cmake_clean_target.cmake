file(REMOVE_RECURSE
  "libvpar_cactus.a"
)
