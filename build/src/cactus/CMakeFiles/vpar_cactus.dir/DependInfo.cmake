
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cactus/adm.cpp" "src/cactus/CMakeFiles/vpar_cactus.dir/adm.cpp.o" "gcc" "src/cactus/CMakeFiles/vpar_cactus.dir/adm.cpp.o.d"
  "/root/repo/src/cactus/boundary.cpp" "src/cactus/CMakeFiles/vpar_cactus.dir/boundary.cpp.o" "gcc" "src/cactus/CMakeFiles/vpar_cactus.dir/boundary.cpp.o.d"
  "/root/repo/src/cactus/evolve.cpp" "src/cactus/CMakeFiles/vpar_cactus.dir/evolve.cpp.o" "gcc" "src/cactus/CMakeFiles/vpar_cactus.dir/evolve.cpp.o.d"
  "/root/repo/src/cactus/exchange3d.cpp" "src/cactus/CMakeFiles/vpar_cactus.dir/exchange3d.cpp.o" "gcc" "src/cactus/CMakeFiles/vpar_cactus.dir/exchange3d.cpp.o.d"
  "/root/repo/src/cactus/workload.cpp" "src/cactus/CMakeFiles/vpar_cactus.dir/workload.cpp.o" "gcc" "src/cactus/CMakeFiles/vpar_cactus.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/vpar_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vpar_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
