# Empty compiler generated dependencies file for vpar_cactus.
# This may be replaced when dependencies are built.
