file(REMOVE_RECURSE
  "CMakeFiles/vpar_cactus.dir/adm.cpp.o"
  "CMakeFiles/vpar_cactus.dir/adm.cpp.o.d"
  "CMakeFiles/vpar_cactus.dir/boundary.cpp.o"
  "CMakeFiles/vpar_cactus.dir/boundary.cpp.o.d"
  "CMakeFiles/vpar_cactus.dir/evolve.cpp.o"
  "CMakeFiles/vpar_cactus.dir/evolve.cpp.o.d"
  "CMakeFiles/vpar_cactus.dir/exchange3d.cpp.o"
  "CMakeFiles/vpar_cactus.dir/exchange3d.cpp.o.d"
  "CMakeFiles/vpar_cactus.dir/workload.cpp.o"
  "CMakeFiles/vpar_cactus.dir/workload.cpp.o.d"
  "libvpar_cactus.a"
  "libvpar_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
