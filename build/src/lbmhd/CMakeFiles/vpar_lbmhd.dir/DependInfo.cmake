
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lbmhd/collision.cpp" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/collision.cpp.o" "gcc" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/collision.cpp.o.d"
  "/root/repo/src/lbmhd/exchange.cpp" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/exchange.cpp.o" "gcc" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/exchange.cpp.o.d"
  "/root/repo/src/lbmhd/simulation.cpp" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/simulation.cpp.o" "gcc" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/simulation.cpp.o.d"
  "/root/repo/src/lbmhd/stream.cpp" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/stream.cpp.o" "gcc" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/stream.cpp.o.d"
  "/root/repo/src/lbmhd/workload.cpp" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/workload.cpp.o" "gcc" "src/lbmhd/CMakeFiles/vpar_lbmhd.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/vpar_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vpar_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
