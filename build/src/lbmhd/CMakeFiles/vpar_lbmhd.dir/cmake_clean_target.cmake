file(REMOVE_RECURSE
  "libvpar_lbmhd.a"
)
