# Empty dependencies file for vpar_lbmhd.
# This may be replaced when dependencies are built.
