file(REMOVE_RECURSE
  "CMakeFiles/vpar_lbmhd.dir/collision.cpp.o"
  "CMakeFiles/vpar_lbmhd.dir/collision.cpp.o.d"
  "CMakeFiles/vpar_lbmhd.dir/exchange.cpp.o"
  "CMakeFiles/vpar_lbmhd.dir/exchange.cpp.o.d"
  "CMakeFiles/vpar_lbmhd.dir/simulation.cpp.o"
  "CMakeFiles/vpar_lbmhd.dir/simulation.cpp.o.d"
  "CMakeFiles/vpar_lbmhd.dir/stream.cpp.o"
  "CMakeFiles/vpar_lbmhd.dir/stream.cpp.o.d"
  "CMakeFiles/vpar_lbmhd.dir/workload.cpp.o"
  "CMakeFiles/vpar_lbmhd.dir/workload.cpp.o.d"
  "libvpar_lbmhd.a"
  "libvpar_lbmhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_lbmhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
