file(REMOVE_RECURSE
  "CMakeFiles/vpar_core.dir/app_registry.cpp.o"
  "CMakeFiles/vpar_core.dir/app_registry.cpp.o.d"
  "CMakeFiles/vpar_core.dir/profile_builder.cpp.o"
  "CMakeFiles/vpar_core.dir/profile_builder.cpp.o.d"
  "CMakeFiles/vpar_core.dir/report.cpp.o"
  "CMakeFiles/vpar_core.dir/report.cpp.o.d"
  "CMakeFiles/vpar_core.dir/table.cpp.o"
  "CMakeFiles/vpar_core.dir/table.cpp.o.d"
  "libvpar_core.a"
  "libvpar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
