file(REMOVE_RECURSE
  "libvpar_core.a"
)
