
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_registry.cpp" "src/core/CMakeFiles/vpar_core.dir/app_registry.cpp.o" "gcc" "src/core/CMakeFiles/vpar_core.dir/app_registry.cpp.o.d"
  "/root/repo/src/core/profile_builder.cpp" "src/core/CMakeFiles/vpar_core.dir/profile_builder.cpp.o" "gcc" "src/core/CMakeFiles/vpar_core.dir/profile_builder.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/vpar_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/vpar_core.dir/report.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/vpar_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/vpar_core.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vpar_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/vpar_simrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
