# Empty dependencies file for vpar_core.
# This may be replaced when dependencies are built.
