file(REMOVE_RECURSE
  "libvpar_fft.a"
)
