# Empty compiler generated dependencies file for vpar_fft.
# This may be replaced when dependencies are built.
