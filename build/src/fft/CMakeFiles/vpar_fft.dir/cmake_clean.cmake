file(REMOVE_RECURSE
  "CMakeFiles/vpar_fft.dir/fft1d.cpp.o"
  "CMakeFiles/vpar_fft.dir/fft1d.cpp.o.d"
  "CMakeFiles/vpar_fft.dir/fft3d.cpp.o"
  "CMakeFiles/vpar_fft.dir/fft3d.cpp.o.d"
  "CMakeFiles/vpar_fft.dir/fft3d_dist.cpp.o"
  "CMakeFiles/vpar_fft.dir/fft3d_dist.cpp.o.d"
  "CMakeFiles/vpar_fft.dir/fft_multi.cpp.o"
  "CMakeFiles/vpar_fft.dir/fft_multi.cpp.o.d"
  "libvpar_fft.a"
  "libvpar_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
