# Empty compiler generated dependencies file for vpar_gtc.
# This may be replaced when dependencies are built.
