
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtc/deposition.cpp" "src/gtc/CMakeFiles/vpar_gtc.dir/deposition.cpp.o" "gcc" "src/gtc/CMakeFiles/vpar_gtc.dir/deposition.cpp.o.d"
  "/root/repo/src/gtc/poisson.cpp" "src/gtc/CMakeFiles/vpar_gtc.dir/poisson.cpp.o" "gcc" "src/gtc/CMakeFiles/vpar_gtc.dir/poisson.cpp.o.d"
  "/root/repo/src/gtc/push.cpp" "src/gtc/CMakeFiles/vpar_gtc.dir/push.cpp.o" "gcc" "src/gtc/CMakeFiles/vpar_gtc.dir/push.cpp.o.d"
  "/root/repo/src/gtc/shift.cpp" "src/gtc/CMakeFiles/vpar_gtc.dir/shift.cpp.o" "gcc" "src/gtc/CMakeFiles/vpar_gtc.dir/shift.cpp.o.d"
  "/root/repo/src/gtc/simulation.cpp" "src/gtc/CMakeFiles/vpar_gtc.dir/simulation.cpp.o" "gcc" "src/gtc/CMakeFiles/vpar_gtc.dir/simulation.cpp.o.d"
  "/root/repo/src/gtc/workload.cpp" "src/gtc/CMakeFiles/vpar_gtc.dir/workload.cpp.o" "gcc" "src/gtc/CMakeFiles/vpar_gtc.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/vpar_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vpar_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/vpar_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
