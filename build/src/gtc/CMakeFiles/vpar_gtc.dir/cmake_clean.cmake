file(REMOVE_RECURSE
  "CMakeFiles/vpar_gtc.dir/deposition.cpp.o"
  "CMakeFiles/vpar_gtc.dir/deposition.cpp.o.d"
  "CMakeFiles/vpar_gtc.dir/poisson.cpp.o"
  "CMakeFiles/vpar_gtc.dir/poisson.cpp.o.d"
  "CMakeFiles/vpar_gtc.dir/push.cpp.o"
  "CMakeFiles/vpar_gtc.dir/push.cpp.o.d"
  "CMakeFiles/vpar_gtc.dir/shift.cpp.o"
  "CMakeFiles/vpar_gtc.dir/shift.cpp.o.d"
  "CMakeFiles/vpar_gtc.dir/simulation.cpp.o"
  "CMakeFiles/vpar_gtc.dir/simulation.cpp.o.d"
  "CMakeFiles/vpar_gtc.dir/workload.cpp.o"
  "CMakeFiles/vpar_gtc.dir/workload.cpp.o.d"
  "libvpar_gtc.a"
  "libvpar_gtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_gtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
