file(REMOVE_RECURSE
  "libvpar_gtc.a"
)
