file(REMOVE_RECURSE
  "CMakeFiles/vpar_paratec.dir/basis.cpp.o"
  "CMakeFiles/vpar_paratec.dir/basis.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/hamiltonian.cpp.o"
  "CMakeFiles/vpar_paratec.dir/hamiltonian.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/layout.cpp.o"
  "CMakeFiles/vpar_paratec.dir/layout.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/linalg.cpp.o"
  "CMakeFiles/vpar_paratec.dir/linalg.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/scf.cpp.o"
  "CMakeFiles/vpar_paratec.dir/scf.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/solver.cpp.o"
  "CMakeFiles/vpar_paratec.dir/solver.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/transform.cpp.o"
  "CMakeFiles/vpar_paratec.dir/transform.cpp.o.d"
  "CMakeFiles/vpar_paratec.dir/workload.cpp.o"
  "CMakeFiles/vpar_paratec.dir/workload.cpp.o.d"
  "libvpar_paratec.a"
  "libvpar_paratec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_paratec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
