# Empty dependencies file for vpar_paratec.
# This may be replaced when dependencies are built.
