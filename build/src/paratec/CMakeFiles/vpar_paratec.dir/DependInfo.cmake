
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paratec/basis.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/basis.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/basis.cpp.o.d"
  "/root/repo/src/paratec/hamiltonian.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/hamiltonian.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/hamiltonian.cpp.o.d"
  "/root/repo/src/paratec/layout.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/layout.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/layout.cpp.o.d"
  "/root/repo/src/paratec/linalg.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/linalg.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/linalg.cpp.o.d"
  "/root/repo/src/paratec/scf.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/scf.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/scf.cpp.o.d"
  "/root/repo/src/paratec/solver.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/solver.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/solver.cpp.o.d"
  "/root/repo/src/paratec/transform.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/transform.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/transform.cpp.o.d"
  "/root/repo/src/paratec/workload.cpp" "src/paratec/CMakeFiles/vpar_paratec.dir/workload.cpp.o" "gcc" "src/paratec/CMakeFiles/vpar_paratec.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/vpar_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vpar_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/vpar_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/vpar_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
