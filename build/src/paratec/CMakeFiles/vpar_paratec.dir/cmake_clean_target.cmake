file(REMOVE_RECURSE
  "libvpar_paratec.a"
)
