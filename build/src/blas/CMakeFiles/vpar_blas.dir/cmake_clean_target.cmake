file(REMOVE_RECURSE
  "libvpar_blas.a"
)
