# Empty dependencies file for vpar_blas.
# This may be replaced when dependencies are built.
