file(REMOVE_RECURSE
  "CMakeFiles/vpar_blas.dir/blas.cpp.o"
  "CMakeFiles/vpar_blas.dir/blas.cpp.o.d"
  "libvpar_blas.a"
  "libvpar_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
