# Empty compiler generated dependencies file for vpar_perf.
# This may be replaced when dependencies are built.
