file(REMOVE_RECURSE
  "libvpar_perf.a"
)
