file(REMOVE_RECURSE
  "CMakeFiles/vpar_perf.dir/kernel_profile.cpp.o"
  "CMakeFiles/vpar_perf.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/vpar_perf.dir/recorder.cpp.o"
  "CMakeFiles/vpar_perf.dir/recorder.cpp.o.d"
  "libvpar_perf.a"
  "libvpar_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
