
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_paper_shapes.cpp" "tests/CMakeFiles/test_paper_shapes.dir/test_paper_shapes.cpp.o" "gcc" "tests/CMakeFiles/test_paper_shapes.dir/test_paper_shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lbmhd/CMakeFiles/vpar_lbmhd.dir/DependInfo.cmake"
  "/root/repo/build/src/paratec/CMakeFiles/vpar_paratec.dir/DependInfo.cmake"
  "/root/repo/build/src/cactus/CMakeFiles/vpar_cactus.dir/DependInfo.cmake"
  "/root/repo/build/src/gtc/CMakeFiles/vpar_gtc.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/vpar_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vpar_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/vpar_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/vpar_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/vpar_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
