# Empty compiler generated dependencies file for test_simrt_stress.
# This may be replaced when dependencies are built.
