file(REMOVE_RECURSE
  "CMakeFiles/test_simrt_stress.dir/test_simrt_stress.cpp.o"
  "CMakeFiles/test_simrt_stress.dir/test_simrt_stress.cpp.o.d"
  "test_simrt_stress"
  "test_simrt_stress.pdb"
  "test_simrt_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simrt_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
