# Empty dependencies file for test_fft.
# This may be replaced when dependencies are built.
