# Empty compiler generated dependencies file for test_paratec_nonlocal.
# This may be replaced when dependencies are built.
