file(REMOVE_RECURSE
  "CMakeFiles/test_paratec_nonlocal.dir/test_paratec_nonlocal.cpp.o"
  "CMakeFiles/test_paratec_nonlocal.dir/test_paratec_nonlocal.cpp.o.d"
  "test_paratec_nonlocal"
  "test_paratec_nonlocal.pdb"
  "test_paratec_nonlocal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paratec_nonlocal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
