file(REMOVE_RECURSE
  "CMakeFiles/test_blas.dir/test_blas.cpp.o"
  "CMakeFiles/test_blas.dir/test_blas.cpp.o.d"
  "test_blas"
  "test_blas.pdb"
  "test_blas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
