# Empty dependencies file for test_cactus.
# This may be replaced when dependencies are built.
