file(REMOVE_RECURSE
  "CMakeFiles/test_cactus.dir/test_cactus.cpp.o"
  "CMakeFiles/test_cactus.dir/test_cactus.cpp.o.d"
  "test_cactus"
  "test_cactus.pdb"
  "test_cactus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
