# Empty dependencies file for test_paratec_scf.
# This may be replaced when dependencies are built.
