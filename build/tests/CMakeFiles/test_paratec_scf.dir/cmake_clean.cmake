file(REMOVE_RECURSE
  "CMakeFiles/test_paratec_scf.dir/test_paratec_scf.cpp.o"
  "CMakeFiles/test_paratec_scf.dir/test_paratec_scf.cpp.o.d"
  "test_paratec_scf"
  "test_paratec_scf.pdb"
  "test_paratec_scf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paratec_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
