# Empty dependencies file for test_gtc.
# This may be replaced when dependencies are built.
