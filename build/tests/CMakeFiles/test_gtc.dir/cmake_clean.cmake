file(REMOVE_RECURSE
  "CMakeFiles/test_gtc.dir/test_gtc.cpp.o"
  "CMakeFiles/test_gtc.dir/test_gtc.cpp.o.d"
  "test_gtc"
  "test_gtc.pdb"
  "test_gtc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
