# Empty compiler generated dependencies file for test_lbmhd.
# This may be replaced when dependencies are built.
