file(REMOVE_RECURSE
  "CMakeFiles/test_lbmhd.dir/test_lbmhd.cpp.o"
  "CMakeFiles/test_lbmhd.dir/test_lbmhd.cpp.o.d"
  "test_lbmhd"
  "test_lbmhd.pdb"
  "test_lbmhd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbmhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
