# Empty compiler generated dependencies file for test_simrt.
# This may be replaced when dependencies are built.
