file(REMOVE_RECURSE
  "CMakeFiles/test_simrt.dir/test_simrt.cpp.o"
  "CMakeFiles/test_simrt.dir/test_simrt.cpp.o.d"
  "test_simrt"
  "test_simrt.pdb"
  "test_simrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
