file(REMOVE_RECURSE
  "CMakeFiles/test_cactus_exchange.dir/test_cactus_exchange.cpp.o"
  "CMakeFiles/test_cactus_exchange.dir/test_cactus_exchange.cpp.o.d"
  "test_cactus_exchange"
  "test_cactus_exchange.pdb"
  "test_cactus_exchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cactus_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
