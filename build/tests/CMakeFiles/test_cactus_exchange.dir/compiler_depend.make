# Empty compiler generated dependencies file for test_cactus_exchange.
# This may be replaced when dependencies are built.
