# Empty compiler generated dependencies file for test_gtc_hybrid.
# This may be replaced when dependencies are built.
