file(REMOVE_RECURSE
  "CMakeFiles/test_gtc_hybrid.dir/test_gtc_hybrid.cpp.o"
  "CMakeFiles/test_gtc_hybrid.dir/test_gtc_hybrid.cpp.o.d"
  "test_gtc_hybrid"
  "test_gtc_hybrid.pdb"
  "test_gtc_hybrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtc_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
