file(REMOVE_RECURSE
  "CMakeFiles/test_lbmhd_physics.dir/test_lbmhd_physics.cpp.o"
  "CMakeFiles/test_lbmhd_physics.dir/test_lbmhd_physics.cpp.o.d"
  "test_lbmhd_physics"
  "test_lbmhd_physics.pdb"
  "test_lbmhd_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbmhd_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
