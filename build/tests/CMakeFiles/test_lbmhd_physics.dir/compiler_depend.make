# Empty compiler generated dependencies file for test_lbmhd_physics.
# This may be replaced when dependencies are built.
