file(REMOVE_RECURSE
  "CMakeFiles/test_cactus_integrators.dir/test_cactus_integrators.cpp.o"
  "CMakeFiles/test_cactus_integrators.dir/test_cactus_integrators.cpp.o.d"
  "test_cactus_integrators"
  "test_cactus_integrators.pdb"
  "test_cactus_integrators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cactus_integrators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
