# Empty dependencies file for test_cactus_integrators.
# This may be replaced when dependencies are built.
