file(REMOVE_RECURSE
  "CMakeFiles/test_paratec.dir/test_paratec.cpp.o"
  "CMakeFiles/test_paratec.dir/test_paratec.cpp.o.d"
  "test_paratec"
  "test_paratec.pdb"
  "test_paratec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paratec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
