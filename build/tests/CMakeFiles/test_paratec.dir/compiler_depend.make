# Empty compiler generated dependencies file for test_paratec.
# This may be replaced when dependencies are built.
