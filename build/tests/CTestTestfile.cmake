# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_simrt[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_lbmhd[1]_include.cmake")
include("/root/repo/build/tests/test_cactus[1]_include.cmake")
include("/root/repo/build/tests/test_gtc[1]_include.cmake")
include("/root/repo/build/tests/test_paratec[1]_include.cmake")
include("/root/repo/build/tests/test_cactus_integrators[1]_include.cmake")
include("/root/repo/build/tests/test_gtc_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_lbmhd_physics[1]_include.cmake")
include("/root/repo/build/tests/test_cactus_exchange[1]_include.cmake")
include("/root/repo/build/tests/test_simrt_stress[1]_include.cmake")
include("/root/repo/build/tests/test_paratec_scf[1]_include.cmake")
include("/root/repo/build/tests/test_paratec_nonlocal[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
