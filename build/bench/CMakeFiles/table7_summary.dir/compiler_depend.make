# Empty compiler generated dependencies file for table7_summary.
# This may be replaced when dependencies are built.
