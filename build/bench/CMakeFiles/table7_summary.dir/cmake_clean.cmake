file(REMOVE_RECURSE
  "CMakeFiles/table7_summary.dir/table7_summary.cpp.o"
  "CMakeFiles/table7_summary.dir/table7_summary.cpp.o.d"
  "table7_summary"
  "table7_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
