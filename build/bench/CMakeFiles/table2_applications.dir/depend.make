# Empty dependencies file for table2_applications.
# This may be replaced when dependencies are built.
