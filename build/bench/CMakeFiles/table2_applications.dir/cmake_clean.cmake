file(REMOVE_RECURSE
  "CMakeFiles/table2_applications.dir/table2_applications.cpp.o"
  "CMakeFiles/table2_applications.dir/table2_applications.cpp.o.d"
  "table2_applications"
  "table2_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
