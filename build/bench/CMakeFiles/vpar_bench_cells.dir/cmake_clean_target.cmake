file(REMOVE_RECURSE
  "libvpar_bench_cells.a"
)
