file(REMOVE_RECURSE
  "CMakeFiles/vpar_bench_cells.dir/cells.cpp.o"
  "CMakeFiles/vpar_bench_cells.dir/cells.cpp.o.d"
  "libvpar_bench_cells.a"
  "libvpar_bench_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpar_bench_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
