# Empty compiler generated dependencies file for vpar_bench_cells.
# This may be replaced when dependencies are built.
