file(REMOVE_RECURSE
  "CMakeFiles/table6_gtc.dir/table6_gtc.cpp.o"
  "CMakeFiles/table6_gtc.dir/table6_gtc.cpp.o.d"
  "table6_gtc"
  "table6_gtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_gtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
