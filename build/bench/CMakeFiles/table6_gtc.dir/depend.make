# Empty dependencies file for table6_gtc.
# This may be replaced when dependencies are built.
