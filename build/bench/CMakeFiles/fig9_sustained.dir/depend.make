# Empty dependencies file for fig9_sustained.
# This may be replaced when dependencies are built.
