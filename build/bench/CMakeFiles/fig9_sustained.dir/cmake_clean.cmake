file(REMOVE_RECURSE
  "CMakeFiles/fig9_sustained.dir/fig9_sustained.cpp.o"
  "CMakeFiles/fig9_sustained.dir/fig9_sustained.cpp.o.d"
  "fig9_sustained"
  "fig9_sustained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sustained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
