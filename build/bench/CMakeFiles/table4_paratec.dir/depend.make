# Empty dependencies file for table4_paratec.
# This may be replaced when dependencies are built.
