file(REMOVE_RECURSE
  "CMakeFiles/table4_paratec.dir/table4_paratec.cpp.o"
  "CMakeFiles/table4_paratec.dir/table4_paratec.cpp.o.d"
  "table4_paratec"
  "table4_paratec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_paratec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
