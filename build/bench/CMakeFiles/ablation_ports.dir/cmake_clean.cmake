file(REMOVE_RECURSE
  "CMakeFiles/ablation_ports.dir/ablation_ports.cpp.o"
  "CMakeFiles/ablation_ports.dir/ablation_ports.cpp.o.d"
  "ablation_ports"
  "ablation_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
