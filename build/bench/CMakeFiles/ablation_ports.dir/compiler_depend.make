# Empty compiler generated dependencies file for ablation_ports.
# This may be replaced when dependencies are built.
