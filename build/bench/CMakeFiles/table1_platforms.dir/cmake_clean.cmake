file(REMOVE_RECURSE
  "CMakeFiles/table1_platforms.dir/table1_platforms.cpp.o"
  "CMakeFiles/table1_platforms.dir/table1_platforms.cpp.o.d"
  "table1_platforms"
  "table1_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
