# Empty dependencies file for table1_platforms.
# This may be replaced when dependencies are built.
