# Empty compiler generated dependencies file for table5_cactus.
# This may be replaced when dependencies are built.
