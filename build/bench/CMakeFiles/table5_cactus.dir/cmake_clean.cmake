file(REMOVE_RECURSE
  "CMakeFiles/table5_cactus.dir/table5_cactus.cpp.o"
  "CMakeFiles/table5_cactus.dir/table5_cactus.cpp.o.d"
  "table5_cactus"
  "table5_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
