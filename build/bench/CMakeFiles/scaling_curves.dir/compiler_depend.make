# Empty compiler generated dependencies file for scaling_curves.
# This may be replaced when dependencies are built.
