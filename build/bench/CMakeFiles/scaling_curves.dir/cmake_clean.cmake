file(REMOVE_RECURSE
  "CMakeFiles/scaling_curves.dir/scaling_curves.cpp.o"
  "CMakeFiles/scaling_curves.dir/scaling_curves.cpp.o.d"
  "scaling_curves"
  "scaling_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
