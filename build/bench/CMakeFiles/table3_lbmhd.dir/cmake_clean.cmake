file(REMOVE_RECURSE
  "CMakeFiles/table3_lbmhd.dir/table3_lbmhd.cpp.o"
  "CMakeFiles/table3_lbmhd.dir/table3_lbmhd.cpp.o.d"
  "table3_lbmhd"
  "table3_lbmhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_lbmhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
