# Empty dependencies file for table3_lbmhd.
# This may be replaced when dependencies are built.
