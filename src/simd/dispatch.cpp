#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/simd.hpp"
#include "trace/metrics.hpp"

namespace vpar::simd {

namespace {

DispatchMode mode_from_env() {
  const char* env = std::getenv("VPAR_SIMD_DISPATCH");
  if (env == nullptr) return DispatchMode::Auto;
  if (std::strcmp(env, "scalar") == 0) return DispatchMode::ForceScalar;
  if (std::strcmp(env, "simd") == 0) return DispatchMode::ForceSimd;
  return DispatchMode::Auto;
}

std::atomic<DispatchMode>& mode_flag() {
  static std::atomic<DispatchMode> mode{mode_from_env()};
  return mode;
}

std::size_t detect_width() {
#if VPAR_SIMD_CLONE_AVX512
  if (__builtin_cpu_supports("avx512f")) return 8;
#endif
#if VPAR_SIMD_CLONE_AVX
  if (__builtin_cpu_supports("avx")) return 4;
#endif
  return VPAR_SIMD_HAVE_VEC ? 2 : 1;
}

}  // namespace

DispatchMode dispatch_mode() noexcept {
  return mode_flag().load(std::memory_order_relaxed);
}

void set_dispatch_mode(DispatchMode mode) noexcept {
  mode_flag().store(mode, std::memory_order_relaxed);
}

std::size_t preferred_width() noexcept {
  static const std::size_t width = detect_width();
  return width;
}

std::size_t active_width() noexcept {
  if (dispatch_mode() == DispatchMode::ForceScalar) return 1;
  return preferred_width();
}

std::size_t compiled_width_cap() noexcept { return VPAR_SIMD_WIDTH_MAX; }

const char* width_isa_name(std::size_t width) noexcept {
  switch (width) {
    case 8: return "avx512f";
    case 4: return "avx";
    case 2:
#if defined(__x86_64__)
      return "sse2";
#else
      return "vec128";
#endif
    default: return "scalar";
  }
}

void record_span(std::size_t width, std::size_t vector_iters,
                 std::size_t remainder) noexcept {
  record_spans(width, 1, vector_iters, remainder);
}

void record_spans(std::size_t width, std::size_t spans,
                  std::size_t vector_iters_per_span,
                  std::size_t remainder) noexcept {
  static auto& vec_iters = trace::Metrics::instance().counter("simd.vector_iters");
  static auto& rem_iters = trace::Metrics::instance().counter("simd.remainder_iters");
  static auto& lanes = trace::Metrics::instance().histogram("simd.lanes_active");
  const std::size_t vector_iters = spans * vector_iters_per_span;
  vec_iters.add(vector_iters);
  rem_iters.add(spans * remainder);
  lanes.record_many(width, vector_iters);
  if (remainder != 0) lanes.record_many(remainder, spans);
}

}  // namespace vpar::simd
