#pragma once

#include <cstddef>

namespace vpar::simd {

/// Runtime choice between a kernel's scalar reference path and its SIMD path.
/// Auto follows the VPAR_SIMD_DISPATCH environment variable (`scalar`,
/// `simd`, or `auto`; unset means auto = use SIMD whenever the build and the
/// CPU support it). The force modes exist for the equivalence tests and the
/// wallclock simd probe, which time/compare both paths in one process.
enum class DispatchMode { Auto, ForceScalar, ForceSimd };

[[nodiscard]] DispatchMode dispatch_mode() noexcept;
void set_dispatch_mode(DispatchMode mode) noexcept;

/// Widest double-lane count the build compiled *and* this CPU executes:
/// 8 with AVX-512F clones, 4 with AVX clones, 2 for baseline vector code,
/// 1 for scalar-only builds/compilers. Independent of the dispatch mode.
[[nodiscard]] std::size_t preferred_width() noexcept;

/// Width kernels should use right now: preferred_width(), or 1 when the
/// dispatch mode forces scalar.
[[nodiscard]] std::size_t active_width() noexcept;

/// True when active_width() > 1; kernels branch on this once per call.
[[nodiscard]] inline bool use_simd() noexcept { return active_width() > 1; }

/// Compile-time width cap of this build (the effective VPAR_SIMD setting).
[[nodiscard]] std::size_t compiled_width_cap() noexcept;

/// Human-readable ISA name for a width ("scalar", "sse2", "avx", "avx512f";
/// "vec128" for generic 2-lane vector code off x86-64).
[[nodiscard]] const char* width_isa_name(std::size_t width) noexcept;

/// Record one vectorized span with the simtrace metrics registry — the real
/// VOR/AVL analogues of the paper's hardware counters:
///   simd.vector_iters    += vector_iters   (full-width iterations)
///   simd.remainder_iters += remainder      (scalar tail iterations)
///   simd.lanes_active    histogram: `width` observed vector_iters times,
///                        `remainder` observed once (the partial iteration),
/// so sum/count of the histogram is the achieved average vector length.
void record_span(std::size_t width, std::size_t vector_iters,
                 std::size_t remainder) noexcept;

/// record_span for `spans` equally-shaped spans in one call (e.g. the blocks
/// of one FFT stage, which all share the same trip count): each span ran
/// `vector_iters_per_span` full-width iterations plus one partial iteration
/// of `remainder` active lanes (0 = no partial iteration).
void record_spans(std::size_t width, std::size_t spans,
                  std::size_t vector_iters_per_span,
                  std::size_t remainder) noexcept;

}  // namespace vpar::simd
