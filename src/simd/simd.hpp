#pragma once

#include <cstddef>

/// Portable width-agnostic SIMD primitives over GCC/Clang vector extensions,
/// with a scalar (width 1) fallback that compiles everywhere.
///
/// Design rules, learned the hard way on GCC 12:
///  - Vector values are *raw* vector-extension typedefs, not structs wrapping
///    them. A struct-of-vector forces element-wise SRA through the baseline
///    ABI and GCC lowers broadcasts into per-lane masked vbroadcastsd chains
///    (~4x slower than scalar). Raw vector types carry +,-,*,/ natively.
///  - Every primitive is force-inlined. Kernel bodies are templates over the
///    width, instantiated inside `__attribute__((target(...)))` clones; if a
///    body is not inlined into the clone it compiles at the baseline ISA and
///    wide vectors are emulated through the stack.
///  - Loads and stores go through __builtin_memcpy, so unaligned pointers are
///    always fine and the tail of an array is never touched by a lane that
///    was not asked for.
///  - SIMD translation units are compiled with -ffp-contract=off (see
///    vpar_simd_kernel_sources in src/simd/CMakeLists.txt): inside an AVX-512
///    clone GCC would otherwise contract a*b+c into an FMA and break bitwise
///    scalar/SIMD equivalence.
///
/// Width configuration: VPAR_SIMD_WIDTH_CAP (1, 2, 4 or 8 doubles) is set by
/// the VPAR_SIMD CMake option. The *effective* cap additionally requires
/// vector-extension support; on other compilers everything degrades to the
/// scalar path. x86-64 builds keep the baseline ISA (no -m flags — only
/// VPAR_NATIVE changes that) and reach AVX/AVX-512 through per-function
/// target attributes plus runtime dispatch (simd/dispatch.hpp).

#ifndef VPAR_SIMD_WIDTH_CAP
#define VPAR_SIMD_WIDTH_CAP 1
#endif

#if defined(__GNUC__) && VPAR_SIMD_WIDTH_CAP > 1
#define VPAR_SIMD_HAVE_VEC 1
#define VPAR_SIMD_WIDTH_MAX VPAR_SIMD_WIDTH_CAP
#else
#define VPAR_SIMD_HAVE_VEC 0
#define VPAR_SIMD_WIDTH_MAX 1
#endif

// Function-multiversioning clones are an x86-64 mechanism (target("avx") /
// target("avx512f") + __builtin_cpu_supports). Elsewhere the generic W=2
// vector code compiles for whatever SIMD the baseline ISA has.
#if VPAR_SIMD_HAVE_VEC && defined(__x86_64__)
#define VPAR_SIMD_CLONE_AVX (VPAR_SIMD_WIDTH_MAX >= 4)
#define VPAR_SIMD_CLONE_AVX512 (VPAR_SIMD_WIDTH_MAX >= 8)
#else
#define VPAR_SIMD_CLONE_AVX 0
#define VPAR_SIMD_CLONE_AVX512 0
#endif

#if defined(__GNUC__)
#define VPAR_SIMD_INLINE __attribute__((always_inline)) inline
#else
#define VPAR_SIMD_INLINE inline
#endif

namespace vpar::simd {

template <std::size_t W>
struct native_vec;  // specialized for every supported width

/// Width 1: plain double, so width-templated kernel bodies double as their
/// own scalar tail (instantiate with W=1) with the exact scalar semantics.
template <>
struct native_vec<1> {
  using type = double;
};

#if VPAR_SIMD_HAVE_VEC
// The vector_size must be a literal per specialization: a dependent
// `vector_size(W * sizeof(double))` inside a template silently degenerates
// to plain double on GCC 12.
template <>
struct native_vec<2> {
  typedef double type __attribute__((vector_size(16)));
};
template <>
struct native_vec<4> {
  typedef double type __attribute__((vector_size(32)));
};
template <>
struct native_vec<8> {
  typedef double type __attribute__((vector_size(64)));
};
#endif

template <std::size_t W>
using vec = typename native_vec<W>::type;

/// Unaligned load of W consecutive doubles.
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> load(const double* p) {
  if constexpr (W == 1) {
    return *p;
  } else {
    vec<W> r;
    __builtin_memcpy(&r, p, sizeof(r));
    return r;
  }
}

/// Unaligned store of W consecutive doubles.
template <std::size_t W>
VPAR_SIMD_INLINE void store(double* p, vec<W> v) {
  if constexpr (W == 1) {
    *p = v;
  } else {
    __builtin_memcpy(p, &v, sizeof(v));
  }
}

/// All lanes = x. The shufflevector-of-one-element form is the only idiom
/// GCC 12 reliably lowers to a single vbroadcastsd inside target clones.
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> splat(double x) {
  if constexpr (W == 1) {
    return x;
  }
#if VPAR_SIMD_HAVE_VEC
  else {
    vec<W> o{x};
    if constexpr (W == 2) {
      return __builtin_shufflevector(o, o, 0, 0);
    } else if constexpr (W == 4) {
      return __builtin_shufflevector(o, o, 0, 0, 0, 0);
    } else {
      static_assert(W == 8);
      return __builtin_shufflevector(o, o, 0, 0, 0, 0, 0, 0, 0, 0);
    }
  }
#endif
}

/// a*b + c without FMA contraction (the SIMD TUs build with
/// -ffp-contract=off), so each lane rounds exactly like the scalar `a*b + c`.
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> mul_add(vec<W> a, vec<W> b, vec<W> c) {
  return a * b + c;
}

/// Lane sum in ascending lane order (left-to-right), so the result is
/// reproducible across widths of the *same* W; across different widths the
/// reassociation changes rounding — callers get <= a few ULP, not bitwise.
template <std::size_t W>
VPAR_SIMD_INLINE double reduce_add(vec<W> v) {
  if constexpr (W == 1) {
    return v;
  } else {
    double s = v[0];
    for (std::size_t i = 1; i < W; ++i) s += v[i];
    return s;
  }
}

/// Lane l takes base[idx[l]]: the portable gather (unrolled scalar loads).
template <std::size_t W, typename Index>
VPAR_SIMD_INLINE vec<W> gather(const double* base, const Index* idx) {
  if constexpr (W == 1) {
    return base[idx[0]];
  } else {
    vec<W> r;
    for (std::size_t l = 0; l < W; ++l) r[l] = base[idx[l]];
    return r;
  }
}

// --- complex helpers --------------------------------------------------------
// Interleaved re,im layout, W/2 complex numbers per vector (W >= 2).

/// [re0,im0,re1,im1,...] -> [im0,re0,im1,re1,...]
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> swap_pairs(vec<W> v) {
#if VPAR_SIMD_HAVE_VEC
  static_assert(W >= 2);
  if constexpr (W == 2) {
    return __builtin_shufflevector(v, v, 1, 0);
  } else if constexpr (W == 4) {
    return __builtin_shufflevector(v, v, 1, 0, 3, 2);
  } else {
    static_assert(W == 8);
    return __builtin_shufflevector(v, v, 1, 0, 3, 2, 5, 4, 7, 6);
  }
#else
  return v;
#endif
}

/// [re0,im0,re1,im1,...] -> [re0,re0,re1,re1,...]
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> dup_even(vec<W> v) {
#if VPAR_SIMD_HAVE_VEC
  static_assert(W >= 2);
  if constexpr (W == 2) {
    return __builtin_shufflevector(v, v, 0, 0);
  } else if constexpr (W == 4) {
    return __builtin_shufflevector(v, v, 0, 0, 2, 2);
  } else {
    static_assert(W == 8);
    return __builtin_shufflevector(v, v, 0, 0, 2, 2, 4, 4, 6, 6);
  }
#else
  return v;
#endif
}

/// [re0,im0,re1,im1,...] -> [im0,im0,im1,im1,...]
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> dup_odd(vec<W> v) {
#if VPAR_SIMD_HAVE_VEC
  static_assert(W >= 2);
  if constexpr (W == 2) {
    return __builtin_shufflevector(v, v, 1, 1);
  } else if constexpr (W == 4) {
    return __builtin_shufflevector(v, v, 1, 1, 3, 3);
  } else {
    static_assert(W == 8);
    return __builtin_shufflevector(v, v, 1, 1, 3, 3, 5, 5, 7, 7);
  }
#else
  return v;
#endif
}

/// [-1,+1,-1,+1,...]: with `t = wre*b + alt * (wim*swap_pairs(b))` this forms
/// the complex product (b * w) whose lanes round exactly like the scalar
/// `re*w.re - im*w.im` / `re*w.im + im*w.re` (IEEE: x + (-y) == x - y and
/// (-1)*y == -y are exact).
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> alt_sign() {
  static_assert(W >= 2);
#if VPAR_SIMD_HAVE_VEC
  if constexpr (W == 2) {
    return vec<W>{-1.0, 1.0};
  } else if constexpr (W == 4) {
    return vec<W>{-1.0, 1.0, -1.0, 1.0};
  } else {
    static_assert(W == 8);
    return vec<W>{-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0};
  }
#else
  return -1.0;
#endif
}

/// [e,o,e,o,...]: broadcast an interleaved (even,odd) pair — the complex
/// analogue of splat (e.g. a scalar complex coefficient against a row of
/// interleaved complexes).
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> splat_pair(double e, double o) {
  static_assert(W >= 2);
#if VPAR_SIMD_HAVE_VEC
  vec<2> p{e, o};
  if constexpr (W == 2) {
    return p;
  } else if constexpr (W == 4) {
    return __builtin_shufflevector(p, p, 0, 1, 0, 1);
  } else {
    static_assert(W == 8);
    return __builtin_shufflevector(p, p, 0, 1, 0, 1, 0, 1, 0, 1);
  }
#else
  return e;
#endif
}

/// [+1,-1,+1,-1,...]: multiplying an interleaved complex vector by this
/// conjugates every pair exactly ((+1)*re and (-1)*im are exact in IEEE).
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> conj_mask() {
  static_assert(W >= 2);
#if VPAR_SIMD_HAVE_VEC
  if constexpr (W == 2) {
    return vec<W>{1.0, -1.0};
  } else if constexpr (W == 4) {
    return vec<W>{1.0, -1.0, 1.0, -1.0};
  } else {
    static_assert(W == 8);
    return vec<W>{1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  }
#else
  return 1.0;
#endif
}

/// Complex multiply of interleaved pairs by interleaved pairs, scalar
/// rounding order per lane pair (see alt_sign).
template <std::size_t W>
VPAR_SIMD_INLINE vec<W> complex_mul(vec<W> a, vec<W> b) {
  return dup_even<W>(b) * a + alt_sign<W>() * (dup_odd<W>(b) * swap_pairs<W>(a));
}

}  // namespace vpar::simd
