#include "qcd/dslash.hpp"

#include "perf/recorder.hpp"
#include "qcd/dslash_kernel.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace vpar::qcd {

namespace detail {

void dslash_row(const RowPointers& p, std::size_t n) {
  dslash_span_w<1>(p, n);
}

}  // namespace detail

void apply_dslash(std::array<double*, kPlanes> out,
                  std::array<const double*, kPlanes> src, const HalfGeom& geom,
                  int target_parity) {
  const std::size_t nxh = geom.n[0];
  const std::size_t nyl = geom.n[1], nzl = geom.n[2], ntl = geom.n[3];
  const std::size_t rows = nyl * nzl * ntl;
  trace::TraceSpan span("qcd.dslash", static_cast<std::int64_t>(nxh),
                        static_cast<std::int64_t>(rows));
  const bool simd_path = simd::use_simd();

  // Rows write disjoint x spans of every output plane, so splitting the row
  // sweep across idle pool workers is bitwise-safe (see simrt/parallel.hpp).
  simrt::parallel_for(0, rows, 0, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const auto y = static_cast<std::ptrdiff_t>(r % nyl);
      const auto z = static_cast<std::ptrdiff_t>((r / nyl) % nzl);
      const auto t = static_cast<std::ptrdiff_t>(r / (nyl * nzl));
      const std::ptrdiff_t gy = geom.origin[1] + y;
      const std::ptrdiff_t gz = geom.origin[2] + z;
      const std::ptrdiff_t gt = geom.origin[3] + t;
      // Full-x parity of this row's target-parity sites. Block x origins are
      // even (enforced by the decomposition), so global and local x parity
      // agree; x+1 neighbors sit at half index xh+q, x-1 at xh+q-1.
      const std::ptrdiff_t q = (target_parity + gy + gz + gt) & 1;

      detail::RowPointers p;
      for (std::size_t mu = 0; mu < 4; ++mu) {
        p.eta[mu] = staggered_eta(mu, q, gy, gz);
      }
      const part::Index<4> row_idx{{0, y, z, t}};
      const std::size_t base = geom.layout.offset(row_idx);
      const auto sy = static_cast<std::ptrdiff_t>(geom.layout.stride[1]);
      const auto sz = static_cast<std::ptrdiff_t>(geom.layout.stride[2]);
      const auto st = static_cast<std::ptrdiff_t>(geom.layout.stride[3]);
      for (std::size_t pl = 0; pl < kPlanes; ++pl) {
        p.out[pl] = out[pl] + base;
        const double* s = src[pl] + base;
        p.fwd[0][pl] = s + q;
        p.bwd[0][pl] = s + q - 1;
        p.fwd[1][pl] = s + sy;
        p.bwd[1][pl] = s - sy;
        p.fwd[2][pl] = s + sz;
        p.bwd[2][pl] = s - sz;
        p.fwd[3][pl] = s + st;
        p.bwd[3][pl] = s - st;
      }
      if (simd_path) {
        detail::dslash_row_simd(p, nxh);
      } else {
        detail::dslash_row(p, nxh);
      }
    }
  });

  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(rows);
  rec.trips = static_cast<double>(nxh);
  rec.flops_per_trip = dslash_flops_per_site();
  rec.bytes_per_trip = dslash_bytes_per_site();
  rec.access = perf::AccessPattern::Stream;
  perf::record_loop("dslash", rec);

  static trace::Counter& sites =
      trace::Metrics::instance().counter("qcd.dslash_sites");
  sites.add(rows * nxh);
}

}  // namespace vpar::qcd
