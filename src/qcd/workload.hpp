#pragma once

#include <array>

#include "arch/machine_model.hpp"

namespace vpar::qcd {

/// One QCD scaling-study cell: global full lattice, concurrency, timesteps.
struct ScalingConfig {
  std::size_t nx = 32, ny = 32, nz = 32, nt = 64;
  int procs = 16;
  int steps = 100;
  int threads_per_rank = 1;  ///< hybrid helpers per rank
};

/// Per-axis halo bytes one rank sends per exchange (both directions, all
/// kPlanes planes), evaluated on the even/odd half lattice the way
/// part::plan_halo grows the phase boxes axis by axis.
[[nodiscard]] std::array<double, 4> halo_bytes_per_exchange(
    const ScalingConfig& config);

/// Baseline algorithmic flops of a run: two dslash sweeps (even and odd
/// targets) cover every full-lattice site once per step.
[[nodiscard]] double baseline_flops(const ScalingConfig& config);

/// Synthesize the per-rank AppProfile for a paper-scale QCD run. Loop
/// records carry the same per-site constants and shapes as the instrumented
/// dslash kernel; communication volumes follow the planned halo schedule at
/// the target scale (tests pin the synthesized counts against profiles
/// measured from real small runs).
[[nodiscard]] arch::AppProfile make_profile(const ScalingConfig& config);

}  // namespace vpar::qcd
