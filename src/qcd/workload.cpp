#include "qcd/workload.hpp"

#include <stdexcept>

#include "qcd/lattice.hpp"
#include "qcd/simulation.hpp"

namespace vpar::qcd {

namespace {

/// Rank 0's half-lattice extents under the grid resolve_dims would build.
/// Rank 0 holds the front-loaded (largest) blocks, which is also the
/// critical-path rank the AppProfile convention wants.
part::Extent<4> rank0_half_extent(const ScalingConfig& c) {
  Options opt;
  opt.nx = c.nx;
  opt.ny = c.ny;
  opt.nz = c.nz;
  opt.nt = c.nt;
  const auto dims = Simulation::resolve_dims(opt, c.procs);
  const part::BlockPartition<4> half(
      part::Extent<4>{{c.nx / 2, c.ny, c.nz, c.nt}}, dims,
      {true, true, true, true});
  if (half.size() != c.procs) {
    throw std::runtime_error("qcd::make_profile: dims product != procs");
  }
  return half.local_extent(0);
}

}  // namespace

double baseline_flops(const ScalingConfig& c) {
  const double sites = static_cast<double>(c.nx) * static_cast<double>(c.ny) *
                       static_cast<double>(c.nz) * static_cast<double>(c.nt);
  return sites * static_cast<double>(c.steps) * dslash_flops_per_site();
}

std::array<double, 4> halo_bytes_per_exchange(const ScalingConfig& c) {
  const part::Extent<4> n = rank0_half_extent(c);
  const double nxh = static_cast<double>(n[0]);
  const double nyl = static_cast<double>(n[1]);
  const double nzl = static_cast<double>(n[2]);
  const double ntl = static_cast<double>(n[3]);
  // plan_halo grows each phase box by the ghosts of the axes already swept,
  // so later faces are wider; both directions of an axis send the same face.
  const std::array<double, 4> face = {
      nyl * nzl * ntl,
      (nxh + 2.0) * nzl * ntl,
      (nxh + 2.0) * (nyl + 2.0) * ntl,
      (nxh + 2.0) * (nyl + 2.0) * (nzl + 2.0),
  };
  std::array<double, 4> bytes{};
  for (std::size_t a = 0; a < 4; ++a) {
    bytes[a] = 2.0 * face[a] * static_cast<double>(kPlanes) * sizeof(double);
  }
  return bytes;
}

arch::AppProfile make_profile(const ScalingConfig& c) {
  if (c.threads_per_rank < 1) {
    throw std::runtime_error("qcd::make_profile: threads_per_rank < 1");
  }
  const part::Extent<4> n = rank0_half_extent(c);
  const double nxh = static_cast<double>(n[0]);
  const double rows = static_cast<double>(n[1] * n[2] * n[3]);
  const double steps = c.steps;

  arch::AppProfile app;
  app.procs = c.procs;
  app.threads_per_rank = c.threads_per_rank;
  app.baseline_flops = baseline_flops(c);

  // --- dslash (shape mirrors apply_dslash: one record per sweep, two
  // sweeps — even and odd targets — per step) ------------------------------
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 2.0 * rows * steps;
    rec.trips = nxh;
    rec.flops_per_trip = dslash_flops_per_site();
    rec.bytes_per_trip = dslash_bytes_per_site();
    rec.access = perf::AccessPattern::Stream;
    app.kernels.record("dslash", rec);
  }

  // --- halo traffic (exchange_halo posts receives before packing, so every
  // phase is one overlap window; 2 sends per axis, 4 axes, 2 exchanges per
  // step on the all-periodic torus) ----------------------------------------
  const std::array<double, 4> per_axis = halo_bytes_per_exchange(c);
  double exchange_bytes = 0.0;
  for (double b : per_axis) exchange_bytes += b;
  app.comm.record_overlapped(perf::CommKind::PointToPoint, 16.0 * steps,
                             2.0 * exchange_bytes * steps);
  app.comm.record_overlap_window(8.0 * steps);

  // --- the per-step norm allreduce (normalize on) -------------------------
  app.comm.record(perf::CommKind::Reduction, steps, steps * sizeof(double));

  return app;
}

}  // namespace vpar::qcd
