#include "qcd/simulation.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace vpar::qcd {

namespace {

constexpr int kBaseTag = 300;  ///< halo tags 300..307 (4 axes x 2 directions)

/// SplitMix64-style position hash: deterministic, decomposition-independent.
double site_value(std::ptrdiff_t gx, std::ptrdiff_t gy, std::ptrdiff_t gz,
                  std::ptrdiff_t gt, std::size_t plane) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t v :
       {static_cast<std::uint64_t>(gx), static_cast<std::uint64_t>(gy),
        static_cast<std::uint64_t>(gz), static_cast<std::uint64_t>(gt),
        static_cast<std::uint64_t>(plane)}) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
  }
  // Map to [-1, 1) in exact steps of 2^-15.
  return static_cast<double>(static_cast<std::int64_t>(h >> 48) - 32768) /
         32768.0;
}

}  // namespace

std::array<int, 4> Simulation::resolve_dims(const Options& o, int ranks) {
  if (o.nx % 2 != 0) {
    throw std::runtime_error("qcd: nx must be even (even/odd split)");
  }
  const std::array<std::size_t, 4> half_ext{o.nx / 2, o.ny, o.nz, o.nt};
  std::array<int, 4> dims = o.dims;
  part::factor_rank_grid(ranks, half_ext, dims);
  // Every rank needs an even full-x block so the checkerboard origin parity
  // is uniform; if the auto-factorization landed x factors that break this,
  // refactor with the x axis pinned serial.
  if (o.nx % (2 * static_cast<std::size_t>(dims[0])) != 0 &&
      o.dims[0] == 0) {
    dims = o.dims;
    dims[0] = 1;
    part::factor_rank_grid(ranks, half_ext, dims);
  }
  return dims;
}

Simulation::Simulation(simrt::Communicator& comm, const Options& options)
    : comm_(&comm),
      options_(options),
      half_(part::Extent<4>{{options.nx / 2, options.ny, options.nz,
                             options.nt}},
            resolve_dims(options, comm.size()),
            {true, true, true, true}) {
  if (half_.size() != comm.size()) {
    throw std::runtime_error("qcd: dims product != communicator size");
  }
  const auto dims = half_.grid().dims;
  if (options_.nx % (2 * static_cast<std::size_t>(dims[0])) != 0 ||
      options_.ny % static_cast<std::size_t>(dims[1]) != 0 ||
      options_.nz % static_cast<std::size_t>(dims[2]) != 0 ||
      options_.nt % static_cast<std::size_t>(dims[3]) != 0) {
    // x must split into even blocks; y/z/t may be uneven (BlockPartition
    // front-loads the remainder) but a 1-deep halo needs every block >= 1.
    if (options_.nx % (2 * static_cast<std::size_t>(dims[0])) != 0) {
      throw std::runtime_error("qcd: nx must divide into even blocks");
    }
  }
  geom_.n = half_.local_extent(comm.rank());
  for (std::size_t a = 0; a < 4; ++a) {
    if (geom_.n[a] == 0) {
      throw std::runtime_error("qcd: empty local block (too many ranks)");
    }
  }
  geom_.layout = part::TileLayout<4>::make(geom_.n, {{1, 1, 1, 1}});
  const part::Index<4> o = half_.origin(comm.rank());
  geom_.origin = {{2 * o[0], o[1], o[2], o[3]}};
  schedule_ =
      part::plan_halo(half_, comm.rank(), {part::Extent<4>{{1, 1, 1, 1}},
                                           kBaseTag});
  even_.assign(kPlanes * geom_.layout.total(), 0.0);
  odd_.assign(kPlanes * geom_.layout.total(), 0.0);
}

void Simulation::initialize() {
  const auto& n = geom_.n;
  for (int parity = 0; parity < 2; ++parity) {
    std::vector<double>& field = parity == 0 ? even_ : odd_;
    for (std::size_t pl = 0; pl < kPlanes; ++pl) {
      double* pp = plane(field, pl);
      for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(n[3]); ++t) {
        for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(n[2]); ++z) {
          for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(n[1]); ++y) {
            const std::ptrdiff_t gy = geom_.origin[1] + y;
            const std::ptrdiff_t gz = geom_.origin[2] + z;
            const std::ptrdiff_t gt = geom_.origin[3] + t;
            const std::ptrdiff_t q = (parity + gy + gz + gt) & 1;
            for (std::ptrdiff_t xh = 0; xh < static_cast<std::ptrdiff_t>(n[0]);
                 ++xh) {
              const std::ptrdiff_t gx = geom_.origin[0] + 2 * xh + q;
              pp[geom_.layout.offset({{xh, y, z, t}})] =
                  site_value(gx, gy, gz, gt, pl);
            }
          }
        }
      }
    }
  }
}

void Simulation::exchange(std::vector<double>& field) {
  trace::TraceSpan span("qcd.exchange", geom_.n[0],
                        static_cast<std::int64_t>(geom_.n[1] * geom_.n[2] *
                                                  geom_.n[3]));
  const auto p = planes(field);
  part::exchange_halo(*comm_, schedule_, geom_.layout,
                      std::span<double* const>(p.data(), p.size()));
}

void Simulation::step() {
  trace::TraceSpan span("qcd.step");
  exchange(odd_);
  apply_dslash(planes(even_), cplanes(odd_), geom_, /*target_parity=*/0);
  exchange(even_);
  apply_dslash(planes(odd_), cplanes(even_), geom_, /*target_parity=*/1);
  if (options_.normalize) {
    double n2 = local_norm2();
    comm_->allreduce_inplace(std::span<double>(&n2, 1),
                             simrt::ReduceOp::Sum);
    scale_fields(1.0 / std::sqrt(n2));
  }
  static trace::Counter& steps = trace::Metrics::instance().counter("qcd.steps");
  steps.add();
}

void Simulation::run(int steps) {
  for (int s = 0; s < steps; ++s) step();
}

double Simulation::local_norm2() {
  const auto& n = geom_.n;
  double acc = 0.0;
  for (std::vector<double>* field : {&even_, &odd_}) {
    for (std::size_t pl = 0; pl < kPlanes; ++pl) {
      const double* pp = plane(*field, pl);
      for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(n[3]); ++t) {
        for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(n[2]); ++z) {
          for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(n[1]); ++y) {
            const double* row = pp + geom_.layout.offset({{0, y, z, t}});
            for (std::size_t xh = 0; xh < n[0]; ++xh) {
              acc += row[xh] * row[xh];
            }
          }
        }
      }
    }
  }
  return acc;
}

void Simulation::scale_fields(double s) {
  const auto& n = geom_.n;
  for (std::vector<double>* field : {&even_, &odd_}) {
    for (std::size_t pl = 0; pl < kPlanes; ++pl) {
      double* pp = plane(*field, pl);
      for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(n[3]); ++t) {
        for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(n[2]); ++z) {
          for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(n[1]); ++y) {
            double* row = pp + geom_.layout.offset({{0, y, z, t}});
            for (std::size_t xh = 0; xh < n[0]; ++xh) row[xh] *= s;
          }
        }
      }
    }
  }
}

Diagnostics Simulation::diagnostics() {
  exchange(odd_);
  exchange(even_);
  const auto& n = geom_.n;
  const LinkMatrices& u = links();
  double link = 0.0;
  // Re<psi(x), U_mu psi(x+mu)> over all sites: sweep target parity 0 then 1;
  // x+mu neighbors live on the opposite parity whose ghosts are now fresh.
  for (int parity = 0; parity < 2; ++parity) {
    std::vector<double>& tgt = parity == 0 ? even_ : odd_;
    std::vector<double>& src = parity == 0 ? odd_ : even_;
    const auto tp = planes(tgt);
    const auto sp = planes(src);
    const auto sy = static_cast<std::ptrdiff_t>(geom_.layout.stride[1]);
    const auto sz = static_cast<std::ptrdiff_t>(geom_.layout.stride[2]);
    const auto st = static_cast<std::ptrdiff_t>(geom_.layout.stride[3]);
    for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(n[3]); ++t) {
      for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(n[2]); ++z) {
        for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(n[1]); ++y) {
          const std::ptrdiff_t gy = geom_.origin[1] + y;
          const std::ptrdiff_t gz = geom_.origin[2] + z;
          const std::ptrdiff_t gt = geom_.origin[3] + t;
          const std::ptrdiff_t q = (parity + gy + gz + gt) & 1;
          const std::size_t base = geom_.layout.offset({{0, y, z, t}});
          const std::ptrdiff_t fo[4] = {q, sy, sz, st};
          for (std::size_t xh = 0; xh < n[0]; ++xh) {
            for (std::size_t mu = 0; mu < 4; ++mu) {
              for (std::size_t c = 0; c < kColors; ++c) {
                const double pr = tp[2 * c][base + xh];
                const double pi = tp[2 * c + 1][base + xh];
                for (std::size_t d = 0; d < kColors; ++d) {
                  const double fr = sp[2 * d][base + xh + fo[mu]];
                  const double fi = sp[2 * d + 1][base + xh + fo[mu]];
                  const double ur = u.re[mu][c][d], ui = u.im[mu][c][d];
                  link += pr * (ur * fr - ui * fi) + pi * (ur * fi + ui * fr);
                }
              }
            }
          }
        }
      }
    }
  }
  double vals[2] = {local_norm2(), link};
  comm_->allreduce_inplace(std::span<double>(vals, 2), simrt::ReduceOp::Sum);
  return Diagnostics{vals[0], vals[1]};
}

Simulation::Checkpoint Simulation::save_state() const {
  return Checkpoint{even_, odd_};
}

void Simulation::restore_state(const Checkpoint& checkpoint) {
  if (checkpoint.even.size() != even_.size() ||
      checkpoint.odd.size() != odd_.size()) {
    throw std::runtime_error("qcd: checkpoint shape mismatch");
  }
  even_ = checkpoint.even;
  odd_ = checkpoint.odd;
}

std::vector<double> Simulation::gather_psi() {
  const auto& n = geom_.n;
  // Local contribution: full-lattice sites of this rank, site-major
  // (t, z, y, full-x), kPlanes values per site.
  std::vector<double> contrib;
  contrib.reserve(2 * n.volume() * kPlanes);
  for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(n[3]); ++t) {
    for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(n[2]); ++z) {
      for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(n[1]); ++y) {
        const std::ptrdiff_t gy = geom_.origin[1] + y;
        const std::ptrdiff_t gz = geom_.origin[2] + z;
        const std::ptrdiff_t gt = geom_.origin[3] + t;
        const std::size_t nxl = 2 * n[0];
        for (std::size_t lx = 0; lx < nxl; ++lx) {
          const std::ptrdiff_t gx =
              geom_.origin[0] + static_cast<std::ptrdiff_t>(lx);
          const int parity = static_cast<int>((gx + gy + gz + gt) & 1);
          std::vector<double>& field = parity == 0 ? even_ : odd_;
          const auto xh = static_cast<std::ptrdiff_t>(lx / 2);
          const std::size_t off = geom_.layout.offset({{xh, y, z, t}});
          for (std::size_t pl = 0; pl < kPlanes; ++pl) {
            contrib.push_back(plane(field, pl)[off]);
          }
        }
      }
    }
  }

  const std::size_t total =
      options_.nx * options_.ny * options_.nz * options_.nt * kPlanes;
  std::vector<double> flat(comm_->rank() == 0 ? total : 0);
  comm_->gather(std::span<const double>(contrib), std::span<double>(flat), 0);
  if (comm_->rank() != 0) return {};

  // Rank-ordered blocks -> global site order.
  std::vector<double> global(total);
  std::size_t consumed = 0;
  for (int r = 0; r < comm_->size(); ++r) {
    const part::Extent<4> rn = half_.local_extent(r);
    const part::Index<4> ro = half_.origin(r);
    const std::ptrdiff_t x0 = 2 * ro[0];
    for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(rn[3]); ++t) {
      for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(rn[2]); ++z) {
        for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(rn[1]); ++y) {
          for (std::size_t lx = 0; lx < 2 * rn[0]; ++lx) {
            const auto gx = static_cast<std::size_t>(x0) + lx;
            const auto gy = static_cast<std::size_t>(ro[1] + y);
            const auto gz = static_cast<std::size_t>(ro[2] + z);
            const auto gt = static_cast<std::size_t>(ro[3] + t);
            const std::size_t site =
                ((gt * options_.nz + gz) * options_.ny + gy) * options_.nx + gx;
            for (std::size_t pl = 0; pl < kPlanes; ++pl) {
              global[site * kPlanes + pl] = flat[consumed++];
            }
          }
        }
      }
    }
  }
  return global;
}

}  // namespace vpar::qcd
