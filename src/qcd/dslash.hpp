#pragma once

#include <array>
#include <cstddef>

#include "part/halo.hpp"
#include "qcd/lattice.hpp"

namespace vpar::qcd {

/// Even/odd half-lattice geometry of one rank: the local half extents
/// (nxh = nxl/2, nyl, nzl, ntl) with a one-site ghost shell, plus the
/// global origin needed for the staggered phases and parity offsets.
struct HalfGeom {
  part::Extent<4> n{};       ///< local half extents
  part::TileLayout<4> layout{};
  part::Index<4> origin{};   ///< global (x, y, z, t) of local site 0 (full x!)
};

namespace detail {

/// Per-row kernel arguments: output rows of the target parity and, per
/// direction, the source-parity neighbor rows (x offsets already applied),
/// plus the row-constant staggered phases.
struct RowPointers {
  std::array<double*, kPlanes> out{};
  std::array<std::array<const double*, kPlanes>, 4> fwd{};
  std::array<std::array<const double*, kPlanes>, 4> bwd{};
  std::array<double, 4> eta{};
};

/// Scalar reference row kernel (the W=1 instantiation of the shared body).
void dslash_row(const RowPointers& p, std::size_t n);

/// Runtime-dispatched SIMD row kernel: bitwise identical to dslash_row at
/// every width (shared expression tree, -ffp-contract=off). Records the
/// span with the simd.* metrics.
void dslash_row_simd(const RowPointers& p, std::size_t n);

}  // namespace detail

/// Apply the staggered Dslash: out (parity `target_parity`) from src (the
/// opposite parity), whose ghosts must be current. Rows are served through
/// simrt::parallel_for (rows write disjoint output rows, so hybrid helpers
/// are bitwise-safe); within a row the kernel dispatches scalar or SIMD.
/// Records the "dslash" kernel loop with perf and bumps qcd.* meters.
void apply_dslash(std::array<double*, kPlanes> out,
                  std::array<const double*, kPlanes> src, const HalfGeom& geom,
                  int target_parity);

}  // namespace vpar::qcd
