#include "qcd/lattice.hpp"

namespace vpar::qcd {

namespace {

/// Dense real orthogonal base matrix: the product of three 3-4-5 Givens
/// rotations (xy, yz, zx planes with cos=0.6/sin=0.8), written out exactly.
constexpr double kBase[3][3] = {
    {0.872, 0.48, -0.096},
    {-0.096, 0.36, 0.928},
    {0.48, -0.8, 0.36},
};

/// Unit phases (cos, sin) from Pythagorean triples — per-direction, per-row.
constexpr double kPhase[4][3][2] = {
    {{1.0, 0.0}, {0.6, 0.8}, {0.8, -0.6}},
    {{0.6, 0.8}, {-0.28, 0.96}, {1.0, 0.0}},
    {{0.8, -0.6}, {1.0, 0.0}, {0.6, -0.8}},
    {{-0.28, 0.96}, {0.8, 0.6}, {0.28, 0.96}},
};

LinkMatrices build_links() {
  LinkMatrices u;
  for (std::size_t mu = 0; mu < 4; ++mu) {
    for (std::size_t r = 0; r < kColors; ++r) {
      const double cr = kPhase[mu][r][0];
      const double ci = kPhase[mu][r][1];
      for (std::size_t c = 0; c < kColors; ++c) {
        // Row phase times the (cyclically shifted per direction) base row:
        // each direction mixes the colors differently but stays unitary.
        const double b = kBase[(r + mu) % kColors][c];
        u.re[mu][r][c] = cr * b;
        u.im[mu][r][c] = ci * b;
      }
    }
  }
  return u;
}

}  // namespace

const LinkMatrices& links() {
  static const LinkMatrices u = build_links();
  return u;
}

}  // namespace vpar::qcd
