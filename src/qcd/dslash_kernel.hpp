#pragma once

#include <cstddef>

#include "qcd/dslash.hpp"
#include "qcd/lattice.hpp"
#include "simd/simd.hpp"

/// Width-templated staggered-Dslash row body, shared by the scalar reference
/// (W=1, dslash.cpp) and the AVX/AVX-512 dispatch clones (dslash_simd.cpp).
/// One template means scalar and SIMD execute the *identical* expression
/// tree; with -ffp-contract=off on both translation units every width
/// produces bitwise-identical rows.

namespace vpar::qcd::detail {

/// out(x) = sum_mu eta_mu [ U_mu psi(x+mu) - U_mu^dagger psi(x-mu) ]
/// over sites i0..i1 of one (y,z,t) row of the target parity. All neighbor
/// rows are stride-1 in the half-lattice x index (the even/odd split makes
/// the x offsets row constants), so every load is a contiguous vector load.
template <std::size_t W>
VPAR_SIMD_INLINE void dslash_row_w(const RowPointers& p, std::size_t i0,
                                   std::size_t i1) {
  using V = simd::vec<W>;
  using simd::load;
  using simd::splat;
  using simd::store;
  const LinkMatrices& u = links();

  for (std::size_t i = i0; i < i1; i += W) {
    V acc_re[kColors], acc_im[kColors];
    for (std::size_t c = 0; c < kColors; ++c) {
      acc_re[c] = splat<W>(0.0);
      acc_im[c] = splat<W>(0.0);
    }
    for (std::size_t mu = 0; mu < 4; ++mu) {
      const V eta = splat<W>(p.eta[mu]);
      V fr[kColors], fi[kColors], br[kColors], bi[kColors];
      for (std::size_t d = 0; d < kColors; ++d) {
        fr[d] = load<W>(p.fwd[mu][2 * d] + i);
        fi[d] = load<W>(p.fwd[mu][2 * d + 1] + i);
        br[d] = load<W>(p.bwd[mu][2 * d] + i);
        bi[d] = load<W>(p.bwd[mu][2 * d + 1] + i);
      }
      for (std::size_t c = 0; c < kColors; ++c) {
        V tre = splat<W>(0.0), tim = splat<W>(0.0);
        V sre = splat<W>(0.0), sim = splat<W>(0.0);
        for (std::size_t d = 0; d < kColors; ++d) {
          const V ur = splat<W>(u.re[mu][c][d]);
          const V ui = splat<W>(u.im[mu][c][d]);
          tre = tre + (ur * fr[d] - ui * fi[d]);
          tim = tim + (ur * fi[d] + ui * fr[d]);
          // Backward hop applies U^dagger: conj(U[d][c]).
          const V vr = splat<W>(u.re[mu][d][c]);
          const V vi = splat<W>(u.im[mu][d][c]);
          sre = sre + (vr * br[d] + vi * bi[d]);
          sim = sim + (vr * bi[d] - vi * br[d]);
        }
        acc_re[c] = acc_re[c] + eta * (tre - sre);
        acc_im[c] = acc_im[c] + eta * (tim - sim);
      }
    }
    for (std::size_t c = 0; c < kColors; ++c) {
      store<W>(p.out[2 * c] + i, acc_re[c]);
      store<W>(p.out[2 * c + 1] + i, acc_im[c]);
    }
  }
}

/// Vector strip then W=1 scalar tail, both instantiated from the same body.
template <std::size_t W>
VPAR_SIMD_INLINE void dslash_span_w(const RowPointers& p, std::size_t n) {
  const std::size_t nv = n / W * W;
  dslash_row_w<W>(p, 0, nv);
  dslash_row_w<1>(p, nv, n);
}

}  // namespace vpar::qcd::detail
