#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "part/halo.hpp"
#include "part/partition.hpp"
#include "qcd/dslash.hpp"
#include "qcd/lattice.hpp"
#include "simrt/communicator.hpp"

namespace vpar::qcd {

/// Configuration of one staggered-lattice run. The processor grid is an
/// N-dim part::BlockPartition grid: zero entries of `dims` are auto-factored
/// near-cubically over the even/odd half lattice (nx/2, ny, nz, nt). Every
/// axis is periodic (the standard lattice-QCD torus).
struct Options {
  std::size_t nx = 8, ny = 8, nz = 8, nt = 16;  ///< global full lattice
  std::array<int, 4> dims{};  ///< rank grid; 0 entries auto-factored
  /// Rescale psi to unit global norm each step (power iteration). The
  /// allreduced norm makes per-rank partial sums associate differently at
  /// different P, so cross-P bitwise comparisons disable this.
  bool normalize = true;
};

/// Globally allreduced observables.
struct Diagnostics {
  double norm2 = 0.0;        ///< |psi|^2 over the full lattice
  double link_energy = 0.0;  ///< plaquette-style Re<psi(x), U_mu psi(x+mu)>
};

/// 4D even/odd staggered-stencil simulation on a periodic lattice,
/// block-distributed by part::BlockPartition<4>. One step() is a Dslash
/// power-iteration sweep: exchange odd halos, even <- D psi_odd, exchange
/// even halos, odd <- D psi_even, then (optionally) normalize by the global
/// norm. Site vectors are SU(3)-like 3-component complexes stored as six
/// separate re/im planes per parity so the x sweeps vectorize stride-1.
class Simulation {
 public:
  Simulation(simrt::Communicator& comm, const Options& options);

  /// Deterministic site-coded initial vector (independent of P).
  void initialize();
  void step();
  void run(int steps);

  [[nodiscard]] Diagnostics diagnostics();

  /// Per-rank checkpoint of the complete evolving state (both parity
  /// fields, ghosts included); everything else is configuration, so
  /// restoring into a Simulation built with the same options replays the
  /// run bitwise-identically — the elastic-restart contract.
  struct Checkpoint {
    std::vector<double> even, odd;
  };
  [[nodiscard]] Checkpoint save_state() const;
  void restore_state(const Checkpoint& checkpoint);

  /// Assemble the full-lattice field on rank 0 (empty on other ranks):
  /// site-major (t, z, y, x) with kPlanes values per site — decomposition-
  /// independent, so bitwise comparison across P is meaningful.
  [[nodiscard]] std::vector<double> gather_psi();

  [[nodiscard]] const part::BlockPartition<4>& partition() const {
    return half_;
  }
  [[nodiscard]] const HalfGeom& geom() const { return geom_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Resolve the rank grid the constructor would use for `ranks` ranks.
  [[nodiscard]] static std::array<int, 4> resolve_dims(const Options& options,
                                                       int ranks);

 private:
  [[nodiscard]] double* plane(std::vector<double>& field, std::size_t p) {
    return field.data() + p * geom_.layout.total();
  }
  [[nodiscard]] std::array<double*, kPlanes> planes(std::vector<double>& f) {
    std::array<double*, kPlanes> out{};
    for (std::size_t p = 0; p < kPlanes; ++p) out[p] = plane(f, p);
    return out;
  }
  [[nodiscard]] std::array<const double*, kPlanes> cplanes(
      std::vector<double>& f) {
    std::array<const double*, kPlanes> out{};
    for (std::size_t p = 0; p < kPlanes; ++p) out[p] = plane(f, p);
    return out;
  }
  void exchange(std::vector<double>& field);
  [[nodiscard]] double local_norm2();
  void scale_fields(double s);

  simrt::Communicator* comm_;
  Options options_;
  part::BlockPartition<4> half_;  ///< half lattice (x/2) decomposition
  HalfGeom geom_;
  part::HaloSchedule<4> schedule_;
  std::vector<double> even_, odd_;  ///< kPlanes ghost-extended planes each
};

}  // namespace vpar::qcd
