#pragma once

#include <array>
#include <cstddef>

/// Lattice-QCD-style 4D staggered stencil — the fifth application. The
/// workload class the paper's machines were famous for ("Lattice QCD on the
/// Earth Simulator"): a 4D nearest-neighbor stencil with an SU(3)-like
/// 3-component complex vector per site, an 8-direction gather per site
/// update, and global norm/plaquette reductions. Domain decomposition and
/// halo exchange come entirely from the vpar_part library (src/part/) —
/// nothing here hand-rolls a decomposition.

namespace vpar::qcd {

inline constexpr std::size_t kColors = 3;
/// Planes per parity field: re/im per color, separate plane each, so the
/// x-row sweeps vectorize as pure stride-1 streams.
inline constexpr std::size_t kPlanes = 2 * kColors;

/// Constant per-direction SU(3)-like link matrices U_mu (3x3 complex,
/// unitary by construction: a dense real rotation with per-row complex
/// phases). Real QCD carries a U per lattice *link*; a constant U per
/// *direction* preserves the full arithmetic (dense complex mat-vec per
/// direction per site) and the exact communication pattern while keeping
/// every rank's data deterministic without a gauge-field distribution.
struct LinkMatrices {
  // re[mu][row][col], im[mu][row][col]
  std::array<std::array<std::array<double, kColors>, kColors>, 4> re{};
  std::array<std::array<std::array<double, kColors>, kColors>, 4> im{};
};

/// The process-wide constant links (built once, plain arithmetic only — no
/// libm — so every build and every rank agrees bitwise).
[[nodiscard]] const LinkMatrices& links();

/// Flops per site of one dslash application, counted from the kernel body:
/// 4 directions x 3 output colors x (24 forward + 24 backward + 6 combine).
[[nodiscard]] constexpr double dslash_flops_per_site() { return 648.0; }

/// Bytes per site: 8 neighbor gathers + 1 store of 6 doubles each.
[[nodiscard]] constexpr double dslash_bytes_per_site() {
  return 9.0 * kPlanes * sizeof(double);
}

/// Staggered phase of direction `mu` at full-lattice coordinates (x,y,z,t):
/// eta_x = 1, eta_y = (-1)^x, eta_z = (-1)^(x+y), eta_t = (-1)^(x+y+z).
[[nodiscard]] inline double staggered_eta(std::size_t mu, std::ptrdiff_t x,
                                          std::ptrdiff_t y, std::ptrdiff_t z) {
  std::ptrdiff_t s = 0;
  if (mu >= 1) s += x;
  if (mu >= 2) s += y;
  if (mu >= 3) s += z;
  return (s & 1) != 0 ? -1.0 : 1.0;
}

}  // namespace vpar::qcd
