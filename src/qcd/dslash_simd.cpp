#include "qcd/dslash_kernel.hpp"
#include "simd/dispatch.hpp"

namespace vpar::qcd::detail {

namespace {

#if VPAR_SIMD_CLONE_AVX
__attribute__((noinline, target("avx"))) void dslash_v4(const RowPointers& p,
                                                        std::size_t n) {
  dslash_span_w<4>(p, n);
}
#endif
#if VPAR_SIMD_CLONE_AVX512
__attribute__((noinline, target("avx512f"))) void dslash_v8(
    const RowPointers& p, std::size_t n) {
  dslash_span_w<8>(p, n);
}
#endif

}  // namespace

void dslash_row_simd(const RowPointers& p, std::size_t n) {
  const std::size_t w = simd::active_width();
  switch (w) {
#if VPAR_SIMD_CLONE_AVX512
    case 8: dslash_v8(p, n); break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4: dslash_v4(p, n); break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2: dslash_span_w<2>(p, n); break;
#endif
    default: dslash_span_w<1>(p, n); break;
  }
  simd::record_span(w, n / w, n % w);
}

}  // namespace vpar::qcd::detail
