#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>

/// N-dimensional partitioning library (vpar_part).
///
/// Every application in this repository used to hand-roll its own domain
/// decomposition (LBMHD's Decomp2D, Cactus's Decomp3D, GTC's 1D toroidal
/// split). This layer extracts the shared machinery once, for any rank:
/// extents and indices (this header), block and block-cyclic decompositions
/// over an N-dim rank grid with near-cubic automatic factorization
/// (partition.hpp), and halo-exchange schedules that lower onto simrt
/// isend/irecv with overlap (halo.hpp). See docs/partitioning.md.

namespace vpar::part {

/// Signed N-dim index. Signed so the same type addresses interior cells and
/// ghost cells (negative, or >= the interior extent) in local coordinates.
template <std::size_t N>
struct Index {
  std::array<std::ptrdiff_t, N> v{};

  [[nodiscard]] std::ptrdiff_t& operator[](std::size_t a) { return v[a]; }
  [[nodiscard]] std::ptrdiff_t operator[](std::size_t a) const { return v[a]; }
  [[nodiscard]] bool operator==(const Index&) const = default;
};

/// Unsigned N-dim extent (a box size, a grid shape).
template <std::size_t N>
struct Extent {
  std::array<std::size_t, N> v{};

  [[nodiscard]] std::size_t& operator[](std::size_t a) { return v[a]; }
  [[nodiscard]] std::size_t operator[](std::size_t a) const { return v[a]; }
  [[nodiscard]] bool operator==(const Extent&) const = default;

  [[nodiscard]] std::size_t volume() const {
    std::size_t p = 1;
    for (std::size_t a = 0; a < N; ++a) p *= v[a];
    return p;
  }
};

/// Half-open axis-aligned box [lo, hi) in (possibly ghost-extended) local
/// coordinates.
template <std::size_t N>
struct Box {
  Index<N> lo{};
  Index<N> hi{};  // exclusive

  [[nodiscard]] bool operator==(const Box&) const = default;

  [[nodiscard]] std::size_t volume() const {
    std::size_t p = 1;
    for (std::size_t a = 0; a < N; ++a) {
      if (hi[a] <= lo[a]) return 0;
      p *= static_cast<std::size_t>(hi[a] - lo[a]);
    }
    return p;
  }

  [[nodiscard]] bool empty() const { return volume() == 0; }

  [[nodiscard]] bool contains(const Index<N>& i) const {
    for (std::size_t a = 0; a < N; ++a) {
      if (i[a] < lo[a] || i[a] >= hi[a]) return false;
    }
    return true;
  }
};

/// Factor `ranks` into `dims.size()` per-axis counts whose product is
/// `ranks`, keeping the local blocks of a domain with the given per-axis
/// `extents` as close to cubic as possible: prime factors of `ranks` are
/// assigned, largest first, to the axis whose current local extent is
/// largest (preferring axes the factor divides evenly). dims entries that
/// arrive non-zero are honoured as fixed (MPI_Dims_create semantics); zero
/// entries are chosen. Throws when the fixed entries cannot absorb `ranks`.
void factor_rank_grid(int ranks, std::span<const std::size_t> extents,
                      std::span<int> dims);

/// Typed convenience wrapper: all axes free.
template <std::size_t N>
[[nodiscard]] std::array<int, N> near_cubic_grid(int ranks,
                                                 const Extent<N>& global) {
  std::array<int, N> dims{};
  factor_rank_grid(ranks, std::span<const std::size_t>(global.v),
                   std::span<int>(dims));
  return dims;
}

}  // namespace vpar::part
