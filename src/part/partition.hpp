#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>

#include "part/part.hpp"

namespace vpar::part {

/// N-dim Cartesian rank grid with axis-0-fastest linearization — the exact
/// convention every hand-rolled decomposition in this repo used
/// (rank = (... * p1 + c1) * p0 + c0), so ports stay bitwise-identical.
template <std::size_t N>
struct RankGrid {
  std::array<int, N> dims{};
  std::array<bool, N> periodic{};

  RankGrid() { dims.fill(1); }
  RankGrid(std::array<int, N> dims_in, std::array<bool, N> periodic_in)
      : dims(dims_in), periodic(periodic_in) {
    for (std::size_t a = 0; a < N; ++a) {
      if (dims[a] < 1) throw std::invalid_argument("RankGrid: dims < 1");
    }
  }

  [[nodiscard]] int size() const {
    int p = 1;
    for (std::size_t a = 0; a < N; ++a) p *= dims[a];
    return p;
  }

  [[nodiscard]] std::array<int, N> coords_of(int rank) const {
    check_rank(rank);
    std::array<int, N> c{};
    for (std::size_t a = 0; a < N; ++a) {
      c[a] = rank % dims[a];
      rank /= dims[a];
    }
    return c;
  }

  [[nodiscard]] int rank_of(const std::array<int, N>& c) const {
    int rank = 0;
    for (std::size_t a = N; a-- > 0;) {
      if (c[a] < 0 || c[a] >= dims[a]) {
        throw std::invalid_argument("RankGrid: coordinate out of range");
      }
      rank = rank * dims[a] + c[a];
    }
    return rank;
  }

  /// Rank one step along `axis` in direction `dir` (+1/-1); -1 when the step
  /// leaves a non-periodic boundary. Periodic axes wrap (a 1-wide periodic
  /// axis is its own neighbor, matching the hand-rolled decompositions).
  [[nodiscard]] int neighbor(int rank, std::size_t axis, int dir) const {
    if (axis >= N) throw std::invalid_argument("RankGrid: bad axis");
    if (dir != 1 && dir != -1) throw std::invalid_argument("RankGrid: bad dir");
    auto c = coords_of(rank);
    int nc = c[axis] + dir;
    if (nc < 0 || nc >= dims[axis]) {
      if (!periodic[axis]) return -1;
      nc = (nc % dims[axis] + dims[axis]) % dims[axis];
    }
    c[axis] = nc;
    return rank_of(c);
  }

  void check_rank(int rank) const {
    if (rank < 0 || rank >= size()) {
      throw std::invalid_argument("RankGrid: rank out of range");
    }
  }
};

/// Contiguous block decomposition of an N-dim global domain over a RankGrid.
/// Axis extents need not divide evenly: the first (extent % dims) ranks along
/// an axis get one extra cell, every block stays contiguous, and the union of
/// all blocks tiles the domain exactly once.
template <std::size_t N>
class BlockPartition {
 public:
  BlockPartition(Extent<N> global, std::array<int, N> dims,
                 std::array<bool, N> periodic = {})
      : global_(global), grid_(dims, periodic) {}

  /// Factor `ranks` into a near-cubic grid for this domain automatically.
  [[nodiscard]] static BlockPartition make(Extent<N> global, int ranks,
                                           std::array<bool, N> periodic = {}) {
    return BlockPartition(global, near_cubic_grid<N>(ranks, global), periodic);
  }

  [[nodiscard]] const Extent<N>& global() const { return global_; }
  [[nodiscard]] const RankGrid<N>& grid() const { return grid_; }
  [[nodiscard]] int size() const { return grid_.size(); }
  [[nodiscard]] std::array<int, N> coords_of(int rank) const {
    return grid_.coords_of(rank);
  }
  [[nodiscard]] int rank_of(const std::array<int, N>& c) const {
    return grid_.rank_of(c);
  }
  [[nodiscard]] int neighbor(int rank, std::size_t axis, int dir) const {
    return grid_.neighbor(rank, axis, dir);
  }

  /// Cells owned along `axis` by grid coordinate `c`.
  [[nodiscard]] std::size_t axis_extent(std::size_t axis, int c) const {
    const auto p = static_cast<std::size_t>(grid_.dims[axis]);
    const auto uc = static_cast<std::size_t>(c);
    const std::size_t base = global_[axis] / p;
    const std::size_t rem = global_[axis] % p;
    return base + (uc < rem ? 1 : 0);
  }

  /// Global index of the first cell along `axis` owned by coordinate `c`.
  [[nodiscard]] std::size_t axis_origin(std::size_t axis, int c) const {
    const auto p = static_cast<std::size_t>(grid_.dims[axis]);
    const auto uc = static_cast<std::size_t>(c);
    const std::size_t base = global_[axis] / p;
    const std::size_t rem = global_[axis] % p;
    return uc * base + (uc < rem ? uc : rem);
  }

  [[nodiscard]] Extent<N> local_extent(int rank) const {
    const auto c = grid_.coords_of(rank);
    Extent<N> e{};
    for (std::size_t a = 0; a < N; ++a) e[a] = axis_extent(a, c[a]);
    return e;
  }

  /// Global index of this rank's local origin (local index {0,...,0}).
  [[nodiscard]] Index<N> origin(int rank) const {
    const auto c = grid_.coords_of(rank);
    Index<N> o{};
    for (std::size_t a = 0; a < N; ++a) {
      o[a] = static_cast<std::ptrdiff_t>(axis_origin(a, c[a]));
    }
    return o;
  }

  [[nodiscard]] Index<N> to_global(int rank, const Index<N>& local) const {
    Index<N> g = origin(rank);
    for (std::size_t a = 0; a < N; ++a) g[a] += local[a];
    return g;
  }

  [[nodiscard]] Index<N> to_local(int rank, const Index<N>& global) const {
    Index<N> o = origin(rank);
    Index<N> l{};
    for (std::size_t a = 0; a < N; ++a) l[a] = global[a] - o[a];
    return l;
  }

  /// Grid coordinate owning global index `g` along `axis`.
  [[nodiscard]] int axis_owner(std::size_t axis, std::size_t g) const {
    if (g >= global_[axis]) {
      throw std::invalid_argument("BlockPartition: global index out of range");
    }
    const auto p = static_cast<std::size_t>(grid_.dims[axis]);
    const std::size_t base = global_[axis] / p;
    const std::size_t rem = global_[axis] % p;
    const std::size_t wide = rem * (base + 1);  // cells held by the +1 blocks
    if (g < wide) return static_cast<int>(g / (base + 1));
    return static_cast<int>(rem + (g - wide) / base);
  }

  [[nodiscard]] int owner_of(const Index<N>& global) const {
    std::array<int, N> c{};
    for (std::size_t a = 0; a < N; ++a) {
      if (global[a] < 0) {
        throw std::invalid_argument("BlockPartition: negative global index");
      }
      c[a] = axis_owner(a, static_cast<std::size_t>(global[a]));
    }
    return grid_.rank_of(c);
  }

  [[nodiscard]] bool owns(int rank, const Index<N>& global) const {
    const Index<N> l = to_local(rank, global);
    const Extent<N> e = local_extent(rank);
    for (std::size_t a = 0; a < N; ++a) {
      if (l[a] < 0 || l[a] >= static_cast<std::ptrdiff_t>(e[a])) return false;
    }
    return true;
  }

 private:
  Extent<N> global_;
  RankGrid<N> grid_;
};

/// Block-cyclic decomposition: the cells of each axis are cut into blocks of
/// `block[axis]` cells dealt round-robin to the grid coordinates, so load
/// stays balanced when work density varies across the domain (the classic
/// ScaLAPACK layout). Locally each coordinate packs its blocks contiguously
/// in deal order.
template <std::size_t N>
class BlockCyclicPartition {
 public:
  BlockCyclicPartition(Extent<N> global, std::array<int, N> dims,
                       Extent<N> block, std::array<bool, N> periodic = {})
      : global_(global), block_(block), grid_(dims, periodic) {
    for (std::size_t a = 0; a < N; ++a) {
      if (block_[a] == 0) {
        throw std::invalid_argument("BlockCyclicPartition: zero block");
      }
    }
  }

  [[nodiscard]] const Extent<N>& global() const { return global_; }
  [[nodiscard]] const Extent<N>& block() const { return block_; }
  [[nodiscard]] const RankGrid<N>& grid() const { return grid_; }
  [[nodiscard]] int size() const { return grid_.size(); }
  [[nodiscard]] std::array<int, N> coords_of(int rank) const {
    return grid_.coords_of(rank);
  }
  [[nodiscard]] int rank_of(const std::array<int, N>& c) const {
    return grid_.rank_of(c);
  }
  [[nodiscard]] int neighbor(int rank, std::size_t axis, int dir) const {
    return grid_.neighbor(rank, axis, dir);
  }

  [[nodiscard]] int axis_owner(std::size_t axis, std::size_t g) const {
    if (g >= global_[axis]) {
      throw std::invalid_argument("BlockCyclicPartition: index out of range");
    }
    return static_cast<int>((g / block_[axis]) %
                            static_cast<std::size_t>(grid_.dims[axis]));
  }

  [[nodiscard]] int owner_of(const Index<N>& global) const {
    std::array<int, N> c{};
    for (std::size_t a = 0; a < N; ++a) {
      if (global[a] < 0) {
        throw std::invalid_argument("BlockCyclicPartition: negative index");
      }
      c[a] = axis_owner(a, static_cast<std::size_t>(global[a]));
    }
    return grid_.rank_of(c);
  }

  /// Cells owned along `axis` by grid coordinate `c`.
  [[nodiscard]] std::size_t axis_extent(std::size_t axis, int c) const {
    const std::size_t n = global_[axis];
    const std::size_t b = block_[axis];
    const auto p = static_cast<std::size_t>(grid_.dims[axis]);
    const auto uc = static_cast<std::size_t>(c);
    const std::size_t blocks = (n + b - 1) / b;
    if (blocks == 0) return 0;
    const std::size_t owned = blocks / p + (uc < blocks % p ? 1 : 0);
    // The final block may be partial; its owner gives back the shortfall.
    const std::size_t shortfall =
        (uc == (blocks - 1) % p && owned > 0) ? blocks * b - n : 0;
    return owned * b - shortfall;
  }

  [[nodiscard]] Extent<N> local_extent(int rank) const {
    const auto c = grid_.coords_of(rank);
    Extent<N> e{};
    for (std::size_t a = 0; a < N; ++a) e[a] = axis_extent(a, c[a]);
    return e;
  }

  /// Local position (within the owner's packed blocks) of global cell `g`.
  [[nodiscard]] std::size_t axis_local(std::size_t axis, std::size_t g) const {
    const std::size_t b = block_[axis];
    const auto p = static_cast<std::size_t>(grid_.dims[axis]);
    return (g / b) / p * b + g % b;
  }

  /// Global position of the owner-coordinate `c`'s local cell `l`.
  [[nodiscard]] std::size_t axis_global(std::size_t axis, int c,
                                        std::size_t l) const {
    const std::size_t b = block_[axis];
    const auto p = static_cast<std::size_t>(grid_.dims[axis]);
    const std::size_t g =
        (l / b * p + static_cast<std::size_t>(c)) * b + l % b;
    if (g >= global_[axis]) {
      throw std::invalid_argument("BlockCyclicPartition: local out of range");
    }
    return g;
  }

  [[nodiscard]] Index<N> to_local(const Index<N>& global) const {
    Index<N> l{};
    for (std::size_t a = 0; a < N; ++a) {
      l[a] = static_cast<std::ptrdiff_t>(
          axis_local(a, static_cast<std::size_t>(global[a])));
    }
    return l;
  }

  [[nodiscard]] Index<N> to_global(int rank, const Index<N>& local) const {
    const auto c = grid_.coords_of(rank);
    Index<N> g{};
    for (std::size_t a = 0; a < N; ++a) {
      g[a] = static_cast<std::ptrdiff_t>(
          axis_global(a, c[a], static_cast<std::size_t>(local[a])));
    }
    return g;
  }

 private:
  Extent<N> global_;
  Extent<N> block_;
  RankGrid<N> grid_;
};

}  // namespace vpar::part
