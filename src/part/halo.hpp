#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "part/partition.hpp"
#include "perf/recorder.hpp"
#include "simrt/communicator.hpp"
#include "simrt/request.hpp"
#include "trace/trace.hpp"

namespace vpar::part {

/// Ghost widths per axis plus the base of the user-tag range a schedule may
/// use. A schedule consumes tags [base_tag, base_tag + 2N): data moving in
/// the + direction along axis a rides tag base_tag + 2a, the - direction
/// base_tag + 2a + 1, so opposite-direction traffic between the same pair of
/// ranks (or a rank and itself on a periodic 1-wide axis) never cross-matches.
template <std::size_t N>
struct HaloSpec {
  Extent<N> width{};
  int base_tag = 0;
};

/// Memory layout of one ghost-extended local tile: axis 0 contiguous,
/// stride[a] = stride[a-1] * (interior[a-1] + 2*ghost[a-1]), and offset()
/// addressing shifted so interior cells live at local indices
/// [0, interior[a]) with ghosts at negative / >= interior[a] indices — the
/// layout GridFunctions and FieldSet already use.
template <std::size_t N>
struct TileLayout {
  Extent<N> interior{};
  Extent<N> ghost{};
  std::array<std::size_t, N> stride{};

  [[nodiscard]] static TileLayout make(Extent<N> interior, Extent<N> ghost) {
    TileLayout l;
    l.interior = interior;
    l.ghost = ghost;
    std::size_t s = 1;
    for (std::size_t a = 0; a < N; ++a) {
      l.stride[a] = s;
      s *= interior[a] + 2 * ghost[a];
    }
    return l;
  }

  /// Linear offset of a (possibly ghost) local index into one plane.
  [[nodiscard]] std::size_t offset(const Index<N>& i) const {
    std::size_t o = 0;
    for (std::size_t a = 0; a < N; ++a) {
      o += static_cast<std::size_t>(i[a] +
                                    static_cast<std::ptrdiff_t>(ghost[a])) *
           stride[a];
    }
    return o;
  }

  /// Elements of one ghost-extended plane.
  [[nodiscard]] std::size_t total() const {
    std::size_t p = 1;
    for (std::size_t a = 0; a < N; ++a) p *= interior[a] + 2 * ghost[a];
    return p;
  }
};

/// One direction of one phase: the peer rank, the tag, and the local box to
/// pack (for a send) or fill (for a receive).
template <std::size_t N>
struct HaloMessage {
  int peer = -1;
  int tag = 0;
  Box<N> box{};
};

/// One axis sweep. Boxes of axes already swept span their ghosts, so corner
/// and edge values propagate across phases without dedicated diagonal
/// messages — the idiom both the LBMHD and Cactus hand-rolled exchanges used.
template <std::size_t N>
struct HaloPhase {
  std::size_t axis = 0;
  std::vector<HaloMessage<N>> sends;
  std::vector<HaloMessage<N>> recvs;
};

template <std::size_t N>
struct HaloSchedule {
  std::vector<HaloPhase<N>> phases;

  /// Elements sent per exchanged plane (both directions, all phases).
  [[nodiscard]] std::size_t send_elements_per_plane() const {
    std::size_t n = 0;
    for (const auto& ph : phases) {
      for (const auto& s : ph.sends) n += s.box.volume();
    }
    return n;
  }
};

/// Plan rank `rank`'s halo exchange under `partition`: one phase per axis
/// with nonzero ghost width, swept in axis order. Each phase sends the rank's
/// two boundary faces to its ± neighbors and receives the matching faces into
/// its ghost shells; faces are skipped at non-periodic domain boundaries
/// (neighbor() == -1). A send in the + direction pairs with the peer's
/// - ghost receive under the same tag, so schedules of neighboring ranks
/// always pair up message-for-message.
template <std::size_t N>
[[nodiscard]] HaloSchedule<N> plan_halo(const BlockPartition<N>& partition,
                                        int rank, const HaloSpec<N>& spec) {
  const Extent<N> n = partition.local_extent(rank);
  HaloSchedule<N> schedule;
  for (std::size_t axis = 0; axis < N; ++axis) {
    const auto g = static_cast<std::ptrdiff_t>(spec.width[axis]);
    if (g == 0) continue;
    HaloPhase<N> phase;
    phase.axis = axis;

    // Base box: swept axes span their ghosts, later axes interior only.
    Box<N> base;
    for (std::size_t b = 0; b < N; ++b) {
      const auto nb = static_cast<std::ptrdiff_t>(n[b]);
      const auto gb = static_cast<std::ptrdiff_t>(spec.width[b]);
      if (b < axis) {
        base.lo[b] = -gb;
        base.hi[b] = nb + gb;
      } else {
        base.lo[b] = 0;
        base.hi[b] = nb;
      }
    }

    const int plus = partition.neighbor(rank, axis, +1);
    const int minus = partition.neighbor(rank, axis, -1);
    const auto na = static_cast<std::ptrdiff_t>(n[axis]);
    const int tag_plus = spec.base_tag + 2 * static_cast<int>(axis);
    const int tag_minus = tag_plus + 1;

    // Receives first in schedule order: exchange_halo posts them before
    // packing, so transfers land while the sender is still packing.
    if (minus >= 0) {  // + traffic: minus peer's high face -> my low ghost
      Box<N> box = base;
      box.lo[axis] = -g;
      box.hi[axis] = 0;
      phase.recvs.push_back({minus, tag_plus, box});
    }
    if (plus >= 0) {  // - traffic: plus peer's low face -> my high ghost
      Box<N> box = base;
      box.lo[axis] = na;
      box.hi[axis] = na + g;
      phase.recvs.push_back({plus, tag_minus, box});
    }
    if (plus >= 0) {  // + traffic: my high face -> plus peer
      Box<N> box = base;
      box.lo[axis] = na - g;
      box.hi[axis] = na;
      phase.sends.push_back({plus, tag_plus, box});
    }
    if (minus >= 0) {  // - traffic: my low face -> minus peer
      Box<N> box = base;
      box.lo[axis] = 0;
      box.hi[axis] = g;
      phase.sends.push_back({minus, tag_minus, box});
    }
    if (!phase.sends.empty() || !phase.recvs.empty()) {
      schedule.phases.push_back(std::move(phase));
    }
  }
  return schedule;
}

namespace detail {

/// Metric hooks live in halo.cpp so the templates stay header-only without
/// paying a registry lookup per message.
void note_exchange();
void note_message(std::size_t bytes);

/// Row-major odometer over a box with axis-0 rows handled contiguously.
template <std::size_t N, typename RowFn>
void for_each_row(const Box<N>& box, RowFn&& row) {
  if (box.empty()) return;
  Index<N> it = box.lo;
  const std::size_t len = static_cast<std::size_t>(box.hi[0] - box.lo[0]);
  for (;;) {
    row(it, len);
    std::size_t a = 1;
    for (; a < N; ++a) {
      if (++it[a] < box.hi[a]) break;
      it[a] = box.lo[a];
    }
    if (a == N) return;
  }
}

template <std::size_t N>
void pack_box(const TileLayout<N>& layout, const Box<N>& box,
              std::span<double* const> planes, double* out) {
  for (const double* plane : planes) {
    for_each_row<N>(box, [&](const Index<N>& row, std::size_t len) {
      const double* src = plane + layout.offset(row);
      for (std::size_t i = 0; i < len; ++i) out[i] = src[i];
      out += len;
    });
  }
}

template <std::size_t N>
void unpack_box(const TileLayout<N>& layout, const Box<N>& box,
                std::span<double* const> planes, const double* in) {
  for (double* plane : planes) {
    for_each_row<N>(box, [&](const Index<N>& row, std::size_t len) {
      double* dst = plane + layout.offset(row);
      for (std::size_t i = 0; i < len; ++i) dst[i] = in[i];
      in += len;
    });
  }
}

}  // namespace detail

/// Execute a planned halo exchange for a set of equally-shaped planes.
/// Per phase: the receives are posted, every send is packed plane-major /
/// row-major and handed off by move, and the phase completes inside one
/// perf::OverlapScope so the network model costs the traffic as overlapped.
/// The phase barrier between axes is the data dependence that carries corner
/// values; there is no other synchronization.
template <std::size_t N>
void exchange_halo(simrt::Communicator& comm, const HaloSchedule<N>& schedule,
                   const TileLayout<N>& layout,
                   std::span<double* const> planes) {
  detail::note_exchange();
  for (const auto& phase : schedule.phases) {
    trace::TraceSpan span("part.exchange",
                          static_cast<std::int64_t>(phase.axis));
    perf::OverlapScope window;
    std::vector<std::vector<double>> inbox(phase.recvs.size());
    std::vector<simrt::Request> pending;
    pending.reserve(phase.recvs.size());
    for (std::size_t i = 0; i < phase.recvs.size(); ++i) {
      const auto& r = phase.recvs[i];
      inbox[i].resize(planes.size() * r.box.volume());
      pending.push_back(
          comm.irecv(r.peer, std::span<double>(inbox[i]), r.tag));
    }
    for (const auto& s : phase.sends) {
      std::vector<double> buf(planes.size() * s.box.volume());
      detail::pack_box(layout, s.box, planes, buf.data());
      detail::note_message(buf.size() * sizeof(double));
      comm.isend(s.peer, std::move(buf), s.tag).wait();
    }
    simrt::waitall(pending);
    for (std::size_t i = 0; i < phase.recvs.size(); ++i) {
      detail::unpack_box(layout, phase.recvs[i].box, planes, inbox[i].data());
    }
  }
}

}  // namespace vpar::part
