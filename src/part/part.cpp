#include "part/part.hpp"

#include <algorithm>
#include <vector>

namespace vpar::part {

namespace {

/// Prime factors of n in descending order (e.g. 12 -> {3, 2, 2}).
std::vector<int> prime_factors_descending(int n) {
  std::vector<int> factors;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.begin(), factors.end(), std::greater<>());
  return factors;
}

}  // namespace

void factor_rank_grid(int ranks, std::span<const std::size_t> extents,
                      std::span<int> dims) {
  if (ranks < 1) throw std::invalid_argument("factor_rank_grid: ranks < 1");
  if (dims.empty()) throw std::invalid_argument("factor_rank_grid: no axes");
  if (!extents.empty() && extents.size() != dims.size()) {
    throw std::invalid_argument("factor_rank_grid: extents/dims size mismatch");
  }

  // Honour fixed (non-zero) entries; the free axes absorb the rest.
  int fixed = 1;
  for (std::size_t a = 0; a < dims.size(); ++a) {
    if (dims[a] < 0) throw std::invalid_argument("factor_rank_grid: dims < 0");
    if (dims[a] > 0) fixed *= dims[a];
  }
  if (fixed == 0 || ranks % fixed != 0) {
    throw std::invalid_argument(
        "factor_rank_grid: fixed dims do not divide rank count");
  }
  const int remaining = ranks / fixed;

  std::vector<std::size_t> free_axes;
  for (std::size_t a = 0; a < dims.size(); ++a) {
    if (dims[a] == 0) {
      dims[a] = 1;
      free_axes.push_back(a);
    }
  }
  if (free_axes.empty()) {
    if (remaining != 1) {
      throw std::invalid_argument(
          "factor_rank_grid: all dims fixed but product != ranks");
    }
    return;
  }

  auto extent_of = [&](std::size_t a) -> double {
    if (extents.empty() || extents[a] == 0) return 1.0;
    return static_cast<double>(extents[a]);
  };

  // Greedy near-cubic assignment: give each prime factor (largest first) to
  // the free axis whose current local extent extent/dims is largest,
  // preferring axes the enlarged dim still divides evenly. Deterministic
  // tie-break on the lowest axis index keeps grids reproducible.
  for (int f : prime_factors_descending(remaining)) {
    std::size_t best = free_axes[0];
    bool best_divides = false;
    double best_quotient = -1.0;
    for (std::size_t a : free_axes) {
      const double quotient = extent_of(a) / static_cast<double>(dims[a]);
      const bool divides =
          !extents.empty() && extents[a] != 0 &&
          extents[a] % (static_cast<std::size_t>(dims[a]) *
                        static_cast<std::size_t>(f)) == 0;
      const bool better = (divides && !best_divides) ||
                          (divides == best_divides && quotient > best_quotient);
      if (better) {
        best = a;
        best_divides = divides;
        best_quotient = quotient;
      }
    }
    dims[best] *= f;
  }
}

}  // namespace vpar::part
