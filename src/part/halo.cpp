#include "part/halo.hpp"

#include "trace/metrics.hpp"

namespace vpar::part::detail {

void note_exchange() {
  static trace::Counter& exchanges =
      trace::Metrics::instance().counter("part.exchanges");
  exchanges.add();
}

void note_message(std::size_t bytes) {
  static trace::Counter& total =
      trace::Metrics::instance().counter("part.halo_bytes");
  static trace::Histogram& sizes =
      trace::Metrics::instance().histogram("part.halo_message_bytes");
  total.add(bytes);
  sizes.record(bytes);
}

}  // namespace vpar::part::detail
