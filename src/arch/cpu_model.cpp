#include "arch/cpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace vpar::arch {

namespace {

constexpr double kGiga = 1.0e9;

/// Fraction of a vector machine's memory bandwidth achievable per pattern,
/// relative to its unit-stride fraction. Strided access loses partial memory
/// banks; gather/scatter runs the address pipes at well under stream rate.
double vector_pattern_factor(perf::AccessPattern access) {
  switch (access) {
    case perf::AccessPattern::Stream: return 1.0;
    case perf::AccessPattern::Strided: return 0.60;
    case perf::AccessPattern::Gather: return 0.25;
    case perf::AccessPattern::Cached: return 1.0;  // vector units are cacheless
  }
  return 1.0;
}

/// Same derating for cache-based superscalar CPUs. Gather defeats both the
/// prefetch engines and cache lines (one useful word per line).
double superscalar_pattern_factor(perf::AccessPattern access) {
  switch (access) {
    case perf::AccessPattern::Stream: return 1.0;
    case perf::AccessPattern::Strided: return 0.50;
    case perf::AccessPattern::Gather: return 0.15;
    case perf::AccessPattern::Cached: return 1.0;
  }
  return 1.0;
}

}  // namespace

double CpuModel::loop_seconds(const perf::LoopRecord& rec) const {
  if (rec.total_flops() <= 0.0 && rec.total_bytes() <= 0.0) return 0.0;
  return spec_->is_vector ? vector_loop_seconds(rec) : superscalar_loop_seconds(rec);
}

double CpuModel::vector_loop_seconds(const perf::LoopRecord& rec) const {
  const double flops = rec.total_flops();
  const double bytes = rec.total_bytes();

  if (!rec.vectorizable) {
    // Scalar support unit, derated for branchy sustained performance;
    // Amdahl's law does the rest at the profile level.
    return flops / (spec_->serialized_gflops * spec_->scalar_eff * kGiga);
  }

  const double vl = static_cast<double>(spec_->vector_length);
  const double strips = std::max(1.0, std::ceil(rec.trips / vl));
  const double avg_strip = rec.trips > 0.0 ? rec.trips / strips : 1.0;
  const double rate = spec_->peak_gflops * spec_->vector_compute_eff *
                      rec.compute_derate * avg_strip /
                      (avg_strip + spec_->vector_n_half);
  const double t_compute = flops / (rate * kGiga);

  double bw = spec_->mem_bw_gbs * spec_->vector_stream_eff *
              vector_pattern_factor(rec.access);
  // The X1's 2MB Ecache gives vector loops with temporal locality bandwidth
  // beyond memory (25-51 GB/s); the ES has no vector cache.
  if (rec.access == perf::AccessPattern::Cached && spec_->supports_caf) {
    bw *= 1.3;
  }
  const double t_mem = bytes / (bw * kGiga);
  return std::max(t_compute, t_mem);
}

double CpuModel::superscalar_loop_seconds(const perf::LoopRecord& rec) const {
  const double flops = rec.total_flops();
  const double bytes = rec.total_bytes();

  double compute_eff = spec_->compute_efficiency;
  if (rec.access == perf::AccessPattern::Gather) {
    // Indexed updates serialize on load-use latency even when the data is
    // cache-resident; PIC scatter/gather sustains ~1/7 of dense-kernel rate
    // on cache CPUs (GTC's 5-9% of peak across all three superscalars).
    compute_eff *= 0.15;
  }
  const double t_compute =
      flops / (spec_->peak_gflops * compute_eff * rec.compute_derate * kGiga);

  const double cache_bytes = spec_->cache_mb * 1024.0 * 1024.0;
  const bool cache_resident =
      rec.access == perf::AccessPattern::Cached ||
      (rec.working_set_bytes > 0.0 && rec.working_set_bytes <= cache_bytes);
  // Cache-resident loops stream from SRAM at the cache's own bandwidth;
  // the STREAM derating only applies to DRAM traffic.
  const double bw = cache_resident
                        ? spec_->mem_bw_gbs * spec_->cache_bw_multiplier
                        : spec_->mem_bw_gbs * spec_->stream_bw_eff *
                              superscalar_pattern_factor(rec.access);
  const double t_mem = bytes / (bw * kGiga);
  return std::max(t_compute, t_mem);
}

double CpuModel::profile_seconds(const perf::KernelProfile& profile) const {
  double total = 0.0;
  for (const auto& [region, records] : profile.regions()) {
    for (const auto& rec : records) total += loop_seconds(rec);
  }
  return total;
}

std::map<std::string, double> CpuModel::region_seconds(
    const perf::KernelProfile& profile) const {
  std::map<std::string, double> out;
  for (const auto& [region, records] : profile.regions()) {
    double t = 0.0;
    for (const auto& rec : records) t += loop_seconds(rec);
    out[region] = t;
  }
  return out;
}

}  // namespace vpar::arch
