#pragma once

#include "arch/platform.hpp"
#include "perf/comm_profile.hpp"

namespace vpar::arch {

/// Interconnect time model. Converts a per-rank CommProfile into predicted
/// communication seconds on `procs` processors of the platform.
///
/// Point-to-point and one-sided traffic pay per-message latency plus
/// per-CPU link bandwidth. All-to-all traffic (the 3D-FFT transpose) is
/// additionally bounded by the machine's bisection: the ES crossbar and the
/// fat-trees keep bisection-per-flop constant as the machine grows, while the
/// X1's 2D torus bisection grows only as sqrt(P) — the effect behind the
/// X1's PARATEC scalability collapse above 128 processors in the paper.
class NetworkModel {
 public:
  explicit NetworkModel(const PlatformSpec& spec) : spec_(&spec) {}

  /// Predicted communication seconds for one rank's profile at `procs` ranks.
  [[nodiscard]] double seconds(const perf::CommProfile& per_rank, int procs) const;

  /// Aggregate bisection bandwidth (GB/s) of a `procs`-processor machine.
  [[nodiscard]] double bisection_gbs_total(int procs) const;

  [[nodiscard]] const PlatformSpec& spec() const { return *spec_; }

 private:
  const PlatformSpec* spec_;
};

}  // namespace vpar::arch
