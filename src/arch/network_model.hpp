#pragma once

#include "arch/platform.hpp"
#include "perf/comm_profile.hpp"

namespace vpar::arch {

/// Predicted communication time of one rank, split by whether the traffic
/// was posted inside an overlap window (perf::OverlapScope) or not.
/// `overlapped` is the *hideable* part: the bandwidth (transfer) component of
/// traffic the application overlapped with computation. Start-up latency and
/// all synchronizing collectives (reductions, broadcasts, gathers, barriers)
/// are inherently serialized — a nonblocking post does not hide the rendez-
/// vous at the end of the window.
struct CommTime {
  double serialized = 0.0;
  double overlapped = 0.0;
  [[nodiscard]] double total() const { return serialized + overlapped; }
};

/// Interconnect time model. Converts a per-rank CommProfile into predicted
/// communication seconds on `procs` processors of the platform.
///
/// Point-to-point and one-sided traffic pay per-message latency plus
/// per-CPU link bandwidth. All-to-all traffic (the 3D-FFT transpose) is
/// additionally bounded by the machine's bisection: the ES crossbar and the
/// fat-trees keep bisection-per-flop constant as the machine grows, while the
/// X1's 2D torus bisection grows only as sqrt(P) — the effect behind the
/// X1's PARATEC scalability collapse above 128 processors in the paper.
class NetworkModel {
 public:
  explicit NetworkModel(const PlatformSpec& spec) : spec_(&spec) {}

  /// Predicted communication time for one rank's profile at `procs` ranks,
  /// split into serialized and hideable (overlapped) components.
  [[nodiscard]] CommTime time(const perf::CommProfile& per_rank, int procs) const;

  /// Total predicted communication seconds (serialized + overlapped), i.e.
  /// the communication time with no overlap credit applied.
  [[nodiscard]] double seconds(const perf::CommProfile& per_rank, int procs) const {
    return time(per_rank, procs).total();
  }

  /// Aggregate bisection bandwidth (GB/s) of a `procs`-processor machine.
  [[nodiscard]] double bisection_gbs_total(int procs) const;

  [[nodiscard]] const PlatformSpec& spec() const { return *spec_; }

 private:
  const PlatformSpec* spec_;
};

}  // namespace vpar::arch
