#include "arch/platform.hpp"

#include <stdexcept>

namespace vpar::arch {

// Table 1 values are copied from the paper. Calibration constants
// (stream/compute efficiencies, n_half) are fixed once, from published
// microbenchmark behaviour of each machine in the 2003-04 evaluation
// literature (STREAM fractions, Hockney n_1/2, BLAS3 fractions of peak),
// and are shared by all four applications — no per-experiment tuning.

const PlatformSpec& power3() {
  static const PlatformSpec spec = [] {
    PlatformSpec p;
    p.name = "Power3";
    p.is_vector = false;
    p.cpus_per_node = 16;
    p.clock_mhz = 375.0;
    p.peak_gflops = 1.5;
    p.mem_bw_gbs = 0.7;
    p.peak_bytes_per_flop = 0.47;
    p.mpi_latency_us = 16.3;
    p.net_bw_gbs = 0.13;
    p.bisection_bytes_per_flop = 0.087;
    p.bisection_reference_procs = 0;
    p.topology = Topology::FatTree;
    // 375 MHz, short 3-stage pipeline, effective prefetch: reaches a high
    // fraction of both its modest peak and its modest bandwidth.
    p.compute_efficiency = 0.65;  // PARATEC sustains 63% of peak (paper §4.2)
    p.cache_mb = 8.0;             // 8 MB private L2
    p.stream_bw_eff = 0.70;  // STREAM triad reaches ~0.5 GB/s of the 0.7 nominal
    p.cache_bw_multiplier = 9.0;  // private L2 bus: ~6.4 GB/s
    // Colony adapters progress MPI only inside library calls: roughly half of
    // a posted transfer actually proceeds while the CPU computes.
    p.overlap_eff = 0.50;
    return p;
  }();
  return spec;
}

const PlatformSpec& power4() {
  static const PlatformSpec spec = [] {
    PlatformSpec p;
    p.name = "Power4";
    p.is_vector = false;
    p.cpus_per_node = 32;
    p.clock_mhz = 1300.0;
    p.peak_gflops = 5.2;
    p.mem_bw_gbs = 2.3;
    p.peak_bytes_per_flop = 0.44;
    p.mpi_latency_us = 7.0;
    p.net_bw_gbs = 0.25;
    p.bisection_bytes_per_flop = 0.025;
    p.bisection_reference_procs = 0;
    p.topology = Topology::FatTree;
    // Long 6-stage pipeline, shared L2 between the two cores of a chip, and
    // heavy intra-node contention for memory bandwidth (paper §4.2): both
    // compute and bandwidth fractions sit well below the Power3's.
    p.compute_efficiency = 0.40;
    p.cache_mb = 16.0;  // 32 MB L3 shared by a 2-core chip
    p.stream_bw_eff = 0.42;  // chip-shared GX bus: both cores contend
    p.cache_bw_multiplier = 4.0;  // ~9 GB/s L2/L3 path per core
    // Federation offloads large transfers but interrupts steal cycles from
    // the computing cores; modest asynchronous progress.
    p.overlap_eff = 0.60;
    return p;
  }();
  return spec;
}

const PlatformSpec& altix() {
  static const PlatformSpec spec = [] {
    PlatformSpec p;
    p.name = "Altix";
    p.is_vector = false;
    p.cpus_per_node = 2;
    p.clock_mhz = 1500.0;
    p.peak_gflops = 6.0;
    p.mem_bw_gbs = 6.4;
    p.peak_bytes_per_flop = 1.1;
    p.mpi_latency_us = 2.8;
    p.net_bw_gbs = 0.40;
    p.bisection_bytes_per_flop = 0.067;
    p.bisection_reference_procs = 0;
    p.topology = Topology::FatTree;
    // Itanium2: wide in-order EPIC core with a large FP register file; does
    // well on software-pipelined dense kernels but cannot keep FP data in L1,
    // and sustains roughly half its nominal NUMAlink bandwidth on streams.
    p.compute_efficiency = 0.62;
    p.cache_mb = 6.0;  // 6 MB on-chip L3
    p.stream_bw_eff = 0.33;  // ~2 GB/s sustained of the 6.4 nominal
    p.cache_bw_multiplier = 4.0;  // on-chip L3 at ~25 GB/s
    // NUMAlink transfers are remote loads/stores driven by the hub chip;
    // they proceed mostly independently of the Itanium pipeline.
    p.overlap_eff = 0.70;
    return p;
  }();
  return spec;
}

const PlatformSpec& earth_simulator() {
  static const PlatformSpec spec = [] {
    PlatformSpec p;
    p.name = "ES";
    p.is_vector = true;
    p.cpus_per_node = 8;
    p.clock_mhz = 500.0;
    p.peak_gflops = 8.0;
    p.mem_bw_gbs = 32.0;
    p.peak_bytes_per_flop = 4.0;
    p.mpi_latency_us = 5.6;
    p.net_bw_gbs = 1.5;
    p.bisection_bytes_per_flop = 0.19;
    p.bisection_reference_procs = 0;  // single-stage crossbar: scale-free
    p.topology = Topology::Crossbar;
    p.vector_length = 256;
    // 4-way superscalar 500 MHz support processor: 1.0 Gflop/s (1/8 vector).
    p.scalar_gflops = 1.0;
    p.serialized_gflops = 1.0;  // no multistreaming, so no extra penalty
    // Branchy boundary-style loops sustain only a fraction of the support
    // processor's peak (it exists for control flow, not throughput).
    p.scalar_eff = 0.30;
    // 8-way replicated pipes fed by FPLRAM: short effective startup.
    p.vector_n_half = 30.0;
    p.vector_stream_eff = 0.75;
    p.vector_compute_eff = 0.85;
    // The RCU is a dedicated network processor per node: posted transfers
    // stream through the crossbar with almost no main-CPU involvement.
    p.overlap_eff = 0.85;
    return p;
  }();
  return spec;
}

const PlatformSpec& x1() {
  static const PlatformSpec spec = [] {
    PlatformSpec p;
    p.name = "X1";
    p.is_vector = true;
    p.cpus_per_node = 4;  // 4 MSPs share a flat memory
    p.clock_mhz = 800.0;
    p.peak_gflops = 12.8;  // MSP = 4 SSPs x 3.2
    p.mem_bw_gbs = 34.1;
    p.peak_bytes_per_flop = 2.7;
    p.mpi_latency_us = 7.3;
    p.net_bw_gbs = 6.3;
    p.bisection_bytes_per_flop = 0.0881;
    p.bisection_reference_procs = 2048;  // ratio quoted for 2048 MSPs
    p.topology = Topology::Torus2D;
    p.collective_eff = 0.25;  // immature UNICOS/mp MPI collectives
    p.vector_length = 64;
    // 400 MHz 2-way scalar core: 1/8 of SSP vector rate = 0.4 Gflop/s.
    p.scalar_gflops = 0.4;
    // Inside multistreamed code a serial loop runs on 1 of 4 SSP scalar
    // units: 1/32 of MSP peak (paper §2.5/§6.1).
    p.serialized_gflops = 0.4;
    p.scalar_eff = 0.30;
    // 32-stage pipes at 800 MHz with VL=64: startup is a larger share of a
    // strip than on the ES, and the compiler must also multistream.
    p.vector_n_half = 22.0;
    p.vector_stream_eff = 0.62;
    p.vector_compute_eff = 0.70;
    p.oneside_latency_us = 3.9;  // measured CAF latency (paper §3.1)
    // Fine-grain co-array puts compile to pipelined global stores; the
    // measured 3.9 us is a round-trip figure, not a per-store cost.
    p.oneside_per_msg_us = 0.01;
    p.supports_caf = true;
    // Globally addressable memory: remote stores retire from the E/M-chips
    // while the MSP keeps streaming vectors.
    p.overlap_eff = 0.80;
    return p;
  }();
  return spec;
}

const PlatformSpec& host2026() {
  static const PlatformSpec spec = [] {
    PlatformSpec p;
    p.name = "Host2026";
    // A 2026 commodity x86-64 core with AVX-512: architecturally it sits in
    // the paper's vector column — wide lanes fed by a short-vector ISA —
    // with a hardware VL of 8 doubles against the ES's 256 and the X1's 64.
    // Calibration constants below come from this repo's own measurements on
    // such a host (bench/wallclock "simd" probe and the simd.lanes_active
    // metrics; see docs/performance.md "Host SIMD"), not from vendor peaks.
    p.is_vector = true;
    p.cpus_per_node = 1;  // the CI/bench VM exposes a single core
    p.clock_mhz = 2100.0;
    // 8 lanes x 2 flops (mul+add; the portable layer forbids FMA
    // contraction for bitwise scalar equivalence) at 2.1 GHz.
    p.peak_gflops = 33.6;
    p.mem_bw_gbs = 15.0;  // single-core sustained stream on the VM class
    p.peak_bytes_per_flop = 0.45;
    // simrt in-process "MPI": a send is a fenced queue push.
    p.mpi_latency_us = 0.5;
    p.net_bw_gbs = 8.0;
    p.bisection_bytes_per_flop = 0.24;  // shared-memory all-to-all
    p.bisection_reference_procs = 0;
    p.collective_eff = 0.90;
    p.topology = Topology::FatTree;
    p.vector_length = 8;
    // Scalar unit: 2 flops/cycle superscalar issue.
    p.scalar_gflops = 4.2;
    p.serialized_gflops = 4.2;
    p.scalar_eff = 0.55;
    // Short pipes and L1-resident strips: half performance is reached within
    // a couple of hardware vectors, unlike the deep-pipe ES/X1.
    p.vector_n_half = 16.0;
    // Measured: the AVX-512 collision/ADM paths sustain a large fraction of
    // the auto-vectorized baseline's bandwidth; compute-bound gemm clears
    // ~80% of the no-FMA vector peak in the wallclock probe.
    p.vector_stream_eff = 0.75;
    p.vector_compute_eff = 0.80;
    p.compute_efficiency = 0.80;
    p.cache_mb = 32.0;  // L2 + L3 slice visible to the single core
    p.stream_bw_eff = 0.80;
    p.cache_bw_multiplier = 6.0;
    p.oneside_latency_us = 0.0;
    p.supports_caf = false;
    p.overlap_eff = 0.50;  // one core: overlap is cooperative, not free
    return p;
  }();
  return spec;
}

const std::vector<PlatformSpec>& all_platforms() {
  static const std::vector<PlatformSpec> platforms = {
      power3(), power4(), altix(), earth_simulator(), x1()};
  return platforms;
}

const PlatformSpec& platform_by_name(const std::string& name) {
  for (const auto& p : all_platforms()) {
    if (p.name == name) return p;
  }
  // The calibrated host platform is addressable by name but deliberately not
  // part of all_platforms(): the paper-table benches iterate the Table 1 five.
  if (name == host2026().name) return host2026();
  throw std::runtime_error("unknown platform: " + name);
}

const char* to_string(Topology t) {
  switch (t) {
    case Topology::FatTree: return "Fat-tree";
    case Topology::Crossbar: return "Crossbar";
    case Topology::Torus2D: return "2D-torus";
  }
  return "?";
}

}  // namespace vpar::arch
