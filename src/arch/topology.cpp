#include "arch/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

namespace vpar::arch {

namespace {

/// Parse a sysfs cpu-list string ("0-3,5,8-9") into sorted cpu ids. Returns
/// an empty vector on malformed input — callers treat that as "unknown".
std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // Trim whitespace (the files end with '\n').
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.back()))) {
      item.pop_back();
    }
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.front()))) {
      item.erase(item.begin());
    }
    if (item.empty()) continue;
    const auto dash = item.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(item));
      } else {
        const int lo = std::stoi(item.substr(0, dash));
        const int hi = std::stoi(item.substr(dash + 1));
        if (hi < lo || hi - lo > 4096) return {};
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      return {};
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

/// First line of a file, or empty when unreadable.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  return line;
}

/// Integer file content, or `fallback` when unreadable/malformed.
int read_int(const std::string& path, int fallback) {
  const std::string line = read_line(path);
  if (line.empty()) return fallback;
  try {
    return std::stoi(line);
  } catch (...) {
    return fallback;
  }
}

Topology fallback_topology() {
  Topology t;
  const unsigned hc = std::thread::hardware_concurrency();
  const int n = hc > 0 ? static_cast<int>(hc) : 1;
  t.cpus.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) t.cpus.push_back({c, c, 0, false});
  t.num_nodes = 1;
  t.probed = false;
  return t;
}

/// Shared shape of the two pin orders: primary threads of physical cores
/// first, SMT siblings after, each half emitted by `emit`.
std::vector<int> build_order(
    const std::vector<CpuInfo>& cpus,
    const std::function<void(std::vector<CpuInfo>&, std::vector<int>&)>& emit) {
  std::vector<CpuInfo> primaries;
  std::vector<CpuInfo> secondaries;
  for (const CpuInfo& c : cpus) {
    (c.smt_secondary ? secondaries : primaries).push_back(c);
  }
  std::vector<int> order;
  order.reserve(cpus.size());
  emit(primaries, order);
  emit(secondaries, order);
  return order;
}

}  // namespace

int Topology::num_cores() const {
  std::set<int> cores;
  for (const CpuInfo& c : cpus) cores.insert(c.core);
  return static_cast<int>(cores.size());
}

int Topology::node_of(int cpu) const {
  for (const CpuInfo& c : cpus) {
    if (c.cpu == cpu) return c.node;
  }
  return 0;
}

std::vector<int> Topology::pin_order_compact() const {
  return build_order(cpus, [](std::vector<CpuInfo>& group, std::vector<int>& out) {
    std::sort(group.begin(), group.end(), [](const CpuInfo& a, const CpuInfo& b) {
      return std::tie(a.node, a.core, a.cpu) < std::tie(b.node, b.core, b.cpu);
    });
    for (const CpuInfo& c : group) out.push_back(c.cpu);
  });
}

std::vector<int> Topology::pin_order_scatter() const {
  return build_order(cpus, [](std::vector<CpuInfo>& group, std::vector<int>& out) {
    // Queue per node, then deal one cpu from each node in turn.
    std::map<int, std::vector<CpuInfo>> by_node;
    for (const CpuInfo& c : group) by_node[c.node].push_back(c);
    for (auto& [node, list] : by_node) {
      std::sort(list.begin(), list.end(), [](const CpuInfo& a, const CpuInfo& b) {
        return std::tie(a.core, a.cpu) < std::tie(b.core, b.cpu);
      });
    }
    for (std::size_t i = 0; true; ++i) {
      bool any = false;
      for (auto& [node, list] : by_node) {
        if (i < list.size()) {
          out.push_back(list[i].cpu);
          any = true;
        }
      }
      if (!any) break;
    }
  });
}

Topology probe_topology(const std::string& sysfs_root) {
  const std::string cpu_root = sysfs_root + "/devices/system/cpu";
  const std::vector<int> online = parse_cpu_list(read_line(cpu_root + "/online"));
  if (online.empty()) return fallback_topology();

  Topology t;
  t.probed = true;

  // NUMA membership: node directories are sparse ("node0", "node2", ...);
  // scan a bounded id range instead of requiring directory iteration.
  std::map<int, std::vector<int>> node_cpus;
  const std::string node_root = sysfs_root + "/devices/system/node";
  for (int node = 0; node < 256; ++node) {
    const std::string list =
        read_line(node_root + "/node" + std::to_string(node) + "/cpulist");
    if (list.empty()) continue;
    std::vector<int> members = parse_cpu_list(list);
    if (!members.empty()) node_cpus[node] = std::move(members);
  }
  std::map<int, int> cpu_node;
  for (const auto& [node, members] : node_cpus) {
    for (int c : members) cpu_node[c] = node;
  }
  t.num_nodes = std::max<int>(1, static_cast<int>(node_cpus.size()));

  // Physical cores: (package, core_id) pairs remapped to dense indices, since
  // core_id values repeat across packages and can be sparse within one.
  std::map<std::pair<int, int>, int> core_index;
  for (int cpu : online) {
    const std::string topo = cpu_root + "/cpu" + std::to_string(cpu) + "/topology";
    CpuInfo info;
    info.cpu = cpu;
    const int package = read_int(topo + "/physical_package_id", 0);
    const int core_id = read_int(topo + "/core_id", cpu);
    const auto key = std::make_pair(package, core_id);
    info.core =
        core_index.emplace(key, static_cast<int>(core_index.size())).first->second;
    const std::vector<int> siblings =
        parse_cpu_list(read_line(topo + "/thread_siblings_list"));
    info.smt_secondary = !siblings.empty() && siblings.front() != cpu;
    auto node_it = cpu_node.find(cpu);
    info.node = node_it != cpu_node.end() ? node_it->second : 0;
    t.cpus.push_back(info);
  }
  return t;
}

const Topology& host_topology() {
  static const Topology topology = probe_topology("/sys");
  return topology;
}

}  // namespace vpar::arch
