#include "arch/machine_model.hpp"

namespace vpar::arch {

Prediction MachineModel::predict(const AppProfile& app) const {
  Prediction p;
  p.platform = spec_->name;
  p.compute_seconds = cpu_.profile_seconds(app.kernels);
  p.comm_seconds = net_.seconds(app.comm, app.procs);
  p.seconds = p.compute_seconds + p.comm_seconds;
  p.region_seconds = cpu_.region_seconds(app.kernels);

  if (p.seconds > 0.0 && app.procs > 0) {
    p.gflops_per_proc =
        app.baseline_flops / p.seconds / static_cast<double>(app.procs) / 1.0e9;
    p.pct_peak = p.gflops_per_proc / spec_->peak_gflops;
  }

  if (spec_->is_vector) {
    const auto stats = perf::compute_vector_stats(app.kernels, spec_->vector_length);
    p.vor = stats.vor;
    p.avl = stats.avl;
  }
  return p;
}

}  // namespace vpar::arch
