#include "arch/machine_model.hpp"

#include <algorithm>

namespace vpar::arch {

Prediction MachineModel::predict(const AppProfile& app) const {
  Prediction p;
  p.platform = spec_->name;
  p.threads_per_rank = app.threads_per_rank;
  p.compute_seconds = cpu_.profile_seconds(app.kernels);
  // Hybrid threading: loop-level threads split every kernel sweep at the
  // profile's efficiency, so compute time (and each region's share) divides
  // by the effective thread speedup. Communication is per rank and is not
  // sped up — exactly why the paper's hybrid GTC trails pure MPI per CPU.
  // (t * eff may be < 1: a bad split genuinely models slower than serial.)
  const double thread_speedup =
      app.threads_per_rank > 1 && app.thread_efficiency > 0.0
          ? static_cast<double>(app.threads_per_rank) * app.thread_efficiency
          : 1.0;
  p.compute_seconds /= thread_speedup;
  const CommTime comm = net_.time(app.comm, app.procs);
  p.comm_serialized_seconds = comm.serialized;
  p.comm_overlapped_seconds = comm.overlapped;
  // Overlap credit: of the hideable communication time, the platform hides
  // the fraction its progress engine sustains (overlap_eff) — and never more
  // than there is computation to hide it behind.
  p.comm_hidden_seconds =
      std::min(comm.overlapped * spec_->overlap_eff, p.compute_seconds);
  p.comm_seconds = comm.total() - p.comm_hidden_seconds;
  p.seconds = p.compute_seconds + p.comm_seconds;
  p.region_seconds = cpu_.region_seconds(app.kernels);
  if (thread_speedup != 1.0) {
    for (auto& [region, seconds] : p.region_seconds) seconds /= thread_speedup;
  }

  if (p.seconds > 0.0 && app.procs > 0) {
    p.gflops_per_proc =
        app.baseline_flops / p.seconds / static_cast<double>(app.procs) / 1.0e9;
    p.pct_peak = p.gflops_per_proc / spec_->peak_gflops;
  }

  if (spec_->is_vector) {
    const auto stats = perf::compute_vector_stats(app.kernels, spec_->vector_length);
    p.vor = stats.vor;
    p.avl = stats.avl;
  }
  return p;
}

}  // namespace vpar::arch
