#pragma once

#include <string>
#include <vector>

namespace vpar::arch {

/// One logical CPU of the host processor topology. `cpu` is the id that
/// affinity masks use; `core` is a dense physical-core index (SMT siblings
/// share it); `node` is the NUMA node owning the cpu's local memory.
struct CpuInfo {
  int cpu = 0;
  int core = 0;
  int node = 0;
  /// True when this logical cpu is not the lowest-numbered sibling of its
  /// physical core — a hyperthread sharing execution resources with another
  /// logical cpu. Pin orders place these last.
  bool smt_secondary = false;
};

/// Host processor topology: logical cpus with their physical core, SMT role
/// and NUMA node, as read from the Linux sysfs tree. On hosts without a
/// readable sysfs (non-Linux, restricted containers) the portable fallback
/// reports hardware_concurrency() cpus as distinct cores on a single node
/// with `probed == false` — callers still get valid pin orders, just without
/// real placement information.
struct Topology {
  std::vector<CpuInfo> cpus;
  int num_nodes = 1;
  bool probed = false;

  [[nodiscard]] int num_cpus() const { return static_cast<int>(cpus.size()); }

  /// Distinct physical cores (<= num_cpus when SMT is present).
  [[nodiscard]] int num_cores() const;

  /// NUMA node of a logical cpu (0 when unknown).
  [[nodiscard]] int node_of(int cpu) const;

  /// Cpu ids in pinning order for `slot = 0, 1, ...`:
  ///  - compact: fill one NUMA node's physical cores before moving to the
  ///    next node; SMT siblings only after every physical core is taken.
  ///    Neighbouring ranks land close together — the layout that keeps a
  ///    halo exchange's producer and consumer on one node.
  ///  - scatter: round-robin physical cores across NUMA nodes (then SMT
  ///    siblings likewise) — the layout that spreads memory bandwidth
  ///    demand over every memory controller.
  [[nodiscard]] std::vector<int> pin_order_compact() const;
  [[nodiscard]] std::vector<int> pin_order_scatter() const;
};

/// Probe the topology under `sysfs_root` (normally "/sys"; tests point it at
/// a synthetic tree or a nonexistent path to exercise the fallback). Never
/// throws: any unreadable file degrades to the portable fallback values for
/// that field.
[[nodiscard]] Topology probe_topology(const std::string& sysfs_root);

/// The real host's topology, probed once per process from "/sys".
[[nodiscard]] const Topology& host_topology();

}  // namespace vpar::arch
