#pragma once

#include <map>
#include <string>

#include "arch/platform.hpp"
#include "perf/kernel_profile.hpp"
#include "perf/loop_record.hpp"

namespace vpar::arch {

/// Single-processor execution-time model. Converts machine-independent
/// LoopRecords (what the application did) into predicted seconds on one CPU
/// of the given platform.
///
/// Vector platforms: vectorizable loops run at a Hockney-style rate
///   peak * compute_eff * l / (l + n_half)
/// where l is the average strip length after strip-mining to the hardware
/// vector length, bounded by pattern-derated memory bandwidth (vector units
/// are cacheless streamers). Non-vectorizable loops fall onto the scalar
/// unit — 1/8 of peak on the ES, effectively 1/32 of MSP peak on the X1
/// because a serialized loop inside multistreamed code keeps only one of the
/// four SSP scalar cores busy. This asymmetry is the paper's central
/// "architectural balance" observation.
///
/// Superscalar platforms: roofline between compute capability
/// (peak * compute_efficiency) and pattern-derated memory bandwidth, with
/// promotion to cache bandwidth when a loop's declared working set fits in
/// the last-level cache (the "smaller subdomain, better cache reuse" effect).
class CpuModel {
 public:
  explicit CpuModel(const PlatformSpec& spec) : spec_(&spec) {}

  /// Predicted seconds for one loop record on one CPU.
  [[nodiscard]] double loop_seconds(const perf::LoopRecord& rec) const;

  /// Predicted seconds for a whole per-rank kernel profile.
  [[nodiscard]] double profile_seconds(const perf::KernelProfile& profile) const;

  /// Per-region breakdown (seconds by region name).
  [[nodiscard]] std::map<std::string, double> region_seconds(
      const perf::KernelProfile& profile) const;

  [[nodiscard]] const PlatformSpec& spec() const { return *spec_; }

 private:
  [[nodiscard]] double vector_loop_seconds(const perf::LoopRecord& rec) const;
  [[nodiscard]] double superscalar_loop_seconds(const perf::LoopRecord& rec) const;

  const PlatformSpec* spec_;
};

}  // namespace vpar::arch
