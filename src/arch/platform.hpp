#pragma once

#include <string>
#include <vector>

namespace vpar::arch {

/// Interconnect topologies of the five studied systems (paper Table 1).
enum class Topology {
  FatTree,   ///< Power3 (Colony omega), Power4 (Federation), Altix (NUMAlink3)
  Crossbar,  ///< Earth Simulator single-stage crossbar
  Torus2D,   ///< Cray X1 modified 2D torus — bisection shrinks per-CPU with P
};

/// Architectural description of one platform. The first block is the paper's
/// Table 1 verbatim; the second block holds microarchitectural parameters
/// from Section 2 plus calibration constants documented next to the values in
/// platform.cpp.
struct PlatformSpec {
  std::string name;
  bool is_vector = false;

  // --- Table 1 -------------------------------------------------------------
  int cpus_per_node = 1;
  double clock_mhz = 0.0;
  double peak_gflops = 0.0;               ///< per CPU
  double mem_bw_gbs = 0.0;                ///< per CPU
  double peak_bytes_per_flop = 0.0;       ///< memory balance (Table 1 column)
  double mpi_latency_us = 0.0;
  double net_bw_gbs = 0.0;                ///< point-to-point, per CPU
  double bisection_bytes_per_flop = 0.0;  ///< at the reference configuration
  int bisection_reference_procs = 0;      ///< X1 ratio quoted at 2048 MSPs
  double collective_eff = 1.0;  ///< achieved fraction of theoretical all-to-all
                                ///< bandwidth (early X1 MPI collectives were
                                ///< far from line rate; see the ORNL X1
                                ///< evaluations the paper cites)
  Topology topology = Topology::FatTree;

  // --- vector execution (ES, X1) -------------------------------------------
  unsigned vector_length = 0;       ///< hardware max VL (256 ES, 64 X1)
  double scalar_gflops = 0.0;       ///< scalar-unit rate on unvectorized code
  double serialized_gflops = 0.0;   ///< rate when serialized inside streamed
                                    ///< code (X1: 1 of 4 SSPs -> 12.8/32)
  double scalar_eff = 1.0;          ///< sustained fraction of the scalar unit's
                                    ///< peak on branchy unvectorized loops
  double vector_n_half = 0.0;       ///< Hockney half-performance vector length
  double vector_stream_eff = 0.0;   ///< achievable fraction of memory BW,
                                    ///< unit stride
  double vector_compute_eff = 0.0;  ///< achievable fraction of peak on long
                                    ///< compute-bound vector loops (BLAS3)

  // --- superscalar execution (Power3/4, Altix) ------------------------------
  double compute_efficiency = 0.0;   ///< fraction of peak on cache-resident
                                     ///< compute-bound kernels (BLAS3)
  double cache_mb = 0.0;             ///< last-level cache per CPU
  double stream_bw_eff = 0.0;        ///< achievable fraction of quoted memory
                                     ///< bandwidth on unit-stride streams
  double cache_bw_multiplier = 0.0;  ///< cache BW relative to memory BW

  // --- one-sided communication ----------------------------------------------
  double oneside_latency_us = 0.0;  ///< CAF latency where supported (X1: 3.9)
  double oneside_per_msg_us = 0.0;  ///< pipelined per-put overhead (0 = use
                                    ///< oneside_latency_us per message)
  bool supports_caf = false;

  // --- communication/computation overlap ------------------------------------
  double overlap_eff = 0.0;  ///< fraction of *overlapped* communication time
                             ///< (traffic posted inside an OverlapScope) the
                             ///< NIC/network can genuinely hide behind
                             ///< computation; bounded by how asynchronous the
                             ///< MPI progress engine is on each system
};

/// The five platforms of the study.
[[nodiscard]] const PlatformSpec& power3();
[[nodiscard]] const PlatformSpec& power4();
[[nodiscard]] const PlatformSpec& altix();
[[nodiscard]] const PlatformSpec& earth_simulator();
[[nodiscard]] const PlatformSpec& x1();

/// A sixth, non-Table-1 platform: the modern x86-64 host this repo's SIMD
/// layer runs on, calibrated from the wallclock "simd" probe measurements
/// (short hardware vectors: VL = 8 doubles with AVX-512). Not included in
/// all_platforms() so the paper-table benches keep iterating the Table 1
/// five; addressable through platform_by_name("Host2026").
[[nodiscard]] const PlatformSpec& host2026();

/// All five, in the paper's Table 1 order.
[[nodiscard]] const std::vector<PlatformSpec>& all_platforms();

/// Lookup by name ("Power3", "Power4", "Altix", "ES", "X1", "Host2026");
/// throws on miss.
[[nodiscard]] const PlatformSpec& platform_by_name(const std::string& name);

[[nodiscard]] const char* to_string(Topology t);

}  // namespace vpar::arch
