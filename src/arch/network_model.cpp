#include "arch/network_model.hpp"

#include <algorithm>
#include <cmath>

namespace vpar::arch {

namespace {
constexpr double kGiga = 1.0e9;
constexpr double kMicro = 1.0e-6;

double log2ceil(int n) {
  double steps = 0.0;
  int v = 1;
  while (v < n) {
    v *= 2;
    steps += 1.0;
  }
  return std::max(steps, 1.0);
}
}  // namespace

double NetworkModel::bisection_gbs_total(int procs) const {
  double ratio = spec_->bisection_bytes_per_flop;
  if (spec_->topology == Topology::Torus2D && spec_->bisection_reference_procs > 0) {
    // A 2D torus of P nodes has O(sqrt(P)) bisection links, so bytes/flop
    // across the bisection shrinks as 1/sqrt(P); the paper quotes the ratio
    // at a 2048-MSP configuration. Small jobs run inside a sub-mesh of the
    // full torus, so they do not see a proportionally fatter bisection: cap
    // the per-flop ratio at twice the quoted figure.
    ratio *= std::min(2.0, std::sqrt(static_cast<double>(
                               spec_->bisection_reference_procs) /
                           std::max(1, procs)));
  }
  return ratio * spec_->peak_gflops * static_cast<double>(procs);
}

CommTime NetworkModel::time(const perf::CommProfile& per_rank, int procs) const {
  using perf::CommKind;
  const double latency = spec_->mpi_latency_us * kMicro;
  double oneside_latency =
      (spec_->oneside_latency_us > 0.0 ? spec_->oneside_latency_us
                                       : spec_->mpi_latency_us) *
      kMicro;
  // Pipelined one-sided stores pay a tiny per-put cost, not a full message
  // round trip (synchronization is charged through Barrier events instead).
  if (spec_->oneside_per_msg_us > 0.0) oneside_latency = spec_->oneside_per_msg_us * kMicro;
  const double link_bw = spec_->net_bw_gbs * kGiga;

  CommTime t;

  // Nearest-neighbour / irregular point-to-point traffic. Start-up latency
  // is always serialized; the transfer time of bytes posted inside an
  // overlap window is hideable.
  t.serialized += per_rank.messages(CommKind::PointToPoint) * latency +
                  per_rank.serialized_bytes(CommKind::PointToPoint) / link_bw;
  t.overlapped += per_rank.overlapped_bytes(CommKind::PointToPoint) / link_bw;

  // One-sided (CAF) traffic: cheaper latency, no intermediate copies.
  t.serialized += per_rank.messages(CommKind::OneSided) * oneside_latency +
                  per_rank.serialized_bytes(CommKind::OneSided) / link_bw;
  t.overlapped += per_rank.overlapped_bytes(CommKind::OneSided) / link_bw;

  // Global transposes: injection-bound per rank AND bisection-bound globally.
  {
    const double bytes = per_rank.bytes(CommKind::AllToAll);
    const double msgs = per_rank.messages(CommKind::AllToAll);
    if (bytes > 0.0 || msgs > 0.0) {
      const double injection = bytes / (link_bw * spec_->collective_eff);
      const double crossing = bytes * static_cast<double>(procs) / 2.0;
      const double bisection =
          crossing / (bisection_gbs_total(procs) * kGiga * spec_->collective_eff);
      // msgs counts collective operations; pipelined pairwise exchanges cost
      // log-depth start-up latency per operation.
      const double transfer = std::max(injection, bisection);
      // A pipelined transpose overlaps packing with the exchange rounds: the
      // overlapped fraction of its bytes is hideable transfer time.
      const double overlapped_frac =
          bytes > 0.0 ? per_rank.overlapped_bytes(CommKind::AllToAll) / bytes : 0.0;
      t.serialized += msgs * latency * log2ceil(procs) + transfer * (1.0 - overlapped_frac);
      t.overlapped += transfer * overlapped_frac;
    }
  }

  // Reductions, broadcasts and gathers synchronize the job: their profiles
  // already carry the log2(P) hop factor in message/byte counts, and none of
  // their time is hideable.
  t.serialized += per_rank.messages(CommKind::Reduction) * latency +
                  per_rank.bytes(CommKind::Reduction) / link_bw;
  t.serialized += per_rank.messages(CommKind::Broadcast) * latency +
                  per_rank.bytes(CommKind::Broadcast) / link_bw;
  t.serialized += per_rank.messages(CommKind::Gather) * latency +
                  per_rank.bytes(CommKind::Gather) / link_bw;

  // Barriers: a latency-bound log-depth exchange.
  t.serialized += per_rank.messages(CommKind::Barrier) * latency * log2ceil(procs);

  return t;
}

}  // namespace vpar::arch
