#pragma once

#include <map>
#include <string>

#include "arch/cpu_model.hpp"
#include "arch/network_model.hpp"
#include "arch/platform.hpp"
#include "perf/comm_profile.hpp"
#include "perf/kernel_profile.hpp"

namespace vpar::arch {

/// What one application run looks like to a machine model: the
/// (machine-independent) per-rank work and communication, plus the valid
/// baseline flop count the paper divides by wall-clock time. The baseline may
/// be smaller than the profile's flops when a port does extra work (e.g.
/// GTC's work-vector deposition) — exactly the paper's accounting rule.
struct AppProfile {
  perf::KernelProfile kernels;  ///< one representative (critical-path) rank
  perf::CommProfile comm;       ///< same rank's communication
  double baseline_flops = 0.0;  ///< total across ALL ranks
  int procs = 1;
  /// Hybrid (MPI+OpenMP-style) threading dimension: loop-level threads each
  /// rank spreads its kernel sweeps over (the paper's hybrid GTC rows; the
  /// simrt analogue is parallel_for helpers). procs counts CPUs, so with
  /// threads_per_rank = t there are procs/t ranks; the comm profile is still
  /// per *rank*. Compute time divides by t * thread_efficiency (> 1 thread).
  int threads_per_rank = 1;
  /// Parallel efficiency of the loop split (paper: ~0.5 — the hybrid 1024-way
  /// GTC run is ~20% slower than 64-way MPI despite 16x the CPUs).
  double thread_efficiency = 0.5;
};

/// Paper-style result for one (application, platform, concurrency) cell.
struct Prediction {
  std::string platform;
  double seconds = 0.0;           ///< predicted wall-clock
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;      ///< charged comm time (after overlap credit)
  double comm_serialized_seconds = 0.0;  ///< comm time with no overlap window
  double comm_overlapped_seconds = 0.0;  ///< hideable comm time posted in windows
  double comm_hidden_seconds = 0.0;      ///< part actually hidden behind compute
  double gflops_per_proc = 0.0;   ///< baseline flops / time / P
  double pct_peak = 0.0;          ///< gflops_per_proc / platform peak
  double vor = 0.0;               ///< vector platforms only, else 0
  double avl = 0.0;               ///< vector platforms only, else 0
  int threads_per_rank = 1;       ///< echoed from the profile (hybrid rows)
  std::map<std::string, double> region_seconds;
};

/// Front-end combining the CPU and network models for one platform.
class MachineModel {
 public:
  explicit MachineModel(const PlatformSpec& spec)
      : spec_(&spec), cpu_(spec), net_(spec) {}

  [[nodiscard]] Prediction predict(const AppProfile& app) const;

  [[nodiscard]] const PlatformSpec& spec() const { return *spec_; }
  [[nodiscard]] const CpuModel& cpu() const { return cpu_; }
  [[nodiscard]] const NetworkModel& network() const { return net_; }

 private:
  const PlatformSpec* spec_;
  CpuModel cpu_;
  NetworkModel net_;
};

}  // namespace vpar::arch
