#pragma once

#include <string>
#include <vector>

namespace vpar::core {

/// Static description of one studied application (paper Table 2).
struct AppInfo {
  std::string name;
  int lines;  ///< size of the original production code
  std::string discipline;
  std::string methods;
  std::string structure;
};

/// The four applications, in Table 2 order.
[[nodiscard]] const std::vector<AppInfo>& application_registry();

/// Table 2 plus the applications grown beyond the paper's study set (QCD —
/// the Earth Simulator generation's canonical workload class). Kept separate
/// so application_registry() stays pinned to the paper's table verbatim.
[[nodiscard]] const std::vector<AppInfo>& extended_application_registry();

}  // namespace vpar::core
