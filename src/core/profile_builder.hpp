#pragma once

#include "arch/machine_model.hpp"
#include "simrt/runtime.hpp"

namespace vpar::core {

/// Build an AppProfile from an instrumented simulated run.
///
/// The critical-path rank (largest modeled work by flop count) represents
/// per-rank compute; its communication profile represents per-rank traffic.
/// `baseline_flops` is the paper's "valid baseline flop count" for the whole
/// job — pass the algorithmic flops, not the instrumented flops, when a port
/// does extra work.
[[nodiscard]] arch::AppProfile from_run(const simrt::RunResult& run,
                                        double baseline_flops);

/// Extrapolate a measured profile to a larger configuration.
///
/// `work_factor` multiplies every loop's instance count (per rank);
/// `comm_factor` multiplies per-rank communication volume; `procs` is the
/// target concurrency; `baseline_flops` the baseline at the target scale.
/// Per-grid-point / per-particle counts are scale-invariant (tests verify
/// this at several sizes), which is what makes the extrapolation sound.
[[nodiscard]] arch::AppProfile scale_profile(const arch::AppProfile& base,
                                             double work_factor, double comm_factor,
                                             int procs, double baseline_flops);

}  // namespace vpar::core
