#include "core/profile_builder.hpp"

namespace vpar::core {

arch::AppProfile from_run(const simrt::RunResult& run, double baseline_flops) {
  arch::AppProfile app;
  app.procs = run.size();
  app.baseline_flops = baseline_flops;

  // Critical path: the rank doing the most floating-point work.
  std::size_t critical = 0;
  double best = -1.0;
  for (std::size_t r = 0; r < run.per_rank.size(); ++r) {
    const double flops = run.per_rank[r].kernels().total_flops();
    if (flops > best) {
      best = flops;
      critical = r;
    }
  }
  if (!run.per_rank.empty()) {
    app.kernels = run.per_rank[critical].kernels();
    app.comm = run.per_rank[critical].comm();
  }
  return app;
}

arch::AppProfile scale_profile(const arch::AppProfile& base, double work_factor,
                               double comm_factor, int procs, double baseline_flops) {
  arch::AppProfile out;
  out.kernels = base.kernels.scaled(work_factor);
  out.comm = base.comm.scaled(comm_factor);
  out.procs = procs;
  out.baseline_flops = baseline_flops;
  return out;
}

}  // namespace vpar::core
