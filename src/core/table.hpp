#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vpar::core {

/// Minimal fixed-width table printer used by every bench binary to emit
/// paper-style tables. Columns are sized to their widest cell; alignment is
/// right for cells that parse as numbers, left otherwise.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with a rule under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "4.62" style fixed-precision formatting helpers for table cells.
[[nodiscard]] std::string fmt_gflops(double gflops);
[[nodiscard]] std::string fmt_pct(double fraction);
[[nodiscard]] std::string fmt_fixed(double value, int digits);

}  // namespace vpar::core
