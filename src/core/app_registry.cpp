#include "core/app_registry.hpp"

namespace vpar::core {

const std::vector<AppInfo>& application_registry() {
  static const std::vector<AppInfo> apps = {
      {"LBMHD", 1500, "Plasma Physics",
       "Magneto-Hydrodynamics, Lattice Boltzmann", "Grid"},
      {"PARATEC", 50000, "Material Science",
       "Density Functional Theory, Kohn Sham, FFT", "Fourier/Grid"},
      {"CACTUS", 84000, "Astrophysics",
       "Einstein Theory of GR, ADM-BSSN, Method of Lines", "Grid"},
      {"GTC", 5000, "Magnetic Fusion",
       "Particle in Cell, gyrophase-averaged Vlasov-Poisson", "Particle"},
  };
  return apps;
}

const std::vector<AppInfo>& extended_application_registry() {
  static const std::vector<AppInfo> apps = [] {
    std::vector<AppInfo> all = application_registry();
    all.push_back({"QCD", 30000, "Lattice Gauge Theory",
                   "Staggered-fermion Dslash, even/odd preconditioning",
                   "Grid/4D"});
    return all;
  }();
  return apps;
}

}  // namespace vpar::core
