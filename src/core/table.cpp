#include "core/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace vpar::core {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::runtime_error("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt_gflops(double gflops) {
  char buf[32];
  if (gflops <= 0.0) return "--";
  if (gflops < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f", gflops);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", gflops);
  }
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  if (fraction <= 0.0) return "--";
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

std::string fmt_fixed(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace vpar::core
