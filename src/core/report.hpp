#pragma once

#include <iosfwd>

#include "arch/machine_model.hpp"
#include "perf/kernel_profile.hpp"

namespace vpar::core {

/// Print an ftrace/hpmcount-style per-region report of a kernel profile:
/// flops, memory traffic, arithmetic intensity, and (for a vector machine of
/// the given VL) the region's VOR and AVL.
void print_profile(std::ostream& os, const perf::KernelProfile& profile,
                   unsigned vector_length = 256);

/// Print one platform prediction with its per-region time breakdown —
/// the model-side analogue of the paper's profiling discussion.
void print_prediction(std::ostream& os, const arch::Prediction& prediction);

}  // namespace vpar::core
