#include "core/report.hpp"

#include <ostream>

#include "core/table.hpp"

namespace vpar::core {

void print_profile(std::ostream& os, const perf::KernelProfile& profile,
                   unsigned vector_length) {
  Table table({"Region", "Mflop", "MB moved", "flops/byte", "VOR", "AVL"});
  const double total = profile.total_flops();
  for (const auto& [region, records] : profile.regions()) {
    double flops = 0.0, bytes = 0.0;
    perf::KernelProfile sub;
    for (const auto& rec : records) {
      flops += rec.total_flops();
      bytes += rec.total_bytes();
      sub.record(region, rec);
    }
    const auto stats = perf::compute_vector_stats(sub, vector_length);
    table.add_row({region, fmt_fixed(flops / 1e6, 1), fmt_fixed(bytes / 1e6, 1),
                   bytes > 0.0 ? fmt_fixed(flops / bytes, 2) : "--",
                   fmt_pct(stats.vor), fmt_fixed(stats.avl, 0)});
  }
  table.print(os);
  os << "total: " << fmt_fixed(total / 1e6, 1) << " Mflop, "
     << fmt_fixed(profile.total_bytes() / 1e6, 1) << " MB\n";
}

void print_prediction(std::ostream& os, const arch::Prediction& p) {
  os << p.platform << ": " << fmt_gflops(p.gflops_per_proc) << " Gflops/P ("
     << fmt_pct(p.pct_peak) << " of peak), " << fmt_fixed(p.seconds, 3)
     << " s predicted (" << fmt_fixed(p.compute_seconds, 3) << " compute + "
     << fmt_fixed(p.comm_seconds, 3) << " comm)";
  if (p.avl > 0.0) {
    os << ", VOR " << fmt_pct(p.vor) << ", AVL " << fmt_fixed(p.avl, 0);
  }
  os << '\n';
  if (!p.region_seconds.empty()) {
    double total = 0.0;
    for (const auto& [region, t] : p.region_seconds) total += t;
    Table table({"Region", "seconds", "share"});
    for (const auto& [region, t] : p.region_seconds) {
      table.add_row({region, fmt_fixed(t, 4), fmt_pct(total > 0 ? t / total : 0.0)});
    }
    table.print(os);
  }
}

}  // namespace vpar::core
