#pragma once

#include <cstddef>

namespace vpar::cactus::detail {

/// All 26 grid-function base pointers, hoisted out of the sweep once (shared
/// by the scalar rhs_chunk in adm.cpp and the SIMD chunk kernel).
struct AdmFieldPointers {
  const double* h[6];
  const double* k[6];
  double* rhs_h[6];
  double* rhs_k[6];
  double* rhs_lapse;
};

/// SIMD ADM RHS chunk kernel: identical arithmetic and operation order to the
/// scalar rhs_chunk for `n` (<= kRowChunk = 128) consecutive points at flat
/// offset `base` — bitwise identical results, vector strips plus scalar tail.
void rhs_chunk_simd(const AdmFieldPointers& f, std::ptrdiff_t s0,
                    std::ptrdiff_t s1, std::ptrdiff_t s2, std::size_t base,
                    std::size_t n, double inv_12h2, double inv_144h2);

}  // namespace vpar::cactus::detail
