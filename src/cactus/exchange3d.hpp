#pragma once

#include <array>
#include <cstddef>

#include "cactus/grid.hpp"
#include "part/partition.hpp"
#include "simrt/communicator.hpp"

namespace vpar::cactus {

/// Block distribution of the global 3D grid over a (px, py, pz) processor
/// grid, optionally periodic. Non-periodic faces are where the radiation
/// boundary condition applies. Built on part::BlockPartition<3>, whose
/// axis-0-fastest linearization matches the rank = (ck*py + cj)*px + ci
/// convention this struct always used; the flat fields stay because the
/// kernels index through them.
struct Decomp3D {
  Decomp3D(std::size_t nx, std::size_t ny, std::size_t nz, int px, int py, int pz,
           int rank, bool periodic);

  std::size_t n[3];   ///< global extents (x, y, z)
  int p[3];           ///< processor grid
  int c[3];           ///< this rank's coordinates
  std::size_t nl[3];  ///< local extents
  bool periodic;
  part::BlockPartition<3> partition;  ///< the decomposition behind the above

  [[nodiscard]] int rank() const { return partition.rank_of({c[0], c[1], c[2]}); }
  [[nodiscard]] int rank_of(int ci, int cj, int ck) const;

  /// Neighbour rank along `axis` in direction `dir` (-1 or +1), or -1 when
  /// the face is a non-periodic global boundary.
  [[nodiscard]] int neighbor(int axis, int dir) const {
    return partition.neighbor(rank(), static_cast<std::size_t>(axis), dir);
  }

  [[nodiscard]] bool at_min(int axis) const { return c[axis] == 0; }
  [[nodiscard]] bool at_max(int axis) const { return c[axis] == p[axis] - 1; }

  /// Global index of this rank's first interior cell along `axis`.
  [[nodiscard]] std::size_t origin(int axis) const {
    return partition.axis_origin(static_cast<std::size_t>(axis), c[axis]);
  }
};

/// Fill the two-deep ghost zones of all fields from face neighbours using
/// three sweeps (x, then y including x ghosts, then z including x/y ghosts)
/// so edges and corners are carried without diagonal messages — the standard
/// Cactus driver pattern (paper Figure 6), now planned and executed by
/// part::plan_halo / part::exchange_halo. Non-periodic global faces are left
/// untouched; ghost contents are bitwise identical to the historical
/// hand-rolled exchange.
void exchange_ghosts(simrt::Communicator& comm, const Decomp3D& d,
                     GridFunctions& gf);

}  // namespace vpar::cactus
