#pragma once

#include "arch/machine_model.hpp"
#include "cactus/adm.hpp"
#include "cactus/boundary.hpp"

namespace vpar::cactus {

/// One cell of the paper's Table 5: weak scaling with a fixed per-processor
/// grid (80x80x80 or 250x64x64), radiation boundaries, ICN integration.
struct Table5Config {
  std::size_t nxl = 80, nyl = 80, nzl = 80;  ///< per-processor grid
  int procs = 16;
  int steps = 20;
  int icn_iterations = 3;
  RhsVariant rhs_variant = RhsVariant::Vector;
  std::size_t block = 16;
  BoundaryVariant bc_variant = BoundaryVariant::Scalar;  ///< ES ran unvectorized
  /// Extra compute derate on the Sources kernel, reproducing the paper's
  /// unexplained X1 gap: the extracted BSSN kernel hit 4.3 Gflop/s but the
  /// full production code never exceeded ~1 Gflop/s serial ("a machine
  /// architecture that has confounded this prediction methodology"; Cray
  /// engineers were still investigating). 1.0 = no derate.
  double production_derate = 1.0;
};

/// Synthesize the critical-path rank's AppProfile for a paper-scale Cactus
/// run. Weak scaling means per-rank interior work is constant; the critical
/// path is a corner rank, which additionally applies the radiation boundary
/// on three faces. Record shapes mirror the instrumented kernels (tests
/// assert agreement with measured small runs).
[[nodiscard]] arch::AppProfile make_profile(const Table5Config& config);

/// Baseline algorithmic flops for the whole job.
[[nodiscard]] double baseline_flops(const Table5Config& config);

}  // namespace vpar::cactus
