#pragma once

#include <array>
#include <cstddef>

#include "cactus/grid.hpp"

namespace vpar::cactus {

/// Field layout of the linearized ADM-BSSN system we evolve: the symmetric
/// metric perturbation h_ij (6), the extrinsic curvature K_ij (6), and the
/// lapse perturbation (1), 13 evolved grid functions in total.
///
/// Evolution equations (vacuum, linearized about Minkowski, geodesic
/// slicing, zero shift):
///   dt h_ij = -2 K_ij
///   dt K_ij = R^(1)_ij
///            = 1/2 ( dk di h_jk + dk dj h_ik - Lap h_ij - di dj tr h )
///   dt lapse = -2 tr K        (1+log slicing, linearized)
/// Transverse-traceless plane waves solve this system exactly, giving the
/// test suite an analytic gravitational-wave solution; flat space (all
/// fields zero) is a fixed point.
enum Field : int {
  HXX = 0, HXY, HXZ, HYY, HYZ, HZZ,
  KXX, KXY, KXZ, KYY, KYZ, KZZ,
  LAPSE,
  kNumFields,
};

/// Symmetric index helper: sym(a,b) for a,b in {0,1,2} -> 0..5 matching the
/// HXX..HZZ component order.
[[nodiscard]] constexpr int sym(int a, int b) {
  constexpr int table[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
  return table[a][b];
}

/// Loop-structure variants mirroring the paper's ports: Vector keeps the
/// full-row inner loop (blocking disabled, long vector lengths); Blocked
/// tiles the inner grid loop with slice buffers for cache locality on the
/// superscalar systems.
enum class RhsVariant { Vector, Blocked };

/// Evaluate the right-hand side of the evolution system on the interior
/// region [i0,i1) x [j0,j1) x [k0,k1) of the local block (bounds in interior
/// coordinates). Ghosts of `state` must be filled two layers deep.
void compute_rhs(const GridFunctions& state, GridFunctions& rhs, double h,
                 std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                 std::size_t k0, std::size_t k1, RhsVariant variant,
                 std::size_t block = 16);

/// Flops compute_rhs performs per interior grid point (kernel constant,
/// asserted against instrumented runs by the tests).
[[nodiscard]] double rhs_flops_per_point();

/// Approximate DRAM traffic of the RHS sweep per grid point.
[[nodiscard]] double rhs_bytes_per_point();

/// Linearized constraint residuals at one interior point (ghosts filled):
/// Hamiltonian H = di dj h_ij - Lap tr h, momentum M_i = dj (K_ij - d_ij trK).
struct Constraints {
  double hamiltonian = 0.0;
  std::array<double, 3> momentum{};
};
[[nodiscard]] Constraints constraints_at(const GridFunctions& state, double h,
                                         std::size_t i, std::size_t j, std::size_t k);

}  // namespace vpar::cactus
