#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace vpar::cactus {

/// Block of 3D grid functions with ghost width 2 (the multi-layer ghost
/// zones the paper's prefetch discussion hinges on). Storage is one
/// contiguous slab per field, x contiguous: field f, cell (k, j, i) lives at
/// field(f)[at(k, j, i)] where (k, j, i) index interior cells and may extend
/// into the ghosts with values in [-2, n+2).
class GridFunctions {
 public:
  static constexpr int kGhost = 2;

  GridFunctions(int nfields, std::size_t nx, std::size_t ny, std::size_t nz)
      : nfields_(nfields), nx_(nx), ny_(ny), nz_(nz),
        sx_(1), sy_(nx + 2 * kGhost), sz_(sy_ * (ny + 2 * kGhost)),
        plane_(sz_ * (nz + 2 * kGhost)),
        data_(static_cast<std::size_t>(nfields) * plane_, 0.0) {
    if (nfields <= 0) throw std::runtime_error("GridFunctions: need fields");
  }

  [[nodiscard]] int nfields() const { return nfields_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }

  /// Signed strides for stencil arithmetic.
  [[nodiscard]] std::ptrdiff_t sx() const { return static_cast<std::ptrdiff_t>(sx_); }
  [[nodiscard]] std::ptrdiff_t sy() const { return static_cast<std::ptrdiff_t>(sy_); }
  [[nodiscard]] std::ptrdiff_t sz() const { return static_cast<std::ptrdiff_t>(sz_); }

  [[nodiscard]] std::size_t field_size() const { return plane_; }

  [[nodiscard]] double* field(int f) {
    return data_.data() + static_cast<std::size_t>(f) * plane_;
  }
  [[nodiscard]] const double* field(int f) const {
    return data_.data() + static_cast<std::size_t>(f) * plane_;
  }

  [[nodiscard]] std::size_t at(std::ptrdiff_t k, std::ptrdiff_t j,
                               std::ptrdiff_t i) const {
    return static_cast<std::size_t>((k + kGhost) * sz() + (j + kGhost) * sy() +
                                    (i + kGhost));
  }

  void fill(double value) { data_.assign(data_.size(), value); }

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

 private:
  int nfields_;
  std::size_t nx_, ny_, nz_;
  std::size_t sx_, sy_, sz_;
  std::size_t plane_;
  std::vector<double> data_;
};

}  // namespace vpar::cactus
