#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "cactus/adm.hpp"
#include "cactus/boundary.hpp"
#include "cactus/exchange3d.hpp"
#include "cactus/grid.hpp"
#include "simrt/communicator.hpp"

namespace vpar::cactus {

/// Time integrators the Cactus GR solver supports (the paper names
/// staggered leapfrog, McCormack, Lax-Wendroff and iterative
/// Crank-Nicholson; we provide the two used in practice plus midpoint RK2).
enum class Integrator {
  IterativeCN,       ///< 3-pass iterative Crank-Nicholson (Cactus default)
  Rk2,               ///< midpoint Runge-Kutta
  StaggeredLeapfrog, ///< u^{n+1} = u^{n-1} + 2 dt RHS(u^n); RK2 bootstrap
};

/// Configuration of one Cactus-style evolution.
struct Options {
  std::size_t nx = 32, ny = 32, nz = 32;  ///< global grid
  int px = 1, py = 1, pz = 1;             ///< processor grid
  double h = 1.0;                         ///< grid spacing
  double cfl = 0.25;                      ///< dt = cfl * h
  bool periodic = true;                   ///< radiation boundaries if false
  RhsVariant rhs_variant = RhsVariant::Vector;
  std::size_t block = 16;
  BoundaryVariant bc_variant = BoundaryVariant::Vectorized;
  Integrator integrator = Integrator::IterativeCN;
  int icn_iterations = 3;  ///< iterative Crank-Nicholson depth
};

/// Initial data: physical coordinates (measured from the domain centre) to
/// the 13 field values.
using InitialData =
    std::function<std::array<double, kNumFields>(double x, double y, double z)>;

/// Linearized ADM-BSSN evolution on a block-decomposed 3D grid with
/// iterative Crank-Nicholson time integration, ghost-zone exchange and
/// radiation boundary conditions — the computational skeleton of the
/// Cactus GR solver the paper benchmarks.
class Evolution {
 public:
  Evolution(simrt::Communicator& comm, const Options& options);

  void initialize(const InitialData& id);
  void step();
  void run(int steps);

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] double dt() const { return options_.cfl * options_.h; }

  /// Global L2 norms over the RHS interior region (allreduced).
  [[nodiscard]] double constraint_l2();
  [[nodiscard]] double field_l2(int field);

  /// Global L2 error of `field` against an analytic solution evaluated at
  /// the current time.
  [[nodiscard]] double error_l2(
      int field, const std::function<double(double x, double y, double z,
                                            double t)>& exact);

  /// Assemble one field's global interior array on rank 0 (x fastest).
  [[nodiscard]] std::vector<double> gather(int field);

  [[nodiscard]] const Decomp3D& decomp() const { return decomp_; }
  [[nodiscard]] GridFunctions& state() { return *state_; }

 private:
  /// Interior bounds along `axis` for the RHS region (excludes radiation
  /// boundary layers at non-periodic global faces).
  [[nodiscard]] std::pair<std::size_t, std::size_t> rhs_bounds(int axis) const;

  void exchange(GridFunctions& gf) { exchange_ghosts(*comm_, decomp_, gf); }

  void step_icn();
  void step_rk2();
  void step_leapfrog();
  void apply_update(const GridFunctions& base, const GridFunctions& rhs,
                    double dt_eff);

  simrt::Communicator* comm_;
  Options options_;
  Decomp3D decomp_;
  std::unique_ptr<GridFunctions> state_;    // u^n, updated in place per step
  std::unique_ptr<GridFunctions> scratch_;  // midpoint state
  std::unique_ptr<GridFunctions> rhs_;
  std::unique_ptr<GridFunctions> initial_;  // u^n copy during the step
  std::unique_ptr<GridFunctions> previous_; // u^{n-1} for staggered leapfrog
  bool have_previous_ = false;
  double time_ = 0.0;
};

/// Transverse-traceless gravitational plane wave travelling in +z:
/// h_xx = -h_yy = A cos(k (z - t)), K_xx = -K_yy = -(A k / 2) sin(k (z - t)),
/// an exact solution of the evolved system (use with periodic boundaries and
/// k = 2 pi m / L_z).
[[nodiscard]] InitialData plane_wave_id(double amplitude, double k, double z0 = 0.0);

/// The exact h_xx of the plane wave at time t, for error measurement.
[[nodiscard]] std::function<double(double, double, double, double)>
plane_wave_exact_hxx(double amplitude, double k, double z0 = 0.0);

/// Compact Gaussian pulse in h_xx/K pair arranged to be outgoing, for
/// radiation-boundary tests.
[[nodiscard]] InitialData gaussian_pulse_id(double amplitude, double sigma);

}  // namespace vpar::cactus
