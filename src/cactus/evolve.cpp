#include "cactus/evolve.hpp"

#include <cmath>
#include <stdexcept>

namespace vpar::cactus {

namespace {
constexpr int G = GridFunctions::kGhost;
}

Evolution::Evolution(simrt::Communicator& comm, const Options& options)
    : comm_(&comm), options_(options),
      decomp_(options.nx, options.ny, options.nz, options.px, options.py,
              options.pz, comm.rank(), options.periodic) {
  if (options.px * options.py * options.pz != comm.size()) {
    throw std::runtime_error("cactus: processor grid does not match job size");
  }
  state_ = std::make_unique<GridFunctions>(kNumFields, decomp_.nl[0], decomp_.nl[1],
                                           decomp_.nl[2]);
  scratch_ = std::make_unique<GridFunctions>(kNumFields, decomp_.nl[0],
                                             decomp_.nl[1], decomp_.nl[2]);
  rhs_ = std::make_unique<GridFunctions>(kNumFields, decomp_.nl[0], decomp_.nl[1],
                                         decomp_.nl[2]);
  initial_ = std::make_unique<GridFunctions>(kNumFields, decomp_.nl[0],
                                             decomp_.nl[1], decomp_.nl[2]);
  previous_ = std::make_unique<GridFunctions>(kNumFields, decomp_.nl[0],
                                              decomp_.nl[1], decomp_.nl[2]);
}

std::pair<std::size_t, std::size_t> Evolution::rhs_bounds(int axis) const {
  std::size_t lo = 0, hi = decomp_.nl[axis];
  if (!options_.periodic) {
    if (decomp_.at_min(axis)) {
      const std::size_t face = G - std::min<std::size_t>(G, decomp_.origin(axis));
      lo = face;
    }
    if (decomp_.at_max(axis)) {
      hi -= G;  // local block is at least 2G wide (Decomp3D enforces)
    }
  }
  return {lo, hi};
}

void Evolution::initialize(const InitialData& id) {
  for (std::size_t k = 0; k < decomp_.nl[2]; ++k) {
    for (std::size_t j = 0; j < decomp_.nl[1]; ++j) {
      for (std::size_t i = 0; i < decomp_.nl[0]; ++i) {
        const double x = (static_cast<double>(decomp_.origin(0) + i) + 0.5 -
                          0.5 * static_cast<double>(decomp_.n[0])) *
                         options_.h;
        const double y = (static_cast<double>(decomp_.origin(1) + j) + 0.5 -
                          0.5 * static_cast<double>(decomp_.n[1])) *
                         options_.h;
        const double z = (static_cast<double>(decomp_.origin(2) + k) + 0.5 -
                          0.5 * static_cast<double>(decomp_.n[2])) *
                         options_.h;
        const auto values = id(x, y, z);
        const std::size_t o = state_->at(static_cast<std::ptrdiff_t>(k),
                                         static_cast<std::ptrdiff_t>(j),
                                         static_cast<std::ptrdiff_t>(i));
        for (int f = 0; f < kNumFields; ++f) state_->field(f)[o] = values[static_cast<std::size_t>(f)];
      }
    }
  }
  time_ = 0.0;
  have_previous_ = false;
}

void Evolution::apply_update(const GridFunctions& base, const GridFunctions& rhs,
                             double dt_eff) {
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  for (int f = 0; f < kNumFields; ++f) {
    const double* u0 = base.field(f);
    const double* r = rhs.field(f);
    double* u = state_->field(f);
    for (std::size_t k = k0; k < k1; ++k) {
      for (std::size_t j = j0; j < j1; ++j) {
        const std::size_t row = state_->at(static_cast<std::ptrdiff_t>(k),
                                           static_cast<std::ptrdiff_t>(j),
                                           static_cast<std::ptrdiff_t>(i0));
        for (std::size_t i = 0; i < i1 - i0; ++i) {
          u[row + i] = u0[row + i] + dt_eff * r[row + i];
        }
      }
    }
  }
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(kNumFields) *
                  static_cast<double>((j1 - j0) * (k1 - k0));
  rec.trips = static_cast<double>(i1 - i0);
  rec.flops_per_trip = 2.0;
  rec.bytes_per_trip = 3.0 * sizeof(double);
  rec.access = perf::AccessPattern::Stream;
  perf::record_loop("icn_update", rec);
}

void Evolution::step_icn() {
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  const double dtv = dt();

  for (int it = 0; it < options_.icn_iterations; ++it) {
    GridFunctions* mid;
    if (it == 0) {
      mid = initial_.get();
    } else {
      // midpoint state 1/2 (u^n + u_current), interior + boundary layers.
      scratch_->raw() = initial_->raw();
      const auto& cur = state_->raw();
      auto& s = scratch_->raw();
      for (std::size_t idx = 0; idx < s.size(); ++idx) {
        s[idx] = 0.5 * (s[idx] + cur[idx]);
      }
      mid = scratch_.get();
    }
    exchange(*mid);
    compute_rhs(*mid, *rhs_, options_.h, i0, i1, j0, j1, k0, k1,
                options_.rhs_variant, options_.block);
    apply_update(*initial_, *rhs_, dtv);
    apply_radiation_boundary(decomp_, *initial_, *state_, options_.h, dtv,
                             options_.bc_variant);
  }
}

void Evolution::step_rk2() {
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  const double dtv = dt();

  // Half step into state_, then full step from the midpoint.
  exchange(*initial_);
  compute_rhs(*initial_, *rhs_, options_.h, i0, i1, j0, j1, k0, k1,
              options_.rhs_variant, options_.block);
  apply_update(*initial_, *rhs_, 0.5 * dtv);
  apply_radiation_boundary(decomp_, *initial_, *state_, options_.h, 0.5 * dtv,
                           options_.bc_variant);

  scratch_->raw() = state_->raw();
  exchange(*scratch_);
  compute_rhs(*scratch_, *rhs_, options_.h, i0, i1, j0, j1, k0, k1,
              options_.rhs_variant, options_.block);
  apply_update(*initial_, *rhs_, dtv);
  apply_radiation_boundary(decomp_, *initial_, *state_, options_.h, dtv,
                           options_.bc_variant);
}

void Evolution::step_leapfrog() {
  if (!have_previous_) {
    // Bootstrap the first step with RK2; afterwards u^{n-1} is available.
    previous_->raw() = state_->raw();
    step_rk2();
    have_previous_ = true;
    return;
  }
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  const double dtv = dt();

  exchange(*initial_);
  compute_rhs(*initial_, *rhs_, options_.h, i0, i1, j0, j1, k0, k1,
              options_.rhs_variant, options_.block);
  // u^{n+1} = u^{n-1} + 2 dt RHS(u^n); boundary from u^n with dt.
  apply_update(*previous_, *rhs_, 2.0 * dtv);
  apply_radiation_boundary(decomp_, *initial_, *state_, options_.h, dtv,
                           options_.bc_variant);
  previous_->raw() = initial_->raw();
}

void Evolution::step() {
  // Snapshot u^n.
  initial_->raw() = state_->raw();
  switch (options_.integrator) {
    case Integrator::IterativeCN: step_icn(); break;
    case Integrator::Rk2: step_rk2(); break;
    case Integrator::StaggeredLeapfrog: step_leapfrog(); break;
  }
  time_ += dt();
}

void Evolution::run(int steps) {
  for (int s = 0; s < steps; ++s) step();
}

double Evolution::constraint_l2() {
  exchange(*state_);
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  double sum = 0.0, count = 0.0;
  for (std::size_t k = k0; k < k1; ++k) {
    for (std::size_t j = j0; j < j1; ++j) {
      for (std::size_t i = i0; i < i1; ++i) {
        const auto c = constraints_at(*state_, options_.h, i, j, k);
        sum += c.hamiltonian * c.hamiltonian;
        for (double m : c.momentum) sum += m * m;
        count += 1.0;
      }
    }
  }
  sum = comm_->allreduce(sum, simrt::ReduceOp::Sum);
  count = comm_->allreduce(count, simrt::ReduceOp::Sum);
  return count > 0.0 ? std::sqrt(sum / count) : 0.0;
}

double Evolution::field_l2(int field) {
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  double sum = 0.0, count = 0.0;
  const double* u = state_->field(field);
  for (std::size_t k = k0; k < k1; ++k) {
    for (std::size_t j = j0; j < j1; ++j) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double v = u[state_->at(static_cast<std::ptrdiff_t>(k),
                                      static_cast<std::ptrdiff_t>(j),
                                      static_cast<std::ptrdiff_t>(i))];
        sum += v * v;
        count += 1.0;
      }
    }
  }
  sum = comm_->allreduce(sum, simrt::ReduceOp::Sum);
  count = comm_->allreduce(count, simrt::ReduceOp::Sum);
  return count > 0.0 ? std::sqrt(sum / count) : 0.0;
}

double Evolution::error_l2(
    int field,
    const std::function<double(double, double, double, double)>& exact) {
  const auto [i0, i1] = rhs_bounds(0);
  const auto [j0, j1] = rhs_bounds(1);
  const auto [k0, k1] = rhs_bounds(2);
  double sum = 0.0, count = 0.0;
  const double* u = state_->field(field);
  for (std::size_t k = k0; k < k1; ++k) {
    for (std::size_t j = j0; j < j1; ++j) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double x = (static_cast<double>(decomp_.origin(0) + i) + 0.5 -
                          0.5 * static_cast<double>(decomp_.n[0])) *
                         options_.h;
        const double y = (static_cast<double>(decomp_.origin(1) + j) + 0.5 -
                          0.5 * static_cast<double>(decomp_.n[1])) *
                         options_.h;
        const double z = (static_cast<double>(decomp_.origin(2) + k) + 0.5 -
                          0.5 * static_cast<double>(decomp_.n[2])) *
                         options_.h;
        const double v = u[state_->at(static_cast<std::ptrdiff_t>(k),
                                      static_cast<std::ptrdiff_t>(j),
                                      static_cast<std::ptrdiff_t>(i))] -
                         exact(x, y, z, time_);
        sum += v * v;
        count += 1.0;
      }
    }
  }
  sum = comm_->allreduce(sum, simrt::ReduceOp::Sum);
  count = comm_->allreduce(count, simrt::ReduceOp::Sum);
  return count > 0.0 ? std::sqrt(sum / count) : 0.0;
}

std::vector<double> Evolution::gather(int field) {
  const std::size_t nxl = decomp_.nl[0], nyl = decomp_.nl[1], nzl = decomp_.nl[2];
  std::vector<double> local(nxl * nyl * nzl);
  const double* u = state_->field(field);
  for (std::size_t k = 0; k < nzl; ++k) {
    for (std::size_t j = 0; j < nyl; ++j) {
      for (std::size_t i = 0; i < nxl; ++i) {
        local[(k * nyl + j) * nxl + i] =
            u[state_->at(static_cast<std::ptrdiff_t>(k),
                         static_cast<std::ptrdiff_t>(j),
                         static_cast<std::ptrdiff_t>(i))];
      }
    }
  }
  const std::size_t total = decomp_.n[0] * decomp_.n[1] * decomp_.n[2];
  std::vector<double> flat(comm_->rank() == 0 ? total : 0);
  comm_->gather<double>(local, flat, 0);
  if (comm_->rank() != 0) return {};

  std::vector<double> global(total);
  for (int r = 0; r < comm_->size(); ++r) {
    const Decomp3D rd(decomp_.n[0], decomp_.n[1], decomp_.n[2], decomp_.p[0],
                      decomp_.p[1], decomp_.p[2], r, decomp_.periodic);
    const double* block = flat.data() + static_cast<std::size_t>(r) * local.size();
    for (std::size_t k = 0; k < nzl; ++k) {
      for (std::size_t j = 0; j < nyl; ++j) {
        for (std::size_t i = 0; i < nxl; ++i) {
          const std::size_t gx = rd.origin(0) + i;
          const std::size_t gy = rd.origin(1) + j;
          const std::size_t gz = rd.origin(2) + k;
          global[(gz * decomp_.n[1] + gy) * decomp_.n[0] + gx] =
              block[(k * nyl + j) * nxl + i];
        }
      }
    }
  }
  return global;
}

InitialData plane_wave_id(double amplitude, double k, double z0) {
  return [amplitude, k, z0](double, double, double z) {
    std::array<double, kNumFields> v{};
    const double phase = k * (z - z0);
    v[HXX] = amplitude * std::cos(phase);
    v[HYY] = -v[HXX];
    v[KXX] = -0.5 * amplitude * k * std::sin(phase);
    v[KYY] = -v[KXX];
    return v;
  };
}

std::function<double(double, double, double, double)> plane_wave_exact_hxx(
    double amplitude, double k, double z0) {
  return [amplitude, k, z0](double, double, double z, double t) {
    return amplitude * std::cos(k * (z - z0 - t));
  };
}

InitialData gaussian_pulse_id(double amplitude, double sigma) {
  return [amplitude, sigma](double x, double y, double z) {
    std::array<double, kNumFields> v{};
    const double r2 = x * x + y * y + z * z;
    v[HXX] = amplitude * std::exp(-r2 / (sigma * sigma));
    v[HYY] = -v[HXX];
    return v;
  };
}

}  // namespace vpar::cactus
