#include "cactus/workload.hpp"

#include <cmath>

#include "cactus/grid.hpp"

namespace vpar::cactus {

namespace {
constexpr int G = GridFunctions::kGhost;

/// Near-cubic processor grid factorization of P.
void factor3(int procs, int out[3]) {
  out[0] = out[1] = out[2] = 1;
  int rest = procs;
  for (int axis = 0; rest > 1;) {
    // Peel the smallest prime factor onto the currently smallest dimension.
    int f = 2;
    while (rest % f != 0) ++f;
    rest /= f;
    int smallest = 0;
    for (int a = 1; a < 3; ++a) {
      if (out[a] < out[smallest]) smallest = a;
    }
    out[smallest] *= f;
    (void)axis;
  }
}

}  // namespace

double baseline_flops(const Table5Config& c) {
  const double points = static_cast<double>(c.nxl * c.nyl * c.nzl) *
                        static_cast<double>(c.procs);
  const double per_step =
      static_cast<double>(c.icn_iterations) *
      (rhs_flops_per_point() + 2.0 * kNumFields);  // RHS + ICN update
  return points * per_step * static_cast<double>(c.steps);
}

arch::AppProfile make_profile(const Table5Config& c) {
  arch::AppProfile app;
  app.procs = c.procs;
  app.baseline_flops = baseline_flops(c);

  int pgrid[3];
  factor3(c.procs, pgrid);
  const double evals = static_cast<double>(c.steps) *
                       static_cast<double>(c.icn_iterations);
  const double nxl = static_cast<double>(c.nxl);
  const double nyl = static_cast<double>(c.nyl);
  const double nzl = static_cast<double>(c.nzl);

  // --- interior RHS (shape mirrors compute_rhs) -----------------------------
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.flops_per_trip = rhs_flops_per_point();
    rec.bytes_per_trip = rhs_bytes_per_point();
    rec.access = perf::AccessPattern::Strided;
    rec.compute_derate = 0.45 * c.production_derate;
    if (c.rhs_variant == RhsVariant::Vector || c.block >= c.nxl) {
      rec.instances = nyl * nzl * evals;
      rec.trips = nxl;
    } else {
      const double tiles = std::ceil(nxl / static_cast<double>(c.block));
      rec.instances = nyl * nzl * tiles * evals;
      rec.trips = static_cast<double>(std::min(c.block, c.nxl));
      rec.working_set_bytes = 13.0 * 5.0 * rec.trips * sizeof(double) * 5.0;
    }
    app.kernels.record("ADM_BSSN_Sources", rec);
  }

  // --- ICN update ------------------------------------------------------------
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = static_cast<double>(kNumFields) * nyl * nzl * evals;
    rec.trips = nxl;
    rec.flops_per_trip = 2.0;
    rec.bytes_per_trip = 3.0 * sizeof(double);
    rec.access = perf::AccessPattern::Stream;
    app.kernels.record("icn_update", rec);
  }

  // --- radiation boundary on the critical-path (corner) rank ----------------
  // A corner rank owns a share of three global faces; with face priority the
  // point count is G * (nyl nzl + (nxl - G) nzl + (nxl - G)(nyl - G)).
  {
    const double points = static_cast<double>(G) *
                          (nyl * nzl + (nxl - G) * nzl + (nxl - G) * (nyl - G));
    perf::LoopRecord rec;
    rec.flops_per_trip = boundary_flops_per_point() * kNumFields;
    rec.bytes_per_trip = 2.0 * kNumFields * sizeof(double);
    rec.access = perf::AccessPattern::Strided;
    if (c.bc_variant == BoundaryVariant::Scalar) {
      rec.vectorizable = false;
      rec.instances = evals;
      rec.trips = points;
    } else {
      rec.vectorizable = true;
      // Dominant face sweep: inner loop across x rows of the yz face slabs.
      rec.instances = evals * points / nxl;
      rec.trips = nxl;
    }
    app.kernels.record("boundary", rec);
  }

  // --- ghost exchange --------------------------------------------------------
  // Six faces, two layers deep, 13 fields; corner rank exchanges three faces
  // (its other three are global boundaries).
  {
    const double face_x = nyl * nzl, face_y = nxl * nzl, face_z = nxl * nyl;
    const double bytes = static_cast<double>(G) * 13.0 * sizeof(double) *
                         (face_x + face_y + face_z);
    // exchange_ghosts posts both face receives before packing each axis
    // sweep: three overlap windows per evaluation.
    app.comm.record_overlapped(perf::CommKind::PointToPoint, 3.0 * 2.0 * evals,
                               bytes * evals);
    app.comm.record_overlap_window(3.0 * evals);
  }

  return app;
}

}  // namespace vpar::cactus
