#pragma once

#include <cstddef>

namespace vpar::cactus {

/// Fourth-order centered finite-difference stencils. `p` points at the
/// center cell; `s` is the signed element stride of the differentiation
/// axis; `h` is the grid spacing.

/// First derivative: (-u[+2] + 8u[+1] - 8u[-1] + u[-2]) / 12h.
[[nodiscard]] inline double d1(const double* p, std::ptrdiff_t s, double inv_12h) {
  return (-p[2 * s] + 8.0 * p[s] - 8.0 * p[-s] + p[-2 * s]) * inv_12h;
}

/// Pure second derivative:
/// (-u[+2] + 16u[+1] - 30u[0] + 16u[-1] - u[-2]) / 12h^2.
[[nodiscard]] inline double d2(const double* p, std::ptrdiff_t s, double inv_12h2) {
  return (-p[2 * s] + 16.0 * p[s] - 30.0 * p[0] + 16.0 * p[-s] - p[-2 * s]) *
         inv_12h2;
}

/// Mixed second derivative as the tensor product of two first-derivative
/// stencils (16 taps), fourth-order accurate.
[[nodiscard]] inline double d11(const double* p, std::ptrdiff_t sa, std::ptrdiff_t sb,
                                double inv_144h2) {
  auto row = [&](std::ptrdiff_t off) {
    return -p[off + 2 * sb] + 8.0 * p[off + sb] - 8.0 * p[off - sb] + p[off - 2 * sb];
  };
  return (-row(2 * sa) + 8.0 * row(sa) - 8.0 * row(-sa) + row(-2 * sa)) * inv_144h2;
}

/// One-sided (upwind, 2nd order) first derivative pointing in +s direction:
/// (-3u[0] + 4u[+1] - u[+2]) / 2h.
[[nodiscard]] inline double d1_onesided(const double* p, std::ptrdiff_t s,
                                        double inv_2h) {
  return (-3.0 * p[0] + 4.0 * p[s] - p[2 * s]) * inv_2h;
}

}  // namespace vpar::cactus
