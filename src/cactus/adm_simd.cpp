#include "cactus/adm_simd.hpp"

#include "cactus/adm.hpp"
#include "simd/dispatch.hpp"
#include "simd/simd.hpp"

namespace vpar::cactus::detail {

namespace {

using simd::load;
using simd::splat;
using simd::store;

constexpr std::size_t kRowChunk = 128;  // matches the scalar rhs_chunk

/// Vector fourth-order pure second derivative, lane i = d2(p + i, s): same
/// expression and association as cactus/deriv.hpp d2.
template <std::size_t W>
VPAR_SIMD_INLINE simd::vec<W> vd2(const double* p, std::ptrdiff_t s,
                                  double inv_12h2) {
  return (-load<W>(p + 2 * s) + splat<W>(16.0) * load<W>(p + s) -
          splat<W>(30.0) * load<W>(p) + splat<W>(16.0) * load<W>(p - s) -
          load<W>(p - 2 * s)) *
         splat<W>(inv_12h2);
}

template <std::size_t W>
VPAR_SIMD_INLINE simd::vec<W> vrow4(const double* p, std::ptrdiff_t off,
                                    std::ptrdiff_t sb) {
  return -load<W>(p + off + 2 * sb) + splat<W>(8.0) * load<W>(p + off + sb) -
         splat<W>(8.0) * load<W>(p + off - sb) + load<W>(p + off - 2 * sb);
}

/// Vector mixed second derivative, lane i = d11(p + i, sa, sb).
template <std::size_t W>
VPAR_SIMD_INLINE simd::vec<W> vd11(const double* p, std::ptrdiff_t sa,
                                   std::ptrdiff_t sb, double inv_144h2) {
  return (-vrow4<W>(p, 2 * sa, sb) + splat<W>(8.0) * vrow4<W>(p, sa, sb) -
          splat<W>(8.0) * vrow4<W>(p, -sa, sb) + vrow4<W>(p, -2 * sa, sb)) *
         splat<W>(inv_144h2);
}

/// Width-templated chunk kernel over points [i0, i1) (both multiples of W
/// apart; i1 <= kRowChunk). Every stage indexes the slice buffers by the
/// absolute point index, so the vector strip and the scalar tail instantiation
/// can split one chunk without handing buffers across.
template <std::size_t W>
VPAR_SIMD_INLINE void rhs_chunk_w(const AdmFieldPointers& f, std::ptrdiff_t s0,
                                  std::ptrdiff_t s1, std::ptrdiff_t s2,
                                  std::size_t base, std::size_t i0,
                                  std::size_t i1, double inv_12h2,
                                  double inv_144h2) {
  using V = simd::vec<W>;
  double dd[6][6][kRowChunk];  // [derivative pair][component][point]
  double ddtr[6][kRowChunk];   // d_i d_j (tr h) per pair

  for (int m = 0; m < 6; ++m) {
    const double* __restrict p = f.h[m] + base;
    double* __restrict q00 = dd[sym(0, 0)][m];
    double* __restrict q11 = dd[sym(1, 1)][m];
    double* __restrict q22 = dd[sym(2, 2)][m];
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q00 + i, vd2<W>(p + i, s0, inv_12h2));
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q11 + i, vd2<W>(p + i, s1, inv_12h2));
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q22 + i, vd2<W>(p + i, s2, inv_12h2));
    double* __restrict q01 = dd[sym(0, 1)][m];
    double* __restrict q02 = dd[sym(0, 2)][m];
    double* __restrict q12 = dd[sym(1, 2)][m];
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q01 + i, vd11<W>(p + i, s0, s1, inv_144h2));
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q02 + i, vd11<W>(p + i, s0, s2, inv_144h2));
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q12 + i, vd11<W>(p + i, s1, s2, inv_144h2));
  }

  for (int pr = 0; pr < 6; ++pr) {
    const double* __restrict a = dd[pr][sym(0, 0)];
    const double* __restrict b = dd[pr][sym(1, 1)];
    const double* __restrict c = dd[pr][sym(2, 2)];
    double* __restrict q = ddtr[pr];
    for (std::size_t i = i0; i < i1; i += W)
      store<W>(q + i, load<W>(a + i) + load<W>(b + i) + load<W>(c + i));
  }

  {
    const double* __restrict k0 = f.k[sym(0, 0)] + base;
    const double* __restrict k1 = f.k[sym(1, 1)] + base;
    const double* __restrict k2 = f.k[sym(2, 2)] + base;
    double* __restrict out = f.rhs_lapse + base;
    for (std::size_t i = i0; i < i1; i += W) {
      V trk = splat<W>(0.0) + load<W>(k0 + i);
      trk = trk + load<W>(k1 + i);
      trk = trk + load<W>(k2 + i);
      store<W>(out + i, splat<W>(-2.0) * trk);
    }
  }

  for (int a = 0; a < 3; ++a) {
    for (int b = a; b < 3; ++b) {
      const int m = sym(a, b);
      const double* __restrict t1x = dd[sym(0, a)][sym(b, 0)];
      const double* __restrict t1y = dd[sym(1, a)][sym(b, 1)];
      const double* __restrict t1z = dd[sym(2, a)][sym(b, 2)];
      const double* __restrict t2x = dd[sym(0, b)][sym(a, 0)];
      const double* __restrict t2y = dd[sym(1, b)][sym(a, 1)];
      const double* __restrict t2z = dd[sym(2, b)][sym(a, 2)];
      const double* __restrict l0 = dd[sym(0, 0)][m];
      const double* __restrict l1 = dd[sym(1, 1)][m];
      const double* __restrict l2 = dd[sym(2, 2)][m];
      const double* __restrict dt = ddtr[m];
      const double* __restrict km = f.k[m] + base;
      double* __restrict out_h = f.rhs_h[m] + base;
      double* __restrict out_k = f.rhs_k[m] + base;
      for (std::size_t i = i0; i < i1; i += W) {
        V term1 = splat<W>(0.0) + load<W>(t1x + i);
        term1 = term1 + load<W>(t1y + i);
        term1 = term1 + load<W>(t1z + i);
        V term2 = splat<W>(0.0) + load<W>(t2x + i);
        term2 = term2 + load<W>(t2y + i);
        term2 = term2 + load<W>(t2z + i);
        const V lap = load<W>(l0 + i) + load<W>(l1 + i) + load<W>(l2 + i);
        const V ricci =
            splat<W>(0.5) * (term1 + term2 - lap - load<W>(dt + i));
        store<W>(out_h + i, splat<W>(-2.0) * load<W>(km + i));
        store<W>(out_k + i, ricci);
      }
    }
  }
}

template <std::size_t W>
VPAR_SIMD_INLINE void rhs_chunk_span_w(const AdmFieldPointers& f,
                                       std::ptrdiff_t s0, std::ptrdiff_t s1,
                                       std::ptrdiff_t s2, std::size_t base,
                                       std::size_t n, double inv_12h2,
                                       double inv_144h2) {
  const std::size_t nv = n / W * W;
  rhs_chunk_w<W>(f, s0, s1, s2, base, 0, nv, inv_12h2, inv_144h2);
  rhs_chunk_w<1>(f, s0, s1, s2, base, nv, n, inv_12h2, inv_144h2);
}

#if VPAR_SIMD_CLONE_AVX
__attribute__((noinline, target("avx"))) void rhs_chunk_v4(
    const AdmFieldPointers& f, std::ptrdiff_t s0, std::ptrdiff_t s1,
    std::ptrdiff_t s2, std::size_t base, std::size_t n, double inv_12h2,
    double inv_144h2) {
  rhs_chunk_span_w<4>(f, s0, s1, s2, base, n, inv_12h2, inv_144h2);
}
#endif
#if VPAR_SIMD_CLONE_AVX512
__attribute__((noinline, target("avx512f"))) void rhs_chunk_v8(
    const AdmFieldPointers& f, std::ptrdiff_t s0, std::ptrdiff_t s1,
    std::ptrdiff_t s2, std::size_t base, std::size_t n, double inv_12h2,
    double inv_144h2) {
  rhs_chunk_span_w<8>(f, s0, s1, s2, base, n, inv_12h2, inv_144h2);
}
#endif

}  // namespace

void rhs_chunk_simd(const AdmFieldPointers& f, std::ptrdiff_t s0,
                    std::ptrdiff_t s1, std::ptrdiff_t s2, std::size_t base,
                    std::size_t n, double inv_12h2, double inv_144h2) {
  const std::size_t w = simd::active_width();
  switch (w) {
#if VPAR_SIMD_CLONE_AVX512
    case 8: rhs_chunk_v8(f, s0, s1, s2, base, n, inv_12h2, inv_144h2); break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4: rhs_chunk_v4(f, s0, s1, s2, base, n, inv_12h2, inv_144h2); break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2: rhs_chunk_span_w<2>(f, s0, s1, s2, base, n, inv_12h2, inv_144h2); break;
#endif
    default: rhs_chunk_span_w<1>(f, s0, s1, s2, base, n, inv_12h2, inv_144h2); break;
  }
  simd::record_span(w, n / w, n % w);
}

}  // namespace vpar::cactus::detail
