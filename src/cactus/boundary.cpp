#include "cactus/boundary.hpp"

#include <cmath>

#include "cactus/deriv.hpp"
#include "perf/recorder.hpp"

namespace vpar::cactus {

namespace {
constexpr int G = GridFunctions::kGhost;

struct BcContext {
  const Decomp3D* d;
  const GridFunctions* src;
  GridFunctions* dst;
  double h, dt;
};

/// Is local interior cell (i,j,k) within the radiation-boundary layers?
bool is_boundary_point(const Decomp3D& d, std::ptrdiff_t i, std::ptrdiff_t j,
                       std::ptrdiff_t k) {
  const std::ptrdiff_t q[3] = {i, j, k};
  for (int a = 0; a < 3; ++a) {
    const auto g = static_cast<std::ptrdiff_t>(d.origin(a)) + q[a];
    if (g < G || g >= static_cast<std::ptrdiff_t>(d.n[a]) - G) return true;
  }
  return false;
}

/// Radiation update of all fields at one point.
void bc_point(const BcContext& ctx, std::ptrdiff_t i, std::ptrdiff_t j,
              std::ptrdiff_t k) {
  const auto& d = *ctx.d;
  const std::ptrdiff_t q[3] = {i, j, k};
  const std::ptrdiff_t s[3] = {ctx.src->sx(), ctx.src->sy(), ctx.src->sz()};
  const double inv_2h = 1.0 / (2.0 * ctx.h);

  // Physical coordinates from the global domain centre.
  double x[3], r2 = 0.0;
  for (int a = 0; a < 3; ++a) {
    const double g = static_cast<double>(d.origin(a)) + static_cast<double>(q[a]);
    x[a] = (g + 0.5 - 0.5 * static_cast<double>(d.n[a])) * ctx.h;
    r2 += x[a] * x[a];
  }
  const double r = std::max(std::sqrt(r2), ctx.h);
  const double inv_r = 1.0 / r;

  // Stencil choice per axis: one-sided pointing inward at global faces.
  int mode[3];  // +1 forward one-sided, -1 backward one-sided, 0 centered
  for (int a = 0; a < 3; ++a) {
    const auto g = static_cast<std::ptrdiff_t>(d.origin(a)) + q[a];
    if (g < G) {
      mode[a] = +1;
    } else if (g >= static_cast<std::ptrdiff_t>(d.n[a]) - G) {
      mode[a] = -1;
    } else {
      mode[a] = 0;
    }
  }

  const std::size_t o = ctx.src->at(k, j, i);
  for (int f = 0; f < ctx.src->nfields(); ++f) {
    const double* p = ctx.src->field(f) + o;
    double advect = 0.0;
    for (int a = 0; a < 3; ++a) {
      double du;
      if (mode[a] > 0) {
        du = d1_onesided(p, s[a], inv_2h);
      } else if (mode[a] < 0) {
        du = -d1_onesided(p, -s[a], inv_2h);
      } else {
        du = (p[s[a]] - p[-s[a]]) * inv_2h;
      }
      advect += x[a] * inv_r * du;
    }
    const double rhs = -advect - p[0] * inv_r;
    ctx.dst->field(f)[o] = p[0] + ctx.dt * rhs;
  }
}

}  // namespace

double boundary_flops_per_point() {
  // Per field: 3 derivatives (~6 flops each) + advect/update (~8); the
  // shared coordinate setup is amortized across the 13 fields.
  return 26.0;
}

void apply_radiation_boundary(const Decomp3D& d, const GridFunctions& src,
                              GridFunctions& dst, double h, double dt,
                              BoundaryVariant variant) {
  if (d.periodic) return;
  BcContext ctx{&d, &src, &dst, h, dt};
  const auto nx = static_cast<std::ptrdiff_t>(d.nl[0]);
  const auto ny = static_cast<std::ptrdiff_t>(d.nl[1]);
  const auto nz = static_cast<std::ptrdiff_t>(d.nl[2]);
  double boundary_points = 0.0;

  if (variant == BoundaryVariant::Scalar) {
    // Original form: sweep everything, nested boundary tests per point.
    for (std::ptrdiff_t k = 0; k < nz; ++k) {
      for (std::ptrdiff_t j = 0; j < ny; ++j) {
        for (std::ptrdiff_t i = 0; i < nx; ++i) {
          if (is_boundary_point(d, i, j, k)) {
            bc_point(ctx, i, j, k);
            boundary_points += 1.0;
          }
        }
      }
    }
    perf::LoopRecord rec;
    rec.vectorizable = false;  // data-dependent branches defeat the compiler
    rec.instances = 1.0;
    rec.trips = boundary_points;
    rec.flops_per_trip = boundary_flops_per_point() * src.nfields();
    rec.bytes_per_trip = 2.0 * src.nfields() * sizeof(double);
    rec.access = perf::AccessPattern::Strided;
    perf::record_loop("boundary", rec);
    return;
  }

  // Hand-vectorized form: explicit face boxes, branch-free inner loops.
  // Ownership avoids double updates on edges: x faces own their strips,
  // y faces exclude x strips, z faces exclude x and y strips.
  struct Range {
    std::ptrdiff_t lo, hi;
  };
  auto face_layers = [&](int axis) {
    // Local index ranges of this rank's share of the two global face slabs.
    std::array<Range, 2> out{Range{0, 0}, Range{0, 0}};
    const auto o = static_cast<std::ptrdiff_t>(d.origin(axis));
    const auto nloc = static_cast<std::ptrdiff_t>(d.nl[axis]);
    const auto nglob = static_cast<std::ptrdiff_t>(d.n[axis]);
    // Min face: global cells [0, G).
    out[0] = {std::max<std::ptrdiff_t>(0, -o),
              std::min(nloc, G - o)};
    // Max face: global cells [nglob - G, nglob).
    out[1] = {std::max<std::ptrdiff_t>(0, nglob - G - o),
              std::min(nloc, nglob - o)};
    return out;
  };
  auto interior_range = [&](int axis) {
    // Local cells not in either global face slab of `axis`.
    const auto o = static_cast<std::ptrdiff_t>(d.origin(axis));
    const auto nloc = static_cast<std::ptrdiff_t>(d.nl[axis]);
    const auto nglob = static_cast<std::ptrdiff_t>(d.n[axis]);
    return Range{std::max<std::ptrdiff_t>(0, G - o),
                 std::min(nloc, nglob - G - o)};
  };

  auto sweep_box = [&](Range ri, Range rj, Range rk) {
    if (ri.lo >= ri.hi || rj.lo >= rj.hi || rk.lo >= rk.hi) return;
    for (std::ptrdiff_t k = rk.lo; k < rk.hi; ++k) {
      for (std::ptrdiff_t j = rj.lo; j < rj.hi; ++j) {
        for (std::ptrdiff_t i = ri.lo; i < ri.hi; ++i) bc_point(ctx, i, j, k);
      }
    }
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = static_cast<double>((rk.hi - rk.lo) * (rj.hi - rj.lo));
    rec.trips = static_cast<double>(ri.hi - ri.lo);
    rec.flops_per_trip = boundary_flops_per_point() * src.nfields();
    rec.bytes_per_trip = 2.0 * src.nfields() * sizeof(double);
    rec.access = perf::AccessPattern::Strided;
    perf::record_loop("boundary", rec);
  };

  const Range full_j{0, ny};
  const auto xf = face_layers(0);
  const auto yf = face_layers(1);
  const auto zf = face_layers(2);
  const Range ix = interior_range(0);
  const Range iy = interior_range(1);

  // X faces: full y/z extent of this block.
  for (const auto& fx : xf) sweep_box(fx, full_j, Range{0, nz});
  // Y faces: exclude x face strips.
  for (const auto& fy : yf) sweep_box(ix, fy, Range{0, nz});
  // Z faces: exclude x and y strips.
  for (const auto& fz : zf) sweep_box(ix, iy, fz);
}

}  // namespace vpar::cactus
