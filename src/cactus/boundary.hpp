#pragma once

#include "cactus/exchange3d.hpp"
#include "cactus/grid.hpp"

namespace vpar::cactus {

/// Implementation flavours of the radiation (Sommerfeld) boundary condition.
/// Scalar is the original Cactus form: one sweep over the whole local block
/// with nested per-point boundary tests — branchy and unvectorizable, the
/// loop that consumed up to 20% of ES and over 30% of X1 runtime in the
/// paper. Vectorized is the hand-coded per-face form written for the X1
/// port: branch-free unit-stride inner loops. Both produce identical fields.
enum class BoundaryVariant { Scalar, Vectorized };

/// Apply the radiation condition  dt u = -(x/r).grad u - u/r  to every
/// global-boundary point (the outermost kGhost interior layers of each
/// non-periodic global face):
///   dst[b] = src[b] + dt * rhs_bc(src)
/// Derivatives along a face-normal axis use one-sided differences pointing
/// inward; tangential derivatives are centered. `src` must be the
/// beginning-of-step state with valid values everywhere it is read.
/// Coordinates are measured from the global domain centre with spacing `h`.
void apply_radiation_boundary(const Decomp3D& d, const GridFunctions& src,
                              GridFunctions& dst, double h, double dt,
                              BoundaryVariant variant);

/// Flops per boundary point per field (bookkeeping constant).
[[nodiscard]] double boundary_flops_per_point();

}  // namespace vpar::cactus
