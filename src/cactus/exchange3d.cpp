#include "cactus/exchange3d.hpp"

#include <stdexcept>
#include <vector>

#include "part/halo.hpp"
#include "trace/trace.hpp"

namespace vpar::cactus {

namespace {
constexpr int G = GridFunctions::kGhost;
constexpr int kHaloTagBase = 200;  ///< the historical 200+axis tag range
}  // namespace

Decomp3D::Decomp3D(std::size_t nx, std::size_t ny, std::size_t nz, int px, int py,
                   int pz, int rank, bool periodic_in)
    : n{nx, ny, nz},
      p{px, py, pz},
      periodic(periodic_in),
      partition(part::Extent<3>{{nx, ny, nz}}, {px, py, pz},
                {periodic_in, periodic_in, periodic_in}) {
  partition.grid().check_rank(rank);
  const auto coords = partition.coords_of(rank);
  for (int a = 0; a < 3; ++a) {
    if (n[a] % static_cast<std::size_t>(p[a]) != 0) {
      throw std::runtime_error("Decomp3D: grid not divisible by processor grid");
    }
    c[a] = coords[static_cast<std::size_t>(a)];
    nl[a] = partition.axis_extent(static_cast<std::size_t>(a), c[a]);
    if (nl[a] < 2 * G) {
      throw std::runtime_error("Decomp3D: local block smaller than ghost width");
    }
  }
}

int Decomp3D::rank_of(int ci, int cj, int ck) const {
  const std::array<int, 3> m = {((ci % p[0]) + p[0]) % p[0],
                                ((cj % p[1]) + p[1]) % p[1],
                                ((ck % p[2]) + p[2]) % p[2]};
  return partition.rank_of(m);
}

void exchange_ghosts(simrt::Communicator& comm, const Decomp3D& d,
                     GridFunctions& gf) {
  trace::TraceSpan span("cactus.exchange3d", d.nl[0],
                        static_cast<std::int64_t>(d.nl[1]) * d.nl[2]);
  // Axis-ordered sweeps with earlier axes' ghosts included in later sweeps'
  // face boxes (plan_halo's phase structure): edges and corners propagate
  // without diagonal messages. Receives are posted before packing, so
  // arriving faces land in place while this rank packs its own — each axis
  // sweep is one overlap window.
  const std::size_t g = static_cast<std::size_t>(G);
  const part::TileLayout<3> layout =
      part::TileLayout<3>::make({{d.nl[0], d.nl[1], d.nl[2]}}, {{g, g, g}});
  const auto schedule =
      part::plan_halo(d.partition, d.rank(), {part::Extent<3>{{g, g, g}},
                                              kHaloTagBase});

  std::vector<double*> fields;
  fields.reserve(static_cast<std::size_t>(gf.nfields()));
  for (int f = 0; f < gf.nfields(); ++f) fields.push_back(gf.field(f));
  part::exchange_halo(comm, schedule, layout,
                      std::span<double* const>(fields.data(), fields.size()));
}

}  // namespace vpar::cactus
