#include "cactus/exchange3d.hpp"

#include <stdexcept>
#include <vector>

#include "perf/recorder.hpp"
#include "simrt/request.hpp"
#include "trace/trace.hpp"

namespace vpar::cactus {

namespace {
constexpr int G = GridFunctions::kGhost;

/// Axis-aligned box in interior coordinates (may extend into ghosts).
struct Box {
  std::ptrdiff_t lo[3];
  std::ptrdiff_t hi[3];  // exclusive

  [[nodiscard]] std::size_t volume() const {
    std::size_t v = 1;
    for (int a = 0; a < 3; ++a) v *= static_cast<std::size_t>(hi[a] - lo[a]);
    return v;
  }
};

std::vector<double> pack(const GridFunctions& gf, const Box& b) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(gf.nfields()) * b.volume());
  for (int f = 0; f < gf.nfields(); ++f) {
    const double* field = gf.field(f);
    for (std::ptrdiff_t k = b.lo[2]; k < b.hi[2]; ++k) {
      for (std::ptrdiff_t j = b.lo[1]; j < b.hi[1]; ++j) {
        const double* row = field + gf.at(k, j, b.lo[0]);
        out.insert(out.end(), row, row + (b.hi[0] - b.lo[0]));
      }
    }
  }
  return out;
}

void unpack(GridFunctions& gf, const Box& b, const std::vector<double>& in) {
  std::size_t idx = 0;
  for (int f = 0; f < gf.nfields(); ++f) {
    double* field = gf.field(f);
    for (std::ptrdiff_t k = b.lo[2]; k < b.hi[2]; ++k) {
      for (std::ptrdiff_t j = b.lo[1]; j < b.hi[1]; ++j) {
        double* row = field + gf.at(k, j, b.lo[0]);
        const auto count = static_cast<std::size_t>(b.hi[0] - b.lo[0]);
        std::copy_n(in.data() + idx, count, row);
        idx += count;
      }
    }
  }
}

}  // namespace

Decomp3D::Decomp3D(std::size_t nx, std::size_t ny, std::size_t nz, int px, int py,
                   int pz, int rank, bool periodic_in)
    : n{nx, ny, nz}, p{px, py, pz}, periodic(periodic_in) {
  if (px <= 0 || py <= 0 || pz <= 0) {
    throw std::runtime_error("Decomp3D: bad processor grid");
  }
  for (int a = 0; a < 3; ++a) {
    if (n[a] % static_cast<std::size_t>(p[a]) != 0) {
      throw std::runtime_error("Decomp3D: grid not divisible by processor grid");
    }
    nl[a] = n[a] / static_cast<std::size_t>(p[a]);
    if (nl[a] < 2 * G) {
      throw std::runtime_error("Decomp3D: local block smaller than ghost width");
    }
  }
  c[0] = rank % px;
  c[1] = (rank / px) % py;
  c[2] = rank / (px * py);
}

int Decomp3D::rank_of(int ci, int cj, int ck) const {
  const int m[3] = {((ci % p[0]) + p[0]) % p[0], ((cj % p[1]) + p[1]) % p[1],
                    ((ck % p[2]) + p[2]) % p[2]};
  return (m[2] * p[1] + m[1]) * p[0] + m[0];
}

int Decomp3D::neighbor(int axis, int dir) const {
  if (!periodic) {
    if (dir < 0 && at_min(axis)) return -1;
    if (dir > 0 && at_max(axis)) return -1;
  }
  int cc[3] = {c[0], c[1], c[2]};
  cc[axis] += dir;
  return rank_of(cc[0], cc[1], cc[2]);
}

void exchange_ghosts(simrt::Communicator& comm, const Decomp3D& d,
                     GridFunctions& gf) {
  trace::TraceSpan span("cactus.exchange3d", d.nl[0],
                        static_cast<std::int64_t>(d.nl[1]) * d.nl[2]);
  // Sweep axes in order; earlier axes' ghosts are included in later sweeps'
  // face boxes so edge/corner data propagates.
  for (int axis = 0; axis < 3; ++axis) {
    Box span{};
    for (int a = 0; a < 3; ++a) {
      if (a < axis) {
        span.lo[a] = -G;
        span.hi[a] = static_cast<std::ptrdiff_t>(d.nl[a]) + G;
      } else {
        span.lo[a] = 0;
        span.hi[a] = static_cast<std::ptrdiff_t>(d.nl[a]);
      }
    }
    const auto nla = static_cast<std::ptrdiff_t>(d.nl[axis]);

    Box send_minus = span, send_plus = span, ghost_minus = span, ghost_plus = span;
    send_minus.lo[axis] = 0;
    send_minus.hi[axis] = G;
    send_plus.lo[axis] = nla - G;
    send_plus.hi[axis] = nla;
    ghost_minus.lo[axis] = -G;
    ghost_minus.hi[axis] = 0;
    ghost_plus.lo[axis] = nla;
    ghost_plus.hi[axis] = nla + G;

    const int minus = d.neighbor(axis, -1);
    const int plus = d.neighbor(axis, +1);
    const int tag = 200 + axis;

    // Ghost-face sizes are known from the decomposition, so both receives
    // are posted before any packing: arriving faces land in place while this
    // rank packs and posts its own boundary faces (partners may be
    // asymmetric at non-periodic boundaries). Each axis sweep is one overlap
    // window; unpacking happens after the waitall that closes it.
    perf::OverlapScope window;
    std::vector<double> recv_plus, recv_minus;
    std::vector<simrt::Request> reqs;
    if (plus >= 0) {
      recv_plus.resize(static_cast<std::size_t>(gf.nfields()) * ghost_plus.volume());
      reqs.push_back(comm.irecv<double>(plus, recv_plus, tag));
    }
    if (minus >= 0) {
      recv_minus.resize(static_cast<std::size_t>(gf.nfields()) * ghost_minus.volume());
      reqs.push_back(comm.irecv<double>(minus, recv_minus, tag + 10));
    }
    if (minus >= 0) comm.isend<double>(minus, pack(gf, send_minus), tag).wait();
    if (plus >= 0) comm.isend<double>(plus, pack(gf, send_plus), tag + 10).wait();
    simrt::waitall(reqs);
    if (plus >= 0) unpack(gf, ghost_plus, recv_plus);
    if (minus >= 0) unpack(gf, ghost_minus, recv_minus);
  }
}

}  // namespace vpar::cactus
