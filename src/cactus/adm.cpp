#include "cactus/adm.hpp"

#include <algorithm>
#include <cmath>

#include "cactus/deriv.hpp"
#include "perf/recorder.hpp"

namespace vpar::cactus {

namespace {

/// Second-derivative table of all six h components for all six (a<=b)
/// derivative pairs at one point. dd[pair][component].
struct DerivTable {
  double dd[6][6];
};

inline void second_derivatives(const GridFunctions& state, std::size_t o,
                               double inv_12h2, double inv_144h2, DerivTable& t) {
  const std::ptrdiff_t s[3] = {state.sx(), state.sy(), state.sz()};
  for (int m = 0; m < 6; ++m) {
    const double* p = state.field(HXX + m) + o;
    // Pure derivatives: pairs (0,0), (1,1), (2,2) = sym indices 0, 3, 5.
    t.dd[sym(0, 0)][m] = d2(p, s[0], inv_12h2);
    t.dd[sym(1, 1)][m] = d2(p, s[1], inv_12h2);
    t.dd[sym(2, 2)][m] = d2(p, s[2], inv_12h2);
    // Mixed derivatives: (0,1), (0,2), (1,2) = sym indices 1, 2, 4.
    t.dd[sym(0, 1)][m] = d11(p, s[0], s[1], inv_144h2);
    t.dd[sym(0, 2)][m] = d11(p, s[0], s[2], inv_144h2);
    t.dd[sym(1, 2)][m] = d11(p, s[1], s[2], inv_144h2);
  }
}

/// The point kernel: linearized ADM right-hand sides.
inline void rhs_point(const GridFunctions& state, GridFunctions& rhs, std::size_t o,
                      double inv_12h2, double inv_144h2) {
  DerivTable t;
  second_derivatives(state, o, inv_12h2, inv_144h2, t);

  // d_i d_j (tr h) per derivative pair.
  double ddtr[6];
  for (int p = 0; p < 6; ++p) {
    ddtr[p] = t.dd[p][sym(0, 0)] + t.dd[p][sym(1, 1)] + t.dd[p][sym(2, 2)];
  }

  double trk = 0.0;
  for (int a = 0; a < 3; ++a) {
    trk += state.field(KXX + sym(a, a))[o];
  }

  for (int i = 0; i < 3; ++i) {
    for (int j = i; j < 3; ++j) {
      const int m = sym(i, j);
      // Sum_k dk di h_jk and Sum_k dk dj h_ik.
      double term1 = 0.0, term2 = 0.0;
      for (int k = 0; k < 3; ++k) {
        term1 += t.dd[sym(k, i)][sym(j, k)];
        term2 += t.dd[sym(k, j)][sym(i, k)];
      }
      const double lap =
          t.dd[sym(0, 0)][m] + t.dd[sym(1, 1)][m] + t.dd[sym(2, 2)][m];
      const double ricci = 0.5 * (term1 + term2 - lap - ddtr[m]);

      rhs.field(HXX + m)[o] = -2.0 * state.field(KXX + m)[o];
      rhs.field(KXX + m)[o] = ricci;
    }
  }
  rhs.field(LAPSE)[o] = -2.0 * trk;
}

}  // namespace

double rhs_flops_per_point() {
  // 18 pure stencils (9 flops) + 18 mixed stencils (26 flops) + tr-h second
  // derivatives (12) + trK (3) + 6 Ricci assemblies (10) + 6 h updates (6)
  // + lapse (1).
  return 18.0 * 9.0 + 18.0 * 26.0 + 12.0 + 3.0 + 6.0 * 10.0 + 6.0 + 1.0;
}

double rhs_bytes_per_point() {
  // 13 fields read (stencil neighbours largely cache-resident), 13 written,
  // plus ~6 fields' worth of plane-jump stencil misses.
  return (13.0 + 13.0 + 6.0) * sizeof(double);
}

void compute_rhs(const GridFunctions& state, GridFunctions& rhs, double h,
                 std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                 std::size_t k0, std::size_t k1, RhsVariant variant,
                 std::size_t block) {
  const double inv_12h2 = 1.0 / (12.0 * h * h);
  const double inv_144h2 = 1.0 / (144.0 * h * h);

  const std::size_t iw = i1 - i0;
  if (variant == RhsVariant::Vector || block >= iw) {
    for (std::size_t k = k0; k < k1; ++k) {
      for (std::size_t j = j0; j < j1; ++j) {
        const std::size_t row = state.at(static_cast<std::ptrdiff_t>(k),
                                         static_cast<std::ptrdiff_t>(j),
                                         static_cast<std::ptrdiff_t>(i0));
        for (std::size_t i = 0; i < iw; ++i) {
          rhs_point(state, rhs, row + i, inv_12h2, inv_144h2);
        }
      }
    }
  } else {
    for (std::size_t ib = i0; ib < i1; ib += block) {
      const std::size_t ie = std::min(ib + block, i1);
      for (std::size_t k = k0; k < k1; ++k) {
        for (std::size_t j = j0; j < j1; ++j) {
          const std::size_t row = state.at(static_cast<std::ptrdiff_t>(k),
                                           static_cast<std::ptrdiff_t>(j),
                                           static_cast<std::ptrdiff_t>(ib));
          for (std::size_t i = 0; i < ie - ib; ++i) {
            rhs_point(state, rhs, row + i, inv_12h2, inv_144h2);
          }
        }
      }
    }
  }

  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.flops_per_trip = rhs_flops_per_point();
  rec.bytes_per_trip = rhs_bytes_per_point();
  // Multi-layer ghost zones break unit-stride regularity and keep hardware
  // prefetch streams disengaged (paper 5.2); the per-point derivative table
  // spills registers on every studied CPU.
  rec.access = perf::AccessPattern::Strided;
  rec.compute_derate = 0.45;
  const double jk = static_cast<double>((j1 - j0) * (k1 - k0));
  if (variant == RhsVariant::Vector || block >= iw) {
    rec.instances = jk;
    rec.trips = static_cast<double>(iw);
  } else {
    const double tiles = std::ceil(static_cast<double>(iw) / static_cast<double>(block));
    rec.instances = jk * tiles;
    rec.trips = static_cast<double>(std::min(block, iw));
    // Slice buffers: 13 fields x 5 pencils x block doubles stay resident.
    rec.working_set_bytes = 13.0 * 5.0 * rec.trips * sizeof(double) * 5.0;
  }
  perf::record_loop("ADM_BSSN_Sources", rec);
}

Constraints constraints_at(const GridFunctions& state, double h, std::size_t i,
                           std::size_t j, std::size_t k) {
  const double inv_12h = 1.0 / (12.0 * h);
  const double inv_12h2 = 1.0 / (12.0 * h * h);
  const double inv_144h2 = 1.0 / (144.0 * h * h);
  const std::size_t o = state.at(static_cast<std::ptrdiff_t>(k),
                                 static_cast<std::ptrdiff_t>(j),
                                 static_cast<std::ptrdiff_t>(i));
  const std::ptrdiff_t s[3] = {state.sx(), state.sy(), state.sz()};

  DerivTable t;
  second_derivatives(state, o, inv_12h2, inv_144h2, t);

  Constraints c;
  // H = di dj h_ij - Lap tr h.
  double didj_h = 0.0, lap_tr = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      didj_h += t.dd[sym(a, b)][sym(a, b)];
    }
    lap_tr += t.dd[sym(a, a)][sym(0, 0)] + t.dd[sym(a, a)][sym(1, 1)] +
              t.dd[sym(a, a)][sym(2, 2)];
  }
  c.hamiltonian = didj_h - lap_tr;

  // M_i = dj K_ij - di tr K.
  for (int i_dir = 0; i_dir < 3; ++i_dir) {
    double div = 0.0;
    for (int j_dir = 0; j_dir < 3; ++j_dir) {
      div += d1(state.field(KXX + sym(i_dir, j_dir)) + o, s[j_dir], inv_12h);
    }
    double dtr = 0.0;
    for (int a = 0; a < 3; ++a) {
      dtr += d1(state.field(KXX + sym(a, a)) + o, s[i_dir], inv_12h);
    }
    c.momentum[static_cast<std::size_t>(i_dir)] = div - dtr;
  }
  return c;
}

}  // namespace vpar::cactus
