#include "cactus/adm.hpp"

#include <algorithm>
#include <cmath>

#include "cactus/adm_simd.hpp"
#include "cactus/deriv.hpp"
#include "perf/recorder.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"
#include "trace/trace.hpp"

namespace vpar::cactus {

namespace {

/// Second-derivative table of all six h components for all six (a<=b)
/// derivative pairs at one point. dd[pair][component].
struct DerivTable {
  double dd[6][6];
};

inline void second_derivatives(const GridFunctions& state, std::size_t o,
                               double inv_12h2, double inv_144h2, DerivTable& t) {
  const std::ptrdiff_t s[3] = {state.sx(), state.sy(), state.sz()};
  for (int m = 0; m < 6; ++m) {
    const double* p = state.field(HXX + m) + o;
    // Pure derivatives: pairs (0,0), (1,1), (2,2) = sym indices 0, 3, 5.
    t.dd[sym(0, 0)][m] = d2(p, s[0], inv_12h2);
    t.dd[sym(1, 1)][m] = d2(p, s[1], inv_12h2);
    t.dd[sym(2, 2)][m] = d2(p, s[2], inv_12h2);
    // Mixed derivatives: (0,1), (0,2), (1,2) = sym indices 1, 2, 4.
    t.dd[sym(0, 1)][m] = d11(p, s[0], s[1], inv_144h2);
    t.dd[sym(0, 2)][m] = d11(p, s[0], s[2], inv_144h2);
    t.dd[sym(1, 2)][m] = d11(p, s[1], s[2], inv_144h2);
  }
}

/// Pencil chunk width of the RHS row kernel: long enough for full vector
/// lanes, small enough that the chunk's derivative slices (36 pencils) stay
/// L1/L2-resident.
constexpr std::size_t kRowChunk = 128;

/// All 26 grid-function base pointers, hoisted out of the sweep once (shared
/// type with the SIMD chunk kernel in adm_simd.cpp).
using FieldPointers = detail::AdmFieldPointers;

FieldPointers field_pointers(const GridFunctions& state, GridFunctions& rhs) {
  FieldPointers p{};
  for (int m = 0; m < 6; ++m) {
    p.h[m] = state.field(HXX + m);
    p.k[m] = state.field(KXX + m);
    p.rhs_h[m] = rhs.field(HXX + m);
    p.rhs_k[m] = rhs.field(KXX + m);
  }
  p.rhs_lapse = rhs.field(LAPSE);
  return p;
}

/// Chunked row kernel: linearized ADM right-hand sides for `n` (<= kRowChunk)
/// consecutive points starting at flat offset `base`. Instead of filling a
/// per-point derivative table (which spills registers and reloads the field
/// pointer table at every point), each of the 36 second-derivative stencils
/// is applied to the whole pencil into a chunk slice buffer, and the Ricci
/// assembly then runs over flat unit-stride pencils — every loop the
/// compiler sees is a vectorizable stream. The arithmetic per point is the
/// reference point kernel's, in the same order.
void rhs_chunk(const FieldPointers& f, std::ptrdiff_t s0, std::ptrdiff_t s1,
               std::ptrdiff_t s2, std::size_t base, std::size_t n,
               double inv_12h2, double inv_144h2) {
  double dd[6][6][kRowChunk];  // [derivative pair][component][point]
  double ddtr[6][kRowChunk];   // d_i d_j (tr h) per pair

  for (int m = 0; m < 6; ++m) {
    const double* __restrict p = f.h[m] + base;
    // Pure derivatives: pairs (0,0), (1,1), (2,2) = sym indices 0, 3, 5.
    double* __restrict q00 = dd[sym(0, 0)][m];
    double* __restrict q11 = dd[sym(1, 1)][m];
    double* __restrict q22 = dd[sym(2, 2)][m];
    for (std::size_t i = 0; i < n; ++i) q00[i] = d2(p + i, s0, inv_12h2);
    for (std::size_t i = 0; i < n; ++i) q11[i] = d2(p + i, s1, inv_12h2);
    for (std::size_t i = 0; i < n; ++i) q22[i] = d2(p + i, s2, inv_12h2);
    // Mixed derivatives: (0,1), (0,2), (1,2) = sym indices 1, 2, 4.
    double* __restrict q01 = dd[sym(0, 1)][m];
    double* __restrict q02 = dd[sym(0, 2)][m];
    double* __restrict q12 = dd[sym(1, 2)][m];
    for (std::size_t i = 0; i < n; ++i) q01[i] = d11(p + i, s0, s1, inv_144h2);
    for (std::size_t i = 0; i < n; ++i) q02[i] = d11(p + i, s0, s2, inv_144h2);
    for (std::size_t i = 0; i < n; ++i) q12[i] = d11(p + i, s1, s2, inv_144h2);
  }

  for (int pr = 0; pr < 6; ++pr) {
    const double* __restrict a = dd[pr][sym(0, 0)];
    const double* __restrict b = dd[pr][sym(1, 1)];
    const double* __restrict c = dd[pr][sym(2, 2)];
    double* __restrict q = ddtr[pr];
    for (std::size_t i = 0; i < n; ++i) q[i] = a[i] + b[i] + c[i];
  }

  {
    const double* __restrict k0 = f.k[sym(0, 0)] + base;
    const double* __restrict k1 = f.k[sym(1, 1)] + base;
    const double* __restrict k2 = f.k[sym(2, 2)] + base;
    double* __restrict out = f.rhs_lapse + base;
    for (std::size_t i = 0; i < n; ++i) {
      double trk = 0.0;
      trk += k0[i];
      trk += k1[i];
      trk += k2[i];
      out[i] = -2.0 * trk;
    }
  }

  for (int a = 0; a < 3; ++a) {
    for (int b = a; b < 3; ++b) {
      const int m = sym(a, b);
      // Sum_k dk da h_bk and Sum_k dk db h_ak, one pencil per addend.
      const double* __restrict t1x = dd[sym(0, a)][sym(b, 0)];
      const double* __restrict t1y = dd[sym(1, a)][sym(b, 1)];
      const double* __restrict t1z = dd[sym(2, a)][sym(b, 2)];
      const double* __restrict t2x = dd[sym(0, b)][sym(a, 0)];
      const double* __restrict t2y = dd[sym(1, b)][sym(a, 1)];
      const double* __restrict t2z = dd[sym(2, b)][sym(a, 2)];
      const double* __restrict l0 = dd[sym(0, 0)][m];
      const double* __restrict l1 = dd[sym(1, 1)][m];
      const double* __restrict l2 = dd[sym(2, 2)][m];
      const double* __restrict dt = ddtr[m];
      const double* __restrict km = f.k[m] + base;
      double* __restrict out_h = f.rhs_h[m] + base;
      double* __restrict out_k = f.rhs_k[m] + base;
      for (std::size_t i = 0; i < n; ++i) {
        double term1 = 0.0, term2 = 0.0;
        term1 += t1x[i];
        term1 += t1y[i];
        term1 += t1z[i];
        term2 += t2x[i];
        term2 += t2y[i];
        term2 += t2z[i];
        const double lap = l0[i] + l1[i] + l2[i];
        const double ricci = 0.5 * (term1 + term2 - lap - dt[i]);
        out_h[i] = -2.0 * km[i];
        out_k[i] = ricci;
      }
    }
  }
}

/// Apply rhs_chunk across a row span of arbitrary width.
inline void rhs_span(const FieldPointers& f, std::ptrdiff_t s0,
                     std::ptrdiff_t s1, std::ptrdiff_t s2, std::size_t base,
                     std::size_t width, double inv_12h2, double inv_144h2) {
  // Runtime dispatch: the SIMD chunk kernel mirrors rhs_chunk operation for
  // operation (bitwise identical); scalar reference stays the fallback.
  const bool use_simd = simd::use_simd();
  for (std::size_t c = 0; c < width; c += kRowChunk) {
    const std::size_t n = std::min(kRowChunk, width - c);
    if (use_simd) {
      detail::rhs_chunk_simd(f, s0, s1, s2, base + c, n, inv_12h2, inv_144h2);
    } else {
      rhs_chunk(f, s0, s1, s2, base + c, n, inv_12h2, inv_144h2);
    }
  }
}

}  // namespace

double rhs_flops_per_point() {
  // 18 pure stencils (9 flops) + 18 mixed stencils (26 flops) + tr-h second
  // derivatives (12) + trK (3) + 6 Ricci assemblies (10) + 6 h updates (6)
  // + lapse (1).
  return 18.0 * 9.0 + 18.0 * 26.0 + 12.0 + 3.0 + 6.0 * 10.0 + 6.0 + 1.0;
}

double rhs_bytes_per_point() {
  // 13 fields read (stencil neighbours largely cache-resident), 13 written,
  // plus ~6 fields' worth of plane-jump stencil misses.
  return (13.0 + 13.0 + 6.0) * sizeof(double);
}

void compute_rhs(const GridFunctions& state, GridFunctions& rhs, double h,
                 std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                 std::size_t k0, std::size_t k1, RhsVariant variant,
                 std::size_t block) {
  trace::TraceSpan span("cactus.adm_rhs", static_cast<std::int64_t>(i1 - i0),
                        static_cast<std::int64_t>(k1 - k0));
  const double inv_12h2 = 1.0 / (12.0 * h * h);
  const double inv_144h2 = 1.0 / (144.0 * h * h);

  const FieldPointers f = field_pointers(state, rhs);
  const std::ptrdiff_t s0 = state.sx(), s1 = state.sy(), s2 = state.sz();

  const std::size_t iw = i1 - i0;
  // The stencil only *reads* state and *writes* rhs, and distinct k planes
  // write disjoint rhs points, so the k sweep splits across idle pool
  // workers bitwise-safely (rhs_chunk's slice buffers live on each serving
  // thread's stack).
  if (variant == RhsVariant::Vector || block >= iw) {
    simrt::parallel_for(k0, k1, 1, [&](std::size_t ka, std::size_t kb) {
      for (std::size_t k = ka; k < kb; ++k) {
        for (std::size_t j = j0; j < j1; ++j) {
          const std::size_t row = state.at(static_cast<std::ptrdiff_t>(k),
                                           static_cast<std::ptrdiff_t>(j),
                                           static_cast<std::ptrdiff_t>(i0));
          rhs_span(f, s0, s1, s2, row, iw, inv_12h2, inv_144h2);
        }
      }
    });
  } else {
    for (std::size_t ib = i0; ib < i1; ib += block) {
      const std::size_t ie = std::min(ib + block, i1);
      simrt::parallel_for(k0, k1, 1, [&](std::size_t ka, std::size_t kb) {
        for (std::size_t k = ka; k < kb; ++k) {
          for (std::size_t j = j0; j < j1; ++j) {
            const std::size_t row = state.at(static_cast<std::ptrdiff_t>(k),
                                             static_cast<std::ptrdiff_t>(j),
                                             static_cast<std::ptrdiff_t>(ib));
            rhs_span(f, s0, s1, s2, row, ie - ib, inv_12h2, inv_144h2);
          }
        }
      });
    }
  }

  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.flops_per_trip = rhs_flops_per_point();
  rec.bytes_per_trip = rhs_bytes_per_point();
  // Multi-layer ghost zones break unit-stride regularity and keep hardware
  // prefetch streams disengaged (paper 5.2); the per-point derivative table
  // spills registers on every studied CPU.
  rec.access = perf::AccessPattern::Strided;
  rec.compute_derate = 0.45;
  const double jk = static_cast<double>((j1 - j0) * (k1 - k0));
  if (variant == RhsVariant::Vector || block >= iw) {
    rec.instances = jk;
    rec.trips = static_cast<double>(iw);
  } else {
    const double tiles = std::ceil(static_cast<double>(iw) / static_cast<double>(block));
    rec.instances = jk * tiles;
    rec.trips = static_cast<double>(std::min(block, iw));
    // Slice buffers: 13 fields x 5 pencils x block doubles stay resident.
    rec.working_set_bytes = 13.0 * 5.0 * rec.trips * sizeof(double) * 5.0;
  }
  perf::record_loop("ADM_BSSN_Sources", rec);
}

Constraints constraints_at(const GridFunctions& state, double h, std::size_t i,
                           std::size_t j, std::size_t k) {
  const double inv_12h = 1.0 / (12.0 * h);
  const double inv_12h2 = 1.0 / (12.0 * h * h);
  const double inv_144h2 = 1.0 / (144.0 * h * h);
  const std::size_t o = state.at(static_cast<std::ptrdiff_t>(k),
                                 static_cast<std::ptrdiff_t>(j),
                                 static_cast<std::ptrdiff_t>(i));
  const std::ptrdiff_t s[3] = {state.sx(), state.sy(), state.sz()};

  DerivTable t;
  second_derivatives(state, o, inv_12h2, inv_144h2, t);

  Constraints c;
  // H = di dj h_ij - Lap tr h.
  double didj_h = 0.0, lap_tr = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      didj_h += t.dd[sym(a, b)][sym(a, b)];
    }
    lap_tr += t.dd[sym(a, a)][sym(0, 0)] + t.dd[sym(a, a)][sym(1, 1)] +
              t.dd[sym(a, a)][sym(2, 2)];
  }
  c.hamiltonian = didj_h - lap_tr;

  // M_i = dj K_ij - di tr K.
  for (int i_dir = 0; i_dir < 3; ++i_dir) {
    double div = 0.0;
    for (int j_dir = 0; j_dir < 3; ++j_dir) {
      div += d1(state.field(KXX + sym(i_dir, j_dir)) + o, s[j_dir], inv_12h);
    }
    double dtr = 0.0;
    for (int a = 0; a < 3; ++a) {
      dtr += d1(state.field(KXX + sym(a, a)) + o, s[i_dir], inv_12h);
    }
    c.momentum[static_cast<std::size_t>(i_dir)] = div - dtr;
  }
  return c;
}

}  // namespace vpar::cactus
