#pragma once

#include <complex>
#include <cstddef>

namespace vpar::blas::detail {

/// SIMD update of one packed gemm tile: for i in [0, mi), p in [0, kp),
/// aip = alpha * a_block[i * block_stride + p], then
/// c[i * ldc + j] += aip * b_block[p * block_stride + j] for j in [0, jw) —
/// the reference (i, p, j) order with the j loop vectorized, so every C
/// element accumulates its products in the identical scalar sequence
/// (bitwise). `c` points at the tile origin (row i0, column j0).
void gemm_tile_simd(double* c, std::size_t ldc, const double* a_block,
                    const double* b_block, std::size_t block_stride,
                    double alpha, std::size_t mi, std::size_t kp,
                    std::size_t jw);

/// Complex variant over interleaved re,im doubles; the scalar complex
/// coefficient is broadcast as a pair and combined with complex_mul in the
/// exact rounding order of `crow[j] += aip * brow[j]`.
void gemm_tile_simd(std::complex<double>* c, std::size_t ldc,
                    const std::complex<double>* a_block,
                    const std::complex<double>* b_block,
                    std::size_t block_stride, std::complex<double> alpha,
                    std::size_t mi, std::size_t kp, std::size_t jw);

}  // namespace vpar::blas::detail
