#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace vpar::blas {

using Complex = std::complex<double>;

/// Transpose modes for gemm operands (column conventions follow BLAS but
/// storage here is row-major).
enum class Trans { None, Transpose, ConjTranspose };

// --- level 1 ----------------------------------------------------------------

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void axpy(Complex alpha, std::span<const Complex> x, std::span<Complex> y);

[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Hermitian inner product conj(x) . y
[[nodiscard]] Complex dotc(std::span<const Complex> x, std::span<const Complex> y);

[[nodiscard]] double nrm2(std::span<const double> x);
[[nodiscard]] double nrm2(std::span<const Complex> x);

void scal(double alpha, std::span<double> x);
void scal(Complex alpha, std::span<Complex> x);

// --- level 3 ----------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C with row-major storage.
/// op(A) is m x k, op(B) is k x n, C is m x n. Blocked for cache reuse; the
/// instrumentation marks these loops Cached/long-vector, which is what lets
/// PARATEC sustain a high fraction of peak on every platform in the study.
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc);

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          Complex alpha, const Complex* a, std::size_t lda, const Complex* b,
          std::size_t ldb, Complex beta, Complex* c, std::size_t ldc);

/// Flop counts for one gemm call (MADD = 2 flops; complex MADD = 8 flops).
[[nodiscard]] double gemm_flops_real(std::size_t m, std::size_t n, std::size_t k);
[[nodiscard]] double gemm_flops_complex(std::size_t m, std::size_t n, std::size_t k);

}  // namespace vpar::blas
