#include "blas/blas.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "blas/blas_simd.hpp"
#include "perf/recorder.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"
#include "trace/trace.hpp"

namespace vpar::blas {

namespace {

void record_level1(double n, double flops_per_elem, double bytes_per_elem) {
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = 1.0;
  rec.trips = n;
  rec.flops_per_trip = flops_per_elem;
  rec.bytes_per_trip = bytes_per_elem;
  rec.access = perf::AccessPattern::Stream;
  perf::record_loop("blas1", rec);
}

void record_gemm(double m, double n, double k, double flops_per_madd, double elem_bytes) {
  // Blocked GEMM: the inner (vector) loop runs over a row of C; each element
  // of the block is reused k times, so DRAM traffic per flop is tiny — we
  // charge the streaming traffic of reading A, B and writing C once.
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = m * k;
  rec.trips = n;
  rec.flops_per_trip = flops_per_madd;
  rec.bytes_per_trip = (m * k + k * n + 2 * m * n) * elem_bytes / (m * k * n);
  rec.access = perf::AccessPattern::Cached;
  rec.working_set_bytes = (m * k + k * n + m * n) * elem_bytes;
  perf::record_loop("blas3", rec);
}

template <typename T>
T fetch(Trans t, const T* a, std::size_t lda, std::size_t i, std::size_t j) {
  switch (t) {
    case Trans::None: return a[i * lda + j];
    case Trans::Transpose: return a[j * lda + i];
    case Trans::ConjTranspose:
      if constexpr (std::is_same_v<T, Complex>) {
        return std::conj(a[j * lda + i]);
      } else {
        return a[j * lda + i];
      }
  }
  return T{};
}

/// Blocked kernel shared by the real and complex instantiations.
template <typename T>
void gemm_impl(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
               T alpha, const T* a, std::size_t lda, const T* b, std::size_t ldb,
               T beta, T* c, std::size_t ldc) {
  constexpr std::size_t kBlock = 64;

  // Distinct i0 row blocks write disjoint rows of C, so the outer block loop
  // splits across idle pool workers. Each serving thread packs into its own
  // buffers, and each C element still sees beta-scale followed by its k
  // products in the reference (i, p, j) order — bitwise identical to the
  // serial blocked form.
  const std::size_t row_blocks = (m + kBlock - 1) / kBlock;
  // Runtime dispatch for the packed-tile update (the flops): double and
  // Complex route to the SIMD microkernel, other element types stay scalar.
  constexpr bool kHasSimdTile =
      std::is_same_v<T, double> || std::is_same_v<T, Complex>;
  const bool simd_tile = kHasSimdTile && simd::use_simd();
  simrt::parallel_for(0, row_blocks, 1, [&](std::size_t b0, std::size_t b1) {
    // Pack buffers are per serving thread and reused across calls — the
    // steady-state gemm stream must not touch the allocator.
    static thread_local std::vector<T> a_block;
    static thread_local std::vector<T> b_block;
    if (a_block.size() < kBlock * kBlock) {
      a_block.resize(kBlock * kBlock);
      b_block.resize(kBlock * kBlock);
    }
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::size_t i0 = blk * kBlock;
      const std::size_t i1 = std::min(i0 + kBlock, m);
      // Scale this block's rows of C by beta.
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          c[i * ldc + j] = beta == T{} ? T{} : c[i * ldc + j] * beta;
        }
      }
      for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
        const std::size_t p1 = std::min(p0 + kBlock, k);
        // Pack op(A) block once; it is reused across the whole j sweep.
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t p = p0; p < p1; ++p) {
            a_block[(i - i0) * kBlock + (p - p0)] = fetch(ta, a, lda, i, p);
          }
        }
        for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
          const std::size_t j1 = std::min(j0 + kBlock, n);
          const std::size_t jw = j1 - j0;
          // Pack op(B) into contiguous rows: the transpose layouts otherwise
          // stride the inner loop by ldb, and even the plain layout goes
          // through the per-element fetch switch. Packing resolves the
          // orientation once per tile and leaves an unaliased unit-stride row.
          for (std::size_t p = p0; p < p1; ++p) {
            T* dst = b_block.data() + (p - p0) * kBlock;
            for (std::size_t j = j0; j < j1; ++j) {
              dst[j - j0] = fetch(tb, b, ldb, p, j);
            }
          }
          // Same (i, p, j) update order as the unpacked form, so each C element
          // accumulates its k products in an identical sequence — the SIMD
          // microkernel vectorizes only the j loop and keeps that order.
          if constexpr (kHasSimdTile) {
            if (simd_tile) {
              detail::gemm_tile_simd(c + i0 * ldc + j0, ldc, a_block.data(),
                                     b_block.data(), kBlock, alpha, i1 - i0,
                                     p1 - p0, jw);
              continue;
            }
          }
          for (std::size_t i = i0; i < i1; ++i) {
            T* __restrict crow = c + i * ldc + j0;
            for (std::size_t p = p0; p < p1; ++p) {
              const T aip = alpha * a_block[(i - i0) * kBlock + (p - p0)];
              const T* __restrict brow = b_block.data() + (p - p0) * kBlock;
              for (std::size_t j = 0; j < jw; ++j) {
                crow[j] += aip * brow[j];
              }
            }
          }
        }
      }
    }
  });
}

}  // namespace

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::runtime_error("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  record_level1(static_cast<double>(x.size()), 2.0, 24.0);
}

void axpy(Complex alpha, std::span<const Complex> x, std::span<Complex> y) {
  if (x.size() != y.size()) throw std::runtime_error("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  record_level1(static_cast<double>(x.size()), 8.0, 48.0);
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::runtime_error("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  record_level1(static_cast<double>(x.size()), 2.0, 16.0);
  return s;
}

Complex dotc(std::span<const Complex> x, std::span<const Complex> y) {
  if (x.size() != y.size()) throw std::runtime_error("dotc: size mismatch");
  Complex s{};
  for (std::size_t i = 0; i < x.size(); ++i) s += std::conj(x[i]) * y[i];
  record_level1(static_cast<double>(x.size()), 8.0, 32.0);
  return s;
}

double nrm2(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  record_level1(static_cast<double>(x.size()), 2.0, 8.0);
  return std::sqrt(s);
}

double nrm2(std::span<const Complex> x) {
  double s = 0.0;
  for (const auto& v : x) s += std::norm(v);
  record_level1(static_cast<double>(x.size()), 4.0, 16.0);
  return std::sqrt(s);
}

void scal(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
  record_level1(static_cast<double>(x.size()), 1.0, 16.0);
}

void scal(Complex alpha, std::span<Complex> x) {
  for (auto& v : x) v *= alpha;
  record_level1(static_cast<double>(x.size()), 6.0, 32.0);
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc) {
  trace::TraceSpan span("blas.gemm", static_cast<std::int64_t>(m * n),
                        static_cast<std::int64_t>(k));
  gemm_impl(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  record_gemm(static_cast<double>(m), static_cast<double>(n), static_cast<double>(k),
              2.0, sizeof(double));
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          Complex alpha, const Complex* a, std::size_t lda, const Complex* b,
          std::size_t ldb, Complex beta, Complex* c, std::size_t ldc) {
  trace::TraceSpan span("blas.gemm", static_cast<std::int64_t>(m * n),
                        static_cast<std::int64_t>(k));
  gemm_impl(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  record_gemm(static_cast<double>(m), static_cast<double>(n), static_cast<double>(k),
              8.0, sizeof(Complex));
}

double gemm_flops_real(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
}

double gemm_flops_complex(std::size_t m, std::size_t n, std::size_t k) {
  return 8.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
}

}  // namespace vpar::blas
