#include "blas/blas_simd.hpp"

#include "simd/dispatch.hpp"
#include "simd/simd.hpp"

namespace vpar::blas::detail {

namespace {

using Complex = std::complex<double>;
using simd::load;
using simd::splat;
using simd::store;

/// Real tile body: the inner j loop in W-wide strips, scalar tail from the
/// same expression (`crow[j] + aip * brow[j]` is exactly the += form).
template <std::size_t W>
VPAR_SIMD_INLINE void tile_real_w(double* c, std::size_t ldc,
                                  const double* a_block, const double* b_block,
                                  std::size_t bs, double alpha, std::size_t mi,
                                  std::size_t kp, std::size_t jw) {
  const std::size_t jv = jw / W * W;
  for (std::size_t i = 0; i < mi; ++i) {
    double* __restrict crow = c + i * ldc;
    for (std::size_t p = 0; p < kp; ++p) {
      const double aip = alpha * a_block[i * bs + p];
      const double* __restrict brow = b_block + p * bs;
      const simd::vec<W> va = splat<W>(aip);
      for (std::size_t j = 0; j < jv; j += W) {
        store<W>(crow + j, load<W>(crow + j) + va * load<W>(brow + j));
      }
      for (std::size_t j = jv; j < jw; ++j) crow[j] += aip * brow[j];
    }
  }
}

/// Complex tile body over interleaved doubles. complex_mul(b, splat_pair(aip))
/// reproduces the scalar product's operand order lane-for-lane, and the
/// vector add matches the component-wise +=.
template <std::size_t W>
VPAR_SIMD_INLINE void tile_cplx_w(Complex* c, std::size_t ldc,
                                  const Complex* a_block,
                                  const Complex* b_block, std::size_t bs,
                                  Complex alpha, std::size_t mi, std::size_t kp,
                                  std::size_t jw) {
  if constexpr (W == 1) {
    for (std::size_t i = 0; i < mi; ++i) {
      Complex* __restrict crow = c + i * ldc;
      for (std::size_t p = 0; p < kp; ++p) {
        const Complex aip = alpha * a_block[i * bs + p];
        const Complex* __restrict brow = b_block + p * bs;
        for (std::size_t j = 0; j < jw; ++j) crow[j] += aip * brow[j];
      }
    }
  }
#if VPAR_SIMD_HAVE_VEC
  else {
    using V = simd::vec<W>;
    constexpr std::size_t kC = W / 2;  // complexes per vector
    const std::size_t jv = jw / kC * kC;
    for (std::size_t i = 0; i < mi; ++i) {
      Complex* __restrict crow = c + i * ldc;
      double* __restrict crd = reinterpret_cast<double*>(crow);
      for (std::size_t p = 0; p < kp; ++p) {
        const Complex aip = alpha * a_block[i * bs + p];
        const Complex* __restrict brow = b_block + p * bs;
        const double* __restrict brd = reinterpret_cast<const double*>(brow);
        const V va = simd::splat_pair<W>(aip.real(), aip.imag());
        for (std::size_t j = 0; j < jv; j += kC) {
          const V vb = load<W>(brd + 2 * j);
          const V vc = load<W>(crd + 2 * j);
          store<W>(crd + 2 * j, vc + simd::complex_mul<W>(vb, va));
        }
        for (std::size_t j = jv; j < jw; ++j) crow[j] += aip * brow[j];
      }
    }
  }
#endif
}

#if VPAR_SIMD_CLONE_AVX
__attribute__((noinline, target("avx"))) void tile_real_v4(
    double* c, std::size_t ldc, const double* ab, const double* bb,
    std::size_t bs, double alpha, std::size_t mi, std::size_t kp,
    std::size_t jw) {
  tile_real_w<4>(c, ldc, ab, bb, bs, alpha, mi, kp, jw);
}
__attribute__((noinline, target("avx"))) void tile_cplx_v4(
    Complex* c, std::size_t ldc, const Complex* ab, const Complex* bb,
    std::size_t bs, Complex alpha, std::size_t mi, std::size_t kp,
    std::size_t jw) {
  tile_cplx_w<4>(c, ldc, ab, bb, bs, alpha, mi, kp, jw);
}
#endif
#if VPAR_SIMD_CLONE_AVX512
__attribute__((noinline, target("avx512f"))) void tile_real_v8(
    double* c, std::size_t ldc, const double* ab, const double* bb,
    std::size_t bs, double alpha, std::size_t mi, std::size_t kp,
    std::size_t jw) {
  tile_real_w<8>(c, ldc, ab, bb, bs, alpha, mi, kp, jw);
}
__attribute__((noinline, target("avx512f"))) void tile_cplx_v8(
    Complex* c, std::size_t ldc, const Complex* ab, const Complex* bb,
    std::size_t bs, Complex alpha, std::size_t mi, std::size_t kp,
    std::size_t jw) {
  tile_cplx_w<8>(c, ldc, ab, bb, bs, alpha, mi, kp, jw);
}
#endif

}  // namespace

void gemm_tile_simd(double* c, std::size_t ldc, const double* a_block,
                    const double* b_block, std::size_t block_stride,
                    double alpha, std::size_t mi, std::size_t kp,
                    std::size_t jw) {
  const std::size_t w = simd::active_width();
  switch (w) {
#if VPAR_SIMD_CLONE_AVX512
    case 8: tile_real_v8(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4: tile_real_v4(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2: tile_real_w<2>(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
#endif
    default: tile_real_w<1>(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
  }
  simd::record_spans(w, mi * kp, jw / w, jw % w);
}

void gemm_tile_simd(Complex* c, std::size_t ldc, const Complex* a_block,
                    const Complex* b_block, std::size_t block_stride,
                    Complex alpha, std::size_t mi, std::size_t kp,
                    std::size_t jw) {
  const std::size_t w = simd::active_width();
  switch (w) {
#if VPAR_SIMD_CLONE_AVX512
    case 8: tile_cplx_v8(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4: tile_cplx_v4(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2: tile_cplx_w<2>(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
#endif
    default: tile_cplx_w<1>(c, ldc, a_block, b_block, block_stride, alpha, mi, kp, jw); break;
  }
  if (w == 1) {
    simd::record_spans(1, mi * kp, jw, 0);
  } else {
    const std::size_t kc = w / 2;
    simd::record_spans(w, mi * kp, jw / kc, 2 * (jw % kc));
  }
}

}  // namespace vpar::blas::detail
