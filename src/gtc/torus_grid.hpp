#pragma once

#include <cstddef>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace vpar::gtc {

/// Field grid of the simplified torus: nplanes poloidal cross-sections
/// (toroidal angle zeta in [0, 2pi), decomposed 1D over ranks exactly like
/// GTC's coarse-grained toroidal decomposition, which caps MPI concurrency
/// at the plane count — the paper's 64-subdomain limit), each an ngx x ngy
/// periodic Cartesian grid with unit spacing.
///
/// The charge array holds one extra "ghost" plane: particles between this
/// rank's last plane and the neighbour's first deposit into it, and the
/// ghost is flushed to the right neighbour after deposition.
class TorusGrid {
 public:
  TorusGrid(std::size_t ngx, std::size_t ngy, int nplanes_global, int procs,
            int rank)
      : ngx_(ngx), ngy_(ngy), nplanes_global_(nplanes_global), procs_(procs),
        rank_(rank) {
    if (nplanes_global % procs != 0) {
      throw std::runtime_error("TorusGrid: planes not divisible by ranks");
    }
    planes_local_ = nplanes_global / procs;
    plane0_ = rank * planes_local_;
    charge_.assign(static_cast<std::size_t>(planes_local_ + 1) * plane_size(), 0.0);
    phi_.assign(static_cast<std::size_t>(planes_local_) * plane_size(), 0.0);
    ex_.assign(phi_.size(), 0.0);
    ey_.assign(phi_.size(), 0.0);
  }

  [[nodiscard]] std::size_t ngx() const { return ngx_; }
  [[nodiscard]] std::size_t ngy() const { return ngy_; }
  [[nodiscard]] std::size_t plane_size() const { return ngx_ * ngy_; }
  [[nodiscard]] int nplanes_global() const { return nplanes_global_; }
  [[nodiscard]] int planes_local() const { return planes_local_; }
  [[nodiscard]] int plane0() const { return plane0_; }
  [[nodiscard]] int procs() const { return procs_; }
  [[nodiscard]] int rank() const { return rank_; }

  [[nodiscard]] double dzeta() const {
    return 2.0 * std::numbers::pi / static_cast<double>(nplanes_global_);
  }
  [[nodiscard]] double zeta_min() const { return plane0_ * dzeta(); }
  [[nodiscard]] double zeta_max() const { return (plane0_ + planes_local_) * dzeta(); }

  /// Charge plane p in [0, planes_local] (the last is the ghost plane).
  [[nodiscard]] double* charge_plane(int p) {
    return charge_.data() + static_cast<std::size_t>(p) * plane_size();
  }
  [[nodiscard]] const double* charge_plane(int p) const {
    return charge_.data() + static_cast<std::size_t>(p) * plane_size();
  }

  [[nodiscard]] double* phi_plane(int p) {
    return phi_.data() + static_cast<std::size_t>(p) * plane_size();
  }
  [[nodiscard]] double* ex_plane(int p) {
    return ex_.data() + static_cast<std::size_t>(p) * plane_size();
  }
  [[nodiscard]] double* ey_plane(int p) {
    return ey_.data() + static_cast<std::size_t>(p) * plane_size();
  }
  [[nodiscard]] const double* ex_plane(int p) const {
    return ex_.data() + static_cast<std::size_t>(p) * plane_size();
  }
  [[nodiscard]] const double* ey_plane(int p) const {
    return ey_.data() + static_cast<std::size_t>(p) * plane_size();
  }

  [[nodiscard]] std::vector<double>& charge() { return charge_; }
  [[nodiscard]] std::vector<double>& phi() { return phi_; }

  void zero_charge() { charge_.assign(charge_.size(), 0.0); }

  [[nodiscard]] double total_charge_local() const {
    double s = 0.0;
    const std::size_t owned = static_cast<std::size_t>(planes_local_) * plane_size();
    for (std::size_t i = 0; i < owned; ++i) s += charge_[i];
    return s;
  }

 private:
  std::size_t ngx_, ngy_;
  int nplanes_global_, procs_, rank_;
  int planes_local_ = 0, plane0_ = 0;
  std::vector<double> charge_, phi_, ex_, ey_;
};

}  // namespace vpar::gtc
