#include "gtc/shift.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "perf/recorder.hpp"
#include "simrt/request.hpp"

namespace vpar::gtc {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr int kTagCount = 301;
constexpr int kTagData = 302;

/// Hop direction for a marker at `zeta` relative to domain [zmin, zmax):
/// 0 = home, +1 = send right, -1 = send left (shortest periodic path).
int direction_of(double zeta, double zmin, double zmax) {
  if (zeta >= zmin && zeta < zmax) return 0;
  const double center = 0.5 * (zmin + zmax);
  double delta = zeta - center;
  while (delta > std::numbers::pi) delta -= kTwoPi;
  while (delta <= -std::numbers::pi) delta += kTwoPi;
  return delta > 0.0 ? +1 : -1;
}

std::vector<double> pack(const ParticleSet& p, const std::vector<std::size_t>& idx) {
  std::vector<double> out;
  out.reserve(idx.size() * 6);
  for (std::size_t i : idx) {
    out.push_back(p.x[i]);
    out.push_back(p.y[i]);
    out.push_back(p.zeta[i]);
    out.push_back(p.vpar[i]);
    out.push_back(p.rho[i]);
    out.push_back(p.q[i]);
  }
  return out;
}

void unpack_into(ParticleSet& p, const std::vector<double>& flat) {
  for (std::size_t k = 0; k + 5 < flat.size(); k += 6) {
    p.push_back(flat[k], flat[k + 1], flat[k + 2], flat[k + 3], flat[k + 4],
                flat[k + 5]);
  }
}

/// Remove the listed indices (ascending order) by back-swapping.
void remove_indices(ParticleSet& p, std::vector<std::size_t>& idx) {
  for (auto it = idx.rbegin(); it != idx.rend(); ++it) p.swap_remove(*it);
}

}  // namespace

std::size_t shift(simrt::Communicator& comm, const TorusGrid& grid,
                  ParticleSet& particles, ShiftVariant variant) {
  const double zmin = grid.zeta_min();
  const double zmax = grid.zeta_max();
  const int left = (comm.rank() + comm.size() - 1) % comm.size();
  const int right = (comm.rank() + 1) % comm.size();
  std::size_t total_sent = 0;

  for (;;) {
    std::vector<std::size_t> go_left, go_right;
    const std::size_t n = particles.size();

    if (variant == ShiftVariant::NestedIf) {
      // Original form: nested data-dependent branches per marker.
      for (std::size_t i = 0; i < n; ++i) {
        const double z = particles.zeta[i];
        if (z < zmin || z >= zmax) {
          if (direction_of(z, zmin, zmax) > 0) {
            go_right.push_back(i);
          } else {
            go_left.push_back(i);
          }
        }
      }
      perf::LoopRecord rec;
      rec.vectorizable = false;
      rec.instances = 1.0;
      rec.trips = static_cast<double>(n);
      rec.flops_per_trip = 8.0;
      rec.bytes_per_trip = sizeof(double);
      rec.access = perf::AccessPattern::Stream;
      perf::record_loop("shift", rec);
    } else {
      // Two successive condition blocks: a branch-free classification pass
      // the compiler streams and vectorizes, then a packing pass.
      std::vector<signed char> code(n);
      for (std::size_t i = 0; i < n; ++i) {
        code[i] = static_cast<signed char>(
            direction_of(particles.zeta[i], zmin, zmax));
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (code[i] > 0) go_right.push_back(i);
        if (code[i] < 0) go_left.push_back(i);
      }
      perf::LoopRecord rec;
      rec.vectorizable = true;
      rec.instances = 2.0;
      rec.trips = static_cast<double>(n);
      rec.flops_per_trip = 4.0;
      rec.bytes_per_trip = sizeof(double) + 1.0;
      rec.access = perf::AccessPattern::Stream;
      perf::record_loop("shift", rec);
    }

    const std::size_t moving = go_left.size() + go_right.size();
    const auto any_moving =
        comm.allreduce(static_cast<long>(moving), simrt::ReduceOp::Max);
    if (any_moving == 0) return total_sent;
    total_sent += moving;

    // Migration sizes are known from the classification pass, so the count
    // exchange is posted *before* packing: counts fly while markers are
    // packed and compacted, then the sized payload receives are posted and
    // the payloads exchanged by move. The whole migration round is one
    // overlap window; the termination allreduce above stays outside it
    // (reductions synchronize and hide nothing).
    const std::array<std::size_t, 1> nr{go_right.size() * 6};
    const std::array<std::size_t, 1> nl{go_left.size() * 6};
    std::array<std::size_t, 1> from_left{}, from_right{};
    {
      perf::OverlapScope window;
      simrt::Request count_reqs[2] = {
          comm.irecv<std::size_t>(left, from_left, kTagCount),
          comm.irecv<std::size_t>(right, from_right, kTagCount)};
      comm.isend<std::size_t>(right, std::span<const std::size_t>(nr), kTagCount)
          .wait();
      comm.isend<std::size_t>(left, std::span<const std::size_t>(nl), kTagCount)
          .wait();

      auto send_right_buf = pack(particles, go_right);
      auto send_left_buf = pack(particles, go_left);
      // Remove in ascending combined order so back-swaps stay valid.
      std::vector<std::size_t> all = go_left;
      all.insert(all.end(), go_right.begin(), go_right.end());
      std::sort(all.begin(), all.end());
      remove_indices(particles, all);

      simrt::waitall(count_reqs);
      std::vector<double> in_left(from_left[0]), in_right(from_right[0]);
      simrt::Request data_reqs[2] = {comm.irecv<double>(left, in_left, kTagData),
                                     comm.irecv<double>(right, in_right, kTagData)};
      comm.isend<double>(right, std::move(send_right_buf), kTagData).wait();
      comm.isend<double>(left, std::move(send_left_buf), kTagData).wait();
      simrt::waitall(data_reqs);
      unpack_into(particles, in_left);
      unpack_into(particles, in_right);
    }
  }
}

}  // namespace vpar::gtc
