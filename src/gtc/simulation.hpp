#pragma once

#include <cstdint>
#include <vector>

#include "gtc/deposition.hpp"
#include "gtc/particles.hpp"
#include "gtc/poisson.hpp"
#include "gtc/push.hpp"
#include "gtc/shift.hpp"
#include "gtc/torus_grid.hpp"
#include "simrt/communicator.hpp"

namespace vpar::gtc {

/// Configuration of one gyrokinetic PIC run.
struct Options {
  std::size_t ngx = 32, ngy = 32;  ///< cross-section grid
  int nplanes = 8;                 ///< toroidal planes (1D decomposition)
  int particles_per_cell = 10;     ///< markers per grid cell (paper: 10/100)
  double dt = 0.05;
  double b0 = 1.0;
  double vpar_max = 1.0;  ///< uniform parallel-velocity spread
  double rho_max = 2.0;   ///< gyroradius spread
  DepositVariant deposit = DepositVariant::Scatter;
  ShiftVariant shift = ShiftVariant::TwoPass;
  std::size_t vlen = 256;  ///< work-vector lanes
  int threads = 1;         ///< >1: hybrid loop-level threading (overrides
                           ///< `deposit` with the threaded scatter)
  std::uint64_t seed = 42;
};

/// Self-consistent gyrokinetic particle-in-cell simulation on the simplified
/// torus: 4-point gyro-averaged charge deposition, per-plane spectral
/// Poisson solve, ExB gather-push, and iterative toroidal shift — the
/// computational skeleton and communication pattern of GTC.
class Simulation {
 public:
  Simulation(simrt::Communicator& comm, const Options& options);

  /// Load markers uniformly over the local domain (quiet start: equal and
  /// opposite charges so the plasma is quasi-neutral in the mean).
  void load_particles();

  void step();
  void run(int steps);

  // --- diagnostics (collective) --------------------------------------------
  [[nodiscard]] std::size_t global_particle_count();
  [[nodiscard]] double global_particle_charge();
  [[nodiscard]] double global_grid_charge();  ///< after the last deposition
  [[nodiscard]] double field_energy();        ///< sum phi*rho over the grid

  /// All local markers within this rank's zeta range?
  [[nodiscard]] bool particles_home() const;

  /// Per-rank checkpoint of the complete evolving state: the local marker
  /// population. The grid (charge, potential, fields) is recomputed from the
  /// markers at the start of every step, so restoring this into a simulation
  /// built with the same options replays the run bitwise-identically.
  struct Checkpoint {
    ParticleSet particles;
  };
  [[nodiscard]] Checkpoint save_state() const;
  void restore_state(const Checkpoint& checkpoint);

  /// Gather one owned plane's potential to rank 0 (row-major ngy x ngx).
  [[nodiscard]] std::vector<double> gather_phi_plane(int global_plane);

  [[nodiscard]] TorusGrid& grid() { return grid_; }
  [[nodiscard]] ParticleSet& particles() { return particles_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Individual phases, exposed for tests and benches.
  void deposit_phase();
  void solve_phase();
  void push_phase();
  void shift_phase();

 private:
  void flush_ghost_plane();
  void fetch_ghost_efield();

  simrt::Communicator* comm_;
  Options options_;
  TorusGrid grid_;
  ParticleSet particles_;
  std::vector<double> ex_ghost_, ey_ghost_;
};

}  // namespace vpar::gtc
