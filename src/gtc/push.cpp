#include "gtc/push.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "gtc/deposition.hpp"
#include "gtc/gtc_simd.hpp"
#include "perf/recorder.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"

namespace vpar::gtc {

double push_flops_per_particle() {
  // Stencil rebuild (~70) + 32 gathers x 2 fields x 2 flops + drift update.
  return 70.0 + 128.0 + 12.0;
}

void gather_push(ParticleSet& particles, const TorusGrid& grid,
                 const std::vector<double>& ex_ghost,
                 const std::vector<double>& ey_ghost, double dt, double b0) {
  const std::size_t n = particles.size();
  const std::size_t ps = grid.plane_size();
  if (ex_ghost.size() != ps || ey_ghost.size() != ps) {
    throw std::runtime_error("gather_push: ghost plane size mismatch");
  }
  const double two_pi = 2.0 * std::numbers::pi;
  const double nx = static_cast<double>(grid.ngx());
  const double ny = static_cast<double>(grid.ngy());

  // Each marker only reads the field planes and writes its own slots, so the
  // particle loop splits across idle pool workers bitwise-safely; the stencil
  // scratch is per-chunk so serving threads never share it.
  simrt::parallel_for(0, n, 0, [&](std::size_t lo, std::size_t hi) {
    // Runtime dispatch: the SIMD span kernel accumulates each particle's 32
    // field terms in the scalar order (bitwise identical E and drift).
    if (simd::use_simd()) {
      detail::gather_push_span_simd(particles, grid, ex_ghost.data(),
                                    ey_ghost.data(), dt, b0, lo, hi);
      return;
    }
    DepositStencil st;
    for (std::size_t i = lo; i < hi; ++i) {
      compute_stencil(grid, particles.x[i], particles.y[i], particles.zeta[i],
                      particles.rho[i], st);
      double ex = 0.0, ey = 0.0;
      for (int b = 0; b < 2; ++b) {
        const bool ghost = st.plane[b] == grid.planes_local();
        const double* exp_ = ghost ? ex_ghost.data() : grid.ex_plane(st.plane[b]);
        const double* eyp = ghost ? ey_ghost.data() : grid.ey_plane(st.plane[b]);
        const double w = st.wplane[b];
        for (int c = 0; c < 16; ++c) {
          // One shared weight product per cell; left-to-right evaluation makes
          // this the same rounding as the w * wcell * field form.
          const double wc = w * st.wcell[c];
          ex += wc * exp_[st.cell[c]];
          ey += wc * eyp[st.cell[c]];
        }
      }
      // ExB drift with B = b0 z-hat (the gyro-average is the 4-point ring).
      // One drift step moves a marker at most one period, so the wrap fast
      // path applies almost always; it is bitwise identical to fmod-then-fixup.
      particles.x[i] = wrap_periodic(particles.x[i] + dt * ey / b0, nx);
      particles.y[i] = wrap_periodic(particles.y[i] - dt * ex / b0, ny);
      particles.zeta[i] =
          wrap_periodic(particles.zeta[i] + dt * particles.vpar[i], two_pi);
    }
  });

  perf::LoopRecord rec;
  rec.vectorizable = true;  // after the paper's modulo -> mod fix (§6.1)
  rec.instances = 1.0;
  rec.trips = static_cast<double>(n);
  rec.flops_per_trip = push_flops_per_particle();
  rec.bytes_per_trip = 32.0 * 2.0 * sizeof(double) + 12.0 * sizeof(double);
  rec.access = perf::AccessPattern::Gather;
  rec.working_set_bytes = 2.0 * static_cast<double>(grid.planes_local() + 1) *
                          static_cast<double>(ps) * sizeof(double);
  perf::record_loop("gather_push", rec);
}

}  // namespace vpar::gtc
