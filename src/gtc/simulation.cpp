#include "gtc/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

#include "trace/trace.hpp"

namespace vpar::gtc {

Simulation::Simulation(simrt::Communicator& comm, const Options& options)
    : comm_(&comm), options_(options),
      grid_(options.ngx, options.ngy, options.nplanes, comm.size(), comm.rank()),
      ex_ghost_(grid_.plane_size(), 0.0), ey_ghost_(grid_.plane_size(), 0.0) {}

void Simulation::load_particles() {
  particles_.clear();
  std::mt19937_64 rng(options_.seed + static_cast<std::uint64_t>(comm_->rank()));
  std::uniform_real_distribution<double> ux(0.0, static_cast<double>(options_.ngx));
  std::uniform_real_distribution<double> uy(0.0, static_cast<double>(options_.ngy));
  std::uniform_real_distribution<double> uz(grid_.zeta_min(), grid_.zeta_max());
  std::uniform_real_distribution<double> uv(-options_.vpar_max, options_.vpar_max);
  std::uniform_real_distribution<double> ur(0.0, options_.rho_max);

  const std::size_t cells = grid_.plane_size() *
                            static_cast<std::size_t>(grid_.planes_local());
  const std::size_t count =
      cells * static_cast<std::size_t>(options_.particles_per_cell);
  for (std::size_t i = 0; i < count; ++i) {
    // Quiet start: alternate charge signs for mean quasi-neutrality.
    const double q = (i % 2 == 0) ? 1.0 : -1.0;
    particles_.push_back(ux(rng), uy(rng), uz(rng), uv(rng), ur(rng), q);
  }
}

void Simulation::flush_ghost_plane() {
  // Ghost charge accumulated for the neighbour's first plane: send right,
  // add the incoming contribution (from the left) onto our first plane.
  const std::size_t ps = grid_.plane_size();
  const int right = (comm_->rank() + 1) % comm_->size();
  const int left = (comm_->rank() + comm_->size() - 1) % comm_->size();
  std::vector<double> incoming(ps);
  comm_->sendrecv<double>(
      right, std::span<const double>(grid_.charge_plane(grid_.planes_local()), ps),
      left, std::span<double>(incoming), 401);
  double* first = grid_.charge_plane(0);
  for (std::size_t i = 0; i < ps; ++i) first[i] += incoming[i];
}

void Simulation::fetch_ghost_efield() {
  const std::size_t ps = grid_.plane_size();
  const int right = (comm_->rank() + 1) % comm_->size();
  const int left = (comm_->rank() + comm_->size() - 1) % comm_->size();
  comm_->sendrecv<double>(left, std::span<const double>(grid_.ex_plane(0), ps),
                          right, std::span<double>(ex_ghost_), 402);
  comm_->sendrecv<double>(left, std::span<const double>(grid_.ey_plane(0), ps),
                          right, std::span<double>(ey_ghost_), 403);
}

void Simulation::deposit_phase() {
  trace::TraceSpan span("gtc.deposit",
                        static_cast<std::int64_t>(particles_.size()));
  grid_.zero_charge();
  if (options_.threads > 1) {
    deposit_threaded(particles_, grid_, options_.threads);
  } else {
    deposit(particles_, grid_, options_.deposit, options_.vlen);
  }
  flush_ghost_plane();
}

void Simulation::solve_phase() {
  trace::TraceSpan span("gtc.solve",
                        static_cast<std::int64_t>(grid_.plane_size()));
  solve_poisson(grid_);
  compute_efield(grid_);
  fetch_ghost_efield();
}

void Simulation::push_phase() {
  trace::TraceSpan span("gtc.push",
                        static_cast<std::int64_t>(particles_.size()));
  gather_push(particles_, grid_, ex_ghost_, ey_ghost_, options_.dt, options_.b0);
}

void Simulation::shift_phase() {
  trace::TraceSpan span("gtc.shift",
                        static_cast<std::int64_t>(particles_.size()));
  shift(*comm_, grid_, particles_, options_.shift);
}

void Simulation::step() {
  deposit_phase();
  solve_phase();
  push_phase();
  shift_phase();
}

void Simulation::run(int steps) {
  for (int s = 0; s < steps; ++s) step();
}

Simulation::Checkpoint Simulation::save_state() const {
  return Checkpoint{particles_};
}

void Simulation::restore_state(const Checkpoint& checkpoint) {
  particles_ = checkpoint.particles;
}

std::size_t Simulation::global_particle_count() {
  const auto local = static_cast<long>(particles_.size());
  return static_cast<std::size_t>(comm_->allreduce(local, simrt::ReduceOp::Sum));
}

double Simulation::global_particle_charge() {
  return comm_->allreduce(particles_.total_charge(), simrt::ReduceOp::Sum);
}

double Simulation::global_grid_charge() {
  return comm_->allreduce(grid_.total_charge_local(), simrt::ReduceOp::Sum);
}

double Simulation::field_energy() {
  double local = 0.0;
  for (int p = 0; p < grid_.planes_local(); ++p) {
    const double* phi = grid_.phi_plane(p);
    const double* rho = grid_.charge_plane(p);
    for (std::size_t i = 0; i < grid_.plane_size(); ++i) local += phi[i] * rho[i];
  }
  return comm_->allreduce(local, simrt::ReduceOp::Sum);
}

bool Simulation::particles_home() const {
  for (double z : particles_.zeta) {
    if (z < grid_.zeta_min() || z >= grid_.zeta_max()) return false;
  }
  return true;
}

std::vector<double> Simulation::gather_phi_plane(int global_plane) {
  const int owner = global_plane / grid_.planes_local();
  const std::size_t ps = grid_.plane_size();
  std::vector<double> plane(ps, 0.0);
  if (comm_->rank() == owner) {
    const double* phi = grid_.phi_plane(global_plane - grid_.plane0());
    std::copy_n(phi, ps, plane.begin());
    if (owner != 0) comm_->send<double>(0, plane, 404);
  }
  if (comm_->rank() == 0 && owner != 0) {
    comm_->recv<double>(owner, std::span<double>(plane), 404);
  }
  return comm_->rank() == 0 ? plane : std::vector<double>{};
}

}  // namespace vpar::gtc
