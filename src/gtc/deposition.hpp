#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "gtc/particles.hpp"
#include "gtc/torus_grid.hpp"

namespace vpar::gtc {

/// Charge-deposition implementations (paper §6.1, Figure 8):
///  - Scatter:    classic direct scatter-add. Multiple particles may update
///                the same grid point, a memory dependency the vector
///                compilers cannot prove away — unvectorizable.
///  - WorkVector: the Nishiguchi/Orii/Yabe work-vector algorithm the ES/X1
///                ports use: the grid gains an extra dimension of the vector
///                length so each vector lane owns a private copy, followed
///                by a reduction. Vectorizes fully at the cost of a 2-8x
///                memory-footprint increase.
///  - Sorted:     counting-sort particles by cell, then deposit in cell
///                order (conflict-free groups); trades extra integer work
///                and data movement for vectorizability.
///  - Hybrid:     the paper's MPI+OpenMP mode under the simrt pool: the
///                particle range is cut into kHybridDepositChunks fixed
///                chunks served by simrt::parallel_for, each accumulating
///                into a private grid copy, folded into the charge grid in
///                ascending chunk order. Because the partition and the fold
///                order are fixed (independent of how many pool workers
///                participate), the result is bitwise identical whether the
///                loop ran serial or across helpers.
/// All variants produce the same charge field up to floating-point
/// summation order.
enum class DepositVariant { Scatter, WorkVector, Sorted, Hybrid };

/// Fixed chunk count of DepositVariant::Hybrid (the determinism contract
/// above). 8 private grid copies — the same memory blow-up class as a
/// vlen-8 work vector.
inline constexpr std::size_t kHybridDepositChunks = 8;

/// Periodic wrap of a coordinate into [0, n). The overwhelmingly common case
/// is a coordinate at most one period out of range (a drift step or ring
/// point just across the boundary); fmod — an order of magnitude slower —
/// only runs for far-out values. Bitwise identical to the plain
/// fmod-then-fixup formulation: for v in [n, 2n) the direct subtraction is
/// exact (Sterbenz) and equals the exact fmod; for v in (-n, 0), fmod(v, n)
/// == v exactly, so both forms compute the same v + n.
inline double wrap_periodic(double v, double n) {
  if (v >= 0.0 && v < n) return v;
  if (v >= n && v < n + n) return v - n;
  if (v < 0.0 && v >= -n) return v + n;
  v = std::fmod(v, n);
  return v < 0.0 ? v + n : v;
}

/// Gyro-averaged 4-point deposition stencil of one marker: the charge ring
/// is sampled at four points, each bilinearly spread onto four grid points,
/// on the two toroidal planes bracketing the marker.
struct DepositStencil {
  int plane[2];          ///< local plane indices (second may be the ghost)
  double wplane[2];      ///< linear weights along zeta
  std::size_t cell[16];  ///< flattened ring-point x bilinear-corner cells
  double wcell[16];      ///< corresponding weights (sum to 1)
};

/// Build the stencil for marker (x, y, zeta, rho). zeta must lie in this
/// rank's domain.
void compute_stencil(const TorusGrid& grid, double x, double y, double zeta,
                     double rho, DepositStencil& out);

/// Accumulate all markers' charge into grid.charge(). The caller zeroes the
/// charge array and flushes the ghost plane afterwards.
void deposit(const ParticleSet& particles, TorusGrid& grid, DepositVariant variant,
             std::size_t vlen = 256);

/// Hybrid loop-level parallel deposition (the paper's MPI/OpenMP mode, 6.1):
/// the particle loop is split across `threads` host threads, each with a
/// private grid copy (like a coarse work-vector), followed by a reduction.
/// Physics identical to Scatter up to floating-point summation order.
void deposit_threaded(const ParticleSet& particles, TorusGrid& grid, int threads);

/// Bookkeeping constants.
[[nodiscard]] double deposition_flops_per_particle();

}  // namespace vpar::gtc
