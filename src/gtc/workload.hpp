#pragma once

#include "arch/machine_model.hpp"
#include "gtc/deposition.hpp"
#include "gtc/shift.hpp"

namespace vpar::gtc {

/// One cell of the paper's Table 6. The standard production grid is 64
/// toroidal planes of ~180^2 cross-section points (~2M grid points); 10 or
/// 100 particles per cell give 20M / 200M markers. MPI concurrency is capped
/// at the 64 toroidal subdomains; the P=1024 row runs hybrid MPI/OpenMP with
/// 16 loop-level threads per domain (Power3 only in the paper).
struct Table6Config {
  std::size_t ngx = 180, ngy = 180;
  int nplanes = 64;
  int particles_per_cell = 10;
  int procs = 32;  ///< MPI ranks (<= nplanes)
  int steps = 100;
  DepositVariant deposit = DepositVariant::Scatter;
  ShiftVariant shift_variant = ShiftVariant::NestedIf;
  std::size_t vlen = 256;      ///< work-vector lanes (machine vector length)
  double shift_fraction = 0.1; ///< markers migrating per step
  int openmp_threads = 1;      ///< loop-level threads per MPI rank (hybrid)
  double openmp_efficiency = 0.5;  ///< paper: 1024-way hybrid is ~20% slower
                                   ///< than 64-way vector runs
};

/// Synthesize the per-processor AppProfile at paper scale. Record shapes
/// mirror the instrumented kernels; tests assert agreement with measured
/// small runs.
[[nodiscard]] arch::AppProfile make_profile(const Table6Config& config);

/// Baseline algorithmic flops (deposition + push + field solve), excluding
/// the work-vector algorithm's extra work, per the paper's accounting.
[[nodiscard]] double baseline_flops(const Table6Config& config);

}  // namespace vpar::gtc
