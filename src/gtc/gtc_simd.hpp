#pragma once

#include <cstddef>

#include "gtc/particles.hpp"
#include "gtc/torus_grid.hpp"

namespace vpar::gtc::detail {

/// SIMD gather-push for particles [lo, hi): W particles per strip, the
/// per-lane gather-accumulate preserving the scalar per-cell accumulation
/// order (bitwise identical E values and drifts), stencil computation and the
/// periodic-wrap drift staying scalar per lane. Safe to call from
/// parallel_for span callbacks (writes only slots [lo, hi)).
void gather_push_span_simd(ParticleSet& particles, const TorusGrid& grid,
                           const double* ex_ghost, const double* ey_ghost,
                           double dt, double b0, std::size_t lo,
                           std::size_t hi);

/// SIMD charge-fold sweep: charge[k] += w[k]; w[k] = 0 for k in [0, n) —
/// element-wise, so bitwise identical to the scalar loop. Used by the
/// WorkVector and Hybrid deposit reductions.
void deposit_fold_simd(double* charge, double* w, std::size_t n);

}  // namespace vpar::gtc::detail
