#include "gtc/poisson.hpp"

#include <complex>
#include <optional>
#include <numbers>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/fft_multi.hpp"
#include "perf/recorder.hpp"

namespace vpar::gtc {

namespace {

using fft::Complex;

/// Batched 1D transforms along contiguous rows: the vector-friendly
/// simultaneous path for power-of-two lengths, a looped Bluestein transform
/// otherwise (the production 180^2 cross-section is not a power of two).
class PlanePlan {
 public:
  explicit PlanePlan(std::size_t n) : n_(n), general_(n) {
    if (fft::Fft1d::is_power_of_two(n)) multi_.emplace(n);
  }

  void rows(std::span<Complex> data, std::size_t count, bool invert) const {
    if (multi_.has_value()) {
      multi_->simultaneous(data, count, invert);
      return;
    }
    for (std::size_t t = 0; t < count; ++t) {
      auto seq = data.subspan(t * n_, n_);
      if (invert) {
        general_.inverse(seq);
      } else {
        general_.forward(seq);
      }
    }
  }

 private:
  std::size_t n_;
  fft::Fft1d general_;
  std::optional<fft::MultiFft1d> multi_;
};

/// In-place 2D FFT of an ngy x ngx complex plane (rows contiguous): rows as
/// one batch, then columns via transpose.
void fft2d(std::vector<Complex>& a, std::size_t ngx, std::size_t ngy,
           const PlanePlan& fx, const PlanePlan& fy, bool invert) {
  fx.rows(std::span<Complex>(a), ngy, invert);
  std::vector<Complex> t(a.size());
  for (std::size_t y = 0; y < ngy; ++y) {
    for (std::size_t x = 0; x < ngx; ++x) t[x * ngy + y] = a[y * ngx + x];
  }
  fy.rows(std::span<Complex>(t), ngx, invert);
  for (std::size_t y = 0; y < ngy; ++y) {
    for (std::size_t x = 0; x < ngx; ++x) a[y * ngx + x] = t[x * ngy + y];
  }
}

/// Continuous wavenumber of mode m on a periodic axis of n unit cells.
double wavenumber(std::size_t m, std::size_t n) {
  const auto half = n / 2;
  const double k = 2.0 * std::numbers::pi *
                   (m <= half ? static_cast<double>(m)
                              : static_cast<double>(m) - static_cast<double>(n)) /
                   static_cast<double>(n);
  return k;
}

}  // namespace

void solve_poisson(TorusGrid& grid) {
  const std::size_t ngx = grid.ngx(), ngy = grid.ngy();
  const PlanePlan fx(ngx), fy(ngy);
  std::vector<Complex> a(ngx * ngy);

  for (int p = 0; p < grid.planes_local(); ++p) {
    const double* rho = grid.charge_plane(p);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = Complex(rho[i], 0.0);
    fft2d(a, ngx, ngy, fx, fy, false);
    for (std::size_t y = 0; y < ngy; ++y) {
      const double ky = wavenumber(y, ngy);
      for (std::size_t x = 0; x < ngx; ++x) {
        const double kx = wavenumber(x, ngx);
        const double k2 = kx * kx + ky * ky;
        a[y * ngx + x] = k2 > 0.0 ? a[y * ngx + x] / k2 : Complex(0.0, 0.0);
      }
    }
    fft2d(a, ngx, ngy, fx, fy, true);
    double* phi = grid.phi_plane(p);
    for (std::size_t i = 0; i < a.size(); ++i) phi[i] = a[i].real();

    perf::LoopRecord rec;  // the spectral scaling sweep
    rec.vectorizable = true;
    rec.instances = static_cast<double>(ngy);
    rec.trips = static_cast<double>(ngx);
    rec.flops_per_trip = 6.0;
    rec.bytes_per_trip = 2.0 * sizeof(Complex);
    rec.access = perf::AccessPattern::Stream;
    perf::record_loop("poisson", rec);
  }
}

void compute_efield(TorusGrid& grid) {
  const std::size_t ngx = grid.ngx(), ngy = grid.ngy();
  for (int p = 0; p < grid.planes_local(); ++p) {
    const double* phi = grid.phi_plane(p);
    double* ex = grid.ex_plane(p);
    double* ey = grid.ey_plane(p);
    for (std::size_t y = 0; y < ngy; ++y) {
      const std::size_t ym = (y + ngy - 1) % ngy, yp = (y + 1) % ngy;
      for (std::size_t x = 0; x < ngx; ++x) {
        const std::size_t xm = (x + ngx - 1) % ngx, xp = (x + 1) % ngx;
        ex[y * ngx + x] = -0.5 * (phi[y * ngx + xp] - phi[y * ngx + xm]);
        ey[y * ngx + x] = -0.5 * (phi[yp * ngx + x] - phi[ym * ngx + x]);
      }
    }
  }
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(grid.planes_local()) * static_cast<double>(ngy);
  rec.trips = static_cast<double>(ngx);
  rec.flops_per_trip = 6.0;
  rec.bytes_per_trip = 4.0 * sizeof(double);
  rec.access = perf::AccessPattern::Stream;
  perf::record_loop("poisson", rec);
}

}  // namespace vpar::gtc
