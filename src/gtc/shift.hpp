#pragma once

#include "gtc/particles.hpp"
#include "gtc/torus_grid.hpp"
#include "simrt/communicator.hpp"

namespace vpar::gtc {

/// Implementations of GTC's `shift` routine, which migrates markers whose
/// toroidal angle left the local domain (paper §6.1):
///  - NestedIf: the original form — one sweep with nested if statements
///    classifying each marker. The X1 compiler could not vectorize it, and
///    it ballooned to 54% of X1 runtime.
///  - TwoPass:  the optimized form — a branch-free first pass computes each
///    marker's destination code into a flat array (vectorizes), a second
///    pass packs the send buffers. This dropped the shift overhead to 4%.
/// Both variants move the same markers; final per-rank populations are
/// identical (ordering may differ).
enum class ShiftVariant { NestedIf, TwoPass };

/// Migrate out-of-domain markers to neighbouring ranks, hopping one domain
/// per round until every marker is home (GTC's iterative shift). Returns
/// the number of markers this rank sent in total.
std::size_t shift(simrt::Communicator& comm, const TorusGrid& grid,
                  ParticleSet& particles, ShiftVariant variant);

}  // namespace vpar::gtc
