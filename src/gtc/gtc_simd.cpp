#include "gtc/gtc_simd.hpp"

#include <numbers>

#include "gtc/deposition.hpp"
#include "simd/dispatch.hpp"
#include "simd/simd.hpp"

namespace vpar::gtc::detail {

namespace {

using simd::load;
using simd::splat;
using simd::store;

/// Width-templated push body over particles [i0, i1), (i1 - i0) % W == 0.
/// Lanes are particles. The stencil build transposes into [cell][lane]
/// scratch so the weight arithmetic runs on contiguous vector loads; field
/// values are gathered lane-by-lane (the portable analogue of the vector
/// gather the paper's E&M kernels lean on). Each lane accumulates its 32
/// weighted field terms in exactly the scalar order, so E — and therefore the
/// drift — is bitwise identical to the reference loop.
template <std::size_t W>
VPAR_SIMD_INLINE void push_w(ParticleSet& particles, const TorusGrid& grid,
                             const double* ex_ghost, const double* ey_ghost,
                             double dt, double b0, double nx, double ny,
                             double two_pi, std::size_t i0, std::size_t i1) {
  using V = simd::vec<W>;
  DepositStencil st;
  for (std::size_t g = i0; g < i1; g += W) {
    double wpl[2][W];
    const double* fex[2][W];
    const double* fey[2][W];
    double wcell_t[16][W];
    std::size_t cell_t[16][W];
    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t i = g + l;
      compute_stencil(grid, particles.x[i], particles.y[i], particles.zeta[i],
                      particles.rho[i], st);
      for (int b = 0; b < 2; ++b) {
        const bool ghost = st.plane[b] == grid.planes_local();
        fex[b][l] = ghost ? ex_ghost : grid.ex_plane(st.plane[b]);
        fey[b][l] = ghost ? ey_ghost : grid.ey_plane(st.plane[b]);
        wpl[b][l] = st.wplane[b];
      }
      for (int c = 0; c < 16; ++c) {
        wcell_t[c][l] = st.wcell[c];
        cell_t[c][l] = st.cell[c];
      }
    }

    V ex = splat<W>(0.0), ey = splat<W>(0.0);
    for (int b = 0; b < 2; ++b) {
      const V w = load<W>(wpl[b]);
      for (int c = 0; c < 16; ++c) {
        const V wc = w * load<W>(wcell_t[c]);
        double gx[W], gy[W];
        for (std::size_t l = 0; l < W; ++l) {
          gx[l] = fex[b][l][cell_t[c][l]];
          gy[l] = fey[b][l][cell_t[c][l]];
        }
        ex = ex + wc * load<W>(gx);
        ey = ey + wc * load<W>(gy);
      }
    }

    double exs[W], eys[W];
    store<W>(exs, ex);
    store<W>(eys, ey);
    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t i = g + l;
      particles.x[i] = wrap_periodic(particles.x[i] + dt * eys[l] / b0, nx);
      particles.y[i] = wrap_periodic(particles.y[i] - dt * exs[l] / b0, ny);
      particles.zeta[i] =
          wrap_periodic(particles.zeta[i] + dt * particles.vpar[i], two_pi);
    }
  }
}

template <std::size_t W>
VPAR_SIMD_INLINE void push_span_w(ParticleSet& particles, const TorusGrid& grid,
                                  const double* ex_ghost,
                                  const double* ey_ghost, double dt, double b0,
                                  double nx, double ny, double two_pi,
                                  std::size_t lo, std::size_t hi) {
  const std::size_t nv = lo + (hi - lo) / W * W;
  push_w<W>(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny, two_pi, lo, nv);
  push_w<1>(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny, two_pi, nv, hi);
}

#if VPAR_SIMD_CLONE_AVX
__attribute__((noinline, target("avx"))) void push_v4(
    ParticleSet& particles, const TorusGrid& grid, const double* ex_ghost,
    const double* ey_ghost, double dt, double b0, double nx, double ny,
    double two_pi, std::size_t lo, std::size_t hi) {
  push_span_w<4>(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny, two_pi,
                 lo, hi);
}
#endif
#if VPAR_SIMD_CLONE_AVX512
__attribute__((noinline, target("avx512f"))) void push_v8(
    ParticleSet& particles, const TorusGrid& grid, const double* ex_ghost,
    const double* ey_ghost, double dt, double b0, double nx, double ny,
    double two_pi, std::size_t lo, std::size_t hi) {
  push_span_w<8>(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny, two_pi,
                 lo, hi);
}
#endif

/// Width-templated fold body over [i0, i1), (i1 - i0) % W == 0.
template <std::size_t W>
VPAR_SIMD_INLINE void fold_w(double* __restrict charge, double* __restrict w,
                             std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; i += W) {
    store<W>(charge + i, load<W>(charge + i) + load<W>(w + i));
    store<W>(w + i, splat<W>(0.0));
  }
}

template <std::size_t W>
VPAR_SIMD_INLINE void fold_span_w(double* charge, double* w, std::size_t n) {
  const std::size_t nv = n / W * W;
  fold_w<W>(charge, w, 0, nv);
  fold_w<1>(charge, w, nv, n);
}

#if VPAR_SIMD_CLONE_AVX
__attribute__((noinline, target("avx"))) void fold_v4(double* charge,
                                                      double* w,
                                                      std::size_t n) {
  fold_span_w<4>(charge, w, n);
}
#endif
#if VPAR_SIMD_CLONE_AVX512
__attribute__((noinline, target("avx512f"))) void fold_v8(double* charge,
                                                          double* w,
                                                          std::size_t n) {
  fold_span_w<8>(charge, w, n);
}
#endif

}  // namespace

void gather_push_span_simd(ParticleSet& particles, const TorusGrid& grid,
                           const double* ex_ghost, const double* ey_ghost,
                           double dt, double b0, std::size_t lo,
                           std::size_t hi) {
  const double two_pi = 2.0 * std::numbers::pi;
  const double nx = static_cast<double>(grid.ngx());
  const double ny = static_cast<double>(grid.ngy());
  const std::size_t w = simd::active_width();
  switch (w) {
#if VPAR_SIMD_CLONE_AVX512
    case 8:
      push_v8(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny, two_pi, lo, hi);
      break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4:
      push_v4(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny, two_pi, lo, hi);
      break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2:
      push_span_w<2>(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny,
                     two_pi, lo, hi);
      break;
#endif
    default:
      push_span_w<1>(particles, grid, ex_ghost, ey_ghost, dt, b0, nx, ny,
                     two_pi, lo, hi);
      break;
  }
  simd::record_span(w, (hi - lo) / w, (hi - lo) % w);
}

void deposit_fold_simd(double* charge, double* w, std::size_t n) {
  const std::size_t width = simd::active_width();
  switch (width) {
#if VPAR_SIMD_CLONE_AVX512
    case 8: fold_v8(charge, w, n); break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4: fold_v4(charge, w, n); break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2: fold_span_w<2>(charge, w, n); break;
#endif
    default: fold_span_w<1>(charge, w, n); break;
  }
  simd::record_span(width, n / width, n % width);
}

}  // namespace vpar::gtc::detail
