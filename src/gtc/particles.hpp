#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace vpar::gtc {

/// Structure-of-arrays particle storage: gyrokinetic markers with
/// guiding-centre position (x, y) in the cross-section plane, toroidal angle
/// zeta, parallel velocity, gyroradius (from the magnetic moment) and charge.
/// SoA layout is what makes the particle loops vectorizable at all.
struct ParticleSet {
  std::vector<double> x, y, zeta, vpar, rho, q;

  [[nodiscard]] std::size_t size() const { return x.size(); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    zeta.resize(n);
    vpar.resize(n);
    rho.resize(n);
    q.resize(n);
  }

  void clear() { resize(0); }

  void push_back(double xi, double yi, double zi, double vi, double ri, double qi) {
    x.push_back(xi);
    y.push_back(yi);
    zeta.push_back(zi);
    vpar.push_back(vi);
    rho.push_back(ri);
    q.push_back(qi);
  }

  /// Append particle `i` of `other`.
  void append_from(const ParticleSet& other, std::size_t i) {
    push_back(other.x[i], other.y[i], other.zeta[i], other.vpar[i], other.rho[i],
              other.q[i]);
  }

  /// Remove particle `i` by swapping the last one into its slot.
  void swap_remove(std::size_t i) {
    const std::size_t last = size() - 1;
    x[i] = x[last];
    y[i] = y[last];
    zeta[i] = zeta[last];
    vpar[i] = vpar[last];
    rho[i] = rho[last];
    q[i] = q[last];
    resize(last);
  }

  [[nodiscard]] double total_charge() const {
    double s = 0.0;
    for (double v : q) s += v;
    return s;
  }
};

}  // namespace vpar::gtc
