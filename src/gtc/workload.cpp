#include "gtc/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "gtc/poisson.hpp"
#include "gtc/push.hpp"

namespace vpar::gtc {

namespace {

/// 5 n log2 n per transform; the 2D plane solve does rows + columns, twice
/// (forward and inverse).
double plane_fft_flops(double ngx, double ngy) {
  const double rows = 5.0 * ngx * std::log2(ngx) * ngy;
  const double cols = 5.0 * ngy * std::log2(ngy) * ngx;
  return 2.0 * (rows + cols);
}

}  // namespace

double baseline_flops(const Table6Config& c) {
  const double cells = static_cast<double>(c.ngx * c.ngy) *
                       static_cast<double>(c.nplanes);
  const double particles = cells * static_cast<double>(c.particles_per_cell);
  const double per_step =
      particles * (deposition_flops_per_particle() + push_flops_per_particle()) +
      static_cast<double>(c.nplanes) *
          (plane_fft_flops(static_cast<double>(c.ngx), static_cast<double>(c.ngy)) +
           12.0 * static_cast<double>(c.ngx * c.ngy));
  return per_step * static_cast<double>(c.steps);
}

arch::AppProfile make_profile(const Table6Config& c) {
  if (c.procs > c.nplanes && c.openmp_threads == 1) {
    throw std::runtime_error(
        "gtc::make_profile: MPI concurrency capped at the plane count; use "
        "openmp_threads for higher P (the paper's hybrid rows)");
  }
  const int ranks = c.openmp_threads > 1 ? c.nplanes : c.procs;
  if (c.nplanes % ranks != 0) {
    throw std::runtime_error("gtc::make_profile: ranks must divide planes");
  }
  if (c.openmp_threads > 1 && ranks * c.openmp_threads != c.procs) {
    throw std::runtime_error("gtc::make_profile: procs != ranks * threads");
  }

  const double plane_size = static_cast<double>(c.ngx * c.ngy);
  const double planes_local = static_cast<double>(c.nplanes / ranks);
  const double particles_rank = plane_size * planes_local *
                                static_cast<double>(c.particles_per_cell);
  const double steps = static_cast<double>(c.steps);

  arch::AppProfile app;
  app.procs = c.procs;
  app.baseline_flops = baseline_flops(c);
  // Hybrid: the records below describe one rank's full loop-level work; the
  // machine model divides compute by threads * efficiency (the paper's
  // MPI+OpenMP rows; simrt's parallel_for is the executable analogue).
  app.threads_per_rank = c.openmp_threads;
  app.thread_efficiency = c.openmp_efficiency;

  // --- charge deposition -----------------------------------------------------
  {
    perf::LoopRecord rec;
    rec.flops_per_trip = deposition_flops_per_particle();
    rec.bytes_per_trip = 32.0 * 2.0 * sizeof(double) + 6.0 * sizeof(double);
    rec.access = perf::AccessPattern::Gather;
    rec.working_set_bytes = (planes_local + 1.0) * plane_size * sizeof(double);
    if (c.deposit == DepositVariant::Scatter) {
      rec.vectorizable = false;
      rec.instances = steps;
      rec.trips = particles_rank;
    } else {
      rec.vectorizable = true;
      rec.instances = steps * std::ceil(particles_rank / static_cast<double>(c.vlen));
      rec.trips = static_cast<double>(c.vlen);
    }
    app.kernels.record("charge_deposition", rec);
    if (c.deposit == DepositVariant::WorkVector) {
      perf::LoopRecord red;  // lane reduction
      red.vectorizable = true;
      red.instances = steps * static_cast<double>(c.vlen);
      red.trips = (planes_local + 1.0) * plane_size;
      red.flops_per_trip = 1.0;
      red.bytes_per_trip = 2.0 * sizeof(double);
      red.access = perf::AccessPattern::Stream;
      app.kernels.record("charge_deposition", red);
    }
  }

  // --- gather-push ------------------------------------------------------------
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = steps;
    rec.trips = particles_rank;
    rec.flops_per_trip = push_flops_per_particle();
    rec.bytes_per_trip = 32.0 * 2.0 * sizeof(double) + 12.0 * sizeof(double);
    rec.access = perf::AccessPattern::Gather;
    rec.working_set_bytes = 2.0 * (planes_local + 1.0) * plane_size * sizeof(double);
    app.kernels.record("gather_push", rec);
  }

  // --- field solve -------------------------------------------------------------
  {
    perf::LoopRecord rec;  // batched FFT butterflies across the plane rows
    rec.vectorizable = true;
    const double ffts = plane_fft_flops(static_cast<double>(c.ngx),
                                        static_cast<double>(c.ngy)) /
                        10.0;  // butterflies at 10 flops each
    rec.instances = steps * planes_local * ffts / static_cast<double>(c.ngy);
    rec.trips = static_cast<double>(c.ngy);
    rec.flops_per_trip = 10.0;
    rec.bytes_per_trip = 64.0;
    rec.access = perf::AccessPattern::Strided;
    rec.working_set_bytes = plane_size * 16.0;
    app.kernels.record("poisson", rec);
  }
  {
    perf::LoopRecord rec;  // spectral scaling + E field sweeps
    rec.vectorizable = true;
    rec.instances = steps * planes_local * 2.0 * static_cast<double>(c.ngy);
    rec.trips = static_cast<double>(c.ngx);
    rec.flops_per_trip = 6.0;
    rec.bytes_per_trip = 4.0 * sizeof(double);
    rec.access = perf::AccessPattern::Stream;
    app.kernels.record("poisson", rec);
  }

  // --- shift --------------------------------------------------------------------
  {
    perf::LoopRecord rec;
    rec.flops_per_trip = c.shift_variant == ShiftVariant::NestedIf ? 8.0 : 4.0;
    rec.bytes_per_trip = sizeof(double);
    rec.access = perf::AccessPattern::Stream;
    if (c.shift_variant == ShiftVariant::NestedIf) {
      rec.vectorizable = false;
      rec.instances = steps;
      rec.trips = particles_rank;
    } else {
      rec.vectorizable = true;
      rec.instances = 2.0 * steps;
      rec.trips = particles_rank;
    }
    app.kernels.record("shift", rec);
  }

  // --- communication ---------------------------------------------------------
  const double plane_bytes = plane_size * sizeof(double);
  // Ghost charge flush + two E-field ghost planes per step (serialized: the
  // field solve consumes each plane as soon as it arrives).
  app.comm.record(perf::CommKind::PointToPoint, 3.0 * steps, 3.0 * plane_bytes * steps);
  // Migrating markers: 6 doubles each, shift_fraction of the population.
  // shift() posts the count/payload receives before packing, so marker
  // migration overlaps the pack/compact loops — one window per step.
  app.comm.record_overlapped(
      perf::CommKind::PointToPoint, 4.0 * steps,
      c.shift_fraction * particles_rank * 6.0 * sizeof(double) * steps);
  app.comm.record_overlap_window(steps);
  app.comm.record(perf::CommKind::Reduction, 2.0 * steps, 16.0 * steps);

  return app;
}

}  // namespace vpar::gtc
