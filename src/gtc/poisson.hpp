#pragma once

#include "gtc/torus_grid.hpp"

namespace vpar::gtc {

/// Solve the perpendicular Poisson equation  -Lap_perp phi = rho  on every
/// locally owned toroidal plane with a 2D FFT spectral solve (periodic
/// cross-section, zero-mean gauge: the k=0 mode is set to zero). Reads
/// grid.charge (owned planes only) and writes grid.phi.
void solve_poisson(TorusGrid& grid);

/// Compute E = -grad phi on every owned plane with periodic central
/// differences, writing grid.ex/ey.
void compute_efield(TorusGrid& grid);

}  // namespace vpar::gtc
