#pragma once

#include "gtc/particles.hpp"
#include "gtc/torus_grid.hpp"

namespace vpar::gtc {

/// Gather-push step: gather the gyro-averaged electric field at each
/// marker's 4-point ring (same 32-point stencil as deposition, Figure 8b),
/// then advance guiding centres by the ExB drift (B = b0 along the torus
/// axis) and zeta by the parallel velocity:
///   dx/dt =  Ey / b0,  dy/dt = -Ex / b0,  dzeta/dt = vpar.
/// Cross-section coordinates wrap periodically; zeta wraps globally to
/// [0, 2pi) and may leave this rank's domain (the shift step migrates those
/// markers). `ex_ghost`/`ey_ghost` are the right neighbour's first-plane
/// fields, needed by markers between the last owned plane and the boundary.
void gather_push(ParticleSet& particles, const TorusGrid& grid,
                 const std::vector<double>& ex_ghost,
                 const std::vector<double>& ey_ghost, double dt, double b0);

[[nodiscard]] double push_flops_per_particle();

}  // namespace vpar::gtc
