#include "gtc/deposition.hpp"

#include <algorithm>
#include <thread>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "gtc/gtc_simd.hpp"
#include "perf/recorder.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"

namespace vpar::gtc {

void compute_stencil(const TorusGrid& grid, double x, double y, double zeta,
                     double rho, DepositStencil& out) {
  const double zrel = (zeta - grid.zeta_min()) / grid.dzeta();
  int pl = static_cast<int>(std::floor(zrel));
  pl = std::clamp(pl, 0, grid.planes_local() - 1);  // guards FP edge cases
  const double wz = zrel - static_cast<double>(pl);
  out.plane[0] = pl;
  out.plane[1] = pl + 1;  // may be the ghost plane
  out.wplane[0] = 1.0 - wz;
  out.wplane[1] = wz;

  const std::size_t ngx = grid.ngx();
  const std::size_t ngy = grid.ngy();
  const double nx = static_cast<double>(ngx);
  const double ny = static_cast<double>(ngy);
  // Four points on the charged ring (paper Figure 8b).
  const double ox[4] = {rho, 0.0, -rho, 0.0};
  const double oy[4] = {0.0, rho, 0.0, -rho};

  for (int r = 0; r < 4; ++r) {
    const double px = wrap_periodic(x + ox[r], nx);
    const double py = wrap_periodic(y + oy[r], ny);
    const auto ix = static_cast<std::size_t>(px);
    const auto iy = static_cast<std::size_t>(py);
    const double fx = px - static_cast<double>(ix);
    const double fy = py - static_cast<double>(iy);
    const std::size_t ix1 = ix + 1 == ngx ? 0 : ix + 1;
    const std::size_t iy1 = iy + 1 == ngy ? 0 : iy + 1;

    const int base = 4 * r;
    out.cell[base + 0] = iy * ngx + ix;
    out.cell[base + 1] = iy * ngx + ix1;
    out.cell[base + 2] = iy1 * ngx + ix;
    out.cell[base + 3] = iy1 * ngx + ix1;
    out.wcell[base + 0] = 0.25 * (1.0 - fx) * (1.0 - fy);
    out.wcell[base + 1] = 0.25 * fx * (1.0 - fy);
    out.wcell[base + 2] = 0.25 * (1.0 - fx) * fy;
    out.wcell[base + 3] = 0.25 * fx * fy;
  }
}

double deposition_flops_per_particle() {
  // zeta weights (~6) + 4 ring points x (wrap ~6, bilinear weights ~10)
  // + 32 weighted accumulations x 3 flops.
  return 6.0 + 4.0 * 16.0 + 32.0 * 3.0;
}

namespace {

void deposit_one(const ParticleSet& p, std::size_t i, const TorusGrid& grid,
                 double* charge_base, std::size_t plane_stride) {
  DepositStencil st;
  compute_stencil(grid, p.x[i], p.y[i], p.zeta[i], p.rho[i], st);
  const double qi = p.q[i];
  for (int b = 0; b < 2; ++b) {
    double* plane = charge_base +
                    static_cast<std::size_t>(st.plane[b]) * plane_stride;
    const double w = qi * st.wplane[b];
    for (int c = 0; c < 16; ++c) {
      plane[st.cell[c]] += w * st.wcell[c];
    }
  }
}

void record_deposit(const TorusGrid& grid, std::size_t n, bool vectorizable,
                    std::size_t trips) {
  perf::LoopRecord rec;
  rec.vectorizable = vectorizable;
  rec.instances = trips > 0 ? static_cast<double>((n + trips - 1) / trips) : 0.0;
  rec.trips = static_cast<double>(std::min(n, trips));
  rec.flops_per_trip = deposition_flops_per_particle();
  // Randomly localized particles: each of the 32 updates touches a fresh
  // cache line; charge reads+writes dominate.
  rec.bytes_per_trip = 32.0 * 2.0 * sizeof(double) + 6.0 * sizeof(double);
  rec.access = perf::AccessPattern::Gather;
  rec.working_set_bytes =
      static_cast<double>(grid.planes_local() + 1) *
      static_cast<double>(grid.plane_size()) * sizeof(double);
  perf::record_loop("charge_deposition", rec);
}

}  // namespace

void deposit(const ParticleSet& particles, TorusGrid& grid, DepositVariant variant,
             std::size_t vlen) {
  const std::size_t n = particles.size();
  const std::size_t plane_stride = grid.plane_size();

  switch (variant) {
    case DepositVariant::Scatter: {
      for (std::size_t i = 0; i < n; ++i) {
        deposit_one(particles, i, grid, grid.charge().data(), plane_stride);
      }
      // Potential store conflicts between particles: unvectorizable.
      record_deposit(grid, n, /*vectorizable=*/false, n);
      return;
    }

    case DepositVariant::WorkVector: {
      if (vlen == 0) throw std::runtime_error("deposit: vlen must be positive");
      const std::size_t copy = static_cast<std::size_t>(grid.planes_local() + 1) *
                               plane_stride;
      // The work-vector array: one private grid copy per vector lane. This
      // is the 2-8x memory blow-up the paper discusses. Reused across calls
      // on this thread so the per-step path never touches the allocator;
      // the reduction sweep below re-zeroes it on its way out, so a
      // same-size call starts clean without a separate memset pass.
      static thread_local std::vector<double> work;
      if (work.size() != vlen * copy) {
        work.assign(vlen * copy, 0.0);
      }
      static thread_local std::vector<DepositStencil> stencils;
      stencils.resize(vlen);
      // Process particles one vlen-group at a time: group member j owns lane
      // j (identical to the reference lane = i % vlen assignment, so the
      // in-lane accumulation order — and hence the result — is unchanged).
      // Splitting stencil computation from the scatter turns the gather-free
      // arithmetic half into a flat independent loop and keeps the group's
      // 32-entry stencils hot for the scatter half.
      for (std::size_t b = 0; b < n; b += vlen) {
        const std::size_t group = std::min(vlen, n - b);
        for (std::size_t j = 0; j < group; ++j) {
          const std::size_t i = b + j;
          compute_stencil(grid, particles.x[i], particles.y[i],
                          particles.zeta[i], particles.rho[i], stencils[j]);
        }
        for (std::size_t j = 0; j < group; ++j) {
          const DepositStencil& st = stencils[j];
          const double qi = particles.q[b + j];
          double* lane_base = work.data() + j * copy;
          for (int p = 0; p < 2; ++p) {
            double* __restrict plane =
                lane_base + static_cast<std::size_t>(st.plane[p]) * plane_stride;
            const double w = qi * st.wplane[p];
            for (int c = 0; c < 16; ++c) {
              plane[st.cell[c]] += w * st.wcell[c];
            }
          }
        }
      }
      // Gather the lane copies into the real grid, clearing each element
      // behind the read (the lanes are cache-hot here; a separate zeroing
      // pass on entry would stream the whole array a second time).
      double* __restrict charge = grid.charge().data();
      const bool fold_simd = simd::use_simd();
      for (std::size_t lane = 0; lane < vlen; ++lane) {
        double* __restrict w = work.data() + lane * copy;
        if (fold_simd) {
          // Element-wise fold: the SIMD sweep is bitwise identical.
          detail::deposit_fold_simd(charge, w, copy);
          continue;
        }
        for (std::size_t k = 0; k < copy; ++k) {
          charge[k] += w[k];
          w[k] = 0.0;
        }
      }
      record_deposit(grid, n, /*vectorizable=*/true, vlen);
      {
        perf::LoopRecord rec;  // the reduction sweep (reads, adds, re-zeroes)
        rec.vectorizable = true;
        rec.instances = static_cast<double>(vlen);
        rec.trips = static_cast<double>(copy);
        rec.flops_per_trip = 1.0;
        rec.bytes_per_trip = 3.0 * sizeof(double);
        rec.access = perf::AccessPattern::Stream;
        perf::record_loop("charge_deposition", rec);
      }
      return;
    }

    case DepositVariant::Hybrid: {
      // Fixed partition: chunk c covers [c*grain, (c+1)*grain) regardless of
      // pool size or helper participation, and the fold below runs in
      // ascending chunk order — so hybrid and serial execution accumulate
      // every grid point in exactly the same sequence (bitwise identical).
      const std::size_t copy =
          static_cast<std::size_t>(grid.planes_local() + 1) * plane_stride;
      const std::size_t grain =
          std::max<std::size_t>(1, (n + kHybridDepositChunks - 1) /
                                       kHybridDepositChunks);
      static thread_local std::vector<double> partial;
      if (partial.size() != kHybridDepositChunks * copy) {
        partial.assign(kHybridDepositChunks * copy, 0.0);
      }
      double* const partial_base = partial.data();
      simrt::parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
        double* mine = partial_base + (lo / grain) * copy;
        for (std::size_t i = lo; i < hi; ++i) {
          deposit_one(particles, i, grid, mine, plane_stride);
        }
      });
      // Deterministic reduction, re-zeroing behind the read like WorkVector.
      double* __restrict charge = grid.charge().data();
      const bool fold_simd = simd::use_simd();
      for (std::size_t c = 0; c < kHybridDepositChunks; ++c) {
        double* __restrict w = partial_base + c * copy;
        if (fold_simd) {
          // Element-wise fold in the same ascending chunk order: bitwise
          // identical to the scalar sweep.
          detail::deposit_fold_simd(charge, w, copy);
          continue;
        }
        for (std::size_t k = 0; k < copy; ++k) {
          charge[k] += w[k];
          w[k] = 0.0;
        }
      }
      record_deposit(grid, n, /*vectorizable=*/false, grain);
      {
        perf::LoopRecord rec;  // the chunk-copy reduction sweep
        rec.vectorizable = true;
        rec.instances = static_cast<double>(kHybridDepositChunks);
        rec.trips = static_cast<double>(copy);
        rec.flops_per_trip = 1.0;
        rec.bytes_per_trip = 3.0 * sizeof(double);
        rec.access = perf::AccessPattern::Stream;
        perf::record_loop("charge_deposition", rec);
      }
      return;
    }

    case DepositVariant::Sorted: {
      // Counting sort by (plane, leading cell) so same-cell particles are
      // adjacent; groups touching distinct cells are conflict-free.
      const std::size_t buckets =
          static_cast<std::size_t>(grid.planes_local()) * plane_stride;
      std::vector<std::size_t> count(buckets + 1, 0);
      std::vector<std::size_t> key(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double zrel = (particles.zeta[i] - grid.zeta_min()) / grid.dzeta();
        const int pl = std::clamp(static_cast<int>(std::floor(zrel)), 0,
                                  grid.planes_local() - 1);
        const auto ix = static_cast<std::size_t>(
            wrap_periodic(particles.x[i], static_cast<double>(grid.ngx())));
        const auto iy = static_cast<std::size_t>(
            wrap_periodic(particles.y[i], static_cast<double>(grid.ngy())));
        key[i] = static_cast<std::size_t>(pl) * plane_stride + iy * grid.ngx() + ix;
        ++count[key[i] + 1];
      }
      for (std::size_t b = 1; b <= buckets; ++b) count[b] += count[b - 1];
      std::vector<std::size_t> order(n);
      for (std::size_t i = 0; i < n; ++i) order[count[key[i]]++] = i;
      for (std::size_t s = 0; s < n; ++s) {
        deposit_one(particles, order[s], grid, grid.charge().data(), plane_stride);
      }
      record_deposit(grid, n, /*vectorizable=*/true, vlen);
      {
        perf::LoopRecord rec;  // the sorting passes (integer + data movement)
        rec.vectorizable = true;
        rec.instances = 3.0;
        rec.trips = static_cast<double>(n);
        rec.flops_per_trip = 2.0;
        rec.bytes_per_trip = 3.0 * sizeof(double);
        rec.access = perf::AccessPattern::Gather;
        perf::record_loop("charge_deposition", rec);
      }
      return;
    }
  }
}

void deposit_threaded(const ParticleSet& particles, TorusGrid& grid, int threads) {
  if (threads <= 1) {
    deposit(particles, grid, DepositVariant::Scatter);
    return;
  }
  const std::size_t n = particles.size();
  const std::size_t plane_stride = grid.plane_size();
  const std::size_t copy =
      static_cast<std::size_t>(grid.planes_local() + 1) * plane_stride;
  std::vector<double> partial(static_cast<std::size_t>(threads) * copy, 0.0);

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::size_t lo = n * static_cast<std::size_t>(t) /
                             static_cast<std::size_t>(threads);
      const std::size_t hi = n * static_cast<std::size_t>(t + 1) /
                             static_cast<std::size_t>(threads);
      double* mine = partial.data() + static_cast<std::size_t>(t) * copy;
      for (std::size_t i = lo; i < hi; ++i) {
        deposit_one(particles, i, grid, mine, plane_stride);
      }
    });
  }
  for (auto& th : pool) th.join();

  double* charge = grid.charge().data();
  for (int t = 0; t < threads; ++t) {
    const double* mine = partial.data() + static_cast<std::size_t>(t) * copy;
    for (std::size_t k = 0; k < copy; ++k) charge[k] += mine[k];
  }
  record_deposit(grid, n, /*vectorizable=*/false, n);
}

}  // namespace vpar::gtc
