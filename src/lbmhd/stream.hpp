#pragma once

#include "lbmhd/field_set.hpp"

namespace vpar::lbmhd {

/// Streaming step (pull form): next(x) = current(x - e_i dt) for every
/// population. Axis directions are integer shifts (dense copies); the four
/// diagonal directions of the octagonal lattice land between grid points and
/// are evaluated by separable third-degree (cubic Lagrange) interpolation —
/// the interpolation step between the spatial and stream lattices that the
/// paper describes (Figure 2b). `current` must have its ghost zones filled
/// to depth 2 before the call. The rest population is copied unchanged.
void stream(const FieldSet& current, FieldSet& next);

/// Flops per grid point of one streaming step (cubic interpolation only;
/// axis shifts are pure copies).
[[nodiscard]] double stream_flops_per_point();

}  // namespace vpar::lbmhd
