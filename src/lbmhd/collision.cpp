#include "lbmhd/collision.hpp"

#include <array>

#include "perf/recorder.hpp"

namespace vpar::lbmhd {

namespace {

/// Point kernel shared by both loop structures. Computes the macroscopic
/// moments, the MHD equilibria and relaxes all 27 populations at flat
/// offset `o` of the planes in `pf`, `pgx`, `pgy`.
inline void collide_point(const std::array<double*, Lattice::kDirs>& pf,
                          const std::array<double*, Lattice::kDirs>& pgx,
                          const std::array<double*, Lattice::kDirs>& pgy,
                          std::size_t o, double omega_f, double omega_g) {
  constexpr double s = Lattice::kS;

  const double f0 = pf[0][o], f1 = pf[1][o], f2 = pf[2][o], f3 = pf[3][o],
               f4 = pf[4][o], f5 = pf[5][o], f6 = pf[6][o], f7 = pf[7][o],
               f8 = pf[8][o];

  // Moments of f: density and momentum.
  const double rho = f0 + f1 + f2 + f3 + f4 + f5 + f6 + f7 + f8;
  const double diag_x = f2 - f4 - f6 + f8;
  const double diag_y = f2 + f4 - f6 - f8;
  const double mx = f1 - f5 + s * diag_x;
  const double my = f3 - f7 + s * diag_y;

  // Magnetic field: zeroth moment of the vector populations.
  double bx = 0.0, by = 0.0;
  for (int i = 0; i < Lattice::kDirs; ++i) {
    bx += pgx[static_cast<std::size_t>(i)][o];
    by += pgy[static_cast<std::size_t>(i)][o];
  }

  const double inv_rho = 1.0 / rho;
  const double ux = mx * inv_rho;
  const double uy = my * inv_rho;

  // Total stress T = rho u u + (B^2/2) I - B B and induction flux lam.
  const double b2h = 0.5 * (bx * bx + by * by);
  const double txx = mx * ux + b2h - bx * bx;
  const double tyy = my * uy + b2h - by * by;
  const double txy = mx * uy - bx * by;
  const double tr = txx + tyy;
  const double lam = ux * by - bx * uy;

  for (int i = 0; i < Lattice::kDirs; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const double ex = Lattice::cx[iu];
    const double ey = Lattice::cy[iu];
    const double wi = Lattice::w[iu];

    const double em = ex * mx + ey * my;
    const double ete = txx * ex * ex + 2.0 * txy * ex * ey + tyy * ey * ey;
    const double feq = wi * (rho + 4.0 * em + 8.0 * ete - 2.0 * tr);
    pf[iu][o] += omega_f * (feq - pf[iu][o]);

    const double gxeq = wi * (bx - 4.0 * ey * lam);
    const double gyeq = wi * (by + 4.0 * ex * lam);
    pgx[iu][o] += omega_g * (gxeq - pgx[iu][o]);
    pgy[iu][o] += omega_g * (gyeq - pgy[iu][o]);
  }
}

struct PlanePointers {
  std::array<double*, Lattice::kDirs> f, gx, gy;
};

PlanePointers plane_pointers(FieldSet& fields) {
  PlanePointers p{};
  for (int i = 0; i < Lattice::kDirs; ++i) {
    p.f[static_cast<std::size_t>(i)] = fields.f(i);
    p.gx[static_cast<std::size_t>(i)] = fields.gx(i);
    p.gy[static_cast<std::size_t>(i)] = fields.gy(i);
  }
  return p;
}

}  // namespace

double collision_flops_per_point() {
  // Counted from collide_point: moments 8+8+16(B)+3, derived stresses 15,
  // plus 9 directions x (em 3, ete 10, feq 7, relax 3, geq 8, relax 6) = 333.
  return 383.0;
}

double collision_bytes_per_point() {
  return 2.0 * 27.0 * sizeof(double);  // 27 populations read and written
}

void collide_flat(FieldSet& fields, const CollisionParams& params) {
  auto p = plane_pointers(fields);
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  for (std::size_t j = 0; j < nyl; ++j) {
    const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
    for (std::size_t i = 0; i < nxl; ++i) {
      collide_point(p.f, p.gx, p.gy, row + i, params.omega_f, params.omega_g);
    }
  }
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(nyl);
  rec.trips = static_cast<double>(nxl);
  rec.flops_per_trip = collision_flops_per_point();
  rec.bytes_per_trip = collision_bytes_per_point();
  rec.access = perf::AccessPattern::Stream;
  perf::record_loop("collision", rec);
}

void collide_blocked(FieldSet& fields, const CollisionParams& params,
                     std::size_t block) {
  auto p = plane_pointers(fields);
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  if (block == 0) block = nxl;
  for (std::size_t i0 = 0; i0 < nxl; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, nxl);
    for (std::size_t j = 0; j < nyl; ++j) {
      const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
      for (std::size_t i = i0; i < i1; ++i) {
        collide_point(p.f, p.gx, p.gy, row + i, params.omega_f, params.omega_g);
      }
    }
  }
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(nyl) *
                  static_cast<double>((nxl + block - 1) / block);
  rec.trips = static_cast<double>(std::min(block, nxl));
  rec.flops_per_trip = collision_flops_per_point();
  rec.bytes_per_trip = collision_bytes_per_point();
  rec.access = perf::AccessPattern::Stream;
  // A column block of 27 planes stays resident across the j sweep.
  rec.working_set_bytes =
      27.0 * static_cast<double>(std::min(block, nxl)) * sizeof(double) * 8.0;
  perf::record_loop("collision", rec);
}

}  // namespace vpar::lbmhd
