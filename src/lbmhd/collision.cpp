#include "lbmhd/collision.hpp"

#include <array>

#include "lbmhd/collision_simd.hpp"
#include "perf/recorder.hpp"
#include "simd/dispatch.hpp"
#include "simrt/parallel.hpp"

namespace vpar::lbmhd {

namespace {

/// Row kernel shared by both loop structures: computes the macroscopic
/// moments, the MHD equilibria and relaxes all 27 populations for `n`
/// consecutive points.
///
/// The 27 population planes are distinct allocations; saying so with
/// __restrict lets the compiler keep the moments in registers and vectorize
/// the row loop instead of reloading through the pointer table on every
/// access. The direction loop is fully unrolled with the lattice constants
/// folded in — the axis directions lose their zero terms, the diagonals
/// share the s-scaled moment products — while keeping the reference
/// kernel's operation order, so the arithmetic is unchanged.
void collide_row(double* __restrict f0, double* __restrict f1,
                 double* __restrict f2, double* __restrict f3,
                 double* __restrict f4, double* __restrict f5,
                 double* __restrict f6, double* __restrict f7,
                 double* __restrict f8, double* __restrict gx0,
                 double* __restrict gx1, double* __restrict gx2,
                 double* __restrict gx3, double* __restrict gx4,
                 double* __restrict gx5, double* __restrict gx6,
                 double* __restrict gx7, double* __restrict gx8,
                 double* __restrict gy0, double* __restrict gy1,
                 double* __restrict gy2, double* __restrict gy3,
                 double* __restrict gy4, double* __restrict gy5,
                 double* __restrict gy6, double* __restrict gy7,
                 double* __restrict gy8, std::size_t n, double omega_f,
                 double omega_g) {
  constexpr double s = Lattice::kS;
  constexpr double w0 = Lattice::kW0;
  constexpr double w = Lattice::kW;

  for (std::size_t i = 0; i < n; ++i) {
    const double F0 = f0[i], F1 = f1[i], F2 = f2[i], F3 = f3[i], F4 = f4[i],
                 F5 = f5[i], F6 = f6[i], F7 = f7[i], F8 = f8[i];

    // Moments of f: density and momentum.
    const double rho = F0 + F1 + F2 + F3 + F4 + F5 + F6 + F7 + F8;
    const double diag_x = F2 - F4 - F6 + F8;
    const double diag_y = F2 + F4 - F6 - F8;
    const double mx = F1 - F5 + s * diag_x;
    const double my = F3 - F7 + s * diag_y;

    // Magnetic field: zeroth moment of the vector populations, accumulated
    // in direction order like the reference loop.
    const double GX0 = gx0[i], GX1 = gx1[i], GX2 = gx2[i], GX3 = gx3[i],
                 GX4 = gx4[i], GX5 = gx5[i], GX6 = gx6[i], GX7 = gx7[i],
                 GX8 = gx8[i];
    const double GY0 = gy0[i], GY1 = gy1[i], GY2 = gy2[i], GY3 = gy3[i],
                 GY4 = gy4[i], GY5 = gy5[i], GY6 = gy6[i], GY7 = gy7[i],
                 GY8 = gy8[i];
    const double bx = GX0 + GX1 + GX2 + GX3 + GX4 + GX5 + GX6 + GX7 + GX8;
    const double by = GY0 + GY1 + GY2 + GY3 + GY4 + GY5 + GY6 + GY7 + GY8;

    const double inv_rho = 1.0 / rho;
    const double ux = mx * inv_rho;
    const double uy = my * inv_rho;

    // Total stress T = rho u u + (B^2/2) I - B B and induction flux lam.
    const double b2h = 0.5 * (bx * bx + by * by);
    const double txx = mx * ux + b2h - bx * bx;
    const double tyy = my * uy + b2h - by * by;
    const double txy = mx * uy - bx * by;
    const double tr = txx + tyy;
    const double lam = ux * by - bx * uy;

    // Shared diagonal-direction products (e = (+-s, +-s)): the four
    // diagonals differ only in signs.
    const double sx = s * mx;
    const double sy = s * my;
    const double txxss = txx * s * s;
    const double txyss2 = 2.0 * txy * s * s;
    const double tyyss = tyy * s * s;
    const double sl4 = (4.0 * s) * lam;

    // Rest vector (e = 0).
    f0[i] = F0 + omega_f * (w0 * (rho - 2.0 * tr) - F0);
    gx0[i] = GX0 + omega_g * (w0 * bx - GX0);
    gy0[i] = GY0 + omega_g * (w0 * by - GY0);

    // Axis directions (e = (+-1, 0), (0, +-1)).
    f1[i] = F1 + omega_f * (w * (rho + 4.0 * mx + 8.0 * txx - 2.0 * tr) - F1);
    gx1[i] = GX1 + omega_g * (w * bx - GX1);
    gy1[i] = GY1 + omega_g * (w * (by + 4.0 * lam) - GY1);

    f3[i] = F3 + omega_f * (w * (rho + 4.0 * my + 8.0 * tyy - 2.0 * tr) - F3);
    gx3[i] = GX3 + omega_g * (w * (bx - 4.0 * lam) - GX3);
    gy3[i] = GY3 + omega_g * (w * by - GY3);

    f5[i] = F5 + omega_f * (w * (rho - 4.0 * mx + 8.0 * txx - 2.0 * tr) - F5);
    gx5[i] = GX5 + omega_g * (w * bx - GX5);
    gy5[i] = GY5 + omega_g * (w * (by - 4.0 * lam) - GY5);

    f7[i] = F7 + omega_f * (w * (rho - 4.0 * my + 8.0 * tyy - 2.0 * tr) - F7);
    gx7[i] = GX7 + omega_g * (w * (bx + 4.0 * lam) - GX7);
    gy7[i] = GY7 + omega_g * (w * by - GY7);

    // Diagonal directions (e = (+-s, +-s)).
    const double ete_pp = txxss + txyss2 + tyyss;  // e_x e_y > 0 (dirs 2, 6)
    const double ete_pm = txxss - txyss2 + tyyss;  // e_x e_y < 0 (dirs 4, 8)

    f2[i] = F2 +
            omega_f * (w * (rho + 4.0 * (sx + sy) + 8.0 * ete_pp - 2.0 * tr) - F2);
    gx2[i] = GX2 + omega_g * (w * (bx - sl4) - GX2);
    gy2[i] = GY2 + omega_g * (w * (by + sl4) - GY2);

    f4[i] = F4 +
            omega_f * (w * (rho + 4.0 * (sy - sx) + 8.0 * ete_pm - 2.0 * tr) - F4);
    gx4[i] = GX4 + omega_g * (w * (bx - sl4) - GX4);
    gy4[i] = GY4 + omega_g * (w * (by - sl4) - GY4);

    f6[i] = F6 +
            omega_f * (w * (rho - 4.0 * (sx + sy) + 8.0 * ete_pp - 2.0 * tr) - F6);
    gx6[i] = GX6 + omega_g * (w * (bx + sl4) - GX6);
    gy6[i] = GY6 + omega_g * (w * (by - sl4) - GY6);

    f8[i] = F8 +
            omega_f * (w * (rho + 4.0 * (sx - sy) + 8.0 * ete_pm - 2.0 * tr) - F8);
    gx8[i] = GX8 + omega_g * (w * (bx + sl4) - GX8);
    gy8[i] = GY8 + omega_g * (w * (by + sl4) - GY8);
  }
}

struct PlanePointers {
  std::array<double*, Lattice::kDirs> f, gx, gy;
};

PlanePointers plane_pointers(FieldSet& fields) {
  PlanePointers p{};
  for (int i = 0; i < Lattice::kDirs; ++i) {
    p.f[static_cast<std::size_t>(i)] = fields.f(i);
    p.gx[static_cast<std::size_t>(i)] = fields.gx(i);
    p.gy[static_cast<std::size_t>(i)] = fields.gy(i);
  }
  return p;
}

inline void collide_span(const PlanePointers& p, std::size_t offset,
                         std::size_t n, double omega_f, double omega_g) {
  // Runtime dispatch: the SIMD row kernel executes the same operation order
  // per lane (bitwise identical); the scalar reference path below stays the
  // default when the build or the dispatch mode says so.
  if (simd::use_simd()) {
    detail::RowPointers rp;
    for (std::size_t d = 0; d < 9; ++d) {
      rp.f[d] = p.f[d] + offset;
      rp.gx[d] = p.gx[d] + offset;
      rp.gy[d] = p.gy[d] + offset;
    }
    detail::collide_row_simd(rp, n, omega_f, omega_g);
    return;
  }
  collide_row(p.f[0] + offset, p.f[1] + offset, p.f[2] + offset,
              p.f[3] + offset, p.f[4] + offset, p.f[5] + offset,
              p.f[6] + offset, p.f[7] + offset, p.f[8] + offset,
              p.gx[0] + offset, p.gx[1] + offset, p.gx[2] + offset,
              p.gx[3] + offset, p.gx[4] + offset, p.gx[5] + offset,
              p.gx[6] + offset, p.gx[7] + offset, p.gx[8] + offset,
              p.gy[0] + offset, p.gy[1] + offset, p.gy[2] + offset,
              p.gy[3] + offset, p.gy[4] + offset, p.gy[5] + offset,
              p.gy[6] + offset, p.gy[7] + offset, p.gy[8] + offset, n, omega_f,
              omega_g);
}

}  // namespace

double collision_flops_per_point() {
  // Counted from the row kernel: moments 8+8+16(B)+3, derived stresses 15,
  // plus 9 directions x (em 3, ete 10, feq 7, relax 3, geq 8, relax 6) = 333.
  return 383.0;
}

double collision_bytes_per_point() {
  return 2.0 * 27.0 * sizeof(double);  // 27 populations read and written
}

void collide_flat(FieldSet& fields, const CollisionParams& params) {
  auto p = plane_pointers(fields);
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  // Rows write disjoint spans of every population plane, so splitting the j
  // sweep across idle pool workers is bitwise-safe (see simrt/parallel.hpp).
  simrt::parallel_for(0, nyl, 0, [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
      const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
      collide_span(p, row, nxl, params.omega_f, params.omega_g);
    }
  });
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(nyl);
  rec.trips = static_cast<double>(nxl);
  rec.flops_per_trip = collision_flops_per_point();
  rec.bytes_per_trip = collision_bytes_per_point();
  rec.access = perf::AccessPattern::Stream;
  perf::record_loop("collision", rec);
}

void collide_blocked(FieldSet& fields, const CollisionParams& params,
                     std::size_t block) {
  auto p = plane_pointers(fields);
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  if (block == 0) block = nxl;
  for (std::size_t i0 = 0; i0 < nxl; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, nxl);
    simrt::parallel_for(0, nyl, 0, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t j = j0; j < j1; ++j) {
        const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
        collide_span(p, row + i0, i1 - i0, params.omega_f, params.omega_g);
      }
    });
  }
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = static_cast<double>(nyl) *
                  static_cast<double>((nxl + block - 1) / block);
  rec.trips = static_cast<double>(std::min(block, nxl));
  rec.flops_per_trip = collision_flops_per_point();
  rec.bytes_per_trip = collision_bytes_per_point();
  rec.access = perf::AccessPattern::Stream;
  // A column block of 27 planes stays resident across the j sweep.
  rec.working_set_bytes =
      27.0 * static_cast<double>(std::min(block, nxl)) * sizeof(double) * 8.0;
  perf::record_loop("collision", rec);
}

}  // namespace vpar::lbmhd
