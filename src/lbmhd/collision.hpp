#pragma once

#include <cstddef>

#include "lbmhd/field_set.hpp"

namespace vpar::lbmhd {

/// BGK relaxation rates (omega = 1/tau) for the scalar and magnetic
/// populations; viscosity = cs^2 (tau_f - 1/2), resistivity = cs^2 (tau_g - 1/2).
struct CollisionParams {
  double omega_f = 1.0;
  double omega_g = 1.0;
};

/// Collision step, long-row variant: the inner loop runs over a full grid
/// row (the vector-friendly form used on the ES and X1, where the compiler
/// strip-mines the inner grid-point loop).
void collide_flat(FieldSet& fields, const CollisionParams& params);

/// Collision step, cache-blocked variant: the inner grid-point loop is
/// blocked so the 27 planes' slices stay cache-resident (the Power3/4 and
/// Altix form). Identical arithmetic, different loop structure.
void collide_blocked(FieldSet& fields, const CollisionParams& params,
                     std::size_t block);

/// Floating-point operations the collision kernel performs per grid point
/// (counted from the kernel's arithmetic; used for baselines and tests).
[[nodiscard]] double collision_flops_per_point();

/// DRAM traffic per grid point (27 planes read + written).
[[nodiscard]] double collision_bytes_per_point();

}  // namespace vpar::lbmhd
