#pragma once

#include <array>
#include <cstddef>

namespace vpar::lbmhd::detail {

/// Per-row population plane pointers, already offset to the row start.
struct RowPointers {
  std::array<double*, 9> f, gx, gy;
};

/// SIMD collision row kernel: same arithmetic and operation order as the
/// scalar collide_row (bitwise identical results), vectorized over the row in
/// strips of the runtime-dispatched width with a scalar tail. Records the
/// span's vector/remainder iteration counts with the simd metrics.
void collide_row_simd(const RowPointers& p, std::size_t n, double omega_f,
                      double omega_g);

}  // namespace vpar::lbmhd::detail
