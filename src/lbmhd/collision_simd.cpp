#include "lbmhd/collision_simd.hpp"

#include "lbmhd/collision.hpp"
#include "simd/dispatch.hpp"
#include "simd/simd.hpp"

namespace vpar::lbmhd::detail {

namespace {

using simd::load;
using simd::splat;
using simd::store;

/// Width-templated collision body. Each lane executes exactly the scalar
/// collide_row operation sequence (same expressions, same association), so
/// results are bitwise identical to the reference for every width — W=1
/// instantiates the scalar tail. Must stay always_inline: the body has to be
/// compiled *inside* the target-attributed clones below, not at baseline ISA.
template <std::size_t W>
VPAR_SIMD_INLINE void collide_w(const RowPointers& p, std::size_t i0,
                                std::size_t i1, double omega_f,
                                double omega_g) {
  using V = simd::vec<W>;
  double* __restrict f0 = p.f[0];
  double* __restrict f1 = p.f[1];
  double* __restrict f2 = p.f[2];
  double* __restrict f3 = p.f[3];
  double* __restrict f4 = p.f[4];
  double* __restrict f5 = p.f[5];
  double* __restrict f6 = p.f[6];
  double* __restrict f7 = p.f[7];
  double* __restrict f8 = p.f[8];
  double* __restrict gx0 = p.gx[0];
  double* __restrict gx1 = p.gx[1];
  double* __restrict gx2 = p.gx[2];
  double* __restrict gx3 = p.gx[3];
  double* __restrict gx4 = p.gx[4];
  double* __restrict gx5 = p.gx[5];
  double* __restrict gx6 = p.gx[6];
  double* __restrict gx7 = p.gx[7];
  double* __restrict gx8 = p.gx[8];
  double* __restrict gy0 = p.gy[0];
  double* __restrict gy1 = p.gy[1];
  double* __restrict gy2 = p.gy[2];
  double* __restrict gy3 = p.gy[3];
  double* __restrict gy4 = p.gy[4];
  double* __restrict gy5 = p.gy[5];
  double* __restrict gy6 = p.gy[6];
  double* __restrict gy7 = p.gy[7];
  double* __restrict gy8 = p.gy[8];

  const V vof = splat<W>(omega_f);
  const V vog = splat<W>(omega_g);
  const V cs = splat<W>(Lattice::kS);
  const V cw0 = splat<W>(Lattice::kW0);
  const V cw = splat<W>(Lattice::kW);
  const V cs4 = splat<W>(4.0 * Lattice::kS);
  const V c1 = splat<W>(1.0);
  const V ch = splat<W>(0.5);
  const V c2 = splat<W>(2.0);
  const V c4 = splat<W>(4.0);
  const V c8 = splat<W>(8.0);

  for (std::size_t i = i0; i < i1; i += W) {
    const V F0 = load<W>(f0 + i), F1 = load<W>(f1 + i), F2 = load<W>(f2 + i),
            F3 = load<W>(f3 + i), F4 = load<W>(f4 + i), F5 = load<W>(f5 + i),
            F6 = load<W>(f6 + i), F7 = load<W>(f7 + i), F8 = load<W>(f8 + i);

    const V rho = F0 + F1 + F2 + F3 + F4 + F5 + F6 + F7 + F8;
    const V diag_x = F2 - F4 - F6 + F8;
    const V diag_y = F2 + F4 - F6 - F8;
    const V mx = F1 - F5 + cs * diag_x;
    const V my = F3 - F7 + cs * diag_y;

    const V GX0 = load<W>(gx0 + i), GX1 = load<W>(gx1 + i),
            GX2 = load<W>(gx2 + i), GX3 = load<W>(gx3 + i),
            GX4 = load<W>(gx4 + i), GX5 = load<W>(gx5 + i),
            GX6 = load<W>(gx6 + i), GX7 = load<W>(gx7 + i),
            GX8 = load<W>(gx8 + i);
    const V GY0 = load<W>(gy0 + i), GY1 = load<W>(gy1 + i),
            GY2 = load<W>(gy2 + i), GY3 = load<W>(gy3 + i),
            GY4 = load<W>(gy4 + i), GY5 = load<W>(gy5 + i),
            GY6 = load<W>(gy6 + i), GY7 = load<W>(gy7 + i),
            GY8 = load<W>(gy8 + i);
    const V bx = GX0 + GX1 + GX2 + GX3 + GX4 + GX5 + GX6 + GX7 + GX8;
    const V by = GY0 + GY1 + GY2 + GY3 + GY4 + GY5 + GY6 + GY7 + GY8;

    const V inv_rho = c1 / rho;
    const V ux = mx * inv_rho;
    const V uy = my * inv_rho;

    const V b2h = ch * (bx * bx + by * by);
    const V txx = mx * ux + b2h - bx * bx;
    const V tyy = my * uy + b2h - by * by;
    const V txy = mx * uy - bx * by;
    const V tr = txx + tyy;
    const V lam = ux * by - bx * uy;

    const V sx = cs * mx;
    const V sy = cs * my;
    const V txxss = txx * cs * cs;
    const V txyss2 = c2 * txy * cs * cs;
    const V tyyss = tyy * cs * cs;
    const V sl4 = cs4 * lam;

    store<W>(f0 + i, F0 + vof * (cw0 * (rho - c2 * tr) - F0));
    store<W>(gx0 + i, GX0 + vog * (cw0 * bx - GX0));
    store<W>(gy0 + i, GY0 + vog * (cw0 * by - GY0));

    store<W>(f1 + i, F1 + vof * (cw * (rho + c4 * mx + c8 * txx - c2 * tr) - F1));
    store<W>(gx1 + i, GX1 + vog * (cw * bx - GX1));
    store<W>(gy1 + i, GY1 + vog * (cw * (by + c4 * lam) - GY1));

    store<W>(f3 + i, F3 + vof * (cw * (rho + c4 * my + c8 * tyy - c2 * tr) - F3));
    store<W>(gx3 + i, GX3 + vog * (cw * (bx - c4 * lam) - GX3));
    store<W>(gy3 + i, GY3 + vog * (cw * by - GY3));

    store<W>(f5 + i, F5 + vof * (cw * (rho - c4 * mx + c8 * txx - c2 * tr) - F5));
    store<W>(gx5 + i, GX5 + vog * (cw * bx - GX5));
    store<W>(gy5 + i, GY5 + vog * (cw * (by - c4 * lam) - GY5));

    store<W>(f7 + i, F7 + vof * (cw * (rho - c4 * my + c8 * tyy - c2 * tr) - F7));
    store<W>(gx7 + i, GX7 + vog * (cw * (bx + c4 * lam) - GX7));
    store<W>(gy7 + i, GY7 + vog * (cw * by - GY7));

    const V ete_pp = txxss + txyss2 + tyyss;
    const V ete_pm = txxss - txyss2 + tyyss;

    store<W>(f2 + i,
             F2 + vof * (cw * (rho + c4 * (sx + sy) + c8 * ete_pp - c2 * tr) - F2));
    store<W>(gx2 + i, GX2 + vog * (cw * (bx - sl4) - GX2));
    store<W>(gy2 + i, GY2 + vog * (cw * (by + sl4) - GY2));

    store<W>(f4 + i,
             F4 + vof * (cw * (rho + c4 * (sy - sx) + c8 * ete_pm - c2 * tr) - F4));
    store<W>(gx4 + i, GX4 + vog * (cw * (bx - sl4) - GX4));
    store<W>(gy4 + i, GY4 + vog * (cw * (by - sl4) - GY4));

    store<W>(f6 + i,
             F6 + vof * (cw * (rho - c4 * (sx + sy) + c8 * ete_pp - c2 * tr) - F6));
    store<W>(gx6 + i, GX6 + vog * (cw * (bx + sl4) - GX6));
    store<W>(gy6 + i, GY6 + vog * (cw * (by - sl4) - GY6));

    store<W>(f8 + i,
             F8 + vof * (cw * (rho + c4 * (sx - sy) + c8 * ete_pm - c2 * tr) - F8));
    store<W>(gx8 + i, GX8 + vog * (cw * (bx + sl4) - GX8));
    store<W>(gy8 + i, GY8 + vog * (cw * (by + sl4) - GY8));
  }
}

/// Full-span clone at one width: vector strip then scalar (W=1) tail, both
/// instantiated from the same template inside this function so the whole
/// kernel compiles at the clone's ISA.
template <std::size_t W>
VPAR_SIMD_INLINE void collide_span_w(const RowPointers& p, std::size_t n,
                                     double omega_f, double omega_g) {
  const std::size_t nv = n / W * W;
  collide_w<W>(p, 0, nv, omega_f, omega_g);
  collide_w<1>(p, nv, n, omega_f, omega_g);
}

#if VPAR_SIMD_CLONE_AVX
__attribute__((noinline, target("avx"))) void collide_v4(const RowPointers& p,
                                                         std::size_t n,
                                                         double omega_f,
                                                         double omega_g) {
  collide_span_w<4>(p, n, omega_f, omega_g);
}
#endif
#if VPAR_SIMD_CLONE_AVX512
__attribute__((noinline, target("avx512f"))) void collide_v8(
    const RowPointers& p, std::size_t n, double omega_f, double omega_g) {
  collide_span_w<8>(p, n, omega_f, omega_g);
}
#endif

}  // namespace

void collide_row_simd(const RowPointers& p, std::size_t n, double omega_f,
                      double omega_g) {
  const std::size_t w = simd::active_width();
  switch (w) {
#if VPAR_SIMD_CLONE_AVX512
    case 8: collide_v8(p, n, omega_f, omega_g); break;
#endif
#if VPAR_SIMD_CLONE_AVX
    case 4: collide_v4(p, n, omega_f, omega_g); break;
#endif
#if VPAR_SIMD_HAVE_VEC
    case 2: collide_span_w<2>(p, n, omega_f, omega_g); break;
#endif
    default: collide_span_w<1>(p, n, omega_f, omega_g); break;
  }
  simd::record_span(w, n / w, n % w);
}

}  // namespace vpar::lbmhd::detail
