#pragma once

#include <optional>

#include "lbmhd/field_set.hpp"
#include "part/partition.hpp"
#include "simrt/coarray.hpp"
#include "simrt/communicator.hpp"

namespace vpar::lbmhd {

/// Block distribution of the periodic global grid over a 2D processor grid
/// (paper Section 3: "block distributed over a 2D processor grid"). Built on
/// part::BlockPartition<2>, whose axis-0-fastest linearization is exactly the
/// rank = pj*px + pi convention this struct always used; the flat fields stay
/// because the kernels and the CAF port index through them.
struct Decomp2D {
  Decomp2D(std::size_t nx, std::size_t ny, int px, int py, int rank);

  std::size_t nx, ny;    ///< global extents
  int px, py;            ///< processor grid
  int pi, pj;            ///< this rank's coordinates (pi: x, pj: y)
  std::size_t nxl, nyl;  ///< local extents
  part::BlockPartition<2> partition;  ///< the torus behind the fields above

  [[nodiscard]] int rank() const { return partition.rank_of({pi, pj}); }
  [[nodiscard]] int rank_of(int ci, int cj) const {
    const int mi = ((ci % px) + px) % px;
    const int mj = ((cj % py) + py) % py;
    return partition.rank_of({mi, mj});
  }
  [[nodiscard]] int east() const { return partition.neighbor(rank(), 0, +1); }
  [[nodiscard]] int west() const { return partition.neighbor(rank(), 0, -1); }
  [[nodiscard]] int north() const { return partition.neighbor(rank(), 1, +1); }
  [[nodiscard]] int south() const { return partition.neighbor(rank(), 1, -1); }

  /// Global coordinates of this rank's first interior cell.
  [[nodiscard]] std::size_t x0() const {
    return partition.axis_origin(0, pi);
  }
  [[nodiscard]] std::size_t y0() const {
    return partition.axis_origin(1, pj);
  }
};

/// Two-phase MPI ghost exchange, lowered onto part::plan_halo /
/// part::exchange_halo: boundary columns of all planes are packed into one
/// buffer per face (reducing message count, as the paper's MPI port does),
/// exchanged east/west, then full-width rows — carrying the fresh corner
/// data — are exchanged north/south. Ghost contents after the call are
/// bitwise identical to the historical hand-rolled exchange.
void exchange_mpi(simrt::Communicator& comm, const Decomp2D& d, FieldSet& fields);

/// One-sided CAF ghost exchange: each image puts its boundary strips
/// directly into its neighbours' ghost zones via co-array writes, with
/// sync_all separating the epochs. No packing and no intermediate message
/// copies, but many small transfers — the trade-off the paper measures.
/// `block_offset` is the element offset of `fields` inside each image's
/// co-array block (the two time levels alternate halves of the block).
void exchange_caf(simrt::CoArray<double>& fields_coarray, const Decomp2D& d,
                  FieldSet& fields, std::size_t block_offset = 0);

}  // namespace vpar::lbmhd
