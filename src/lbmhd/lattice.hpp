#pragma once

#include <array>
#include <cmath>

namespace vpar::lbmhd {

/// The octagonal streaming lattice of LBMHD (paper Figure 2a): a rest vector
/// plus eight unit vectors at 45-degree increments, coupled to the square
/// spatial grid. Because the diagonal directions have non-integer components
/// (+-sqrt(2)/2), streaming along them lands between grid points and requires
/// the third-degree polynomial interpolation the paper describes.
///
/// Weights are derived from isotropy of the 2nd and 4th velocity moments of
/// this 8-fold-symmetric stencil: w0 = 1/2, wk = 1/16, giving a sound speed
/// cs^2 = 1/4. The equilibria below reproduce resistive MHD a la Dellar
/// (J. Comput. Phys. 2002): scalar populations f_i carry mass and momentum
/// with the full Maxwell stress, vector populations g_i carry the magnetic
/// field with the induction flux u B - B u.
struct Lattice {
  static constexpr int kDirs = 9;
  static constexpr double kS = 0.70710678118654752440;  // sqrt(2)/2
  static constexpr double kW0 = 0.5;
  static constexpr double kW = 1.0 / 16.0;
  static constexpr double kCs2 = 0.25;  // = 4 * kW

  /// Direction unit vectors; index 0 is the rest vector.
  static constexpr std::array<double, kDirs> cx = {0.0, 1.0, kS, 0.0, -kS,
                                                   -1.0, -kS, 0.0, kS};
  static constexpr std::array<double, kDirs> cy = {0.0, 0.0, kS, 1.0, kS,
                                                   0.0, -kS, -1.0, -kS};
  static constexpr std::array<double, kDirs> w = {kW0, kW, kW, kW, kW,
                                                  kW, kW, kW, kW};

  [[nodiscard]] static constexpr bool is_axis(int dir) {
    return dir == 1 || dir == 3 || dir == 5 || dir == 7;
  }
  [[nodiscard]] static constexpr bool is_diagonal(int dir) {
    return dir == 2 || dir == 4 || dir == 6 || dir == 8;
  }

  /// Scalar (hydrodynamic) equilibrium for direction i given density rho,
  /// momentum m = rho*u, and the total stress T = rho u u + (B^2/2) I - B B.
  [[nodiscard]] static double f_eq(int i, double rho, double mx, double my,
                                   double txx, double txy, double tyy) {
    const double ex = cx[static_cast<std::size_t>(i)];
    const double ey = cy[static_cast<std::size_t>(i)];
    const double em = ex * mx + ey * my;
    const double ete = txx * ex * ex + 2.0 * txy * ex * ey + tyy * ey * ey;
    const double tr = txx + tyy;
    return w[static_cast<std::size_t>(i)] * (rho + 4.0 * em + 8.0 * ete - 2.0 * tr);
  }

  /// Magnetic (vector) equilibrium for direction i given field B and the
  /// induction flux off-diagonal lam = ux*By - Bx*uy (Lambda is
  /// antisymmetric in 2D, so one scalar suffices).
  static void g_eq(int i, double bx, double by, double lam, double& gx, double& gy) {
    const double ex = cx[static_cast<std::size_t>(i)];
    const double ey = cy[static_cast<std::size_t>(i)];
    const double wi = w[static_cast<std::size_t>(i)];
    // g_beta = w (B_beta + 4 e_alpha Lambda_{alpha beta});
    // Lambda_xy = lam, Lambda_yx = -lam.
    gx = wi * (bx - 4.0 * ey * lam);
    gy = wi * (by + 4.0 * ex * lam);
  }

  /// Cubic Lagrange coefficients for interpolation at fractional offset t in
  /// [0,1) using stencil nodes {-1, 0, 1, 2} relative to the base point.
  /// The coefficients sum to one, which makes streamed mass (and hence total
  /// momentum and flux) exactly conserved on a periodic domain.
  [[nodiscard]] static std::array<double, 4> cubic_coeffs(double t) {
    return {
        -t * (t - 1.0) * (t - 2.0) / 6.0,
        (t + 1.0) * (t - 1.0) * (t - 2.0) / 2.0,
        -t * (t + 1.0) * (t - 2.0) / 2.0,
        t * (t + 1.0) * (t - 1.0) / 6.0,
    };
  }
};

}  // namespace vpar::lbmhd
