#include "lbmhd/stream.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "perf/recorder.hpp"

namespace vpar::lbmhd {

namespace {

/// Base offset and fractional position for pulling from x + delta where
/// delta = -e_component is +-sqrt(2)/2 for diagonal directions.
struct Frac {
  std::ptrdiff_t base;  // floor(delta): -1 or 0
  double t;             // fractional part in [0,1)
};

Frac frac_of(double delta) {
  const double f = std::floor(delta);
  return {static_cast<std::ptrdiff_t>(f), delta - f};
}

}  // namespace

double stream_flops_per_point() {
  // 4 diagonal directions x 3 scalars (f, gx, gy), separable cubic:
  // 7 flops in the x pass + 7 in the y pass per point.
  return 4.0 * 3.0 * 14.0;
}

void stream(const FieldSet& current, FieldSet& next) {
  const std::size_t nxl = current.nxl(), nyl = current.nyl();
  const std::size_t stride = current.stride();
  constexpr int G = FieldSet::kGhost;

  auto copy_shift = [&](const double* src, double* dst, std::ptrdiff_t di,
                        std::ptrdiff_t dj) {
    for (std::size_t j = 0; j < nyl; ++j) {
      const double* s = src + current.at(static_cast<std::ptrdiff_t>(j) + dj, di);
      double* d = dst + current.at(static_cast<std::ptrdiff_t>(j), 0);
      std::memcpy(d, s, nxl * sizeof(double));
    }
  };

  // Temporary row-extended buffer for the separable interpolation: x-pass
  // results for rows [-G, nyl+G) at interior columns.
  std::vector<double> tmp((nyl + 2 * G) * stride);

  auto interp_shift = [&](const double* src, double* dst, double dx, double dy) {
    const Frac fx = frac_of(dx);
    const Frac fy = frac_of(dy);
    const auto cxc = Lattice::cubic_coeffs(fx.t);
    const auto cyc = Lattice::cubic_coeffs(fy.t);

    // x pass over all rows (ghosts included) so the y pass has its stencil.
    for (std::size_t jj = 0; jj < nyl + 2 * G; ++jj) {
      const double* row = src + jj * stride;
      double* trow = tmp.data() + jj * stride;
      for (std::size_t i = 0; i < nxl; ++i) {
        const std::size_t b =
            static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i + G) + fx.base - 1);
        trow[i + G] = cxc[0] * row[b] + cxc[1] * row[b + 1] + cxc[2] * row[b + 2] +
                      cxc[3] * row[b + 3];
      }
    }
    // y pass into the destination interior.
    for (std::size_t j = 0; j < nyl; ++j) {
      const std::size_t bj =
          static_cast<std::size_t>(static_cast<std::ptrdiff_t>(j + G) + fy.base - 1);
      double* drow = dst + current.at(static_cast<std::ptrdiff_t>(j), 0);
      const double* r0 = tmp.data() + bj * stride;
      const double* r1 = r0 + stride;
      const double* r2 = r1 + stride;
      const double* r3 = r2 + stride;
      for (std::size_t i = 0; i < nxl; ++i) {
        const std::size_t o = i + G;
        drow[i] = cyc[0] * r0[o] + cyc[1] * r1[o] + cyc[2] * r2[o] + cyc[3] * r3[o];
      }
    }
  };

  auto stream_plane = [&](int dir, const double* src, double* dst) {
    const auto du = static_cast<std::size_t>(dir);
    if (dir == 0) {
      copy_shift(src, dst, 0, 0);
      return;
    }
    if (Lattice::is_axis(dir)) {
      copy_shift(src, dst, -static_cast<std::ptrdiff_t>(Lattice::cx[du]),
                 -static_cast<std::ptrdiff_t>(Lattice::cy[du]));
      return;
    }
    interp_shift(src, dst, -Lattice::cx[du], -Lattice::cy[du]);
  };

  for (int dir = 0; dir < Lattice::kDirs; ++dir) {
    stream_plane(dir, current.f(dir), next.f(dir));
    stream_plane(dir, current.gx(dir), next.gx(dir));
    stream_plane(dir, current.gy(dir), next.gy(dir));
  }

  // Instrumentation: dense copies (rest + 4 axis dirs, 3 scalars each) ...
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 15.0 * static_cast<double>(nyl);
    rec.trips = static_cast<double>(nxl);
    rec.flops_per_trip = 0.0;
    rec.bytes_per_trip = 16.0;  // read + write one double
    rec.access = perf::AccessPattern::Stream;
    perf::record_loop("stream", rec);
  }
  // ... x interpolation passes (unit-stride stencil) ...
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 12.0 * static_cast<double>(nyl + 2 * G);
    rec.trips = static_cast<double>(nxl);
    rec.flops_per_trip = 7.0;
    rec.bytes_per_trip = 24.0;  // ~2 new reads + 1 write per point
    rec.access = perf::AccessPattern::Stream;
    perf::record_loop("stream", rec);
  }
  // ... and y interpolation passes (reads stride apart).
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 12.0 * static_cast<double>(nyl);
    rec.trips = static_cast<double>(nxl);
    rec.flops_per_trip = 7.0;
    rec.bytes_per_trip = 40.0;  // 4 strided reads + 1 write
    rec.access = perf::AccessPattern::Strided;
    perf::record_loop("stream", rec);
  }
}

}  // namespace vpar::lbmhd
