#include "lbmhd/exchange.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "perf/recorder.hpp"
#include "simrt/request.hpp"

namespace vpar::lbmhd {

namespace {
constexpr int G = FieldSet::kGhost;
constexpr int kTagX = 101;
constexpr int kTagX2 = 102;
constexpr int kTagY = 103;
constexpr int kTagY2 = 104;
}  // namespace

Decomp2D::Decomp2D(std::size_t nx_in, std::size_t ny_in, int px_in, int py_in,
                   int rank)
    : nx(nx_in), ny(ny_in), px(px_in), py(py_in) {
  if (px <= 0 || py <= 0) throw std::runtime_error("Decomp2D: bad processor grid");
  if (nx % static_cast<std::size_t>(px) != 0 ||
      ny % static_cast<std::size_t>(py) != 0) {
    throw std::runtime_error("Decomp2D: grid not divisible by processor grid");
  }
  pi = rank % px;
  pj = rank / px;
  nxl = nx / static_cast<std::size_t>(px);
  nyl = ny / static_cast<std::size_t>(py);
  if (nxl < 2 * G || nyl < 2 * G) {
    throw std::runtime_error("Decomp2D: local block smaller than ghost width");
  }
}

void exchange_mpi(simrt::Communicator& comm, const Decomp2D& d, FieldSet& fields) {
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  const std::size_t stride = fields.stride();

  // --- X phase: pack boundary columns of all planes into one buffer -------
  // Receives are posted before any packing so arriving boundary data lands
  // directly in the ghost buffers while this rank is still packing its own —
  // the overlap window the machine models credit on platforms with
  // asynchronous progress (PlatformSpec::overlap_eff).
  const std::size_t xcount = static_cast<std::size_t>(FieldSet::kPlanes) * nyl * G;
  std::vector<double> send_east(xcount), send_west(xcount);
  std::vector<double> recv_west(xcount), recv_east(xcount);

  {
    perf::OverlapScope window;
    simrt::Request reqs[2] = {comm.irecv<double>(d.west(), recv_west, kTagX),
                              comm.irecv<double>(d.east(), recv_east, kTagX2)};

    std::size_t k = 0;
    for (int p = 0; p < FieldSet::kPlanes; ++p) {
      const double* plane = fields.plane(p);
      for (std::size_t j = 0; j < nyl; ++j) {
        const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
        for (int g = 0; g < G; ++g) {
          send_east[k] = plane[row + nxl - G + static_cast<std::size_t>(g)];
          send_west[k] = plane[row + static_cast<std::size_t>(g)];
          ++k;
        }
      }
    }
    comm.isend<double>(d.east(), std::move(send_east), kTagX).wait();
    comm.isend<double>(d.west(), std::move(send_west), kTagX2).wait();
    simrt::waitall(reqs);
  }

  std::size_t k = 0;
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    double* plane = fields.plane(p);
    for (std::size_t j = 0; j < nyl; ++j) {
      const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), -G);
      for (int g = 0; g < G; ++g) {
        plane[row + static_cast<std::size_t>(g)] = recv_west[k];          // west ghosts
        plane[row + G + nxl + static_cast<std::size_t>(g)] = recv_east[k];  // east ghosts
        ++k;
      }
    }
  }

  // --- Y phase: full-width rows (including x ghosts) carry the corners ----
  const std::size_t ycount = static_cast<std::size_t>(FieldSet::kPlanes) * G * stride;
  std::vector<double> send_north(ycount), send_south(ycount);
  std::vector<double> recv_south(ycount), recv_north(ycount);

  {
    perf::OverlapScope window;
    simrt::Request reqs[2] = {comm.irecv<double>(d.south(), recv_south, kTagY),
                              comm.irecv<double>(d.north(), recv_north, kTagY2)};

    k = 0;
    for (int p = 0; p < FieldSet::kPlanes; ++p) {
      const double* plane = fields.plane(p);
      for (int g = 0; g < G; ++g) {
        const double* top =
            plane + fields.at(static_cast<std::ptrdiff_t>(nyl) - G + g, -G);
        const double* bottom = plane + fields.at(g, -G);
        std::memcpy(&send_north[k], top, stride * sizeof(double));
        std::memcpy(&send_south[k], bottom, stride * sizeof(double));
        k += stride;
      }
    }
    comm.isend<double>(d.north(), std::move(send_north), kTagY).wait();
    comm.isend<double>(d.south(), std::move(send_south), kTagY2).wait();
    simrt::waitall(reqs);
  }

  k = 0;
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    double* plane = fields.plane(p);
    for (int g = 0; g < G; ++g) {
      double* below = plane + fields.at(-G + g, -G);
      double* above = plane + fields.at(static_cast<std::ptrdiff_t>(nyl) + g, -G);
      std::memcpy(below, &recv_south[k], stride * sizeof(double));
      std::memcpy(above, &recv_north[k], stride * sizeof(double));
      k += stride;
    }
  }

  // Buffer packing/unpacking is user-level copy traffic the CAF port avoids
  // (the paper credits CAF with a 3x memory-traffic reduction on the halo
  // path: no user pack + no system-level MPI copy).
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = 4.0;  // pack east/west + unpack west/east ghost strips
  rec.trips = static_cast<double>(xcount + ycount) / 2.0;
  rec.flops_per_trip = 0.0;
  rec.bytes_per_trip = 2.0 * sizeof(double) * 2.0;  // copy in + MPI system copy
  rec.access = perf::AccessPattern::Strided;
  perf::record_loop("comm_pack", rec);
}

void exchange_caf(simrt::CoArray<double>& ca, const Decomp2D& d, FieldSet& fields,
                  std::size_t block_offset) {
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  const std::size_t stride = fields.stride();
  const std::size_t plane_size = fields.plane_size();

  ca.sync_all();  // neighbours finished updating their interiors

  // --- X phase: put my boundary columns into neighbours' ghost columns.
  // CAF subscript notation on a non-contiguous face: one small put per
  // (plane, row) — many short messages, exactly the behaviour the paper
  // attributes to the CAF port. The puts are fire-and-forget stores that
  // retire while the loop keeps streaming: an overlap window until the
  // closing sync_all.
  perf::OverlapScope window;
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    const double* plane = fields.plane(p);
    const std::size_t pbase = block_offset + static_cast<std::size_t>(p) * plane_size;
    for (std::size_t j = 0; j < nyl; ++j) {
      const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
      // East boundary -> east image's west ghosts (columns -G..-1).
      ca.put(d.east(), pbase + fields.at(static_cast<std::ptrdiff_t>(j), -G),
             std::span<const double>(plane + row + nxl - G, G));
      // West boundary -> west image's east ghosts (columns nxl..nxl+G-1).
      ca.put(d.west(),
             pbase + fields.at(static_cast<std::ptrdiff_t>(j),
                               static_cast<std::ptrdiff_t>(nxl)),
             std::span<const double>(plane + row, G));
    }
  }
  ca.sync_all();  // x ghosts visible before rows (with corners) move

  // --- Y phase: full-width contiguous rows, one put per (plane, ghost row).
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    const double* plane = fields.plane(p);
    const std::size_t pbase = block_offset + static_cast<std::size_t>(p) * plane_size;
    for (int g = 0; g < G; ++g) {
      const double* top =
          plane + fields.at(static_cast<std::ptrdiff_t>(nyl) - G + g, -G);
      ca.put(d.north(), pbase + fields.at(-G + g, -G),
             std::span<const double>(top, stride));
      const double* bottom = plane + fields.at(g, -G);
      ca.put(d.south(), pbase + fields.at(static_cast<std::ptrdiff_t>(nyl) + g, -G),
             std::span<const double>(bottom, stride));
    }
  }
  ca.sync_all();
}

}  // namespace vpar::lbmhd
