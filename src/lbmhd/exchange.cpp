#include "lbmhd/exchange.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "part/halo.hpp"
#include "perf/recorder.hpp"

namespace vpar::lbmhd {

namespace {
constexpr int G = FieldSet::kGhost;
constexpr int kHaloTagBase = 101;  ///< the historical kTagX..kTagY2 range

// Validated before the partition member is built, preserving the historical
// contract that any degenerate Decomp2D throws std::runtime_error.
std::array<int, 2> checked_dims(int px, int py) {
  if (px < 1 || py < 1) {
    throw std::runtime_error("Decomp2D: processor grid must be >= 1 per axis");
  }
  return {px, py};
}
}  // namespace

Decomp2D::Decomp2D(std::size_t nx_in, std::size_t ny_in, int px_in, int py_in,
                   int rank)
    : nx(nx_in),
      ny(ny_in),
      px(px_in),
      py(py_in),
      partition(part::Extent<2>{{nx_in, ny_in}}, checked_dims(px_in, py_in),
                {true, true}) {
  if (nx % static_cast<std::size_t>(px) != 0 ||
      ny % static_cast<std::size_t>(py) != 0) {
    throw std::runtime_error("Decomp2D: grid not divisible by processor grid");
  }
  partition.grid().check_rank(rank);
  const auto c = partition.coords_of(rank);
  pi = c[0];
  pj = c[1];
  const part::Extent<2> local = partition.local_extent(rank);
  nxl = local[0];
  nyl = local[1];
  if (nxl < 2 * G || nyl < 2 * G) {
    throw std::runtime_error("Decomp2D: local block smaller than ghost width");
  }
}

void exchange_mpi(simrt::Communicator& comm, const Decomp2D& d, FieldSet& fields) {
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  const std::size_t stride = fields.stride();

  // The x phase exchanges interior-height boundary columns, the y phase
  // full-width rows that carry the fresh corners — exactly the axis-ordered
  // sweep plan_halo produces for a 2D torus. Receives are posted before any
  // packing (exchange_halo's phase structure), so arriving boundary data
  // lands while this rank is still packing its own — the overlap window the
  // machine models credit on platforms with asynchronous progress.
  part::TileLayout<2> layout = part::TileLayout<2>::make(
      {{nxl, nyl}}, {{static_cast<std::size_t>(G), static_cast<std::size_t>(G)}});
  const part::HaloSpec<2> spec{
      {{static_cast<std::size_t>(G), static_cast<std::size_t>(G)}},
      kHaloTagBase};
  const auto schedule = part::plan_halo(d.partition, d.rank(), spec);

  std::array<double*, FieldSet::kPlanes> planes{};
  for (int p = 0; p < FieldSet::kPlanes; ++p) planes[static_cast<std::size_t>(p)] = fields.plane(p);
  part::exchange_halo(comm, schedule, layout,
                      std::span<double* const>(planes.data(), planes.size()));

  // Buffer packing/unpacking is user-level copy traffic the CAF port avoids
  // (the paper credits CAF with a 3x memory-traffic reduction on the halo
  // path: no user pack + no system-level MPI copy).
  const std::size_t xcount =
      static_cast<std::size_t>(FieldSet::kPlanes) * nyl * G;
  const std::size_t ycount =
      static_cast<std::size_t>(FieldSet::kPlanes) * G * stride;
  perf::LoopRecord rec;
  rec.vectorizable = true;
  rec.instances = 4.0;  // pack east/west + unpack west/east ghost strips
  rec.trips = static_cast<double>(xcount + ycount) / 2.0;
  rec.flops_per_trip = 0.0;
  rec.bytes_per_trip = 2.0 * sizeof(double) * 2.0;  // copy in + MPI system copy
  rec.access = perf::AccessPattern::Strided;
  perf::record_loop("comm_pack", rec);
}

void exchange_caf(simrt::CoArray<double>& ca, const Decomp2D& d, FieldSet& fields,
                  std::size_t block_offset) {
  const std::size_t nxl = fields.nxl(), nyl = fields.nyl();
  const std::size_t stride = fields.stride();
  const std::size_t plane_size = fields.plane_size();

  ca.sync_all();  // neighbours finished updating their interiors

  // --- X phase: put my boundary columns into neighbours' ghost columns.
  // CAF subscript notation on a non-contiguous face: one small put per
  // (plane, row) — many short messages, exactly the behaviour the paper
  // attributes to the CAF port. The puts are fire-and-forget stores that
  // retire while the loop keeps streaming: an overlap window until the
  // closing sync_all.
  perf::OverlapScope window;
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    const double* plane = fields.plane(p);
    const std::size_t pbase = block_offset + static_cast<std::size_t>(p) * plane_size;
    for (std::size_t j = 0; j < nyl; ++j) {
      const std::size_t row = fields.at(static_cast<std::ptrdiff_t>(j), 0);
      // East boundary -> east image's west ghosts (columns -G..-1).
      ca.put(d.east(), pbase + fields.at(static_cast<std::ptrdiff_t>(j), -G),
             std::span<const double>(plane + row + nxl - G, G));
      // West boundary -> west image's east ghosts (columns nxl..nxl+G-1).
      ca.put(d.west(),
             pbase + fields.at(static_cast<std::ptrdiff_t>(j),
                               static_cast<std::ptrdiff_t>(nxl)),
             std::span<const double>(plane + row, G));
    }
  }
  ca.sync_all();  // x ghosts visible before rows (with corners) move

  // --- Y phase: full-width contiguous rows, one put per (plane, ghost row).
  for (int p = 0; p < FieldSet::kPlanes; ++p) {
    const double* plane = fields.plane(p);
    const std::size_t pbase = block_offset + static_cast<std::size_t>(p) * plane_size;
    for (int g = 0; g < G; ++g) {
      const double* top =
          plane + fields.at(static_cast<std::ptrdiff_t>(nyl) - G + g, -G);
      ca.put(d.north(), pbase + fields.at(-G + g, -G),
             std::span<const double>(top, stride));
      const double* bottom = plane + fields.at(g, -G);
      ca.put(d.south(), pbase + fields.at(static_cast<std::ptrdiff_t>(nyl) + g, -G),
             std::span<const double>(bottom, stride));
    }
  }
  ca.sync_all();
}

}  // namespace vpar::lbmhd
