#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "lbmhd/lattice.hpp"

namespace vpar::lbmhd {

/// Local block of mesoscopic variables: 27 planes (9 scalar f, 9 vector g as
/// gx/gy pairs), each an (nyl + 2G) x (nxl + 2G) array with ghost width
/// G = 2 — enough for the 4-point interpolation stencil of diagonal
/// streaming. x is contiguous; interior cell (j, i) lives at (j+G, i+G).
///
/// Storage may be external (a CAF co-array block) so that the one-sided
/// exchange variant can write neighbours' ghosts directly, or owned.
class FieldSet {
 public:
  static constexpr int kGhost = 2;
  static constexpr int kPlanes = 3 * Lattice::kDirs;  // f, gx, gy

  FieldSet(std::size_t nxl, std::size_t nyl)
      : nxl_(nxl), nyl_(nyl), owned_(total_size(nxl, nyl), 0.0), data_(owned_) {}

  FieldSet(std::size_t nxl, std::size_t nyl, std::span<double> external)
      : nxl_(nxl), nyl_(nyl), data_(external) {
    if (external.size() < total_size(nxl, nyl)) {
      throw std::runtime_error("FieldSet: external buffer too small");
    }
  }

  // data_ may alias owned_; copying/moving would dangle it.
  FieldSet(const FieldSet&) = delete;
  FieldSet& operator=(const FieldSet&) = delete;

  [[nodiscard]] static std::size_t total_size(std::size_t nxl, std::size_t nyl) {
    return static_cast<std::size_t>(kPlanes) * (nxl + 2 * kGhost) * (nyl + 2 * kGhost);
  }

  [[nodiscard]] std::size_t nxl() const { return nxl_; }
  [[nodiscard]] std::size_t nyl() const { return nyl_; }
  [[nodiscard]] std::size_t stride() const { return nxl_ + 2 * kGhost; }
  [[nodiscard]] std::size_t rows() const { return nyl_ + 2 * kGhost; }
  [[nodiscard]] std::size_t plane_size() const { return stride() * rows(); }

  /// Plane index helpers.
  [[nodiscard]] double* f(int dir) { return plane(dir); }
  [[nodiscard]] double* gx(int dir) { return plane(Lattice::kDirs + dir); }
  [[nodiscard]] double* gy(int dir) { return plane(2 * Lattice::kDirs + dir); }
  [[nodiscard]] const double* f(int dir) const { return plane(dir); }
  [[nodiscard]] const double* gx(int dir) const { return plane(Lattice::kDirs + dir); }
  [[nodiscard]] const double* gy(int dir) const { return plane(2 * Lattice::kDirs + dir); }

  [[nodiscard]] double* plane(int p) {
    return data_.data() + static_cast<std::size_t>(p) * plane_size();
  }
  [[nodiscard]] const double* plane(int p) const {
    return data_.data() + static_cast<std::size_t>(p) * plane_size();
  }

  /// Flat offset of interior cell (j, i); j, i may extend into ghosts with
  /// negative values or values >= interior extent.
  [[nodiscard]] std::size_t at(std::ptrdiff_t j, std::ptrdiff_t i) const {
    return static_cast<std::size_t>(j + kGhost) * stride() +
           static_cast<std::size_t>(i + kGhost);
  }

  /// Offset of the local block inside the containing co-array, in elements
  /// (the whole FieldSet is the block, so plane p cell (j,i) is at
  /// p*plane_size() + at(j,i)).
  [[nodiscard]] std::span<double> raw() { return data_; }
  [[nodiscard]] std::span<const double> raw() const { return data_; }

 private:
  std::size_t nxl_;
  std::size_t nyl_;
  std::vector<double> owned_;
  std::span<double> data_;
};

}  // namespace vpar::lbmhd
