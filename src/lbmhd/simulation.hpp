#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lbmhd/collision.hpp"
#include "lbmhd/exchange.hpp"
#include "lbmhd/field_set.hpp"
#include "lbmhd/stream.hpp"
#include "simrt/coarray.hpp"
#include "simrt/communicator.hpp"

namespace vpar::lbmhd {

/// Configuration of one LBMHD run.
struct Options {
  std::size_t nx = 64, ny = 64;  ///< global grid
  int px = 1, py = 1;            ///< 2D processor grid (px*py == comm.size())
  double tau_f = 1.0;            ///< scalar relaxation time
  double tau_g = 1.0;            ///< magnetic relaxation time
  enum class Exchange { Mpi, Caf } exchange = Exchange::Mpi;
  enum class Collision { Flat, Blocked } collision = Collision::Flat;
  std::size_t block = 64;  ///< x block for the cache-blocked collision
};

/// Macroscopic fields at one point, used for initialization.
struct MacroState {
  double rho = 1.0;
  double ux = 0.0, uy = 0.0;
  double bx = 0.0, by = 0.0;
};

/// Initial condition: global normalized coordinates (x, y) in [0,1) to
/// macroscopic state; populations start at equilibrium.
using InitialCondition = std::function<MacroState(double x, double y)>;

/// Global conserved/diagnostic quantities (allreduced).
struct Diagnostics {
  double mass = 0.0;
  double momentum_x = 0.0, momentum_y = 0.0;
  double bx_total = 0.0, by_total = 0.0;
  double kinetic_energy = 0.0;
  double magnetic_energy = 0.0;
};

/// 2D decaying-MHD lattice-Boltzmann simulation on a periodic domain,
/// block-distributed over a 2D processor grid. One step() = collision,
/// ghost exchange (MPI or CAF), interpolating stream.
class Simulation {
 public:
  Simulation(simrt::Communicator& comm, const Options& options);

  void initialize(const InitialCondition& ic);
  void step();
  void run(int steps);

  [[nodiscard]] Diagnostics diagnostics();

  /// Per-rank checkpoint of the complete evolving state: one snapshot of the
  /// current field populations (ghosts included). Everything else about a
  /// Simulation is configuration, so restoring this into a simulation built
  /// with the same options replays the run bitwise-identically.
  struct Checkpoint {
    std::vector<double> fields;
  };
  [[nodiscard]] Checkpoint save_state() const;
  void restore_state(const Checkpoint& checkpoint);

  /// Assemble a global field on rank 0 (empty on other ranks).
  enum class Field { Density, VelocityX, VelocityY, Bx, By, CurrentZ };
  [[nodiscard]] std::vector<double> gather(Field which);

  [[nodiscard]] const Decomp2D& decomp() const { return decomp_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] FieldSet& fields() { return *current_; }

 private:
  void macro_at(std::size_t j, std::size_t i, MacroState& out) const;
  void exchange();

  simrt::Communicator* comm_;
  Options options_;
  Decomp2D decomp_;
  std::optional<simrt::CoArray<double>> coarray_;
  std::unique_ptr<FieldSet> current_;
  std::unique_ptr<FieldSet> next_;
  int caf_half_current_ = 0;  ///< which co-array half holds `current_`
};

/// Initial condition generating the paper's Figure 1 physics: two
/// cross-shaped current structures that decay into current sheets. The
/// magnetic vector potential is a pair of crossed ridges; B = curl A stays
/// divergence-free by construction.
[[nodiscard]] InitialCondition crossed_structures_ic(double amplitude = 0.1);

/// Orszag-Tang-like smooth vortex, a standard decaying-2D-MHD benchmark.
[[nodiscard]] InitialCondition orszag_tang_ic(double amplitude = 0.05);

}  // namespace vpar::lbmhd
