#pragma once

#include "arch/machine_model.hpp"

namespace vpar::lbmhd {

/// One cell of the paper's Table 3: grid size, concurrency, and port flavour.
struct Table3Config {
  std::size_t nx = 4096, ny = 4096;
  int procs = 16;   ///< restricted to squared integers, as in the paper
  int steps = 100;  ///< timesteps measured
  bool caf = false; ///< X1 CAF port instead of MPI
  bool blocked_collision = false;  ///< cache-blocked superscalar variant
  std::size_t block = 512;
};

/// Synthesize the per-rank AppProfile for a paper-scale LBMHD run. The loop
/// records use the same per-point constants and record shapes as the
/// instrumented kernels (tests assert the synthesized counts match profiles
/// measured from real small-scale runs), with trip counts and communication
/// volumes evaluated at the target scale.
[[nodiscard]] arch::AppProfile make_profile(const Table3Config& config);

/// Baseline algorithmic flops of a run (collision + interpolation), the
/// quantity the paper divides by wall-clock time.
[[nodiscard]] double baseline_flops(std::size_t nx, std::size_t ny, int steps);

}  // namespace vpar::lbmhd
