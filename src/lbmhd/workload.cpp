#include "lbmhd/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "lbmhd/collision.hpp"
#include "lbmhd/field_set.hpp"
#include "lbmhd/stream.hpp"

namespace vpar::lbmhd {

namespace {
constexpr int G = FieldSet::kGhost;
constexpr double kPlanes = FieldSet::kPlanes;
}  // namespace

double baseline_flops(std::size_t nx, std::size_t ny, int steps) {
  const double points = static_cast<double>(nx) * static_cast<double>(ny);
  return points * static_cast<double>(steps) *
         (collision_flops_per_point() + stream_flops_per_point());
}

arch::AppProfile make_profile(const Table3Config& c) {
  const int p_side = static_cast<int>(std::lround(std::sqrt(c.procs)));
  if (p_side * p_side != c.procs) {
    throw std::runtime_error("lbmhd::make_profile: procs must be a square");
  }
  const double nxl = static_cast<double>(c.nx) / p_side;
  const double nyl = static_cast<double>(c.ny) / p_side;
  const double stride = nxl + 2 * G;
  const double steps = c.steps;

  arch::AppProfile app;
  app.procs = c.procs;
  app.baseline_flops = baseline_flops(c.nx, c.ny, c.steps);

  // --- collision (shape mirrors collide_flat / collide_blocked) ------------
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.flops_per_trip = collision_flops_per_point();
    rec.bytes_per_trip = collision_bytes_per_point();
    rec.access = perf::AccessPattern::Stream;
    if (c.blocked_collision) {
      const double blocks = std::ceil(nxl / static_cast<double>(c.block));
      rec.instances = nyl * blocks * steps;
      rec.trips = std::min<double>(static_cast<double>(c.block), nxl);
      rec.working_set_bytes = 27.0 * rec.trips * sizeof(double) * 8.0;
    } else {
      rec.instances = nyl * steps;
      rec.trips = nxl;
    }
    app.kernels.record("collision", rec);
  }

  // --- stream (same three records as stream()) -----------------------------
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 15.0 * nyl * steps;
    rec.trips = nxl;
    rec.flops_per_trip = 0.0;
    rec.bytes_per_trip = 16.0;
    rec.access = perf::AccessPattern::Stream;
    app.kernels.record("stream", rec);
  }
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 12.0 * (nyl + 2 * G) * steps;
    rec.trips = nxl;
    rec.flops_per_trip = 7.0;
    rec.bytes_per_trip = 24.0;
    rec.access = perf::AccessPattern::Stream;
    app.kernels.record("stream", rec);
  }
  {
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 12.0 * nyl * steps;
    rec.trips = nxl;
    rec.flops_per_trip = 7.0;
    rec.bytes_per_trip = 40.0;
    rec.access = perf::AccessPattern::Strided;
    app.kernels.record("stream", rec);
  }

  // --- communication --------------------------------------------------------
  const double xbytes = kPlanes * nyl * G * sizeof(double);   // one x face
  const double ybytes = kPlanes * G * stride * sizeof(double);  // one y face
  if (c.caf) {
    // Many small puts: per (plane, row) on x faces, per (plane, row) on y.
    // Fire-and-forget stores retiring behind the streaming loops: the whole
    // exchange (between sync_alls) is one overlap window per step.
    const double xmsgs = 2.0 * kPlanes * nyl;
    const double ymsgs = 2.0 * kPlanes * G;
    app.comm.record_overlapped(perf::CommKind::OneSided, (xmsgs + ymsgs) * steps,
                               2.0 * (xbytes + ybytes) * steps);
    app.comm.record_overlap_window(steps);
    app.comm.record(perf::CommKind::Barrier, 3.0 * steps, 0.0);
  } else {
    // Receives posted before packing: both halo phases overlap packing with
    // the face transfers (exchange_mpi's two OverlapScope windows per step).
    app.comm.record_overlapped(perf::CommKind::PointToPoint, 4.0 * steps,
                               2.0 * (xbytes + ybytes) * steps);
    app.comm.record_overlap_window(2.0 * steps);
    // User-level pack + system-level MPI copy traffic (absent in CAF).
    perf::LoopRecord rec;
    rec.vectorizable = true;
    rec.instances = 4.0 * steps;
    rec.trips = (kPlanes * nyl * G + kPlanes * G * stride) / 2.0;
    rec.flops_per_trip = 0.0;
    rec.bytes_per_trip = 4.0 * sizeof(double);
    rec.access = perf::AccessPattern::Strided;
    app.kernels.record("comm_pack", rec);
  }

  return app;
}

}  // namespace vpar::lbmhd
