#include "lbmhd/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "trace/trace.hpp"

namespace vpar::lbmhd {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

Simulation::Simulation(simrt::Communicator& comm, const Options& options)
    : comm_(&comm), options_(options),
      decomp_(options.nx, options.ny, options.px, options.py, comm.rank()) {
  if (options.px * options.py != comm.size()) {
    throw std::runtime_error("lbmhd: processor grid does not match job size");
  }
  const std::size_t block_elems = FieldSet::total_size(decomp_.nxl, decomp_.nyl);
  if (options.exchange == Options::Exchange::Caf) {
    // Both time levels live inside the co-array so neighbours can write the
    // ghosts of whichever buffer is current after each swap.
    coarray_.emplace(comm, "lbmhd_fields", 2 * block_elems);
    auto whole = coarray_->local();
    current_ = std::make_unique<FieldSet>(decomp_.nxl, decomp_.nyl,
                                          whole.subspan(0, block_elems));
    next_ = std::make_unique<FieldSet>(decomp_.nxl, decomp_.nyl,
                                       whole.subspan(block_elems, block_elems));
    caf_half_current_ = 0;
  } else {
    current_ = std::make_unique<FieldSet>(decomp_.nxl, decomp_.nyl);
    next_ = std::make_unique<FieldSet>(decomp_.nxl, decomp_.nyl);
  }
}

void Simulation::initialize(const InitialCondition& ic) {
  FieldSet& fs = *current_;
  for (std::size_t j = 0; j < decomp_.nyl; ++j) {
    for (std::size_t i = 0; i < decomp_.nxl; ++i) {
      const double x =
          (static_cast<double>(decomp_.x0() + i) + 0.5) / static_cast<double>(decomp_.nx);
      const double y =
          (static_cast<double>(decomp_.y0() + j) + 0.5) / static_cast<double>(decomp_.ny);
      const MacroState m = ic(x, y);

      const double mx = m.rho * m.ux;
      const double my = m.rho * m.uy;
      const double b2h = 0.5 * (m.bx * m.bx + m.by * m.by);
      const double txx = m.rho * m.ux * m.ux + b2h - m.bx * m.bx;
      const double tyy = m.rho * m.uy * m.uy + b2h - m.by * m.by;
      const double txy = m.rho * m.ux * m.uy - m.bx * m.by;
      const double lam = m.ux * m.by - m.bx * m.uy;

      const std::size_t o =
          fs.at(static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(i));
      for (int dir = 0; dir < Lattice::kDirs; ++dir) {
        fs.f(dir)[o] = Lattice::f_eq(dir, m.rho, mx, my, txx, txy, tyy);
        double gx = 0.0, gy = 0.0;
        Lattice::g_eq(dir, m.bx, m.by, lam, gx, gy);
        fs.gx(dir)[o] = gx;
        fs.gy(dir)[o] = gy;
      }
    }
  }
}

void Simulation::exchange() {
  trace::TraceSpan span("lbmhd.exchange", decomp_.nxl, decomp_.nyl);
  if (options_.exchange == Options::Exchange::Caf) {
    const std::size_t block_elems = FieldSet::total_size(decomp_.nxl, decomp_.nyl);
    exchange_caf(*coarray_, decomp_, *current_,
                 static_cast<std::size_t>(caf_half_current_) * block_elems);
  } else {
    exchange_mpi(*comm_, decomp_, *current_);
  }
}

void Simulation::step() {
  CollisionParams params{1.0 / options_.tau_f, 1.0 / options_.tau_g};
  {
    trace::TraceSpan span("lbmhd.collision", decomp_.nxl, decomp_.nyl);
    if (options_.collision == Options::Collision::Blocked) {
      collide_blocked(*current_, params, options_.block);
    } else {
      collide_flat(*current_, params);
    }
  }
  exchange();
  {
    trace::TraceSpan span("lbmhd.stream", decomp_.nxl, decomp_.nyl);
    stream(*current_, *next_);
  }
  std::swap(current_, next_);
  caf_half_current_ ^= 1;
}

void Simulation::run(int steps) {
  for (int s = 0; s < steps; ++s) step();
}

Simulation::Checkpoint Simulation::save_state() const {
  const auto raw = current_->raw();
  return Checkpoint{std::vector<double>(raw.begin(), raw.end())};
}

void Simulation::restore_state(const Checkpoint& checkpoint) {
  auto raw = current_->raw();
  if (checkpoint.fields.size() != raw.size()) {
    throw std::runtime_error("lbmhd: checkpoint size mismatch");
  }
  std::copy(checkpoint.fields.begin(), checkpoint.fields.end(), raw.begin());
}

void Simulation::macro_at(std::size_t j, std::size_t i, MacroState& out) const {
  const FieldSet& fs = *current_;
  const std::size_t o =
      fs.at(static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(i));
  constexpr double s = Lattice::kS;
  double rho = 0.0, bx = 0.0, by = 0.0;
  std::array<double, Lattice::kDirs> f{};
  for (int dir = 0; dir < Lattice::kDirs; ++dir) {
    f[static_cast<std::size_t>(dir)] = fs.f(dir)[o];
    rho += fs.f(dir)[o];
    bx += fs.gx(dir)[o];
    by += fs.gy(dir)[o];
  }
  const double mx = f[1] - f[5] + s * (f[2] - f[4] - f[6] + f[8]);
  const double my = f[3] - f[7] + s * (f[2] + f[4] - f[6] - f[8]);
  out.rho = rho;
  out.ux = mx / rho;
  out.uy = my / rho;
  out.bx = bx;
  out.by = by;
}

Diagnostics Simulation::diagnostics() {
  std::array<double, 7> acc{};
  MacroState m;
  for (std::size_t j = 0; j < decomp_.nyl; ++j) {
    for (std::size_t i = 0; i < decomp_.nxl; ++i) {
      macro_at(j, i, m);
      acc[0] += m.rho;
      acc[1] += m.rho * m.ux;
      acc[2] += m.rho * m.uy;
      acc[3] += m.bx;
      acc[4] += m.by;
      acc[5] += 0.5 * m.rho * (m.ux * m.ux + m.uy * m.uy);
      acc[6] += 0.5 * (m.bx * m.bx + m.by * m.by);
    }
  }
  comm_->allreduce_inplace(std::span<double>(acc), simrt::ReduceOp::Sum);
  Diagnostics d;
  d.mass = acc[0];
  d.momentum_x = acc[1];
  d.momentum_y = acc[2];
  d.bx_total = acc[3];
  d.by_total = acc[4];
  d.kinetic_energy = acc[5];
  d.magnetic_energy = acc[6];
  return d;
}

std::vector<double> Simulation::gather(Field which) {
  if (which == Field::CurrentZ) {
    // J_z = dBy/dx - dBx/dy via periodic central differences on rank 0.
    auto bx = gather(Field::Bx);
    auto by = gather(Field::By);
    if (comm_->rank() != 0) return {};
    const std::size_t nx = decomp_.nx, ny = decomp_.ny;
    std::vector<double> jz(nx * ny);
    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t jm = (j + ny - 1) % ny, jp = (j + 1) % ny;
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t im = (i + nx - 1) % nx, ip = (i + 1) % nx;
        jz[j * nx + i] = 0.5 * (by[j * nx + ip] - by[j * nx + im]) -
                         0.5 * (bx[jp * nx + i] - bx[jm * nx + i]);
      }
    }
    return jz;
  }

  std::vector<double> local(decomp_.nxl * decomp_.nyl);
  MacroState m;
  for (std::size_t j = 0; j < decomp_.nyl; ++j) {
    for (std::size_t i = 0; i < decomp_.nxl; ++i) {
      macro_at(j, i, m);
      double v = 0.0;
      switch (which) {
        case Field::Density: v = m.rho; break;
        case Field::VelocityX: v = m.ux; break;
        case Field::VelocityY: v = m.uy; break;
        case Field::Bx: v = m.bx; break;
        case Field::By: v = m.by; break;
        case Field::CurrentZ: break;  // handled above
      }
      local[j * decomp_.nxl + i] = v;
    }
  }

  std::vector<double> flat(comm_->rank() == 0 ? decomp_.nx * decomp_.ny : 0);
  comm_->gather<double>(local, flat, 0);
  if (comm_->rank() != 0) return {};

  // Reassemble rank-ordered blocks into the global row-major field.
  std::vector<double> global(decomp_.nx * decomp_.ny);
  for (int r = 0; r < comm_->size(); ++r) {
    const Decomp2D rd(decomp_.nx, decomp_.ny, decomp_.px, decomp_.py, r);
    const double* block = flat.data() +
                          static_cast<std::size_t>(r) * decomp_.nxl * decomp_.nyl;
    for (std::size_t j = 0; j < rd.nyl; ++j) {
      for (std::size_t i = 0; i < rd.nxl; ++i) {
        global[(rd.y0() + j) * decomp_.nx + (rd.x0() + i)] = block[j * rd.nxl + i];
      }
    }
  }
  return global;
}

InitialCondition crossed_structures_ic(double amplitude) {
  // Vector potential: two compact crosses; B = (dA/dy, -dA/dx) is evaluated
  // by differentiating A numerically, keeping B divergence-free to O(h^2).
  auto potential = [](double x, double y) {
    auto cross = [](double dx, double dy) {
      const double envelope = std::exp(-(dx * dx + dy * dy) / 0.03);
      const double ridges =
          std::exp(-dy * dy / 0.002) + std::exp(-dx * dx / 0.002);
      return envelope * ridges;
    };
    auto wrap = [](double d) {
      if (d > 0.5) return d - 1.0;
      if (d < -0.5) return d + 1.0;
      return d;
    };
    return cross(wrap(x - 0.3), wrap(y - 0.35)) + cross(wrap(x - 0.7), wrap(y - 0.65));
  };
  // The ridge derivatives amplify the potential by ~20x; normalize so that
  // `amplitude` is approximately the peak |B| (keeping it well below the
  // sound speed so the equilibria stay positive).
  const double scale = amplitude / 20.0;
  return [scale, potential](double x, double y) {
    constexpr double h = 1.0e-4;
    MacroState m;
    m.rho = 1.0;
    m.bx = scale * (potential(x, y + h) - potential(x, y - h)) / (2.0 * h);
    m.by = -scale * (potential(x + h, y) - potential(x - h, y)) / (2.0 * h);
    return m;
  };
}

InitialCondition orszag_tang_ic(double amplitude) {
  return [amplitude](double x, double y) {
    MacroState m;
    m.rho = 1.0;
    m.ux = -amplitude * std::sin(kTwoPi * y);
    m.uy = amplitude * std::sin(kTwoPi * x);
    m.bx = -amplitude * std::sin(kTwoPi * y);
    m.by = amplitude * std::sin(2.0 * kTwoPi * x);
    return m;
  };
}

}  // namespace vpar::lbmhd
