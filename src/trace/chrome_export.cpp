#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "trace/metrics.hpp"

namespace vpar::trace {

namespace {

/// Minimal JSON string escape (quotes, backslashes, control characters).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-microsecond precision, relative to `epoch_ns`.
void write_ts(std::ostream& out, std::uint64_t ts_ns, std::uint64_t epoch_ns) {
  const std::uint64_t rel = ts_ns >= epoch_ns ? ts_ns - epoch_ns : 0;
  out << rel / 1000 << "." << (rel % 1000) / 100;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const std::vector<ThreadTrace>& threads,
                        const std::string& reason) {
  // Common epoch: the earliest event across all threads, so timelines align.
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const auto& t : threads) {
    for (const auto& e : t.events) epoch = std::min(epoch, e.ts_ns);
  }
  if (epoch == ~std::uint64_t{0}) epoch = 0;

  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"vpar job\"}}";
  first = false;

  for (const auto& t : threads) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << escape(t.label)
        << "\"}}";
    for (const auto& e : t.events) {
      sep();
      switch (e.kind) {
        case EventKind::Span:
          out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
          write_ts(out, e.ts_ns, epoch);
          out << ",\"dur\":" << e.dur_ns / 1000 << "." << (e.dur_ns % 1000) / 100
              << ",\"name\":\"" << e.name << "\",\"cat\":\"vpar\",\"args\":{"
              << "\"rank\":" << e.rank << ",\"a0\":" << e.arg0
              << ",\"a1\":" << e.arg1 << "}}";
          break;
        case EventKind::Instant:
          out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
          write_ts(out, e.ts_ns, epoch);
          out << ",\"name\":\"" << e.name << "\",\"cat\":\"vpar\",\"s\":\"t\","
              << "\"args\":{\"rank\":" << e.rank << ",\"a0\":" << e.arg0
              << ",\"a1\":" << e.arg1 << "}}";
          break;
        case EventKind::Counter:
          out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
          write_ts(out, e.ts_ns, epoch);
          out << ",\"name\":\"" << e.name << "\",\"args\":{\"value\":" << e.id
              << "}}";
          break;
        case EventKind::FlowBegin:
          out << "{\"ph\":\"s\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
          write_ts(out, e.ts_ns, epoch);
          out << ",\"name\":\"" << e.name << "\",\"cat\":\"msg\",\"id\":"
              << e.id << "}";
          break;
        case EventKind::FlowEnd:
          out << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" << t.tid
              << ",\"ts\":";
          write_ts(out, e.ts_ns, epoch);
          out << ",\"name\":\"" << e.name << "\",\"cat\":\"msg\",\"id\":"
              << e.id << "}";
          break;
      }
    }
  }

  std::uint64_t overwritten = 0;
  for (const auto& t : threads) overwritten += t.overwritten;
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"overwritten_events\":" << overwritten;
  if (!reason.empty()) out << ",\"reason\":\"" << escape(reason) << "\"";
  out << "}}\n";
}

bool export_chrome_trace(const std::string& path, const std::string& reason) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, drain_all(), reason);
  return static_cast<bool>(out);
}

std::string write_postmortem(const std::string& reason,
                             const std::string& label) {
  if (!enabled()) return {};
  const char* dir_env = std::getenv("VPAR_TRACE_DIR");
  const std::string dir = dir_env != nullptr && *dir_env != '\0' ? dir_env : ".";
  // Per-failure filenames: a timestamp for humans sorting a directory, plus
  // a process-wide sequence number so two failures inside the same clock
  // tick (concurrent service lanes) still never collide.
  static std::atomic<std::uint64_t> seq{0};
  std::string stem = dir + "/vpar_postmortem.";
  if (!label.empty()) {
    for (char c : label) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
      stem += ok ? c : '-';
    }
    stem += '.';
  }
  stem += std::to_string(now_ns() / 1'000'000) + "-" +
          std::to_string(seq.fetch_add(1, std::memory_order_relaxed) + 1);
  const std::string trace_path = stem + ".trace.json";
  if (!export_chrome_trace(trace_path, reason)) return {};
  std::ofstream metrics_out(stem + ".metrics.json");
  if (metrics_out) Metrics::instance().snapshot().write_json(metrics_out);
  return trace_path;
}

}  // namespace vpar::trace
