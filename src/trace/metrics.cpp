#include "trace/metrics.hpp"

namespace vpar::trace {

Metrics& Metrics::instance() {
  // Leaked singleton: counters are bumped from executor workers that may
  // outlive static destruction order, so the registry must never die.
  static Metrics* m = new Metrics();
  return *m;
}

Counter& Metrics::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& Metrics::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      data.buckets[i] = h->bucket(i);
    }
    data.sum = h->sum();
    snap.histograms[name] = data;
  }
  return snap;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& older) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    auto it = older.counters.find(name);
    if (it != older.counters.end()) value -= it->second;
  }
  for (auto& [name, data] : out.histograms) {
    auto it = older.histograms.find(name);
    if (it == older.histograms.end()) continue;
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      data.buckets[i] -= it->second.buckets[i];
    }
    data.sum -= it->second.sum;
  }
  return out;
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << data.count() << ", \"sum\": " << data.sum
        << ", \"buckets\": [";
    // Trailing empty buckets are elided so the dump stays readable.
    std::size_t last = 0;
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (data.buckets[i] != 0) last = i + 1;
    }
    for (std::size_t i = 0; i < last; ++i) {
      out << (i == 0 ? "" : ", ") << data.buckets[i];
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
}

void MetricsSnapshot::write_csv(std::ostream& out) const {
  out << "metric,value\n";
  for (const auto& [name, value] : counters) {
    out << name << "," << value << "\n";
  }
  for (const auto& [name, data] : histograms) {
    out << name << ".count," << data.count() << "\n";
    out << name << ".sum," << data.sum << "\n";
  }
}

}  // namespace vpar::trace
