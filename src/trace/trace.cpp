#include "trace/trace.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>

namespace vpar::trace {

namespace detail {
std::atomic<int> g_mode{[] {
  const char* s = std::getenv("VPAR_TRACE");
  if (s == nullptr) return static_cast<int>(Mode::Off);
  const std::string v(s);
  if (v == "flight" || v == "on" || v == "1") return static_cast<int>(Mode::Flight);
  if (v == "full") return static_cast<int>(Mode::Full);
  return static_cast<int>(Mode::Off);
}()};
}  // namespace detail

Mode mode() { return static_cast<Mode>(detail::g_mode.load(std::memory_order_relaxed)); }

void set_mode(Mode mode) {
  detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

bool full_mode() {
  return detail::g_mode.load(std::memory_order_relaxed) ==
         static_cast<int>(Mode::Full);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t default_capacity() {
  const char* s = std::getenv("VPAR_TRACE_EVENTS");
  const long n = (s != nullptr) ? std::strtol(s, nullptr, 10) : 0;
  return round_up_pow2(n > 0 ? static_cast<std::size_t>(n) : 8192);
}

/// Capacity applied to rings created from now on (power of two).
std::atomic<std::size_t> g_capacity{default_capacity()};

/// One thread's event sink. Single-writer (the owning thread); the head
/// counter is the only cross-thread synchronization: the writer publishes a
/// slot with a release store of head, a drainer acquires head and reads the
/// slots below it. Drains happen only while the writer is quiesced (the
/// runtime drains after a job has fully drained; tests drain after joins),
/// so a slot is never read while it is being overwritten.
///
/// In Full mode a ring about to wrap first moves its contents into `spill_`
/// (owner thread, under `spill_mutex_`) so nothing is lost; in Flight mode
/// the wrap simply overwrites the oldest slot — the flight-recorder contract.
class Ring {
 public:
  explicit Ring(std::size_t capacity, std::string label, int tid)
      : label_(std::move(label)),
        tid_(tid),
        mask_(capacity - 1),
        slots_(capacity) {}

  void push(const Event& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (full_mode() && h - spilled_ == slots_.size()) {
      std::lock_guard lock(spill_mutex_);
      for (std::uint64_t i = spilled_; i < h; ++i) {
        spill_.push_back(slots_[i & mask_]);
      }
      spilled_ = h;
    }
    slots_[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Copy out everything still recorded, oldest first (quiesced writer).
  [[nodiscard]] ThreadTrace drain() {
    ThreadTrace out;
    out.label = label_;
    out.tid = tid_;
    {
      std::lock_guard lock(spill_mutex_);
      out.events = spill_;
    }
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(h - spilled_, slots_.size());
    out.overwritten = (h - spilled_) - kept;
    out.events.reserve(out.events.size() + kept);
    for (std::uint64_t i = h - kept; i < h; ++i) {
      out.events.push_back(slots_[i & mask_]);
    }
    return out;
  }

  void clear() {
    std::lock_guard lock(spill_mutex_);
    spill_.clear();
    spilled_ = head_.load(std::memory_order_acquire);
  }

  void set_label(std::string label) {
    std::lock_guard lock(spill_mutex_);
    label_ = std::move(label);
  }

  [[nodiscard]] std::string label() {
    std::lock_guard lock(spill_mutex_);
    return label_;
  }

 private:
  std::string label_;
  int tid_;
  std::uint64_t mask_;
  std::vector<Event> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t spilled_ = 0;  // events moved to spill_ (or dropped by clear)
  std::mutex spill_mutex_;
  std::vector<Event> spill_;
};

/// All rings ever created, kept alive past thread exit so post-mortem dumps
/// include the last events of dead threads. Bounded by the number of threads
/// the process ever creates (the executor pool reuses its workers).
struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: emitters may outlive statics
  return *r;
}

thread_local std::shared_ptr<Ring> t_ring;
thread_local int t_rank = -1;
thread_local const char* t_role = nullptr;
thread_local int t_role_index = -1;

std::string make_label() {
  std::string label = t_role != nullptr ? t_role : "thread";
  if (t_role_index >= 0) {
    label += ' ';
    label += std::to_string(t_role_index);
  }
  return label;
}

Ring& local_ring() {
  if (!t_ring) {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    t_ring = std::make_shared<Ring>(
        g_capacity.load(std::memory_order_relaxed), make_label(),
        static_cast<int>(reg.rings.size()));
    reg.rings.push_back(t_ring);
  }
  return *t_ring;
}

std::atomic<std::uint64_t> g_flow_id{0};
std::atomic<std::uint64_t> g_flow_base{0};

void push_event(const char* name, EventKind kind, std::uint64_t ts,
                std::uint64_t dur, std::uint64_t id, std::int64_t arg0,
                std::int64_t arg1) {
  Event e;
  e.name = name;
  e.ts_ns = ts;
  e.dur_ns = dur;
  e.id = id;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.rank = t_rank;
  e.kind = kind;
  local_ring().push(e);
}

}  // namespace

void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
               std::int64_t arg0, std::int64_t arg1) {
  if (!enabled()) return;
  push_event(name, EventKind::Span, start_ns, dur_ns, 0, arg0, arg1);
}

void emit_instant(const char* name, std::int64_t arg0, std::int64_t arg1) {
  if (!enabled()) return;
  push_event(name, EventKind::Instant, now_ns(), 0, 0, arg0, arg1);
}

void emit_counter(const char* name, std::uint64_t value) {
  if (!enabled()) return;
  push_event(name, EventKind::Counter, now_ns(), 0, value, 0, 0);
}

void emit_flow_begin(const char* name, std::uint64_t id) {
  if (!enabled()) return;
  push_event(name, EventKind::FlowBegin, now_ns(), 0, id, 0, 0);
}

void emit_flow_end(const char* name, std::uint64_t id) {
  if (!enabled()) return;
  push_event(name, EventKind::FlowEnd, now_ns(), 0, id, 0, 0);
}

void seed_flow_ids(std::uint64_t base) {
  g_flow_base.store(base, std::memory_order_relaxed);
}

std::uint64_t next_flow_id() {
  return g_flow_base.load(std::memory_order_relaxed) +
         g_flow_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

void set_thread_label(const char* role, int index) {
  t_role = role;
  t_role_index = index;
  if (t_ring) t_ring->set_label(make_label());
}

std::vector<ThreadTrace> drain_all() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    rings = reg.rings;
  }
  std::vector<ThreadTrace> out;
  out.reserve(rings.size());
  for (const auto& ring : rings) out.push_back(ring->drain());
  return out;
}

void clear_all() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    rings = reg.rings;
  }
  for (const auto& ring : rings) ring->clear();
}

void set_ring_capacity(std::size_t events) {
  g_capacity.store(round_up_pow2(events > 0 ? events : 1),
                   std::memory_order_relaxed);
}

}  // namespace vpar::trace
