#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace vpar::trace {

/// Write `threads` as a Chrome/Perfetto trace (JSON Object Format): one pid
/// for the whole job, one tid per recorded thread, spans as complete ("X")
/// events, instants as "i", counters as "C", and flow "s"/"f" pairs linking
/// each message send to its receive-side match. Open the file in Perfetto
/// (ui.perfetto.dev) or chrome://tracing. `reason` (optional) lands in
/// otherData.reason — post-mortem dumps carry the abort report there.
void write_chrome_trace(std::ostream& out, const std::vector<ThreadTrace>& threads,
                        const std::string& reason = {});

/// Drain every thread's ring and write the trace to `path`. Returns false if
/// the file cannot be opened. Callers must be quiesced (see drain_all).
bool export_chrome_trace(const std::string& path, const std::string& reason = {});

/// Post-mortem flight-recorder dump: when tracing is enabled, drain all
/// rings and write <dir>/vpar_postmortem.<label.><stamp>.trace.json plus a
/// metrics snapshot to the matching .metrics.json, where dir is
/// $VPAR_TRACE_DIR (or ".") and <stamp> is a timestamp plus a process-wide
/// sequence number — concurrent or repeated failures each get their own
/// files instead of overwriting one shared pair. `label` (optional,
/// sanitized to [A-Za-z0-9_-]) tags the dump with a job identity. The
/// runtime calls this after a job fails (watchdog timeout, rank error,
/// cooperative abort) — the last moments of every rank, with the failure
/// reason embedded. Returns the trace path, or "" when tracing is off or
/// the files cannot be written.
std::string write_postmortem(const std::string& reason,
                             const std::string& label = {});

}  // namespace vpar::trace
