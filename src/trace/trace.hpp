#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace vpar::trace {

/// Process-wide tracing mode (VPAR_TRACE environment variable seeds it):
///  - Off:    emit functions return immediately; a disabled span is two
///            predictable branches and no stores (the "compiled to near-zero
///            cost" contract the always-on claim rests on).
///  - Flight: flight-recorder mode — every thread writes into a fixed-size
///            ring and the newest events overwrite the oldest. Bounded
///            memory, zero allocation on the hot path, always safe to leave
///            on; post-mortem dumps show the last moments before a failure.
///  - Full:   as Flight, but a full ring is spilled to a side buffer instead
///            of overwriting, so no event is lost (unbounded memory; for
///            short diagnostic runs, not production).
enum class Mode : int { Off = 0, Flight = 1, Full = 2 };

namespace detail {
extern std::atomic<int> g_mode;
}

/// Cheapest possible enabled check — one relaxed atomic load, inlined into
/// every instrumentation site.
inline bool enabled() {
  return detail::g_mode.load(std::memory_order_relaxed) != 0;
}

[[nodiscard]] Mode mode();
void set_mode(Mode mode);

/// True only in Full mode (lossless spill instead of ring overwrite).
[[nodiscard]] bool full_mode();

// --- event model ------------------------------------------------------------

/// What one ring slot records. Spans are stored complete (begin timestamp +
/// duration written by the RAII TraceSpan on scope exit) so a span costs one
/// slot, not two.
enum class EventKind : std::uint8_t {
  Span,       // ts_ns = start, dur_ns = duration
  Instant,    // point event (fault injections, watchdog verdicts, aborts)
  Counter,    // sampled value (id = value)
  FlowBegin,  // message leaves a rank (id = flow id, pairs with FlowEnd)
  FlowEnd,    // message matched at the receiver (same flow id)
};

/// Fixed-size POD event. `name` must be a string literal (or otherwise
/// immortal) — the ring stores the pointer, never the characters. `rank` is
/// the simulated rank the emitting thread was executing when the event fired
/// (-1 outside any rank body); `arg0`/`arg1` are free-form per-site arguments
/// (destination, tag, chunk bounds, ...), exported as args in the JSON.
struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::int32_t rank = -1;
  EventKind kind = EventKind::Instant;
};

/// Monotonic timestamp shared by every event (steady clock, nanoseconds).
[[nodiscard]] std::uint64_t now_ns();

// --- emission ---------------------------------------------------------------

/// All emit functions are safe from any thread (each thread owns its ring),
/// no-ops when tracing is Off, and never allocate in Flight mode after the
/// thread's ring exists.
void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
               std::int64_t arg0 = 0, std::int64_t arg1 = 0);
void emit_instant(const char* name, std::int64_t arg0 = 0, std::int64_t arg1 = 0);
void emit_counter(const char* name, std::uint64_t value);
void emit_flow_begin(const char* name, std::uint64_t id);
void emit_flow_end(const char* name, std::uint64_t id);

/// Process-unique flow id for pairing a send with its receive-side match.
[[nodiscard]] std::uint64_t next_flow_id();

/// Offset every subsequently-drawn flow id by `base`. The distributed
/// bootstrap seeds each rank process with (rank + 1) << 40 so flow ids stay
/// globally unique across a multi-process job: the id travels in the frame
/// header, the receiving process emits the paired FlowEnd, and a merged
/// Perfetto trace still draws every send→recv arrow (docs/transport.md).
void seed_flow_ids(std::uint64_t base);

/// RAII span: captures the start time on construction, emits one Span event
/// on destruction. When tracing is Off at construction the destructor does
/// nothing — a disabled span never reads the clock.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg0 = 0,
                     std::int64_t arg1 = 0)
      : name_(enabled() ? name : nullptr),
        arg0_(arg0),
        arg1_(arg1),
        start_(name_ != nullptr ? now_ns() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) emit_span(name_, start_, now_ns() - start_, arg0_, arg1_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::int64_t arg0_;
  std::int64_t arg1_;
  std::uint64_t start_;
};

// --- thread attribution -----------------------------------------------------

/// Simulated rank currently executing on this thread (stamped into every
/// event); -1 means "not inside a rank body". Set by the simrt executor.
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();

/// Display name of this thread's timeline in exported traces, e.g.
/// ("worker", 3) -> "worker 3". `role` must be immortal; index < 0 omits it.
void set_thread_label(const char* role, int index = -1);

// --- drain / export (quiesced callers) --------------------------------------

/// One thread's recorded timeline: label, stable thread index (export tid),
/// events in emission order, and how many older events the flight ring
/// overwrote (0 in Full mode).
struct ThreadTrace {
  std::string label;
  int tid = 0;
  std::uint64_t overwritten = 0;
  std::vector<Event> events;
};

/// Snapshot every thread's ring (including rings of threads that have since
/// exited — the registry keeps them alive, which is exactly what a post-
/// mortem wants). Callers must be quiesced with respect to writers: the
/// runtime drains after a job has fully drained, when every worker is parked.
[[nodiscard]] std::vector<ThreadTrace> drain_all();

/// Drop all recorded events (test isolation). Same quiescence contract.
void clear_all();

/// Ring capacity (events per thread) for rings created after this call.
/// Defaults to VPAR_TRACE_EVENTS or 8192; rounded up to a power of two.
void set_ring_capacity(std::size_t events);

}  // namespace vpar::trace
