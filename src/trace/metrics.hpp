#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace vpar::trace {

/// Named monotonic counter. Hot paths hold the reference returned by
/// Metrics::counter() once and then pay one relaxed atomic add per event —
/// the registry lookup never sits on a hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative values (message sizes, durations):
/// bucket 0 counts value 0, bucket i counts values in [2^(i-1), 2^i).
/// Recording is one relaxed atomic add; no floating point, no allocation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // 0 plus one per bit of uint64

  void record(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Record `count` observations of the same value with two atomic adds
  /// instead of `count`. Hot loops that observe one value per iteration (the
  /// SIMD span instrumentation records W active lanes per vector iteration)
  /// batch a whole span into one call.
  void record_many(std::uint64_t value, std::uint64_t count) {
    if (count == 0) return;
    buckets_[bucket_of(value)].fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(value * count, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) {
    std::size_t b = 0;
    while (value != 0) {
      value >>= 1;
      ++b;
    }
    return b;
  }

  /// Inclusive upper bound of a bucket (0 for bucket 0, 2^i - 1 for i > 0).
  [[nodiscard]] static std::uint64_t bucket_limit(std::size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every metric; subtract an older snapshot to get the
/// traffic of one region of interest (a run, a bench, a failed job).
struct MetricsSnapshot {
  struct HistogramData {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t sum = 0;
    [[nodiscard]] std::uint64_t count() const {
      std::uint64_t n = 0;
      for (auto b : buckets) n += b;
      return n;
    }
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  /// This snapshot minus `older` (counters are monotonic, so the difference
  /// is the activity between the two snapshot points).
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& older) const;

  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
};

/// Metrics registry: find-or-create named counters and histograms. The
/// returned references are stable for the registry's lifetime.
///
/// instance() is the process-wide registry most meters live on. Registries
/// are also plain constructible objects, which is what gives concurrent
/// multi-tenant callers *scoped* metrics: diffing two instance() snapshots
/// attributes everything that happened in between to one region of interest,
/// but under concurrency a neighbor's traffic lands in the same window. A
/// dedicated Metrics scope per job (or per tenant) is populated only from
/// that job's own results, so its snapshot cannot be contaminated by
/// whatever ran beside it — the service layer's per-job/per-tenant log2
/// histograms are exactly such scopes.
class Metrics {
 public:
  /// A fresh, empty scoped registry (see class comment).
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// The process-wide registry.
  static Metrics& instance();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace vpar::trace
