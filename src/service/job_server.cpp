#include "service/job_server.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <utility>

#include "simrt/communicator.hpp"
#include "trace/trace.hpp"

namespace vpar::service {

namespace {

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

std::uint64_t to_u64(double v) {
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

/// Minimal JSON string escape for failure reports (error strings carry
/// quotes and newlines — the watchdog report is multi-line).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '-';
  }
  return out;
}

}  // namespace

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::Completed: return "completed";
    case Outcome::RetriedThenCompleted: return "retried-then-completed";
    case Outcome::Failed: return "failed";
    case Outcome::Rejected: return "rejected";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::BadRequest: return "bad-request";
    case RejectReason::ShuttingDown: return "shutting-down";
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::BreakerOpen: return "breaker-open";
  }
  return "?";
}

JobServer::JobServer(const ServerConfig& config)
    : config_(config), breaker_(config.breaker) {
  config_.lanes = std::max(config_.lanes, 1);
  config_.queue_capacity = std::max(config_.queue_capacity, 1);
  config_.max_ranks = std::max(config_.max_ranks, 1);
  lanes_.resize(static_cast<std::size_t>(config_.lanes));
  for (int i = 0; i < config_.lanes; ++i) {
    lanes_[static_cast<std::size_t>(i)].executor =
        std::make_unique<simrt::Executor>();
  }
  for (int i = 0; i < config_.lanes; ++i) {
    lanes_[static_cast<std::size_t>(i)].thread =
        std::thread([this, i] { lane_loop(i); });
  }
}

JobServer::~JobServer() { stop(); }

Admission JobServer::submit(JobSpec spec) {
  auto reject = [&](RejectReason why, std::string reason) {
    trace::emit_instant("service.reject", static_cast<std::int64_t>(why));
    Admission admission;
    admission.reject = why;
    admission.reason = reason;
    JobResult result;
    result.app = spec.app;
    result.tenant = spec.tenant;
    result.outcome = Outcome::Rejected;
    result.reject = why;
    result.error_type = "Rejected";
    result.error = std::move(reason);
    admission.ticket.complete(std::move(result));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    switch (why) {
      case RejectReason::BadRequest: ++stats_.rejected_bad_request; break;
      case RejectReason::ShuttingDown: ++stats_.rejected_shutdown; break;
      case RejectReason::QueueFull: ++stats_.rejected_queue_full; break;
      case RejectReason::BreakerOpen: ++stats_.rejected_breaker; break;
      case RejectReason::None: break;
    }
    return admission;
  };

  if (!spec.body) {
    return reject(RejectReason::BadRequest, "bad request: job has no body");
  }
  if (spec.size < 1 || spec.size > config_.max_ranks) {
    return reject(RejectReason::BadRequest,
                  "bad request: size " + std::to_string(spec.size) +
                      " outside [1, " + std::to_string(config_.max_ranks) +
                      "]");
  }

  Admission admission;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      lock.unlock();
      return reject(RejectReason::ShuttingDown,
                    "server is shutting down, not accepting jobs");
    }
    if (static_cast<int>(queue_.size()) >= config_.queue_capacity) {
      lock.unlock();
      return reject(
          RejectReason::QueueFull,
          "queue full (" + std::to_string(config_.queue_capacity) + "/" +
              std::to_string(config_.queue_capacity) + "), resubmit later");
    }
    // Last gate, so a half-open probe slot is only consumed by a job that is
    // actually admitted.
    bool probe = false;
    if (!breaker_.allow(probe)) {
      lock.unlock();
      return reject(RejectReason::BreakerOpen,
                    "breaker open: recent job failure rate over threshold, "
                    "shedding load until the backend recovers");
    }

    Pending pending;
    pending.id = ++next_id_;
    pending.admitted = std::chrono::steady_clock::now();
    if (spec.deadline.count() > 0) {
      pending.deadline = pending.admitted + spec.deadline;
    }
    pending.breaker_probe = probe;
    pending.spec = std::move(spec);
    admission.accepted = true;
    admission.ticket = pending.ticket;
    ++stats_.submitted;
    trace::emit_instant("service.admit", static_cast<std::int64_t>(pending.id),
                        pending.spec.size);
    queue_.push_back(std::move(pending));
  }
  cv_work_.notify_one();
  return admission;
}

void JobServer::lane_loop(int lane) {
  trace::set_thread_label("svc-lane", lane);
  simrt::Executor& executor = *lanes_[static_cast<std::size_t>(lane)].executor;
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // stop() fails whatever is still queued
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++busy_lanes_;
    }

    const auto start = std::chrono::steady_clock::now();
    JobResult result;
    result.queue_ms = to_ms(start - pending.admitted);
    const bool expired_in_queue =
        pending.deadline.time_since_epoch().count() > 0 &&
        start >= pending.deadline;
    if (expired_in_queue) {
      // Never ran: deadline spent waiting. Not breaker feedback — queue
      // expiry signals overload (which backpressure already handles), not a
      // faulty backend.
      result.outcome = Outcome::Failed;
      result.error_type = "DeadlineExceeded";
      result.error = "deadline expired while queued (waited " +
                     std::to_string(static_cast<long>(result.queue_ms)) +
                     " ms)";
      breaker_.forget(pending.breaker_probe);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.queue_expired;
    } else {
      result = run_job(executor, pending);
      result.queue_ms = to_ms(start - pending.admitted);
      breaker_.record(result.completed(), pending.breaker_probe);
    }
    finish_job(pending, std::move(result));

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_lanes_;
    }
    cv_idle_.notify_all();
  }
}

JobResult JobServer::run_job(simrt::Executor& executor, Pending& pending) {
  const JobSpec& spec = pending.spec;
  JobResult result;

  simrt::RunOptions options;
  options.size = spec.size;
  options.fault = spec.fault;
  options.checksums = spec.checksums;
  options.watchdog =
      spec.watchdog.count() > 0 ? spec.watchdog : config_.default_watchdog;
  options.deadline = pending.deadline;
  // Concurrent lanes cannot quiesce the process-wide trace rings, so the
  // in-Executor flight-recorder postmortem is off; finish_job writes the
  // per-job failure report instead.
  options.postmortem = false;

  simrt::RetryPolicy policy = spec.retry;
  if (policy.jitter == 0.0) policy.jitter = config_.default_retry_jitter;
  if (policy.jitter_seed == 0) policy.jitter_seed = spec.seed ^ pending.id;

  // Exact attempt count even when the final failure is rethrown through the
  // retry loop: rank 0 bumps it on body entry, before any fault can fire.
  std::atomic<int> attempts{0};
  const std::function<void(simrt::Communicator&)> body =
      [&](simrt::Communicator& comm) {
        if (comm.rank() == 0) attempts.fetch_add(1, std::memory_order_relaxed);
        spec.body(comm);
      };

  auto fail = [&result](const char* type, const char* what) {
    result.outcome = Outcome::Failed;
    result.error_type = type;
    result.error = what;
  };

  trace::TraceSpan span("service.job", static_cast<std::int64_t>(pending.id),
                        spec.size);
  trace::Metrics scope;  // per-job registry: this job's results only
  const auto start = std::chrono::steady_clock::now();
  try {
    simrt::RetryResult rr =
        simrt::run_with_retry(executor, options, body, policy);
    result.outcome = rr.attempts > 1 ? Outcome::RetriedThenCompleted
                                     : Outcome::Completed;
    const auto& comm = rr.result.merged.comm();
    result.total_messages = comm.total_messages();
    result.total_bytes = comm.total_bytes();
    result.faults_injected = comm.faults_injected();
    result.checksum_failures = comm.checksum_failures();
    auto& rank_messages = scope.histogram("rank.messages");
    auto& rank_bytes = scope.histogram("rank.bytes");
    for (const auto& r : rr.result.per_rank) {
      rank_messages.record(to_u64(r.comm().total_messages()));
      rank_bytes.record(to_u64(r.comm().total_bytes()));
    }
  } catch (const simrt::DeadlineExceeded& e) {
    fail("DeadlineExceeded", e.what());
  } catch (const simrt::WatchdogTimeout& e) {
    fail("WatchdogTimeout", e.what());
  } catch (const simrt::RankError& e) {
    result.failed_rank = e.failed_rank();
    fail("RankError", e.what());
  } catch (const simrt::JobAborted& e) {
    fail("JobAborted", e.what());
  } catch (const std::exception& e) {
    fail("Exception", e.what());
  }
  result.run_ms = to_ms(std::chrono::steady_clock::now() - start);
  result.attempts =
      std::max(attempts.load(std::memory_order_relaxed), 1);

  scope.counter("job.attempts").add(static_cast<std::uint64_t>(result.attempts));
  scope.counter("comm.messages").add(to_u64(result.total_messages));
  scope.counter("comm.bytes").add(to_u64(result.total_bytes));
  scope.counter("faults.injected").add(to_u64(result.faults_injected));
  scope.counter("checksum.failures").add(to_u64(result.checksum_failures));
  result.metrics = scope.snapshot();
  return result;
}

void JobServer::finish_job(Pending& pending, JobResult result) {
  result.id = pending.id;
  result.app = pending.spec.app;
  result.tenant = pending.spec.tenant;
  result.latency_ms =
      to_ms(std::chrono::steady_clock::now() - pending.admitted);

  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto& slot = tenants_[result.tenant];
    if (!slot) slot = std::make_unique<trace::Metrics>();
    trace::Metrics& tenant = *slot;
    switch (result.outcome) {
      case Outcome::Completed: tenant.counter("jobs.completed").add(); break;
      case Outcome::RetriedThenCompleted:
        tenant.counter("jobs.retried").add();
        break;
      default: tenant.counter("jobs.failed").add(); break;
    }
    tenant.counter("comm.messages").add(to_u64(result.total_messages));
    tenant.counter("comm.bytes").add(to_u64(result.total_bytes));
    tenant.counter("faults.injected").add(to_u64(result.faults_injected));
    tenant.counter("checksum.failures").add(to_u64(result.checksum_failures));
    tenant.histogram("job.latency_ms").record(to_u64(result.latency_ms));
    tenant.histogram("job.queue_ms").record(to_u64(result.queue_ms));
    tenant.histogram("job.run_ms").record(to_u64(result.run_ms));
  }

  if (result.outcome == Outcome::Failed && config_.failure_reports) {
    write_failure_report(result);
  }
  trace::emit_instant("service.job.done", static_cast<std::int64_t>(result.id),
                      static_cast<std::int64_t>(result.outcome));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (result.outcome) {
      case Outcome::Completed: ++stats_.completed; break;
      case Outcome::RetriedThenCompleted:
        ++stats_.retried_then_completed;
        break;
      case Outcome::Failed: ++stats_.failed; break;
      case Outcome::Rejected: ++stats_.rejected; break;  // not reached
    }
  }
  pending.ticket.complete(std::move(result));
}

void JobServer::write_failure_report(const JobResult& result) const {
  const std::string path = config_.failure_report_dir + "/vpar_job." +
                           std::to_string(result.id) + "." +
                           sanitize(result.tenant) + ".json";
  std::ofstream out(path);
  if (!out) return;
  out << "{\"id\":" << result.id << ",\"app\":\"" << json_escape(result.app)
      << "\",\"tenant\":\"" << json_escape(result.tenant)
      << "\",\"outcome\":\"" << to_string(result.outcome)
      << "\",\"error_type\":\"" << json_escape(result.error_type)
      << "\",\"error\":\"" << json_escape(result.error)
      << "\",\"failed_rank\":" << result.failed_rank
      << ",\"attempts\":" << result.attempts
      << ",\"queue_ms\":" << result.queue_ms
      << ",\"run_ms\":" << result.run_ms
      << ",\"latency_ms\":" << result.latency_ms << "}\n";
}

void JobServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && busy_lanes_ == 0; });
}

void JobServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& lane : lanes_) {
    if (lane.thread.joinable()) lane.thread.join();
  }
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers.swap(queue_);
  }
  for (auto& pending : leftovers) {
    breaker_.forget(pending.breaker_probe);
    JobResult result;
    result.outcome = Outcome::Failed;
    result.error_type = "ServerStopped";
    result.error = "server stopped before the job ran";
    result.queue_ms = to_ms(std::chrono::steady_clock::now() - pending.admitted);
    finish_job(pending, std::move(result));
  }
}

ServerStats JobServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats = stats_;
  stats.queue_depth = static_cast<int>(queue_.size());
  stats.busy_lanes = busy_lanes_;
  stats.breaker_opens = breaker_.opens();
  return stats;
}

CircuitBreaker::State JobServer::breaker_state() const {
  return breaker_.state();
}

trace::MetricsSnapshot JobServer::tenant_snapshot(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return it->second->snapshot();
}

}  // namespace vpar::service
