#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/breaker.hpp"
#include "service/job.hpp"

namespace vpar::simrt {
class Executor;
}

namespace vpar::service {

/// JobServer sizing and policy knobs.
struct ServerConfig {
  /// Concurrent lanes. Each lane owns a private pooled simrt::Executor —
  /// Executor::run() serializes callers per instance, so true job
  /// concurrency needs one executor per lane, reused across thousands of
  /// jobs (the pool keeps its workers parked between jobs).
  int lanes = 2;
  /// Bounded queue depth; submissions beyond it are rejected (QueueFull),
  /// which is the backpressure signal — callers resubmit, the server never
  /// buffers unboundedly.
  int queue_capacity = 64;
  /// Largest job size admission accepts (BadRequest above it).
  int max_ranks = 16;
  /// Deadlock watchdog applied to jobs whose spec leaves watchdog at 0.
  std::chrono::milliseconds default_watchdog{0};
  /// Retry-backoff jitter applied to jobs whose spec leaves retry.jitter at
  /// 0 — concurrent jobs that failed together must not all retry together,
  /// so service retries are jittered unless the spec says otherwise.
  double default_retry_jitter = 0.5;
  BreakerConfig breaker{};
  /// Write a per-job JSON failure report (vpar_job.<id>.<tenant>.json in
  /// failure_report_dir) for every cleanly-failed job. The in-Executor
  /// flight-recorder postmortem is always disabled for service jobs —
  /// draining trace rings requires quiesced writers, which concurrent lanes
  /// cannot guarantee — so this is the service's failure artifact.
  bool failure_reports = false;
  std::string failure_report_dir = ".";
};

/// Point-in-time server accounting. The four outcome buckets partition the
/// admitted jobs; rejected_* partition the rejections.
struct ServerStats {
  std::uint64_t submitted = 0;  // admitted into the queue
  std::uint64_t completed = 0;
  std::uint64_t retried_then_completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_expired = 0;  // subset of failed: deadline hit in queue
  std::uint64_t rejected = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_breaker = 0;
  std::uint64_t breaker_opens = 0;
  int queue_depth = 0;
  int busy_lanes = 0;
};

/// Multi-tenant simulation job server: a bounded admission queue feeding
/// `lanes` worker lanes, each lane an independently pooled simrt::Executor.
///
/// Admission (submit) decides synchronously, in order: bad request ->
/// shutting down -> queue full -> breaker open; an admitted job gets a
/// ticket the caller waits on. Lanes dequeue FIFO and run each job under its
/// own robustness envelope — seeded fault plan, checksums, deadlock
/// watchdog, absolute deadline (armed at admission so queue wait and every
/// retry spend the same budget), and bounded jittered-backoff retry via
/// simrt::run_with_retry.
///
/// Tenant isolation: each job's metrics come only from its own RunResult
/// (scoped trace::Metrics, see JobResult::metrics), its failure is reported
/// on its own ticket with the first failing rank's error, and a lane that
/// just ran a failing job is healthy for the next one (the executor discards
/// the failed job's runtime state, never its workers). One tenant's chaos
/// cannot corrupt a neighbor's results, abort its jobs, or delay them beyond
/// the queue wait its own submissions also pay.
class JobServer {
 public:
  explicit JobServer(const ServerConfig& config = {});
  ~JobServer();  // stop()
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Synchronous admission decision; never blocks on job execution. The
  /// returned ticket is always valid (pre-completed for rejects).
  [[nodiscard]] Admission submit(JobSpec spec);

  /// Block until the queue is empty and every lane is idle. New submissions
  /// during a drain keep it waiting; call stop() first for a final drain.
  void drain();

  /// Stop accepting work, fail still-queued jobs ("server stopped before the
  /// job ran"), and join the lanes. Running jobs finish normally. Idempotent.
  void stop();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] CircuitBreaker::State breaker_state() const;

  /// Snapshot of one tenant's scoped metrics registry: per-job outcome
  /// counters plus log2 latency/traffic histograms, populated only from that
  /// tenant's own job results (empty snapshot for unknown tenants).
  [[nodiscard]] trace::MetricsSnapshot tenant_snapshot(
      const std::string& tenant) const;

 private:
  struct Pending {
    JobSpec spec;
    JobTicket ticket;
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point admitted{};
    std::chrono::steady_clock::time_point deadline{};  // epoch = disarmed
    bool breaker_probe = false;  // consumed a half-open probe slot
  };

  struct Lane {
    std::unique_ptr<simrt::Executor> executor;
    std::thread thread;
  };

  void lane_loop(int lane);
  [[nodiscard]] JobResult run_job(simrt::Executor& executor, Pending& pending);
  void finish_job(Pending& pending, JobResult result);
  void write_failure_report(const JobResult& result) const;

  ServerConfig config_;
  CircuitBreaker breaker_;

  mutable std::mutex mutex_;  // queue, stats, lifecycle flags
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  int busy_lanes_ = 0;
  std::uint64_t next_id_ = 0;
  ServerStats stats_;

  mutable std::mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<trace::Metrics>> tenants_;

  std::vector<Lane> lanes_;
};

}  // namespace vpar::service
