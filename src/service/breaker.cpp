#include "service/breaker.hpp"

#include <algorithm>

namespace vpar::service {

CircuitBreaker::CircuitBreaker(const BreakerConfig& config) : config_(config) {
  config_.window = std::max(config_.window, 1);
  config_.min_samples = std::clamp(config_.min_samples, 1, config_.window);
  config_.probes = std::max(config_.probes, 1);
  window_.assign(static_cast<std::size_t>(config_.window), 0);
}

double CircuitBreaker::failure_fraction_locked() const {
  if (window_filled_ == 0) return 0.0;
  int failures = 0;
  for (int i = 0; i < window_filled_; ++i) failures += window_[static_cast<std::size_t>(i)];
  return static_cast<double>(failures) / static_cast<double>(window_filled_);
}

void CircuitBreaker::open_locked() {
  state_ = State::Open;
  opened_at_ = std::chrono::steady_clock::now();
  probes_issued_ = 0;
  probe_successes_ = 0;
  ++opens_;
}

bool CircuitBreaker::allow(bool& probe) {
  probe = false;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (std::chrono::steady_clock::now() - opened_at_ < config_.cooldown) {
        return false;
      }
      state_ = State::HalfOpen;
      probes_issued_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::HalfOpen:
      if (probes_issued_ >= config_.probes) return false;
      ++probes_issued_;
      probe = true;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::record(bool success, bool probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (probe && state_ == State::HalfOpen) {
    if (!success) {
      open_locked();
      return;
    }
    if (++probe_successes_ >= config_.probes) {
      // Recovered: forget the stormy window, start judging fresh.
      state_ = State::Closed;
      window_next_ = 0;
      window_filled_ = 0;
    }
    return;
  }
  // Non-probe outcome (or a probe verdict arriving after another probe
  // already re-opened the breaker): slide the window. Only a Closed breaker
  // opens on the threshold — Open/HalfOpen transitions belong to the
  // cooldown/probe machinery.
  window_[static_cast<std::size_t>(window_next_)] = success ? 0 : 1;
  window_next_ = (window_next_ + 1) % config_.window;
  window_filled_ = std::min(window_filled_ + 1, config_.window);
  if (state_ == State::Closed && window_filled_ >= config_.min_samples &&
      failure_fraction_locked() >= config_.threshold) {
    open_locked();
  }
}

void CircuitBreaker::forget(bool probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (probe && state_ == State::HalfOpen && probes_issued_ > 0) {
    --probes_issued_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace vpar::service
