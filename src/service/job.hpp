#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "simrt/fault.hpp"
#include "simrt/runtime.hpp"
#include "trace/metrics.hpp"

namespace vpar::service {

/// How a job's life ended. Every submitted job lands in exactly one bucket —
/// the accounting invariant the storm bench asserts: completed +
/// retried_then_completed + failed + rejected == submitted.
enum class Outcome : int {
  Completed = 0,         // first attempt succeeded
  RetriedThenCompleted,  // succeeded after one or more retries
  Failed,                // cleanly failed: retries exhausted, deadline, queue
                         // expiry, or server stopped before the job ran
  Rejected,              // never admitted (see RejectReason)
};

[[nodiscard]] const char* to_string(Outcome outcome);

/// Why admission declined a job (Outcome::Rejected only).
enum class RejectReason : int {
  None = 0,
  BadRequest,    // unrunnable spec: no body, or size out of [1, max_ranks]
  ShuttingDown,  // the server has stopped accepting work
  QueueFull,     // bounded queue at capacity — backpressure, resubmit later
  BreakerOpen,   // recent failure rate tripped the circuit breaker
};

[[nodiscard]] const char* to_string(RejectReason reason);

/// One simulation request: which app body to run, at what size, under which
/// robustness envelope. `platform` is an advisory label (the platform-to-model
/// name the caller wants results attributed to); the service does not
/// interpret it. `deadline` is the job's *total* latency budget measured from
/// admission — queue wait, every retry attempt, and every backoff pause all
/// spend it (0 disarms). `seed` keys the fault plan and the retry jitter
/// stream, so a chaos storm replays exactly.
struct JobSpec {
  std::string app = "anonymous";
  std::string tenant = "default";
  std::string platform;
  int size = 4;
  std::uint64_t seed = 0;
  simrt::FaultPlan fault{};
  bool checksums = false;
  std::chrono::milliseconds deadline{0};
  std::chrono::milliseconds watchdog{0};  // 0 = server default
  simrt::RetryPolicy retry{};
  std::function<void(simrt::Communicator&)> body;
};

/// Everything the service knows about one finished job. The comm/robustness
/// totals and the `metrics` snapshot come from the job's *own* RunResult only
/// — a scoped registry populated after the run, never from process-wide
/// counters — so a neighbor tenant's traffic cannot contaminate them no
/// matter what ran concurrently.
struct JobResult {
  std::uint64_t id = 0;
  std::string app;
  std::string tenant;
  Outcome outcome = Outcome::Rejected;
  RejectReason reject = RejectReason::None;
  /// run() attempts actually started (1 == first try succeeded). Counted by
  /// the job's own rank-0 entry hook, so it is exact even when a failure is
  /// rethrown through the retry loop.
  int attempts = 0;
  std::string error;       // what() of the final failure (empty on success)
  std::string error_type;  // "RankError", "WatchdogTimeout", ...
  int failed_rank = -1;    // from RankError, else -1
  double queue_ms = 0.0;   // admission -> dequeue
  double run_ms = 0.0;     // dequeue -> final attempt done (incl. backoffs)
  double latency_ms = 0.0; // admission -> completion
  double total_messages = 0.0;
  double total_bytes = 0.0;
  double faults_injected = 0.0;
  double checksum_failures = 0.0;
  trace::MetricsSnapshot metrics;  // per-job scope (log2 histograms per rank)

  [[nodiscard]] bool completed() const {
    return outcome == Outcome::Completed ||
           outcome == Outcome::RetriedThenCompleted;
  }
};

/// Caller's handle to a submitted job: wait() blocks until the lane (or the
/// admission path, for rejects) publishes the JobResult. Copyable — copies
/// share the same underlying state.
class JobTicket {
 public:
  JobTicket() : state_(std::make_shared<State>()) {}

  [[nodiscard]] bool done() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
  }

  /// Block until the job finishes; returns a copy of the result. By value,
  /// deliberately: `server.submit(spec).ticket.wait()` must stay safe even
  /// though the temporary Admission (and with it the last ticket reference)
  /// dies at the end of the expression.
  JobResult wait() const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    return state_->result;
  }

 private:
  friend class JobServer;

  struct State {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    bool done = false;
    JobResult result;
  };

  void complete(JobResult result) const {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      state_->result = std::move(result);
      state_->done = true;
    }
    state_->cv.notify_all();
  }

  std::shared_ptr<State> state_;
};

/// What submit() returns. The ticket is always valid: for rejected jobs it is
/// pre-completed with Outcome::Rejected and the reject reason, so callers can
/// treat every submission uniformly (submit, then wait).
struct Admission {
  bool accepted = false;
  RejectReason reject = RejectReason::None;
  std::string reason;  // human-readable reject explanation, empty on accept
  JobTicket ticket;
};

}  // namespace vpar::service
