#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vpar::service {

/// Circuit-breaker tuning. The window is a count of recent *job* outcomes
/// (success/failure), not a time interval — job durations vary by orders of
/// magnitude across app/size mixes, so an outcome window tracks the failure
/// *rate* the breaker actually cares about.
struct BreakerConfig {
  int window = 32;       // sliding window of recent outcomes
  int min_samples = 8;   // withhold judgment before this many outcomes
  double threshold = 0.5;  // failure fraction in the window that opens it
  std::chrono::milliseconds cooldown{250};  // Open -> HalfOpen delay
  int probes = 2;        // HalfOpen successes required to re-close
};

/// Load-shedding breaker in front of the job queue. Closed admits everything;
/// when the failure fraction over the last `window` outcomes reaches
/// `threshold` (with at least `min_samples` observed) it opens and admission
/// rejects with BreakerOpen — a storm of failing jobs stops burning lane time
/// and retry budget on work that is going to fail anyway. After `cooldown`
/// the breaker goes half-open and lets `probes` trial jobs through: all
/// succeeding re-closes it (window cleared), any failing re-opens it.
///
/// What counts as a failure is the *caller's* policy; the JobServer records
/// run failures (including deadline aborts of running jobs) but not
/// queue-expiries — those signal overload, which backpressure already
/// handles, not a faulty backend.
///
/// Thread-safe; every method takes the internal mutex.
class CircuitBreaker {
 public:
  enum class State : int { Closed = 0, Open, HalfOpen };

  explicit CircuitBreaker(const BreakerConfig& config = {});

  /// Admission gate: true = let the job through. Transitions Open ->
  /// HalfOpen once the cooldown has elapsed; in HalfOpen, admits at most
  /// `probes` trial jobs until their outcomes arrive. `probe` is set when
  /// the admitted job consumed a half-open probe slot — thread it back into
  /// record()/forget() so a probe's verdict is never confused with the late
  /// result of a job admitted before the breaker opened.
  [[nodiscard]] bool allow(bool& probe);
  [[nodiscard]] bool allow() {
    bool probe = false;
    return allow(probe);
  }

  /// Completion-side feedback for a job that allow() admitted. A probe's
  /// failure re-opens the breaker; `probes` probe successes re-close it
  /// (window cleared). Non-probe outcomes slide the window.
  void record(bool success, bool probe = false);

  /// Release an admitted job's claim without judging it (the job never ran:
  /// queue expiry, server stopped). Frees the probe slot so a half-open
  /// breaker cannot wedge waiting for a verdict that will never come.
  void forget(bool probe);

  [[nodiscard]] State state() const;

  /// Times the breaker has transitioned Closed/HalfOpen -> Open.
  [[nodiscard]] std::uint64_t opens() const;

 private:
  [[nodiscard]] double failure_fraction_locked() const;
  void open_locked();

  BreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::Closed;
  std::vector<char> window_;  // ring of outcomes: 1 = failure, 0 = success
  int window_next_ = 0;
  int window_filled_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  int probes_issued_ = 0;
  int probe_successes_ = 0;
  std::uint64_t opens_ = 0;
};

[[nodiscard]] const char* to_string(CircuitBreaker::State state);

}  // namespace vpar::service
