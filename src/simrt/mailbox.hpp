#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

namespace vpar::simrt {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// One in-flight message: payload plus (source, tag) matching metadata.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-rank inbound message queue with MPI-style (source, tag) matching:
/// a receive matches the *oldest* queued message whose source and tag are
/// compatible, preserving the MPI non-overtaking guarantee between any
/// (sender, receiver, tag) triple.
class Mailbox {
 public:
  /// Enqueue a message (called from the sender's thread).
  void deliver(Message msg);

  /// Block until a message matching (source, tag) is available and return it.
  /// `source`/`tag` may be kAnySource/kAnyTag wildcards.
  [[nodiscard]] Message receive(int source, int tag);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag);

 private:
  [[nodiscard]] bool matches(const Message& msg, int source, int tag) const {
    return (source == kAnySource || msg.source == source) &&
           (tag == kAnyTag || msg.tag == tag);
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace vpar::simrt
