#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "simrt/arena.hpp"
#include "simrt/fault.hpp"
#include "simrt/request.hpp"

namespace vpar::simrt {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Move-only immutable message payload with three storage tiers chosen for
/// zero steady-state allocation:
///  - Inline: payloads up to kInlineCapacity live inside the Payload object
///    itself (no heap traffic at all — the common case for collective
///    fragments, barrier signals and small control messages).
///  - Arena: larger copy_of() payloads borrow a recycled buffer from the
///    process-wide BufferArena and return it on destruction.
///  - Adopted: adopt() takes ownership of the sender's vector (any element
///    type) with no data copy — the move-handoff path of isend/pipelined
///    transposes.
/// The payload is copied exactly once, into the receiver's destination
/// buffer, at match time.
class Payload {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  Payload() = default;
  Payload(Payload&& other) noexcept { move_from(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { release(); }

  /// Copy `data` into inline or arena storage (records the payload storage
  /// event on the calling thread's recorder).
  static Payload copy_of(std::span<const std::byte> data);

  template <typename T>
  static Payload adopt(std::vector<T>&& v) {
    const std::size_t bytes = v.size() * sizeof(T);
    if (bytes <= kInlineCapacity) {
      // Inlining beats keeping the vector alive for tiny handoffs.
      return copy_of(std::as_bytes(std::span<const T>(v)));
    }
    Payload p;
    auto owned = std::make_shared<std::vector<T>>(std::move(v));
    p.data_ = reinterpret_cast<const std::byte*>(owned->data());
    p.size_ = bytes;
    p.owner_ = std::move(owned);
    p.storage_ = Storage::Adopted;
    return p;
  }

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return {data_, size_}; }

  /// Mutable view for the fault injector's in-transit bit-flips. Only valid
  /// before delivery, while the sender exclusively owns the payload.
  [[nodiscard]] std::span<std::byte> mutable_bytes() {
    return {const_cast<std::byte*>(data_), size_};
  }

 private:
  enum class Storage : std::uint8_t { None, Inline, Arena, Adopted };

  void move_from(Payload& other) noexcept {
    storage_ = other.storage_;
    size_ = other.size_;
    owner_ = std::move(other.owner_);
    block_ = other.block_;
    if (storage_ == Storage::Inline) {
      if (size_ > 0) std::memcpy(inline_buf_, other.inline_buf_, size_);
      data_ = inline_buf_;
    } else {
      data_ = other.data_;
    }
    other.storage_ = Storage::None;
    other.data_ = nullptr;
    other.size_ = 0;
    other.block_ = {};
  }

  void release() noexcept {
    if (storage_ == Storage::Arena) BufferArena::instance().release(block_);
    owner_.reset();
    storage_ = Storage::None;
    data_ = nullptr;
    size_ = 0;
    block_ = {};
  }

  std::shared_ptr<const void> owner_;
  ArenaBlock block_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  Storage storage_ = Storage::None;
  std::byte inline_buf_[kInlineCapacity];
};

/// One in-flight message: payload plus (source, tag) matching metadata.
/// `checksum` (when `checksummed`) is the sender-side FNV-1a of the payload,
/// verified at match time; `reorder` asks deliver() to enqueue the message
/// ahead of up to that many queued messages from other (source, tag) streams
/// (fault injection — per-stream FIFO is still preserved).
struct Message {
  int source = 0;
  int tag = 0;
  std::uint64_t checksum = 0;
  bool checksummed = false;
  int reorder = 0;
  /// Nonzero when tracing: flow id stamped by the sender (emit_flow_begin);
  /// the receive-side match emits the paired FlowEnd, drawing a send→recv
  /// arrow in the exported Chrome trace.
  std::uint64_t trace_id = 0;
  Payload payload;
};

/// Power-of-two circular buffer of Messages — the mailbox's queue storage.
/// Two jobs a std::deque cannot do:
///  - steady-state delivery reuses slots in place (a deque allocates and
///    frees chunk nodes as the queue breathes), so the messaging hot path
///    stops touching the allocator entirely;
///  - the whole ring is one contiguous allocation that reserve() can grow
///    on the *owning rank's* worker thread, which under first-touch NUMA
///    placement puts every queue slot on the owner's node.
/// Middle insert/take (reorder injection, tag-selective receive) shift
/// whichever side is shorter. Indices are logical: 0 is the oldest message.
class MessageRing {
 public:
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  [[nodiscard]] Message& operator[](std::size_t i) { return slots_[at(i)]; }
  [[nodiscard]] const Message& operator[](std::size_t i) const {
    return slots_[at(i)];
  }

  void push_back(Message&& msg) { insert(count_, std::move(msg)); }

  /// Insert before logical position `pos` (0 = front, size() = back).
  void insert(std::size_t pos, Message&& msg);

  /// Remove and return the message at logical position `pos`.
  [[nodiscard]] Message take(std::size_t pos);

  /// Grow capacity to at least `n` slots (never shrinks).
  void reserve(std::size_t n);

  /// Release every queued payload; capacity is retained for reuse.
  void clear();

 private:
  [[nodiscard]] std::size_t at(std::size_t i) const {
    return (head_ + i) & (slots_.size() - 1);
  }
  void grow(std::size_t min_capacity);

  std::vector<Message> slots_;  // size is zero or a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Per-rank inbound message queue with MPI-style (source, tag) matching and
/// posted-receive handoff:
///  - deliver() first tries the *pending receive list* (receives posted with
///    post_recv that nothing has matched yet), oldest first; on a match the
///    payload is copied directly into the posted buffer and the request
///    completes — on the sender's thread, which is what lets the receiver
///    overlap packing/compute with communication. Unmatched messages queue.
///  - post_recv() first tries the queue (oldest compatible message wins,
///    preserving the MPI non-overtaking guarantee per (sender, tag)); else
///    the receive parks in the pending list.
///  - receive() is the blocking, dynamically-sized variant used by
///    collectives and variable-size protocols; posted receives always have
///    matching priority over it because they were posted earlier.
class Mailbox {
 public:
  /// Bind this mailbox to its owning rank's job control block (done once by
  /// RuntimeState). Blocking receives then honour cooperative abort and
  /// register their blocked state for the deadlock watchdog.
  void attach(JobControl* control, int owner) {
    control_ = control;
    owner_ = owner;
  }

  /// Enqueue or hand off a message (called from the sender's thread).
  void deliver(Message msg);

  /// Block until a message matching (source, tag) is available and return it.
  /// `source`/`tag` may be kAnySource/kAnyTag wildcards. `what` names the
  /// operation in blocked-state reports (e.g. "recv", "barrier"). Throws
  /// JobAborted if the job is cooperatively aborted while waiting, and
  /// ChecksumError if the matched payload fails verification.
  [[nodiscard]] Message receive(int source, int tag, const char* what = "recv");

  /// Post a nonblocking receive into `dest`; the returned state completes
  /// once a matching message has been copied into `dest` (possibly already).
  [[nodiscard]] std::shared_ptr<RequestState> post_recv(int source, int tag,
                                                        std::span<std::byte> dest);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag);

  /// Queue depths for blocked-state reports.
  struct Stats {
    std::size_t queued = 0;
    std::size_t pending = 0;
  };
  [[nodiscard]] Stats stats();

  /// Wake the owning rank out of any blocking receive or Request::wait after
  /// a cooperative abort: notifies the mailbox condvar and every parked
  /// pending receive (their waiters recheck JobControl::aborted()).
  void abort_wake();

  /// Drop any queued messages and pending receives. Called by the pooled
  /// executor between jobs so a recycled mailbox starts clean; after a
  /// well-formed job both containers are already empty.
  void reset();

  /// First-touch placement: reserve at least `slots` ring slots now, on the
  /// calling thread — the owning rank's worker calls this at job pickup so
  /// the queue storage's pages fault in on the owner's core/NUMA node
  /// instead of whichever thread first delivered a message. Returns the
  /// bytes newly allocated (0 when the ring was already large enough).
  std::size_t place(std::size_t slots);

 private:
  // kAnyTag matches *user* tags only (>= 0); internal collective traffic
  // rides in the negative tag space and must be matched exactly, so a
  // wildcard receive can never steal a collective fragment.
  static bool matches(int msg_source, int msg_tag, int source, int tag) {
    return (source == kAnySource || msg_source == source) &&
           (tag == kAnyTag ? msg_tag >= 0 : msg_tag == tag);
  }

  /// Copy `msg`'s payload into `rs->dest` and complete it (caller holds
  /// rs->mutex). A size mismatch completes the request with an error.
  static void complete_locked(RequestState& rs, const Message& msg);

  std::mutex mutex_;
  std::condition_variable cv_;
  MessageRing queue_;
  std::deque<std::shared_ptr<RequestState>> pending_;
  JobControl* control_ = nullptr;
  int owner_ = 0;
};

}  // namespace vpar::simrt
