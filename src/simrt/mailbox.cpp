#include "simrt/mailbox.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "perf/recorder.hpp"
#include "trace/trace.hpp"

namespace vpar::simrt {

Payload Payload::copy_of(std::span<const std::byte> data) {
  Payload p;
  p.size_ = data.size();
  if (data.size() <= kInlineCapacity) {
    if (!data.empty()) std::memcpy(p.inline_buf_, data.data(), data.size());
    p.data_ = p.inline_buf_;
    p.storage_ = Storage::Inline;
    perf::record_payload(perf::PayloadEvent::Inline);
  } else {
    bool recycled = false;
    p.block_ = BufferArena::instance().acquire(data.size(), &recycled);
    std::memcpy(p.block_.data, data.data(), data.size());
    p.data_ = p.block_.data;
    p.storage_ = Storage::Arena;
    perf::record_payload(recycled ? perf::PayloadEvent::Recycle
                                  : perf::PayloadEvent::Alloc);
  }
  return p;
}

void MessageRing::grow(std::size_t min_capacity) {
  std::size_t cap = 16;
  while (cap < min_capacity) cap <<= 1;
  std::vector<Message> next(cap);
  for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(slots_[at(i)]);
  slots_ = std::move(next);
  head_ = 0;
}

void MessageRing::reserve(std::size_t n) {
  if (n > slots_.size()) grow(n);
}

void MessageRing::insert(std::size_t pos, Message&& msg) {
  if (count_ == slots_.size()) grow(count_ + 1);
  const std::size_t mask = slots_.size() - 1;
  if (pos <= count_ / 2) {
    // Rotate the shorter front side back one slot.
    head_ = (head_ + mask) & mask;  // head - 1 mod capacity
    for (std::size_t i = 0; i < pos; ++i) {
      slots_[at(i)] = std::move(slots_[at(i + 1)]);
    }
  } else {
    for (std::size_t i = count_; i > pos; --i) {
      slots_[at(i)] = std::move(slots_[at(i - 1)]);
    }
  }
  slots_[at(pos)] = std::move(msg);
  ++count_;
}

Message MessageRing::take(std::size_t pos) {
  Message msg = std::move(slots_[at(pos)]);
  if (pos <= count_ / 2) {
    for (std::size_t i = pos; i > 0; --i) {
      slots_[at(i)] = std::move(slots_[at(i - 1)]);
    }
    head_ = (head_ + 1) & (slots_.size() - 1);
  } else {
    for (std::size_t i = pos; i + 1 < count_; ++i) {
      slots_[at(i)] = std::move(slots_[at(i + 1)]);
    }
  }
  --count_;
  return msg;
}

void MessageRing::clear() {
  // Reset occupied slots to release their payloads; the allocation stays.
  for (std::size_t i = 0; i < count_; ++i) slots_[at(i)] = Message{};
  head_ = 0;
  count_ = 0;
}

void Mailbox::complete_locked(RequestState& rs, const Message& msg) {
  // The flow lands where the match happens — which for a posted receive is
  // the *sender's* thread (handoff); the event's rank field still tells the
  // reader which simulated rank was executing.
  if (msg.trace_id != 0) trace::emit_flow_end("msg", msg.trace_id);
  if (msg.payload.size() != rs.dest.size()) {
    rs.error = "recv: payload size mismatch (got " +
               std::to_string(msg.payload.size()) + " bytes, posted " +
               std::to_string(rs.dest.size()) + ")";
  } else if (msg.checksummed && fnv1a64(msg.payload.bytes()) != msg.checksum) {
    rs.checksum_error = true;
    rs.error = "recv: payload checksum mismatch (source " +
               std::to_string(msg.source) + ", tag " + std::to_string(msg.tag) +
               ", " + std::to_string(msg.payload.size()) + " bytes)";
  } else if (!rs.dest.empty()) {
    std::memcpy(rs.dest.data(), msg.payload.data(), rs.dest.size());
  }
  rs.complete = true;
  rs.cv.notify_all();
}

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard lock(mutex_);
    // Posted receives have matching priority, oldest first. Cancelled
    // entries (abandoned Requests) are pruned as we walk. The local copy of
    // the shared state keeps it alive past the erase: the pending list may
    // hold the last reference, and the state must outlive its own lock.
    for (auto it = pending_.begin(); it != pending_.end();) {
      std::shared_ptr<RequestState> rs = *it;
      std::lock_guard state_lock(rs->mutex);
      if (rs->cancelled) {
        it = pending_.erase(it);
        continue;
      }
      if (matches(msg.source, msg.tag, rs->want_source, rs->want_tag)) {
        complete_locked(*rs, msg);
        pending_.erase(it);
        return;
      }
      ++it;
    }
    // Injected reorder: jump ahead of up to msg.reorder queued messages, but
    // never past one from the same (source, tag) stream — per-stream FIFO is
    // a documented guarantee, chaos or not.
    std::size_t pos = queue_.size();
    for (int jump = msg.reorder; jump > 0 && pos > 0; --jump) {
      const Message& prev = queue_[pos - 1];
      if (prev.source == msg.source && prev.tag == msg.tag) break;
      --pos;
    }
    queue_.insert(pos, std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag, const char* what) {
  std::unique_lock lock(mutex_);
  BlockGuard guard;
  for (;;) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Message& m = queue_[i];
      if (!matches(m.source, m.tag, source, tag)) continue;
      Message msg = queue_.take(i);
      if (msg.trace_id != 0) trace::emit_flow_end("msg", msg.trace_id);
      if (msg.checksummed && fnv1a64(msg.payload.bytes()) != msg.checksum) {
        perf::record_checksum_failure();
        throw ChecksumError("recv: payload checksum mismatch (source " +
                            std::to_string(msg.source) + ", tag " +
                            std::to_string(msg.tag) + ", " +
                            std::to_string(msg.payload.size()) + " bytes)");
      }
      return msg;
    }
    if (control_ != nullptr) {
      if (control_->aborted()) control_->throw_aborted();
      guard.engage(*control_, owner_, BlockKind::Recv, what, source, tag);
    }
    cv_.wait(lock);
  }
}

std::shared_ptr<RequestState> Mailbox::post_recv(int source, int tag,
                                                 std::span<std::byte> dest) {
  if (control_ != nullptr && control_->aborted()) control_->throw_aborted();
  auto state = std::make_shared<RequestState>();
  state->want_source = source;
  state->want_tag = tag;
  state->dest = dest;
  state->control = control_;
  state->owner = owner_;

  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (!matches(m.source, m.tag, source, tag)) continue;
    const Message msg = queue_.take(i);
    std::lock_guard state_lock(state->mutex);
    complete_locked(*state, msg);
    return state;
  }
  pending_.push_back(state);
  return state;
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (matches(m.source, m.tag, source, tag)) return true;
  }
  return false;
}

Mailbox::Stats Mailbox::stats() {
  std::lock_guard lock(mutex_);
  return {queue_.size(), pending_.size()};
}

void Mailbox::abort_wake() {
  std::vector<std::shared_ptr<RequestState>> parked;
  {
    std::lock_guard lock(mutex_);
    parked.assign(pending_.begin(), pending_.end());
  }
  cv_.notify_all();
  for (const auto& rs : parked) {
    // Lock-then-notify so a waiter between its predicate check and cv.wait
    // cannot miss the wake-up.
    { std::lock_guard state_lock(rs->mutex); }
    rs->cv.notify_all();
  }
}

void Mailbox::reset() {
  std::lock_guard lock(mutex_);
  queue_.clear();
  pending_.clear();
}

std::size_t Mailbox::place(std::size_t slots) {
  std::lock_guard lock(mutex_);
  const std::size_t before = queue_.capacity();
  queue_.reserve(slots);
  const std::size_t grown = queue_.capacity() - before;
  return grown * sizeof(Message);
}

}  // namespace vpar::simrt
