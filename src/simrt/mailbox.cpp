#include "simrt/mailbox.hpp"

#include <algorithm>

namespace vpar::simrt {

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

}  // namespace vpar::simrt
