#include "simrt/mailbox.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "perf/recorder.hpp"
#include "trace/trace.hpp"

namespace vpar::simrt {

Payload Payload::copy_of(std::span<const std::byte> data) {
  Payload p;
  p.size_ = data.size();
  if (data.size() <= kInlineCapacity) {
    if (!data.empty()) std::memcpy(p.inline_buf_, data.data(), data.size());
    p.data_ = p.inline_buf_;
    p.storage_ = Storage::Inline;
    perf::record_payload(perf::PayloadEvent::Inline);
  } else {
    bool recycled = false;
    p.block_ = BufferArena::instance().acquire(data.size(), &recycled);
    std::memcpy(p.block_.data, data.data(), data.size());
    p.data_ = p.block_.data;
    p.storage_ = Storage::Arena;
    perf::record_payload(recycled ? perf::PayloadEvent::Recycle
                                  : perf::PayloadEvent::Alloc);
  }
  return p;
}

void Mailbox::complete_locked(RequestState& rs, const Message& msg) {
  // The flow lands where the match happens — which for a posted receive is
  // the *sender's* thread (handoff); the event's rank field still tells the
  // reader which simulated rank was executing.
  if (msg.trace_id != 0) trace::emit_flow_end("msg", msg.trace_id);
  if (msg.payload.size() != rs.dest.size()) {
    rs.error = "recv: payload size mismatch (got " +
               std::to_string(msg.payload.size()) + " bytes, posted " +
               std::to_string(rs.dest.size()) + ")";
  } else if (msg.checksummed && fnv1a64(msg.payload.bytes()) != msg.checksum) {
    rs.checksum_error = true;
    rs.error = "recv: payload checksum mismatch (source " +
               std::to_string(msg.source) + ", tag " + std::to_string(msg.tag) +
               ", " + std::to_string(msg.payload.size()) + " bytes)";
  } else if (!rs.dest.empty()) {
    std::memcpy(rs.dest.data(), msg.payload.data(), rs.dest.size());
  }
  rs.complete = true;
  rs.cv.notify_all();
}

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard lock(mutex_);
    // Posted receives have matching priority, oldest first. Cancelled
    // entries (abandoned Requests) are pruned as we walk. The local copy of
    // the shared state keeps it alive past the erase: the pending list may
    // hold the last reference, and the state must outlive its own lock.
    for (auto it = pending_.begin(); it != pending_.end();) {
      std::shared_ptr<RequestState> rs = *it;
      std::lock_guard state_lock(rs->mutex);
      if (rs->cancelled) {
        it = pending_.erase(it);
        continue;
      }
      if (matches(msg.source, msg.tag, rs->want_source, rs->want_tag)) {
        complete_locked(*rs, msg);
        pending_.erase(it);
        return;
      }
      ++it;
    }
    // Injected reorder: jump ahead of up to msg.reorder queued messages, but
    // never past one from the same (source, tag) stream — per-stream FIFO is
    // a documented guarantee, chaos or not.
    auto pos = queue_.end();
    for (int jump = msg.reorder; jump > 0 && pos != queue_.begin(); --jump) {
      auto prev = std::prev(pos);
      if (prev->source == msg.source && prev->tag == msg.tag) break;
      pos = prev;
    }
    queue_.insert(pos, std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag, const char* what) {
  std::unique_lock lock(mutex_);
  BlockGuard guard;
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return matches(m.source, m.tag, source, tag);
    });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      if (msg.trace_id != 0) trace::emit_flow_end("msg", msg.trace_id);
      if (msg.checksummed && fnv1a64(msg.payload.bytes()) != msg.checksum) {
        perf::record_checksum_failure();
        throw ChecksumError("recv: payload checksum mismatch (source " +
                            std::to_string(msg.source) + ", tag " +
                            std::to_string(msg.tag) + ", " +
                            std::to_string(msg.payload.size()) + " bytes)");
      }
      return msg;
    }
    if (control_ != nullptr) {
      if (control_->aborted()) control_->throw_aborted();
      guard.engage(*control_, owner_, BlockKind::Recv, what, source, tag);
    }
    cv_.wait(lock);
  }
}

std::shared_ptr<RequestState> Mailbox::post_recv(int source, int tag,
                                                 std::span<std::byte> dest) {
  if (control_ != nullptr && control_->aborted()) control_->throw_aborted();
  auto state = std::make_shared<RequestState>();
  state->want_source = source;
  state->want_tag = tag;
  state->dest = dest;
  state->control = control_;
  state->owner = owner_;

  std::lock_guard lock(mutex_);
  auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m.source, m.tag, source, tag);
  });
  if (it != queue_.end()) {
    std::lock_guard state_lock(state->mutex);
    complete_locked(*state, *it);
    queue_.erase(it);
  } else {
    pending_.push_back(state);
  }
  return state;
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m.source, m.tag, source, tag);
  });
}

Mailbox::Stats Mailbox::stats() {
  std::lock_guard lock(mutex_);
  return {queue_.size(), pending_.size()};
}

void Mailbox::abort_wake() {
  std::vector<std::shared_ptr<RequestState>> parked;
  {
    std::lock_guard lock(mutex_);
    parked.assign(pending_.begin(), pending_.end());
  }
  cv_.notify_all();
  for (const auto& rs : parked) {
    // Lock-then-notify so a waiter between its predicate check and cv.wait
    // cannot miss the wake-up.
    { std::lock_guard state_lock(rs->mutex); }
    rs->cv.notify_all();
  }
}

void Mailbox::reset() {
  std::lock_guard lock(mutex_);
  queue_.clear();
  pending_.clear();
}

}  // namespace vpar::simrt
