#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "simrt/fault.hpp"

namespace vpar::simrt {

/// Shared completion state of one nonblocking operation. Receives park here
/// until a matching message is delivered; the *sender's* thread then copies
/// the payload straight into the posted destination buffer (a handoff — the
/// message never sits in the queue) and flips `complete`. Errors discovered
/// at match time (payload/buffer size mismatch) are stored and rethrown by
/// Request::wait()/test() on the posting thread.
struct RequestState {
  std::mutex mutex;
  std::condition_variable cv;
  bool complete = false;
  bool cancelled = false;
  bool checksum_error = false;
  std::string error;

  // Matching metadata and destination of a posted receive.
  int want_source = 0;
  int want_tag = 0;
  std::span<std::byte> dest{};

  // Owning rank's job control block (set by Mailbox::post_recv); lets wait()
  // honour cooperative abort and register with the deadlock watchdog.
  JobControl* control = nullptr;
  int owner = 0;
};

/// Handle to a nonblocking send or receive. Move-only, MPI_Request-flavoured:
///   wait()     block until complete (throws a stored matching error),
///   test()     poll without blocking,
/// Default-constructed and already-waited requests are complete. Destroying
/// a request that never completed *cancels* it: the runtime stops matching
/// it and will never write through its (possibly dangling) buffer — the safe
/// interpretation of MPI_Request_free for a simulated runtime.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state) : state_(std::move(state)) {}
  Request(Request&&) noexcept = default;
  Request& operator=(Request&& other) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  /// Block until the operation completes, then release the handle.
  /// Throws std::runtime_error if the match failed (size mismatch).
  void wait();

  /// True if the operation has completed (always true for a null handle).
  /// Completion with a stored error throws, like wait().
  [[nodiscard]] bool test();

  /// False for default-constructed or already-waited handles.
  [[nodiscard]] bool active() const { return state_ != nullptr; }

 private:
  void cancel() noexcept;

  std::shared_ptr<RequestState> state_;
};

/// Wait on every request in the span (in order; all are complete on return).
void waitall(std::span<Request> requests);

}  // namespace vpar::simrt
