#include "simrt/fault.hpp"

#include <algorithm>
#include <thread>

#include "perf/recorder.hpp"
#include "trace/trace.hpp"

namespace vpar::simrt {

namespace {

/// SplitMix64 finalizer: a cheap, well-mixed hash of the decision
/// coordinates. Good enough for fault sampling; not cryptographic.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t draw(const FaultPlan& plan, int rank, std::uint64_t counter,
                   std::uint64_t salt) {
  std::uint64_t h = splitmix64(plan.seed ^ salt);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(rank) + 1));
  return splitmix64(h ^ counter);
}

double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// --- JobControl -------------------------------------------------------------

void JobControl::configure(const RunOptions& options) {
  fault_ = options.fault;
  checksums_ = options.checksums;
  watchdog_ =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options.watchdog);
  deadline_ = options.deadline;
  postmortem_ = options.postmortem;
  aborted_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(mutex_);
    reason_.clear();
    latched_ = false;
  }
  for (auto& s : status_) {
    s.blocked.store(0, std::memory_order_relaxed);
    s.what.store(nullptr, std::memory_order_relaxed);
    s.source.store(0, std::memory_order_relaxed);
    s.tag.store(0, std::memory_order_relaxed);
    s.since_ns.store(0, std::memory_order_relaxed);
    s.seq.store(0, std::memory_order_relaxed);
    s.finished.store(false, std::memory_order_relaxed);
    s.last_op.store(nullptr, std::memory_order_relaxed);
    s.calls.store(0, std::memory_order_relaxed);
  }
}

void JobControl::abort(const std::string& reason) {
  std::function<void()> waker;
  {
    std::lock_guard lock(mutex_);
    if (latched_) return;  // first abort wins
    latched_ = true;
    reason_ = reason;
    waker = waker_;
  }
  aborted_.store(true, std::memory_order_release);
  trace::emit_instant("abort");
  if (waker) waker();
}

void JobControl::throw_aborted() const {
  perf::record_abort_observed();
  throw JobAborted(reason());
}

std::string JobControl::reason() const {
  std::lock_guard lock(mutex_);
  return reason_.empty() ? std::string("job aborted") : reason_;
}

void JobControl::set_waker(std::function<void()> waker) {
  std::lock_guard lock(mutex_);
  waker_ = std::move(waker);
}

void JobControl::block(int rank, BlockKind kind, const char* what, int source,
                       int tag) {
  auto& s = status_[static_cast<std::size_t>(rank)];
  s.what.store(what, std::memory_order_relaxed);
  s.source.store(source, std::memory_order_relaxed);
  s.tag.store(tag, std::memory_order_relaxed);
  s.since_ns.store(now_ns(), std::memory_order_relaxed);
  s.seq.fetch_add(1, std::memory_order_relaxed);
  s.blocked.store(static_cast<int>(kind), std::memory_order_release);
}

void JobControl::unblock(int rank) {
  auto& s = status_[static_cast<std::size_t>(rank)];
  s.seq.fetch_add(1, std::memory_order_relaxed);
  s.blocked.store(0, std::memory_order_release);
}

void JobControl::finish(int rank) {
  auto& s = status_[static_cast<std::size_t>(rank)];
  s.seq.fetch_add(1, std::memory_order_relaxed);
  s.blocked.store(0, std::memory_order_relaxed);
  s.finished.store(true, std::memory_order_release);
}

// --- FaultInjector ----------------------------------------------------------

FaultInjector::FaultInjector(const FaultPlan& plan, int rank)
    : plan_(&plan), rank_(rank), enabled_(plan.enabled()) {
  if (enabled_) {
    straggler_ = std::find(plan.straggler_ranks.begin(),
                           plan.straggler_ranks.end(),
                           rank) != plan.straggler_ranks.end();
  }
}

void FaultInjector::on_call(std::uint64_t call) {
  if (!enabled_) return;
  if (straggler_ && plan_->straggle_us > 0) {
    perf::record_fault_injected();
    trace::emit_instant("fault.straggle", plan_->straggle_us);
    std::this_thread::sleep_for(std::chrono::microseconds(plan_->straggle_us));
  }
  if (rank_ == plan_->fail_rank && call == plan_->fail_at_call) {
    perf::record_fault_injected();
    trace::emit_instant("fault.kill", static_cast<std::int64_t>(call));
    throw InjectedFault("injected rank failure at comm call #" +
                        std::to_string(call));
  }
}

void FaultInjector::apply_send_faults(std::span<std::byte> payload, int tag,
                                      int& reorder_slots) {
  if (!enabled_) return;
  const std::uint64_t s = ++sends_;
  if (plan_->delay_prob > 0.0 && plan_->delay_max_us > 0 &&
      u01(draw(*plan_, rank_, s, 1)) < plan_->delay_prob) {
    const auto us = 1 + draw(*plan_, rank_, s, 2) % plan_->delay_max_us;
    perf::record_fault_injected();
    trace::emit_instant("fault.delay", static_cast<std::int64_t>(us), tag);
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  if (plan_->reorder_prob > 0.0 &&
      u01(draw(*plan_, rank_, s, 3)) < plan_->reorder_prob) {
    reorder_slots = 1 + static_cast<int>(draw(*plan_, rank_, s, 4) % 4);
    perf::record_fault_injected();
    trace::emit_instant("fault.reorder", reorder_slots, tag);
  }
  if (plan_->bitflip_prob > 0.0 && tag >= 0 && !payload.empty() &&
      u01(draw(*plan_, rank_, s, 5)) < plan_->bitflip_prob) {
    const std::uint64_t bit = draw(*plan_, rank_, s, 6) % (payload.size() * 8);
    payload[bit / 8] ^= std::byte{1} << (bit % 8);
    perf::record_fault_injected();
    trace::emit_instant("fault.bitflip", static_cast<std::int64_t>(bit), tag);
  }
}

bool FaultInjector::should_drop(int tag) {
  if (!enabled_ || tag < 0 || plan_->drop_prob <= 0.0) return false;
  if (u01(draw(*plan_, rank_, sends_, 7)) >= plan_->drop_prob) return false;
  perf::record_fault_injected();
  trace::emit_instant("fault.drop", tag);
  return true;
}

bool FaultInjector::should_fail_alloc() {
  if (!enabled_ || plan_->alloc_fail_prob <= 0.0) return false;
  const std::uint64_t a = ++allocs_;
  return u01(draw(*plan_, rank_, a, 8)) < plan_->alloc_fail_prob;
}

namespace {
// Ambient per-thread injector for fault decisions made below the
// communicator (the arena has no job context of its own).
thread_local FaultInjector* t_thread_injector = nullptr;
}  // namespace

FaultInjector* exchange_thread_injector(FaultInjector* injector) {
  FaultInjector* prev = t_thread_injector;
  t_thread_injector = injector;
  return prev;
}

void maybe_inject_alloc_failure(std::size_t bytes) {
  FaultInjector* inj = t_thread_injector;
  if (inj == nullptr || !inj->should_fail_alloc()) return;
  perf::record_fault_injected();
  trace::emit_instant("fault.alloc_fail", static_cast<std::int64_t>(bytes));
  throw InjectedFault("injected arena allocation failure (" +
                      std::to_string(bytes) + " bytes)");
}

std::uint64_t fnv1a64(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace vpar::simrt
