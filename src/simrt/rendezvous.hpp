#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "simrt/fault.hpp"

namespace vpar::simrt {

/// Reusable rendezvous primitive backing every collective in the runtime:
/// a generation-counted barrier plus a per-rank slot array through which
/// ranks expose pointers to their contribution.
///
/// Collectives follow the pattern
///   post(rank, &args); arrive_and_wait();   // all slots visible
///   ... read other ranks' slots, do this rank's share ...
///   arrive_and_wait();                      // safe to invalidate args
/// The two barriers make consecutive collectives race-free: nobody can post
/// into generation g+1 until every rank has finished its share of g.
///
/// The barrier is lock-free on arrival: one fetch_add per rank plus a futex
/// sleep (std::atomic::wait) for the non-last arrivals. The mutex+condvar
/// formulation it replaces paid a lock handoff on every wakeup, which
/// dominated barrier-heavy phases.
class Rendezvous {
 public:
  explicit Rendezvous(int size)
      : slots_(static_cast<std::size_t>(size)), size_(size) {}

  /// Publish this rank's contribution pointer for the upcoming phase. Only
  /// the owning rank writes its slot; the barrier orders the write before
  /// any other rank's read.
  void post(int rank, void* pointer) {
    slots_[static_cast<std::size_t>(rank)] = pointer;
  }

  /// All slot pointers; valid between the two barriers of a collective.
  [[nodiscard]] std::span<void* const> slots() const { return slots_; }

  /// Bind to the job control block (done once by RuntimeState) so waiters
  /// honour cooperative abort and register with the deadlock watchdog.
  void attach(JobControl* control) { control_ = control; }

  /// Generation-counted reusable barrier. Pass the calling rank to register
  /// the wait with the watchdog; rank < 0 waits anonymously. Throws
  /// JobAborted if the job is cooperatively aborted (on entry, while
  /// waiting, or — because an abort wake forfeits the generation count —
  /// on a wake that raced the abort).
  void arrive_and_wait(int rank = -1) {
    if (control_ != nullptr && control_->aborted()) control_->throw_aborted();
    const std::uint64_t my_generation =
        generation_.load(std::memory_order_acquire);
    // The acq_rel increment chains every arrival's prior writes into the
    // last arrival, whose generation bump releases them to all waiters.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == size_) {
      // Safe to reset before the bump: every other rank of this generation
      // has already incremented, and no rank can reach the next barrier
      // until the bump below wakes it.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
    } else {
      BlockGuard guard;
      if (control_ != nullptr && rank >= 0) {
        guard.engage(*control_, rank, BlockKind::Barrier, "barrier", -1, -1);
      }
      while (generation_.load(std::memory_order_acquire) == my_generation) {
        if (control_ != nullptr && control_->aborted()) {
          control_->throw_aborted();
        }
        generation_.wait(my_generation, std::memory_order_acquire);
      }
    }
    if (control_ != nullptr && control_->aborted()) control_->throw_aborted();
  }

  /// Release every waiter after a cooperative abort: std::atomic::wait only
  /// returns on a value change, so the generation is force-bumped. This
  /// forfeits the barrier's count for the current generation — fine, because
  /// a failed job's runtime state is discarded, never reused.
  void abort_wake() {
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
  }

 private:
  std::vector<void*> slots_;
  int size_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  JobControl* control_ = nullptr;
};

}  // namespace vpar::simrt
