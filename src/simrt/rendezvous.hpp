#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace vpar::simrt {

/// Reusable rendezvous primitive backing every collective in the runtime:
/// a generation-counted barrier plus a per-rank slot array through which
/// ranks expose pointers to their contribution.
///
/// Collectives follow the pattern
///   post(rank, &args); arrive_and_wait();   // all slots visible
///   ... read other ranks' slots, do this rank's share ...
///   arrive_and_wait();                      // safe to invalidate args
/// The two barriers make consecutive collectives race-free: nobody can post
/// into generation g+1 until every rank has finished its share of g.
class Rendezvous {
 public:
  explicit Rendezvous(int size) : slots_(static_cast<std::size_t>(size)), size_(size) {}

  /// Publish this rank's contribution pointer for the upcoming phase.
  void post(int rank, void* pointer) {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)] = pointer;
  }

  /// All slot pointers; valid between the two barriers of a collective.
  [[nodiscard]] std::span<void* const> slots() const { return slots_; }

  /// Generation-counted reusable barrier.
  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == size_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<void*> slots_;
  int size_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace vpar::simrt
