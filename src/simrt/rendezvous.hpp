#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace vpar::simrt {

/// Reusable rendezvous primitive backing every collective in the runtime:
/// a generation-counted barrier plus a per-rank slot array through which
/// ranks expose pointers to their contribution.
///
/// Collectives follow the pattern
///   post(rank, &args); arrive_and_wait();   // all slots visible
///   ... read other ranks' slots, do this rank's share ...
///   arrive_and_wait();                      // safe to invalidate args
/// The two barriers make consecutive collectives race-free: nobody can post
/// into generation g+1 until every rank has finished its share of g.
///
/// The barrier is lock-free on arrival: one fetch_add per rank plus a futex
/// sleep (std::atomic::wait) for the non-last arrivals. The mutex+condvar
/// formulation it replaces paid a lock handoff on every wakeup, which
/// dominated barrier-heavy phases.
class Rendezvous {
 public:
  explicit Rendezvous(int size)
      : slots_(static_cast<std::size_t>(size)), size_(size) {}

  /// Publish this rank's contribution pointer for the upcoming phase. Only
  /// the owning rank writes its slot; the barrier orders the write before
  /// any other rank's read.
  void post(int rank, void* pointer) {
    slots_[static_cast<std::size_t>(rank)] = pointer;
  }

  /// All slot pointers; valid between the two barriers of a collective.
  [[nodiscard]] std::span<void* const> slots() const { return slots_; }

  /// Generation-counted reusable barrier.
  void arrive_and_wait() {
    const std::uint64_t my_generation =
        generation_.load(std::memory_order_acquire);
    // The acq_rel increment chains every arrival's prior writes into the
    // last arrival, whose generation bump releases them to all waiters.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == size_) {
      // Safe to reset before the bump: every other rank of this generation
      // has already incremented, and no rank can reach the next barrier
      // until the bump below wakes it.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
    } else {
      while (generation_.load(std::memory_order_acquire) == my_generation) {
        generation_.wait(my_generation, std::memory_order_acquire);
      }
    }
  }

 private:
  std::vector<void*> slots_;
  int size_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace vpar::simrt
