#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace vpar::simrt {

/// Worker-placement policy of the pooled executor (VPAR_AFFINITY seeds it):
///  - Off: workers float wherever the OS scheduler puts them (default).
///  - Compact: rank i pinned to the i-th cpu of the compact order — fill one
///    NUMA node's physical cores before the next, SMT siblings last.
///  - Scatter: rank i pinned to the i-th cpu of the scatter order — physical
///    cores round-robined across NUMA nodes for maximum memory bandwidth.
enum class AffinityMode { Off, Compact, Scatter };

/// Current process-wide affinity mode. Seeded from VPAR_AFFINITY
/// (off|compact|scatter; unknown values warn once and mean off).
[[nodiscard]] AffinityMode affinity_mode();

/// Override the affinity mode (bench A/B probes, tests). Bumps the affinity
/// epoch, so long-lived pool workers re-apply their placement at the next
/// job pickup.
void set_affinity_mode(AffinityMode mode);

[[nodiscard]] const char* to_string(AffinityMode mode);

/// Monotonic epoch incremented by every set_affinity_mode call. Workers
/// compare it against a thread-local copy to re-apply placement only when
/// the policy actually changed — steady state pays two relaxed loads per
/// job, not a syscall.
[[nodiscard]] std::uint64_t affinity_epoch();

/// True when this build can actually pin threads (Linux). The portable
/// no-op shim reports pins as skipped instead.
[[nodiscard]] bool pinning_supported();

/// Worker slots that map to distinct cpus under the host topology (the same
/// count for compact and scatter — they order the cpus differently but both
/// use each cpu once). Slots at or beyond this stay unpinned.
[[nodiscard]] int pinnable_slots();

/// Outcome of apply_affinity for one thread.
struct PinResult {
  bool pinned = false;
  int cpu = -1;
  int node = -1;
};

/// Apply the current affinity mode to the calling thread as pin slot `slot`:
/// pin to the slot's cpu (Compact/Scatter, slot in range), or restore the
/// full cpu mask (Off, or out-of-range slot — oversubscribed pools degrade
/// to floating workers, counted in locality.pin_skipped). Updates the
/// thread's cached NUMA node for same-node chunk preference.
PinResult apply_affinity(int slot);

/// NUMA node this thread was pinned to, or -1 when unpinned/unknown. Used
/// by the parallel_for chunk server to prefer same-node work.
[[nodiscard]] int current_node();

/// Touch every page of `memory` with a value-preserving volatile write so
/// the pages are faulted in (and, under first-touch NUMA placement, owned)
/// by the calling thread. Counts locality.first_touch_bytes.
void first_touch(std::span<std::byte> memory);

/// Record `bytes` of owner-thread first-touch placement done elsewhere
/// (e.g. container construction on the owning rank's worker).
void count_first_touch(std::size_t bytes);

/// Count a helper's parallel_for chunk claim as node-local or remote
/// relative to the loop owner's node (unknown nodes count as local — with
/// affinity off there is no placement to defeat).
void count_helper_claim(int owner_node, int helper_node);

/// Epoch-guarded worker-thread refresh, called at job pickup: re-applies
/// affinity when the mode changed and warms this thread's arena front cache
/// per the active ArenaPolicy's warm targets (first-touch: the blocks are
/// freshly allocated and zeroed on this thread). Returns the pin outcome of
/// the affinity step ({} when nothing changed).
PinResult refresh_worker_locality(int slot);

}  // namespace vpar::simrt
