#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "simrt/runtime.hpp"
#include "simrt/transport.hpp"

namespace vpar::simrt {

/// Everything one rank process needs to join a multi-process job, parsed
/// from the environment the launcher (scripts/vpar_launch) exports:
///
///   VPAR_TRANSPORT          shm | socket (inproc => not distributed)
///   VPAR_RANK               this process's rank in [0, world)
///   VPAR_WORLD              team size
///   VPAR_SESSION_DIR        per-job scratch dir (socket endpoints, shm name)
///   VPAR_TCP_BASE           socket backend: loopback TCP instead of Unix
///                           sockets, rank i listening on base + i
///   VPAR_SHM_RING           shm backend: per-direction ring bytes
///   VPAR_HEARTBEAT_MS       peer-failure detector beacon period
///   VPAR_PEER_TIMEOUT_MS    silence past this => PeerLost (0 disables)
///   VPAR_CONNECT_TIMEOUT_MS mesh/segment bring-up bound
struct DistConfig {
  TransportKind kind = TransportKind::Inproc;
  int rank = 0;
  int world = 1;
  std::string session_dir;
  int tcp_base = 0;
  std::size_t shm_ring_bytes = 256 * 1024;
  std::chrono::milliseconds heartbeat{200};
  std::chrono::milliseconds peer_timeout{2'000};
  std::chrono::milliseconds connect_timeout{10'000};
};

/// Parse the distributed environment. kind == Inproc (with defaulted fields)
/// when VPAR_TRANSPORT selects the in-process backend; throws TransportError
/// on inconsistent settings (missing rank/world, rank out of range, no
/// endpoint configuration for the socket backend).
[[nodiscard]] DistConfig dist_config_from_env();

/// True when this process was launched as one rank of a multi-process job
/// (VPAR_TRANSPORT=shm|socket plus VPAR_RANK/VPAR_WORLD). Read once and
/// cached — the decision must not flip mid-process.
[[nodiscard]] bool distributed_env_active();

/// This process's rank / the team size under distributed_env_active();
/// -1 / 0 otherwise.
[[nodiscard]] int distributed_rank();
[[nodiscard]] int distributed_world();

/// True while the calling thread is inside a distributed rank body: nested
/// simrt::run calls from there execute in-process (the session cannot host a
/// job within a job).
[[nodiscard]] bool in_distributed_body();

/// Run `body` as this process's rank of a `options.size`-rank multi-process
/// job. The first call brings up the transport (socket mesh or shm segment,
/// blocking until all ranks arrive); subsequent calls reuse the session, so
/// a program of several run() calls pays bring-up once. Every rank process
/// must make the same sequence of run() calls with the same sizes.
///
/// Semantics relative to the in-process executor:
///  - the body runs on the calling thread (one rank per process);
///  - watchdog/deadline supervision watches this rank only and folds the
///    transport's peer-liveness report into any timeout report;
///  - a peer process dying mid-job surfaces as PeerLost naming the rank;
///  - the returned RunResult carries this rank's recorder only (merged ==
///    per_rank[rank]); cross-rank profile merging needs a gather the caller
///    owns.
///
/// simrt::run() dispatches here automatically when the distributed
/// environment is active and options.size == distributed_world().
RunResult run_distributed(const RunOptions& options,
                          const std::function<void(Communicator&)>& body);

}  // namespace vpar::simrt
