#include "simrt/communicator.hpp"

namespace vpar::simrt {

void Communicator::raw_send(int dest, Payload payload, int tag) {
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  state_->mailboxes[static_cast<std::size_t>(dest)].deliver(std::move(msg));
}

Message Communicator::raw_receive(int source, int tag) {
  return state_->mailboxes[static_cast<std::size_t>(rank_)].receive(source, tag);
}

void Communicator::send_bytes(int dest, std::span<const std::byte> data, int tag) {
  check_dest_tag(dest, tag);
  raw_send(dest, Payload::copy_of(data), tag);
  perf::record_comm(perf::CommKind::PointToPoint, 1.0, static_cast<double>(data.size()));
}

Request Communicator::isend_bytes(int dest, std::span<const std::byte> data, int tag) {
  // Buffered semantics: the payload is captured on post, so the operation is
  // already complete and the returned handle is a satisfied request.
  send_bytes(dest, data, tag);
  return Request();
}

Request Communicator::irecv_bytes(int source, std::span<std::byte> data, int tag) {
  if (tag < kAnyTag) throw std::runtime_error("recv: bad tag");
  return Request(
      state_->mailboxes[static_cast<std::size_t>(rank_)].post_recv(source, tag, data));
}

void Communicator::recv_bytes(int source, std::span<std::byte> data, int tag) {
  irecv_bytes(source, data, tag).wait();
}

Message Communicator::recv_message(int source, int tag) {
  if (tag < kAnyTag) throw std::runtime_error("recv: bad tag");
  return raw_receive(source, tag);
}

void Communicator::barrier() {
  state_->rendezvous.arrive_and_wait();
  perf::record_comm(perf::CommKind::Barrier, 1.0, 0.0);
}

}  // namespace vpar::simrt
