#include "simrt/communicator.hpp"

#include "trace/trace.hpp"

namespace vpar::simrt {

void Communicator::raw_send(int dest, Payload payload, int tag) {
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  // Checksum the payload *before* fault injection: an injected in-transit
  // bit-flip must be detectable against the sender's intended bytes.
  if (state_->control.checksums()) {
    msg.checksum = fnv1a64(payload.bytes());
    msg.checksummed = true;
  }
  if (injector_.enabled()) {
    injector_.apply_send_faults(payload.mutable_bytes(), tag, msg.reorder);
    if (injector_.should_drop(tag)) return;  // lost in transit, never delivered
  }
  if (trace::enabled()) {
    msg.trace_id = trace::next_flow_id();
    trace::emit_flow_begin("msg", msg.trace_id);
  }
  msg.payload = std::move(payload);
  state_->transport->send(dest, std::move(msg));
}

Message Communicator::raw_receive(int source, int tag, const char* what) {
  return state_->mailboxes[static_cast<std::size_t>(rank_)].receive(source, tag,
                                                                    what);
}

void Communicator::send_bytes(int dest, std::span<const std::byte> data, int tag) {
  check_dest_tag(dest, tag);
  trace::TraceSpan span("comm.send", dest, static_cast<std::int64_t>(data.size()));
  begin_op("send");
  raw_send(dest, Payload::copy_of(data), tag);
  perf::record_comm(perf::CommKind::PointToPoint, 1.0, static_cast<double>(data.size()));
}

Request Communicator::isend_bytes(int dest, std::span<const std::byte> data, int tag) {
  // Buffered semantics: the payload is captured on post, so the operation is
  // already complete and the returned handle is a satisfied request.
  send_bytes(dest, data, tag);
  return Request();
}

Request Communicator::irecv_bytes(int source, std::span<std::byte> data, int tag) {
  if (tag < kAnyTag) throw std::runtime_error("recv: bad tag");
  trace::TraceSpan span("comm.irecv", source, static_cast<std::int64_t>(data.size()));
  begin_op("irecv");
  return Request(
      state_->mailboxes[static_cast<std::size_t>(rank_)].post_recv(source, tag, data));
}

void Communicator::recv_bytes(int source, std::span<std::byte> data, int tag) {
  irecv_bytes(source, data, tag).wait();
}

Message Communicator::recv_message(int source, int tag) {
  if (tag < kAnyTag) throw std::runtime_error("recv: bad tag");
  trace::TraceSpan span("comm.recv", source, tag);
  begin_op("recv");
  return raw_receive(source, tag);
}

void Communicator::barrier() {
  const int P = size();
  trace::TraceSpan span("comm.barrier", P);
  begin_op("barrier");
  if (P <= kBarrierRendezvousMax && !state_->multiprocess()) {
    // Small teams: the centralized rendezvous is one shared cacheline and a
    // single sleep/wake per rank; measured faster than log-depth message
    // rounds up to ~8 ranks on the harness host (the algorithm switch by
    // communicator size that production MPI barriers also make).
    state_->rendezvous.arrive_and_wait(rank_);
  } else {
    // Dissemination barrier, ceil(log2 P) rounds: in round k every rank
    // signals (rank + 2^k) mod P and waits on (rank - 2^k) mod P, so each
    // rank has transitively heard from all P ranks when the last round
    // completes. Unlike the O(P) rendezvous there is no global serialization
    // point — each round is an independent pairwise handoff over the
    // mailboxes. Consecutive barriers cannot cross-match: each (sender,
    // receiver) pair occurs in at most one round per barrier (distinct
    // powers of two below P are distinct mod P), and the mailbox preserves
    // FIFO order per (sender, tag).
    for (int step = 1; step < P; step <<= 1) {
      raw_send((rank_ + step) % P, Payload{}, kTagBarrier);
      (void)raw_receive((rank_ - step + P) % P, kTagBarrier, "barrier");
    }
  }
  perf::record_comm(perf::CommKind::Barrier, 1.0, 0.0);
}

}  // namespace vpar::simrt
