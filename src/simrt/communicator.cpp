#include "simrt/communicator.hpp"

namespace vpar::simrt {

void Communicator::send_bytes(int dest, std::span<const std::byte> data, int tag) {
  if (dest < 0 || dest >= size()) throw std::runtime_error("send: bad destination rank");
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  state_->mailboxes[static_cast<std::size_t>(dest)].deliver(std::move(msg));
  perf::record_comm(perf::CommKind::PointToPoint, 1.0, static_cast<double>(data.size()));
}

void Communicator::recv_bytes(int source, std::span<std::byte> data, int tag) {
  Message msg = state_->mailboxes[static_cast<std::size_t>(rank_)].receive(source, tag);
  if (msg.payload.size() != data.size()) {
    throw std::runtime_error("recv: payload size mismatch");
  }
  std::memcpy(data.data(), msg.payload.data(), data.size());
}

void Communicator::barrier() {
  state_->rendezvous.arrive_and_wait();
  perf::record_comm(perf::CommKind::Barrier, 1.0, 0.0);
}

}  // namespace vpar::simrt
