#include "simrt/transport_shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace vpar::simrt {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared meter names with the socket backend: the transport dashboard does
/// not care which multi-process pipe carried the frames.
struct TransportMeters {
  trace::Counter& sent_frames =
      trace::Metrics::instance().counter("transport.sent_frames");
  trace::Counter& sent_bytes =
      trace::Metrics::instance().counter("transport.sent_bytes");
  trace::Counter& recv_frames =
      trace::Metrics::instance().counter("transport.recv_frames");
  trace::Counter& recv_bytes =
      trace::Metrics::instance().counter("transport.recv_bytes");
  trace::Counter& peers_lost =
      trace::Metrics::instance().counter("transport.peers_lost");
};

TransportMeters& meters() {
  static TransportMeters m;
  return m;
}

constexpr std::size_t align64(std::size_t n) { return (n + 63) & ~std::size_t{63}; }

/// Ceiling on one frame's payload accepted from a ring: a corrupted length
/// would otherwise make the reassembler wait forever for bytes that never
/// come. Far above any payload the runtime produces.
constexpr std::uint64_t kMaxShmPayload = std::uint64_t{1} << 31;

}  // namespace

/// Per-rank liveness slot in the segment header. Cacheline-aligned so one
/// rank's heartbeat stores never bounce another rank's slot.
struct alignas(64) ShmRankSlot {
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint32_t> attached;
  std::atomic<std::uint32_t> finished;
  std::atomic<std::uint32_t> failed;
};

struct ShmSegment {
  std::atomic<std::uint32_t> magic;  // kFrameMagic, stored last by the creator
  std::uint32_t version;
  std::int32_t world;
  std::uint32_t pad;
  std::uint64_t ring_bytes;
  ShmRankSlot ranks[kShmMaxWorld];
};

/// SPSC byte ring. head counts bytes ever produced, tail bytes ever
/// consumed; both only grow, indices are taken modulo the capacity. The
/// producer's release store of head publishes the data; the consumer's
/// release store of tail publishes the free space.
struct alignas(64) ShmRing {
  std::atomic<std::uint64_t> head;
  std::atomic<std::uint64_t> tail;
  // Ring storage (config.ring_bytes bytes) follows this header in the
  // segment; data() reaches past the struct.
  [[nodiscard]] std::byte* data() {
    return reinterpret_cast<std::byte*>(this) + align64(sizeof(ShmRing));
  }
};

namespace {

constexpr std::size_t segment_header_bytes() {
  return align64(sizeof(ShmSegment));
}

std::size_t ring_block_bytes(std::size_t ring_bytes) {
  return align64(align64(sizeof(ShmRing)) + ring_bytes);
}

std::size_t segment_bytes(int world, std::size_t ring_bytes) {
  return segment_header_bytes() +
         static_cast<std::size_t>(world) * static_cast<std::size_t>(world) *
             ring_block_bytes(ring_bytes);
}

}  // namespace

ShmTransport::ShmTransport(const Config& config, std::vector<Mailbox>& mailboxes,
                           JobControl& control)
    : config_(config), mailboxes_(&mailboxes), control_(&control) {
  if (config_.world < 1 || config_.world > kShmMaxWorld || config_.rank < 0 ||
      config_.rank >= config_.world) {
    throw TransportError("shm transport: bad rank/world (" +
                         std::to_string(config_.rank) + "/" +
                         std::to_string(config_.world) + ", max world " +
                         std::to_string(kShmMaxWorld) + ")");
  }
  if (config_.name.empty() || config_.name[0] != '/') {
    throw TransportError("shm transport: segment name must start with '/'");
  }
  if (config_.ring_bytes < 4096) config_.ring_bytes = 4096;
  config_.ring_bytes = align64(config_.ring_bytes);

  peers_.resize(static_cast<std::size_t>(config_.world));
  for (auto& p : peers_) p = std::make_unique<PeerWatch>();

  create_or_attach();

  // Announce this rank, then wait for the whole team: a send into a ring
  // whose consumer never arrives must fail at bring-up, not hang mid-job.
  segment_->ranks[config_.rank].attached.store(1, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect_timeout;
  for (int r = 0; r < config_.world; ++r) {
    while (segment_->ranks[r].attached.load(std::memory_order_acquire) == 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw TransportError("shm transport: rank " + std::to_string(r) +
                             " did not attach within the connect timeout");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const std::uint64_t now = now_ns();
  for (auto& p : peers_) p->last_change_ns = now;
  poller_ = std::thread([this] { poll_loop(); });
}

ShmTransport::~ShmTransport() {
  if (segment_ != nullptr) {
    auto& slot = segment_->ranks[config_.rank];
    if (local_failure_.load(std::memory_order_acquire)) {
      slot.failed.store(1, std::memory_order_release);
    } else {
      slot.finished.store(1, std::memory_order_release);
    }
  }
  stopping_.store(true, std::memory_order_release);
  if (poller_.joinable()) poller_.join();
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  if (shm_fd_ >= 0) ::close(shm_fd_);
  if (creator_) ::shm_unlink(config_.name.c_str());
}

void ShmTransport::create_or_attach() {
  map_bytes_ = segment_bytes(config_.world, config_.ring_bytes);

  if (config_.rank == 0) {
    // Creator: claim the name exclusively (unlinking any stale segment a
    // crashed previous job left behind), size it, init, publish via magic.
    ::shm_unlink(config_.name.c_str());
    shm_fd_ = ::shm_open(config_.name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (shm_fd_ < 0) {
      throw TransportError("shm transport: shm_open(create " + config_.name +
                           ") failed (" + std::strerror(errno) + ")");
    }
    creator_ = true;
    if (::ftruncate(shm_fd_, static_cast<off_t>(map_bytes_)) < 0) {
      throw TransportError("shm transport: ftruncate(" +
                           std::to_string(map_bytes_) + ") failed (" +
                           std::strerror(errno) + ")");
    }
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                  shm_fd_, 0);
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      throw TransportError("shm transport: mmap failed (" +
                           std::string(std::strerror(errno)) + ")");
    }
    segment_ = static_cast<ShmSegment*>(map_);
    // ftruncate zero-fills; the atomics' zero representation is their
    // initialized state. Fill the geometry, then publish with the magic.
    segment_->version = kFrameVersion;
    segment_->world = config_.world;
    segment_->ring_bytes = config_.ring_bytes;
    segment_->magic.store(kFrameMagic, std::memory_order_release);
    return;
  }

  // Attacher: retry until the creator has published the segment.
  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect_timeout;
  for (;;) {
    shm_fd_ = ::shm_open(config_.name.c_str(), O_RDWR, 0600);
    if (shm_fd_ >= 0) {
      struct stat st{};
      if (::fstat(shm_fd_, &st) == 0 &&
          static_cast<std::size_t>(st.st_size) >= map_bytes_) {
        map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                      shm_fd_, 0);
        if (map_ == MAP_FAILED) {
          map_ = nullptr;
          throw TransportError("shm transport: mmap failed (" +
                               std::string(std::strerror(errno)) + ")");
        }
        segment_ = static_cast<ShmSegment*>(map_);
        if (segment_->magic.load(std::memory_order_acquire) == kFrameMagic) {
          break;
        }
        // Mapped before the creator published; unmap and retry.
        ::munmap(map_, map_bytes_);
        map_ = nullptr;
        segment_ = nullptr;
      }
      ::close(shm_fd_);
      shm_fd_ = -1;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw TransportError("shm transport: segment " + config_.name +
                           " not published within the connect timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  if (segment_->world != config_.world ||
      segment_->ring_bytes != config_.ring_bytes) {
    throw TransportError(
        "shm transport: geometry mismatch (segment world " +
        std::to_string(segment_->world) + " ring " +
        std::to_string(segment_->ring_bytes) + ", expected world " +
        std::to_string(config_.world) + " ring " +
        std::to_string(config_.ring_bytes) + ")");
  }
}

ShmRing& ShmTransport::ring_between(int source, int dest) const {
  auto* base = static_cast<std::byte*>(map_) + segment_header_bytes();
  const std::size_t index =
      static_cast<std::size_t>(source) * static_cast<std::size_t>(config_.world) +
      static_cast<std::size_t>(dest);
  return *reinterpret_cast<ShmRing*>(base +
                                  index * ring_block_bytes(config_.ring_bytes));
}

void ShmTransport::ring_write(int dest, ShmRing& ring,
                              std::span<const std::byte> data) {
  PeerWatch& watch = *peers_[static_cast<std::size_t>(dest)];
  const std::size_t cap = config_.ring_bytes;
  std::byte* storage = ring.data();
  while (!data.empty()) {
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
    const std::size_t space = cap - static_cast<std::size_t>(head - tail);
    if (space == 0) {
      // Full ring = backpressure. A consumer that died stops draining: the
      // liveness detector flips `lost` and releases this wait as a failure.
      if (watch.lost.load(std::memory_order_acquire)) {
        throw TransportError("send: rank " + std::to_string(dest) +
                             " is lost (ring not draining)");
      }
      if (stopping_.load(std::memory_order_acquire)) {
        throw TransportError("send: transport shutting down");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    const std::size_t n = std::min(space, data.size());
    const std::size_t at = static_cast<std::size_t>(head % cap);
    const std::size_t first = std::min(n, cap - at);
    std::memcpy(storage + at, data.data(), first);
    if (n > first) std::memcpy(storage, data.data() + first, n - first);
    ring.head.store(head + n, std::memory_order_release);
    data = data.subspan(n);
  }
}

void ShmTransport::send(int dest, Message msg) {
  if (dest == config_.rank) {
    // Self-delivery (P=1 collectives): no ring, straight to the inbox.
    (*mailboxes_)[static_cast<std::size_t>(dest)].deliver(std::move(msg));
    return;
  }
  PeerWatch& watch = *peers_[static_cast<std::size_t>(dest)];
  if (watch.lost.load(std::memory_order_acquire)) {
    throw TransportError("send: rank " + std::to_string(dest) +
                         " is lost (peer process died)");
  }
  const FrameHeader header = encode_frame(msg);
  ShmRing& ring = ring_between(config_.rank, dest);
  {
    std::lock_guard lock(send_mutex_);
    ring_write(dest, ring,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(&header), sizeof header));
    ring_write(dest, ring, msg.payload.bytes());
  }
  TransportMeters& m = meters();
  m.sent_frames.add();
  m.sent_bytes.add(sizeof header + msg.payload.size());
}

std::size_t ShmTransport::poll_peer(int source) {
  PeerWatch& watch = *peers_[static_cast<std::size_t>(source)];
  ShmRing& ring = ring_between(source, config_.rank);
  const std::size_t cap = config_.ring_bytes;
  const std::byte* storage = ring.data();

  // 1. Move whatever the producer has published into the reassembly buffer.
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  if (avail > 0) {
    const std::size_t old = watch.inbound.size();
    watch.inbound.resize(old + avail);
    const std::size_t at = static_cast<std::size_t>(tail % cap);
    const std::size_t first = std::min(avail, cap - at);
    std::memcpy(watch.inbound.data() + old, storage + at, first);
    if (avail > first) {
      std::memcpy(watch.inbound.data() + old + first, storage, avail - first);
    }
    ring.tail.store(tail + avail, std::memory_order_release);
  }

  // 2. Parse every complete frame sitting in the buffer.
  TransportMeters& m = meters();
  for (;;) {
    const std::size_t have = watch.inbound.size() - watch.consumed;
    if (have < sizeof(FrameHeader)) break;
    FrameHeader header;
    std::memcpy(&header, watch.inbound.data() + watch.consumed, sizeof header);
    if (header.magic != kFrameMagic || header.payload_bytes > kMaxShmPayload) {
      throw TransportError("shm frame: stream desynchronized (source " +
                           std::to_string(source) + ")");
    }
    if (have < sizeof header + header.payload_bytes) break;
    const std::span<const std::byte> payload(
        watch.inbound.data() + watch.consumed + sizeof header,
        static_cast<std::size_t>(header.payload_bytes));
    verify_frame(header, payload);
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Data:
        m.recv_frames.add();
        m.recv_bytes.add(sizeof header + payload.size());
        (*mailboxes_)[static_cast<std::size_t>(config_.rank)].deliver(
            decode_message(header, payload));
        break;
      case FrameType::Heartbeat:
      case FrameType::Goodbye:
        break;  // liveness rides in the segment header, not in frames
      case FrameType::Hello:
        throw TransportError("shm frame: unexpected Hello");
    }
    watch.consumed += sizeof header + static_cast<std::size_t>(header.payload_bytes);
  }

  // 3. Compact once the parsed prefix dominates the buffer.
  if (watch.consumed > 0 && watch.consumed * 2 >= watch.inbound.size()) {
    watch.inbound.erase(watch.inbound.begin(),
                        watch.inbound.begin() +
                            static_cast<std::ptrdiff_t>(watch.consumed));
    watch.consumed = 0;
  }
  return avail;
}

void ShmTransport::check_liveness(std::uint64_t now) {
  for (int r = 0; r < config_.world; ++r) {
    if (r == config_.rank) continue;
    PeerWatch& watch = *peers_[static_cast<std::size_t>(r)];
    if (watch.lost.load(std::memory_order_relaxed) ||
        watch.finished.load(std::memory_order_relaxed)) {
      continue;
    }
    const ShmRankSlot& slot = segment_->ranks[r];
    if (slot.failed.load(std::memory_order_acquire) != 0) {
      mark_lost(r, "rank reported failure");
      continue;
    }
    if (slot.finished.load(std::memory_order_acquire) != 0) {
      watch.finished.store(true, std::memory_order_release);
      continue;
    }
    const std::uint64_t beat = slot.heartbeat.load(std::memory_order_acquire);
    if (beat != watch.last_beat) {
      watch.last_beat = beat;
      watch.last_change_ns = now;
      continue;
    }
    if (config_.peer_timeout.count() > 0) {
      const auto silence = std::chrono::nanoseconds(now - watch.last_change_ns);
      if (silence > config_.peer_timeout) {
        mark_lost(r, "heartbeat counter stalled for " +
                         std::to_string(std::chrono::duration_cast<
                                            std::chrono::milliseconds>(silence)
                                            .count()) +
                         " ms");
      }
    }
  }
}

void ShmTransport::poll_loop() {
  auto& my_beat = segment_->ranks[config_.rank].heartbeat;
  std::uint64_t last_beat_ns = 0;
  std::uint64_t last_check_ns = 0;
  const auto beat_period = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               config_.heartbeat)
                               .count();
  try {
    while (!stopping_.load(std::memory_order_acquire)) {
      std::size_t moved = 0;
      for (int r = 0; r < config_.world; ++r) {
        if (r == config_.rank) continue;
        if (peers_[static_cast<std::size_t>(r)]->lost.load(
                std::memory_order_relaxed)) {
          continue;
        }
        try {
          moved += poll_peer(r);
        } catch (const std::exception& e) {
          mark_lost(r, e.what());
        }
      }
      const std::uint64_t now = now_ns();
      // The heartbeat period paces the counter bumps and liveness sampling;
      // the poll itself runs much hotter so latency stays low.
      if (now - last_beat_ns >=
          static_cast<std::uint64_t>(std::max<long long>(beat_period / 4, 1))) {
        my_beat.fetch_add(1, std::memory_order_release);
        last_beat_ns = now;
      }
      if (now - last_check_ns >= static_cast<std::uint64_t>(beat_period)) {
        check_liveness(now);
        last_check_ns = now;
      }
      if (moved == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  } catch (const std::exception& e) {
    // A poller that dies silently would freeze the whole inbound side.
    if (!stopping_.load(std::memory_order_acquire)) {
      control_->abort(std::string("shm transport poller failed: ") + e.what());
    }
  }
}

void ShmTransport::mark_lost(int peer_rank, const std::string& why) {
  PeerWatch& watch = *peers_[static_cast<std::size_t>(peer_rank)];
  if (watch.lost.exchange(true, std::memory_order_acq_rel)) return;
  meters().peers_lost.add();
  trace::emit_instant("transport.peer_lost", peer_rank);
  const std::string reason = "peer lost: rank " + std::to_string(peer_rank) +
                             " (" + why + ")\n" + peer_report();
  {
    std::lock_guard lock(failure_mutex_);
    if (failure_ == nullptr) {
      failure_ = std::make_exception_ptr(PeerLost({peer_rank}, reason));
    }
  }
  control_->abort(reason);
}

std::vector<int> ShmTransport::lost_peers() const {
  std::vector<int> lost;
  for (int r = 0; r < config_.world; ++r) {
    if (r == config_.rank) continue;
    if (peers_[static_cast<std::size_t>(r)]->lost.load(
            std::memory_order_acquire)) {
      lost.push_back(r);
    }
  }
  return lost;
}

std::string ShmTransport::peer_report() const {
  const std::uint64_t now = now_ns();
  std::string report = "peer liveness (rank " + std::to_string(config_.rank) +
                       " of " + std::to_string(config_.world) + ", shm):";
  for (int r = 0; r < config_.world; ++r) {
    if (r == config_.rank) continue;
    const PeerWatch& watch = *peers_[static_cast<std::size_t>(r)];
    report += "\n  rank " + std::to_string(r) + ": ";
    if (watch.lost.load(std::memory_order_acquire)) {
      report += "LOST";
    } else if (watch.finished.load(std::memory_order_acquire)) {
      report += "finished";
    } else {
      report += "alive, heartbeat advanced " +
                std::to_string((now - watch.last_change_ns) / 1'000'000) +
                " ms ago";
    }
  }
  return report;
}

std::exception_ptr ShmTransport::failure() const {
  std::lock_guard lock(failure_mutex_);
  return failure_;
}

}  // namespace vpar::simrt
