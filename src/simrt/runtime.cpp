#include "simrt/runtime.hpp"

#include <stdexcept>

namespace vpar::simrt {

namespace {

/// True on threads that are executor workers: a nested run() from inside a
/// job must not try to borrow the pool it is running on.
thread_local bool t_in_worker = false;

/// Legacy spawn-per-run path, kept as the nested-run fallback.
RunResult run_spawned(int size, const std::function<void(Communicator&)>& body) {
  RuntimeState state(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([&, rank] {
      perf::ScopedRecorder scoped(state.recorders[static_cast<std::size_t>(rank)]);
      Communicator comm(state, rank);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // A dead rank would deadlock peers waiting in barriers/receives;
        // there is no clean recovery, so peers relying on this rank will
        // hang only if the test itself is broken. We still join below.
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunResult result;
  result.per_rank = std::move(state.recorders);
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

}  // namespace

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : workers_) t.join();
}

int Executor::workers() {
  std::lock_guard lock(mutex_);
  return static_cast<int>(workers_.size());
}

Executor& Executor::shared() {
  // Meyers singleton: destroyed (and its workers joined) during static
  // destruction, so sanitizer runs see a clean teardown. The payloads its
  // cached mailboxes may still hold are returned to the deliberately leaked
  // BufferArena, which is guaranteed to outlive this.
  static Executor executor;
  return executor;
}

void Executor::worker_loop(int rank, std::uint64_t seen) {
  t_in_worker = true;
  for (;;) {
    const std::function<void(Communicator&)>* body = nullptr;
    RuntimeState* state = nullptr;
    int size = 0;
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = job_body_;
      state = job_state_;
      size = job_size_;
    }
    if (rank >= size) continue;  // this job is smaller than the pool

    {
      perf::ScopedRecorder scoped(state->recorders[static_cast<std::size_t>(rank)]);
      Communicator comm(*state, rank);
      try {
        (*body)(comm);
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        // As in the spawned path: a dead rank deadlocks peers only if the
        // job itself is broken; the remaining ranks drain normally.
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

RunResult Executor::run(int size, const std::function<void(Communicator&)>& body) {
  if (size <= 0) throw std::runtime_error("simrt::run: size must be positive");
  std::lock_guard serial(run_mutex_);

  if (state_ == nullptr || state_->size != size) {
    state_ = std::make_unique<RuntimeState>(size);
  } else {
    state_->reset();
  }

  {
    std::lock_guard lock(mutex_);
    // Grow the pool lazily. New workers capture the *current* generation as
    // already-seen so they park until the job below is published.
    while (static_cast<int>(workers_.size()) < size) {
      const int rank = static_cast<int>(workers_.size());
      workers_.emplace_back(
          [this, rank, gen = generation_] { worker_loop(rank, gen); });
    }
    job_body_ = &body;
    job_state_ = state_.get();
    job_size_ = size;
    remaining_ = size;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_job_.notify_all();
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }

  if (first_error_) {
    // A failed job may have left messages or registry entries behind; drop
    // the cached state so the next run starts from scratch. The pool's
    // workers are already parked again and stay usable.
    state_.reset();
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }

  RunResult result;
  result.per_rank.assign(state_->recorders.begin(), state_->recorders.end());
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

RunResult run(int size, const std::function<void(Communicator&)>& body) {
  if (size <= 0) throw std::runtime_error("simrt::run: size must be positive");
  if (t_in_worker) return run_spawned(size, body);
  return Executor::shared().run(size, body);
}

}  // namespace vpar::simrt
