#include "simrt/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "simrt/arena_policy.hpp"
#include "simrt/distributed.hpp"
#include "simrt/locality.hpp"
#include "trace/chrome_export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace vpar::simrt {

/// Chunk server + completion latch of one parallel_for. The owner registers
/// it in Executor::loop_tasks_, everyone (owner + idle helpers) claims
/// grain-aligned chunks under `m`, and the owner latches on `cv` until
/// in_flight helpers have drained. Lock order is Executor::mutex_ -> m,
/// never the reverse.
struct LoopTask {
  std::mutex m;
  std::condition_variable cv;         // owner's completion latch
  std::size_t next = 0;               // first unclaimed iteration
  std::size_t end = 0;
  std::size_t grain = 1;
  int owner = -1;                     // issuing rank (trace attribution)
  int owner_node = -1;                // owner's NUMA node (-1 = unpinned)
  int in_flight = 0;                  // helpers currently inside the body
  std::exception_ptr error;           // first chunk failure (wins)
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::map<int, perf::Recorder> partials;  // helper pool rank -> records
};

namespace {

/// True on threads that are executor workers: a nested run() from inside a
/// job must not try to borrow the pool it is running on.
thread_local bool t_in_worker = false;

/// Loop-service context of the rank body executing on this worker thread:
/// set around the body in worker_loop so parallel_for can find the job's
/// control block and the owning rank. Null on helpers, on run_spawned
/// threads, and outside the runtime — parallel_for degrades to serial there.
thread_local RuntimeState* t_loop_state = nullptr;
thread_local int t_loop_rank = -1;

/// True while this thread executes a parallel_for body chunk (owner or
/// helper): a nested parallel_for inside a chunk must run serial rather than
/// re-enter the chunk server.
thread_local bool t_in_loop_chunk = false;

HybridMode env_hybrid_mode() {
  const char* s = std::getenv("VPAR_HYBRID");
  if (s == nullptr) return HybridMode::Auto;
  const std::string v(s);
  if (v == "on" || v == "1") return HybridMode::On;
  if (v == "off" || v == "0") return HybridMode::Off;
  return HybridMode::Auto;
}

/// Process-wide hybrid engagement policy (see simrt/parallel.hpp); the
/// VPAR_HYBRID environment variable seeds it, set_hybrid_threading overrides.
/// Relaxed atomic: policy flips are test/bench-scoped, not synchronization
/// points.
std::atomic<HybridMode> g_hybrid_mode{env_hybrid_mode()};

/// Should a parallel_for issued by a rank of a `job_size`-rank job try to
/// engage idle helpers? (The idle-helper count is checked separately.)
bool hybrid_policy_engages(int job_size) {
  switch (g_hybrid_mode.load(std::memory_order_relaxed)) {
    case HybridMode::On: return true;
    case HybridMode::Off: return false;
    case HybridMode::Auto:
      // Helpers only pay off when the host has spare cores beyond the
      // active ranks; otherwise they just contend with the team.
      return std::thread::hardware_concurrency() >
             static_cast<unsigned>(job_size);
  }
  return false;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// SplitMix64 finalizer (same family the fault injector uses): cheap,
/// well-mixed, deterministic — drives the seeded retry jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Environment-armed default watchdog (VPAR_WATCHDOG_MS): applied to every
/// job whose options do not arm one explicitly. Read once per process.
std::chrono::milliseconds env_watchdog() {
  static const std::chrono::milliseconds value = [] {
    const char* s = std::getenv("VPAR_WATCHDOG_MS");
    const long ms = (s != nullptr) ? std::strtol(s, nullptr, 10) : 0;
    return std::chrono::milliseconds(ms > 0 ? ms : 0);
  }();
  return value;
}

RunOptions with_defaults(RunOptions options) {
  if (options.watchdog.count() <= 0) options.watchdog = env_watchdog();
  return options;
}

/// Between-scan state of the deadlock detector: the last sampled per-rank
/// seq counters. A deadlock verdict requires the counters to be stable
/// across two scans (one wait chunk apart) so a rank caught between a
/// notify and its wake-up is never misread as stuck.
struct WatchdogMemory {
  std::vector<std::uint64_t> seqs;
  bool primed = false;
};

/// One deadlock scan over the job's blocked-state registry. Returns the
/// full per-rank report if the job is deadlocked (every unfinished rank
/// blocked, no progress across two scans, newest block older than the
/// timeout), else an empty string.
std::string deadlock_report(RuntimeState& state, WatchdogMemory& memory,
                            std::chrono::nanoseconds timeout,
                            std::uint64_t generation) {
  const int P = state.size;
  std::vector<std::uint64_t> seqs(static_cast<std::size_t>(P));
  bool any_blocked = false;
  std::uint64_t newest = 0;
  for (int r = 0; r < P; ++r) {
    const auto& s = state.control.status(r);
    seqs[static_cast<std::size_t>(r)] = s.seq.load(std::memory_order_acquire);
    if (s.finished.load(std::memory_order_acquire)) continue;
    if (s.blocked.load(std::memory_order_acquire) == 0) {
      memory.primed = false;  // someone is running: the job is alive
      return {};
    }
    any_blocked = true;
    newest = std::max(newest, s.since_ns.load(std::memory_order_relaxed));
  }
  if (!any_blocked) return {};  // everyone finished; the job is draining
  if (!memory.primed || memory.seqs != seqs) {
    memory.seqs = std::move(seqs);
    memory.primed = true;
    return {};
  }
  const std::uint64_t now = now_ns();
  if (now - newest < static_cast<std::uint64_t>(timeout.count())) return {};

  auto ms_since = [now](std::uint64_t since) {
    return std::to_string((now - since) / 1'000'000);
  };
  std::string report = "deadlock watchdog: no progress for " +
                       std::to_string(timeout.count() / 1'000'000) +
                       " ms (P=" + std::to_string(P) + ", job generation " +
                       std::to_string(generation) + ")";
  for (int r = 0; r < P; ++r) {
    const auto& s = state.control.status(r);
    report += "\n  rank " + std::to_string(r) + ": ";
    if (s.finished.load(std::memory_order_acquire)) {
      report += "finished";
      continue;
    }
    const auto kind =
        static_cast<BlockKind>(s.blocked.load(std::memory_order_acquire));
    const char* what = s.what.load(std::memory_order_relaxed);
    report += "blocked in ";
    report += (what != nullptr) ? what : "unknown wait";
    if (kind == BlockKind::Recv || kind == BlockKind::RequestWait) {
      report += " (source " + std::to_string(s.source.load(std::memory_order_relaxed)) +
                ", tag " + std::to_string(s.tag.load(std::memory_order_relaxed)) + ")";
    }
    report += " for " + ms_since(s.since_ns.load(std::memory_order_relaxed)) + " ms";
    const char* op = s.last_op.load(std::memory_order_relaxed);
    if (op != nullptr) {
      report += "; comm call #" +
                std::to_string(s.calls.load(std::memory_order_relaxed)) + " (" +
                op + ")";
    }
    const auto stats = state.mailboxes[static_cast<std::size_t>(r)].stats();
    report += "; mailbox: " + std::to_string(stats.queued) + " queued, " +
              std::to_string(stats.pending) + " pending recv";
  }
  return report;
}

/// Chunked wait quantum for the watchdog scanner: responsive for short
/// timeouts without spinning, cheap for long ones.
std::chrono::nanoseconds watchdog_chunk(std::chrono::nanoseconds timeout) {
  return std::chrono::nanoseconds(std::clamp<std::int64_t>(
      timeout.count() / 4, 5'000'000, 200'000'000));
}

/// Caller-thread supervision of an in-flight job: plain condvar wait when
/// nothing is armed, otherwise chunked waits that double as the deadlock
/// watchdog scanner and the deadline enforcer (no extra thread either way).
/// Both enforcement paths funnel into the same cooperative-abort latch:
/// blocked ranks wake with JobAborted immediately, compute-bound ranks
/// observe the abort at their next communication call. `lock` guards
/// `first_error` and whatever `done` reads; it is released only around
/// abort() (which takes the job's own mutex and wakes rank threads).
void supervise_job(std::unique_lock<std::mutex>& lock,
                   std::condition_variable& cv_done,
                   const std::function<bool()>& done, RuntimeState& state,
                   std::uint64_t generation, std::exception_ptr& first_error) {
  const bool watchdog = state.control.watchdog_armed();
  const bool deadline = state.control.deadline_armed();
  if (!watchdog && !deadline) {
    cv_done.wait(lock, done);
    return;
  }

  auto abort_with = [&](std::exception_ptr error, std::string reason) {
    if (!first_error) first_error = std::move(error);
    lock.unlock();
    state.control.abort(std::move(reason));
    lock.lock();
    cv_done.wait(lock, done);
  };

  const auto timeout = state.control.watchdog();
  const auto base_chunk = watchdog ? watchdog_chunk(timeout)
                                   : std::chrono::nanoseconds(20'000'000);
  WatchdogMemory memory;
  while (!done()) {
    auto chunk = base_chunk;
    if (deadline) {
      // Tighten the wait to the deadline so enforcement is prompt even when
      // the watchdog's quantum is long (floor 1 ms: never spin).
      const auto remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
          state.control.deadline() - std::chrono::steady_clock::now());
      chunk = std::clamp(remaining, std::chrono::nanoseconds(1'000'000), chunk);
    }
    if (cv_done.wait_for(lock, chunk, done)) break;
    if (deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= state.control.deadline()) {
        const auto over = std::chrono::duration_cast<std::chrono::milliseconds>(
            now - state.control.deadline());
        trace::emit_instant("deadline.exceeded", over.count());
        std::string reason = "job deadline exceeded (P=" +
                             std::to_string(state.size) + ", aborted " +
                             std::to_string(over.count()) +
                             " ms past the deadline)";
        abort_with(std::make_exception_ptr(DeadlineExceeded(reason)), reason);
        break;
      }
    }
    if (!watchdog) continue;
    trace::emit_instant("watchdog.scan");
    std::string report = deadlock_report(state, memory, timeout, generation);
    if (report.empty()) continue;
    trace::emit_instant("watchdog.timeout");
    abort_with(std::make_exception_ptr(WatchdogTimeout(report)), report);
    break;
  }
}

/// Annotate one rank's escaped exception for the run() caller and record it
/// as the job's first error (first failure wins). JobAborted observations
/// are secondary by construction — whoever triggered the abort recorded the
/// primary error first — so they only land if nothing else was recorded.
/// The primary failure cooperatively aborts the job, waking blocked peers.
void record_rank_failure(RuntimeState& state, int rank,
                         const std::exception_ptr& error, std::mutex& mutex,
                         std::exception_ptr& first_error) {
  bool is_abort = false;
  std::string reason;
  std::exception_ptr annotated;
  try {
    std::rethrow_exception(error);
  } catch (const JobAborted&) {
    is_abort = true;
    annotated = error;
  } catch (const std::exception& e) {
    const auto& s = state.control.status(rank);
    const char* op = s.last_op.load(std::memory_order_relaxed);
    reason = "rank " + std::to_string(rank) + " failed";
    if (op != nullptr) {
      reason += " in comm call #" +
                std::to_string(s.calls.load(std::memory_order_relaxed)) + " (" +
                op + ")";
    }
    reason += ": " + std::string(e.what());
    annotated = std::make_exception_ptr(RankError(rank, reason));
  } catch (...) {
    reason = "rank " + std::to_string(rank) +
             " failed with a non-standard exception";
    annotated = std::make_exception_ptr(RankError(rank, reason));
  }

  bool primary = false;
  {
    std::lock_guard lock(mutex);
    if (!first_error) {
      first_error = annotated;
      primary = !is_abort;
    }
  }
  if (primary) state.control.abort(reason);
}

/// Flight-recorder dump for a failed job: extract the failure reason and
/// write the post-mortem trace + metrics snapshot. Callers are quiesced —
/// every rank thread has been joined or parked before the rethrow.
void postmortem_for(const std::exception_ptr& error) {
  if (!trace::enabled()) return;
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    trace::write_postmortem(e.what());
  } catch (...) {
    trace::write_postmortem("non-standard exception");
  }
}

/// Legacy spawn-per-run path, kept as the nested-run fallback; honours the
/// same RunOptions (fault plan, checksums, watchdog) as the pooled path.
RunResult run_spawned(const RunOptions& options,
                      const std::function<void(Communicator&)>& body) {
  const int size = options.size;
  RuntimeState state(size);
  state.control.configure(options);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::exception_ptr first_error;
  std::mutex mutex;
  std::condition_variable cv_done;
  int remaining = size;

  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([&, rank] {
      {
        trace::set_thread_label("rank", rank);
        trace::set_thread_rank(rank);
        // Spawned ranks own their threads for the whole job: first-touch
        // their mailbox rings here too (no pinning — the spawn path backs
        // nested runs whose ranks share cores with the pool).
        count_first_touch(state.place_rank(rank));
        trace::TraceSpan job_span("job", rank, size);
        perf::ScopedRecorder scoped(state.recorders[static_cast<std::size_t>(rank)]);
        Communicator comm(state, rank);
        try {
          body(comm);
        } catch (...) {
          record_rank_failure(state, rank, std::current_exception(), mutex,
                              first_error);
        }
      }
      trace::set_thread_rank(-1);
      state.control.finish(rank);
      {
        std::lock_guard lock(mutex);
        if (--remaining == 0) cv_done.notify_all();
      }
    });
  }

  {
    std::unique_lock lock(mutex);
    supervise_job(lock, cv_done, [&] { return remaining == 0; }, state, 0,
                  first_error);
  }
  for (auto& t : threads) t.join();
  if (first_error) {
    if (state.control.postmortem()) postmortem_for(first_error);
    std::rethrow_exception(first_error);
  }

  RunResult result;
  result.per_rank = std::move(state.recorders);
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

}  // namespace

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  cv_loop_.notify_all();
  for (auto& t : workers_) t.join();
}

int Executor::workers() {
  std::lock_guard lock(mutex_);
  return static_cast<int>(workers_.size());
}

Executor& Executor::shared() {
  // Meyers singleton: destroyed (and its workers joined) during static
  // destruction, so sanitizer runs see a clean teardown. The payloads its
  // cached mailboxes may still hold are returned to the deliberately leaked
  // BufferArena, which is guaranteed to outlive this.
  static Executor executor;
  return executor;
}

void Executor::worker_loop(int rank, std::uint64_t seen) {
  t_in_worker = true;
  trace::set_thread_label("worker", rank);
  for (;;) {
    const std::function<void(Communicator&)>* body = nullptr;
    RuntimeState* state = nullptr;
    int size = 0;
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = job_body_;
      state = job_state_;
      size = job_size_;
    }
    // Placement refresh outside mutex_: re-pin when the affinity mode
    // changed since this worker's last job, re-warm the arena front cache
    // when the arena policy moved. Both are epoch-guarded no-ops in steady
    // state.
    refresh_worker_locality(rank);
    if (rank >= size) {
      // This job is smaller than the pool: serve active ranks' parallel_for
      // chunks until the next job instead of sleeping through it.
      help_loops(rank, seen);
      continue;
    }
    // First-touch: fault the rank's mailbox ring in on this worker (the
    // owning thread) before any peer can deliver into it.
    count_first_touch(state->place_rank(rank));

    {
      trace::set_thread_rank(rank);
      trace::TraceSpan job_span("job", rank, size);
      perf::ScopedRecorder scoped(state->recorders[static_cast<std::size_t>(rank)]);
      Communicator comm(*state, rank);
      t_loop_state = state;
      t_loop_rank = rank;
      try {
        (*body)(comm);
      } catch (...) {
        record_rank_failure(*state, rank, std::current_exception(), mutex_,
                            first_error_);
      }
      t_loop_state = nullptr;
      t_loop_rank = -1;
    }
    trace::set_thread_rank(-1);
    state->control.finish(rank);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

namespace {

/// Claim and run chunks of `task` until none remain, recording into a
/// scratch recorder the owner later merges (helper side). Returns with
/// in_flight already decremented and the latch notified.
void serve_task(LoopTask& task) {
  perf::Recorder scratch;
  double chunks = 0.0;
  {
    perf::ScopedRecorder scoped(scratch);
    t_in_loop_chunk = true;
    for (;;) {
      std::size_t lo, hi;
      {
        std::lock_guard g(task.m);
        if (task.error != nullptr || task.next >= task.end) break;
        lo = task.next;
        hi = std::min(task.next + task.grain, task.end);
        task.next = hi;
      }
      try {
        // Helper attribution: arg0 = owning rank, arg1 = chunk length.
        trace::TraceSpan chunk_span("loop.help", task.owner,
                                    static_cast<std::int64_t>(hi - lo));
        (*task.body)(lo, hi);
        chunks += 1.0;
      } catch (...) {
        std::lock_guard g(task.m);
        if (task.error == nullptr) task.error = std::current_exception();
        task.next = task.end;  // short-circuit the remaining chunks
        break;
      }
    }
    t_in_loop_chunk = false;
  }
  scratch.record_helper_chunk(chunks);
  perf::record_helper_chunks(chunks);
  std::lock_guard g(task.m);
  // Merge even the records of a failed loop into the partial map; the owner
  // discards partials wholesale on error, so nothing leaks into profiles.
  task.partials[t_loop_rank < 0 ? -1 : t_loop_rank].merge(scratch);
  --task.in_flight;
  task.cv.notify_all();
}

}  // namespace

void Executor::help_loops(int helper, std::uint64_t seen) {
  std::unique_lock lock(mutex_);
  for (;;) {
    LoopTask* task = nullptr;
    cv_loop_.wait(lock, [&] {
      if (shutdown_ || generation_ != seen) return true;
      // Same-node work first: a pinned helper scans for tasks whose owner
      // shares its NUMA node (or has no known placement) before touching
      // remote-node loops, so chunk data stays on local memory when it can.
      const int my_node = current_node();
      auto claim = [&](bool local_only) {
        for (LoopTask* t : loop_tasks_) {
          std::lock_guard g(t->m);
          if (t->error != nullptr || t->next >= t->end) continue;
          if (local_only && my_node >= 0 && t->owner_node >= 0 &&
              t->owner_node != my_node) {
            continue;
          }
          ++t->in_flight;  // join before releasing mutex_: the owner's latch
          task = t;        // now waits for us even if all chunks drain first
          count_helper_claim(t->owner_node, my_node);
          return true;
        }
        return false;
      };
      return claim(true) || (my_node >= 0 && claim(false));
    });
    if (task == nullptr) return;  // new job or shutdown: rejoin the job loop
    lock.unlock();
    t_loop_rank = helper;
    serve_task(*task);
    t_loop_rank = -1;
    lock.lock();
  }
}

int Executor::idle_helpers(int job_size) {
  std::lock_guard lock(mutex_);
  return std::max(0, static_cast<int>(workers_.size()) - job_size);
}

void Executor::loop_parallel(RuntimeState& state, int rank, LoopTask& task) {
  {
    std::lock_guard lock(mutex_);
    loop_tasks_.push_back(&task);
  }
  cv_loop_.notify_all();

  // The owner serves chunks too — it is never idle while helpers work.
  t_in_loop_chunk = true;
  for (;;) {
    std::size_t lo, hi;
    {
      std::lock_guard g(task.m);
      if (task.error != nullptr || task.next >= task.end) break;
      lo = task.next;
      hi = std::min(task.next + task.grain, task.end);
      task.next = hi;
    }
    try {
      trace::TraceSpan chunk_span("loop.chunk", static_cast<std::int64_t>(lo),
                                  static_cast<std::int64_t>(hi));
      (*task.body)(lo, hi);
    } catch (...) {
      std::lock_guard g(task.m);
      if (task.error == nullptr) task.error = std::current_exception();
      task.next = task.end;
      break;
    }
  }
  t_in_loop_chunk = false;

  // Completion latch: every chunk is claimed (permanent once true), so wait
  // for the helpers still inside the body. Never abandoned early — the body
  // and its captures live on this stack frame — but registered with the
  // deadlock watchdog so a stuck helper chunk is diagnosed, not silent.
  {
    std::unique_lock g(task.m);
    if (task.in_flight != 0) {
      BlockGuard guard;
      guard.engage(state.control, rank, BlockKind::LoopWait, "parallel_for",
                   -1, -1);
      task.cv.wait(g, [&] { return task.in_flight == 0; });
    }
  }
  {
    std::lock_guard lock(mutex_);
    std::erase(loop_tasks_, &task);
  }

  if (task.error != nullptr) std::rethrow_exception(task.error);
  if (state.control.aborted()) state.control.throw_aborted();

  // Helper attribution: fold the helpers' scratch records back into the
  // owning rank's recorder, in ascending helper order so profiles are
  // independent of scheduling.
  if (perf::Recorder* rec = perf::current_recorder()) {
    for (const auto& [helper, partial] : task.partials) rec->merge(partial);
  }
}

void Executor::wait_for_job(std::unique_lock<std::mutex>& lock) {
  // The watchdog scan reads only atomics and per-mailbox stats; holding
  // mutex_ here cannot deadlock because no worker ever holds a mailbox lock
  // while taking mutex_.
  supervise_job(lock, cv_done_, [this] { return remaining_ == 0; },
                *job_state_, generation_, first_error_);
}

RunResult Executor::run(int size, const std::function<void(Communicator&)>& body) {
  RunOptions options;
  options.size = size;
  return run(options, body);
}

RunResult Executor::run(const RunOptions& options_in,
                        const std::function<void(Communicator&)>& body) {
  const RunOptions options = with_defaults(options_in);
  const int size = options.size;
  if (size <= 0) throw std::runtime_error("simrt::run: size must be positive");
  std::lock_guard serial(run_mutex_);

  if (state_ == nullptr || state_->size != size) {
    state_ = std::make_unique<RuntimeState>(size);
  } else {
    state_->reset();
  }
  state_->control.configure(options);

  {
    std::lock_guard lock(mutex_);
    // Grow the pool lazily. New workers capture the *current* generation as
    // already-seen so they park until the job below is published.
    while (static_cast<int>(workers_.size()) < size) {
      const int rank = static_cast<int>(workers_.size());
      workers_.emplace_back(
          [this, rank, gen = generation_] { worker_loop(rank, gen); });
    }
    job_body_ = &body;
    job_state_ = state_.get();
    job_size_ = size;
    remaining_ = size;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_job_.notify_all();
  cv_loop_.notify_all();  // parked helpers re-check the generation too
  {
    std::unique_lock lock(mutex_);
    wait_for_job(lock);
  }

  if (first_error_) {
    // A failed job may have left messages, registry entries or a forfeited
    // rendezvous generation behind; drop the cached state so the next run
    // starts from scratch. The pool's workers are already parked again and
    // stay usable.
    const bool postmortem = state_->control.postmortem();
    state_.reset();
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    // Flight-recorder post-mortem: every worker of *this* pool is parked
    // again (the job fully drained above). Callers running several pools
    // concurrently (the service's lanes) disarm this via
    // RunOptions::postmortem — other pools' writers are not quiesced.
    if (postmortem) postmortem_for(error);
    std::rethrow_exception(error);
  }

  // Adaptive arena sizing: fold this job's traffic into the profile and
  // re-derive the caps (hysteresis inside — the policy only changes when
  // the traffic shape does).
  arena_policy_end_of_job();

  RunResult result;
  result.per_rank.assign(state_->recorders.begin(), state_->recorders.end());
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

RunResult run(int size, const std::function<void(Communicator&)>& body) {
  RunOptions options;
  options.size = size;
  return run(options, body);
}

void set_hybrid_threading(HybridMode mode) {
  g_hybrid_mode.store(mode, std::memory_order_relaxed);
}

HybridMode hybrid_threading() {
  return g_hybrid_mode.load(std::memory_order_relaxed);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t range = end - begin;

  // Engage helpers only from a rank body on a pooled worker, outside any
  // enclosing chunk, when the policy says yes and idle workers exist.
  int idle = 0;
  RuntimeState* state = t_loop_state;
  if (state != nullptr && !t_in_loop_chunk &&
      hybrid_policy_engages(state->size)) {
    idle = Executor::shared().idle_helpers(state->size);
  }

  if (grain == 0) {
    // Auto grain: ~4 chunks per participant, so late joiners still find
    // work without shrinking chunks into scheduling noise. With no helpers
    // there is exactly one participant and nothing to balance — one full
    // chunk, so the serial path keeps the original loop structure (batched
    // kernels like the simultaneous FFT live or die by the inner trip
    // count; splitting them 4-ways costs ~2x for nothing).
    const std::size_t ways = static_cast<std::size_t>(idle + 1) * 4;
    grain = idle == 0 ? range : std::max<std::size_t>(1, (range + ways - 1) / ways);
  }

  if (idle == 0 || grain >= range) {
    // Serial degrade: identical chunk boundaries, no task registration.
    struct ChunkScope {  // exception-safe restore of the nesting flag
      bool outer = !t_in_loop_chunk;
      ChunkScope() { t_in_loop_chunk = true; }
      ~ChunkScope() { if (outer) t_in_loop_chunk = false; }
    } scope;
    for (std::size_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(lo + grain, end));
    }
    return;
  }

  LoopTask task;
  task.next = begin;
  task.end = end;
  task.grain = grain;
  task.owner = t_loop_rank;
  task.owner_node = current_node();  // helpers prefer same-node chunks
  task.body = &body;
  Executor::shared().loop_parallel(*state, t_loop_rank, task);
}

int parallel_width() {
  RuntimeState* state = t_loop_state;
  if (state == nullptr || t_in_loop_chunk ||
      !hybrid_policy_engages(state->size)) {
    return 1;
  }
  return 1 + Executor::shared().idle_helpers(state->size);
}

RunResult run(const RunOptions& options,
              const std::function<void(Communicator&)>& body) {
  if (options.size <= 0) {
    throw std::runtime_error("simrt::run: size must be positive");
  }
  // Multi-process dispatch: when this process was launched as one rank of a
  // VPAR_TRANSPORT=shm|socket job and the requested size matches the team,
  // the job runs distributed — this process executes its rank, peers run
  // theirs. Other sizes (nested helpers, local utility runs) stay in-process.
  if (!t_in_worker && !in_distributed_body() && distributed_env_active() &&
      options.size == distributed_world()) {
    return run_distributed(with_defaults(options), body);
  }
  if (t_in_worker) return run_spawned(with_defaults(options), body);
  return Executor::shared().run(options, body);
}

std::chrono::milliseconds retry_backoff(const RetryPolicy& policy, int attempt) {
  double ms = static_cast<double>(policy.backoff.count());
  const double cap = policy.max_backoff.count() > 0
                         ? static_cast<double>(policy.max_backoff.count())
                         : std::numeric_limits<double>::infinity();
  for (int i = 0; i < attempt && ms < cap; ++i) ms *= policy.backoff_factor;
  ms = std::min(ms, cap);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    // Deterministic per-(seed, attempt) draw, same generator family as the
    // fault injector: seeded chaos runs replay their exact pauses.
    const std::uint64_t h =
        mix64(mix64(policy.jitter_seed) ^ (static_cast<std::uint64_t>(attempt) + 1));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    ms *= 1.0 - jitter * u;
  }
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

namespace {

/// Retry-observability meters on the process registry (find-or-create once).
struct RetryMeters {
  trace::Counter& attempts = trace::Metrics::instance().counter("retry.attempts");
  trace::Counter& giveups = trace::Metrics::instance().counter("retry.giveups");
};

RetryMeters& retry_meters() {
  static RetryMeters m;
  return m;
}

/// Shared retry loop: `runner` is one run() attempt against whichever
/// executor the caller picked.
RetryResult retry_loop(const std::function<RunResult(const RunOptions&)>& runner,
                       RunOptions options, const RetryPolicy& policy) {
  RetryMeters& meters = retry_meters();
  for (int attempt = 0;; ++attempt) {
    try {
      meters.attempts.add();
      return RetryResult{runner(options), attempt + 1};
    } catch (const DeadlineExceeded&) {
      // The deadline is absolute: rerunning an expired job cannot succeed.
      meters.giveups.add();
      throw;
    } catch (...) {
      if (attempt >= policy.max_retries) {
        meters.giveups.add();
        throw;
      }
      const auto pause = retry_backoff(policy, attempt);
      if (options.deadline_armed() &&
          std::chrono::steady_clock::now() + pause >= options.deadline) {
        // The backoff pause alone would sleep past the deadline: give up now
        // instead of burning the remaining budget asleep.
        meters.giveups.add();
        throw;
      }
      trace::emit_instant("retry.attempt", attempt + 1);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
      if (policy.disarm_faults_on_retry) options.fault = FaultPlan{};
    }
  }
}

}  // namespace

RetryResult run_with_retry(RunOptions options,
                           const std::function<void(Communicator&)>& body,
                           const RetryPolicy& policy) {
  return retry_loop([&](const RunOptions& o) { return run(o, body); },
                    std::move(options), policy);
}

RetryResult run_with_retry(Executor& executor, RunOptions options,
                           const std::function<void(Communicator&)>& body,
                           const RetryPolicy& policy) {
  return retry_loop([&](const RunOptions& o) { return executor.run(o, body); },
                    std::move(options), policy);
}

}  // namespace vpar::simrt
