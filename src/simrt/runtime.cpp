#include "simrt/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vpar::simrt {

namespace {

/// True on threads that are executor workers: a nested run() from inside a
/// job must not try to borrow the pool it is running on.
thread_local bool t_in_worker = false;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Environment-armed default watchdog (VPAR_WATCHDOG_MS): applied to every
/// job whose options do not arm one explicitly. Read once per process.
std::chrono::milliseconds env_watchdog() {
  static const std::chrono::milliseconds value = [] {
    const char* s = std::getenv("VPAR_WATCHDOG_MS");
    const long ms = (s != nullptr) ? std::strtol(s, nullptr, 10) : 0;
    return std::chrono::milliseconds(ms > 0 ? ms : 0);
  }();
  return value;
}

RunOptions with_defaults(RunOptions options) {
  if (options.watchdog.count() <= 0) options.watchdog = env_watchdog();
  return options;
}

/// Between-scan state of the deadlock detector: the last sampled per-rank
/// seq counters. A deadlock verdict requires the counters to be stable
/// across two scans (one wait chunk apart) so a rank caught between a
/// notify and its wake-up is never misread as stuck.
struct WatchdogMemory {
  std::vector<std::uint64_t> seqs;
  bool primed = false;
};

/// One deadlock scan over the job's blocked-state registry. Returns the
/// full per-rank report if the job is deadlocked (every unfinished rank
/// blocked, no progress across two scans, newest block older than the
/// timeout), else an empty string.
std::string deadlock_report(RuntimeState& state, WatchdogMemory& memory,
                            std::chrono::nanoseconds timeout,
                            std::uint64_t generation) {
  const int P = state.size;
  std::vector<std::uint64_t> seqs(static_cast<std::size_t>(P));
  bool any_blocked = false;
  std::uint64_t newest = 0;
  for (int r = 0; r < P; ++r) {
    const auto& s = state.control.status(r);
    seqs[static_cast<std::size_t>(r)] = s.seq.load(std::memory_order_acquire);
    if (s.finished.load(std::memory_order_acquire)) continue;
    if (s.blocked.load(std::memory_order_acquire) == 0) {
      memory.primed = false;  // someone is running: the job is alive
      return {};
    }
    any_blocked = true;
    newest = std::max(newest, s.since_ns.load(std::memory_order_relaxed));
  }
  if (!any_blocked) return {};  // everyone finished; the job is draining
  if (!memory.primed || memory.seqs != seqs) {
    memory.seqs = std::move(seqs);
    memory.primed = true;
    return {};
  }
  const std::uint64_t now = now_ns();
  if (now - newest < static_cast<std::uint64_t>(timeout.count())) return {};

  auto ms_since = [now](std::uint64_t since) {
    return std::to_string((now - since) / 1'000'000);
  };
  std::string report = "deadlock watchdog: no progress for " +
                       std::to_string(timeout.count() / 1'000'000) +
                       " ms (P=" + std::to_string(P) + ", job generation " +
                       std::to_string(generation) + ")";
  for (int r = 0; r < P; ++r) {
    const auto& s = state.control.status(r);
    report += "\n  rank " + std::to_string(r) + ": ";
    if (s.finished.load(std::memory_order_acquire)) {
      report += "finished";
      continue;
    }
    const auto kind =
        static_cast<BlockKind>(s.blocked.load(std::memory_order_acquire));
    const char* what = s.what.load(std::memory_order_relaxed);
    report += "blocked in ";
    report += (what != nullptr) ? what : "unknown wait";
    if (kind == BlockKind::Recv || kind == BlockKind::RequestWait) {
      report += " (source " + std::to_string(s.source.load(std::memory_order_relaxed)) +
                ", tag " + std::to_string(s.tag.load(std::memory_order_relaxed)) + ")";
    }
    report += " for " + ms_since(s.since_ns.load(std::memory_order_relaxed)) + " ms";
    const char* op = s.last_op.load(std::memory_order_relaxed);
    if (op != nullptr) {
      report += "; comm call #" +
                std::to_string(s.calls.load(std::memory_order_relaxed)) + " (" +
                op + ")";
    }
    const auto stats = state.mailboxes[static_cast<std::size_t>(r)].stats();
    report += "; mailbox: " + std::to_string(stats.queued) + " queued, " +
              std::to_string(stats.pending) + " pending recv";
  }
  return report;
}

/// Chunked wait quantum for the watchdog scanner: responsive for short
/// timeouts without spinning, cheap for long ones.
std::chrono::nanoseconds watchdog_chunk(std::chrono::nanoseconds timeout) {
  return std::chrono::nanoseconds(std::clamp<std::int64_t>(
      timeout.count() / 4, 5'000'000, 200'000'000));
}

/// Annotate one rank's escaped exception for the run() caller and record it
/// as the job's first error (first failure wins). JobAborted observations
/// are secondary by construction — whoever triggered the abort recorded the
/// primary error first — so they only land if nothing else was recorded.
/// The primary failure cooperatively aborts the job, waking blocked peers.
void record_rank_failure(RuntimeState& state, int rank,
                         const std::exception_ptr& error, std::mutex& mutex,
                         std::exception_ptr& first_error) {
  bool is_abort = false;
  std::string reason;
  std::exception_ptr annotated;
  try {
    std::rethrow_exception(error);
  } catch (const JobAborted&) {
    is_abort = true;
    annotated = error;
  } catch (const std::exception& e) {
    const auto& s = state.control.status(rank);
    const char* op = s.last_op.load(std::memory_order_relaxed);
    reason = "rank " + std::to_string(rank) + " failed";
    if (op != nullptr) {
      reason += " in comm call #" +
                std::to_string(s.calls.load(std::memory_order_relaxed)) + " (" +
                op + ")";
    }
    reason += ": " + std::string(e.what());
    annotated = std::make_exception_ptr(RankError(rank, reason));
  } catch (...) {
    reason = "rank " + std::to_string(rank) +
             " failed with a non-standard exception";
    annotated = std::make_exception_ptr(RankError(rank, reason));
  }

  bool primary = false;
  {
    std::lock_guard lock(mutex);
    if (!first_error) {
      first_error = annotated;
      primary = !is_abort;
    }
  }
  if (primary) state.control.abort(reason);
}

/// Legacy spawn-per-run path, kept as the nested-run fallback; honours the
/// same RunOptions (fault plan, checksums, watchdog) as the pooled path.
RunResult run_spawned(const RunOptions& options,
                      const std::function<void(Communicator&)>& body) {
  const int size = options.size;
  RuntimeState state(size);
  state.control.configure(options);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::exception_ptr first_error;
  std::mutex mutex;
  std::condition_variable cv_done;
  int remaining = size;

  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([&, rank] {
      {
        perf::ScopedRecorder scoped(state.recorders[static_cast<std::size_t>(rank)]);
        Communicator comm(state, rank);
        try {
          body(comm);
        } catch (...) {
          record_rank_failure(state, rank, std::current_exception(), mutex,
                              first_error);
        }
      }
      state.control.finish(rank);
      {
        std::lock_guard lock(mutex);
        if (--remaining == 0) cv_done.notify_all();
      }
    });
  }

  {
    std::unique_lock lock(mutex);
    if (!state.control.watchdog_armed()) {
      cv_done.wait(lock, [&] { return remaining == 0; });
    } else {
      const auto timeout = state.control.watchdog();
      const auto chunk = watchdog_chunk(timeout);
      WatchdogMemory memory;
      while (remaining != 0) {
        if (cv_done.wait_for(lock, chunk, [&] { return remaining == 0; })) break;
        std::string report = deadlock_report(state, memory, timeout, 0);
        if (report.empty()) continue;
        if (!first_error) {
          first_error = std::make_exception_ptr(WatchdogTimeout(report));
        }
        lock.unlock();
        state.control.abort(std::move(report));
        lock.lock();
        cv_done.wait(lock, [&] { return remaining == 0; });
        break;
      }
    }
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunResult result;
  result.per_rank = std::move(state.recorders);
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

}  // namespace

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : workers_) t.join();
}

int Executor::workers() {
  std::lock_guard lock(mutex_);
  return static_cast<int>(workers_.size());
}

Executor& Executor::shared() {
  // Meyers singleton: destroyed (and its workers joined) during static
  // destruction, so sanitizer runs see a clean teardown. The payloads its
  // cached mailboxes may still hold are returned to the deliberately leaked
  // BufferArena, which is guaranteed to outlive this.
  static Executor executor;
  return executor;
}

void Executor::worker_loop(int rank, std::uint64_t seen) {
  t_in_worker = true;
  for (;;) {
    const std::function<void(Communicator&)>* body = nullptr;
    RuntimeState* state = nullptr;
    int size = 0;
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = job_body_;
      state = job_state_;
      size = job_size_;
    }
    if (rank >= size) continue;  // this job is smaller than the pool

    {
      perf::ScopedRecorder scoped(state->recorders[static_cast<std::size_t>(rank)]);
      Communicator comm(*state, rank);
      try {
        (*body)(comm);
      } catch (...) {
        record_rank_failure(*state, rank, std::current_exception(), mutex_,
                            first_error_);
      }
    }
    state->control.finish(rank);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void Executor::wait_for_job(std::unique_lock<std::mutex>& lock) {
  RuntimeState& state = *job_state_;
  if (!state.control.watchdog_armed()) {
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    return;
  }
  const auto timeout = state.control.watchdog();
  const auto chunk = watchdog_chunk(timeout);
  WatchdogMemory memory;
  while (remaining_ != 0) {
    if (cv_done_.wait_for(lock, chunk, [&] { return remaining_ == 0; })) break;
    // The scan reads only atomics and per-mailbox stats; holding mutex_
    // here cannot deadlock because no worker ever holds a mailbox lock
    // while taking mutex_.
    std::string report = deadlock_report(state, memory, timeout, generation_);
    if (report.empty()) continue;
    if (!first_error_) {
      first_error_ = std::make_exception_ptr(WatchdogTimeout(report));
    }
    lock.unlock();
    state.control.abort(std::move(report));
    lock.lock();
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    break;
  }
}

RunResult Executor::run(int size, const std::function<void(Communicator&)>& body) {
  RunOptions options;
  options.size = size;
  return run(options, body);
}

RunResult Executor::run(const RunOptions& options_in,
                        const std::function<void(Communicator&)>& body) {
  const RunOptions options = with_defaults(options_in);
  const int size = options.size;
  if (size <= 0) throw std::runtime_error("simrt::run: size must be positive");
  std::lock_guard serial(run_mutex_);

  if (state_ == nullptr || state_->size != size) {
    state_ = std::make_unique<RuntimeState>(size);
  } else {
    state_->reset();
  }
  state_->control.configure(options);

  {
    std::lock_guard lock(mutex_);
    // Grow the pool lazily. New workers capture the *current* generation as
    // already-seen so they park until the job below is published.
    while (static_cast<int>(workers_.size()) < size) {
      const int rank = static_cast<int>(workers_.size());
      workers_.emplace_back(
          [this, rank, gen = generation_] { worker_loop(rank, gen); });
    }
    job_body_ = &body;
    job_state_ = state_.get();
    job_size_ = size;
    remaining_ = size;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_job_.notify_all();
  {
    std::unique_lock lock(mutex_);
    wait_for_job(lock);
  }

  if (first_error_) {
    // A failed job may have left messages, registry entries or a forfeited
    // rendezvous generation behind; drop the cached state so the next run
    // starts from scratch. The pool's workers are already parked again and
    // stay usable.
    state_.reset();
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }

  RunResult result;
  result.per_rank.assign(state_->recorders.begin(), state_->recorders.end());
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

RunResult run(int size, const std::function<void(Communicator&)>& body) {
  RunOptions options;
  options.size = size;
  return run(options, body);
}

RunResult run(const RunOptions& options,
              const std::function<void(Communicator&)>& body) {
  if (options.size <= 0) {
    throw std::runtime_error("simrt::run: size must be positive");
  }
  if (t_in_worker) return run_spawned(with_defaults(options), body);
  return Executor::shared().run(options, body);
}

RetryResult run_with_retry(RunOptions options,
                           const std::function<void(Communicator&)>& body,
                           const RetryPolicy& policy) {
  auto backoff = policy.backoff;
  for (int attempt = 0;; ++attempt) {
    try {
      return RetryResult{run(options, body), attempt + 1};
    } catch (...) {
      if (attempt >= policy.max_retries) throw;
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff = std::chrono::milliseconds(static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) * policy.backoff_factor));
      if (policy.disarm_faults_on_retry) options.fault = FaultPlan{};
    }
  }
}

}  // namespace vpar::simrt
