#include "simrt/runtime.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace vpar::simrt {

RunResult run(int size, const std::function<void(Communicator&)>& body) {
  if (size <= 0) throw std::runtime_error("simrt::run: size must be positive");

  RuntimeState state(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([&, rank] {
      perf::ScopedRecorder scoped(state.recorders[static_cast<std::size_t>(rank)]);
      Communicator comm(state, rank);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // A dead rank would deadlock peers waiting in barriers/receives;
        // there is no clean recovery, so peers relying on this rank will
        // hang only if the test itself is broken. We still join below.
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunResult result;
  result.per_rank = std::move(state.recorders);
  for (const auto& r : result.per_rank) result.merged.merge(r);
  return result;
}

}  // namespace vpar::simrt
