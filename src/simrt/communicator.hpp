#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "perf/recorder.hpp"
#include "simrt/mailbox.hpp"
#include "simrt/rendezvous.hpp"
#include "simrt/request.hpp"
#include "simrt/transport.hpp"
#include "trace/trace.hpp"

namespace vpar::simrt {

/// Reduction operations supported by allreduce.
enum class ReduceOp { Sum, Max, Min };

/// Shared state of one simulated parallel job.
struct RuntimeState {
  explicit RuntimeState(int size_in)
      : size(size_in),
        mailboxes(static_cast<std::size_t>(size_in)),
        rendezvous(size_in),
        recorders(static_cast<std::size_t>(size_in)),
        placed(static_cast<std::size_t>(size_in), 0),
        control(size_in),
        transport(std::make_unique<InprocTransport>(mailboxes)) {
    for (int r = 0; r < size_in; ++r) {
      mailboxes[static_cast<std::size_t>(r)].attach(&control, r);
    }
    rendezvous.attach(&control);
    // Wake every blocking primitive after a cooperative abort so blocked
    // ranks observe JobControl::aborted() instead of sleeping forever.
    control.set_waker([this] {
      for (auto& mb : mailboxes) mb.abort_wake();
      rendezvous.abort_wake();
    });
  }

  /// Swap in a multi-process backend (done once by the distributed bootstrap
  /// before any Communicator is constructed on this state). The state's own
  /// mailboxes stay the receive side — only this process's rank's inbox is
  /// ever populated; routing to every other rank crosses the wire.
  void install_transport(std::unique_ptr<Transport> t) {
    transport = std::move(t);
  }

  /// True when this job's ranks live in separate processes.
  [[nodiscard]] bool multiprocess() const { return transport->multiprocess(); }

  /// Restore the state for reuse by a subsequent job on the same pooled
  /// executor: drop stale messages, shared objects and instrumentation.
  /// Must only be called while no rank threads are active. The Rendezvous is
  /// generation-counted and self-resetting, so it carries no stale state.
  /// (The executor never reuses the state of an *aborted* job — its
  /// rendezvous generation count is forfeit — so no abort state is cleared
  /// here; JobControl::configure re-arms the control block per job.)
  void reset() {
    for (auto& mb : mailboxes) mb.reset();
    {
      std::lock_guard lock(registry_mutex);
      registry.clear();
    }
    for (auto& r : recorders) r.clear();
  }

  /// First-touch placement of rank `rank`'s queue storage, called by the
  /// rank's own worker thread at job pickup. Idempotent per RuntimeState
  /// lifetime (the ring survives reset(), so one placement serves every
  /// recycled job); each rank only ever touches its own flag, from the one
  /// worker thread that owns that rank. Returns bytes newly allocated.
  std::size_t place_rank(int rank) {
    auto& flag = placed[static_cast<std::size_t>(rank)];
    if (flag != 0) return 0;
    flag = 1;
    return mailboxes[static_cast<std::size_t>(rank)].place(kPlaceSlots);
  }

  /// Ring slots reserved per rank at placement: deep enough for a 16-rank
  /// job's worst queue depth (P-1 alltoall fragments plus collective
  /// traffic) without growth on the delivery path.
  static constexpr std::size_t kPlaceSlots = 64;

  int size;
  std::vector<Mailbox> mailboxes;
  Rendezvous rendezvous;
  std::mutex registry_mutex;
  std::map<std::string, std::shared_ptr<void>> registry;
  std::vector<perf::Recorder> recorders;
  std::vector<char> placed;  // per-rank first-touch-done flags
  JobControl control;
  std::unique_ptr<Transport> transport;  // message routing backend (see transport.hpp)
};

/// MPI-flavoured communicator bound to one rank of a simulated job.
///
/// Point-to-point semantics are those of buffered MPI sends: send()/isend()
/// enqueue the payload at the destination and return immediately (isend
/// additionally hands large payloads off by move, with no eager copy);
/// recv() blocks until a matching message arrives; irecv() posts the
/// destination buffer so the transfer completes while the caller does other
/// work, synchronized through the returned Request.
///
/// Collectives are built on log-depth pairwise exchanges over the mailboxes
/// (binomial gather/broadcast trees, a dissemination barrier, pipelined
/// pairwise all-to-all); the global Rendezvous remains only as the barrier
/// fallback for tiny jobs and the CoArray phase fence. User tags must be
/// >= 0 — the
/// negative tag space carries collective traffic, and kAnyTag wildcards
/// match user messages only, so a wildcard receive can never steal a
/// collective fragment.
///
/// Every operation reports its volume to the installed perf::Recorder so
/// network models can cost the run afterwards; traffic posted inside a
/// perf::OverlapScope is recorded as overlapped (see perf/comm_profile.hpp).
class Communicator {
 public:
  /// Binding a communicator also installs its injector as the calling
  /// thread's ambient injector (restored on destruction), so fault decisions
  /// made below the communicator — arena allocation failures — are drawn
  /// from this rank's seeded stream.
  Communicator(RuntimeState& state, int rank)
      : state_(&state),
        rank_(rank),
        injector_(state.control.fault(), rank),
        prev_injector_(exchange_thread_injector(&injector_)) {}
  ~Communicator() { exchange_thread_injector(prev_injector_); }
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return state_->size; }

  /// Public communication calls made through this communicator so far — the
  /// call index FaultPlan::fail_at_call and failure reports refer to.
  [[nodiscard]] std::uint64_t comm_calls() const { return calls_; }

  // --- point to point -----------------------------------------------------

  void send_bytes(int dest, std::span<const std::byte> data, int tag);
  void recv_bytes(int source, std::span<std::byte> data, int tag);

  /// Nonblocking send (buffered: completes immediately, payload copied once).
  Request isend_bytes(int dest, std::span<const std::byte> data, int tag);

  /// Nonblocking receive into `data`; the buffer must stay valid until the
  /// returned Request is waited on (or the Request is destroyed, which
  /// cancels the receive).
  [[nodiscard]] Request irecv_bytes(int source, std::span<std::byte> data, int tag);

  /// Blocking receive of a message whose size the receiver does not know;
  /// used by variable-size protocols (particle migration, transposes).
  [[nodiscard]] Message recv_message(int source, int tag);

  template <typename T>
  void send(int dest, std::span<const T> data, int tag) {
    send_bytes(dest, std::as_bytes(data), tag);
  }
  template <typename T>
  void recv(int source, std::span<T> data, int tag) {
    recv_bytes(source, std::as_writable_bytes(data), tag);
  }

  template <typename T>
  [[nodiscard]] Request isend(int dest, std::span<const T> data, int tag) {
    return isend_bytes(dest, std::as_bytes(data), tag);
  }

  /// Move-handoff nonblocking send: adopts the vector with no payload copy.
  template <typename T>
  [[nodiscard]] Request isend(int dest, std::vector<T>&& data, int tag) {
    check_dest_tag(dest, tag);
    trace::TraceSpan span("comm.isend", dest,
                          static_cast<std::int64_t>(data.size() * sizeof(T)));
    begin_op("isend");
    const double bytes = static_cast<double>(data.size() * sizeof(T));
    raw_send(dest, Payload::adopt(std::move(data)), tag);
    perf::record_comm(perf::CommKind::PointToPoint, 1.0, bytes);
    return Request();
  }

  template <typename T>
  [[nodiscard]] Request irecv(int source, std::span<T> data, int tag) {
    return irecv_bytes(source, std::as_writable_bytes(data), tag);
  }

  /// Exchange: send to `dest` and receive from `source` with the same tag.
  /// Never deadlocks because sends are buffered.
  template <typename T>
  void sendrecv(int dest, std::span<const T> send_data, int source,
                std::span<T> recv_data, int tag) {
    send(dest, send_data, tag);
    recv(source, recv_data, tag);
  }

  // --- collectives ----------------------------------------------------------

  void barrier();

  template <typename T>
  [[nodiscard]] T allreduce(T value, ReduceOp op) {
    T result = value;
    allreduce_inplace(std::span<T>(&result, 1), op);
    return result;
  }

  /// Element-wise reduction of equal-length buffers across all ranks; every
  /// rank receives the reduced vector in place. Internally: binomial-tree
  /// gather of the raw contributions to rank 0, a sequential rank-ordered
  /// fold there (bitwise-identical result on every rank, independent of the
  /// tree shape), and a binomial broadcast of the reduced vector.
  template <typename T>
  void allreduce_inplace(std::span<T> values, ReduceOp op) {
    const int P = size();
    const std::size_t n = values.size();
    trace::TraceSpan span("comm.allreduce", P,
                          static_cast<std::int64_t>(n * sizeof(T)));
    begin_op("allreduce");
    if (P > 1) {
      perf::CommRecordSuppressor mute;
      // Gather phase: each rank accumulates the contributions of the
      // contiguous rank block [rank, rank + 2^k) in rank order, then hands
      // the block to its binomial parent.
      std::vector<T> block(values.begin(), values.end());
      bool sent = false;
      for (int step = 1; step < P && !sent; step <<= 1) {
        if ((rank_ & step) != 0) {
          raw_send(rank_ - step, Payload::adopt(std::move(block)),
                   kTagAllreduceGather);
          sent = true;
        } else if (rank_ + step < P) {
          const int partner = rank_ + step;
          const auto pcov = static_cast<std::size_t>(std::min(step, P - partner));
          Message m = raw_receive(partner, kTagAllreduceGather, "allreduce");
          if (m.payload.size() != pcov * n * sizeof(T)) {
            throw std::runtime_error("allreduce: tree block size mismatch");
          }
          const auto old = block.size();
          block.resize(old + pcov * n);
          if (n > 0) {
            std::memcpy(block.data() + old, m.payload.data(), m.payload.size());
          }
        }
      }
      if (rank_ == 0) {
        // Fold left-to-right in rank order — the exact association the
        // rendezvous implementation used, so numerics are unchanged.
        for (std::size_t i = 0; i < n; ++i) {
          T acc = block[i];
          for (int r = 1; r < P; ++r) {
            acc = apply(acc, block[static_cast<std::size_t>(r) * n + i], op);
          }
          values[i] = acc;
        }
      }
      // Broadcast phase: after round k, ranks [0, 2^k) hold the result.
      for (int step = 1; step < P; step <<= 1) {
        if (rank_ < step) {
          if (rank_ + step < P) {
            raw_send(rank_ + step, Payload::copy_of(std::as_bytes(values)),
                     kTagAllreduceBcast);
          }
        } else if (rank_ < 2 * step) {
          Message m = raw_receive(rank_ - step, kTagAllreduceBcast, "allreduce");
          if (m.payload.size() != n * sizeof(T)) {
            throw std::runtime_error("allreduce: result size mismatch");
          }
          if (n > 0) std::memcpy(values.data(), m.payload.data(), m.payload.size());
        }
      }
    }
    const double bytes = static_cast<double>(n * sizeof(T));
    perf::record_comm(perf::CommKind::Reduction, log2ceil(P), bytes * log2ceil(P));
  }

  /// Binomial-tree broadcast from `root`.
  template <typename T>
  void broadcast(std::span<T> values, int root) {
    const int P = size();
    check_root(root);
    trace::TraceSpan span("comm.broadcast", root,
                          static_cast<std::int64_t>(values.size() * sizeof(T)));
    begin_op("broadcast");
    {
      perf::CommRecordSuppressor mute;
      const int vr = (rank_ - root + P) % P;
      for (int step = 1; step < P; step <<= 1) {
        if (vr < step) {
          if (vr + step < P) {
            raw_send((vr + step + root) % P,
                     Payload::copy_of(std::as_bytes(std::span<const T>(values))),
                     kTagBroadcast);
          }
        } else if (vr < 2 * step) {
          Message m = raw_receive((vr - step + root) % P, kTagBroadcast, "broadcast");
          if (m.payload.size() != values.size() * sizeof(T)) {
            throw std::runtime_error("broadcast: size mismatch");
          }
          if (!values.empty()) {
            std::memcpy(values.data(), m.payload.data(), m.payload.size());
          }
        }
      }
    }
    if (rank_ == root) {
      perf::record_comm(perf::CommKind::Broadcast, log2ceil(size()),
                        static_cast<double>(values.size() * sizeof(T)) * log2ceil(size()));
    }
  }

  /// Gather contributions to `root` over a binomial tree; on `root`, `out`
  /// receives rank-ordered data (contributions may differ in length; `out`
  /// must hold their total). On other ranks `out` is ignored. Every rank
  /// records the gather as a log-depth collective on its own contribution.
  template <typename T>
  void gather(std::span<const T> contribution, std::span<T> out, int root) {
    const int P = size();
    check_root(root);
    trace::TraceSpan span("comm.gather", root,
                          static_cast<std::int64_t>(contribution.size() * sizeof(T)));
    begin_op("gather");
    {
      perf::CommRecordSuppressor mute;
      const int vr = (rank_ - root + P) % P;
      // Accumulated block: per-virtual-rank element counts for the covered
      // contiguous range [vr, vr + covered), then their concatenated data.
      std::vector<std::uint64_t> counts{contribution.size()};
      std::vector<T> data(contribution.begin(), contribution.end());
      bool sent = false;
      for (int step = 1; step < P && !sent; step <<= 1) {
        if ((vr & step) != 0) {
          std::vector<std::byte> wire(counts.size() * sizeof(std::uint64_t) +
                                      data.size() * sizeof(T));
          std::memcpy(wire.data(), counts.data(), counts.size() * sizeof(std::uint64_t));
          if (!data.empty()) {
            std::memcpy(wire.data() + counts.size() * sizeof(std::uint64_t),
                        data.data(), data.size() * sizeof(T));
          }
          raw_send((vr - step + root) % P, Payload::adopt(std::move(wire)), kTagGather);
          sent = true;
        } else if (vr + step < P) {
          const int pvr = vr + step;
          const auto pcov = static_cast<std::size_t>(std::min(step, P - pvr));
          Message m = raw_receive((pvr + root) % P, kTagGather, "gather");
          if (m.payload.size() < pcov * sizeof(std::uint64_t)) {
            throw std::runtime_error("gather: tree block header mismatch");
          }
          const auto old_counts = counts.size();
          counts.resize(old_counts + pcov);
          std::memcpy(counts.data() + old_counts, m.payload.data(),
                      pcov * sizeof(std::uint64_t));
          std::size_t elems = 0;
          for (std::size_t i = old_counts; i < counts.size(); ++i) {
            elems += static_cast<std::size_t>(counts[i]);
          }
          if (m.payload.size() != pcov * sizeof(std::uint64_t) + elems * sizeof(T)) {
            throw std::runtime_error("gather: tree block size mismatch");
          }
          const auto old_data = data.size();
          data.resize(old_data + elems);
          if (elems > 0) {
            std::memcpy(data.data() + old_data,
                        m.payload.data() + pcov * sizeof(std::uint64_t),
                        elems * sizeof(T));
          }
        }
      }
      if (vr == 0) {
        // counts/data are ordered by virtual rank; lay out by real rank.
        std::vector<std::size_t> real_count(static_cast<std::size_t>(P));
        for (int v = 0; v < P; ++v) {
          real_count[static_cast<std::size_t>((v + root) % P)] =
              static_cast<std::size_t>(counts[static_cast<std::size_t>(v)]);
        }
        std::vector<std::size_t> offset(static_cast<std::size_t>(P), 0);
        std::size_t total = 0;
        for (int r = 0; r < P; ++r) {
          offset[static_cast<std::size_t>(r)] = total;
          total += real_count[static_cast<std::size_t>(r)];
        }
        if (total > out.size()) {
          throw std::runtime_error("gather: output buffer too small");
        }
        std::size_t consumed = 0;
        for (int v = 0; v < P; ++v) {
          const std::size_t cnt = static_cast<std::size_t>(counts[static_cast<std::size_t>(v)]);
          if (cnt > 0) {
            std::copy_n(data.data() + consumed, cnt,
                        out.data() + offset[static_cast<std::size_t>((v + root) % P)]);
          }
          consumed += cnt;
        }
      }
    }
    perf::record_comm(perf::CommKind::Gather, log2ceil(P),
                      static_cast<double>(contribution.size() * sizeof(T)) * log2ceil(P));
  }

  /// Personalized all-to-all: `outboxes[d]` is this rank's data for rank `d`;
  /// the return value's element `s` holds the data rank `s` sent to this
  /// rank. Implemented as P-1 pipelined pairwise exchange rounds (round r
  /// pairs rank with rank±r) — the global-transpose pattern of the
  /// distributed 3D FFT, recorded as one overlapped AllToAll operation.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outboxes) {
    const int P = size();
    if (static_cast<int>(outboxes.size()) != P) {
      throw std::runtime_error("alltoallv: need one outbox per rank");
    }
    trace::TraceSpan span("comm.alltoallv", P);
    begin_op("alltoallv");
    perf::OverlapScope window;
    std::vector<std::vector<T>> inboxes(static_cast<std::size_t>(P));
    double bytes = 0.0;
    {
      perf::CommRecordSuppressor mute;
      inboxes[static_cast<std::size_t>(rank_)] = outboxes[static_cast<std::size_t>(rank_)];
      for (int r = 1; r < P; ++r) {
        const auto dest = static_cast<std::size_t>((rank_ + r) % P);
        const int src = (rank_ + P - r) % P;
        bytes += static_cast<double>(outboxes[dest].size() * sizeof(T));
        raw_send(static_cast<int>(dest),
                 Payload::copy_of(std::as_bytes(std::span<const T>(outboxes[dest]))),
                 kTagAlltoall);
        Message m = raw_receive(src, kTagAlltoall, "alltoallv");
        auto& in = inboxes[static_cast<std::size_t>(src)];
        in.resize(m.payload.size() / sizeof(T));
        if (!in.empty()) std::memcpy(in.data(), m.payload.data(), m.payload.size());
      }
    }
    // One collective operation; the network model charges log-depth latency.
    perf::record_comm(perf::CommKind::AllToAll, 1.0, bytes);
    return inboxes;
  }

  /// Streaming all-to-all for transpose pipelines: `pack(dest)` produces the
  /// block for rank `dest` just before it is sent (by move, no payload
  /// copy); `unpack(src, block)` consumes each arriving block immediately.
  /// Packing and unpacking of round r thus overlap the traffic of rounds
  /// r±1 — the overlap structure the ported FFT transpose relies on.
  template <typename T, typename PackFn, typename UnpackFn>
  void alltoallv_pipelined(PackFn&& pack, UnpackFn&& unpack) {
    const int P = size();
    trace::TraceSpan span("comm.alltoallv_pipelined", P);
    begin_op("alltoallv");
    perf::OverlapScope window;
    double bytes = 0.0;
    {
      perf::CommRecordSuppressor mute;
      unpack(rank_, pack(rank_));  // self block never crosses the wire
      for (int r = 1; r < P; ++r) {
        const int dest = (rank_ + r) % P;
        const int src = (rank_ + P - r) % P;
        std::vector<T> box = pack(dest);
        bytes += static_cast<double>(box.size() * sizeof(T));
        raw_send(dest, Payload::adopt(std::move(box)), kTagAlltoallPipe);
        Message m = raw_receive(src, kTagAlltoallPipe, "alltoallv");
        std::vector<T> in(m.payload.size() / sizeof(T));
        if (!in.empty()) std::memcpy(in.data(), m.payload.data(), m.payload.size());
        unpack(src, std::move(in));
      }
    }
    perf::record_comm(perf::CommKind::AllToAll, 1.0, bytes);
  }

  // --- registry (used by CoArray and other collective objects) -------------

  /// Find-or-create a named shared object; `make` runs exactly once across
  /// the job. All ranks must call with the same name concurrently.
  template <typename T>
  std::shared_ptr<T> shared_object(const std::string& name,
                                   const std::function<std::shared_ptr<T>()>& make) {
    if (size() > 1 && state_->multiprocess()) {
      // Each rank process has its own address space; a "shared" object here
      // would silently be per-rank. Fail loudly instead of computing wrong
      // answers — CAF-style exchanges require the inproc backend.
      throw std::runtime_error(
          "shared_object('" + name +
          "'): cross-rank shared objects require the inproc transport");
    }
    std::shared_ptr<T> object;
    {
      std::lock_guard lock(state_->registry_mutex);
      auto it = state_->registry.find(name);
      if (it == state_->registry.end()) {
        object = make();
        state_->registry[name] = object;
      } else {
        object = std::static_pointer_cast<T>(it->second);
      }
    }
    return object;
  }

  [[nodiscard]] RuntimeState& state() { return *state_; }

 private:
  // Collective traffic rides in the negative tag space (kAnyTag wildcards
  // match user tags >= 0 only), one tag per collective phase; correctness
  // across back-to-back collectives follows from SPMD program order plus the
  // mailbox's per-(sender, tag) FIFO guarantee.
  static constexpr int kTagAllreduceGather = -10;
  static constexpr int kTagAllreduceBcast = -11;
  static constexpr int kTagBroadcast = -12;
  static constexpr int kTagGather = -13;
  static constexpr int kTagAlltoall = -14;
  static constexpr int kTagAlltoallPipe = -15;
  static constexpr int kTagBarrier = -16;

  /// Largest team size still served by the centralized rendezvous barrier;
  /// larger teams use the log-depth dissemination barrier over the
  /// mailboxes (see barrier()).
  static constexpr int kBarrierRendezvousMax = 8;

  void check_dest_tag(int dest, int tag) const {
    if (dest < 0 || dest >= size()) throw std::runtime_error("send: bad destination rank");
    if (tag < 0) throw std::runtime_error("send: user tags must be >= 0");
  }
  void check_root(int root) const {
    if (root < 0 || root >= size()) throw std::runtime_error("collective: bad root rank");
  }

  /// Entry hook of every public communication operation: honours cooperative
  /// abort, advances the per-rank call counter for blocked-state reports, and
  /// gives the fault injector its chance to stall or kill this rank. Internal
  /// raw_send/raw_receive fragments deliberately do NOT count as calls —
  /// "comm call #N" in failure reports means the N-th *public* operation.
  void begin_op(const char* op) {
    JobControl& ctl = state_->control;
    if (ctl.aborted()) ctl.throw_aborted();
    ++calls_;
    ctl.note_call(rank_, op, calls_);
    injector_.on_call(calls_);
  }

  /// Unrecorded, unvalidated delivery — the transport under the collectives.
  /// raw_send stamps the payload checksum (before fault injection, so an
  /// injected bit-flip is detectable) and applies send-side faults;
  /// raw_receive names the enclosing operation for blocked-state reports.
  void raw_send(int dest, Payload payload, int tag);
  [[nodiscard]] Message raw_receive(int source, int tag,
                                    const char* what = "recv");

  template <typename T>
  static T apply(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::Sum: return a + b;
      case ReduceOp::Max: return a > b ? a : b;
      case ReduceOp::Min: return a < b ? a : b;
    }
    return a;
  }

  static double log2ceil(int n) {
    double steps = 0.0;
    int v = 1;
    while (v < n) {
      v *= 2;
      steps += 1.0;
    }
    return steps > 0.0 ? steps : 1.0;
  }

  RuntimeState* state_;
  int rank_;
  FaultInjector injector_;
  FaultInjector* prev_injector_ = nullptr;
  std::uint64_t calls_ = 0;
};

}  // namespace vpar::simrt
