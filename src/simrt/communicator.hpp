#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "perf/recorder.hpp"
#include "simrt/mailbox.hpp"
#include "simrt/rendezvous.hpp"

namespace vpar::simrt {

/// Reduction operations supported by allreduce.
enum class ReduceOp { Sum, Max, Min };

/// Shared state of one simulated parallel job.
struct RuntimeState {
  explicit RuntimeState(int size_in)
      : size(size_in),
        mailboxes(static_cast<std::size_t>(size_in)),
        rendezvous(size_in),
        recorders(static_cast<std::size_t>(size_in)) {}

  int size;
  std::vector<Mailbox> mailboxes;
  Rendezvous rendezvous;
  std::mutex registry_mutex;
  std::map<std::string, std::shared_ptr<void>> registry;
  std::vector<perf::Recorder> recorders;
};

/// MPI-flavoured communicator bound to one rank of a simulated job. All
/// blocking semantics are those of buffered MPI sends: send() copies the
/// payload and returns immediately; recv() blocks until a matching message
/// arrives. Every operation reports its volume to the installed
/// perf::Recorder so network models can cost the run afterwards.
class Communicator {
 public:
  Communicator(RuntimeState& state, int rank) : state_(&state), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return state_->size; }

  // --- point to point -----------------------------------------------------

  void send_bytes(int dest, std::span<const std::byte> data, int tag);
  void recv_bytes(int source, std::span<std::byte> data, int tag);

  template <typename T>
  void send(int dest, std::span<const T> data, int tag) {
    send_bytes(dest, std::as_bytes(data), tag);
  }
  template <typename T>
  void recv(int source, std::span<T> data, int tag) {
    recv_bytes(source, std::as_writable_bytes(data), tag);
  }

  /// Exchange: send to `dest` and receive from `source` with the same tag.
  /// Never deadlocks because sends are buffered.
  template <typename T>
  void sendrecv(int dest, std::span<const T> send_data, int source,
                std::span<T> recv_data, int tag) {
    send(dest, send_data, tag);
    recv(source, recv_data, tag);
  }

  // --- collectives ----------------------------------------------------------

  void barrier();

  template <typename T>
  [[nodiscard]] T allreduce(T value, ReduceOp op) {
    T result = value;
    allreduce_inplace(std::span<T>(&result, 1), op);
    return result;
  }

  /// Element-wise reduction of equal-length buffers across all ranks;
  /// every rank receives the reduced vector in place.
  template <typename T>
  void allreduce_inplace(std::span<T> values, ReduceOp op) {
    std::vector<T> scratch(values.begin(), values.end());
    state_->rendezvous.post(rank_, scratch.data());
    state_->rendezvous.arrive_and_wait();
    auto slots = state_->rendezvous.slots();
    for (std::size_t i = 0; i < values.size(); ++i) {
      T acc = static_cast<const T*>(slots[0])[i];
      for (int r = 1; r < size(); ++r) {
        const T v = static_cast<const T*>(slots[static_cast<std::size_t>(r)])[i];
        acc = apply(acc, v, op);
      }
      values[i] = acc;
    }
    state_->rendezvous.arrive_and_wait();
    const double bytes = static_cast<double>(values.size() * sizeof(T));
    perf::record_comm(perf::CommKind::Reduction, log2ceil(size()), bytes * log2ceil(size()));
  }

  template <typename T>
  void broadcast(std::span<T> values, int root) {
    state_->rendezvous.post(rank_, values.data());
    state_->rendezvous.arrive_and_wait();
    if (rank_ != root) {
      const auto* src = static_cast<const T*>(
          state_->rendezvous.slots()[static_cast<std::size_t>(root)]);
      std::memcpy(values.data(), src, values.size() * sizeof(T));
    }
    state_->rendezvous.arrive_and_wait();
    if (rank_ == root) {
      perf::record_comm(perf::CommKind::Broadcast, log2ceil(size()),
                        static_cast<double>(values.size() * sizeof(T)) * log2ceil(size()));
    }
  }

  /// Gather equal-size contributions; on `root`, `out` must hold size()*n
  /// elements and receives rank-ordered data. On other ranks `out` is ignored.
  template <typename T>
  void gather(std::span<const T> contribution, std::span<T> out, int root) {
    Slot slot{const_cast<T*>(contribution.data()), contribution.size()};
    state_->rendezvous.post(rank_, &slot);
    state_->rendezvous.arrive_and_wait();
    if (rank_ == root) {
      std::size_t offset = 0;
      for (int r = 0; r < size(); ++r) {
        const auto* s = static_cast<const Slot*>(
            state_->rendezvous.slots()[static_cast<std::size_t>(r)]);
        if (offset + s->count > out.size()) {
          throw std::runtime_error("gather: output buffer too small");
        }
        std::memcpy(out.data() + offset, s->pointer, s->count * sizeof(T));
        offset += s->count;
      }
    } else {
      perf::record_comm(perf::CommKind::PointToPoint, 1.0,
                        static_cast<double>(contribution.size() * sizeof(T)));
    }
    state_->rendezvous.arrive_and_wait();
  }

  /// Personalized all-to-all: `outboxes[d]` is this rank's data for rank `d`;
  /// the return value's element `s` holds the data rank `s` sent to this
  /// rank. This is the global-transpose pattern of the distributed 3D FFT.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outboxes) {
    if (static_cast<int>(outboxes.size()) != size()) {
      throw std::runtime_error("alltoallv: need one outbox per rank");
    }
    state_->rendezvous.post(rank_, const_cast<std::vector<std::vector<T>>*>(&outboxes));
    state_->rendezvous.arrive_and_wait();
    std::vector<std::vector<T>> inboxes(static_cast<std::size_t>(size()));
    double bytes = 0.0;
    for (int s = 0; s < size(); ++s) {
      const auto* their = static_cast<const std::vector<std::vector<T>>*>(
          state_->rendezvous.slots()[static_cast<std::size_t>(s)]);
      inboxes[static_cast<std::size_t>(s)] = (*their)[static_cast<std::size_t>(rank_)];
      if (s != rank_) {
        bytes += static_cast<double>(outboxes[static_cast<std::size_t>(s)].size() * sizeof(T));
      }
    }
    state_->rendezvous.arrive_and_wait();
    // One collective operation; the network model charges log-depth latency.
    perf::record_comm(perf::CommKind::AllToAll, 1.0, bytes);
    return inboxes;
  }

  // --- registry (used by CoArray and other collective objects) -------------

  /// Find-or-create a named shared object; `make` runs exactly once across
  /// the job. All ranks must call with the same name concurrently.
  template <typename T>
  std::shared_ptr<T> shared_object(const std::string& name,
                                   const std::function<std::shared_ptr<T>()>& make) {
    std::shared_ptr<T> object;
    {
      std::lock_guard lock(state_->registry_mutex);
      auto it = state_->registry.find(name);
      if (it == state_->registry.end()) {
        object = make();
        state_->registry[name] = object;
      } else {
        object = std::static_pointer_cast<T>(it->second);
      }
    }
    return object;
  }

  [[nodiscard]] RuntimeState& state() { return *state_; }

 private:
  struct Slot {
    void* pointer;
    std::size_t count;
  };

  template <typename T>
  static T apply(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::Sum: return a + b;
      case ReduceOp::Max: return a > b ? a : b;
      case ReduceOp::Min: return a < b ? a : b;
    }
    return a;
  }

  static double log2ceil(int n) {
    double steps = 0.0;
    int v = 1;
    while (v < n) {
      v *= 2;
      steps += 1.0;
    }
    return steps > 0.0 ? steps : 1.0;
  }

  RuntimeState* state_;
  int rank_;
};

}  // namespace vpar::simrt
